#include "arena/matrix.h"

#include <cstdio>

#include "util/table.h"

namespace gpusc::arena {

namespace {

/** Fixed-format double for deterministic JSON (no locale, 6 dp). */
std::string
jnum(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    return buf;
}

std::string
jstr(const std::string &s)
{
    // Labels here are machine-generated ([a-z0-9+-]); quote as-is.
    return "\"" + s + "\"";
}

} // namespace

void
applyAttacker(eval::ExperimentConfig &cfg, const AttackerSpec &attacker)
{
    cfg.attackParams.recovery.rateLimitAware = attacker.robust;
    cfg.attackParams.inference.noiseRobust = attacker.robust;
}

Matrix::Matrix(MatrixConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.defenses.empty())
        cfg_.defenses = defaultGrid();
    if (cfg_.attackers.empty())
        cfg_.attackers = defaultAttackers();
}

std::vector<Cell>
Matrix::run(attack::ModelStore &store) const
{
    std::vector<Cell> cells;
    cells.reserve(cfg_.defenses.size() * cfg_.attackers.size());
    for (const kgsl::DefenseConfig &defense : cfg_.defenses) {
        for (const AttackerSpec &attacker : cfg_.attackers) {
            eval::ExperimentConfig cfg = cfg_.base;
            cfg.defense = defense;
            applyAttacker(cfg, attacker);

            exec::ParallelRunner runner(cfg, store, cfg_.threads,
                                        cfg_.plan);
            exec::ParallelResult res = runner.runTrials(
                cfg_.trials, cfg_.minLen, cfg_.maxLen);

            Cell cell;
            cell.defense = defense.label();
            cell.attacker = attacker.name;
            cell.stats = res.stats;
            cell.health = res.health;
            cell.overhead = res.defense;
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

std::vector<kgsl::DefenseConfig>
Matrix::defaultGrid()
{
    std::vector<kgsl::DefenseConfig> grid;

    grid.emplace_back(); // stock: the undefended reference row

    kgsl::DefenseConfig rate;
    rate.readsPerSecond = 48.0;
    grid.push_back(rate);

    kgsl::DefenseConfig stale = rate;
    stale.overBudget = kgsl::DefenseConfig::OverBudget::Stale;
    grid.push_back(stale);

    kgsl::DefenseConfig quant;
    quant.quantStep = 96;
    grid.push_back(quant);

    kgsl::DefenseConfig noise;
    noise.noiseAmplitude = 24;
    grid.push_back(noise);

    kgsl::DefenseConfig combo;
    combo.readsPerSecond = 48.0;
    combo.quantStep = 96;
    grid.push_back(combo);

    return grid;
}

std::vector<AttackerSpec>
Matrix::defaultAttackers()
{
    return {{"naive", false}, {"robust", true}};
}

std::string
Matrix::cellsJson(const std::vector<Cell> &cells)
{
    std::string out = "[";
    bool first = true;
    for (const Cell &c : cells) {
        if (!first)
            out += ",";
        first = false;
        out += "\n    {";
        out += "\"defense\": " + jstr(c.defense);
        out += ", \"attacker\": " + jstr(c.attacker);
        out += ", \"trials\": " + std::to_string(c.stats.trials());
        out += ", \"text_accuracy\": " + jnum(c.stats.textAccuracy());
        out += ", \"key_accuracy\": " + jnum(c.stats.charAccuracy());
        out += ", \"health\": {";
        out += "\"throttled_reads\": " +
               std::to_string(c.health.throttledReads);
        out += ", \"pace_backoffs\": " +
               std::to_string(c.health.paceBackoffs);
        out += ", \"pace_recoveries\": " +
               std::to_string(c.health.paceRecoveries);
        out += ", \"missed_reads\": " +
               std::to_string(c.health.missedReads);
        out += ", \"effective_interval_ns\": " +
               std::to_string(c.health.effectiveIntervalNs);
        out += "}";
        out += ", \"overhead\": {";
        out += "\"access_checks\": " +
               std::to_string(c.overhead.accessChecks);
        out += ", \"reads_seen\": " +
               std::to_string(c.overhead.readsSeen);
        out += ", \"reads_throttled\": " +
               std::to_string(c.overhead.readsThrottled);
        out += ", \"stale_serves\": " +
               std::to_string(c.overhead.staleServes);
        out += ", \"values_quantized\": " +
               std::to_string(c.overhead.valuesQuantized);
        out += ", \"values_noised\": " +
               std::to_string(c.overhead.valuesNoised);
        out += ", \"cpu_ns\": " + std::to_string(c.overhead.cpuNs);
        out += "}}";
    }
    out += "\n  ]";
    return out;
}

void
Matrix::printTable(const std::vector<Cell> &cells)
{
    Table t({"defense", "attacker", "text acc", "key acc",
             "throttled", "eff. interval", "defender cpu"});
    for (const Cell &c : cells) {
        const double ms = double(c.health.effectiveIntervalNs) * 1e-6;
        const double us = double(c.overhead.cpuNs) * 1e-3;
        t.addRow({c.defense, c.attacker,
                  Table::pct(c.stats.textAccuracy()),
                  Table::pct(c.stats.charAccuracy()),
                  std::to_string(c.health.throttledReads),
                  Table::num(ms, 1) + "ms", Table::num(us, 1) + "us"});
    }
    t.print("attack-vs-defense matrix");
}

} // namespace gpusc::arena
