/**
 * @file
 * The attack-vs-defense arena: a defense-grid × attacker-mode matrix.
 *
 * Each cell runs one full accuracy campaign — a kgsl defense stack
 * (kgsl::DefenseConfig) on the victim's driver against one attacker
 * mode (naive, or the robust attacker that paces under rate limiting,
 * re-estimates thresholds under quantization and votes under noise) —
 * and reports residual accuracy, attacker health and defender-side
 * overhead. The matrix is the paper-§9 question asked quantitatively:
 * not "does the mitigation stop the attack" but "how far does each
 * dial degrade it, against an adversary that adapts, at what cost".
 *
 * Determinism: every cell shares the same credential set (all cells
 * run the same base seed through exec::ParallelRunner's index-keyed
 * streams), cells are evaluated in grid order, and each cell's
 * campaign is thread-count-independent — so the whole matrix is
 * byte-identical at any worker count.
 */

#ifndef GPUSC_ARENA_MATRIX_H
#define GPUSC_ARENA_MATRIX_H

#include <string>
#include <vector>

#include "attack/model_store.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "exec/parallel_runner.h"
#include "kgsl/defense.h"

namespace gpusc::arena {

/** One attacker column of the matrix. */
struct AttackerSpec
{
    std::string name = "naive";
    /**
     * Enable the graceful-degradation machinery: rate-limit-aware
     * sampler pacing, quantization-aware threshold re-estimation and
     * noise-robust voting classification.
     */
    bool robust = false;
};

/** One evaluated (defense, attacker) cell. */
struct Cell
{
    /** DefenseConfig::label() of the row ("stock" = undefended). */
    std::string defense;
    /** AttackerSpec::name of the column. */
    std::string attacker;
    eval::AccuracyStats stats;
    attack::HealthStats health{};
    kgsl::DefenseOverhead overhead{};
};

/** Everything a matrix run can vary. */
struct MatrixConfig
{
    /** Rows; defaultGrid() when empty. */
    std::vector<kgsl::DefenseConfig> defenses;
    /** Columns; defaultAttackers() when empty. */
    std::vector<AttackerSpec> attackers;
    /**
     * Base experiment every cell derives from (device, seed, typing
     * behaviour). The cell overwrites `defense` and the attacker-mode
     * knobs; everything else is shared so cells stay comparable.
     */
    eval::ExperimentConfig base{};
    int trials = 12;
    std::size_t minLen = 8;
    std::size_t maxLen = 12;
    /** Worker threads per cell campaign (never changes the output). */
    std::size_t threads = 1;
    exec::ShardPlan plan{};
};

/** Runs the defense × attacker grid. */
class Matrix
{
  public:
    explicit Matrix(MatrixConfig cfg);

    /**
     * Evaluate every cell, rows outer / columns inner, in order.
     * Deterministic in (cfg.base.seed, grid, trials, lengths,
     * plan.shardSize) — never in cfg.threads.
     */
    std::vector<Cell> run(attack::ModelStore &store) const;

    const MatrixConfig &config() const { return cfg_; }

    /** The arena's standard rows: stock + one row per defense dial. */
    static std::vector<kgsl::DefenseConfig> defaultGrid();

    /** The arena's standard columns: naive and robust. */
    static std::vector<AttackerSpec> defaultAttackers();

    /**
     * Serialize cells as a deterministic JSON array (fixed key order,
     * fixed float formatting) — the "cells" value of BENCH_arena.json.
     */
    static std::string cellsJson(const std::vector<Cell> &cells);

    /** Render the human-readable matrix table to stdout. */
    static void printTable(const std::vector<Cell> &cells);

  private:
    MatrixConfig cfg_;
};

/** Apply an attacker mode to an experiment's attack knobs. */
void applyAttacker(eval::ExperimentConfig &cfg,
                   const AttackerSpec &attacker);

} // namespace gpusc::arena

#endif // GPUSC_ARENA_MATRIX_H
