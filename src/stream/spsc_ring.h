/**
 * @file
 * Bounded lock-free single-producer/single-consumer ring.
 *
 * Each streaming-ingest session owns one of these, carrying sampler
 * readings from the producer (the victim device's reading tap, or a
 * trace-ingest loop) to the consumer (the ingest pump that runs
 * inference). The design is the classic cache-conscious SPSC queue:
 * two monotonically increasing cursors on their own cache lines so
 * producer and consumer never contend on a line, plus a cached copy
 * of the opposite cursor so the common-case push/pop touches only
 * local state and the slot itself.
 *
 * Progress/ordering contract:
 *  - exactly one producer thread calls tryPush()/shedOldest() and
 *    exactly one consumer thread calls tryPop() at any time;
 *  - values pop in push order (FIFO), with acquire/release pairing
 *    on the cursors making the slot write visible before the cursor
 *    that publishes it;
 *  - shedOldest() moves the *consumer* cursor from the producer's
 *    context, so it is only legal while the consumer is quiescent —
 *    the ingest service guarantees this by phase-structuring offer
 *    and pump (see stream::IngestService).
 */

#ifndef GPUSC_STREAM_SPSC_RING_H
#define GPUSC_STREAM_SPSC_RING_H

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace gpusc::stream {

/** Bounded wait-free SPSC FIFO. */
template <typename T>
class SpscRing
{
  public:
    /** @param capacity max elements held; must be >= 1. */
    explicit SpscRing(std::size_t capacity)
        : slots_(capacity < 1 ? 2 : capacity + 1)
    {
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /** Max elements the ring can hold. */
    std::size_t capacity() const { return slots_.size() - 1; }

    /**
     * Producer side: enqueue @p v.
     * @return false (ring unchanged) when full.
     */
    bool
    tryPush(T v)
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        std::size_t next = tail + 1;
        if (next == slots_.size())
            next = 0;
        if (next == headCache_) {
            headCache_ = head_.load(std::memory_order_acquire);
            if (next == headCache_)
                return false;
        }
        slots_[tail] = std::move(v);
        tail_.store(next, std::memory_order_release);
        return true;
    }

    /**
     * Consumer side: dequeue into @p out.
     * @return false (out untouched) when empty.
     */
    bool
    tryPop(T &out)
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        if (head == tailCache_) {
            tailCache_ = tail_.load(std::memory_order_acquire);
            if (head == tailCache_)
                return false;
        }
        out = std::move(slots_[head]);
        std::size_t next = head + 1;
        if (next == slots_.size())
            next = 0;
        head_.store(next, std::memory_order_release);
        return true;
    }

    /**
     * Drop the oldest queued element to make room (the shed-oldest
     * backpressure policy). This advances the consumer cursor from
     * the producer's context and is therefore ONLY legal while the
     * consumer is quiescent (no concurrent tryPop) — the ingest
     * service's phase structure guarantees that.
     * @return true if an element was dropped.
     */
    bool
    shedOldest(T &out)
    {
        return tryPop(out);
    }

    /** True when no elements are queued (approximate under
     *  concurrency, exact while the other side is quiescent). */
    bool
    empty() const
    {
        return head_.load(std::memory_order_acquire) ==
               tail_.load(std::memory_order_acquire);
    }

    /** Elements queued (same caveat as empty()). */
    std::size_t
    size() const
    {
        const std::size_t head = head_.load(std::memory_order_acquire);
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        return tail >= head ? tail - head
                            : slots_.size() - head + tail;
    }

    /** Heap bytes backing the slot array (memory accounting). */
    std::size_t
    slotBytes() const
    {
        return slots_.size() * sizeof(T);
    }

  private:
    /** Consumer cursor; next slot to pop. */
    alignas(64) std::atomic<std::size_t> head_{0};
    /** Producer's cached view of head_ (producer-local). */
    alignas(64) std::size_t headCache_ = 0;
    /** Producer cursor; next slot to fill. */
    alignas(64) std::atomic<std::size_t> tail_{0};
    /** Consumer's cached view of tail_ (consumer-local). */
    alignas(64) std::size_t tailCache_ = 0;
    std::vector<T> slots_;
};

} // namespace gpusc::stream

#endif // GPUSC_STREAM_SPSC_RING_H
