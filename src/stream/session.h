/**
 * @file
 * One victim session of the streaming ingest service.
 *
 * A session bundles everything one eavesdropping target needs:
 *  - its own SignatureModel *copy* (online adaptation mutates it, so
 *    sessions never share a model instance),
 *  - a detached attack::Eavesdropper consuming readings through
 *    feedReading() — the identical code path trace::TraceReplayer
 *    uses, which is what makes single-session ingest bit-identical
 *    to batch replay,
 *  - a bounded SpscRing of pending readings (the ingest queue),
 *  - an optional TemplateUpdater wired to the eavesdropper's
 *    accept listener,
 *  - a private obs::Telemetry context, merged into the service
 *    aggregate in session-id order so the aggregate is identical
 *    for any pump-worker count.
 *
 * Sessions are created and drained by stream::SessionManager /
 * stream::IngestService; nothing here is thread-safe on its own
 * beyond the ring's SPSC contract.
 */

#ifndef GPUSC_STREAM_SESSION_H
#define GPUSC_STREAM_SESSION_H

#include <cstdint>
#include <memory>

#include "attack/eavesdropper.h"
#include "obs/live/exposition.h"
#include "obs/telemetry.h"
#include "stream/spsc_ring.h"
#include "stream/template_updater.h"

namespace gpusc::stream {

/** Stable identity of one victim session. */
using SessionId = std::uint64_t;

/** Per-session construction knobs (shared by all sessions). */
struct SessionConfig
{
    /** Ingest queue depth, readings. */
    std::size_t ringCapacity = 256;
    /**
     * Readings popped from the ring per feedReadings() call when
     * draining (clamped to >= 1). Batching amortises the per-call
     * pipeline entry; results are bit-identical for any batch size.
     */
    std::size_t drainBatch = 64;
    /**
     * Pipeline knobs for the per-session eavesdropper. The telemetry
     * field is ignored — each session gets its own context.
     */
    attack::Eavesdropper::Params eavesdropper{};
    /**
     * Ring capacities of the per-session telemetry context. Small by
     * default: a service holds thousands of sessions, and decision
     * *counts* (which the funnel identity is checked on) are never
     * bounded by these rings.
     */
    obs::Telemetry::Params telemetry{.spanCapacity = 256,
                                     .auditCapacity = 1024};
    /** Enable online template adaptation. */
    bool adaptation = true;
    TemplateUpdater::Params adaptationParams{};
};

/** One victim session: queue + model copy + inference pipeline. */
class Session
{
  public:
    /** @param base model to copy; adaptation mutates only the copy. */
    Session(SessionId id, const attack::SignatureModel &base,
            const SessionConfig &config);

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    SessionId id() const { return id_; }

    /** The ingest queue (producer: offer; consumer: pump). */
    SpscRing<attack::Reading> &ring() { return ring_; }
    const SpscRing<attack::Reading> &ring() const { return ring_; }

    /**
     * Drain the ring into the inference pipeline. Consumer-side;
     * called by the ingest pump (possibly from a pool worker, but
     * never concurrently for one session).
     * @return readings processed.
     */
    std::size_t drain();

    attack::Eavesdropper &eavesdropper() { return *eavesdropper_; }
    const attack::Eavesdropper &eavesdropper() const
    {
        return *eavesdropper_;
    }

    /** The session's mutable model copy. */
    const attack::SignatureModel &model() const { return model_; }

    /** Null when adaptation is disabled. */
    const TemplateUpdater *updater() const { return updater_.get(); }

    obs::Telemetry &telemetry() { return telemetry_; }
    const obs::Telemetry &telemetry() const { return telemetry_; }

    /**
     * Estimated resident bytes of this session: the ring's slot
     * array, the serialised model size, the telemetry ring
     * capacities and the stolen-event backlog. An *accounting*
     * figure for the manager's budget, not an allocator census — it
     * is deterministic for a given ingest history, which is what LRU
     * eviction tests pin.
     */
    std::size_t memoryBytes() const;

    /** Total readings ever drained into the pipeline. */
    std::uint64_t readingsDrained() const { return drained_; }

    /** Backpressure bookkeeping, called by the ingest service when
     *  it sheds on this session's behalf (the service's aggregate
     *  counters can't say *which* session was overloaded). */
    void noteShedOldest() { ++shedOldest_; }
    void noteShedNewest() { ++shedNewest_; }
    /** Sim time of the most recent reading offered to this session
     *  (stamps the health view). */
    void noteOffer(SimTime t) { lastSeen_ = t; }

    std::uint64_t shedOldest() const { return shedOldest_; }
    std::uint64_t shedNewest() const { return shedNewest_; }

    /**
     * This session's health as the live telemetry plane exposes it
     * through /sessions and obs_top: queue depth, drain/shed
     * counts, adaptation activity, accepted keys, accounted memory.
     * A pure read — building a view perturbs nothing.
     */
    obs::live::SessionHealth healthView() const;

    /** LRU bookkeeping, owned by the SessionManager. */
    std::uint64_t lastTouch = 0;
    /** memoryBytes() as last folded into the manager's cached total;
     *  owned by the SessionManager. */
    std::size_t accountedBytes = 0;

  private:
    SessionId id_;
    attack::SignatureModel model_;
    std::size_t modelBytes_;
    obs::Telemetry telemetry_;
    SpscRing<attack::Reading> ring_;
    std::size_t telemetryRingBytes_;
    std::size_t drainBatch_;
    /** Drain scratch: readings popped this round, fed as one batch. */
    std::vector<attack::Reading> scratch_;
    std::uint64_t drained_ = 0;
    std::uint64_t shedOldest_ = 0;
    std::uint64_t shedNewest_ = 0;
    SimTime lastSeen_{};
    /** Declared after telemetry_ (its dtor flushes into it). */
    std::unique_ptr<attack::Eavesdropper> eavesdropper_;
    std::unique_ptr<TemplateUpdater> updater_;
};

} // namespace gpusc::stream

#endif // GPUSC_STREAM_SESSION_H
