#include "stream/ingest_service.h"

#include "util/logging.h"

namespace gpusc::stream {

IngestService::IngestService(const attack::SignatureModel &base,
                             Params params)
    : params_(params), manager_(base, params.sessions)
{
    auto &m = tel_.metrics;
    offeredCtr_ = &m.counter("ingest.readings_offered");
    shedOldestCtr_ = &m.counter("ingest.shed_oldest");
    shedNewestCtr_ = &m.counter("ingest.shed_newest");
    evictionsCtr_ = &m.counter("ingest.sessions_evicted");
    manager_.setEvictionListener([this](Session &s) {
        // Retire, never lose: the dying session's decision counts
        // fold into the service aggregate before destruction.
        s.eavesdropper().flushTelemetry();
        tel_.merge(s.telemetry());
        evictionsCtr_->inc();
        tel_.audit.record(offerTime_, obs::Stage::Ingest,
                          obs::Decision::SessionEvicted,
                          std::to_string(s.id()));
    });
}

bool
IngestService::offer(SessionId id, const attack::Reading &reading)
{
    ++offered_;
    offeredCtr_->inc();
    offerTime_ = reading.time;
    Session &session = manager_.getOrCreate(id);
    session.noteOffer(reading.time);
    return enqueue(session, reading);
}

bool
IngestService::enqueue(Session &session,
                       const attack::Reading &reading)
{
    if (session.ring().tryPush(reading))
        return true;
    switch (params_.backpressure) {
      case Backpressure::Block: {
        // Virtual-time "wait for the consumer": the offer and pump
        // phases never overlap, so blocking collapses to draining
        // this session inline and then enqueueing.
        ++blockDrains_;
        session.drain();
        if (!session.ring().tryPush(reading))
            panic("IngestService: ring still full after drain");
        return true;
      }
      case Backpressure::ShedOldest: {
        attack::Reading dropped;
        if (session.ring().shedOldest(dropped)) {
            ++shedOldest_;
            shedOldestCtr_->inc();
            session.noteShedOldest();
            tel_.audit.record(reading.time, obs::Stage::Ingest,
                              obs::Decision::ShedOldestDrop,
                              std::to_string(session.id()));
        }
        if (!session.ring().tryPush(reading))
            panic("IngestService: ring still full after shed");
        return true;
      }
      case Backpressure::ShedNewest:
        ++shedNewest_;
        shedNewestCtr_->inc();
        session.noteShedNewest();
        tel_.audit.record(reading.time, obs::Stage::Ingest,
                          obs::Decision::ShedNewestDrop,
                          std::to_string(session.id()));
        return false;
    }
    panic("IngestService: unknown backpressure policy");
}

std::size_t
IngestService::pump()
{
    std::size_t n = 0;
    for (const auto &[id, session] : manager_.all())
        n += session->drain();
    // Budget accounting is O(1) per offer; the backlog growth from
    // this bulk drain is folded back in one pass here.
    manager_.refreshAccounting();
    tickLivePlane();
    return n;
}

std::size_t
IngestService::pump(exec::ThreadPool &pool)
{
    // Snapshot in id order; each task owns exactly one session, so
    // per-session state and telemetry see no concurrent access.
    std::vector<Session *> sessions;
    sessions.reserve(manager_.size());
    for (const auto &[id, session] : manager_.all())
        sessions.push_back(session.get());
    std::vector<std::size_t> drained(sessions.size(), 0);
    pool.parallelFor(sessions.size(), [&](std::size_t i) {
        drained[i] = sessions[i]->drain();
    });
    std::size_t n = 0;
    for (const std::size_t d : drained)
        n += d;
    manager_.refreshAccounting();
    tickLivePlane();
    return n;
}

trace::TraceError
IngestService::ingestTraceFile(const std::string &path, SessionId id,
                               std::vector<Trial> *trialsOut)
{
    trace::TraceReader reader;
    if (const trace::TraceError err = reader.open(path);
        err != trace::TraceError::None)
        return err;
    return ingestTrace(reader, id, trialsOut);
}

trace::TraceError
IngestService::ingestTrace(trace::TraceReader &reader, SessionId id,
                           std::vector<Trial> *trialsOut)
{
    Trial trial;
    bool inTrial = false;
    std::size_t sincePump = 0;
    trace::TraceRecord rec;
    bool eof = false;
    trace::TraceError err;
    while ((err = reader.next(rec, eof)) == trace::TraceError::None &&
           !eof) {
        switch (rec.kind) {
          case trace::RecordKind::Reading:
            offer(id, rec.reading);
            if (++sincePump >= params_.tracePumpBatch) {
                pump();
                sincePump = 0;
            }
            break;
          case trace::RecordKind::TrialBegin:
            trial = Trial{};
            trial.truth = rec.text;
            trial.begin = rec.time;
            inTrial = true;
            break;
          case trace::RecordKind::TrialEnd:
            if (!inTrial)
                break;
            // Score on fully drained state, like the batch replayer
            // scores on fully fed state.
            pump();
            sincePump = 0;
            trial.end = rec.time;
            if (Session *s = manager_.find(id))
                trial.inferred =
                    s->eavesdropper().inferredTextBetween(trial.begin,
                                                          trial.end);
            if (trialsOut)
                trialsOut->push_back(trial);
            inTrial = false;
            break;
          default:
            // Ground-truth annotations (key presses, popups, app
            // switches, faults) carry labels, not input.
            break;
        }
    }
    pump();
    if (Session *s = manager_.find(id))
        s->eavesdropper().flushTelemetry();
    return err;
}

obs::live::LivePlane &
IngestService::enableLivePlane(obs::live::LiveConfig config)
{
    if (plane_)
        return *plane_;
    sessionsGauge_ = &tel_.metrics.gauge("stream.sessions_active");
    memUsedGauge_ = &tel_.metrics.gauge("stream.memory_used_bytes");
    memBudgetGauge_ =
        &tel_.metrics.gauge("stream.memory_budget_bytes");
    headroomGauge_ = &tel_.metrics.gauge("stream.memory_headroom");
    plane_ = std::make_unique<obs::live::LivePlane>(std::move(config),
                                                    &tel_);
    plane_->setDecisionProvider([this] {
        obs::live::DecisionCounts d;
        // The service trail already folded in every *evicted*
        // session's records; adding the live sessions makes the
        // windowed funnel the complete one aggregateTelemetry()
        // exports — which is what the reconciliation check compares.
        d.add(tel_.audit);
        for (const auto &[id, session] : manager_.all())
            d.add(session->telemetry().audit);
        return d;
    });
    plane_->setSessionHealthProvider(
        [this] { return manager_.healthViews(); });
    return *plane_;
}

void
IngestService::tickLivePlane()
{
    if (!plane_)
        return;
    const std::size_t budget = params_.sessions.memoryBudgetBytes;
    const std::size_t used = manager_.memoryUseBytes();
    sessionsGauge_->set(double(manager_.size()));
    memUsedGauge_->set(double(used));
    memBudgetGauge_->set(double(budget));
    headroomGauge_->set(
        budget > 0 ? 1.0 - double(used) / double(budget) : 0.0);
    plane_->maybeTick(offerTime_);
}

void
IngestService::finishLivePlane()
{
    if (!plane_)
        return;
    tickLivePlane();
    plane_->finish(offerTime_);
}

void
IngestService::aggregateTelemetry(obs::Telemetry &into)
{
    into.merge(tel_);
    for (const auto &[id, session] : manager_.all()) {
        session->eavesdropper().flushTelemetry();
        into.merge(session->telemetry());
    }
}

} // namespace gpusc::stream
