#include "stream/session.h"

namespace gpusc::stream {

Session::Session(SessionId id, const attack::SignatureModel &base,
                 const SessionConfig &config)
    : id_(id), model_(base), modelBytes_(model_.byteSize()),
      telemetry_(config.telemetry), ring_(config.ringCapacity),
      telemetryRingBytes_(
          config.telemetry.spanCapacity * sizeof(obs::Span) +
          config.telemetry.auditCapacity * sizeof(obs::AuditRecord))
{
    attack::Eavesdropper::Params params = config.eavesdropper;
    params.telemetry = &telemetry_;
    eavesdropper_ =
        std::make_unique<attack::Eavesdropper>(model_, params);
    if (config.adaptation) {
        updater_ = std::make_unique<TemplateUpdater>(
            model_, config.adaptationParams);
        updater_->setTelemetry(&telemetry_);
        eavesdropper_->setAcceptListener(
            [this](const attack::InferredKey &key) {
                updater_->onAccepted(key);
            });
    }
}

std::size_t
Session::drain()
{
    std::size_t n = 0;
    attack::Reading r;
    while (ring_.tryPop(r)) {
        eavesdropper_->feedReading(r);
        ++n;
    }
    drained_ += n;
    return n;
}

obs::live::SessionHealth
Session::healthView() const
{
    obs::live::SessionHealth h;
    h.id = id_;
    h.ringDepth = ring_.size();
    h.ringCapacity = ring_.capacity();
    h.readingsDrained = drained_;
    h.shedOldest = shedOldest_;
    h.shedNewest = shedNewest_;
    h.templateUpdates = updater_ ? updater_->updatesApplied() : 0;
    h.acceptedKeys =
        telemetry_.audit.count(obs::Decision::AcceptedKey);
    h.memoryBytes = memoryBytes();
    h.lastTouch = lastSeen_;
    return h;
}

std::size_t
Session::memoryBytes() const
{
    return sizeof(Session) + ring_.slotBytes() + modelBytes_ +
           telemetryRingBytes_ +
           eavesdropper_->events().capacity() *
               sizeof(attack::StolenEvent);
}

} // namespace gpusc::stream
