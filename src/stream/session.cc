#include "stream/session.h"

namespace gpusc::stream {

Session::Session(SessionId id, const attack::SignatureModel &base,
                 const SessionConfig &config)
    : id_(id), model_(base), modelBytes_(model_.byteSize()),
      telemetry_(config.telemetry), ring_(config.ringCapacity),
      telemetryRingBytes_(
          config.telemetry.spanCapacity * sizeof(obs::Span) +
          config.telemetry.auditCapacity * sizeof(obs::AuditRecord)),
      drainBatch_(config.drainBatch > 0 ? config.drainBatch : 1)
{
    scratch_.reserve(drainBatch_);
    attack::Eavesdropper::Params params = config.eavesdropper;
    params.telemetry = &telemetry_;
    eavesdropper_ =
        std::make_unique<attack::Eavesdropper>(model_, params);
    if (config.adaptation) {
        updater_ = std::make_unique<TemplateUpdater>(
            model_, config.adaptationParams);
        updater_->setTelemetry(&telemetry_);
        eavesdropper_->setAcceptListener(
            [this](const attack::InferredKey &key) {
                updater_->onAccepted(key);
            });
    }
}

std::size_t
Session::drain()
{
    // Pop up to drainBatch readings at a time and feed them through
    // the batch entry point — identical pipeline results to feeding
    // one reading per call, with the per-call overhead paid once per
    // batch.
    std::size_t n = 0;
    attack::Reading r;
    scratch_.clear();
    while (ring_.tryPop(r)) {
        scratch_.push_back(r);
        if (scratch_.size() >= drainBatch_) {
            eavesdropper_->feedReadings(scratch_);
            n += scratch_.size();
            scratch_.clear();
        }
    }
    if (!scratch_.empty()) {
        eavesdropper_->feedReadings(scratch_);
        n += scratch_.size();
        scratch_.clear();
    }
    drained_ += n;
    return n;
}

obs::live::SessionHealth
Session::healthView() const
{
    obs::live::SessionHealth h;
    h.id = id_;
    h.ringDepth = ring_.size();
    h.ringCapacity = ring_.capacity();
    h.readingsDrained = drained_;
    h.shedOldest = shedOldest_;
    h.shedNewest = shedNewest_;
    h.templateUpdates = updater_ ? updater_->updatesApplied() : 0;
    h.acceptedKeys =
        telemetry_.audit.count(obs::Decision::AcceptedKey);
    h.memoryBytes = memoryBytes();
    h.lastTouch = lastSeen_;
    return h;
}

std::size_t
Session::memoryBytes() const
{
    return sizeof(Session) + ring_.slotBytes() + modelBytes_ +
           telemetryRingBytes_ +
           eavesdropper_->events().capacity() *
               sizeof(attack::StolenEvent);
}

} // namespace gpusc::stream
