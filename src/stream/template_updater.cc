#include "stream/template_updater.h"

namespace gpusc::stream {

void
TemplateUpdater::setTelemetry(obs::Telemetry *tel)
{
    telemetry_ = tel;
    updatesCtr_ =
        tel ? &tel->metrics.counter("ingest.template_updates") : nullptr;
}

bool
TemplateUpdater::onAccepted(const attack::InferredKey &key)
{
    if (!params_.updatePageLabels && attack::isPageLabel(key.label)) {
        ++pageSkips_;
        return false;
    }
    if (key.distance > params_.confidenceMargin * model_.threshold()) {
        ++lowConf_;
        return false;
    }
    if (!model_.updateSignature(key.label, key.delta, params_.blend))
        return false;
    ++applied_;
    if (telemetry_) {
        updatesCtr_->inc();
        telemetry_->audit.record(key.time, obs::Stage::Ingest,
                                 obs::Decision::TemplateUpdated,
                                 key.label, key.distance);
    }
    return true;
}

} // namespace gpusc::stream
