/**
 * @file
 * The streaming ingest service: a daemon-style loop that multiplexes
 * many concurrent victim sessions through the attack's inference
 * pipeline.
 *
 * Producers call offer(sessionId, reading) to enqueue sampler
 * readings onto the session's bounded SPSC ring; the pump drains the
 * rings through each session's detached Eavesdropper, either
 * serially (session-id order — the deterministic baseline) or across
 * an exec::ThreadPool (one session per task, per-session telemetry,
 * merged in id order, so aggregates are identical for any worker
 * count).
 *
 * The service is *phase-structured*: offer() and pump() never run
 * concurrently. Within a phase, rings still honour their SPSC
 * contract, so a deployment that wants a live producer thread gets
 * one ring-buffered hand-off per session for free; the phase
 * structure is what additionally legalises shed-oldest (a
 * consumer-cursor pop from the producer's context) and the inline
 * drain of the Block policy.
 *
 * Backpressure on a full ring is explicit policy:
 *  - Block: drain the session inline, then enqueue (virtual-time
 *    "wait for the consumer"); never loses a reading.
 *  - ShedOldest: drop the oldest queued reading to admit the new one
 *    (freshness wins).
 *  - ShedNewest: drop the incoming reading (queue stays intact).
 * Every shed is counted and audited under obs::Stage::Ingest. Sheds
 * drop *readings* before change detection, so the change-funnel
 * identity (changes_in == accepted + split + dup + noise +
 * suppressed) still partitions exactly over the aggregate trail.
 */

#ifndef GPUSC_STREAM_INGEST_SERVICE_H
#define GPUSC_STREAM_INGEST_SERVICE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/live/live_plane.h"
#include "stream/session_manager.h"
#include "trace/trace_reader.h"

namespace gpusc::stream {

/** Multiplexes victim sessions over the inference pipeline. */
class IngestService
{
  public:
    /** What offer() does when a session's ring is full. */
    enum class Backpressure
    {
        Block,      ///< drain inline, then enqueue (lossless)
        ShedOldest, ///< drop the oldest queued reading
        ShedNewest, ///< drop the incoming reading
    };

    struct Params
    {
        Backpressure backpressure = Backpressure::Block;
        /** Session table knobs (budgets + per-session config). */
        SessionManager::Params sessions{};
        /** Readings between pump() calls during trace ingest. */
        std::size_t tracePumpBatch = 64;
    };

    /** @param base model copied into each session (not owned; must
     *  outlive the service). */
    IngestService(const attack::SignatureModel &base, Params params);

    IngestService(const IngestService &) = delete;
    IngestService &operator=(const IngestService &) = delete;

    /**
     * Enqueue one reading for @p id, creating the session on first
     * sight (which may LRU-evict others).
     * @return false iff the reading was shed (ShedNewest policy).
     */
    bool offer(SessionId id, const attack::Reading &reading);

    /**
     * Drain every session's ring through its pipeline, in session-id
     * order. @return readings processed.
     */
    std::size_t pump();

    /**
     * Drain sessions in parallel, one pool task per session. Each
     * session's readings are still processed in FIFO order on a
     * single task, and telemetry is per-session, so the aggregate
     * (see aggregateTelemetry) is identical to serial pump().
     * @return readings processed.
     */
    std::size_t pump(exec::ThreadPool &pool);

    /** One scored credential trial of a replayed trace. */
    struct Trial
    {
        std::string truth{};
        std::string inferred{};
        SimTime begin{};
        SimTime end{};
    };

    /**
     * Stream a recorded .gpct trace into session @p id: Reading
     * records are offer()ed (pumping every Params::tracePumpBatch),
     * trial boundaries are scored against the session's inferred
     * text exactly as trace::TraceReplayer scores them. With the
     * Block policy, a single-session ingest of a trace is
     * bit-identical to batch replay of the same file (pinned by
     * tests/stream/).
     */
    trace::TraceError
    ingestTraceFile(const std::string &path, SessionId id,
                    std::vector<Trial> *trialsOut = nullptr);

    /** Same, from an already-open reader. */
    trace::TraceError ingestTrace(trace::TraceReader &reader,
                                  SessionId id,
                                  std::vector<Trial> *trialsOut);

    SessionManager &sessions() { return manager_; }
    const SessionManager &sessions() const { return manager_; }

    /**
     * Service-level telemetry: shed/eviction decisions plus the
     * retired telemetry of every evicted session. Live sessions'
     * contexts are NOT included — aggregateTelemetry() folds
     * everything together.
     */
    const obs::Telemetry &serviceTelemetry() const { return tel_; }

    /**
     * Merge the full picture into @p into: service-level telemetry
     * (sheds, evictions, retired sessions) plus every live session's
     * context, in session-id order. Flushes the sessions' lazily
     * batched counters first, so the result is exact.
     */
    void aggregateTelemetry(obs::Telemetry &into);

    /**
     * Attach a live telemetry plane over the service's telemetry:
     * pump() then ticks it at the current offer sim-time, with a
     * decision provider covering the *whole* funnel (service trail,
     * which already holds every evicted session's records, plus each
     * live session's trail) and a session-health provider backed by
     * SessionManager::healthViews(). Also publishes the service
     * gauges `stream.sessions_active`, `stream.memory_used_bytes`,
     * `stream.memory_budget_bytes` and `stream.memory_headroom` at
     * each tick. Strictly observational: enabling the plane changes
     * no inferred output (pinned by tests/stream/live_plane_test).
     * @return the plane, for SLO/endpoint inspection.
     */
    obs::live::LivePlane &
    enableLivePlane(obs::live::LiveConfig config);

    /** Final plane flush: close the open window, publish, write the
     *  sink trailers. No-op without enableLivePlane. */
    void finishLivePlane();

    /** The attached plane, or null. */
    obs::live::LivePlane *livePlane() { return plane_.get(); }
    const obs::live::LivePlane *livePlane() const
    {
        return plane_.get();
    }

    // Diagnostics.
    std::uint64_t readingsOffered() const { return offered_; }
    std::uint64_t readingsShedOldest() const { return shedOldest_; }
    std::uint64_t readingsShedNewest() const { return shedNewest_; }
    /** Inline drains forced by the Block policy. */
    std::uint64_t blockDrains() const { return blockDrains_; }

    const Params &params() const { return params_; }

  private:
    bool enqueue(Session &session, const attack::Reading &reading);
    void tickLivePlane();

    Params params_;
    obs::Telemetry tel_;
    SessionManager manager_;
    std::uint64_t offered_ = 0;
    std::uint64_t shedOldest_ = 0;
    std::uint64_t shedNewest_ = 0;
    std::uint64_t blockDrains_ = 0;
    /** Sim time of the reading currently being offered (stamps
     *  eviction audit records, which have no reading of their own). */
    SimTime offerTime_{};
    obs::Counter *offeredCtr_ = nullptr;
    obs::Counter *shedOldestCtr_ = nullptr;
    obs::Counter *shedNewestCtr_ = nullptr;
    obs::Counter *evictionsCtr_ = nullptr;
    /** Live telemetry plane; null until enableLivePlane(). The
     *  service gauges below are resolved when the plane attaches so
     *  a plane-less run's metrics snapshot stays byte-identical to
     *  the seed's. */
    std::unique_ptr<obs::live::LivePlane> plane_;
    obs::Gauge *sessionsGauge_ = nullptr;
    obs::Gauge *memUsedGauge_ = nullptr;
    obs::Gauge *memBudgetGauge_ = nullptr;
    obs::Gauge *headroomGauge_ = nullptr;
};

} // namespace gpusc::stream

#endif // GPUSC_STREAM_INGEST_SERVICE_H
