/**
 * @file
 * Session table of the streaming ingest service: creation on first
 * offer, lookup, and budget-driven LRU eviction.
 *
 * The manager multiplexes thousands of concurrent victim sessions
 * under two explicit ceilings — a session-count cap and a memory
 * budget over the sessions' accounted bytes (Session::memoryBytes).
 * When either is exceeded, least-recently-touched sessions are
 * reclaimed (ties break toward the lowest session id, so eviction
 * order is fully deterministic). The most recently touched session
 * is never evicted: the offer that triggered enforcement must land.
 *
 * Eviction is observable, not silent: an eviction listener runs
 * before the session is destroyed so the service can audit the
 * decision and fold the dying session's telemetry into the retired
 * aggregate — evicting a session never loses decision counts.
 */

#ifndef GPUSC_STREAM_SESSION_MANAGER_H
#define GPUSC_STREAM_SESSION_MANAGER_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "stream/session.h"

namespace gpusc::stream {

/** Owns the session table and enforces its budgets. */
class SessionManager
{
  public:
    struct Params
    {
        /** Hard cap on concurrently held sessions. */
        std::size_t maxSessions = 4096;
        /** Budget over the sum of Session::memoryBytes(). */
        std::size_t memoryBudgetBytes = 256u << 20;
        /** Construction knobs shared by every session. */
        SessionConfig session{};
    };

    /** @param base model copied into each new session (not owned;
     *  must outlive the manager). */
    SessionManager(const attack::SignatureModel &base, Params params);

    SessionManager(const SessionManager &) = delete;
    SessionManager &operator=(const SessionManager &) = delete;

    /**
     * Look up @p id, creating the session on first sight; marks it
     * most-recently-used and enforces the budgets (which may evict
     * *other* sessions before this returns).
     */
    Session &getOrCreate(SessionId id);

    /** Look up without creating or touching. @return null if absent. */
    Session *find(SessionId id);
    const Session *find(SessionId id) const;

    /** Mark @p session most-recently-used. */
    void touch(Session &session);

    /** Explicitly remove a session (through the eviction listener,
     *  so its telemetry is retired, not lost).
     *  @return false if absent. */
    bool remove(SessionId id);

    /**
     * Evict least-recently-touched sessions until both budgets hold.
     * Runs automatically from getOrCreate; exposed for callers that
     * grow sessions out-of-band (e.g. after a large drain).
     * @return ids evicted, in eviction order.
     */
    std::vector<SessionId> enforceBudget();

    /**
     * Called with each session about to be evicted/removed, before
     * destruction. The ingest service merges telemetry and audits
     * the eviction here.
     */
    void setEvictionListener(std::function<void(Session &)> fn)
    {
        evictionListener_ = std::move(fn);
    }

    /**
     * Re-measure every session and fold the deltas into the cached
     * total. O(sessions); call after a bulk drain (pump does) so the
     * budget sees backlog growth that happened out-of-band.
     */
    void refreshAccounting();

    std::size_t size() const { return sessions_.size(); }
    /** Cached sum of the sessions' accounted bytes. Exact for every
     *  session as of its last touch or refreshAccounting(). */
    std::size_t memoryUseBytes() const { return accountedTotal_; }
    std::uint64_t sessionsCreated() const { return created_; }
    std::uint64_t sessionsEvicted() const { return evicted_; }

    const Params &params() const { return params_; }

    /** Ordered session table (iteration is id-ordered — the merge
     *  order that makes aggregates worker-count independent). */
    const std::map<SessionId, std::unique_ptr<Session>> &all() const
    {
        return sessions_;
    }

    /** Health views of every live session, in id order — the
     *  /sessions payload of the live telemetry plane. */
    std::vector<obs::live::SessionHealth> healthViews() const;

  private:
    void evictOne(SessionId id);
    /** Fold @p session's current memoryBytes() into the cached
     *  total (delta update, O(1)). */
    void reaccount(Session &session);

    const attack::SignatureModel &base_;
    Params params_;
    std::map<SessionId, std::unique_ptr<Session>> sessions_;
    std::function<void(Session &)> evictionListener_;
    /** Monotonic LRU clock; bumped on every touch. */
    std::uint64_t touchSeq_ = 0;
    std::uint64_t created_ = 0;
    std::uint64_t evicted_ = 0;
    /** Sum of the live sessions' accountedBytes — keeps budget
     *  checks O(1) per offer instead of O(sessions). */
    std::size_t accountedTotal_ = 0;
};

} // namespace gpusc::stream

#endif // GPUSC_STREAM_SESSION_MANAGER_H
