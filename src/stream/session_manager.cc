#include "stream/session_manager.h"

#include <algorithm>

namespace gpusc::stream {

SessionManager::SessionManager(const attack::SignatureModel &base,
                               Params params)
    : base_(base), params_(params)
{
}

Session &
SessionManager::getOrCreate(SessionId id)
{
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
        it = sessions_
                 .emplace(id, std::make_unique<Session>(
                                  id, base_, params_.session))
                 .first;
        ++created_;
    }
    touch(*it->second);
    reaccount(*it->second);
    enforceBudget();
    return *it->second;
}

Session *
SessionManager::find(SessionId id)
{
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second.get();
}

const Session *
SessionManager::find(SessionId id) const
{
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second.get();
}

void
SessionManager::touch(Session &session)
{
    session.lastTouch = ++touchSeq_;
}

bool
SessionManager::remove(SessionId id)
{
    auto it = sessions_.find(id);
    if (it == sessions_.end())
        return false;
    if (evictionListener_)
        evictionListener_(*it->second);
    accountedTotal_ -= it->second->accountedBytes;
    sessions_.erase(it);
    return true;
}

void
SessionManager::reaccount(Session &session)
{
    const std::size_t now = session.memoryBytes();
    accountedTotal_ += now - session.accountedBytes;
    session.accountedBytes = now;
}

void
SessionManager::refreshAccounting()
{
    for (const auto &[id, s] : sessions_)
        reaccount(*s);
}

std::vector<SessionId>
SessionManager::enforceBudget()
{
    std::vector<SessionId> evictedIds;
    while (sessions_.size() > 1 &&
           (sessions_.size() > params_.maxSessions ||
            memoryUseBytes() > params_.memoryBudgetBytes)) {
        // Least-recently-touched; id-ordered iteration makes the
        // lowest id win ties, so eviction order is deterministic.
        const Session *lru = nullptr;
        std::uint64_t newest = 0;
        for (const auto &[id, s] : sessions_) {
            newest = std::max(newest, s->lastTouch);
            if (!lru || s->lastTouch < lru->lastTouch)
                lru = s.get();
        }
        // The most recently touched session is the one the caller is
        // actively offering into — never evict it, even over budget.
        if (!lru || lru->lastTouch == newest)
            break;
        evictedIds.push_back(lru->id());
        evictOne(lru->id());
    }
    return evictedIds;
}

void
SessionManager::evictOne(SessionId id)
{
    ++evicted_;
    remove(id);
}

std::vector<obs::live::SessionHealth>
SessionManager::healthViews() const
{
    std::vector<obs::live::SessionHealth> views;
    views.reserve(sessions_.size());
    for (const auto &[id, session] : sessions_)
        views.push_back(session->healthView());
    return views;
}

} // namespace gpusc::stream
