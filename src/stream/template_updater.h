/**
 * @file
 * Online template adaptation: the enrollment/match/update loop.
 *
 * Biometric matchers refresh their enrolled templates from
 * high-confidence matches so the template tracks slow drift in the
 * signal; this component does the same for the attack's signature
 * model. Every key press that survives the full inference pipeline
 * (classification + app-switch suppression) is offered to the
 * updater; matches whose distance clears a confidence margin well
 * inside C_th are folded back into that label's centroid with an
 * exponential blend:
 *
 *   centroid' = round((1 - blend) * centroid + blend * delta)
 *
 * where delta is the *effective* matched vector (blink-subtracted or
 * split-combined when that is what matched — see
 * SignatureModel::classifyRobust), so the blend never ingests a
 * cursor-blink-contaminated raw delta.
 *
 * The loop is deterministic: no randomness, no wall clock, and
 * llround blending, so a given observation sequence always produces
 * the same adapted model. Low-confidence matches are counted but
 * never applied — adapting on borderline matches would let one
 * misclassification drag a centroid toward a neighbouring class
 * (template poisoning).
 */

#ifndef GPUSC_STREAM_TEMPLATE_UPDATER_H
#define GPUSC_STREAM_TEMPLATE_UPDATER_H

#include <cstdint>

#include "attack/online_inference.h"
#include "attack/signature.h"
#include "obs/telemetry.h"

namespace gpusc::stream {

/** Folds high-confidence matches back into a session's model. */
class TemplateUpdater
{
  public:
    struct Params
    {
        /**
         * Exponential blend weight of one new observation. Small
         * values adapt slowly but resist poisoning; 1/8 tracks the
         * drift rates of bench/stream_throughput's scenario while a
         * single outlier moves a centroid by at most 12.5 %.
         */
        double blend = 0.125;
        /**
         * Update only when distance <= confidenceMargin * C_th. The
         * margin must be < 1: matches near the acceptance threshold
         * are exactly the ones most likely to be misclassified.
         */
        double confidenceMargin = 0.6;
        /** Adapt page-switch signatures too (off: keys only). */
        bool updatePageLabels = false;
    };

    /**
     * @param model the session's own mutable model copy — never a
     * shared or store-owned instance (updates are per-session).
     */
    TemplateUpdater(attack::SignatureModel &model, Params params)
        : model_(model), params_(params)
    {
    }

    TemplateUpdater(const TemplateUpdater &) = delete;
    TemplateUpdater &operator=(const TemplateUpdater &) = delete;

    /**
     * Attach a telemetry context: an `ingest.template_updates`
     * counter and a TemplateUpdated audit record per applied update
     * (label + distance). Observational only.
     */
    void setTelemetry(obs::Telemetry *tel);

    /**
     * Offer one accepted key press (wired to
     * attack::Eavesdropper::setAcceptListener). Applies the blend
     * when the match clears the confidence margin.
     * @return true if the model was updated.
     */
    bool onAccepted(const attack::InferredKey &key);

    // Diagnostics.
    std::uint64_t updatesApplied() const { return applied_; }
    std::uint64_t lowConfidenceSkips() const { return lowConf_; }
    std::uint64_t pageLabelSkips() const { return pageSkips_; }

    const Params &params() const { return params_; }

  private:
    attack::SignatureModel &model_;
    Params params_;
    std::uint64_t applied_ = 0;
    std::uint64_t lowConf_ = 0;
    std::uint64_t pageSkips_ = 0;
    obs::Telemetry *telemetry_ = nullptr;
    obs::Counter *updatesCtr_ = nullptr;
};

} // namespace gpusc::stream

#endif // GPUSC_STREAM_TEMPLATE_UPDATER_H
