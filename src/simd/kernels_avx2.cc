/**
 * @file
 * AVX2 backend: 4 doubles per vector, one lane per panel row.
 *
 * Bit-exactness contract: every lane executes the identical IEEE
 * operation sequence as the scalar reference — subtract, (optional
 * weight) multiply, square multiply, add — in the same dimension
 * order. Multiplies and adds are issued as separate intrinsics and
 * the TU is compiled with contraction off, so no FMA ever merges
 * them into a differently-rounded fused op. The across-dimension
 * per-pair reductions reuse the scalar reference directly (splitting
 * them over lanes would reorder the sum).
 *
 * This TU is compiled with -mavx2 only when the target is x86-64 and
 * GPUSC_SIMD allows it; the dispatcher additionally checks cpuid at
 * startup before routing through this table.
 */

#include "simd/backends.h"

#if defined(GPUSC_SIMD_HAVE_AVX2)

#include <immintrin.h>

#include "simd/kernels_ref.h"

namespace gpusc::simd::detail {

namespace {

constexpr std::size_t kLanes = 4;

/** Row-blocks interleaved per dimension step. One accumulator chain
 *  per block means the loop is bound by vaddpd latency, not
 *  throughput; four independent chains keep the adder busy. Within
 *  each lane the accumulation order is still strictly dimension
 *  order, so interleaving blocks cannot change a single bit. */
constexpr std::size_t kBlocks = 4;
constexpr std::size_t kGroup = kBlocks * kLanes; // 16 rows

/**
 * Dims between all-lanes-pruned early-exit checks (check when
 * (d & mask) == mask, i.e. every other dimension). With realistic
 * classify traffic the bound gets tight after the first group, so
 * checking often prunes whole groups after 2 dims; checking every
 * dimension costs more in cmp/movemask than the last dim it saves.
 */
constexpr std::size_t kExitCheckMask = 1;

/**
 * Group loop bound: full kGroup-row groups must stay inside the
 * lane-padded stride (padded rows are +inf and are simply never
 * stored / never win).
 */
inline std::size_t
groupEnd(const Panel &panel)
{
    const std::size_t stride = panel.stride();
    return stride >= kGroup ? stride - kGroup + 1 : 0;
}

template <bool Weighted>
inline void
toManyBody(const double *query, const double *weights,
           const Panel &panel, double *out)
{
    const std::size_t rows = panel.rows();
    const std::size_t dims = panel.dims();
    std::size_t kb = 0;
    for (const std::size_t end = groupEnd(panel); kb < end;
         kb += kGroup) {
        // Named accumulators: GCC keeps these in ymm registers where
        // an indexed __m256d array would spill to the stack per
        // iteration (-O2 does not unroll the block loop).
        __m256d a0 = _mm256_setzero_pd();
        __m256d a1 = _mm256_setzero_pd();
        __m256d a2 = _mm256_setzero_pd();
        __m256d a3 = _mm256_setzero_pd();
        for (std::size_t d = 0; d < dims; ++d) {
            const __m256d q = _mm256_set1_pd(query[d]);
            const double *col = panel.col(d) + kb;
            __m256d d0 = _mm256_sub_pd(q, _mm256_loadu_pd(col));
            __m256d d1 =
                _mm256_sub_pd(q, _mm256_loadu_pd(col + kLanes));
            __m256d d2 =
                _mm256_sub_pd(q, _mm256_loadu_pd(col + 2 * kLanes));
            __m256d d3 =
                _mm256_sub_pd(q, _mm256_loadu_pd(col + 3 * kLanes));
            if constexpr (Weighted) {
                const __m256d w = _mm256_set1_pd(weights[d]);
                d0 = _mm256_mul_pd(d0, w);
                d1 = _mm256_mul_pd(d1, w);
                d2 = _mm256_mul_pd(d2, w);
                d3 = _mm256_mul_pd(d3, w);
            }
            a0 = _mm256_add_pd(a0, _mm256_mul_pd(d0, d0));
            a1 = _mm256_add_pd(a1, _mm256_mul_pd(d1, d1));
            a2 = _mm256_add_pd(a2, _mm256_mul_pd(d2, d2));
            a3 = _mm256_add_pd(a3, _mm256_mul_pd(d3, d3));
        }
        double sums[kGroup];
        _mm256_storeu_pd(sums, a0);
        _mm256_storeu_pd(sums + kLanes, a1);
        _mm256_storeu_pd(sums + 2 * kLanes, a2);
        _mm256_storeu_pd(sums + 3 * kLanes, a3);
        const std::size_t lanes =
            rows - kb < kGroup ? rows - kb : kGroup;
        for (std::size_t lane = 0; lane < lanes; ++lane)
            out[kb + lane] = sums[lane];
    }
    for (; kb < rows; kb += kLanes) {
        __m256d acc = _mm256_setzero_pd();
        for (std::size_t d = 0; d < dims; ++d) {
            const __m256d q = _mm256_set1_pd(query[d]);
            __m256d diff =
                _mm256_sub_pd(q, _mm256_loadu_pd(panel.col(d) + kb));
            if constexpr (Weighted)
                diff = _mm256_mul_pd(diff,
                                     _mm256_set1_pd(weights[d]));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
        }
        double sums[kLanes];
        _mm256_storeu_pd(sums, acc);
        const std::size_t lanes =
            rows - kb < kLanes ? rows - kb : kLanes;
        for (std::size_t lane = 0; lane < lanes; ++lane)
            out[kb + lane] = sums[lane];
    }
}

void
l2sqToManyAvx2(const double *query, const Panel &panel, double *out)
{
    toManyBody<false>(query, nullptr, panel, out);
}

void
wl2sqToManyAvx2(const double *query, const double *weights,
                const Panel &panel, double *out)
{
    toManyBody<true>(query, weights, panel, out);
}

/**
 * Shared argmin body. Pruning only ever *skips* rows whose partial
 * sums already reached the current best (padded lanes sit at +inf
 * from dimension 0, so they prune themselves and can never win);
 * completed sums are bit-exact, and the winner scan walks lanes in
 * row order with strict <, reproducing the scalar first-wins
 * tie-break.
 */
template <bool Weighted>
Argmin
argminBody(const double *query, const double *weights,
           const Panel &panel)
{
    Argmin best;
    const std::size_t rows = panel.rows();
    const std::size_t dims = panel.dims();
    std::size_t kb = 0;
    for (const std::size_t end = groupEnd(panel); kb < end;
         kb += kGroup) {
        // Named accumulators for the same register-allocation reason
        // as toManyBody.
        __m256d a0 = _mm256_setzero_pd();
        __m256d a1 = _mm256_setzero_pd();
        __m256d a2 = _mm256_setzero_pd();
        __m256d a3 = _mm256_setzero_pd();
        const __m256d bound = _mm256_set1_pd(best.sq);
        std::size_t d = 0;
        for (; d < dims; ++d) {
            const __m256d q = _mm256_set1_pd(query[d]);
            const double *col = panel.col(d) + kb;
            __m256d d0 = _mm256_sub_pd(q, _mm256_loadu_pd(col));
            __m256d d1 =
                _mm256_sub_pd(q, _mm256_loadu_pd(col + kLanes));
            __m256d d2 =
                _mm256_sub_pd(q, _mm256_loadu_pd(col + 2 * kLanes));
            __m256d d3 =
                _mm256_sub_pd(q, _mm256_loadu_pd(col + 3 * kLanes));
            if constexpr (Weighted) {
                const __m256d w = _mm256_set1_pd(weights[d]);
                d0 = _mm256_mul_pd(d0, w);
                d1 = _mm256_mul_pd(d1, w);
                d2 = _mm256_mul_pd(d2, w);
                d3 = _mm256_mul_pd(d3, w);
            }
            a0 = _mm256_add_pd(a0, _mm256_mul_pd(d0, d0));
            a1 = _mm256_add_pd(a1, _mm256_mul_pd(d1, d1));
            a2 = _mm256_add_pd(a2, _mm256_mul_pd(d2, d2));
            a3 = _mm256_add_pd(a3, _mm256_mul_pd(d3, d3));
            if ((d & kExitCheckMask) == kExitCheckMask) {
                const __m256d ge = _mm256_and_pd(
                    _mm256_and_pd(
                        _mm256_cmp_pd(a0, bound, _CMP_GE_OQ),
                        _mm256_cmp_pd(a1, bound, _CMP_GE_OQ)),
                    _mm256_and_pd(
                        _mm256_cmp_pd(a2, bound, _CMP_GE_OQ),
                        _mm256_cmp_pd(a3, bound, _CMP_GE_OQ)));
                if (_mm256_movemask_pd(ge) == 0xF)
                    break;
            }
        }
        if (d < dims)
            continue; // every lane already past the current best
        double sums[kGroup];
        _mm256_storeu_pd(sums, a0);
        _mm256_storeu_pd(sums + kLanes, a1);
        _mm256_storeu_pd(sums + 2 * kLanes, a2);
        _mm256_storeu_pd(sums + 3 * kLanes, a3);
        const std::size_t lanes =
            rows - kb < kGroup ? rows - kb : kGroup;
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            if (sums[lane] < best.sq) {
                best.sq = sums[lane];
                best.index = kb + lane;
            }
        }
    }
    for (; kb < rows; kb += kLanes) {
        __m256d acc = _mm256_setzero_pd();
        const __m256d bound = _mm256_set1_pd(best.sq);
        std::size_t d = 0;
        for (; d < dims; ++d) {
            const __m256d q = _mm256_set1_pd(query[d]);
            const __m256d c = _mm256_loadu_pd(panel.col(d) + kb);
            __m256d diff = _mm256_sub_pd(q, c);
            if constexpr (Weighted)
                diff = _mm256_mul_pd(diff,
                                     _mm256_set1_pd(weights[d]));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
            if ((d & kExitCheckMask) == kExitCheckMask) {
                const __m256d ge =
                    _mm256_cmp_pd(acc, bound, _CMP_GE_OQ);
                if (_mm256_movemask_pd(ge) == 0xF)
                    break;
            }
        }
        if (d < dims)
            continue; // every lane already past the current best
        double sums[kLanes];
        _mm256_storeu_pd(sums, acc);
        const std::size_t lanes =
            rows - kb < kLanes ? rows - kb : kLanes;
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            if (sums[lane] < best.sq) {
                best.sq = sums[lane];
                best.index = kb + lane;
            }
        }
    }
    return best;
}

Argmin
argminL2Avx2(const double *query, const Panel &panel)
{
    return argminBody<false>(query, nullptr, panel);
}

Argmin
argminWL2Avx2(const double *query, const double *weights,
              const Panel &panel)
{
    return argminBody<true>(query, weights, panel);
}

void
l2sqTileAvx2(const double *queries, std::size_t m, std::size_t qStride,
             const Panel &panel, double *out, std::size_t outStride)
{
    for (std::size_t q = 0; q < m; ++q)
        l2sqToManyAvx2(queries + q * qStride, panel,
                       out + q * outStride);
}

Kernels
makeTable()
{
    Kernels k;
    // Across-dimension reductions stay scalar by design (see file
    // comment); the panel kernels carry the vector win.
    k.l2sq = &ref::l2sq;
    k.l2sqEarlyExitGe = &ref::l2sqEarlyExitGe;
    k.l2sqEarlyExitGt = &ref::l2sqEarlyExitGt;
    k.wl2sq = &ref::wl2sq;
    k.dot = &ref::dot;
    k.sumSquares = &ref::sumSquares;
    k.l2sqToMany = &l2sqToManyAvx2;
    k.wl2sqToMany = &wl2sqToManyAvx2;
    k.argminL2 = &argminL2Avx2;
    k.argminWL2 = &argminWL2Avx2;
    k.l2sqTile = &l2sqTileAvx2;
    k.argmin = &ref::argmin;
    return k;
}

} // namespace

const Kernels &
avx2Table()
{
    static const Kernels table = makeTable();
    return table;
}

bool
avx2CpuSupported()
{
    return __builtin_cpu_supports("avx2") != 0;
}

} // namespace gpusc::simd::detail

#endif // GPUSC_SIMD_HAVE_AVX2
