/**
 * @file
 * Packed column-major centroid panel for the vector kernels.
 *
 * The batched distance kernels vectorise *across rows* (one SIMD lane
 * per centroid / training point), never across dimensions: each
 * lane's partial sum then accumulates in exactly the scalar dimension
 * order, which is what keeps every backend bit-identical to the
 * scalar reference. That lane layout wants the data transposed:
 * column d of the panel holds dimension d of every row,
 * contiguously, so a backend loads kLanes rows' worth of one
 * dimension with a single aligned vector load.
 *
 * Rows are padded up to a multiple of kPanelLanes with +infinity so
 * a padded lane's running distance is +inf from the first dimension
 * on: it can never win an argmin and it always satisfies a
 * bound-exceeded early-exit check.
 */

#ifndef GPUSC_SIMD_PANEL_H
#define GPUSC_SIMD_PANEL_H

#include <cstddef>
#include <limits>
#include <vector>

namespace gpusc::simd {

/** Lane padding granularity (doubles): covers AVX2 (4) and NEON (2). */
inline constexpr std::size_t kPanelLanes = 4;

/** K rows x dims, stored column-major with lane-padded columns. */
class Panel
{
  public:
    Panel() = default;

    /** Repack from @p k row pointers of @p dims doubles each. */
    void
    pack(const double *const *rowPtrs, std::size_t k, std::size_t dims)
    {
        rows_ = k;
        dims_ = dims;
        stride_ = padded(k);
        data_.assign(stride_ * dims_,
                     std::numeric_limits<double>::infinity());
        for (std::size_t d = 0; d < dims_; ++d)
            for (std::size_t r = 0; r < rows_; ++r)
                data_[d * stride_ + r] = rowPtrs[r][d];
    }

    /** Repack from a contiguous row-major block (stride @p rowStride
     *  doubles between consecutive rows; rowStride >= dims). */
    void
    packContiguous(const double *rows, std::size_t k, std::size_t dims,
                   std::size_t rowStride)
    {
        rows_ = k;
        dims_ = dims;
        stride_ = padded(k);
        data_.assign(stride_ * dims_,
                     std::numeric_limits<double>::infinity());
        for (std::size_t d = 0; d < dims_; ++d)
            for (std::size_t r = 0; r < rows_; ++r)
                data_[d * stride_ + r] = rows[r * rowStride + d];
    }

    /** Overwrite one packed row in place (online template updates
     *  touch a single centroid; no full repack needed). */
    void
    setRow(std::size_t r, const double *values)
    {
        for (std::size_t d = 0; d < dims_; ++d)
            data_[d * stride_ + r] = values[d];
    }

    void
    clear()
    {
        rows_ = dims_ = stride_ = 0;
        data_.clear();
    }

    std::size_t rows() const { return rows_; }
    std::size_t dims() const { return dims_; }
    /** Padded lane count per column (multiple of kPanelLanes). */
    std::size_t stride() const { return stride_; }
    bool empty() const { return rows_ == 0; }

    /** Column d: dimension d of every row, stride() doubles long. */
    const double *
    col(std::size_t d) const
    {
        return data_.data() + d * stride_;
    }

    /** Row r unpacked into @p out (diagnostics / tests). */
    void
    unpackRow(std::size_t r, double *out) const
    {
        for (std::size_t d = 0; d < dims_; ++d)
            out[d] = data_[d * stride_ + r];
    }

  private:
    static std::size_t
    padded(std::size_t k)
    {
        return (k + kPanelLanes - 1) / kPanelLanes * kPanelLanes;
    }

    std::size_t rows_ = 0;
    std::size_t dims_ = 0;
    std::size_t stride_ = 0;
    std::vector<double> data_;
};

} // namespace gpusc::simd

#endif // GPUSC_SIMD_PANEL_H
