/**
 * @file
 * The scalar reference kernels, shared by every backend TU.
 *
 * These inline loops ARE the contract: the scalar backend's table
 * points straight at them, and the vector backends call them for
 * per-pair (across-dimension) reductions and for their own result
 * verification in the conformance tests. Keep them boring — each one
 * is the exact operation sequence of the PR-5 classifier hot paths.
 */

#ifndef GPUSC_SIMD_KERNELS_REF_H
#define GPUSC_SIMD_KERNELS_REF_H

#include <cstddef>

#include "simd/kernels.h"
#include "simd/panel.h"

namespace gpusc::simd::ref {

inline double
l2sq(const double *a, const double *b, std::size_t dims)
{
    double s = 0.0;
    for (std::size_t d = 0; d < dims; ++d) {
        const double diff = a[d] - b[d];
        s += diff * diff;
    }
    return s;
}

inline double
l2sqEarlyExitGe(const double *a, const double *b, std::size_t dims,
                double bound)
{
    double s = 0.0;
    for (std::size_t d = 0; d < dims; ++d) {
        const double diff = a[d] - b[d];
        s += diff * diff;
        if (s >= bound)
            return s;
    }
    return s;
}

inline double
l2sqEarlyExitGt(const double *a, const double *b, std::size_t dims,
                double bound)
{
    double s = 0.0;
    for (std::size_t d = 0; d < dims; ++d) {
        const double diff = a[d] - b[d];
        s += diff * diff;
        if (s > bound)
            return s;
    }
    return s;
}

inline double
wl2sq(const double *a, const double *b, const double *w,
      std::size_t dims)
{
    double s = 0.0;
    for (std::size_t d = 0; d < dims; ++d) {
        const double diff = (a[d] - b[d]) * w[d];
        s += diff * diff;
    }
    return s;
}

inline double
dot(const double *a, const double *b, std::size_t dims)
{
    double s = 0.0;
    for (std::size_t d = 0; d < dims; ++d)
        s += a[d] * b[d];
    return s;
}

inline double
sumSquares(const double *a, std::size_t dims)
{
    double s = 0.0;
    for (std::size_t d = 0; d < dims; ++d)
        s += a[d] * a[d];
    return s;
}

inline void
l2sqToMany(const double *query, const Panel &panel, double *out)
{
    for (std::size_t k = 0; k < panel.rows(); ++k) {
        double s = 0.0;
        for (std::size_t d = 0; d < panel.dims(); ++d) {
            const double diff = query[d] - panel.col(d)[k];
            s += diff * diff;
        }
        out[k] = s;
    }
}

inline void
wl2sqToMany(const double *query, const double *weights,
            const Panel &panel, double *out)
{
    for (std::size_t k = 0; k < panel.rows(); ++k) {
        double s = 0.0;
        for (std::size_t d = 0; d < panel.dims(); ++d) {
            const double diff =
                (query[d] - panel.col(d)[k]) * weights[d];
            s += diff * diff;
        }
        out[k] = s;
    }
}

inline Argmin
argminL2(const double *query, const Panel &panel)
{
    Argmin best;
    for (std::size_t k = 0; k < panel.rows(); ++k) {
        double s = 0.0;
        std::size_t d = 0;
        for (; d < panel.dims(); ++d) {
            const double diff = query[d] - panel.col(d)[k];
            s += diff * diff;
            if (s >= best.sq)
                break;
        }
        if (d < panel.dims())
            continue;
        if (s < best.sq) {
            best.sq = s;
            best.index = k;
        }
    }
    return best;
}

inline Argmin
argminWL2(const double *query, const double *weights,
          const Panel &panel)
{
    Argmin best;
    for (std::size_t k = 0; k < panel.rows(); ++k) {
        double s = 0.0;
        std::size_t d = 0;
        for (; d < panel.dims(); ++d) {
            const double diff =
                (query[d] - panel.col(d)[k]) * weights[d];
            s += diff * diff;
            if (s >= best.sq)
                break;
        }
        if (d < panel.dims())
            continue;
        if (s < best.sq) {
            best.sq = s;
            best.index = k;
        }
    }
    return best;
}

inline void
l2sqTile(const double *queries, std::size_t m, std::size_t qStride,
         const Panel &panel, double *out, std::size_t outStride)
{
    for (std::size_t q = 0; q < m; ++q)
        l2sqToMany(queries + q * qStride, panel, out + q * outStride);
}

inline std::size_t
argmin(const double *values, std::size_t n)
{
    if (n == 0)
        return Argmin::npos;
    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i)
        if (values[i] < values[best])
            best = i;
    return best;
}

} // namespace gpusc::simd::ref

#endif // GPUSC_SIMD_KERNELS_REF_H
