/**
 * @file
 * Internal backend registration hooks (only the dispatcher and the
 * backend TUs include this; user code goes through simd/kernels.h).
 */

#ifndef GPUSC_SIMD_BACKENDS_H
#define GPUSC_SIMD_BACKENDS_H

#include "simd/kernels.h"

namespace gpusc::simd::detail {

#if defined(GPUSC_SIMD_HAVE_AVX2)
/** Dispatch table of the AVX2 backend (kernels_avx2.cc). */
const Kernels &avx2Table();
/** Runtime cpuid check: the build may carry AVX2 code the deployment
 *  host cannot execute. */
bool avx2CpuSupported();
#endif

#if defined(GPUSC_SIMD_HAVE_NEON)
/** Dispatch table of the NEON backend (kernels_neon.cc). */
const Kernels &neonTable();
#endif

} // namespace gpusc::simd::detail

#endif // GPUSC_SIMD_BACKENDS_H
