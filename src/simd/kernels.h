/**
 * @file
 * Portable vector-kernel layer for the classifier hot paths.
 *
 * Exposes exactly the primitives the classifiers spend their time in:
 * squared-L2 distance with partial-sum early exit, batched
 * distance-to-many-centroids (one query x K rows, and M x K tiles),
 * dot/sum-of-squares, and argmin with first-wins tie-break. Three
 * backends implement the table:
 *
 *  - Scalar: the pinned reference. Its loops are, operation for
 *    operation, the PR-5 hot-path rewrites that
 *    tests/ml/knn_regression_test.cc bit-compares against the
 *    original classifier implementations.
 *  - Avx2 / Neon: vectorise *across rows* of a Panel — one lane per
 *    centroid, dimensions accumulated sequentially, multiply and add
 *    kept as two rounded operations (no FMA contraction). Each
 *    lane therefore performs the identical IEEE operation sequence
 *    as the scalar reference, so every backend's output is
 *    bit-identical, not merely close (pinned by
 *    tests/simd/kernel_conformance_test.cc).
 *
 * The per-pair kernels (l2sq / dot / sumSquares and the early-exit
 * variants) accumulate across *dimensions*, where any lane split
 * would reorder the floating-point sum; they stay scalar in every
 * backend by design. All the SIMD win lives in the Panel kernels.
 *
 * Backend selection: the build compiles whichever backends the
 * target architecture supports (see GPUSC_SIMD in CMake); at startup
 * the best runtime-supported backend is chosen (cpuid on x86), or
 * the build can pin one with -DGPUSC_SIMD=scalar|avx2|neon. Tests
 * swap backends with forceBackend() to cross-check outputs.
 */

#ifndef GPUSC_SIMD_KERNELS_H
#define GPUSC_SIMD_KERNELS_H

#include <cstddef>
#include <limits>
#include <string>

#include "simd/panel.h"

namespace gpusc::simd {

/** Result of an argmin kernel. */
struct Argmin
{
    /** Winning row, or npos when the panel is empty. */
    std::size_t index = npos;
    /** The winner's full squared distance (+inf when empty). */
    double sq = std::numeric_limits<double>::infinity();

    static constexpr std::size_t npos = std::size_t(-1);
};

/** Dispatch table of the kernel layer. */
struct Kernels
{
    /** Full squared L2 distance, dimension order. */
    double (*l2sq)(const double *a, const double *b,
                   std::size_t dims) = nullptr;
    /**
     * Squared L2 with partial-sum early exit: abandons the sum as
     * soon as it reaches (>=) @p bound and returns the partial sum
     * (which is then >= bound and only meaningful as "not a
     * winner"). Completed sums are bit-exact.
     */
    double (*l2sqEarlyExitGe)(const double *a, const double *b,
                              std::size_t dims, double bound) = nullptr;
    /** Same, but only abandons when the sum strictly exceeds (>)
     *  @p bound — the KNN k-buffer keeps equal-distance candidates. */
    double (*l2sqEarlyExitGt)(const double *a, const double *b,
                              std::size_t dims, double bound) = nullptr;
    /** Weighted squared L2: sum of ((a[d]-b[d]) * w[d])^2. */
    double (*wl2sq)(const double *a, const double *b, const double *w,
                    std::size_t dims) = nullptr;
    double (*dot)(const double *a, const double *b,
                  std::size_t dims) = nullptr;
    double (*sumSquares)(const double *a, std::size_t dims) = nullptr;

    /** out[k] = l2sq(query, panel row k) for every row. */
    void (*l2sqToMany)(const double *query, const Panel &panel,
                       double *out) = nullptr;
    /** Weighted variant: out[k] = wl2sq(query, row k, weights). */
    void (*wl2sqToMany)(const double *query, const double *weights,
                        const Panel &panel, double *out) = nullptr;
    /** Nearest row by squared L2; ties break to the lowest index
     *  (strict-< winner scan), with bound-pruned early exit. */
    Argmin (*argminL2)(const double *query,
                       const Panel &panel) = nullptr;
    /** Weighted nearest row (the SignatureModel classify kernel). */
    Argmin (*argminWL2)(const double *query, const double *weights,
                        const Panel &panel) = nullptr;
    /**
     * M queries x K rows tile: out[m * outStride + k] = l2sq of
     * query m against row k. Queries are row-major with @p qStride
     * doubles between rows.
     */
    void (*l2sqTile)(const double *queries, std::size_t m,
                     std::size_t qStride, const Panel &panel,
                     double *out, std::size_t outStride) = nullptr;
    /** First index of the strict minimum of @p n values. */
    std::size_t (*argmin)(const double *values,
                          std::size_t n) = nullptr;
};

enum class Backend
{
    Scalar,
    Avx2,
    Neon,
};

/** The active dispatch table (startup-selected; see forceBackend). */
const Kernels &kernels();

Backend activeBackend();

/** Compiled in *and* supported by the running CPU. */
bool backendAvailable(Backend b);

/**
 * Swap the active backend (conformance tests, benches). Not for use
 * while other threads are inside kernel calls. @return false (and
 * leaves the active backend unchanged) when @p b is unavailable.
 */
bool forceBackend(Backend b);

std::string backendName(Backend b);

} // namespace gpusc::simd

#endif // GPUSC_SIMD_KERNELS_H
