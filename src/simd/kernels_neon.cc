/**
 * @file
 * NEON backend (aarch64): 2 doubles per vector, one lane per panel
 * row. Same bit-exactness contract as the AVX2 backend — each lane
 * runs the scalar reference's IEEE operation sequence in dimension
 * order, with multiply and add kept as two rounded operations (the
 * whole project builds with -ffp-contract=off, so neither the
 * reference loops nor these intrinsics are ever fused into fmadd).
 */

#include "simd/backends.h"

#if defined(GPUSC_SIMD_HAVE_NEON)

#include <arm_neon.h>

#include "simd/kernels_ref.h"

namespace gpusc::simd::detail {

namespace {

constexpr std::size_t kLanes = 2;
constexpr std::size_t kExitCheckMask = 7;

void
l2sqToManyNeon(const double *query, const Panel &panel, double *out)
{
    const std::size_t rows = panel.rows();
    const std::size_t dims = panel.dims();
    for (std::size_t kb = 0; kb < rows; kb += kLanes) {
        float64x2_t acc = vdupq_n_f64(0.0);
        for (std::size_t d = 0; d < dims; ++d) {
            const float64x2_t q = vdupq_n_f64(query[d]);
            const float64x2_t c = vld1q_f64(panel.col(d) + kb);
            const float64x2_t diff = vsubq_f64(q, c);
            acc = vaddq_f64(acc, vmulq_f64(diff, diff));
        }
        double sums[kLanes];
        vst1q_f64(sums, acc);
        const std::size_t lanes =
            rows - kb < kLanes ? rows - kb : kLanes;
        for (std::size_t lane = 0; lane < lanes; ++lane)
            out[kb + lane] = sums[lane];
    }
}

void
wl2sqToManyNeon(const double *query, const double *weights,
                const Panel &panel, double *out)
{
    const std::size_t rows = panel.rows();
    const std::size_t dims = panel.dims();
    for (std::size_t kb = 0; kb < rows; kb += kLanes) {
        float64x2_t acc = vdupq_n_f64(0.0);
        for (std::size_t d = 0; d < dims; ++d) {
            const float64x2_t q = vdupq_n_f64(query[d]);
            const float64x2_t w = vdupq_n_f64(weights[d]);
            const float64x2_t c = vld1q_f64(panel.col(d) + kb);
            const float64x2_t diff = vmulq_f64(vsubq_f64(q, c), w);
            acc = vaddq_f64(acc, vmulq_f64(diff, diff));
        }
        double sums[kLanes];
        vst1q_f64(sums, acc);
        const std::size_t lanes =
            rows - kb < kLanes ? rows - kb : kLanes;
        for (std::size_t lane = 0; lane < lanes; ++lane)
            out[kb + lane] = sums[lane];
    }
}

template <bool Weighted>
Argmin
argminBody(const double *query, const double *weights,
           const Panel &panel)
{
    Argmin best;
    const std::size_t rows = panel.rows();
    const std::size_t dims = panel.dims();
    for (std::size_t kb = 0; kb < rows; kb += kLanes) {
        float64x2_t acc = vdupq_n_f64(0.0);
        const float64x2_t bound = vdupq_n_f64(best.sq);
        std::size_t d = 0;
        for (; d < dims; ++d) {
            const float64x2_t q = vdupq_n_f64(query[d]);
            const float64x2_t c = vld1q_f64(panel.col(d) + kb);
            float64x2_t diff = vsubq_f64(q, c);
            if constexpr (Weighted)
                diff = vmulq_f64(diff, vdupq_n_f64(weights[d]));
            acc = vaddq_f64(acc, vmulq_f64(diff, diff));
            if ((d & kExitCheckMask) == kExitCheckMask) {
                const uint64x2_t ge = vcgeq_f64(acc, bound);
                if (vgetq_lane_u64(ge, 0) != 0 &&
                    vgetq_lane_u64(ge, 1) != 0)
                    break;
            }
        }
        if (d < dims)
            continue;
        double sums[kLanes];
        vst1q_f64(sums, acc);
        const std::size_t lanes =
            rows - kb < kLanes ? rows - kb : kLanes;
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            if (sums[lane] < best.sq) {
                best.sq = sums[lane];
                best.index = kb + lane;
            }
        }
    }
    return best;
}

Argmin
argminL2Neon(const double *query, const Panel &panel)
{
    return argminBody<false>(query, nullptr, panel);
}

Argmin
argminWL2Neon(const double *query, const double *weights,
              const Panel &panel)
{
    return argminBody<true>(query, weights, panel);
}

void
l2sqTileNeon(const double *queries, std::size_t m, std::size_t qStride,
             const Panel &panel, double *out, std::size_t outStride)
{
    for (std::size_t q = 0; q < m; ++q)
        l2sqToManyNeon(queries + q * qStride, panel,
                       out + q * outStride);
}

Kernels
makeTable()
{
    Kernels k;
    k.l2sq = &ref::l2sq;
    k.l2sqEarlyExitGe = &ref::l2sqEarlyExitGe;
    k.l2sqEarlyExitGt = &ref::l2sqEarlyExitGt;
    k.wl2sq = &ref::wl2sq;
    k.dot = &ref::dot;
    k.sumSquares = &ref::sumSquares;
    k.l2sqToMany = &l2sqToManyNeon;
    k.wl2sqToMany = &wl2sqToManyNeon;
    k.argminL2 = &argminL2Neon;
    k.argminWL2 = &argminWL2Neon;
    k.l2sqTile = &l2sqTileNeon;
    k.argmin = &ref::argmin;
    return k;
}

} // namespace

const Kernels &
neonTable()
{
    static const Kernels table = makeTable();
    return table;
}

} // namespace gpusc::simd::detail

#endif // GPUSC_SIMD_HAVE_NEON
