#include "simd/kernels.h"

#include <atomic>

#include "simd/backends.h"
#include "simd/kernels_ref.h"
#include "util/logging.h"

namespace gpusc::simd {

namespace {

constexpr Kernels
scalarTable()
{
    Kernels k;
    k.l2sq = &ref::l2sq;
    k.l2sqEarlyExitGe = &ref::l2sqEarlyExitGe;
    k.l2sqEarlyExitGt = &ref::l2sqEarlyExitGt;
    k.wl2sq = &ref::wl2sq;
    k.dot = &ref::dot;
    k.sumSquares = &ref::sumSquares;
    k.l2sqToMany = &ref::l2sqToMany;
    k.wl2sqToMany = &ref::wl2sqToMany;
    k.argminL2 = &ref::argminL2;
    k.argminWL2 = &ref::argminWL2;
    k.l2sqTile = &ref::l2sqTile;
    k.argmin = &ref::argmin;
    return k;
}

const Kernels kScalar = scalarTable();

struct Active
{
    const Kernels *table;
    Backend backend;
};

Backend
bestBackend()
{
#if defined(GPUSC_SIMD_FORCE_SCALAR)
    return Backend::Scalar;
#elif defined(GPUSC_SIMD_FORCE_AVX2)
    if (!backendAvailable(Backend::Avx2))
        panic("simd: built with GPUSC_SIMD=avx2 but this CPU has no "
              "AVX2");
    return Backend::Avx2;
#elif defined(GPUSC_SIMD_FORCE_NEON)
    if (!backendAvailable(Backend::Neon))
        panic("simd: built with GPUSC_SIMD=neon but NEON is "
              "unavailable");
    return Backend::Neon;
#else
    if (backendAvailable(Backend::Avx2))
        return Backend::Avx2;
    if (backendAvailable(Backend::Neon))
        return Backend::Neon;
    return Backend::Scalar;
#endif
}

const Kernels *
tableFor(Backend b)
{
    switch (b) {
      case Backend::Avx2:
#if defined(GPUSC_SIMD_HAVE_AVX2)
        return &detail::avx2Table();
#else
        return nullptr;
#endif
      case Backend::Neon:
#if defined(GPUSC_SIMD_HAVE_NEON)
        return &detail::neonTable();
#else
        return nullptr;
#endif
      case Backend::Scalar:
        return &kScalar;
    }
    return nullptr;
}

std::atomic<const Kernels *> &
activeTable()
{
    static std::atomic<const Kernels *> table{
        tableFor(bestBackend())};
    return table;
}

std::atomic<Backend> &
activeBackendSlot()
{
    static std::atomic<Backend> backend{bestBackend()};
    return backend;
}

} // namespace

const Kernels &
kernels()
{
    return *activeTable().load(std::memory_order_acquire);
}

Backend
activeBackend()
{
    return activeBackendSlot().load(std::memory_order_acquire);
}

bool
backendAvailable(Backend b)
{
    switch (b) {
      case Backend::Scalar:
        return true;
      case Backend::Avx2:
#if defined(GPUSC_SIMD_HAVE_AVX2)
        return detail::avx2CpuSupported();
#else
        return false;
#endif
      case Backend::Neon:
#if defined(GPUSC_SIMD_HAVE_NEON)
        return true;
#else
        return false;
#endif
    }
    return false;
}

bool
forceBackend(Backend b)
{
    if (!backendAvailable(b))
        return false;
    const Kernels *table = tableFor(b);
    if (!table)
        return false;
    activeTable().store(table, std::memory_order_release);
    activeBackendSlot().store(b, std::memory_order_release);
    return true;
}

std::string
backendName(Backend b)
{
    switch (b) {
      case Backend::Scalar:
        return "scalar";
      case Backend::Avx2:
        return "avx2";
      case Backend::Neon:
        return "neon";
    }
    return "unknown";
}

} // namespace gpusc::simd
