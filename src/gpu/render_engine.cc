#include "gpu/render_engine.h"

#include <algorithm>
#include <cmath>

namespace gpusc::gpu {

using namespace gpusc::sim_literals;

namespace {

/** Trailing window used for the busy-percentage node. */
constexpr SimTime kBusyWindow = 100_ms;

/** Jobs older than this can no longer affect reads or busy%. */
constexpr SimTime kRetireAge = 500_ms;

} // namespace

RenderEngine::RenderEngine(EventQueue &eq, const GpuModel &model,
                           std::uint64_t noiseSeed)
    : eq_(eq), pipeline_(model), rng_(noiseSeed)
{
}

SimTime
RenderEngine::submit(const gfx::FrameScene &scene, int ownerPid)
{
    if (scene.empty())
        return eq_.now();

    const std::uint64_t key = scene.contentHash();
    auto it = sceneCache_.find(key);
    if (it == sceneCache_.end()) {
        FrameResult r = pipeline_.render(scene);
        it = sceneCache_
                 .emplace(key, CacheEntry{r.deltas, r.rasterizedPixels})
                 .first;
    }

    CounterVec deltas = it->second.deltas;
    if (noiseSigma_ > 0.0) {
        // Concurrent OS rendering (status-bar clock, blending/dither
        // variation) perturbs each active counter slightly.
        for (auto &d : deltas) {
            if (d == 0)
                continue;
            const auto jitter =
                std::int64_t(std::llround(rng_.normal(0.0, noiseSigma_)));
            d = std::max<std::int64_t>(0, d + jitter);
        }
    }

    const SimTime start = std::max(eq_.now(), busyUntil_);
    const double costUs =
        pipeline_.model().renderCostUs(it->second.rasterizedPixels);
    const SimTime end =
        start + SimTime::fromNs(std::int64_t(costUs * 1e3 + 0.5));

    jobs_.push_back(Job{start, end, deltas, ownerPid});
    busyUntil_ = end;
    totalBusy_ += end - start;
    ++framesRendered_;
    retireJobs();
    return end;
}

SimTime
RenderEngine::submitCompute(SimTime duration)
{
    if (duration.ns() <= 0)
        return eq_.now();
    const SimTime start = std::max(eq_.now(), busyUntil_);
    const SimTime end = start + duration;
    jobs_.push_back(Job{start, end, CounterVec{}});
    busyUntil_ = end;
    totalBusy_ += duration;
    retireJobs();
    return end;
}

CounterVec
RenderEngine::accruedAt(const Job &job, SimTime t) const
{
    CounterVec out{};
    if (t <= job.start)
        return out;
    if (t >= job.end)
        return job.deltas;
    // Mid-job read: counters accrue (approximately) linearly with GPU
    // progress through the draw list.
    const double frac = double((t - job.start).ns()) /
                        double((job.end - job.start).ns());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = std::int64_t(double(job.deltas[i]) * frac);
    return out;
}

void
RenderEngine::retireJobs()
{
    const SimTime now = eq_.now();
    while (!jobs_.empty() && jobs_.front().end + kRetireAge < now) {
        const Job &j = jobs_.front();
        CounterTotals &pid = settledPerPid_[j.ownerPid];
        for (std::size_t i = 0; i < j.deltas.size(); ++i) {
            settled_[i] += std::uint64_t(j.deltas[i]);
            pid[i] += std::uint64_t(j.deltas[i]);
        }
        jobs_.pop_front();
    }
}

std::uint64_t
RenderEngine::read(SelectedCounter c)
{
    return readAll()[c];
}

CounterTotals
RenderEngine::readAll()
{
    retireJobs();
    CounterTotals out = settled_;
    const SimTime now = eq_.now();
    for (const Job &j : jobs_) {
        const CounterVec acc = accruedAt(j, now);
        for (std::size_t i = 0; i < acc.size(); ++i)
            out[i] += std::uint64_t(acc[i]);
    }
    return out;
}

CounterTotals
RenderEngine::readLocal(int pid)
{
    retireJobs();
    CounterTotals out{};
    auto it = settledPerPid_.find(pid);
    if (it != settledPerPid_.end())
        out = it->second;
    const SimTime now = eq_.now();
    for (const Job &j : jobs_) {
        if (j.ownerPid != pid)
            continue;
        const CounterVec acc = accruedAt(j, now);
        for (std::size_t i = 0; i < acc.size(); ++i)
            out[i] += std::uint64_t(acc[i]);
    }
    return out;
}

double
RenderEngine::busyPercent()
{
    retireJobs();
    const SimTime now = eq_.now();
    const SimTime winStart =
        now > kBusyWindow ? now - kBusyWindow : SimTime();
    std::int64_t busyNs = 0;
    for (const Job &j : jobs_) {
        const SimTime s = std::max(j.start, winStart);
        const SimTime e = std::min(j.end, now);
        if (e > s)
            busyNs += (e - s).ns();
    }
    const std::int64_t winNs = (now - winStart).ns();
    if (winNs <= 0)
        return 0.0;
    return 100.0 * double(busyNs) / double(winNs);
}

} // namespace gpusc::gpu
