#include "gpu/counters.h"

#include <cmath>

#include "util/logging.h"

namespace gpusc::gpu {

namespace {

struct CounterDesc
{
    CounterId id;
    std::string name;
};

const std::array<CounterDesc, kNumSelectedCounters> &
descs()
{
    using enum CounterGroup;
    static const std::array<CounterDesc, kNumSelectedCounters> table = {{
        {{std::uint32_t(LRZ), 13}, "PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ"},
        {{std::uint32_t(LRZ), 14}, "PERF_LRZ_FULL_8X8_TILES"},
        {{std::uint32_t(LRZ), 15}, "PERF_LRZ_PARTIAL_8X8_TILES"},
        {{std::uint32_t(LRZ), 18}, "PERF_LRZ_VISIBLE_PIXEL_AFTER_LRZ"},
        {{std::uint32_t(RAS), 1}, "PERF_RAS_SUPERTILE_ACTIVE_CYCLES"},
        {{std::uint32_t(RAS), 4}, "PERF_RAS_SUPER_TILES"},
        {{std::uint32_t(RAS), 5}, "PERF_RAS_8X4_TILES"},
        {{std::uint32_t(RAS), 8}, "PERF_RAS_FULLY_COVERED_8X4_TILES"},
        {{std::uint32_t(VPC), 9}, "PERF_VPC_PC_PRIMITIVES"},
        {{std::uint32_t(VPC), 10}, "PERF_VPC_SP_COMPONENTS"},
        {{std::uint32_t(VPC), 12}, "PERF_VPC_LRZ_ASSIGN_PRIMITIVES"},
    }};
    return table;
}

} // namespace

CounterId
counterId(SelectedCounter c)
{
    if (c >= kNumSelectedCounters)
        panic("counterId: bad selected counter %zu", std::size_t(c));
    return descs()[c].id;
}

const std::string &
counterName(SelectedCounter c)
{
    if (c >= kNumSelectedCounters)
        panic("counterName: bad selected counter %zu", std::size_t(c));
    return descs()[c].name;
}

std::optional<SelectedCounter>
selectedFromId(CounterId id)
{
    for (std::size_t i = 0; i < kNumSelectedCounters; ++i)
        if (descs()[i].id == id)
            return SelectedCounter(i);
    return std::nullopt;
}

std::string
groupLabel(CounterGroup g)
{
    switch (g) {
      case CounterGroup::VPC:
        return "VPC";
      case CounterGroup::RAS:
        return "RAS";
      case CounterGroup::LRZ:
        return "LRZ";
    }
    return "???";
}

CounterVec
operator+(const CounterVec &a, const CounterVec &b)
{
    CounterVec r;
    for (std::size_t i = 0; i < r.size(); ++i)
        r[i] = a[i] + b[i];
    return r;
}

CounterVec
operator-(const CounterVec &a, const CounterVec &b)
{
    CounterVec r;
    for (std::size_t i = 0; i < r.size(); ++i)
        r[i] = a[i] - b[i];
    return r;
}

std::int64_t
l1Norm(const CounterVec &v)
{
    std::int64_t s = 0;
    for (std::int64_t x : v)
        s += x < 0 ? -x : x;
    return s;
}

double
l2Distance(const CounterVec &a, const CounterVec &b)
{
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = double(a[i] - b[i]);
        s += d * d;
    }
    return std::sqrt(s);
}

bool
isZero(const CounterVec &v)
{
    for (std::int64_t x : v)
        if (x != 0)
            return false;
    return true;
}

} // namespace gpusc::gpu
