/**
 * @file
 * Adreno GPU model descriptors.
 *
 * Each descriptor captures the micro-architectural parameters that
 * shape counter values on a given Adreno generation: tile geometries,
 * rasteriser cycle cost, vertex-attribute width and clock. Because per-
 * key signatures are computed from these parameters, different GPU
 * models yield different signatures — which is why the attack carries a
 * classification model per device model (paper §3.2, Fig. 24a).
 */

#ifndef GPUSC_GPU_MODEL_H
#define GPUSC_GPU_MODEL_H

#include <string>
#include <vector>

namespace gpusc::gpu {

/** Static description of one Adreno GPU generation. */
struct GpuModel
{
    std::string name;         ///< e.g. "Adreno 650"
    int generation = 0;       ///< e.g. 650

    // Tile geometry. LRZ operates on 8x8 blocks and the rasteriser on
    // 8x4 blocks on all supported generations (the counter names
    // encode this); the supertile (bin) size grows with generation.
    int lrzTileW = 8;
    int lrzTileH = 8;
    int rasTileW = 8;
    int rasTileH = 4;
    int superTileW = 32;
    int superTileH = 32;

    /** Vertex components fetched through VPC per vertex. */
    int spComponentsPerVertex = 8;

    /** Rasteriser active cycles per output pixel (x1000, integer). */
    int rasCyclesPerKiloPixel = 250;

    /** Fixed per-render-job overhead, microseconds. */
    double baseFrameCostUs = 300.0;

    /** Shading cost per pixel, nanoseconds (at nominal clock). */
    double perPixelRenderNs = 1.2;

    /** Nominal clock in MHz; scales render durations. */
    double clockMhz = 600.0;

    /** Render duration for a job covering @p pixels drawn pixels. */
    double
    renderCostUs(std::int64_t pixels) const
    {
        const double scale = 600.0 / clockMhz;
        return (baseFrameCostUs +
                double(pixels) * perPixelRenderNs * 1e-3) * scale;
    }
};

/**
 * Look up the canonical model for an Adreno generation.
 * Supported: 540, 640, 650, 660.
 */
const GpuModel &adrenoModel(int generation);

/** All supported generations, ascending. */
const std::vector<int> &supportedAdrenoGenerations();

} // namespace gpusc::gpu

#endif // GPUSC_GPU_MODEL_H
