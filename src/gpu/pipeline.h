/**
 * @file
 * The tile-based rendering pipeline model.
 *
 * Given a frame's draw list, computes the deltas of the 11 selected
 * performance counters the way the hardware stages would:
 *
 *  - VPC: every submitted quad contributes 2 primitives and
 *    4 x spComponentsPerVertex vertex components.
 *  - RAS: rasterisation runs before depth rejection, so every quad
 *    counts its touched 8x4 tiles, fully covered 8x4 tiles, touched
 *    supertiles and active cycles regardless of occlusion.
 *  - LRZ: primitives are tested front-to-back against an opaque
 *    coverage mask; only pixels not hidden by opaque geometry above
 *    survive, producing the occlusion-sensitive counters the attack
 *    keys on (visible prims / visible pixels / full & partial 8x8
 *    tiles of the rendered output).
 *
 * This is where GPU *overdraw* (paper §2.1) turns into counter values.
 */

#ifndef GPUSC_GPU_PIPELINE_H
#define GPUSC_GPU_PIPELINE_H

#include <cstdint>
#include <vector>

#include "gfx/scene.h"
#include "gpu/counters.h"
#include "gpu/model.h"

namespace gpusc::gpu {

/** Result of running one frame through the pipeline. */
struct FrameResult
{
    CounterVec deltas{};
    /** Pixels actually drawn (post-clip, pre-occlusion, summed over
     *  prims) — drives the render-time/energy model. */
    std::int64_t rasterizedPixels = 0;
};

/** Stateless-per-frame pipeline; owns scratch buffers for reuse. */
class Pipeline
{
  public:
    explicit Pipeline(const GpuModel &model);

    /** Render one frame and return the counter deltas it produces. */
    FrameResult render(const gfx::FrameScene &scene);

    const GpuModel &model() const { return model_; }

  private:
    const GpuModel &model_;
    // Scratch per-pixel masks over the damage box, reused across
    // frames. Bit 0: covered by opaque geometry above (occluder);
    // bit 1: drawn by any visible fragment.
    std::vector<std::uint8_t> mask_;
};

} // namespace gpusc::gpu

#endif // GPUSC_GPU_PIPELINE_H
