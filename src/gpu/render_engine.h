/**
 * @file
 * The GPU as a timed, serially-shared resource.
 *
 * Render jobs (one per surface redraw) execute back-to-back in
 * submission order; each occupies the GPU for a duration derived from
 * the model's cost parameters. Counter reads are *time aware*: a read
 * landing inside a job observes the partially accumulated deltas, which
 * is precisely the physical mechanism behind the "split" artefact the
 * paper's Algorithm 1 repairs (two consecutive reads see two pieces
 * that sum to the true per-frame delta).
 *
 * Identical frames (same damage + draw list) hit a content-hash memo
 * so long experiment campaigns do not re-rasterise unchanged scenes.
 */

#ifndef GPUSC_GPU_RENDER_ENGINE_H
#define GPUSC_GPU_RENDER_ENGINE_H

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "gfx/scene.h"
#include "gpu/counters.h"
#include "gpu/model.h"
#include "gpu/pipeline.h"
#include "util/event_queue.h"
#include "util/rng.h"

namespace gpusc::gpu {

/** Timed GPU front-end wrapping the counter pipeline. */
class RenderEngine
{
  public:
    RenderEngine(EventQueue &eq, const GpuModel &model,
                 std::uint64_t noiseSeed = 1);

    /**
     * Submit a surface redraw. The job starts when the GPU becomes
     * free and ends after the model's render cost for the scene.
     * @param ownerPid process the work is attributed to (0 = system).
     * @return the job's completion time.
     */
    SimTime submit(const gfx::FrameScene &scene, int ownerPid = 0);

    /**
     * Submit compute/blit-style work: occupies the GPU for
     * @p duration (delaying rendering and raising busy%), but does
     * not traverse the binning/LRZ/raster pipeline, so the selected
     * counters are unaffected — the §7.3 background-workload shape.
     * @return the job's completion time.
     */
    SimTime submitCompute(SimTime duration);

    /** Cumulative value of one selected counter observable *now*. */
    std::uint64_t read(SelectedCounter c);

    /** Cumulative values of all selected counters observable now. */
    CounterTotals readAll();

    /**
     * Cumulative counters attributable to @p pid only — what the
     * GL_AMD_performance_monitor extension exposes to an application
     * about *itself* (paper §3.3). An app that renders nothing reads
     * zeros here, which is exactly why the attack bypasses the GLES
     * API for the global device-file registers.
     */
    CounterTotals readLocal(int pid);

    /**
     * GPU utilisation over the trailing window (default 100 ms),
     * mirroring the kgsl sysfs gpu_busy_percentage node.
     */
    double busyPercent();

    /**
     * Std deviation of the additive measurement perturbation applied
     * to each non-zero counter delta (models concurrent OS rendering
     * variation). Zero disables it.
     */
    void setNoiseSigma(double sigma) { noiseSigma_ = sigma; }
    double noiseSigma() const { return noiseSigma_; }

    /** Time at which all submitted work completes. */
    SimTime busyUntil() const { return busyUntil_; }

    /** True if a job is executing at the current time. */
    bool busyNow() const { return eq_.now() < busyUntil_; }

    /** The simulation clock this engine runs on (telemetry stamps). */
    const EventQueue &clock() const { return eq_; }

    const GpuModel &model() const { return pipeline_.model(); }

    std::uint64_t framesRendered() const { return framesRendered_; }
    /** Total GPU-active time since construction (for the power model). */
    SimTime totalBusyTime() const { return totalBusy_; }

  private:
    struct Job
    {
        SimTime start;
        SimTime end;
        CounterVec deltas;
        int ownerPid = 0;
    };

    struct CacheEntry
    {
        CounterVec deltas;
        std::int64_t rasterizedPixels;
    };

    /** Counters accrued by @p job as observable at time @p t. */
    CounterVec accruedAt(const Job &job, SimTime t) const;

    /** Fold fully-retired jobs into the settled totals. */
    void retireJobs();

    EventQueue &eq_;
    Pipeline pipeline_;
    Rng rng_;
    double noiseSigma_ = 0.0;

    CounterTotals settled_{};
    std::unordered_map<int, CounterTotals> settledPerPid_;
    std::deque<Job> jobs_;
    SimTime busyUntil_;
    SimTime totalBusy_;
    std::uint64_t framesRendered_ = 0;

    std::unordered_map<std::uint64_t, CacheEntry> sceneCache_;
};

} // namespace gpusc::gpu

#endif // GPUSC_GPU_RENDER_ENGINE_H
