#include "gpu/model.h"

#include "util/logging.h"

namespace gpusc::gpu {

namespace {

GpuModel
makeModel(int gen, int superTile, int cyclesPerKp, int spComp,
          double clockMhz, double perPixelNs)
{
    GpuModel m;
    m.name = "Adreno " + std::to_string(gen);
    m.generation = gen;
    m.superTileW = superTile;
    m.superTileH = superTile;
    m.rasCyclesPerKiloPixel = cyclesPerKp;
    m.spComponentsPerVertex = spComp;
    m.clockMhz = clockMhz;
    m.perPixelRenderNs = perPixelNs;
    return m;
}

} // namespace

const GpuModel &
adrenoModel(int generation)
{
    // Parameters are plausible per-generation values; what matters for
    // the reproduction is that they differ across generations so that
    // signatures are model specific.
    static const GpuModel a540 = makeModel(540, 32, 310, 8, 710, 1.8);
    static const GpuModel a620 = makeModel(620, 32, 280, 8, 625, 1.5);
    static const GpuModel a640 = makeModel(640, 32, 270, 8, 585, 1.4);
    static const GpuModel a650 = makeModel(650, 64, 250, 10, 587, 1.1);
    static const GpuModel a660 = makeModel(660, 64, 235, 10, 840, 0.9);

    switch (generation) {
      case 540:
        return a540;
      case 620:
        return a620;
      case 640:
        return a640;
      case 650:
        return a650;
      case 660:
        return a660;
      default:
        fatal("adrenoModel: unsupported Adreno generation %d "
              "(supported: 540, 620, 640, 650, 660)", generation);
    }
}

const std::vector<int> &
supportedAdrenoGenerations()
{
    static const std::vector<int> gens = {540, 620, 640, 650, 660};
    return gens;
}

} // namespace gpusc::gpu
