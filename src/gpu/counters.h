/**
 * @file
 * The Adreno performance counters targeted by the attack.
 *
 * Exactly the 11 countables of Table 1 in the paper, keyed by the KGSL
 * group ids from msm_kgsl.h (VPC = 0x5, RAS = 0x7, LRZ = 0x19). Each
 * counter is a cumulative 64-bit hardware register; the simulator keeps
 * them in a dense array indexed by SelectedCounter.
 */

#ifndef GPUSC_GPU_COUNTERS_H
#define GPUSC_GPU_COUNTERS_H

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace gpusc::gpu {

/** KGSL performance-counter group ids (msm_kgsl.h values). */
enum class CounterGroup : std::uint32_t
{
    VPC = 0x5,
    RAS = 0x7,
    LRZ = 0x19,
};

/** (group, countable) pair as used on the ioctl interface. */
struct CounterId
{
    std::uint32_t group = 0;
    std::uint32_t countable = 0;

    bool operator==(const CounterId &) const = default;
};

/** Dense index over the counters selected for eavesdropping. */
enum SelectedCounter : std::size_t
{
    LRZ_VISIBLE_PRIM_AFTER_LRZ = 0, // LRZ countable 13
    LRZ_FULL_8X8_TILES,             // LRZ countable 14
    LRZ_PARTIAL_8X8_TILES,          // LRZ countable 15
    LRZ_VISIBLE_PIXEL_AFTER_LRZ,    // LRZ countable 18
    RAS_SUPERTILE_ACTIVE_CYCLES,    // RAS countable 1
    RAS_SUPER_TILES,                // RAS countable 4
    RAS_8X4_TILES,                  // RAS countable 5
    RAS_FULLY_COVERED_8X4_TILES,    // RAS countable 8
    VPC_PC_PRIMITIVES,              // VPC countable 9
    VPC_SP_COMPONENTS,              // VPC countable 10
    VPC_LRZ_ASSIGN_PRIMITIVES,      // VPC countable 12

    kNumSelectedCounters,
};

/** Per-frame (or per-signature) counter deltas. */
using CounterVec = std::array<std::int64_t, kNumSelectedCounters>;

/** Cumulative counter values. */
using CounterTotals = std::array<std::uint64_t, kNumSelectedCounters>;

/** @return the KGSL (group, countable) pair of a selected counter. */
CounterId counterId(SelectedCounter c);

/** @return the vendor string identifier (Table 1), e.g.
 *  "PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ". */
const std::string &counterName(SelectedCounter c);

/** Reverse lookup from (group, countable); nullopt if not selected. */
std::optional<SelectedCounter> selectedFromId(CounterId id);

/** Short group label ("LRZ"/"RAS"/"VPC") for table output. */
std::string groupLabel(CounterGroup g);

/** Element-wise helpers for delta vectors. */
CounterVec operator+(const CounterVec &a, const CounterVec &b);
CounterVec operator-(const CounterVec &a, const CounterVec &b);
/** Sum of absolute values (L1 magnitude of a change). */
std::int64_t l1Norm(const CounterVec &v);
/** Euclidean distance between two delta vectors. */
double l2Distance(const CounterVec &a, const CounterVec &b);
/** True if every element is zero. */
bool isZero(const CounterVec &v);

} // namespace gpusc::gpu

#endif // GPUSC_GPU_COUNTERS_H
