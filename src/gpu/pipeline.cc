#include "gpu/pipeline.h"

#include <cstring>

#include "util/logging.h"

namespace gpusc::gpu {

namespace {

constexpr std::uint8_t kOccluded = 1u << 0;

} // namespace

Pipeline::Pipeline(const GpuModel &model) : model_(model) {}

FrameResult
Pipeline::render(const gfx::FrameScene &scene)
{
    FrameResult res;
    if (scene.empty())
        return res;

    const gfx::Rect dmg = scene.damage;
    const int dw = dmg.width();
    const int dh = dmg.height();
    const std::size_t npix = std::size_t(dw) * std::size_t(dh);
    if (mask_.size() < npix)
        mask_.resize(npix);
    std::memset(mask_.data(), 0, npix);

    auto &d = res.deltas;

    // --- Front-end (VPC) and rasteriser (RAS): order independent, no
    // occlusion knowledge.
    for (const gfx::Prim &p : scene.prims) {
        const gfx::Rect r = p.rect.intersect(dmg);
        if (r.empty())
            continue;
        d[VPC_PC_PRIMITIVES] += 2;
        d[VPC_LRZ_ASSIGN_PRIMITIVES] += 2;
        d[VPC_SP_COMPONENTS] += 4 * model_.spComponentsPerVertex;

        d[RAS_8X4_TILES] +=
            gfx::tilesTouched(r, model_.rasTileW, model_.rasTileH);
        d[RAS_FULLY_COVERED_8X4_TILES] +=
            gfx::tilesFullyCovered(r, model_.rasTileW, model_.rasTileH);
        d[RAS_SUPER_TILES] +=
            gfx::tilesTouched(r, model_.superTileW, model_.superTileH);
        d[RAS_SUPERTILE_ACTIVE_CYCLES] +=
            r.area() * model_.rasCyclesPerKiloPixel / 1000;
        res.rasterizedPixels += r.area();
    }

    // --- LRZ pass: walk primitives front-to-back against the opaque
    // coverage accumulated from layers above. Per primitive, the LRZ
    // unit tests each 8x8 block of its footprint: fully occluded
    // blocks are killed (PERF_LRZ_FULL_8X8_TILES), partially occluded
    // blocks are trimmed (PERF_LRZ_PARTIAL_8X8_TILES); surviving
    // pixels/prims feed the VISIBLE counters. This is the stage where
    // GPU *overdraw* becomes measurable (paper §2.2).
    const int tw = model_.lrzTileW;
    const int th = model_.lrzTileH;
    for (auto it = scene.prims.rbegin(); it != scene.prims.rend(); ++it) {
        const gfx::Rect r = it->rect.intersect(dmg);
        if (r.empty())
            continue;
        std::int64_t visible = 0;
        const int ty0 = r.y0 / th;
        const int ty1 = (r.y1 - 1) / th;
        const int tx0 = r.x0 / tw;
        const int tx1 = (r.x1 - 1) / tw;
        for (int ty = ty0; ty <= ty1; ++ty) {
            for (int tx = tx0; tx <= tx1; ++tx) {
                const gfx::Rect block =
                    gfx::Rect::ofSize(tx * tw, ty * th, tw, th)
                        .intersect(r);
                int occluded = 0;
                int total = 0;
                for (int y = block.y0; y < block.y1; ++y) {
                    std::uint8_t *row = mask_.data() +
                        std::size_t(y - dmg.y0) * dw +
                        (block.x0 - dmg.x0);
                    const int w = block.width();
                    if (it->opaque) {
                        for (int x = 0; x < w; ++x) {
                            if (row[x] & kOccluded) {
                                ++occluded;
                            } else {
                                row[x] |= kOccluded;
                            }
                        }
                    } else {
                        for (int x = 0; x < w; ++x)
                            if (row[x] & kOccluded)
                                ++occluded;
                    }
                    total += w;
                }
                visible += total - occluded;
                if (occluded == total)
                    d[LRZ_FULL_8X8_TILES] += 1;
                else if (occluded > 0)
                    d[LRZ_PARTIAL_8X8_TILES] += 1;
            }
        }
        if (visible > 0) {
            d[LRZ_VISIBLE_PRIM_AFTER_LRZ] += 2;
            d[LRZ_VISIBLE_PIXEL_AFTER_LRZ] += visible;
        }
    }

    return res;
}

} // namespace gpusc::gpu
