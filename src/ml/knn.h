/**
 * @file
 * k-nearest-neighbours classifier (the paper's baseline uses KNN3).
 */

#ifndef GPUSC_ML_KNN_H
#define GPUSC_ML_KNN_H

#include "ml/classifier.h"

namespace gpusc::ml {

/** Brute-force KNN with majority vote (ties break to nearest). */
class Knn : public Classifier
{
  public:
    explicit Knn(std::size_t k = 3);

    void fit(const Dataset &data) override;
    int predict(const FeatureVec &features) const override;
    std::string
    name() const override
    {
        return "KNN" + std::to_string(k_);
    }

  private:
    std::size_t k_;
    Dataset train_;
};

} // namespace gpusc::ml

#endif // GPUSC_ML_KNN_H
