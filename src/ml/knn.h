/**
 * @file
 * k-nearest-neighbours classifier (the paper's baseline uses KNN3).
 */

#ifndef GPUSC_ML_KNN_H
#define GPUSC_ML_KNN_H

#include <span>

#include "ml/classifier.h"

namespace gpusc::ml {

/**
 * Brute-force KNN with majority vote (ties break to nearest).
 *
 * The query path keeps a bounded buffer of the k best (distance,
 * label) pairs instead of materialising and sorting every training
 * distance, prunes whole points via precomputed norms (triangle
 * inequality against the current k-th distance) and abandons a
 * partial distance sum as soon as it exceeds that bound (the
 * simd-layer early-exit kernel). Predictions are identical to the
 * sort-everything reference: pruning only skips candidates whose
 * full (distance, label) pair orders strictly after the current
 * k-th.
 */
class Knn : public Classifier
{
  public:
    explicit Knn(std::size_t k = 3);

    void fit(const Dataset &data) override;
    int predict(std::span<const double> features) const override;
    using Classifier::predict;
    std::string
    name() const override
    {
        return "KNN" + std::to_string(k_);
    }

  private:
    std::size_t k_;
    Dataset train_;
    /** ||x_i|| per training point, for triangle-inequality pruning. */
    std::vector<double> norms_;
};

} // namespace gpusc::ml

#endif // GPUSC_ML_KNN_H
