#include "ml/feature_matrix.h"

#include <string>

namespace gpusc::ml {

DimensionError::DimensionError(std::size_t expected, std::size_t got)
    : std::runtime_error("feature dimension mismatch: expected " +
                         std::to_string(expected) + ", got " +
                         std::to_string(got)),
      expected_(expected), got_(got)
{
}

FeatureMatrix
FeatureMatrix::fromRows(const std::vector<FeatureVec> &rows)
{
    FeatureMatrix m;
    if (!rows.empty())
        m.data_.reserve(rows.size() * rows.front().size());
    for (const FeatureVec &r : rows)
        m.addRow(r);
    return m;
}

void
FeatureMatrix::addRow(std::span<const double> row)
{
    if (rows_ == 0)
        dims_ = row.size();
    else if (row.size() != dims_)
        throw DimensionError(dims_, row.size());
    data_.insert(data_.end(), row.begin(), row.end());
    ++rows_;
}

} // namespace gpusc::ml
