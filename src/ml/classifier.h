/**
 * @file
 * Common classifier interface.
 */

#ifndef GPUSC_ML_CLASSIFIER_H
#define GPUSC_ML_CLASSIFIER_H

#include <string>

#include "ml/dataset.h"

namespace gpusc::ml {

/** Abstract multi-class classifier. */
class Classifier
{
  public:
    virtual ~Classifier() = default;

    /** Train on @p data; may be called again to retrain. */
    virtual void fit(const Dataset &data) = 0;

    /** @return the predicted class label for @p features. */
    virtual int predict(const FeatureVec &features) const = 0;

    virtual std::string name() const = 0;

    /** Fraction of samples of @p data predicted correctly. */
    double accuracy(const Dataset &data) const;
};

} // namespace gpusc::ml

#endif // GPUSC_ML_CLASSIFIER_H
