/**
 * @file
 * Common classifier interface.
 */

#ifndef GPUSC_ML_CLASSIFIER_H
#define GPUSC_ML_CLASSIFIER_H

#include <span>
#include <string>

#include "ml/dataset.h"

namespace gpusc::ml {

/** Abstract multi-class classifier. */
class Classifier
{
  public:
    virtual ~Classifier() = default;

    /** Train on @p data; may be called again to retrain. */
    virtual void fit(const Dataset &data) = 0;

    /** @return the predicted class label for @p features. */
    virtual int predict(std::span<const double> features) const = 0;

    /** Adapter so vector-of-doubles call sites (and braced literals)
     *  keep working; derived classes re-expose it with a
     *  using-declaration. */
    int
    predict(const FeatureVec &features) const
    {
        return predict(std::span<const double>(features));
    }

    /**
     * Classify every row of @p queries into @p out (out.size() >=
     * queries.rows()). The base implementation loops predict();
     * classifiers with a cheaper bulk path override it. Predictions
     * are always identical to the looped single-query path.
     */
    virtual void predictBatch(const FeatureMatrix &queries,
                              std::span<int> out) const;

    virtual std::string name() const = 0;

    /** Fraction of samples of @p data predicted correctly. */
    double accuracy(const Dataset &data) const;
};

} // namespace gpusc::ml

#endif // GPUSC_ML_CLASSIFIER_H
