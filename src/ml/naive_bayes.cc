#include "ml/naive_bayes.h"

#include <cmath>
#include <limits>
#include <map>

#include "util/logging.h"

namespace gpusc::ml {

void
GaussianNaiveBayes::fit(const Dataset &data)
{
    classes_.clear();
    if (data.size() == 0)
        panic("GaussianNaiveBayes: empty training set");

    std::map<int, std::vector<std::size_t>> byClass;
    for (std::size_t i = 0; i < data.size(); ++i)
        byClass[data.y[i]].push_back(i);

    // Shared variance floor keeps degenerate (constant) features from
    // producing infinite likelihoods.
    const double varFloor = 1e-9;

    for (const auto &[label, idxs] : byClass) {
        ClassStats cs;
        cs.label = label;
        cs.logPrior =
            std::log(double(idxs.size()) / double(data.size()));
        cs.mean.assign(data.dims(), 0.0);
        cs.var.assign(data.dims(), 0.0);
        for (std::size_t i : idxs)
            for (std::size_t d = 0; d < data.dims(); ++d)
                cs.mean[d] += data.x[i][d];
        for (double &m : cs.mean)
            m /= double(idxs.size());
        for (std::size_t i : idxs)
            for (std::size_t d = 0; d < data.dims(); ++d) {
                const double diff = data.x[i][d] - cs.mean[d];
                cs.var[d] += diff * diff;
            }
        for (double &v : cs.var)
            v = v / double(idxs.size()) + varFloor;
        classes_.push_back(std::move(cs));
    }
}

int
GaussianNaiveBayes::predict(std::span<const double> features) const
{
    if (classes_.empty())
        panic("GaussianNaiveBayes: predict() before fit()");
    double bestScore = -std::numeric_limits<double>::infinity();
    int bestLabel = classes_.front().label;
    for (const ClassStats &cs : classes_) {
        double score = cs.logPrior;
        for (std::size_t d = 0; d < features.size(); ++d) {
            const double diff = features[d] - cs.mean[d];
            score += -0.5 * std::log(2.0 * M_PI * cs.var[d]) -
                     diff * diff / (2.0 * cs.var[d]);
        }
        if (score > bestScore) {
            bestScore = score;
            bestLabel = cs.label;
        }
    }
    return bestLabel;
}

} // namespace gpusc::ml
