#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "util/logging.h"

namespace gpusc::ml {

namespace {

int
majorityLabel(const Dataset &data, const std::vector<std::size_t> &idxs)
{
    std::map<int, std::size_t> counts;
    for (std::size_t i : idxs)
        ++counts[data.y[i]];
    int best = 0;
    std::size_t bestCount = 0;
    for (const auto &[label, n] : counts) {
        if (n > bestCount) {
            bestCount = n;
            best = label;
        }
    }
    return best;
}

double
giniOfCounts(const std::map<int, std::size_t> &counts, std::size_t total)
{
    if (total == 0)
        return 0.0;
    double g = 1.0;
    for (const auto &[label, n] : counts) {
        const double p = double(n) / double(total);
        g -= p * p;
    }
    return g;
}

} // namespace

DecisionTree::DecisionTree(Params params) : params_(params) {}

int
DecisionTree::build(const Dataset &data, std::vector<std::size_t> &idxs,
                    std::size_t depth, Rng &rng)
{
    Node node;
    node.label = majorityLabel(data, idxs);

    bool pure = true;
    for (std::size_t i : idxs)
        if (data.y[i] != data.y[idxs[0]]) {
            pure = false;
            break;
        }
    if (pure || depth >= params_.maxDepth ||
        idxs.size() <= params_.minSamplesLeaf) {
        nodes_.push_back(node);
        return int(nodes_.size()) - 1;
    }

    // Choose candidate features.
    std::vector<std::size_t> feats(data.dims());
    std::iota(feats.begin(), feats.end(), 0);
    if (params_.featureSubset > 0 &&
        params_.featureSubset < feats.size()) {
        rng.shuffle(feats);
        feats.resize(params_.featureSubset);
    }

    double bestGini = std::numeric_limits<double>::infinity();
    int bestFeat = -1;
    double bestThresh = 0.0;

    for (std::size_t f : feats) {
        // Sort indices by feature value; evaluate midpoints.
        std::vector<std::size_t> order = idxs;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return data.x[a][f] < data.x[b][f];
                  });
        std::map<int, std::size_t> leftCounts, rightCounts;
        for (std::size_t i : order)
            ++rightCounts[data.y[i]];
        for (std::size_t pos = 0; pos + 1 < order.size(); ++pos) {
            const int label = data.y[order[pos]];
            ++leftCounts[label];
            if (--rightCounts[label] == 0)
                rightCounts.erase(label);
            const double v0 = data.x[order[pos]][f];
            const double v1 = data.x[order[pos + 1]][f];
            if (v0 == v1)
                continue;
            const std::size_t nl = pos + 1;
            const std::size_t nr = order.size() - nl;
            const double gini =
                (double(nl) * giniOfCounts(leftCounts, nl) +
                 double(nr) * giniOfCounts(rightCounts, nr)) /
                double(order.size());
            if (gini < bestGini) {
                bestGini = gini;
                bestFeat = int(f);
                bestThresh = 0.5 * (v0 + v1);
            }
        }
    }

    if (bestFeat < 0) { // no useful split (all feature values equal)
        nodes_.push_back(node);
        return int(nodes_.size()) - 1;
    }

    std::vector<std::size_t> leftIdx, rightIdx;
    for (std::size_t i : idxs) {
        if (data.x[i][std::size_t(bestFeat)] <= bestThresh)
            leftIdx.push_back(i);
        else
            rightIdx.push_back(i);
    }
    node.feature = bestFeat;
    node.threshold = bestThresh;
    node.left = build(data, leftIdx, depth + 1, rng);
    node.right = build(data, rightIdx, depth + 1, rng);
    nodes_.push_back(node);
    return int(nodes_.size()) - 1;
}

void
DecisionTree::fit(const Dataset &data)
{
    if (data.size() == 0)
        panic("DecisionTree: empty training set");
    nodes_.clear();
    Rng rng(params_.seed);
    std::vector<std::size_t> idxs(data.size());
    std::iota(idxs.begin(), idxs.end(), 0);
    root_ = build(data, idxs, 0, rng);
}

int
DecisionTree::predict(std::span<const double> features) const
{
    if (root_ < 0)
        panic("DecisionTree: predict() before fit()");
    int n = root_;
    while (nodes_[std::size_t(n)].feature >= 0) {
        const Node &node = nodes_[std::size_t(n)];
        n = features[std::size_t(node.feature)] <= node.threshold
                ? node.left
                : node.right;
    }
    return nodes_[std::size_t(n)].label;
}

std::size_t
DecisionTree::depth() const
{
    // Recompute by walking; the tree is small.
    if (root_ < 0)
        return 0;
    std::vector<std::pair<int, std::size_t>> stack{{root_, 1}};
    std::size_t best = 0;
    while (!stack.empty()) {
        auto [n, d] = stack.back();
        stack.pop_back();
        best = std::max(best, d);
        const Node &node = nodes_[std::size_t(n)];
        if (node.feature >= 0) {
            stack.push_back({node.left, d + 1});
            stack.push_back({node.right, d + 1});
        }
    }
    return best;
}

RandomForest::RandomForest(Params params) : params_(params) {}

void
RandomForest::fit(const Dataset &data)
{
    if (data.size() == 0)
        panic("RandomForest: empty training set");
    trees_.clear();
    Rng rng(params_.seed);
    const auto subset = std::size_t(
        std::max(1.0, std::sqrt(double(data.dims()))));
    for (std::size_t t = 0; t < params_.numTrees; ++t) {
        // Bootstrap sample.
        Dataset boot;
        for (std::size_t i = 0; i < data.size(); ++i) {
            const auto j = std::size_t(
                rng.uniformInt(0, std::int64_t(data.size()) - 1));
            boot.add(data.x[j], data.y[j]);
        }
        DecisionTree::Params tp;
        tp.maxDepth = params_.maxDepth;
        tp.featureSubset = subset;
        tp.seed = rng.next();
        auto tree = std::make_unique<DecisionTree>(tp);
        tree->fit(boot);
        trees_.push_back(std::move(tree));
    }

    // Flatten every tree into one contiguous node array so predict()
    // streams through a single allocation. Child indices are rebased
    // by each tree's offset in the flat array.
    flat_.clear();
    roots_.clear();
    for (const auto &tree : trees_) {
        const int base = int(flat_.size());
        roots_.push_back(base + tree->root());
        for (DecisionTree::Node node : tree->nodes()) {
            if (node.feature >= 0) {
                node.left += base;
                node.right += base;
            }
            flat_.push_back(node);
        }
    }
}

int
RandomForest::predict(std::span<const double> features) const
{
    if (trees_.empty())
        panic("RandomForest: predict() before fit()");

    // One walk per tree over the flat node array.
    std::vector<int> labels;
    labels.reserve(roots_.size());
    for (int n : roots_) {
        while (flat_[std::size_t(n)].feature >= 0) {
            const DecisionTree::Node &node = flat_[std::size_t(n)];
            n = features[std::size_t(node.feature)] <= node.threshold
                    ? node.left
                    : node.right;
        }
        labels.push_back(flat_[std::size_t(n)].label);
    }

    // Majority vote; ties break to the smallest label, matching the
    // ordered-map reference this replaced.
    std::sort(labels.begin(), labels.end());
    int best = 0;
    std::size_t bestVotes = 0;
    for (std::size_t i = 0; i < labels.size();) {
        std::size_t j = i;
        while (j < labels.size() && labels[j] == labels[i])
            ++j;
        if (j - i > bestVotes) {
            bestVotes = j - i;
            best = labels[i];
        }
        i = j;
    }
    return best;
}

} // namespace gpusc::ml
