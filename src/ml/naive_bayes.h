/**
 * @file
 * Gaussian naive Bayes — one of the three classifiers used to evaluate
 * the prior-work baseline in Table 2.
 */

#ifndef GPUSC_ML_NAIVE_BAYES_H
#define GPUSC_ML_NAIVE_BAYES_H

#include <span>
#include <vector>

#include "ml/classifier.h"

namespace gpusc::ml {

/** Gaussian naive Bayes with per-class diagonal variances. */
class GaussianNaiveBayes : public Classifier
{
  public:
    void fit(const Dataset &data) override;
    int predict(std::span<const double> features) const override;
    using Classifier::predict;
    std::string name() const override { return "NaiveBayes"; }

  private:
    struct ClassStats
    {
        int label = 0;
        double logPrior = 0.0;
        FeatureVec mean;
        FeatureVec var;
    };
    std::vector<ClassStats> classes_;
};

} // namespace gpusc::ml

#endif // GPUSC_ML_NAIVE_BAYES_H
