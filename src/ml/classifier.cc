#include "ml/classifier.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"

namespace gpusc::ml {

int
Dataset::numClasses() const
{
    int maxLabel = -1;
    for (int label : y)
        maxLabel = std::max(maxLabel, label);
    return maxLabel + 1;
}

void
Classifier::predictBatch(const FeatureMatrix &queries,
                         std::span<int> out) const
{
    if (out.size() < queries.rows())
        panic("predictBatch: %zu outputs for %zu queries", out.size(),
              queries.rows());
    for (std::size_t i = 0; i < queries.rows(); ++i)
        out[i] = predict(queries[i]);
}

double
Classifier::accuracy(const Dataset &data) const
{
    if (data.size() == 0)
        return 0.0;
    std::vector<int> pred(data.size());
    predictBatch(data.x, pred);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.size(); ++i)
        if (pred[i] == data.y[i])
            ++correct;
    return double(correct) / double(data.size());
}

} // namespace gpusc::ml
