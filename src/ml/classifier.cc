#include "ml/classifier.h"

#include <algorithm>

namespace gpusc::ml {

int
Dataset::numClasses() const
{
    int maxLabel = -1;
    for (int label : y)
        maxLabel = std::max(maxLabel, label);
    return maxLabel + 1;
}

double
Classifier::accuracy(const Dataset &data) const
{
    if (data.size() == 0)
        return 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.size(); ++i)
        if (predict(data.x[i]) == data.y[i])
            ++correct;
    return double(correct) / double(data.size());
}

} // namespace gpusc::ml
