/**
 * @file
 * Contiguous row-major feature storage (structure-of-arrays).
 *
 * The classifiers used to hold features as vector<vector<double>>,
 * one heap allocation per sample; every hot loop then chased a
 * pointer per row. FeatureMatrix keeps all rows in one contiguous
 * block with a fixed dimension stride, so bulk consumers iterate a
 * flat array and the SIMD panel kernels can repack it with a single
 * strided pass (Panel::packContiguous).
 *
 * Row views are cheap std::span<const double>, which also lets the
 * historical `data.x[i][d]` indexing keep compiling unchanged.
 */

#ifndef GPUSC_ML_FEATURE_MATRIX_H
#define GPUSC_ML_FEATURE_MATRIX_H

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace gpusc::ml {

/** A feature vector (counter deltas cast to doubles, typically). */
using FeatureVec = std::vector<double>;

/**
 * Thrown when a row's dimensionality disagrees with the matrix it is
 * added to. A typed exception (rather than panic()) so callers
 * assembling datasets from untrusted traces can reject one bad
 * record without killing the process.
 */
class DimensionError : public std::runtime_error
{
  public:
    DimensionError(std::size_t expected, std::size_t got);

    std::size_t expected() const { return expected_; }
    std::size_t got() const { return got_; }

  private:
    std::size_t expected_;
    std::size_t got_;
};

/** Row-major contiguous matrix of feature rows. */
class FeatureMatrix
{
  public:
    FeatureMatrix() = default;

    /** Build from row vectors. @throws DimensionError when ragged. */
    static FeatureMatrix fromRows(const std::vector<FeatureVec> &rows);

    /**
     * Append one row. The first row fixes dims(); every later row
     * must match it. @throws DimensionError on mismatch.
     */
    void addRow(std::span<const double> row);

    std::span<const double>
    operator[](std::size_t r) const
    {
        return {data_.data() + r * dims_, dims_};
    }
    std::span<const double> row(std::size_t r) const { return (*this)[r]; }
    /** Writable view of row @p r (in-place centroid updates). */
    std::span<double>
    mutableRow(std::size_t r)
    {
        return {data_.data() + r * dims_, dims_};
    }

    /** Forward iterator over row views (range-for compatibility
     *  with the old vector-of-rows storage). */
    class RowIterator
    {
      public:
        RowIterator(const FeatureMatrix *m, std::size_t r)
            : m_(m), r_(r)
        {
        }
        std::span<const double> operator*() const { return (*m_)[r_]; }
        RowIterator &
        operator++()
        {
            ++r_;
            return *this;
        }
        bool operator==(const RowIterator &o) const = default;

      private:
        const FeatureMatrix *m_;
        std::size_t r_;
    };
    RowIterator begin() const { return {this, 0}; }
    RowIterator end() const { return {this, rows_}; }

    std::size_t rows() const { return rows_; }
    /** Alias so row-count checks read like the old vector-of-rows. */
    std::size_t size() const { return rows_; }
    std::size_t dims() const { return dims_; }
    bool empty() const { return rows_ == 0; }

    /** The contiguous block: rows() x dims(), row-major, no gaps. */
    const double *data() const { return data_.data(); }

    void
    clear()
    {
        rows_ = 0;
        dims_ = 0;
        data_.clear();
    }

    void reserveRows(std::size_t n) { data_.reserve(n * dims_); }

    bool
    operator==(const FeatureMatrix &o) const
    {
        return rows_ == o.rows_ && dims_ == o.dims_ && data_ == o.data_;
    }

  private:
    std::size_t rows_ = 0;
    std::size_t dims_ = 0;
    std::vector<double> data_;
};

} // namespace gpusc::ml

#endif // GPUSC_ML_FEATURE_MATRIX_H
