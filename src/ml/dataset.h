/**
 * @file
 * Tabular dataset container shared by all classifiers.
 */

#ifndef GPUSC_ML_DATASET_H
#define GPUSC_ML_DATASET_H

#include <cstddef>
#include <vector>

namespace gpusc::ml {

/** A feature vector (counter deltas cast to doubles, typically). */
using FeatureVec = std::vector<double>;

/** Labelled samples for training/evaluating a classifier. */
struct Dataset
{
    std::vector<FeatureVec> x;
    std::vector<int> y;

    std::size_t size() const { return x.size(); }
    std::size_t dims() const { return x.empty() ? 0 : x[0].size(); }
    /** One past the largest label. */
    int numClasses() const;

    void
    add(FeatureVec features, int label)
    {
        x.push_back(std::move(features));
        y.push_back(label);
    }
};

} // namespace gpusc::ml

#endif // GPUSC_ML_DATASET_H
