/**
 * @file
 * Tabular dataset container shared by all classifiers.
 */

#ifndef GPUSC_ML_DATASET_H
#define GPUSC_ML_DATASET_H

#include <cstddef>
#include <span>
#include <vector>

#include "ml/feature_matrix.h"

namespace gpusc::ml {

/** Labelled samples for training/evaluating a classifier. */
struct Dataset
{
    FeatureMatrix x;
    std::vector<int> y;

    std::size_t size() const { return x.rows(); }
    std::size_t dims() const { return x.dims(); }
    /** One past the largest label. */
    int numClasses() const;

    /** @throws DimensionError when @p features disagrees with dims(). */
    void
    add(std::span<const double> features, int label)
    {
        x.addRow(features);
        y.push_back(label);
    }

    void
    add(const FeatureVec &features, int label)
    {
        add(std::span<const double>(features), label);
    }
};

} // namespace gpusc::ml

#endif // GPUSC_ML_DATASET_H
