/**
 * @file
 * CART decision trees and a bagged random forest (third baseline
 * classifier in Table 2).
 */

#ifndef GPUSC_ML_RANDOM_FOREST_H
#define GPUSC_ML_RANDOM_FOREST_H

#include <memory>
#include <span>
#include <vector>

#include "ml/classifier.h"
#include "util/rng.h"

namespace gpusc::ml {

/** A single CART tree (Gini impurity, axis-aligned splits). */
class DecisionTree : public Classifier
{
  public:
    struct Params
    {
        std::size_t maxDepth = 12;
        std::size_t minSamplesLeaf = 1;
        /** Features examined per split; 0 = all. */
        std::size_t featureSubset = 0;
        std::uint64_t seed = 1;
    };

    DecisionTree() : DecisionTree(Params{12, 1, 0, 1}) {}
    explicit DecisionTree(Params params);

    void fit(const Dataset &data) override;
    int predict(std::span<const double> features) const override;
    using Classifier::predict;
    std::string name() const override { return "DecisionTree"; }

    /** Depth of the learned tree (diagnostics / tests). */
    std::size_t depth() const;

    struct Node
    {
        int feature = -1; // -1 => leaf
        double threshold = 0.0;
        int label = 0;
        int left = -1;
        int right = -1;
    };

    /** Learned nodes (indices are into this vector). */
    const std::vector<Node> &nodes() const { return nodes_; }
    /** Index of the root node, -1 before fit(). */
    int root() const { return root_; }

  private:
    int build(const Dataset &data, std::vector<std::size_t> &idxs,
              std::size_t depth, Rng &rng);

    Params params_;
    std::vector<Node> nodes_;
    int root_ = -1;
};

/** Bootstrap-aggregated forest of randomised CART trees. */
class RandomForest : public Classifier
{
  public:
    struct Params
    {
        std::size_t numTrees = 30;
        std::size_t maxDepth = 12;
        std::uint64_t seed = 7;
    };

    RandomForest() : RandomForest(Params{30, 12, 7}) {}
    explicit RandomForest(Params params);

    void fit(const Dataset &data) override;
    int predict(std::span<const double> features) const override;
    using Classifier::predict;
    std::string name() const override { return "RandomForest"; }

    /** The underlying trees (diagnostics / regression tests). */
    const std::vector<std::unique_ptr<DecisionTree>> &
    trees() const
    {
        return trees_;
    }

  private:
    Params params_;
    std::vector<std::unique_ptr<DecisionTree>> trees_;
    /**
     * All trees' nodes flattened into one contiguous array (child
     * indices rebased into it) plus each tree's root index: predict()
     * walks this cache-friendly layout instead of chasing one heap
     * allocation per tree.
     */
    std::vector<DecisionTree::Node> flat_;
    std::vector<int> roots_;
};

} // namespace gpusc::ml

#endif // GPUSC_ML_RANDOM_FOREST_H
