/**
 * @file
 * CART decision trees and a bagged random forest (third baseline
 * classifier in Table 2).
 */

#ifndef GPUSC_ML_RANDOM_FOREST_H
#define GPUSC_ML_RANDOM_FOREST_H

#include <memory>
#include <vector>

#include "ml/classifier.h"
#include "util/rng.h"

namespace gpusc::ml {

/** A single CART tree (Gini impurity, axis-aligned splits). */
class DecisionTree : public Classifier
{
  public:
    struct Params
    {
        std::size_t maxDepth = 12;
        std::size_t minSamplesLeaf = 1;
        /** Features examined per split; 0 = all. */
        std::size_t featureSubset = 0;
        std::uint64_t seed = 1;
    };

    DecisionTree() : DecisionTree(Params{12, 1, 0, 1}) {}
    explicit DecisionTree(Params params);

    void fit(const Dataset &data) override;
    int predict(const FeatureVec &features) const override;
    std::string name() const override { return "DecisionTree"; }

    /** Depth of the learned tree (diagnostics / tests). */
    std::size_t depth() const;

  private:
    struct Node
    {
        int feature = -1; // -1 => leaf
        double threshold = 0.0;
        int label = 0;
        int left = -1;
        int right = -1;
    };

    int build(const Dataset &data, std::vector<std::size_t> &idxs,
              std::size_t depth, Rng &rng);

    Params params_;
    std::vector<Node> nodes_;
    int root_ = -1;
};

/** Bootstrap-aggregated forest of randomised CART trees. */
class RandomForest : public Classifier
{
  public:
    struct Params
    {
        std::size_t numTrees = 30;
        std::size_t maxDepth = 12;
        std::uint64_t seed = 7;
    };

    RandomForest() : RandomForest(Params{30, 12, 7}) {}
    explicit RandomForest(Params params);

    void fit(const Dataset &data) override;
    int predict(const FeatureVec &features) const override;
    std::string name() const override { return "RandomForest"; }

  private:
    Params params_;
    std::vector<std::unique_ptr<DecisionTree>> trees_;
};

} // namespace gpusc::ml

#endif // GPUSC_ML_RANDOM_FOREST_H
