#include "ml/knn.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace gpusc::ml {

Knn::Knn(std::size_t k) : k_(k)
{
    if (k == 0)
        panic("Knn: k must be positive");
}

void
Knn::fit(const Dataset &data)
{
    train_ = data;
}

int
Knn::predict(const FeatureVec &features) const
{
    if (train_.size() == 0)
        panic("Knn: predict() before fit()");

    std::vector<std::pair<double, int>> dists;
    dists.reserve(train_.size());
    for (std::size_t i = 0; i < train_.size(); ++i) {
        double s = 0.0;
        for (std::size_t d = 0; d < features.size(); ++d) {
            const double diff = features[d] - train_.x[i][d];
            s += diff * diff;
        }
        dists.emplace_back(s, train_.y[i]);
    }
    const std::size_t k = std::min(k_, dists.size());
    std::partial_sort(dists.begin(), dists.begin() + std::ptrdiff_t(k),
                      dists.end());

    std::map<int, std::size_t> votes;
    for (std::size_t i = 0; i < k; ++i)
        ++votes[dists[i].second];
    int best = dists[0].second; // nearest wins ties by iteration below
    std::size_t bestVotes = 0;
    for (std::size_t i = 0; i < k; ++i) {
        const int label = dists[i].second;
        if (votes[label] > bestVotes) {
            bestVotes = votes[label];
            best = label;
        }
    }
    return best;
}

} // namespace gpusc::ml
