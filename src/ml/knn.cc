#include "ml/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "simd/kernels.h"
#include "util/logging.h"

namespace gpusc::ml {

Knn::Knn(std::size_t k) : k_(k)
{
    if (k == 0)
        panic("Knn: k must be positive");
}

void
Knn::fit(const Dataset &data)
{
    train_ = data;
    const simd::Kernels &kn = simd::kernels();
    norms_.resize(train_.size());
    for (std::size_t i = 0; i < train_.size(); ++i)
        norms_[i] = std::sqrt(
            kn.sumSquares(train_.x[i].data(), train_.dims()));
}

int
Knn::predict(std::span<const double> features) const
{
    if (train_.size() == 0)
        panic("Knn: predict() before fit()");

    const simd::Kernels &kn = simd::kernels();
    const std::size_t k = std::min(k_, train_.size());
    // Pruning is only sound when the query lives in the training
    // space (norms cover the same dimensions the distance sums).
    const bool prune = features.size() == train_.dims();
    const std::size_t nd =
        std::min(features.size(), train_.dims());
    double queryNorm = 0.0;
    if (prune)
        queryNorm =
            std::sqrt(kn.sumSquares(features.data(), features.size()));

    // The k best (squared distance, label) pairs, kept sorted
    // ascending by pair order — the same total order the reference
    // full sort uses, so ties at equal distance resolve identically.
    std::vector<std::pair<double, int>> best;
    best.reserve(k);
    for (std::size_t i = 0; i < train_.size(); ++i) {
        const bool full = best.size() == k;
        const double worst =
            full ? best.back().first
                 : std::numeric_limits<double>::infinity();
        if (full && prune) {
            const double gap = queryNorm - norms_[i];
            if (gap * gap > worst)
                continue;
        }
        const double s = kn.l2sqEarlyExitGt(
            features.data(), train_.x[i].data(), nd, worst);
        if (s > worst)
            continue; // partial sum already past the k-th best
        const std::pair<double, int> cand(s, train_.y[i]);
        if (full) {
            if (!(cand < best.back()))
                continue;
            best.pop_back();
        }
        best.insert(
            std::upper_bound(best.begin(), best.end(), cand), cand);
    }

    // Majority vote over the sorted k-buffer; the first label to
    // reach the winning count — i.e. the one with the nearest
    // representative — takes ties, exactly as the reference does.
    int bestLabel = best[0].second;
    std::size_t bestVotes = 0;
    for (std::size_t i = 0; i < best.size(); ++i) {
        const int label = best[i].second;
        std::size_t votes = 0;
        for (const auto &p : best)
            votes += std::size_t(p.second == label);
        if (votes > bestVotes) {
            bestVotes = votes;
            bestLabel = label;
        }
    }
    return bestLabel;
}

} // namespace gpusc::ml
