/**
 * @file
 * Nearest-centroid classifier with a rejection threshold.
 *
 * This is the classification model the attack preloads per device
 * configuration (paper §5.1 / Fig. 12): each key's offline samples are
 * averaged into a centroid; an online reading is accepted as a key
 * press only when its distance to the nearest centroid is below the
 * threshold C_th, otherwise it is rejected as split/noise.
 */

#ifndef GPUSC_ML_NEAREST_CENTROID_H
#define GPUSC_ML_NEAREST_CENTROID_H

#include <span>
#include <vector>

#include "ml/classifier.h"
#include "simd/kernels.h"

namespace gpusc::ml {

/** Nearest-centroid classifier (L2) with distance reporting. */
class NearestCentroid : public Classifier
{
  public:
    void fit(const Dataset &data) override;
    int predict(std::span<const double> features) const override;
    using Classifier::predict;
    void predictBatch(const FeatureMatrix &queries,
                      std::span<int> out) const override;
    std::string name() const override { return "NearestCentroid"; }

    /** Prediction plus the distance to the winning centroid. */
    struct Match
    {
        int label = -1;
        double distance = 0.0;
    };
    Match match(std::span<const double> features) const;
    /** Adapter so braced-init feature lists keep working. */
    Match match(const FeatureVec &features) const
    {
        return match(std::span<const double>(features));
    }

    const FeatureMatrix &centroids() const { return centroids_; }
    const std::vector<int> &labels() const { return labels_; }

    /** Replace the fitted state directly (model deserialisation). */
    void load(FeatureMatrix centroids, std::vector<int> labels);
    void load(const std::vector<FeatureVec> &centroids,
              std::vector<int> labels);

  private:
    /** Repack the SIMD panel after any centroid state change. */
    void rebuildPanel();

    FeatureMatrix centroids_;
    std::vector<int> labels_;
    /** Centroids transposed for the vector argmin kernel. */
    simd::Panel panel_;
};

} // namespace gpusc::ml

#endif // GPUSC_ML_NEAREST_CENTROID_H
