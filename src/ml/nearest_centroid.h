/**
 * @file
 * Nearest-centroid classifier with a rejection threshold.
 *
 * This is the classification model the attack preloads per device
 * configuration (paper §5.1 / Fig. 12): each key's offline samples are
 * averaged into a centroid; an online reading is accepted as a key
 * press only when its distance to the nearest centroid is below the
 * threshold C_th, otherwise it is rejected as split/noise.
 */

#ifndef GPUSC_ML_NEAREST_CENTROID_H
#define GPUSC_ML_NEAREST_CENTROID_H

#include <vector>

#include "ml/classifier.h"

namespace gpusc::ml {

/** Nearest-centroid classifier (L2) with distance reporting. */
class NearestCentroid : public Classifier
{
  public:
    void fit(const Dataset &data) override;
    int predict(const FeatureVec &features) const override;
    std::string name() const override { return "NearestCentroid"; }

    /** Prediction plus the distance to the winning centroid. */
    struct Match
    {
        int label = -1;
        double distance = 0.0;
    };
    Match match(const FeatureVec &features) const;

    const std::vector<FeatureVec> &centroids() const { return centroids_; }
    const std::vector<int> &labels() const { return labels_; }

    /** Replace the fitted state directly (model deserialisation). */
    void load(std::vector<FeatureVec> centroids, std::vector<int> labels);

  private:
    /** Refresh the precomputed centroid norms after a state change. */
    void rebuildNorms();

    std::vector<FeatureVec> centroids_;
    std::vector<int> labels_;
    /** ||c|| per centroid: triangle-inequality pruning in match(). */
    std::vector<double> norms_;
};

} // namespace gpusc::ml

#endif // GPUSC_ML_NEAREST_CENTROID_H
