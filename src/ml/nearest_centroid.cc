#include "ml/nearest_centroid.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "util/logging.h"

namespace gpusc::ml {

void
NearestCentroid::fit(const Dataset &data)
{
    centroids_.clear();
    labels_.clear();
    std::map<int, std::pair<FeatureVec, std::size_t>> sums;
    for (std::size_t i = 0; i < data.size(); ++i) {
        auto &[sum, n] = sums[data.y[i]];
        if (sum.empty())
            sum.assign(data.dims(), 0.0);
        for (std::size_t d = 0; d < sum.size(); ++d)
            sum[d] += data.x[i][d];
        ++n;
    }
    for (auto &[label, entry] : sums) {
        auto &[sum, n] = entry;
        for (double &v : sum)
            v /= double(n);
        centroids_.addRow(sum);
        labels_.push_back(label);
    }
    rebuildPanel();
}

void
NearestCentroid::rebuildPanel()
{
    panel_.packContiguous(centroids_.data(), centroids_.rows(),
                          centroids_.dims(), centroids_.dims());
}

NearestCentroid::Match
NearestCentroid::match(std::span<const double> features) const
{
    if (centroids_.empty())
        panic("NearestCentroid: match() before fit()");
    const simd::Kernels &k = simd::kernels();
    Match best;
    if (features.size() == centroids_.dims()) {
        // Hot path: vector argmin over the packed panel (one sqrt at
        // the end; losers are abandoned via bound-pruned early exit).
        const simd::Argmin a = k.argminL2(features.data(), panel_);
        best.label = labels_[a.index];
        best.distance = std::sqrt(a.sq);
        return best;
    }
    // Dimension-mismatched query: per-centroid scan over the query's
    // dimensions only, with the same early-exit semantics.
    const std::size_t nd =
        std::min(features.size(), centroids_.dims());
    double bestSq = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < centroids_.rows(); ++c) {
        const double s = k.l2sqEarlyExitGe(
            features.data(), centroids_[c].data(), nd, bestSq);
        if (s < bestSq) {
            bestSq = s;
            best.label = labels_[c];
        }
    }
    best.distance = std::sqrt(bestSq);
    return best;
}

int
NearestCentroid::predict(std::span<const double> features) const
{
    if (centroids_.empty())
        panic("NearestCentroid: match() before fit()");
    // predict() needs no distance, so the sqrt is skipped; sqrt is
    // monotone, so ranking on squared distances picks the same winner.
    if (features.size() == centroids_.dims())
        return labels_[simd::kernels()
                           .argminL2(features.data(), panel_)
                           .index];
    return match(features).label;
}

void
NearestCentroid::predictBatch(const FeatureMatrix &queries,
                              std::span<int> out) const
{
    if (out.size() < queries.rows())
        panic("predictBatch: %zu outputs for %zu queries", out.size(),
              queries.rows());
    if (centroids_.empty())
        panic("NearestCentroid: match() before fit()");
    if (queries.rows() == 0)
        return;
    if (queries.dims() != centroids_.dims()) {
        Classifier::predictBatch(queries, out);
        return;
    }
    const simd::Kernels &k = simd::kernels();
    for (std::size_t i = 0; i < queries.rows(); ++i)
        out[i] =
            labels_[k.argminL2(queries[i].data(), panel_).index];
}

void
NearestCentroid::load(FeatureMatrix centroids, std::vector<int> labels)
{
    if (centroids.rows() != labels.size())
        panic("NearestCentroid::load: %zu centroids vs %zu labels",
              centroids.rows(), labels.size());
    centroids_ = std::move(centroids);
    labels_ = std::move(labels);
    rebuildPanel();
}

void
NearestCentroid::load(const std::vector<FeatureVec> &centroids,
                      std::vector<int> labels)
{
    load(FeatureMatrix::fromRows(centroids), std::move(labels));
}

} // namespace gpusc::ml
