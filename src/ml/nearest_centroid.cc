#include "ml/nearest_centroid.h"

#include <cmath>
#include <limits>
#include <map>

#include "util/logging.h"

namespace gpusc::ml {

void
NearestCentroid::fit(const Dataset &data)
{
    centroids_.clear();
    labels_.clear();
    std::map<int, std::pair<FeatureVec, std::size_t>> sums;
    for (std::size_t i = 0; i < data.size(); ++i) {
        auto &[sum, n] = sums[data.y[i]];
        if (sum.empty())
            sum.assign(data.dims(), 0.0);
        for (std::size_t d = 0; d < sum.size(); ++d)
            sum[d] += data.x[i][d];
        ++n;
    }
    for (auto &[label, entry] : sums) {
        auto &[sum, n] = entry;
        for (double &v : sum)
            v /= double(n);
        centroids_.push_back(std::move(sum));
        labels_.push_back(label);
    }
    rebuildNorms();
}

void
NearestCentroid::rebuildNorms()
{
    norms_.resize(centroids_.size());
    for (std::size_t c = 0; c < centroids_.size(); ++c) {
        double s = 0.0;
        for (double v : centroids_[c])
            s += v * v;
        norms_[c] = std::sqrt(s);
    }
}

NearestCentroid::Match
NearestCentroid::match(const FeatureVec &features) const
{
    if (centroids_.empty())
        panic("NearestCentroid: match() before fit()");
    // Hot path: track the best *squared* distance (one sqrt at the
    // end), skip whole centroids via the triangle inequality against
    // the precomputed norms, and abandon a partial sum as soon as it
    // reaches the current best.
    const bool prune =
        !centroids_.empty() && features.size() == centroids_[0].size();
    double queryNorm = 0.0;
    if (prune) {
        for (double v : features)
            queryNorm += v * v;
        queryNorm = std::sqrt(queryNorm);
    }

    Match best;
    double bestSq = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < centroids_.size(); ++c) {
        if (prune && best.label >= 0) {
            const double gap = queryNorm - norms_[c];
            if (gap * gap > bestSq)
                continue;
        }
        double s = 0.0;
        std::size_t d = 0;
        for (; d < features.size(); ++d) {
            const double diff = features[d] - centroids_[c][d];
            s += diff * diff;
            if (s >= bestSq)
                break;
        }
        if (d < features.size())
            continue;
        if (s < bestSq) {
            bestSq = s;
            best.label = labels_[c];
        }
    }
    best.distance = std::sqrt(bestSq);
    return best;
}

int
NearestCentroid::predict(const FeatureVec &features) const
{
    return match(features).label;
}

void
NearestCentroid::load(std::vector<FeatureVec> centroids,
                      std::vector<int> labels)
{
    if (centroids.size() != labels.size())
        panic("NearestCentroid::load: %zu centroids vs %zu labels",
              centroids.size(), labels.size());
    centroids_ = std::move(centroids);
    labels_ = std::move(labels);
    rebuildNorms();
}

} // namespace gpusc::ml
