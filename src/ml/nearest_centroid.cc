#include "ml/nearest_centroid.h"

#include <cmath>
#include <limits>
#include <map>

#include "util/logging.h"

namespace gpusc::ml {

void
NearestCentroid::fit(const Dataset &data)
{
    centroids_.clear();
    labels_.clear();
    std::map<int, std::pair<FeatureVec, std::size_t>> sums;
    for (std::size_t i = 0; i < data.size(); ++i) {
        auto &[sum, n] = sums[data.y[i]];
        if (sum.empty())
            sum.assign(data.dims(), 0.0);
        for (std::size_t d = 0; d < sum.size(); ++d)
            sum[d] += data.x[i][d];
        ++n;
    }
    for (auto &[label, entry] : sums) {
        auto &[sum, n] = entry;
        for (double &v : sum)
            v /= double(n);
        centroids_.push_back(std::move(sum));
        labels_.push_back(label);
    }
}

NearestCentroid::Match
NearestCentroid::match(const FeatureVec &features) const
{
    if (centroids_.empty())
        panic("NearestCentroid: match() before fit()");
    Match best;
    best.distance = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < centroids_.size(); ++c) {
        double s = 0.0;
        for (std::size_t d = 0; d < features.size(); ++d) {
            const double diff = features[d] - centroids_[c][d];
            s += diff * diff;
        }
        const double dist = std::sqrt(s);
        if (dist < best.distance) {
            best.distance = dist;
            best.label = labels_[c];
        }
    }
    return best;
}

int
NearestCentroid::predict(const FeatureVec &features) const
{
    return match(features).label;
}

void
NearestCentroid::load(std::vector<FeatureVec> centroids,
                      std::vector<int> labels)
{
    if (centroids.size() != labels.size())
        panic("NearestCentroid::load: %zu centroids vs %zu labels",
              centroids.size(), labels.size());
    centroids_ = std::move(centroids);
    labels_ = std::move(labels);
}

} // namespace gpusc::ml
