/**
 * @file
 * Lightweight statistics helpers used by the evaluation harness and
 * bench binaries: running moments, sample collections with quantiles,
 * and fixed-bin histograms.
 */

#ifndef GPUSC_UTIL_STATS_H
#define GPUSC_UTIL_STATS_H

#include <cstddef>
#include <string>
#include <vector>

namespace gpusc {

/** Streaming mean/variance accumulator (Welford). */
class RunningStat
{
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Sample container with quantile queries (copies & sorts on demand). */
class Samples
{
  public:
    void add(double x) { xs_.push_back(x); }
    void reserve(std::size_t n) { xs_.reserve(n); }

    std::size_t count() const { return xs_.size(); }
    bool empty() const { return xs_.empty(); }
    double mean() const;
    double stddev() const;
    double min() const;
    double max() const;
    /** Linear-interpolated quantile, q in [0, 1]. */
    double quantile(double q) const;
    double median() const { return quantile(0.5); }

    const std::vector<double> &values() const { return xs_; }

  private:
    std::vector<double> xs_;
};

/** Fixed-width-bin histogram over [lo, hi); out-of-range values clamp. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    std::size_t bins() const { return counts_.size(); }
    std::size_t binCount(std::size_t i) const { return counts_[i]; }
    double binLow(std::size_t i) const;
    double binHigh(std::size_t i) const { return binLow(i + 1); }
    std::size_t total() const { return total_; }

    /** Fraction of samples with value < x. */
    double fractionBelow(double x) const;

    /** Render as an ASCII bar chart (for bench output). */
    std::string render(std::size_t width = 50) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::vector<double> raw_;
    std::size_t total_ = 0;
};

} // namespace gpusc

#endif // GPUSC_UTIL_STATS_H
