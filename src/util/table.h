/**
 * @file
 * Plain-text table rendering for bench binaries.
 *
 * Every bench prints its figure/table as an aligned text table so the
 * output can be diffed against the paper's reported rows/series.
 */

#ifndef GPUSC_UTIL_TABLE_H
#define GPUSC_UTIL_TABLE_H

#include <cstddef>
#include <string>
#include <vector>

namespace gpusc {

/** Column-aligned text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a row; it must match the header's column count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: formats doubles with @p decimals decimal places. */
    static std::string num(double v, int decimals = 2);
    /** Convenience: formats a ratio as a percentage string. */
    static std::string pct(double ratio, int decimals = 1);

    /** @return the rendered table. */
    std::string render() const;

    /** Render straight to stdout with an optional caption. */
    void print(const std::string &caption = "") const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace gpusc

#endif // GPUSC_UTIL_TABLE_H
