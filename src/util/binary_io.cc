#include "util/binary_io.h"

#include <array>

namespace gpusc {

namespace {

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size, std::uint32_t seed)
{
    static const std::array<std::uint32_t, 256> table =
        makeCrcTable();
    std::uint32_t c = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

std::uint32_t
crc32(const std::vector<std::uint8_t> &data, std::uint32_t seed)
{
    return crc32(data.data(), data.size(), seed);
}

} // namespace gpusc
