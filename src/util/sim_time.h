/**
 * @file
 * Simulated-time type and literal helpers.
 *
 * All simulator components agree on a single clock expressed in
 * nanoseconds since simulation start. A dedicated strong typedef keeps
 * millisecond/nanosecond confusion out of interfaces; construction goes
 * through the named factory functions below.
 */

#ifndef GPUSC_UTIL_SIM_TIME_H
#define GPUSC_UTIL_SIM_TIME_H

#include <compare>
#include <cstdint>
#include <string>

namespace gpusc {

/** A point (or span) of simulated time with nanosecond resolution. */
class SimTime
{
  public:
    constexpr SimTime() = default;

    /** @return time expressed as whole nanoseconds. */
    constexpr std::int64_t ns() const { return ns_; }
    /** @return time expressed as (truncated) whole microseconds. */
    constexpr std::int64_t us() const { return ns_ / 1000; }
    /** @return time expressed as (truncated) whole milliseconds. */
    constexpr std::int64_t ms() const { return ns_ / 1000000; }
    /** @return time expressed as fractional seconds. */
    constexpr double seconds() const { return double(ns_) * 1e-9; }
    /** @return time expressed as fractional milliseconds. */
    constexpr double millis() const { return double(ns_) * 1e-6; }

    constexpr auto operator<=>(const SimTime &) const = default;

    constexpr SimTime operator+(SimTime o) const
    {
        return SimTime(ns_ + o.ns_);
    }
    constexpr SimTime operator-(SimTime o) const
    {
        return SimTime(ns_ - o.ns_);
    }
    constexpr SimTime &operator+=(SimTime o) { ns_ += o.ns_; return *this; }
    constexpr SimTime &operator-=(SimTime o) { ns_ -= o.ns_; return *this; }
    constexpr SimTime operator*(std::int64_t k) const
    {
        return SimTime(ns_ * k);
    }
    constexpr SimTime operator/(std::int64_t k) const
    {
        return SimTime(ns_ / k);
    }

    /** Scale by a floating-point factor (rounding to nearest ns). */
    constexpr SimTime scaled(double f) const
    {
        return SimTime(std::int64_t(double(ns_) * f + 0.5));
    }

    static constexpr SimTime fromNs(std::int64_t v) { return SimTime(v); }
    static constexpr SimTime fromUs(std::int64_t v)
    {
        return SimTime(v * 1000);
    }
    static constexpr SimTime fromMs(std::int64_t v)
    {
        return SimTime(v * 1000000);
    }
    static constexpr SimTime fromSeconds(double v)
    {
        return SimTime(std::int64_t(v * 1e9 + (v >= 0 ? 0.5 : -0.5)));
    }

    /** Largest representable time; used as an "infinite" horizon. */
    static constexpr SimTime max()
    {
        return SimTime(INT64_MAX);
    }

    /** @return human-readable rendering, e.g. "12.5ms". */
    std::string toString() const;

  private:
    explicit constexpr SimTime(std::int64_t ns) : ns_(ns) {}

    std::int64_t ns_ = 0;
};

namespace sim_literals {

constexpr SimTime operator""_ns(unsigned long long v)
{
    return SimTime::fromNs(std::int64_t(v));
}
constexpr SimTime operator""_us(unsigned long long v)
{
    return SimTime::fromUs(std::int64_t(v));
}
constexpr SimTime operator""_ms(unsigned long long v)
{
    return SimTime::fromMs(std::int64_t(v));
}
constexpr SimTime operator""_s(unsigned long long v)
{
    return SimTime::fromSeconds(double(v));
}

} // namespace sim_literals

} // namespace gpusc

#endif // GPUSC_UTIL_SIM_TIME_H
