#include "util/sim_time.h"

#include <cstdio>

namespace gpusc {

std::string
SimTime::toString() const
{
    char buf[64];
    if (ns_ >= 1000000000 || ns_ <= -1000000000)
        std::snprintf(buf, sizeof(buf), "%.3fs", seconds());
    else if (ns_ >= 1000000 || ns_ <= -1000000)
        std::snprintf(buf, sizeof(buf), "%.3fms", millis());
    else if (ns_ >= 1000 || ns_ <= -1000)
        std::snprintf(buf, sizeof(buf), "%.3fus", double(ns_) * 1e-3);
    else
        std::snprintf(buf, sizeof(buf), "%lldns", (long long)ns_);
    return buf;
}

} // namespace gpusc
