#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace gpusc {

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / double(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    return n_ > 1 ? m2_ / double(n_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
Samples::mean() const
{
    if (xs_.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs_)
        s += x;
    return s / double(xs_.size());
}

double
Samples::stddev() const
{
    if (xs_.size() < 2)
        return 0.0;
    const double m = mean();
    double s = 0.0;
    for (double x : xs_)
        s += (x - m) * (x - m);
    return std::sqrt(s / double(xs_.size() - 1));
}

double
Samples::min() const
{
    return xs_.empty() ? 0.0 : *std::min_element(xs_.begin(), xs_.end());
}

double
Samples::max() const
{
    return xs_.empty() ? 0.0 : *std::max_element(xs_.begin(), xs_.end());
}

double
Samples::quantile(double q) const
{
    if (xs_.empty())
        return 0.0;
    if (q < 0.0 || q > 1.0)
        panic("Samples::quantile: q=%f outside [0,1]", q);
    std::vector<double> sorted = xs_;
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * double(sorted.size() - 1);
    const std::size_t lo = std::size_t(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - double(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (!(hi > lo) || bins == 0)
        panic("Histogram: bad range [%f, %f) with %zu bins", lo, hi, bins);
}

void
Histogram::add(double x)
{
    raw_.push_back(x);
    double t = (x - lo_) / (hi_ - lo_);
    t = std::clamp(t, 0.0, 1.0);
    std::size_t i = std::min(std::size_t(t * double(counts_.size())),
                             counts_.size() - 1);
    ++counts_[i];
    ++total_;
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * double(i) / double(counts_.size());
}

double
Histogram::fractionBelow(double x) const
{
    if (raw_.empty())
        return 0.0;
    std::size_t below = 0;
    for (double v : raw_)
        if (v < x)
            ++below;
    return double(below) / double(raw_.size());
}

std::string
Histogram::render(std::size_t width) const
{
    std::string out;
    std::size_t peak = 0;
    for (std::size_t c : counts_)
        peak = std::max(peak, c);
    if (peak == 0)
        peak = 1;
    char line[256];
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const std::size_t bar = counts_[i] * width / peak;
        std::snprintf(line, sizeof(line), "[%9.4f, %9.4f) %6zu |",
                      binLow(i), binHigh(i), counts_[i]);
        out += line;
        out.append(bar, '#');
        out += '\n';
    }
    return out;
}

} // namespace gpusc
