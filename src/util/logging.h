/**
 * @file
 * Status-message helpers in the gem5 tradition.
 *
 * `inform()` reports normal progress, `warn()` flags suspicious but
 * survivable conditions, `fatal()` aborts on user/configuration errors
 * and `panic()` aborts on internal invariant violations.
 */

#ifndef GPUSC_UTIL_LOGGING_H
#define GPUSC_UTIL_LOGGING_H

#include <cstdarg>
#include <string>

namespace gpusc {

/** Controls whether inform() messages are printed (benches mute them). */
void setVerbose(bool verbose);
bool verbose();

/** Print an informational message to stdout (when verbose). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Abort due to a user-level error (bad configuration, bad arguments).
 * Exits with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Abort due to an internal simulator bug. Calls std::abort() so a core
 * dump or debugger trap is possible.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace gpusc

#endif // GPUSC_UTIL_LOGGING_H
