/**
 * @file
 * Status-message helpers in the gem5 tradition.
 *
 * `inform()` reports normal progress, `warn()` flags suspicious but
 * survivable conditions, `fatal()` aborts on user/configuration errors
 * and `panic()` aborts on internal invariant violations.
 *
 * Messages are prefixed with the current simulated time when a time
 * source is registered (android::Device registers its event queue's
 * clock for its lifetime); call sites that print before any device
 * exists — model-store loads, CLI argument handling — stay untimed.
 * Tests and experiments can capture structured LogRecords through
 * setLogSink() instead of scraping stdout/stderr.
 */

#ifndef GPUSC_UTIL_LOGGING_H
#define GPUSC_UTIL_LOGGING_H

#include <cstdarg>
#include <functional>
#include <string>

#include "util/sim_time.h"

namespace gpusc {

/** Controls whether inform() messages are printed (benches mute them). */
void setVerbose(bool verbose);
bool verbose();

/** One captured log message (see setLogSink). */
struct LogRecord
{
    enum class Level
    {
        Info,
        Warn,
        Fatal,
        Panic,
    };
    Level level = Level::Info;
    /** True when a sim-time source was registered at emission. */
    bool hasSimTime = false;
    SimTime simTime;
    /** The formatted message, without prefix or newline. */
    std::string message;
};

const char *logLevelString(LogRecord::Level level);

/**
 * Route log records to @p sink instead of stdout/stderr (fatal and
 * panic still echo to stderr before aborting). Pass nullptr to
 * restore console output. Suppressed inform() calls (verbose off)
 * do not reach the sink.
 */
void setLogSink(std::function<void(const LogRecord &)> sink);

/**
 * Register @p fn as the simulated-time source for log prefixes,
 * tagged with its owning object. Passing a null @p fn unregisters,
 * but only when @p owner is the current registrant — so a device
 * destroyed out of order cannot strip a newer device's clock.
 *
 * The registration is per *thread*: a parallel-eval worker's device
 * stamps only the messages emitted from that worker, and never races
 * with devices owned by other threads.
 */
void setLogTimeSource(const void *owner, std::function<SimTime()> fn);

/** Print an informational message to stdout (when verbose). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Abort due to a user-level error (bad configuration, bad arguments).
 * Exits with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Abort due to an internal simulator bug. Calls std::abort() so a core
 * dump or debugger trap is possible.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace gpusc

#endif // GPUSC_UTIL_LOGGING_H
