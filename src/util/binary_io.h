/**
 * @file
 * Shared little-endian binary serialisation helpers + CRC-32.
 *
 * Every on-disk artefact of this project (signature-model stores,
 * recorded performance-counter traces) goes through these two
 * classes so framing, bounds checking and corruption detection are
 * implemented exactly once. ByteReader never reads out of bounds:
 * a short or malformed buffer flips a sticky failure flag and all
 * further reads return zero values, letting parsers finish cleanly
 * and report a typed error instead of crashing.
 */

#ifndef GPUSC_UTIL_BINARY_IO_H
#define GPUSC_UTIL_BINARY_IO_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace gpusc {

/** CRC-32 (IEEE 802.3, reflected) of @p data; chainable via @p seed. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size,
                    std::uint32_t seed = 0);
std::uint32_t crc32(const std::vector<std::uint8_t> &data,
                    std::uint32_t seed = 0);

/** Appends fixed-width little-endian values to a byte vector. */
class ByteWriter
{
  public:
    ByteWriter() = default;
    explicit ByteWriter(std::vector<std::uint8_t> &&initial)
        : buf_(std::move(initial))
    {
    }

    void u8(std::uint8_t v) { raw(&v, 1); }
    void u16(std::uint16_t v) { pod(v); }
    void u32(std::uint32_t v) { pod(v); }
    void u64(std::uint64_t v) { pod(v); }
    void i32(std::int32_t v) { pod(v); }
    void i64(std::int64_t v) { pod(v); }
    void f32(float v) { pod(v); }
    void f64(double v) { pod(v); }

    /** u16 length prefix + raw bytes (strings <= 64 kB). */
    void str16(const std::string &s)
    {
        u16(std::uint16_t(s.size()));
        raw(reinterpret_cast<const std::uint8_t *>(s.data()),
            s.size());
    }

    void raw(const std::uint8_t *p, std::size_t n)
    {
        buf_.insert(buf_.end(), p, p + n);
    }

    const std::vector<std::uint8_t> &bytes() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

  private:
    template <typename T>
    void
    pod(T v)
    {
        std::uint8_t tmp[sizeof(T)];
        std::memcpy(tmp, &v, sizeof(T));
        raw(tmp, sizeof(T));
    }

    std::vector<std::uint8_t> buf_;
};

/** Bounds-checked reader over a byte span; never crashes on short
 *  input — check ok() (or use the failure flag) after parsing. */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }
    explicit ByteReader(const std::vector<std::uint8_t> &buf)
        : ByteReader(buf.data(), buf.size())
    {
    }

    std::uint8_t u8() { return pod<std::uint8_t>(); }
    std::uint16_t u16() { return pod<std::uint16_t>(); }
    std::uint32_t u32() { return pod<std::uint32_t>(); }
    std::uint64_t u64() { return pod<std::uint64_t>(); }
    std::int32_t i32() { return pod<std::int32_t>(); }
    std::int64_t i64() { return pod<std::int64_t>(); }
    float f32() { return pod<float>(); }
    double f64() { return pod<double>(); }

    /** Counterpart of ByteWriter::str16. */
    std::string
    str16()
    {
        const std::uint16_t n = u16();
        if (!require(n))
            return {};
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      n);
        pos_ += n;
        return s;
    }

    /** Copy @p n raw bytes out (zero-filled past the end). */
    void
    raw(std::uint8_t *out, std::size_t n)
    {
        if (!require(n)) {
            std::memset(out, 0, n);
            return;
        }
        std::memcpy(out, data_ + pos_, n);
        pos_ += n;
    }

    /** Skip @p n bytes. */
    void
    skip(std::size_t n)
    {
        if (require(n))
            pos_ += n;
    }

    bool ok() const { return ok_; }
    std::size_t pos() const { return pos_; }
    std::size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }

  private:
    bool
    require(std::size_t n)
    {
        if (!ok_ || n > size_ - pos_) {
            ok_ = false;
            return false;
        }
        return true;
    }

    template <typename T>
    T
    pod()
    {
        if (!require(sizeof(T)))
            return T{};
        T v;
        std::memcpy(&v, data_ + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace gpusc

#endif // GPUSC_UTIL_BINARY_IO_H
