/**
 * @file
 * Discrete-event simulation kernel.
 *
 * Components schedule callbacks at absolute simulated times; the queue
 * dispatches them in (time, insertion-order) order. This is the only
 * notion of concurrency in the simulator: every hardware and software
 * actor (vsync, GPU frame completion, the attacking application's
 * sampler thread, key press/release timers, cursor blink, ...) is an
 * event.
 */

#ifndef GPUSC_UTIL_EVENT_QUEUE_H
#define GPUSC_UTIL_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/sim_time.h"

namespace gpusc {

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/** Time-ordered event queue with stable FIFO tie-breaking. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** @return the current simulated time. */
    SimTime now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * Scheduling in the past is a simulator bug.
     * @return an id usable with cancel().
     */
    EventId schedule(SimTime when, Callback fn);

    /** Schedule @p fn to run @p delay after now. */
    EventId scheduleAfter(SimTime delay, Callback fn);

    /** Cancel a pending event. Cancelling a fired event is a no-op. */
    void cancel(EventId id);

    /** @return true if no runnable events remain. */
    bool empty() const { return callbacks_.empty(); }

    /** @return the time of the next runnable event (max() if none). */
    SimTime nextTime();

    /**
     * Run events until the queue is empty or the next event is after
     * @p horizon. Time is left at the later of the last dispatched
     * event and @p horizon (when the horizon is finite).
     */
    void runUntil(SimTime horizon);

    /** Run until the queue drains completely. */
    void run() { runUntil(SimTime::max()); }

    /** Number of events dispatched so far (for tests/diagnostics). */
    std::uint64_t dispatched() const { return dispatched_; }

  private:
    struct Entry
    {
        SimTime when;
        std::uint64_t seq;
        EventId id;
        // Ordered so that the priority_queue pops the earliest entry.
        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    /** Drop heap tombstones left behind by cancel(). */
    void skipDead();

    SimTime now_;
    std::uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
    std::uint64_t dispatched_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
    // Callbacks live here so cancel() can drop them in O(1); the heap
    // entry of a cancelled event becomes a tombstone.
    std::unordered_map<EventId, Callback> callbacks_;
};

} // namespace gpusc

#endif // GPUSC_UTIL_EVENT_QUEUE_H
