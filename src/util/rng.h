/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the simulator draws from an explicitly
 * seeded Rng so that experiments are reproducible run-to-run. The core
 * generator is xoshiro256**, seeded through splitmix64.
 */

#ifndef GPUSC_UTIL_RNG_H
#define GPUSC_UTIL_RNG_H

#include <cstdint>
#include <span>
#include <vector>

namespace gpusc {

/**
 * Derive the seed of an independent child stream from a master seed
 * and a stream index (splitmix64-style finalisation over both).
 *
 * This is the seeding function of the parallel evaluation engine
 * (src/exec/): stream @p index is a *logical* identity — a trial or
 * shard number — never a thread id, so the derived stream depends
 * only on (master, index) and results are identical for any worker
 * count. Distinct indices give statistically independent streams;
 * the same pair always gives the same stream.
 */
std::uint64_t forkSeed(std::uint64_t master, std::uint64_t index);

/** Deterministic random number generator (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return the next raw 64-bit draw. */
    std::uint64_t next();

    /** @return uniform double in [0, 1). */
    double uniform();

    /** @return uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return uniform integer in [lo, hi] (inclusive). */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** @return true with probability p. */
    bool bernoulli(double p);

    /** @return a draw from N(mean, stddev^2). */
    double normal(double mean, double stddev);

    /** @return a draw from Exp(1/mean). */
    double exponential(double mean);

    /**
     * @return a log-normal draw parameterised by the mean and stddev of
     * the *resulting* distribution (moment matched), handy for human
     * timing models which are right skewed.
     */
    double logNormalByMoments(double mean, double stddev);

    /** @return index in [0, weights.size()) drawn ∝ weights. */
    std::size_t weightedIndex(std::span<const double> weights);

    /** Pick a uniformly random element of a non-empty container. */
    template <typename C>
    const typename C::value_type &
    pick(const C &c)
    {
        return c[std::size_t(uniformInt(0, std::int64_t(c.size()) - 1))];
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = std::size_t(uniformInt(0, std::int64_t(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (for per-component seeds). */
    Rng fork();

  private:
    std::uint64_t s_[4];
    bool haveSpareGaussian_ = false;
    double spareGaussian_ = 0.0;
};

} // namespace gpusc

#endif // GPUSC_UTIL_RNG_H
