#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace gpusc {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
forkSeed(std::uint64_t master, std::uint64_t index)
{
    // Two splitmix64 rounds over a golden-gamma spaced combination:
    // adjacent indices land far apart in the master's stream space.
    std::uint64_t x =
        master ^ (index + 1) * 0x9e3779b97f4a7c15ULL;
    const std::uint64_t a = splitmix64(x);
    return splitmix64(x) ^ a;
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return double(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("uniformInt: empty range [%lld, %lld]",
              (long long)lo, (long long)hi);
    const std::uint64_t span = std::uint64_t(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return std::int64_t(next());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return lo + std::int64_t(v % span);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::normal(double mean, double stddev)
{
    if (haveSpareGaussian_) {
        haveSpareGaussian_ = false;
        return mean + stddev * spareGaussian_;
    }
    // Marsaglia polar method.
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
        // gpusc-lint: allow(F1): Marsaglia rejects exactly 0 to keep log(s) finite; an epsilon would bias the tail.
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spareGaussian_ = v * m;
    haveSpareGaussian_ = true;
    return mean + stddev * u * m;
}

double
Rng::exponential(double mean)
{
    return -mean * std::log(1.0 - uniform());
}

double
Rng::logNormalByMoments(double mean, double stddev)
{
    if (mean <= 0)
        panic("logNormalByMoments: mean must be positive (got %f)", mean);
    const double cv2 = (stddev / mean) * (stddev / mean);
    const double sigma2 = std::log(1.0 + cv2);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(normal(mu, std::sqrt(sigma2)));
}

std::size_t
Rng::weightedIndex(std::span<const double> weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w;
    if (total <= 0.0)
        panic("weightedIndex: non-positive total weight");
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace gpusc
