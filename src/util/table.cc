#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace gpusc {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    if (header_.empty())
        panic("Table: empty header");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != header_.size())
        panic("Table: row has %zu cells, header has %zu",
              cells.size(), header_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
Table::pct(double ratio, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, ratio * 100.0);
    return buf;
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line = "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += ' ';
            line += row[c];
            line.append(widths[c] - row[c].size(), ' ');
            line += " |";
        }
        line += '\n';
        return line;
    };

    std::string sep = "+";
    for (std::size_t w : widths) {
        sep.append(w + 2, '-');
        sep += '+';
    }
    sep += '\n';

    std::string out = sep + renderRow(header_) + sep;
    for (const auto &row : rows_)
        out += renderRow(row);
    out += sep;
    return out;
}

void
Table::print(const std::string &caption) const
{
    if (!caption.empty())
        std::printf("%s\n", caption.c_str());
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

} // namespace gpusc
