#include "util/event_queue.h"

#include "util/logging.h"

namespace gpusc {

EventId
EventQueue::schedule(SimTime when, Callback fn)
{
    if (when < now_)
        panic("EventQueue: scheduling at %s before now (%s)",
              when.toString().c_str(), now_.toString().c_str());
    EventId id = nextId_++;
    queue_.push(Entry{when, nextSeq_++, id});
    callbacks_.emplace(id, std::move(fn));
    return id;
}

EventId
EventQueue::scheduleAfter(SimTime delay, Callback fn)
{
    return schedule(now_ + delay, std::move(fn));
}

void
EventQueue::cancel(EventId id)
{
    callbacks_.erase(id);
}

void
EventQueue::skipDead()
{
    while (!queue_.empty() && !callbacks_.contains(queue_.top().id))
        queue_.pop();
}

SimTime
EventQueue::nextTime()
{
    skipDead();
    return queue_.empty() ? SimTime::max() : queue_.top().when;
}

void
EventQueue::runUntil(SimTime horizon)
{
    for (;;) {
        skipDead();
        if (queue_.empty() || queue_.top().when > horizon)
            break;
        Entry e = queue_.top();
        queue_.pop();
        auto it = callbacks_.find(e.id);
        Callback fn = std::move(it->second);
        callbacks_.erase(it);
        now_ = e.when;
        ++dispatched_;
        fn();
    }
    if (horizon != SimTime::max() && now_ < horizon)
        now_ = horizon;
}

} // namespace gpusc
