#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace gpusc {

namespace {
std::atomic<bool> verboseFlag{true};
/** Serialises sink swaps against emissions from worker threads. */
std::mutex sinkMutex;
std::function<void(const LogRecord &)> logSink;
// The sim-time prefix source is per *thread*: each parallel-eval
// worker owns its shard's device, so a device registering its clock
// must never stamp (or race with) messages from another worker's
// shard. Serial runs see the old single-slot behaviour unchanged.
thread_local const void *timeOwner = nullptr;
thread_local std::function<SimTime()> timeSource;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list copy;
    va_copy(copy, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n < 0)
        return fmt;
    std::vector<char> buf(std::size_t(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), std::size_t(n));
}

LogRecord
makeRecord(LogRecord::Level level, const char *fmt, va_list ap)
{
    LogRecord r;
    r.level = level;
    if (timeSource) {
        r.hasSimTime = true;
        r.simTime = timeSource();
    }
    r.message = vformat(fmt, ap);
    return r;
}

void
printRecord(FILE *to, const LogRecord &r)
{
    if (r.hasSimTime)
        std::fprintf(to, "%s @%.3fs: %s\n", logLevelString(r.level),
                     r.simTime.seconds(), r.message.c_str());
    else
        std::fprintf(to, "%s: %s\n", logLevelString(r.level),
                     r.message.c_str());
}

void
emit(FILE *to, LogRecord::Level level, const char *fmt, va_list ap)
{
    const LogRecord r = makeRecord(level, fmt, ap);
    {
        // One record reaches the sink at a time, and a sink being
        // swapped can never be invoked mid-swap.
        const std::lock_guard<std::mutex> lock(sinkMutex);
        if (logSink) {
            logSink(r);
            // Aborting levels still echo so a dying process leaves a
            // visible last word even under a capturing sink.
            if (level == LogRecord::Level::Fatal ||
                level == LogRecord::Level::Panic)
                printRecord(stderr, r);
            return;
        }
    }
    printRecord(to, r);
}
} // namespace

const char *
logLevelString(LogRecord::Level level)
{
    switch (level) {
      case LogRecord::Level::Info:
        return "info";
      case LogRecord::Level::Warn:
        return "warn";
      case LogRecord::Level::Fatal:
        return "fatal";
      case LogRecord::Level::Panic:
        return "panic";
    }
    return "?";
}

void setVerbose(bool v) { verboseFlag = v; }
bool verbose() { return verboseFlag; }

void
setLogSink(std::function<void(const LogRecord &)> sink)
{
    const std::lock_guard<std::mutex> lock(sinkMutex);
    logSink = std::move(sink);
}

void
setLogTimeSource(const void *owner, std::function<SimTime()> fn)
{
    if (fn) {
        timeOwner = owner;
        timeSource = std::move(fn);
    } else if (owner == timeOwner) {
        timeOwner = nullptr;
        timeSource = nullptr;
    }
}

void
inform(const char *fmt, ...)
{
    if (!verboseFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit(stdout, LogRecord::Level::Info, fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit(stderr, LogRecord::Level::Warn, fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit(stderr, LogRecord::Level::Fatal, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit(stderr, LogRecord::Level::Panic, fmt, ap);
    va_end(ap);
    std::abort();
}

} // namespace gpusc
