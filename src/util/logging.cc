#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace gpusc {

namespace {
bool verboseFlag = true;

void
vprint(FILE *to, const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(to, "%s: ", tag);
    std::vfprintf(to, fmt, ap);
    std::fputc('\n', to);
}
} // namespace

void setVerbose(bool v) { verboseFlag = v; }
bool verbose() { return verboseFlag; }

void
inform(const char *fmt, ...)
{
    if (!verboseFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    vprint(stdout, "info", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vprint(stderr, "warn", fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vprint(stderr, "fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vprint(stderr, "panic", fmt, ap);
    va_end(ap);
    std::abort();
}

} // namespace gpusc
