/**
 * @file
 * Deterministic parallel experiment evaluation.
 *
 * ParallelRunner shards a campaign of credential trials across a
 * work-stealing ThreadPool and guarantees that the trial results,
 * the accuracy statistics and the merged telemetry are **identical
 * for any worker count, including one**. Three rules make that hold:
 *
 *  - Shard composition depends only on (trial count, shard size),
 *    never on the thread count: shard k always owns trials
 *    [k*S, (k+1)*S).
 *  - All randomness is keyed on logical indices through
 *    gpusc::forkSeed: trial i's credential comes from streams forked
 *    on (seed, i); shard k's device/typist stream is forked on
 *    (seed, k | kShardStream). No stream ever depends on which
 *    thread ran the work.
 *  - Reduction is ordered: shard outputs land in an indexed slot
 *    array and are folded in shard order — stats re-accumulated in
 *    trial order, per-shard Telemetry merged in shard order.
 *
 * Each shard runs its own eval::ExperimentRunner (own simulated
 * device, own attack session), so shards share no mutable state but
 * the ModelStore — which the ParallelRunner pre-trains in its
 * constructor, making every worker-side access a read-only cache
 * hit.
 *
 * Note the parallel contract is self-consistency across thread
 * counts, not byte-equality with ExperimentRunner::runTrials: the
 * serial loop threads one RNG stream through all trials, which is
 * inherently order-dependent and cannot be sharded.
 */

#ifndef GPUSC_EXEC_PARALLEL_RUNNER_H
#define GPUSC_EXEC_PARALLEL_RUNNER_H

#include <cstddef>
#include <string>
#include <vector>

#include "attack/eavesdropper.h"
#include "attack/model_store.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "exec/thread_pool.h"
#include "kgsl/fault_injector.h"
#include "trace/trace_replayer.h"

namespace gpusc::exec {

/** How a campaign is split into per-worker tasks. */
struct ShardPlan
{
    /**
     * Trials per shard. Smaller shards steal better; larger shards
     * amortise the per-shard device boot. Must not vary between runs
     * that are expected to produce identical telemetry (shard
     * boundaries are visible in span/audit interleaving).
     */
    std::size_t shardSize = 8;
};

/** Aggregated outcome of a parallel campaign. */
struct ParallelResult
{
    /** Accuracy over all trials, accumulated in trial order. */
    eval::AccuracyStats stats;
    /** Every trial, in trial-index order. */
    std::vector<eval::TrialResult> trials;
    /** Pipeline recovery accounting summed over all shards. */
    attack::HealthStats health{};
    /** Injected-fault accounting summed over all shards. */
    kgsl::FaultInjector::Stats faults{};
    /** Defender-side cost summed over all shards (all-zero when the
     *  campaign ran undefended). */
    kgsl::DefenseOverhead defense{};
};

/** Runs experiment campaigns sharded across a thread pool. */
class ParallelRunner
{
  public:
    /**
     * @param cfg the base configuration every shard derives from.
     *   recordTracePath is serial-only and is disabled (with a
     *   warning) if set; cfg.telemetry, when non-null, receives the
     *   ordered merge of all shard telemetry.
     * @param store model cache, pre-trained here so worker threads
     *   only ever read it.
     */
    ParallelRunner(eval::ExperimentConfig cfg,
                   attack::ModelStore &store,
                   std::size_t threads = 1, ShardPlan plan = {});

    /**
     * Run @p n random trials with credential lengths in
     * [minLen, maxLen]. Deterministic in (cfg.seed, n, minLen,
     * maxLen, plan.shardSize) — the thread count never changes the
     * outcome.
     */
    ParallelResult runTrials(int n, std::size_t minLen,
                             std::size_t maxLen);

    /** The signature model the campaign attacks with. */
    const attack::SignatureModel &model() const { return *model_; }

    /**
     * Observe every finished trial with its sim timestamp (see
     * eval::ExperimentRunner::setTrialListener). Forwarded only when
     * the campaign runs inline (threads == 1): a listener firing
     * from pool workers would interleave scheduling-dependently,
     * which is exactly what this class exists to prevent. A
     * multi-thread campaign with a listener attached fails fast.
     */
    void
    setTrialListener(
        std::function<void(const eval::TrialResult &, SimTime)> fn)
    {
        trialListener_ = std::move(fn);
    }

    std::size_t threads() const { return pool_.size(); }
    const ShardPlan &plan() const { return plan_; }

    /** Stream index namespace for shard-level seeds (forkSeed's
     *  index is the shard number OR'd with this; trial-level seeds
     *  use the bare trial index, so the spaces never collide). */
    static constexpr std::uint64_t kShardStream =
        0x8000000000000000ULL;

  private:
    eval::ExperimentConfig cfg_;
    attack::ModelStore &store_;
    ShardPlan plan_;
    ThreadPool pool_;
    const attack::SignatureModel *model_;
    std::function<void(const eval::TrialResult &, SimTime)>
        trialListener_;
};

/** Outcome of replaying one trace file. */
struct ReplayOutcome
{
    std::string path;
    trace::TraceError error = trace::TraceError::None;
    std::vector<trace::TraceReplayer::Trial> trials;
    std::uint64_t readings = 0;
    std::uint64_t faults = 0;
};

/**
 * Replay many trace files across @p pool, one task per file, each
 * through its own TraceReplayer against the (read-only) @p store.
 * Outcomes land in input order; each file's replay is bit-identical
 * to a serial TraceReplayer::replayFile on the same store.
 */
std::vector<ReplayOutcome>
replayFiles(const attack::ModelStore &store,
            const std::vector<std::string> &paths, ThreadPool &pool,
            const attack::Eavesdropper::Params &params = {});

} // namespace gpusc::exec

#endif // GPUSC_EXEC_PARALLEL_RUNNER_H
