/**
 * @file
 * A small work-stealing thread pool for the parallel evaluation
 * engine.
 *
 * The pool exists to run *indexed* batches: parallelFor(n, fn) calls
 * fn(0..n-1) exactly once each, distributing contiguous index blocks
 * across per-worker deques up front and letting idle workers steal
 * from the far end of their neighbours' queues. Which thread runs
 * which index is the only thing scheduling decides — callers key all
 * work (RNG streams, output slots) on the index, so results are
 * independent of the worker count and of stealing order.
 *
 * With fewer than two threads the pool spawns no workers at all and
 * parallelFor degenerates to a plain in-order loop on the caller's
 * thread — the deterministic baseline the parallel paths are tested
 * against.
 */

#ifndef GPUSC_EXEC_THREAD_POOL_H
#define GPUSC_EXEC_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gpusc::exec {

/** Work-stealing pool running indexed batches to completion. */
class ThreadPool
{
  public:
    /** @param threads worker count; <= 1 means run batches inline. */
    explicit ThreadPool(std::size_t threads = 1);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker threads backing the pool (1 when running inline). */
    std::size_t
    size() const
    {
        return workers_.empty() ? 1 : workers_.size();
    }

    /**
     * Run fn(0) .. fn(n-1), each exactly once, and return when all
     * have finished. Tasks may run on any worker in any order; they
     * must not call parallelFor on the same pool (one batch at a
     * time) and must key any state they touch on their index.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

  private:
    struct Queue;

    void workerLoop(std::size_t self);
    bool popTask(std::size_t self, std::uint64_t gen,
                 std::size_t &idx);

    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::thread> workers_;

    /** Batch state, all guarded by mutex_. */
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(std::size_t)> *fn_ = nullptr;
    std::size_t remaining_ = 0;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
};

} // namespace gpusc::exec

#endif // GPUSC_EXEC_THREAD_POOL_H
