#include "exec/thread_pool.h"

#include <deque>
#include <utility>

namespace gpusc::exec {

/**
 * One worker's task deque. Entries are (generation, index): a worker
 * still draining the tail of a finished batch must not grab entries
 * a new batch just pushed under a stale function pointer, so pops
 * only match the generation the worker registered for.
 */
struct ThreadPool::Queue
{
    std::mutex m;
    std::deque<std::pair<std::uint64_t, std::size_t>> d;
};

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads < 2)
        return; // inline mode: no workers, no queues
    queues_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        queues_.push_back(std::make_unique<Queue>());
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        const std::lock_guard<std::mutex> lk(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

bool
ThreadPool::popTask(std::size_t self, std::uint64_t gen,
                    std::size_t &idx)
{
    // Own queue first, from the front (keeps the contiguous block
    // this worker was dealt in order — good locality for shards).
    {
        Queue &q = *queues_[self];
        const std::lock_guard<std::mutex> lk(q.m);
        if (!q.d.empty() && q.d.front().first == gen) {
            idx = q.d.front().second;
            q.d.pop_front();
            return true;
        }
    }
    // Steal from the back of the other queues.
    for (std::size_t off = 1; off < queues_.size(); ++off) {
        Queue &q = *queues_[(self + off) % queues_.size()];
        const std::lock_guard<std::mutex> lk(q.m);
        if (!q.d.empty() && q.d.back().first == gen) {
            idx = q.d.back().second;
            q.d.pop_back();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    std::uint64_t gen = 0;
    for (;;) {
        const std::function<void(std::size_t)> *fn = nullptr;
        {
            std::unique_lock<std::mutex> lk(mutex_);
            wake_.wait(lk, [&] {
                return stop_ || (fn_ != nullptr && generation_ != gen);
            });
            if (stop_)
                return;
            gen = generation_;
            fn = fn_;
        }
        std::size_t idx = 0;
        while (popTask(self, gen, idx)) {
            (*fn)(idx);
            const std::lock_guard<std::mutex> lk(mutex_);
            if (--remaining_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers_.empty()) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::unique_lock<std::mutex> lk(mutex_);
    fn_ = &fn;
    remaining_ = n;
    ++generation_;
    const std::uint64_t gen = generation_;

    // Deal contiguous index blocks: worker q gets [next, next+count).
    const std::size_t w = queues_.size();
    std::size_t next = 0;
    for (std::size_t q = 0; q < w; ++q) {
        const std::size_t count = n / w + (q < n % w ? 1 : 0);
        const std::lock_guard<std::mutex> ql(queues_[q]->m);
        for (std::size_t i = 0; i < count; ++i)
            queues_[q]->d.emplace_back(gen, next++);
    }

    wake_.notify_all();
    done_.wait(lk, [&] { return remaining_ == 0; });
    fn_ = nullptr;
}

} // namespace gpusc::exec
