#include "exec/parallel_runner.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/telemetry.h"
#include "util/logging.h"
#include "util/rng.h"
#include "workload/credential.h"

namespace gpusc::exec {

namespace {

void
addHealth(attack::HealthStats &into, const attack::HealthStats &from)
{
    into.transientRetries += from.transientRetries;
    into.busyRetries += from.busyRetries;
    into.reopens += from.reopens;
    into.resetsSurvived += from.resetsSurvived;
    into.watchdogRecoveries += from.watchdogRecoveries;
    into.missedReads += from.missedReads;
    into.streamResets += from.streamResets;
    into.wrapsRepaired += from.wrapsRepaired;
    into.countersHeld += from.countersHeld;
    into.throttledReads += from.throttledReads;
    into.paceBackoffs += from.paceBackoffs;
    into.paceRecoveries += from.paceRecoveries;
    // Degraded-rate surface: worst cadence across shards.
    if (from.effectiveIntervalNs > into.effectiveIntervalNs)
        into.effectiveIntervalNs = from.effectiveIntervalNs;
}

void
addFaults(kgsl::FaultInjector::Stats &into,
          const kgsl::FaultInjector::Stats &from)
{
    into.transientErrors += from.transientErrors;
    into.busyDenials += from.busyDenials;
    into.powerCollapses += from.powerCollapses;
    into.deviceResets += from.deviceResets;
}

} // namespace

ParallelRunner::ParallelRunner(eval::ExperimentConfig cfg,
                               attack::ModelStore &store,
                               std::size_t threads, ShardPlan plan)
    : cfg_(std::move(cfg)), store_(store), plan_(plan), pool_(threads)
{
    if (plan_.shardSize == 0)
        plan_.shardSize = 1;
    if (!cfg_.recordTracePath.empty()) {
        warn("ParallelRunner: trace recording is serial-only "
             "(one writer per file); disabling it for '%s'",
             cfg_.recordTracePath.c_str());
        cfg_.recordTracePath.clear();
    }
    // Pre-train on the calling thread: every shard uses the same
    // device configuration, so worker-side getOrTrain calls are
    // guaranteed read-only cache hits.
    const attack::OfflineTrainer trainer;
    model_ = &store_.getOrTrain(cfg_.device, trainer);
}

ParallelResult
ParallelRunner::runTrials(int n, std::size_t minLen,
                          std::size_t maxLen)
{
    ParallelResult result;
    if (n <= 0)
        return result;
    if (trialListener_ && pool_.size() > 1)
        fatal("ParallelRunner: a trial listener requires --threads 1 "
              "(listener order from pool workers would be "
              "scheduling-dependent)");

    // Trial i's credential is fully determined by (seed, i): one
    // forked stream draws the length, a second (offset the same way
    // the serial runner offsets its generator seed) draws the text.
    std::vector<std::string> creds(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < creds.size(); ++i) {
        Rng lenRng(forkSeed(cfg_.seed, i));
        const auto len = std::size_t(lenRng.uniformInt(
            std::int64_t(minLen), std::int64_t(maxLen)));
        workload::CredentialGenerator gen(
            forkSeed(cfg_.seed, i) ^ 0xc0ffee, cfg_.charset);
        creds[i] = gen.next(len);
    }

    struct ShardOut
    {
        std::vector<eval::TrialResult> trials;
        attack::HealthStats health{};
        kgsl::FaultInjector::Stats faults{};
        kgsl::DefenseOverhead defense{};
        std::unique_ptr<obs::Telemetry> telemetry;
    };

    const std::size_t shardSize = plan_.shardSize;
    const std::size_t shards =
        (creds.size() + shardSize - 1) / shardSize;
    std::vector<ShardOut> outs(shards);

    pool_.parallelFor(shards, [&](std::size_t k) {
        ShardOut &out = outs[k];

        eval::ExperimentConfig cfg = cfg_;
        cfg.seed = forkSeed(cfg_.seed, kShardStream | k);
        if (cfg_.telemetry) {
            if (trialListener_) {
                // Listener campaigns are inline-only (enforced
                // above), so shards run sequentially and can record
                // straight into the campaign context — the listener
                // (e.g. a live telemetry plane) then observes
                // counters as they grow instead of one final lump
                // after the merge. The fold below is order-identical
                // to this, so exported snapshots do not change.
                cfg.telemetry = cfg_.telemetry;
            } else {
                out.telemetry = std::make_unique<obs::Telemetry>();
                cfg.telemetry = out.telemetry.get();
            }
        }

        eval::ExperimentRunner runner(cfg, store_);
        if (trialListener_)
            runner.setTrialListener(trialListener_);
        const std::size_t lo = k * shardSize;
        const std::size_t hi =
            std::min(lo + shardSize, creds.size());
        out.trials.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i)
            out.trials.push_back(runner.runTrial(creds[i]));
        out.health = runner.health();
        out.defense = runner.defenseOverhead();
        if (const kgsl::FaultInjector *inj = runner.faultInjector())
            out.faults = inj->stats();
    });

    // Ordered reduction: fold shard 0, 1, 2, ... so stats, trial
    // order and merged telemetry are scheduling-independent.
    result.trials.reserve(creds.size());
    for (ShardOut &out : outs) {
        for (eval::TrialResult &t : out.trials) {
            result.stats.add(t.truth, t.inferred);
            result.trials.push_back(std::move(t));
        }
        addHealth(result.health, out.health);
        addFaults(result.faults, out.faults);
        result.defense.add(out.defense);
        if (cfg_.telemetry && out.telemetry)
            cfg_.telemetry->merge(*out.telemetry);
    }
    return result;
}

std::vector<ReplayOutcome>
replayFiles(const attack::ModelStore &store,
            const std::vector<std::string> &paths, ThreadPool &pool,
            const attack::Eavesdropper::Params &params)
{
    std::vector<ReplayOutcome> outcomes(paths.size());
    pool.parallelFor(paths.size(), [&](std::size_t i) {
        ReplayOutcome &out = outcomes[i];
        out.path = paths[i];
        trace::TraceReplayer replayer(store, params);
        out.error = replayer.replayFile(paths[i]);
        out.trials = replayer.trials();
        out.readings = replayer.readingsReplayed();
        out.faults = replayer.faultsSeen();
    });
    return outcomes;
}

} // namespace gpusc::exec
