/**
 * @file
 * Battery-drain accounting for the attack's overhead (Fig. 26).
 *
 * The attack's energy cost comes from the sampler's periodic CPU
 * wakeups + ioctl round trips and the (tiny) inference work. A linear
 * energy model per event is adequate to reproduce the *relative* extra
 * drain the paper reports (<= ~4 % after two hours, device dependent).
 */

#ifndef GPUSC_ANDROID_POWER_H
#define GPUSC_ANDROID_POWER_H

#include <cstdint>

#include "android/phone.h"

namespace gpusc::android {

/** Per-device energy model for the attack's overhead. */
class PowerModel
{
  public:
    explicit PowerModel(const PhoneSpec &phone);

    /** Account one sampler wakeup (timer + ioctl syscall). */
    void addSamplerWakeups(std::uint64_t n) { wakeups_ += n; }

    /** Account one classifier inference. */
    void addInferences(std::uint64_t n) { inferences_ += n; }

    /** Extra charge consumed so far, mAh. */
    double extraMah() const;

    /** Extra battery percentage consumed so far. */
    double extraBatteryPercent() const;

  private:
    const PhoneSpec &phone_;
    std::uint64_t wakeups_ = 0;
    std::uint64_t inferences_ = 0;
};

} // namespace gpusc::android

#endif // GPUSC_ANDROID_POWER_H
