#include "android/app.h"

#include <map>

#include "gfx/font.h"
#include "util/logging.h"

namespace gpusc::android {

using namespace gpusc::sim_literals;

namespace {

AppSpec
makeSpec(const std::string &name, int decor, const std::string &logo,
         double fieldY, double fieldW, bool web = false,
         bool anim = false)
{
    AppSpec s;
    s.name = name;
    s.decorRects = decor;
    s.logoText = logo;
    s.fieldYFrac = fieldY;
    s.fieldWidthDp = fieldW;
    s.web = web;
    s.loginAnimation = anim;
    return s;
}

const std::map<std::string, AppSpec> &
specTable()
{
    static const std::map<std::string, AppSpec> table = {
        {"chase", makeSpec("chase", 7, "CHASE", 0.40, 300)},
        {"amex", makeSpec("amex", 5, "AMEX", 0.46, 290)},
        {"fidelity", makeSpec("fidelity", 8, "Fidelity", 0.38, 310)},
        {"schwab", makeSpec("schwab", 6, "Schwab", 0.44, 295)},
        {"myfico", makeSpec("myfico", 4, "myFICO", 0.41, 285)},
        {"experian", makeSpec("experian", 6, "Experian", 0.43, 305)},
        {"pnc", makeSpec("pnc", 6, "PNC", 0.42, 300, false, true)},
        {"chase.com", makeSpec("chase.com", 9, "chase.com", 0.47, 320,
                               true)},
        {"schwab.com", makeSpec("schwab.com", 8, "schwab.com", 0.49,
                                315, true)},
        {"experian.com", makeSpec("experian.com", 7, "experian.com",
                                  0.48, 325, true)},
    };
    return table;
}

} // namespace

const AppSpec &
appSpec(const std::string &name)
{
    const auto &table = specTable();
    auto it = table.find(name);
    if (it == table.end())
        fatal("appSpec: unknown target app '%s'", name.c_str());
    return it->second;
}

const std::vector<std::string> &
nativeAppNames()
{
    static const std::vector<std::string> names = {
        "chase", "amex", "fidelity", "schwab", "myfico", "experian"};
    return names;
}

const std::vector<std::string> &
webAppNames()
{
    static const std::vector<std::string> names = {
        "chase.com", "schwab.com", "experian.com"};
    return names;
}

AppSurface::AppSurface(EventQueue &eq, const AppSpec &spec,
                       const DisplayConfig &display, int pid,
                       int osVersionTweak, std::uint64_t blinkSeed)
    : Surface("app:" + spec.name,
              gfx::Rect{0, display.statusBarHeightPx(), display.width,
                        display.height},
              pid),
      eq_(eq), spec_(spec), display_(display),
      osVersionTweak_(osVersionTweak), blinkRng_(blinkSeed)
{
    const int w = display_.dp(spec_.fieldWidthDp);
    const int h = display_.dp(spec_.fieldHeightDp);
    const int x0 = (display_.width - w) / 2;
    const int y0 = int(spec_.fieldYFrac * display_.height) +
                   osVersionTweak_ * display_.dp(2);
    fieldRect_ = gfx::Rect{x0, y0, x0 + w, y0 + h};
}

AppSurface::~AppSurface()
{
    if (blinkEvent_)
        eq_.cancel(blinkEvent_);
    if (animEvent_)
        eq_.cancel(animEvent_);
}

gfx::Rect
AppSurface::animRect() const
{
    const int h = int(spec_.animAreaFrac * display_.height);
    return gfx::Rect{bounds().x0, bounds().y0 + display_.dp(40),
                     bounds().x1, bounds().y0 + display_.dp(40) + h};
}

void
AppSurface::buildScene(gfx::FrameScene &scene) const
{
    // Login background.
    scene.add(bounds(), true, gfx::PrimTag::AppContent);

    // Browser chrome for web targets (URL bar + toolbar).
    int contentTop = bounds().y0;
    if (spec_.web) {
        const gfx::Rect urlBar{bounds().x0, contentTop, bounds().x1,
                               contentTop + display_.dp(36)};
        scene.add(urlBar, true, gfx::PrimTag::AppContent);
        scene.add(urlBar.inset(display_.dp(6)), true,
                  gfx::PrimTag::AppContent);
        contentTop = urlBar.y1;
    }

    // Decorative rects (cards, buttons, banners) — deterministic
    // layout derived from the spec so each app has a unique scene.
    for (int i = 0; i < spec_.decorRects; ++i) {
        const int y = contentTop + display_.dp(50.0 + 36.0 * i +
                                               4.0 * osVersionTweak_);
        const int margin = display_.dp(16.0 + 7.0 * (i % 3));
        const int h = display_.dp(18.0 + 5.0 * ((i * 13) % 4));
        scene.add(gfx::Rect{bounds().x0 + margin, y,
                            bounds().x1 - margin, y + h},
                  true, gfx::PrimTag::AppContent);
    }

    // Animated decor region (PNC): content depends on animPhase_.
    if (spec_.loginAnimation && animRunning_) {
        const gfx::Rect ar = animRect();
        scene.add(ar, true, gfx::PrimTag::Animation);
        const int n = 3 + animPhase_ % 4;
        for (int i = 0; i < n; ++i) {
            const int x = ar.x0 + ((animPhase_ * 53 + i * 177) %
                                   std::max(1, ar.width() - 60));
            const int y = ar.y0 + ((animPhase_ * 31 + i * 97) %
                                   std::max(1, ar.height() - 40));
            scene.add(gfx::Rect::ofSize(x, y, 60, 40),
                      i % 2 == 0, gfx::PrimTag::Animation);
        }
    }

    // Brand logo as glyph runs.
    const int logoH = display_.dp(22);
    const int logoW = logoH * gfx::kGlyphCols / gfx::kGlyphRows;
    int lx = (display_.width -
              int(spec_.logoText.size()) * (logoW + display_.dp(2))) / 2;
    const int ly = contentTop + display_.dp(18);
    for (char c : spec_.logoText) {
        for (const gfx::Rect &run : gfx::glyphRunRects(
                 c, gfx::Rect::ofSize(lx, ly, logoW, logoH)))
            scene.add(run, true, gfx::PrimTag::AppContent);
        lx += logoW + display_.dp(2);
    }

    // Credential field: box, underline, one dot per committed char,
    // cursor when lit. Every field redraw therefore contributes
    // 2 * (len + const) visible primitives — the length channel.
    scene.add(fieldRect_, true, gfx::PrimTag::TextField);
    scene.add(gfx::Rect{fieldRect_.x0, fieldRect_.y1,
                        fieldRect_.x1, fieldRect_.y1 + display_.dp(2)},
              true, gfx::PrimTag::TextField);
    const int dot = display_.dp(spec_.dotDp);
    const int pitch = dot + display_.dp(4);
    const int dotY = fieldRect_.center().y - dot / 2;
    int x = fieldRect_.x0 + display_.dp(6);
    for (std::size_t i = 0; i < textLen_; ++i) {
        scene.add(gfx::Rect::ofSize(x, dotY, dot, dot), true,
                  gfx::PrimTag::TextEcho);
        x += pitch;
    }
    if (focused_ && cursorOn_)
        scene.add(cursorRect(), true, gfx::PrimTag::Cursor);
}

gfx::Rect
AppSurface::cursorRect() const
{
    const int dot = display_.dp(spec_.dotDp);
    const int pitch = dot + display_.dp(4);
    const int x = fieldRect_.x0 + display_.dp(6) +
                  int(textLen_) * pitch;
    // Kept deliberately slim: the cursor's rasterised area must stay
    // well under half a dot's so blink cannot masquerade as an
    // append/delete in the length channel.
    return gfx::Rect::ofSize(x, fieldRect_.y0 + display_.dp(4),
                             display_.dp(1),
                             fieldRect_.height() - display_.dp(8));
}

SimTime
AppSurface::blinkJitter()
{
    // The blink runnable is posted on the UI thread's handler; its
    // dispatch latency varies with what else the main looper is doing.
    return SimTime::fromMs(blinkRng_.uniformInt(0, 60));
}

void
AppSurface::restartBlink()
{
    // Android resets the cursor-blink timer on every text change: the
    // cursor shows solid while the user types and resumes blinking
    // only after an idle timeout.
    if (!focused_)
        return;
    cursorOn_ = true;
    if (blinkEvent_)
        eq_.cancel(blinkEvent_);
    blinkEvent_ = eq_.scheduleAfter(700_ms + blinkJitter(),
                                    [this] { onCursorBlink(); });
}

void
AppSurface::appendChar()
{
    ++textLen_;
    restartBlink();
    invalidate(fieldRect_.inset(-display_.dp(4)));
}

void
AppSurface::deleteChar()
{
    if (textLen_ == 0)
        return;
    --textLen_;
    restartBlink();
    invalidate(fieldRect_.inset(-display_.dp(4)));
}

void
AppSurface::clearText()
{
    textLen_ = 0;
    restartBlink();
    invalidate(fieldRect_.inset(-display_.dp(4)));
}

void
AppSurface::focusField()
{
    if (focused_)
        return;
    focused_ = true;
    cursorOn_ = true;
    invalidate(fieldRect_.inset(-display_.dp(4)));
    blinkEvent_ = eq_.scheduleAfter(500_ms + blinkJitter(),
                                    [this] { onCursorBlink(); });
}

void
AppSurface::unfocusField()
{
    if (!focused_)
        return;
    focused_ = false;
    cursorOn_ = false;
    if (blinkEvent_) {
        eq_.cancel(blinkEvent_);
        blinkEvent_ = 0;
    }
    invalidate(fieldRect_.inset(-display_.dp(4)));
}

void
AppSurface::onCursorBlink()
{
    cursorOn_ = !cursorOn_;
    // Android invalidates just the cursor drawable on blink — a tiny
    // redraw, far smaller than a text-echo redraw.
    invalidate(cursorRect());
    blinkEvent_ = eq_.scheduleAfter(500_ms + blinkJitter(),
                                    [this] { onCursorBlink(); });
}

void
AppSurface::startAnimation()
{
    if (!spec_.loginAnimation || animRunning_)
        return;
    animRunning_ = true;
    animEvent_ =
        eq_.scheduleAfter(spec_.animPeriod, [this] { onAnimTick(); });
}

void
AppSurface::stopAnimation()
{
    animRunning_ = false;
    if (animEvent_) {
        eq_.cancel(animEvent_);
        animEvent_ = 0;
    }
    invalidate(animRect());
}

void
AppSurface::onAnimTick()
{
    ++animPhase_;
    invalidate(animRect());
    animEvent_ =
        eq_.scheduleAfter(spec_.animPeriod, [this] { onAnimTick(); });
}

} // namespace gpusc::android
