/**
 * @file
 * On-screen keyboard geometry and rendering.
 *
 * A KeyboardSpec captures the UI parameters that differ between the
 * six keyboards evaluated in Fig. 20 (key/popup sizes, gaps, popup
 * shadow, animation richness). KeyboardLayout instantiates a spec on a
 * concrete display, producing per-key rectangles and the draw lists
 * for the keyboard base and the key-press popup. Because popups are
 * drawn *on top of* the keyboard, every popup occludes different keys
 * and carries a different glyph — the GPU-overdraw fingerprint the
 * whole attack rests on (paper Fig. 1).
 */

#ifndef GPUSC_ANDROID_KEYBOARD_H
#define GPUSC_ANDROID_KEYBOARD_H

#include <string>
#include <vector>

#include "android/display.h"
#include "gfx/scene.h"

namespace gpusc::android {

/** Keyboard page (Gboard-style three-page layout). */
enum class KbPage
{
    Lower = 0,
    Upper = 1,
    Symbols = 2,
};

/** What a key does when pressed. */
enum class KeyCode
{
    Char,      ///< commits its character
    Shift,     ///< toggles Lower/Upper
    Sym,       ///< switches to Symbols
    Abc,       ///< switches back to Lower
    Backspace, ///< deletes one character (no popup!)
    Space,     ///< commits ' ' (no popup)
    Enter,     ///< submit (no popup)
};

/** One key on one page. */
struct Key
{
    KeyCode code = KeyCode::Char;
    char ch = 0; ///< committed/displayed character (Char keys)
    KbPage page = KbPage::Lower;
    gfx::Rect rect;
};

/** Tunable UI parameters of a keyboard product (units: dp). */
struct KeyboardSpec
{
    std::string name;
    double heightDp = 220.0;
    double sideMarginDp = 2.0;
    double bottomMarginDp = 4.0;
    double keyGapDp = 3.0;
    double rowGapDp = 6.0;
    double capInsetDp = 2.0;  ///< keycap inset inside its cell
    double labelDp = 13.0;    ///< key label glyph box height
    double popupWDp = 38.0;
    double popupHDp = 44.0;
    double popupRaiseDp = 8.0; ///< popup bottom above key top
    double popupGlyphDp = 22.0;
    bool popupShadow = true;
    /**
     * Probability that the popup's rich animation re-renders an
     * identical frame — the *duplication* artefact (§5.1; Gboard is
     * the worst offender).
     */
    double duplicationProb = 0.05;
    /** Popup scale variants the animation can be captured at. The
     *  paper observes repeated presses yield identical counter
     *  changes, so production specs use a single scale; tests use
     *  multiple scales to stress multimodal classes. */
    std::vector<double> animScales = {1.0};
};

/** Look up one of the six evaluated keyboards by name. */
const KeyboardSpec &keyboardSpec(const std::string &name);
/** "swift", "gboard", "sogou", "pinyin", "go", "grammarly". */
const std::vector<std::string> &keyboardNames();

/** A spec instantiated on a display: concrete pixel geometry. */
class KeyboardLayout
{
  public:
    KeyboardLayout(KeyboardSpec spec, DisplayConfig display);

    const KeyboardSpec &spec() const { return spec_; }
    const DisplayConfig &display() const { return display_; }

    /** Keyboard area on screen (bottom of the display). */
    const gfx::Rect &bounds() const { return bounds_; }

    /**
     * The IME window's full extent: the keyboard area plus the strip
     * above it where key popups render (popups of top-row keys rise
     * above the keyboard itself).
     */
    gfx::Rect surfaceBounds() const;

    const std::vector<Key> &keys(KbPage page) const;

    /** @return the Char key for @p c on @p page, or nullptr. */
    const Key *findChar(KbPage page, char c) const;

    /** @return the first key with @p code on @p page, or nullptr. */
    const Key *findSpecial(KbPage page, KeyCode code) const;

    /** Page that carries character @p c ("," and "." live on all). */
    static KbPage pageForChar(char c);

    /** True if some page carries @p c. */
    static bool isTypable(char c);

    /**
     * Largest rect the popup (plus shadow) for @p key can cover —
     * the region invalidated when the popup is dismissed.
     */
    gfx::Rect popupMaxRect(const Key &key) const;

    /** Draw the keyboard base (background, keycaps, labels). */
    void buildBase(gfx::FrameScene &scene, KbPage page) const;

    /** Draw the popup for @p key at animation scale @p scale. */
    void buildPopup(gfx::FrameScene &scene, const Key &key,
                    double scale) const;

  private:
    gfx::Rect popupRect(const Key &key, double scale) const;
    void buildKeyIcon(gfx::FrameScene &scene, const Key &key) const;
    void layoutPages();

    KeyboardSpec spec_;
    DisplayConfig display_;
    gfx::Rect bounds_;
    std::vector<Key> pages_[3];
};

} // namespace gpusc::android

#endif // GPUSC_ANDROID_KEYBOARD_H
