#include "android/keyboard.h"

#include <cctype>
#include <map>

#include "gfx/font.h"
#include "util/logging.h"

namespace gpusc::android {

namespace {

KeyboardSpec
makeSpec(const std::string &name, double height, double keyGap,
         double popupW, double popupH, double popupGlyph, bool shadow,
         double dupProb, std::vector<double> animScales)
{
    KeyboardSpec s;
    s.name = name;
    s.heightDp = height;
    s.keyGapDp = keyGap;
    s.popupWDp = popupW;
    s.popupHDp = popupH;
    s.popupGlyphDp = popupGlyph;
    s.popupShadow = shadow;
    s.duplicationProb = dupProb;
    s.animScales = std::move(animScales);
    return s;
}

const std::map<std::string, KeyboardSpec> &
specTable()
{
    // The six keyboards of Fig. 20. Parameters are product-plausible;
    // what matters is that each renders popups with distinct geometry
    // (hence distinct per-config signature tables) while Gboard's rich
    // animation gives it the highest duplication rate.
    static const std::map<std::string, KeyboardSpec> table = {
        {"gboard",
         makeSpec("gboard", 224, 3, 40, 46, 24, true, 0.18, {1.0})},
        {"swift",
         makeSpec("swift", 216, 2, 36, 42, 21, true, 0.06, {1.0})},
        {"sogou",
         makeSpec("sogou", 230, 4, 42, 48, 23, false, 0.08, {1.0})},
        {"pinyin",
         makeSpec("pinyin", 222, 3, 38, 44, 22, true, 0.07, {1.0})},
        {"go", makeSpec("go", 210, 2, 34, 40, 20, false, 0.04, {1.0})},
        {"grammarly",
         makeSpec("grammarly", 218, 3, 37, 43, 21, true, 0.05, {1.0})},
    };
    return table;
}

} // namespace

const KeyboardSpec &
keyboardSpec(const std::string &name)
{
    const auto &table = specTable();
    auto it = table.find(name);
    if (it == table.end())
        fatal("keyboardSpec: unknown keyboard '%s'", name.c_str());
    return it->second;
}

const std::vector<std::string> &
keyboardNames()
{
    static const std::vector<std::string> names = {
        "swift", "gboard", "sogou", "pinyin", "go", "grammarly"};
    return names;
}

KeyboardLayout::KeyboardLayout(KeyboardSpec spec, DisplayConfig display)
    : spec_(std::move(spec)), display_(display)
{
    const int h = display_.dp(spec_.heightDp);
    bounds_ = gfx::Rect{0, display_.height - h, display_.width,
                        display_.height};
    layoutPages();
}

namespace {

/** Descriptor of one key cell used during row layout. */
struct Cell
{
    KeyCode code;
    char ch;
    double widthUnits;
};

std::vector<Cell>
charRow(const std::string &chars)
{
    std::vector<Cell> cells;
    for (char c : chars)
        cells.push_back({KeyCode::Char, c, 1.0});
    return cells;
}

} // namespace

void
KeyboardLayout::layoutPages()
{
    using Row = std::vector<Cell>;

    auto bottomRow = [](KeyCode pageKey) {
        return Row{{pageKey, 0, 1.5},
                   {KeyCode::Char, ',', 1.0},
                   {KeyCode::Space, ' ', 4.0},
                   {KeyCode::Char, '.', 1.0},
                   {KeyCode::Enter, '\n', 1.5}};
    };

    const std::vector<Row> lowerRows = {
        charRow("qwertyuiop"),
        charRow("asdfghjkl"),
        Row{{KeyCode::Shift, 0, 1.5},
            {KeyCode::Char, 'z', 1.0},
            {KeyCode::Char, 'x', 1.0},
            {KeyCode::Char, 'c', 1.0},
            {KeyCode::Char, 'v', 1.0},
            {KeyCode::Char, 'b', 1.0},
            {KeyCode::Char, 'n', 1.0},
            {KeyCode::Char, 'm', 1.0},
            {KeyCode::Backspace, 0, 1.5}},
        bottomRow(KeyCode::Sym),
    };

    auto upperRows = lowerRows;
    for (Row &row : upperRows)
        for (Cell &cell : row)
            if (cell.code == KeyCode::Char && std::islower(
                    static_cast<unsigned char>(cell.ch)))
                cell.ch = char(std::toupper(
                    static_cast<unsigned char>(cell.ch)));

    const std::vector<Row> symbolRows = {
        charRow("1234567890"),
        charRow("@#$&-+()/*"),
        Row{{KeyCode::Char, '"', 1.0},
            {KeyCode::Char, '\'', 1.0},
            {KeyCode::Char, ':', 1.0},
            {KeyCode::Char, ';', 1.0},
            {KeyCode::Char, '!', 1.0},
            {KeyCode::Char, '?', 1.0},
            {KeyCode::Backspace, 1, 1.5}},
        bottomRow(KeyCode::Abc),
    };

    auto layoutPage = [&](KbPage page, const std::vector<Row> &rows) {
        std::vector<Key> &keys = pages_[std::size_t(page)];
        keys.clear();
        const int side = display_.dp(spec_.sideMarginDp);
        const int bottom = display_.dp(spec_.bottomMarginDp);
        const int rowGap = display_.dp(spec_.rowGapDp);
        const int keyGap = display_.dp(spec_.keyGapDp);
        const gfx::Rect usable{bounds_.x0 + side, bounds_.y0 + rowGap,
                               bounds_.x1 - side, bounds_.y1 - bottom};
        const int nrows = int(rows.size());
        const int rowH =
            (usable.height() - (nrows - 1) * rowGap) / nrows;
        for (int r = 0; r < nrows; ++r) {
            const Row &row = rows[std::size_t(r)];
            double totalUnits = 0.0;
            for (const Cell &cell : row)
                totalUnits += cell.widthUnits;
            const int y0 = usable.y0 + r * (rowH + rowGap);
            const double unitW =
                (double(usable.width()) -
                 double(row.size() - 1) * keyGap) / totalUnits;
            double x = usable.x0;
            for (const Cell &cell : row) {
                const int x0 = int(x + 0.5);
                const int x1 = int(x + unitW * cell.widthUnits + 0.5);
                keys.push_back(Key{cell.code, cell.ch, page,
                                   gfx::Rect{x0, y0, x1, y0 + rowH}});
                x += unitW * cell.widthUnits + keyGap;
            }
        }
    };

    layoutPage(KbPage::Lower, lowerRows);
    layoutPage(KbPage::Upper, upperRows);
    layoutPage(KbPage::Symbols, symbolRows);
}

const std::vector<Key> &
KeyboardLayout::keys(KbPage page) const
{
    return pages_[std::size_t(page)];
}

const Key *
KeyboardLayout::findChar(KbPage page, char c) const
{
    for (const Key &k : keys(page))
        if (k.code == KeyCode::Char && k.ch == c)
            return &k;
    return nullptr;
}

const Key *
KeyboardLayout::findSpecial(KbPage page, KeyCode code) const
{
    for (const Key &k : keys(page))
        if (k.code == code)
            return &k;
    return nullptr;
}

KbPage
KeyboardLayout::pageForChar(char c)
{
    if (c == ',' || c == '.')
        return KbPage::Lower; // present on every page's bottom row
    if (std::islower(static_cast<unsigned char>(c)))
        return KbPage::Lower;
    if (std::isupper(static_cast<unsigned char>(c)))
        return KbPage::Upper;
    return KbPage::Symbols;
}

bool
KeyboardLayout::isTypable(char c)
{
    if (c == ' ')
        return true;
    if (std::islower(static_cast<unsigned char>(c)) ||
        std::isupper(static_cast<unsigned char>(c)) ||
        std::isdigit(static_cast<unsigned char>(c)))
        return true;
    const std::string symbols = ",.@#$&-+()/*\"':;!?";
    return symbols.find(c) != std::string::npos;
}

gfx::Rect
KeyboardLayout::surfaceBounds() const
{
    double maxScale = 1.0;
    for (double s : spec_.animScales)
        maxScale = std::max(maxScale, s);
    const int strip =
        int(display_.dp(spec_.popupHDp) * maxScale + 0.5) +
        display_.dp(spec_.popupRaiseDp) + display_.dp(4);
    gfx::Rect r = bounds_;
    r.y0 = std::max(0, r.y0 - strip);
    return r;
}

gfx::Rect
KeyboardLayout::popupRect(const Key &key, double scale) const
{
    const int w = int(display_.dp(spec_.popupWDp) * scale + 0.5);
    const int h = int(display_.dp(spec_.popupHDp) * scale + 0.5);
    const int raise = display_.dp(spec_.popupRaiseDp);
    const int cx = key.rect.center().x;
    int x0 = cx - w / 2;
    // Clamp horizontally into the keyboard area (edge keys' popups
    // shift inward, another source of per-key uniqueness).
    x0 = std::max(bounds_.x0 + 2, std::min(x0, bounds_.x1 - 2 - w));
    const int y1 = key.rect.y0 - raise;
    return gfx::Rect{x0, y1 - h, x0 + w, y1};
}

gfx::Rect
KeyboardLayout::popupMaxRect(const Key &key) const
{
    double maxScale = 1.0;
    for (double s : spec_.animScales)
        maxScale = std::max(maxScale, s);
    gfx::Rect r = popupRect(key, maxScale);
    if (spec_.popupShadow)
        r = r.unite(r.translated(display_.dp(2), display_.dp(2)));
    // The IME window clips its own drawing: anything outside the
    // surface is never rendered, so it is not part of the exposed
    // region either.
    return r.intersect(surfaceBounds());
}

void
KeyboardLayout::buildKeyIcon(gfx::FrameScene &scene, const Key &key) const
{
    // Special keys carry simple geometric icons instead of font glyphs;
    // each is a distinct prim pattern so page-switch redraws stay
    // distinguishable in counter space.
    const gfx::Rect box = key.rect.inset(key.rect.height() / 3);
    const int cx = box.center().x;
    const int cy = box.center().y;
    const int u = std::max(2, box.height() / 5);
    auto add = [&](const gfx::Rect &r) {
        scene.add(r, true, gfx::PrimTag::KeyLabel);
    };
    switch (key.code) {
      case KeyCode::Shift:
        add(gfx::Rect::ofSize(cx - u / 2, box.y0, u, 2 * u));
        add(gfx::Rect::ofSize(cx - u, box.y0 + u, 2 * u, u));
        add(gfx::Rect::ofSize(cx - u / 2, box.y0 + 2 * u, u, 2 * u));
        break;
      case KeyCode::Backspace:
        add(gfx::Rect::ofSize(box.x0, cy - u / 2, box.width(), u));
        add(gfx::Rect::ofSize(box.x0, cy - u, u, 2 * u));
        break;
      case KeyCode::Sym:
      case KeyCode::Abc:
        add(gfx::Rect::ofSize(box.x0, cy - u / 2, box.width(), u));
        add(gfx::Rect::ofSize(cx - u / 2, box.y0, u, box.height()));
        break;
      case KeyCode::Space:
        add(gfx::Rect::ofSize(box.x0, box.y1 - u, box.width(), u));
        break;
      case KeyCode::Enter:
        add(gfx::Rect::ofSize(box.x0, cy - u / 2, box.width() - u, u));
        add(gfx::Rect::ofSize(box.x1 - u, cy - 2 * u, u, 2 * u));
        break;
      case KeyCode::Char:
        break;
    }
}

void
KeyboardLayout::buildBase(gfx::FrameScene &scene, KbPage page) const
{
    // Suggestion strip above the key rows (part of the IME window).
    // Top-row popups overlap and occlude its content, which is what
    // differentiates their overdraw signatures.
    const gfx::Rect surface = surfaceBounds();
    if (surface.y0 < bounds_.y0) {
        const gfx::Rect strip{surface.x0, surface.y0, surface.x1,
                              bounds_.y0};
        scene.add(strip, true, gfx::PrimTag::Background);
        const int sh = strip.height();
        const int glyphH = std::max(6, sh / 3);
        const int glyphW = glyphH * gfx::kGlyphCols / gfx::kGlyphRows;
        const int y = strip.y0 + (sh - glyphH) / 2;
        // Suggestion text spans the whole strip, so a popup at any
        // horizontal position occludes a distinct slice of glyphs —
        // that occlusion difference is a large part of what separates
        // same-glyph-count keys (e.g. '6' vs '9') in counter space.
        const std::string phrase =
            "the quick brown fox jumps over a lazy dog and you can "
            "type some more words here right now because these are "
            "only suggestions";
        int x = strip.x0 + display_.dp(4);
        const int pitch = glyphW + display_.dp(1);
        for (char pc : phrase) {
            if (x + glyphW > strip.x1 - display_.dp(4))
                break;
            if (pc != ' ') {
                for (const gfx::Rect &run : gfx::glyphRunRects(
                         pc, gfx::Rect::ofSize(x, y, glyphW, glyphH)))
                    scene.add(run, true, gfx::PrimTag::KeyLabel);
            }
            x += pitch;
        }
        // Divider bars at thirds (Gboard-style).
        for (int div = 1; div <= 2; ++div) {
            scene.add(gfx::Rect::ofSize(
                          strip.x0 + div * strip.width() / 3,
                          strip.y0 + sh / 4, display_.dp(1), sh / 2),
                      true, gfx::PrimTag::KeyLabel);
        }
    }

    scene.add(bounds_, true, gfx::PrimTag::Background);
    const int capInset = display_.dp(spec_.capInsetDp);
    const int labelH = display_.dp(spec_.labelDp);
    const int labelW = labelH * gfx::kGlyphCols / gfx::kGlyphRows;
    for (const Key &key : keys(page)) {
        scene.add(key.rect.inset(capInset), true, gfx::PrimTag::KeyCap);
        if (key.code == KeyCode::Char && key.ch != ' ') {
            const gfx::Point c = key.rect.center();
            const gfx::Rect labelBox =
                gfx::Rect::ofSize(c.x - labelW / 2, c.y - labelH / 2,
                                  labelW, labelH);
            for (const gfx::Rect &run :
                 gfx::glyphRunRects(key.ch, labelBox))
                scene.add(run, true, gfx::PrimTag::KeyLabel);
        } else {
            buildKeyIcon(scene, key);
        }
    }
}

void
KeyboardLayout::buildPopup(gfx::FrameScene &scene, const Key &key,
                           double scale) const
{
    const gfx::Rect popup = popupRect(key, scale);
    if (spec_.popupShadow) {
        const int off = display_.dp(2);
        scene.add(popup.translated(off, off), false,
                  gfx::PrimTag::Popup);
    }
    scene.add(popup, true, gfx::PrimTag::Popup);
    const int glyphH = int(display_.dp(spec_.popupGlyphDp) * scale + 0.5);
    const int glyphW = glyphH * gfx::kGlyphCols / gfx::kGlyphRows;
    const gfx::Point c = popup.center();
    const gfx::Rect glyphBox = gfx::Rect::ofSize(
        c.x - glyphW / 2, c.y - glyphH / 2, glyphW, glyphH);
    for (const gfx::Rect &run : gfx::glyphRunRects(key.ch, glyphBox))
        scene.add(run, true, gfx::PrimTag::PopupGlyph);
}

} // namespace gpusc::android
