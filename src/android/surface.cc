#include "android/surface.h"

namespace gpusc::android {

Surface::Surface(std::string name, gfx::Rect bounds, int ownerPid)
    : name_(std::move(name)), bounds_(bounds), ownerPid_(ownerPid)
{
}

void
Surface::invalidate(const gfx::Rect &r)
{
    if (!visible_)
        return;
    damage_ = damage_.unite(r.intersect(bounds_));
}

gfx::Rect
Surface::takeDamage()
{
    gfx::Rect d = damage_;
    damage_ = gfx::Rect{};
    return d;
}

void
Surface::setVisible(bool v)
{
    if (visible_ == v)
        return;
    visible_ = v;
    damage_ = gfx::Rect{};
    if (v)
        invalidate();
}

} // namespace gpusc::android
