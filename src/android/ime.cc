#include "android/ime.h"

#include <algorithm>

#include "util/logging.h"

namespace gpusc::android {

using namespace gpusc::sim_literals;

namespace {

/** Delay between key release and the popup window being torn down. */
constexpr SimTime kPopupDismissDelay = 40_ms;

} // namespace

Ime::Ime(EventQueue &eq, KeyboardLayout layout, Rng rng, int pid)
    : Surface("ime:" + layout.spec().name, layout.surfaceBounds(), pid),
      eq_(eq), layout_(std::move(layout)), rng_(rng),
      aliveToken_(std::make_shared<int>(0))
{
}

Ime::~Ime() = default;

void
Ime::buildScene(gfx::FrameScene &scene) const
{
    layout_.buildBase(scene, page_);
    if (popup_)
        layout_.buildPopup(scene, popup_->key, popup_->scale);
}

std::vector<const Key *>
Ime::keysFor(char c) const
{
    std::vector<const Key *> seq;
    if (c == ' ') {
        if (const Key *k = layout_.findSpecial(page_, KeyCode::Space))
            seq.push_back(k);
        return seq;
    }

    // Already reachable on the current page?
    if (const Key *k = layout_.findChar(page_, c)) {
        seq.push_back(k);
        return seq;
    }

    const KbPage target = KeyboardLayout::pageForChar(c);
    KbPage cur = page_;
    // At most two page switches are ever needed (Symbols -> Upper).
    for (int hops = 0; hops < 2 && cur != target; ++hops) {
        const Key *switchKey = nullptr;
        if (cur == KbPage::Symbols) {
            switchKey = layout_.findSpecial(cur, KeyCode::Abc);
            cur = KbPage::Lower;
        } else if (target == KbPage::Symbols) {
            switchKey = layout_.findSpecial(cur, KeyCode::Sym);
            cur = KbPage::Symbols;
        } else {
            switchKey = layout_.findSpecial(cur, KeyCode::Shift);
            cur = cur == KbPage::Lower ? KbPage::Upper : KbPage::Lower;
        }
        if (!switchKey)
            return {};
        seq.push_back(switchKey);
    }
    const Key *k = layout_.findChar(cur, c);
    if (!k)
        return {};
    seq.push_back(k);
    return seq;
}

const Key *
Ime::backspaceKey() const
{
    return layout_.findSpecial(
        page_ == KbPage::Symbols ? KbPage::Symbols : page_,
        KeyCode::Backspace);
}

void
Ime::switchPage(KbPage page, bool oneShotShift)
{
    page_ = page;
    oneShotShift_ = oneShotShift;
    popup_.reset();
    invalidate(); // full keyboard redraw with the new labels
}

void
Ime::pressKey(const Key &key, SimTime pressDuration)
{
    switch (key.code) {
      case KeyCode::Shift:
        switchPage(page_ == KbPage::Lower ? KbPage::Upper
                                          : KbPage::Lower,
                   page_ == KbPage::Lower);
        return;
      case KeyCode::Sym:
        switchPage(KbPage::Symbols, false);
        return;
      case KeyCode::Abc:
        switchPage(KbPage::Lower, false);
        return;
      case KeyCode::Backspace:
        // No popup on backspace (paper §5.3); the only GPU evidence is
        // the credential field shrinking by one dot.
        if (field_)
            field_->deleteChar();
        return;
      case KeyCode::Space:
        if (field_)
            field_->appendChar();
        return;
      case KeyCode::Enter:
        return;
      case KeyCode::Char:
        break;
    }

    ++keyPresses_;
    std::weak_ptr<int> alive = aliveToken_;
    if (!popupsEnabled_) {
        // Popups disabled (mitigation §9.1): the press leaves no
        // keyboard redraw; only the text echo remains.
        Key pressedQuiet = key;
        eq_.scheduleAfter(pressDuration, [this, alive, pressedQuiet] {
            if (!alive.expired())
                onRelease(pressedQuiet);
        });
        return;
    }

    // 1. Popup window opens: full IME re-render with the popup on top.
    popup_ = ActivePopup{key, rng_.pick(layout_.spec().animScales)};
    if (popupListener_)
        popupListener_(key.ch, eq_.now());
    invalidate();

    // Rich popup animation may re-issue an identical frame next vsync.
    if (rng_.bernoulli(layout_.spec().duplicationProb)) {
        eq_.scheduleAfter(layout_.display().vsyncPeriod(),
                          [this, alive] {
                              if (!alive.expired() && popup_)
                                  invalidate();
                          });
    }

    // While the key stays held, the popup's animation can re-render
    // once more much later. Long presses (slow typists) are the ones
    // that keep the popup up past this point — these late duplicates
    // fall outside the T_min window and are the paper's residual
    // duplication errors (§5.1, §7.2).
    if (rng_.bernoulli(
            std::min(1.0, layout_.spec().duplicationProb * 2.6))) {
        const SimTime holdRender =
            SimTime::fromMs(rng_.uniformInt(120, 360));
        if (holdRender < pressDuration) {
            eq_.scheduleAfter(holdRender, [this, alive] {
                if (!alive.expired() && popup_)
                    invalidate();
            });
        }
    }

    // 2-3. Commit on release; popup teardown shortly after.
    Key pressed = key;
    eq_.scheduleAfter(pressDuration, [this, alive, pressed] {
        if (!alive.expired())
            onRelease(pressed);
    });
}

void
Ime::onRelease(Key key)
{
    if (field_ && key.code == KeyCode::Char)
        field_->appendChar();
    std::weak_ptr<int> alive = aliveToken_;
    eq_.scheduleAfter(kPopupDismissDelay, [this, alive] {
        if (!alive.expired())
            dismissPopup();
    });
    if (oneShotShift_ && page_ == KbPage::Upper) {
        // Auto-unshift after the shifted character: the keyboard
        // swaps back to lowercase labels (full redraw).
        eq_.scheduleAfter(kPopupDismissDelay + 1_ms, [this, alive] {
            if (!alive.expired())
                switchPage(KbPage::Lower, false);
        });
    }
}

void
Ime::dismissPopup()
{
    if (!popup_)
        return;
    const gfx::Rect exposed = layout_.popupMaxRect(popup_->key);
    popup_.reset();
    // Only the region the popup covered is re-rendered.
    invalidate(exposed);
}

} // namespace gpusc::android
