/**
 * @file
 * GL_AMD_performance_monitor-style shim (paper §3.3).
 *
 * The attack's setup phase uses this extension to *discover* the
 * counter groups and countable string identifiers (that is all the
 * extension is good for here: per the extension's semantics on
 * Android, counter *values* read through it are local to the calling
 * application, which is why the attack bypasses it with direct device-
 * file ioctls for the actual sampling).
 */

#ifndef GPUSC_ANDROID_GLES_H
#define GPUSC_ANDROID_GLES_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gpu/counters.h"
#include "gpu/render_engine.h"

namespace gpusc::android::gles {

/** One enumerable perf-monitor group. */
struct PerfMonitorGroup
{
    std::uint32_t id = 0;
    std::string name;
    std::vector<std::uint32_t> counters;
};

/** glGetPerfMonitorGroupsAMD analogue. */
std::vector<PerfMonitorGroup> getPerfMonitorGroupsAMD();

/** glGetPerfMonitorCountersAMD analogue. */
std::vector<std::uint32_t> getPerfMonitorCountersAMD(std::uint32_t group);

/**
 * glGetPerfMonitorCounterStringAMD analogue: the vendor's string
 * identifier for (group, counter). Unknown counters get a synthetic
 * name so iteration never fails.
 */
std::string getPerfMonitorCounterStringAMD(std::uint32_t group,
                                           std::uint32_t counter);

/**
 * A GL_AMD_performance_monitor *monitor object* as an application sees
 * it: counter values cover only work submitted by the calling
 * process's own GL context (paper §3.3 — "can only be used ... to read
 * the local PC value changes caused by this application itself"). An
 * eavesdropper that renders nothing therefore learns nothing through
 * this API, which is why the attack reads the device file instead.
 */
class PerfMonitorAMD
{
  public:
    /** @param pid the calling application (its GL context). */
    PerfMonitorAMD(gpu::RenderEngine &engine, int pid);

    /** glBeginPerfMonitorAMD: snapshot the local baseline. */
    void begin();

    /** glEndPerfMonitorAMD: close the measurement interval. */
    void end();

    /**
     * glGetPerfMonitorCounterDataAMD: the *local* delta of one
     * selected counter over the last begin/end interval.
     */
    std::uint64_t counterData(gpu::SelectedCounter counter) const;

    bool active() const { return active_; }

  private:
    gpu::RenderEngine &engine_;
    int pid_;
    bool active_ = false;
    gpu::CounterTotals baseline_{};
    gpu::CounterTotals result_{};
};

} // namespace gpusc::android::gles

#endif // GPUSC_ANDROID_GLES_H
