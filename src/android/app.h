/**
 * @file
 * Target applications and their login screens.
 *
 * Each AppSpec describes one of the paper's target apps (Chase, Amex,
 * Fidelity, Charles Schwab, myFICO, Experian, their Chrome web
 * variants, and PNC with its animated login used in §9.3). AppSurface
 * renders the login UI and owns the focused credential field: committed
 * characters echo as password dots (2 GPU primitives each — the exact
 * length side channel of §5.3) and the cursor blinks every 0.5 s.
 */

#ifndef GPUSC_ANDROID_APP_H
#define GPUSC_ANDROID_APP_H

#include <string>
#include <vector>

#include "android/display.h"
#include "android/surface.h"
#include "util/event_queue.h"
#include "util/rng.h"

namespace gpusc::android {

/** Static description of a target application's login screen. */
struct AppSpec
{
    std::string name;
    /** Number of decorative rectangles on the login screen. */
    int decorRects = 6;
    /** Brand text rendered as glyphs (part of the static scene). */
    std::string logoText;
    /** Vertical position of the credential field (fraction of H). */
    double fieldYFrac = 0.42;
    double fieldWidthDp = 300.0;
    double fieldHeightDp = 28.0;
    double dotDp = 9.0; ///< password dot size
    /** Rendered inside Chrome (adds browser chrome to the scene). */
    bool web = false;
    /**
     * Continuous login-screen animation (PNC): periodically redraws a
     * decorative region, obfuscating the counters (§9.3).
     */
    bool loginAnimation = false;
    SimTime animPeriod = SimTime::fromMs(160);
    double animAreaFrac = 0.12; ///< animated fraction of screen height
};

/** Look up a target app by name (fatal on unknown). */
const AppSpec &appSpec(const std::string &name);
/** Native target apps of Fig. 19. */
const std::vector<std::string> &nativeAppNames();
/** Web targets of Fig. 19 ("chase.com", "schwab.com",
 *  "experian.com"). */
const std::vector<std::string> &webAppNames();

/** The login screen of one app, as a composited surface. */
class AppSurface : public Surface
{
  public:
    AppSurface(EventQueue &eq, const AppSpec &spec,
               const DisplayConfig &display, int pid,
               int osVersionTweak = 0, std::uint64_t blinkSeed = 99);
    ~AppSurface() override;

    void buildScene(gfx::FrameScene &scene) const override;

    const AppSpec &spec() const { return spec_; }

    /** Credential-field rect in screen coordinates. */
    const gfx::Rect &fieldRect() const { return fieldRect_; }

    // --- Credential field operations (invalidate the field only). ---
    void appendChar();
    void deleteChar();
    void clearText();
    std::size_t textLength() const { return textLen_; }

    /** Focus starts the 0.5 s cursor blink; unfocus stops it. */
    void focusField();
    void unfocusField();
    bool focused() const { return focused_; }

    /** Begin the PNC-style decor animation (if the spec has one). */
    void startAnimation();
    void stopAnimation();

    /** Current cursor rectangle (after the last dot). */
    gfx::Rect cursorRect() const;

  private:
    SimTime blinkJitter();
    void restartBlink();
    void onCursorBlink();
    void onAnimTick();
    gfx::Rect animRect() const;

    EventQueue &eq_;
    AppSpec spec_;
    DisplayConfig display_;
    int osVersionTweak_;
    gfx::Rect fieldRect_;
    std::size_t textLen_ = 0;
    bool focused_ = false;
    bool cursorOn_ = false;
    EventId blinkEvent_ = 0;
    bool animRunning_ = false;
    EventId animEvent_ = 0;
    int animPhase_ = 0;
    Rng blinkRng_;
};

} // namespace gpusc::android

#endif // GPUSC_ANDROID_APP_H
