#include "android/input.h"

namespace gpusc::android {

InputInjector::InputInjector(Device &device) : device_(device) {}

bool
InputInjector::tap(gfx::Point where, SimTime holdFor)
{
    ++touches_;
    if (!device_.ime().visible())
        return false;
    const KeyboardLayout &layout = device_.ime().layout();
    for (const Key &key : layout.keys(device_.ime().page())) {
        if (key.rect.contains(where)) {
            device_.ime().pressKey(key, holdFor);
            return true;
        }
    }
    return false;
}

bool
InputInjector::tapKey(const Key &key, SimTime holdFor)
{
    return tap(key.rect.center(), holdFor);
}

bool
InputInjector::tapChar(char c, SimTime holdFor)
{
    const Key *key =
        device_.ime().layout().findChar(device_.ime().page(), c);
    if (!key)
        return false;
    return tapKey(*key, holdFor);
}

} // namespace gpusc::android
