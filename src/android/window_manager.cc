#include "android/window_manager.h"

#include <algorithm>

namespace gpusc::android {

WindowManager::WindowManager(EventQueue &eq, gpu::RenderEngine &engine,
                             const DisplayConfig &display)
    : eq_(eq), engine_(engine), display_(display)
{
}

void
WindowManager::addSurface(Surface *s)
{
    surfaces_.push_back(s);
}

void
WindowManager::removeSurface(Surface *s)
{
    surfaces_.erase(std::remove(surfaces_.begin(), surfaces_.end(), s),
                    surfaces_.end());
}

void
WindowManager::start()
{
    if (started_)
        return;
    started_ = true;
    eq_.scheduleAfter(vsyncPeriod(), [this] { onVsync(); });
}

void
WindowManager::renderTransitionFrame()
{
    // The app-overview animation redraws (almost) the whole screen
    // with scaling window thumbnails; content varies per phase so the
    // counter deltas of consecutive frames differ, as in Fig. 13.
    gfx::FrameScene scene;
    scene.damage = gfx::Rect{0, 0, display_.width, display_.height};
    scene.add(scene.damage, true, gfx::PrimTag::Animation);
    const int inset = 40 + 12 * (transitionPhase_ % 8);
    const gfx::Rect card = scene.damage.inset(inset);
    scene.add(card, true, gfx::PrimTag::Animation);
    scene.add(card.inset(display_.dp(8)), false, gfx::PrimTag::Animation);
    // A strip of app thumbnails sliding across.
    const int thumbW = display_.width / 4;
    for (int i = 0; i < 3; ++i) {
        const int x = (transitionPhase_ * 37 + i * (thumbW + 20)) %
                      (display_.width + thumbW) - thumbW / 2;
        scene.add(gfx::Rect::ofSize(x, display_.height / 3, thumbW,
                                    display_.height / 3),
                  true, gfx::PrimTag::Animation);
    }
    engine_.submit(scene);
    ++transitionPhase_;
    --transitionFramesLeft_;
}

void
WindowManager::onVsync()
{
    if (transitionFramesLeft_ > 0) {
        renderTransitionFrame();
    } else {
        for (Surface *s : surfaces_) {
            if (!s->visible() || !s->hasDamage())
                continue;
            gfx::FrameScene scene;
            scene.damage = s->takeDamage();
            s->buildScene(scene);
            engine_.submit(scene, s->ownerPid());
            ++framesComposited_;
        }
    }
    eq_.scheduleAfter(vsyncPeriod(), [this] { onVsync(); });
}

void
WindowManager::playTransition(int frames)
{
    transitionFramesLeft_ = std::max(transitionFramesLeft_, frames);
}

} // namespace gpusc::android
