/**
 * @file
 * Touch-event injection (the paper's offline bot path, §6/Fig. 15).
 *
 * The bot program runs on a rooted attacker device and injects screen
 * touches through /dev/input/eventX. This module models that path:
 * synthetic down/up events at screen coordinates are hit-tested
 * against the current keyboard page and delivered as key presses —
 * the same route a human finger takes, so the bot exercises exactly
 * the rendering the attack later observes.
 */

#ifndef GPUSC_ANDROID_INPUT_H
#define GPUSC_ANDROID_INPUT_H

#include "android/device.h"

namespace gpusc::android {

/** /dev/input-style touch injector bound to a device. */
class InputInjector
{
  public:
    explicit InputInjector(Device &device);

    /**
     * Inject a touch at screen coordinates (down now, up after
     * @p holdFor). Touches on the keyboard resolve to key presses;
     * anywhere else is ignored (no other touchable UI is modelled).
     * @return true if a key was hit.
     */
    bool tap(gfx::Point where, SimTime holdFor);

    /** Convenience: tap the centre of @p key. */
    bool tapKey(const Key &key, SimTime holdFor);

    /**
     * Tap the key carrying character @p c on the *current* page; the
     * caller is responsible for page navigation (as the real bot is).
     * @return true if the character is on the current page.
     */
    bool tapChar(char c, SimTime holdFor);

    /** Number of injected events (down+up pairs count once). */
    std::uint64_t injectedTouches() const { return touches_; }

  private:
    Device &device_;
    std::uint64_t touches_ = 0;
};

} // namespace gpusc::android

#endif // GPUSC_ANDROID_INPUT_H
