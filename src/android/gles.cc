#include "android/gles.h"

#include "gpu/counters.h"
#include "kgsl/device.h"
#include "kgsl/msm_kgsl.h"

namespace gpusc::android::gles {

namespace {

std::string
groupName(std::uint32_t group)
{
    switch (group) {
      case kgsl::KGSL_PERFCOUNTER_GROUP_CP:
        return "CP";
      case kgsl::KGSL_PERFCOUNTER_GROUP_VPC:
        return "VPC";
      case kgsl::KGSL_PERFCOUNTER_GROUP_RAS:
        return "RAS";
      case kgsl::KGSL_PERFCOUNTER_GROUP_SP:
        return "SP";
      case kgsl::KGSL_PERFCOUNTER_GROUP_LRZ:
        return "LRZ";
      default:
        return "GROUP" + std::to_string(group);
    }
}

} // namespace

std::vector<std::uint32_t>
getPerfMonitorCountersAMD(std::uint32_t group)
{
    std::vector<std::uint32_t> out;
    for (std::uint32_t c = 0; c < 64; ++c)
        if (kgsl::hardwareImplementsCounter(group, c))
            out.push_back(c);
    return out;
}

std::vector<PerfMonitorGroup>
getPerfMonitorGroupsAMD()
{
    std::vector<PerfMonitorGroup> groups;
    for (std::uint32_t id : {kgsl::KGSL_PERFCOUNTER_GROUP_CP,
                             kgsl::KGSL_PERFCOUNTER_GROUP_VPC,
                             kgsl::KGSL_PERFCOUNTER_GROUP_RAS,
                             kgsl::KGSL_PERFCOUNTER_GROUP_SP,
                             kgsl::KGSL_PERFCOUNTER_GROUP_LRZ}) {
        PerfMonitorGroup g;
        g.id = id;
        g.name = groupName(id);
        g.counters = getPerfMonitorCountersAMD(id);
        groups.push_back(std::move(g));
    }
    return groups;
}

std::string
getPerfMonitorCounterStringAMD(std::uint32_t group, std::uint32_t counter)
{
    if (auto sel = gpu::selectedFromId({group, counter}))
        return gpu::counterName(*sel);
    return "PERF_" + groupName(group) + "_COUNTABLE_" +
           std::to_string(counter);
}

PerfMonitorAMD::PerfMonitorAMD(gpu::RenderEngine &engine, int pid)
    : engine_(engine), pid_(pid)
{
}

void
PerfMonitorAMD::begin()
{
    baseline_ = engine_.readLocal(pid_);
    active_ = true;
}

void
PerfMonitorAMD::end()
{
    if (!active_)
        return;
    const gpu::CounterTotals now = engine_.readLocal(pid_);
    for (std::size_t i = 0; i < now.size(); ++i)
        result_[i] = now[i] - baseline_[i];
    active_ = false;
}

std::uint64_t
PerfMonitorAMD::counterData(gpu::SelectedCounter counter) const
{
    return result_[counter];
}

} // namespace gpusc::android::gles
