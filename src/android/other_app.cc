#include "android/other_app.h"

namespace gpusc::android {

OtherAppSurface::OtherAppSurface(EventQueue &eq,
                                 const DisplayConfig &display, Rng rng,
                                 int pid)
    : Surface("otherapp",
              gfx::Rect{0, display.statusBarHeightPx(), display.width,
                        display.height},
              pid),
      eq_(eq), display_(display), rng_(rng),
      aliveToken_(std::make_shared<int>(0))
{
}

OtherAppSurface::~OtherAppSurface() = default;

void
OtherAppSurface::buildScene(gfx::FrameScene &scene) const
{
    scene.add(bounds(), true, gfx::PrimTag::AppContent);
    // A feed of cards whose vertical offset scrolls with the phase.
    const int cardH = display_.dp(72);
    const int gap = display_.dp(10);
    const int offset = (contentPhase_ * display_.dp(24)) %
                       (cardH + gap);
    for (int y = bounds().y0 - offset; y < bounds().y1;
         y += cardH + gap) {
        const gfx::Rect card{bounds().x0 + display_.dp(12), y,
                             bounds().x1 - display_.dp(12), y + cardH};
        scene.add(card, true, gfx::PrimTag::AppContent);
        scene.add(card.inset(display_.dp(8)), true,
                  gfx::PrimTag::AppContent);
    }
}

void
OtherAppSurface::burstFrame(int remaining)
{
    ++contentPhase_;
    invalidate();
    if (remaining > 1) {
        std::weak_ptr<int> alive = aliveToken_;
        eq_.scheduleAfter(display_.vsyncPeriod(),
                          [this, alive, remaining] {
                              if (!alive.expired())
                                  burstFrame(remaining - 1);
                          });
    }
}

void
OtherAppSurface::interact()
{
    if (!visible())
        return;
    burstFrame(int(rng_.uniformInt(2, 8)));
}

} // namespace gpusc::android
