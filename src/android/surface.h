/**
 * @file
 * A window-system surface with damage tracking.
 *
 * Each surface owns its pixel content and re-renders only invalidated
 * regions — Android's partial-invalidation model. That damage-driven
 * re-rendering is the root of the side channel: the GPU does work (and
 * bumps counters) exactly when, and in proportion to how, the screen
 * content changes.
 */

#ifndef GPUSC_ANDROID_SURFACE_H
#define GPUSC_ANDROID_SURFACE_H

#include <string>

#include "gfx/scene.h"

namespace gpusc::android {

/** Base class for everything that renders (apps, IME, status bar). */
class Surface
{
  public:
    Surface(std::string name, gfx::Rect bounds, int ownerPid);
    virtual ~Surface() = default;

    Surface(const Surface &) = delete;
    Surface &operator=(const Surface &) = delete;

    /**
     * Push this surface's *entire* content into @p scene back-to-front;
     * FrameScene::add clips against the damage rect, so implementations
     * need no clipping logic of their own.
     */
    virtual void buildScene(gfx::FrameScene &scene) const = 0;

    /** Invalidate the whole surface. */
    void invalidate() { invalidate(bounds_); }

    /** Invalidate a region (clipped to the surface bounds). */
    void invalidate(const gfx::Rect &r);

    /** @return accumulated damage and reset it to empty. */
    gfx::Rect takeDamage();

    bool hasDamage() const { return !damage_.empty(); }

    const gfx::Rect &bounds() const { return bounds_; }
    const std::string &name() const { return name_; }
    int ownerPid() const { return ownerPid_; }

    bool visible() const { return visible_; }
    /** Showing a surface invalidates it fully; hiding drops damage. */
    void setVisible(bool v);

  private:
    std::string name_;
    gfx::Rect bounds_;
    int ownerPid_;
    gfx::Rect damage_;
    bool visible_ = true;
};

} // namespace gpusc::android

#endif // GPUSC_ANDROID_SURFACE_H
