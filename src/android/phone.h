/**
 * @file
 * Smartphone model registry — the devices evaluated in §7.5 plus the
 * artifact's Pixel 5.
 */

#ifndef GPUSC_ANDROID_PHONE_H
#define GPUSC_ANDROID_PHONE_H

#include <string>
#include <vector>

#include "android/display.h"

namespace gpusc::android {

/** Static description of one phone model. */
struct PhoneSpec
{
    std::string id;        ///< registry key, e.g. "oneplus8pro"
    std::string marketing; ///< e.g. "OnePlus 8 Pro"
    int adrenoGen = 650;
    int osVersion = 11; ///< Android major version
    DisplayConfig display;
    double batteryMah = 4000.0;
    /** Relative CPU energy cost of the sampling loop (vendor silicon
     *  and kernel differences; scales Fig. 26). */
    double samplerEnergyScale = 1.0;
};

/** Look up a phone by registry id (fatal on unknown). */
const PhoneSpec &phoneSpec(const std::string &id);

/** All registered phone ids. */
const std::vector<std::string> &phoneIds();

} // namespace gpusc::android

#endif // GPUSC_ANDROID_PHONE_H
