/**
 * @file
 * The victim smartphone: one object wiring GPU, KGSL driver, window
 * manager, status bar, IME and the foreground application together on
 * a shared event queue. Experiments construct a Device from a
 * DeviceConfig, drive input on it, and attach the attack through the
 * KGSL device file — exactly the topology of paper Fig. 7.
 */

#ifndef GPUSC_ANDROID_DEVICE_H
#define GPUSC_ANDROID_DEVICE_H

#include <functional>
#include <memory>
#include <string>

#include "android/app.h"
#include "android/display.h"
#include "android/ime.h"
#include "android/other_app.h"
#include "android/phone.h"
#include "android/power.h"
#include "android/status_bar.h"
#include "android/window_manager.h"
#include "gpu/render_engine.h"
#include "kgsl/device.h"
#include "util/event_queue.h"

namespace gpusc::android {

/** Everything configurable about a victim device + session. */
struct DeviceConfig
{
    std::string phone = "oneplus8pro";
    std::string keyboard = "gboard";
    std::string app = "chase";
    /** 0 = phone default; else 60 or 120. */
    int refreshHz = 0;
    /** Empty = phone default; else "FHD+" or "QHD+". */
    std::string resolution;
    /** 0 = phone default; else Android major version (8..12). */
    int osVersion = 0;
    /** Measurement perturbation sigma (counter counts). */
    double noiseSigma = 0.25;
    /** Mitigation §9.1: user disabled key-press popups. */
    bool popupsDisabled = false;
    /** Mean notification inter-arrival; <=0 disables. */
    SimTime notificationMeanInterval = SimTime::fromSeconds(50);
    std::uint64_t seed = 42;
};

/** A fully assembled victim smartphone. */
class Device
{
  public:
    explicit Device(DeviceConfig cfg);
    ~Device();

    // Non-movable: surfaces hold references into the device.
    Device(const Device &) = delete;
    Device &operator=(const Device &) = delete;

    EventQueue &eq() { return eq_; }
    gpu::RenderEngine &engine() { return *engine_; }
    kgsl::KgslDevice &kgsl() { return *kgsl_; }
    WindowManager &wm() { return *wm_; }
    StatusBar &statusBar() { return *statusBar_; }
    Ime &ime() { return *ime_; }
    AppSurface &app() { return *app_; }
    OtherAppSurface &otherApp() { return *otherApp_; }
    PowerModel &power() { return *power_; }

    const DeviceConfig &config() const { return cfg_; }
    const PhoneSpec &phone() const { return phone_; }
    const DisplayConfig &display() const { return display_; }
    int osVersion() const { return osVersion_; }

    /**
     * Identifies the (phone, GPU, display, keyboard, OS) combination a
     * signature model is trained for — the classification-model key of
     * paper §3.2.
     */
    std::string modelKey() const;

    /** SELinux context of the attacking application. */
    kgsl::ProcessContext attackerContext() const;

    /** Replace the KGSL security policy (mitigation experiments). */
    void setSecurityPolicy(const kgsl::SecurityPolicy &policy);

    // --- Session control -------------------------------------------
    /** Start vsync + background noise sources. */
    void boot();

    /** Foreground the target app with its login field focused. */
    void launchTargetApp();

    /** Animate to the app-overview screen and into another app. */
    void switchToOtherApp();

    /** Animate back into the target app (field regains focus). */
    void switchBackToTargetApp();

    bool inTargetApp() const { return inTargetApp_; }

    /** Observe app-switch initiations: ground truth for trace
     *  recording (true = switching back into the target app). */
    void setAppSwitchListener(std::function<void(bool, SimTime)> fn)
    {
        appSwitchListener_ = std::move(fn);
    }

    /** Advance simulated time. */
    void runFor(SimTime d) { eq_.runUntil(eq_.now() + d); }
    void runUntil(SimTime t) { eq_.runUntil(t); }

  private:
    static constexpr int kSystemPid = 1;
    static constexpr int kAppPid = 100;
    static constexpr int kOtherAppPid = 101;
    static constexpr int kImePid = 102;
    static constexpr int kAttackerPid = 200;

    DeviceConfig cfg_;
    PhoneSpec phone_;
    DisplayConfig display_;
    int osVersion_;
    EventQueue eq_;
    Rng rng_;
    std::unique_ptr<gpu::RenderEngine> engine_;
    kgsl::StockPolicy stockPolicy_;
    std::unique_ptr<kgsl::KgslDevice> kgsl_;
    std::unique_ptr<WindowManager> wm_;
    std::unique_ptr<StatusBar> statusBar_;
    std::unique_ptr<AppSurface> app_;
    std::unique_ptr<OtherAppSurface> otherApp_;
    std::unique_ptr<Ime> ime_;
    std::unique_ptr<PowerModel> power_;
    std::function<void(bool, SimTime)> appSwitchListener_;
    bool booted_ = false;
    bool inTargetApp_ = false;
    std::shared_ptr<int> aliveToken_;
};

} // namespace gpusc::android

#endif // GPUSC_ANDROID_DEVICE_H
