#include "android/device.h"

#include "gpu/model.h"
#include "util/logging.h"

namespace gpusc::android {

using namespace gpusc::sim_literals;

namespace {

/** Frames in the app-switch transition animation. */
constexpr int kTransitionFrames = 10;

DisplayConfig
resolveDisplay(const DeviceConfig &cfg, const PhoneSpec &phone)
{
    DisplayConfig d = phone.display;
    if (!cfg.resolution.empty()) {
        if (cfg.resolution == "FHD+")
            d = displayFhdPlus(d.refreshHz);
        else if (cfg.resolution == "QHD+")
            d = displayQhdPlus(d.refreshHz);
        else
            fatal("Device: unknown resolution '%s'",
                  cfg.resolution.c_str());
    }
    if (cfg.refreshHz != 0)
        d.refreshHz = cfg.refreshHz;
    return d;
}

} // namespace

Device::Device(DeviceConfig cfg)
    : cfg_(std::move(cfg)), phone_(phoneSpec(cfg_.phone)),
      display_(resolveDisplay(cfg_, phone_)),
      osVersion_(cfg_.osVersion ? cfg_.osVersion : phone_.osVersion),
      rng_(cfg_.seed), aliveToken_(std::make_shared<int>(0))
{
    engine_ = std::make_unique<gpu::RenderEngine>(
        eq_, gpu::adrenoModel(phone_.adrenoGen), rng_.next());
    engine_->setNoiseSigma(cfg_.noiseSigma);
    kgsl_ = std::make_unique<kgsl::KgslDevice>(*engine_, stockPolicy_);
    wm_ = std::make_unique<WindowManager>(eq_, *engine_, display_);
    statusBar_ =
        std::make_unique<StatusBar>(eq_, display_, rng_.fork());
    app_ = std::make_unique<AppSurface>(eq_, appSpec(cfg_.app),
                                        display_, kAppPid,
                                        osVersion_ - 11, rng_.next());
    otherApp_ = std::make_unique<OtherAppSurface>(
        eq_, display_, rng_.fork(), kOtherAppPid);

    // Navigation-bar style changed across Android versions (buttons
    // vs. gesture pill), which shifts the keyboard vertically — one
    // concrete way OS version changes per-key signatures (Fig. 24d).
    KeyboardSpec spec = keyboardSpec(cfg_.keyboard);
    spec.bottomMarginDp += osVersion_ <= 9 ? 14.0 : 6.0;
    ime_ = std::make_unique<Ime>(
        eq_, KeyboardLayout(spec, display_), rng_.fork(), kImePid);
    ime_->setPopupsEnabled(!cfg_.popupsDisabled);

    power_ = std::make_unique<PowerModel>(phone_);

    app_->setVisible(false);
    otherApp_->setVisible(false);
    ime_->setVisible(false);

    wm_->addSurface(statusBar_.get());
    wm_->addSurface(app_.get());
    wm_->addSurface(otherApp_.get());
    wm_->addSurface(ime_.get());

    // Log messages carry this device's simulated clock while it is
    // the most recently constructed one (the trainer's bot device
    // hands the prefix back to the victim when it is torn down).
    setLogTimeSource(this, [this] { return eq_.now(); });
}

Device::~Device()
{
    setLogTimeSource(this, nullptr);
}

std::string
Device::modelKey() const
{
    // The target app is part of the configuration: its credential
    // field's geometry shapes the echo line and blink variants the
    // model carries (§3.2 — one model per device model AND
    // configuration).
    return phone_.id + "/adreno" + std::to_string(phone_.adrenoGen) +
           "/" + display_.name + "@" +
           std::to_string(display_.refreshHz) + "/" + cfg_.keyboard +
           "/android" + std::to_string(osVersion_) + "/" + cfg_.app;
}

kgsl::ProcessContext
Device::attackerContext() const
{
    return kgsl::ProcessContext{kAttackerPid, "untrusted_app"};
}

void
Device::setSecurityPolicy(const kgsl::SecurityPolicy &policy)
{
    kgsl_->setPolicy(policy);
}

void
Device::boot()
{
    if (booted_)
        return;
    booted_ = true;
    wm_->start();
    statusBar_->setVisible(true);
    statusBar_->startNotifications(cfg_.notificationMeanInterval);
}

void
Device::launchTargetApp()
{
    boot();
    otherApp_->setVisible(false);
    app_->setVisible(true);
    app_->startAnimation();
    app_->focusField();
    ime_->setVisible(true);
    ime_->setTargetField(app_.get());
    inTargetApp_ = true;
}

void
Device::switchToOtherApp()
{
    if (!inTargetApp_)
        return;
    inTargetApp_ = false;
    if (appSwitchListener_)
        appSwitchListener_(false, eq_.now());
    wm_->playTransition(kTransitionFrames);
    std::weak_ptr<int> alive = aliveToken_;
    eq_.scheduleAfter(
        wm_->vsyncPeriod() * (kTransitionFrames + 1), [this, alive] {
            if (alive.expired())
                return;
            app_->unfocusField();
            app_->setVisible(false);
            ime_->setVisible(false);
            otherApp_->setVisible(true);
        });
}

void
Device::switchBackToTargetApp()
{
    if (inTargetApp_)
        return;
    if (appSwitchListener_)
        appSwitchListener_(true, eq_.now());
    wm_->playTransition(kTransitionFrames);
    std::weak_ptr<int> alive = aliveToken_;
    eq_.scheduleAfter(
        wm_->vsyncPeriod() * (kTransitionFrames + 1), [this, alive] {
            if (alive.expired())
                return;
            otherApp_->setVisible(false);
            app_->setVisible(true);
            app_->focusField();
            ime_->setVisible(true);
            inTargetApp_ = true;
        });
}

} // namespace gpusc::android
