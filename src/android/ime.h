/**
 * @file
 * The input-method editor (on-screen keyboard service).
 *
 * Owns the keyboard layout + page state and drives the key-press
 * lifecycle that generates the three PC value changes of paper Fig. 3:
 *
 *   1. press down  -> popup window opens, the IME surface re-renders
 *                     (the large, key-unique counter change used for
 *                     classification);
 *   2. release     -> the character commits, the app's credential
 *                     field redraws (the small length-encoding change);
 *   3. ~40 ms later-> the popup window closes and only the exposed
 *                     region under it redraws (a medium change).
 *
 * Rich-animation keyboards re-render an identical popup frame with
 * probability KeyboardSpec::duplicationProb — the duplication artefact.
 * Backspace and space produce no popup, matching real keyboards.
 */

#ifndef GPUSC_ANDROID_IME_H
#define GPUSC_ANDROID_IME_H

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "android/app.h"
#include "android/keyboard.h"
#include "android/surface.h"
#include "util/event_queue.h"
#include "util/rng.h"

namespace gpusc::android {

/** The keyboard surface + key-press state machine. */
class Ime : public Surface
{
  public:
    Ime(EventQueue &eq, KeyboardLayout layout, Rng rng, int pid);
    ~Ime() override;

    void buildScene(gfx::FrameScene &scene) const override;

    const KeyboardLayout &layout() const { return layout_; }
    KbPage page() const { return page_; }

    /** Where committed characters and deletions go. */
    void setTargetField(AppSurface *field) { field_ = field; }

    /** Mitigation §9.1: the user disabled key-press popups. */
    void setPopupsEnabled(bool on) { popupsEnabled_ = on; }
    bool popupsEnabled() const { return popupsEnabled_; }

    /** Observe popup renders: ground truth for trace recording
     *  (the popup-show redraw is what the attack classifies). */
    void setPopupListener(std::function<void(char, SimTime)> fn)
    {
        popupListener_ = std::move(fn);
    }

    /**
     * Keys that must be pressed, in order, to type @p c given the
     * current page state (may start with Shift/?123/ABC switches).
     * Empty if the layout cannot type @p c.
     */
    std::vector<const Key *> keysFor(char c) const;

    /**
     * Press @p key now and release it after @p pressDuration.
     * Schedules all rendering and commit events.
     */
    void pressKey(const Key &key, SimTime pressDuration);

    /** Convenience: the backspace key of the current page. */
    const Key *backspaceKey() const;

    /** True while a popup is on screen. */
    bool popupActive() const { return popup_.has_value(); }

    /** Total Char-key presses driven through this IME. */
    std::uint64_t keyPressCount() const { return keyPresses_; }

  private:
    struct ActivePopup
    {
        Key key;
        double scale;
    };

    void switchPage(KbPage page, bool oneShotShift);
    void onRelease(Key key);
    void dismissPopup();

    EventQueue &eq_;
    KeyboardLayout layout_;
    Rng rng_;
    AppSurface *field_ = nullptr;
    std::function<void(char, SimTime)> popupListener_;
    KbPage page_ = KbPage::Lower;
    bool popupsEnabled_ = true;
    bool oneShotShift_ = false;
    std::optional<ActivePopup> popup_;
    std::uint64_t keyPresses_ = 0;
    /** Deferred lambdas hold a weak_ptr to this token; destruction
     *  invalidates them without tracking individual event ids. */
    std::shared_ptr<int> aliveToken_;
};

} // namespace gpusc::android

#endif // GPUSC_ANDROID_IME_H
