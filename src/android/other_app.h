/**
 * @file
 * A generic non-target application the user switches to mid-input
 * (practical-use sessions, §8). Its interactions (scrolls, taps)
 * produce GPU work that must not be mistaken for key presses.
 */

#ifndef GPUSC_ANDROID_OTHER_APP_H
#define GPUSC_ANDROID_OTHER_APP_H

#include <memory>

#include "android/display.h"
#include "android/surface.h"
#include "util/event_queue.h"
#include "util/rng.h"

namespace gpusc::android {

/** Placeholder foreground app with interactive redraw bursts. */
class OtherAppSurface : public Surface
{
  public:
    OtherAppSurface(EventQueue &eq, const DisplayConfig &display,
                    Rng rng, int pid);
    ~OtherAppSurface() override;

    void buildScene(gfx::FrameScene &scene) const override;

    /**
     * Simulate one user interaction (tap/scroll): a burst of 2-8
     * partial redraws over consecutive vsyncs.
     */
    void interact();

  private:
    void burstFrame(int remaining);

    EventQueue &eq_;
    DisplayConfig display_;
    Rng rng_;
    int contentPhase_ = 0;
    std::shared_ptr<int> aliveToken_;
};

} // namespace gpusc::android

#endif // GPUSC_ANDROID_OTHER_APP_H
