#include "android/phone.h"

#include <map>

#include "util/logging.h"

namespace gpusc::android {

namespace {

PhoneSpec
makePhone(const std::string &id, const std::string &marketing, int gpu,
          int os, DisplayConfig display, double batteryMah,
          double energyScale)
{
    PhoneSpec p;
    p.id = id;
    p.marketing = marketing;
    p.adrenoGen = gpu;
    p.osVersion = os;
    p.display = display;
    p.batteryMah = batteryMah;
    p.samplerEnergyScale = energyScale;
    return p;
}

const std::map<std::string, PhoneSpec> &
table()
{
    // §7.5's device matrix. The OnePlus 8 Pro (the paper's workhorse)
    // supports both FHD+/QHD+ and 60/120 Hz.
    static const std::map<std::string, PhoneSpec> phones = {
        {"lgv30", makePhone("lgv30", "LG V30+", 540, 9,
                            displayFhdPlus(), 3300, 1.35)},
        {"pixel2", makePhone("pixel2", "Google Pixel 2", 540, 10,
                             displayFhdPlus(), 2700, 1.30)},
        {"oneplus7pro", makePhone("oneplus7pro", "OnePlus 7 Pro", 640,
                                  11, displayQhdPlus(), 4000, 1.10)},
        {"oneplus8pro", makePhone("oneplus8pro", "OnePlus 8 Pro", 650,
                                  11, displayFhdPlus(), 4510, 1.00)},
        {"oneplus9", makePhone("oneplus9", "OnePlus 9", 660, 11,
                               displayFhdPlus(), 4500, 0.95)},
        {"s21", makePhone("s21", "Samsung Galaxy S21", 660, 11,
                          displayFhdPlus(), 4000, 0.98)},
        {"pixel5", makePhone("pixel5", "Google Pixel 5", 620, 11,
                             displayFhdPlus(), 4080, 1.05)},
    };
    return phones;
}

} // namespace

const PhoneSpec &
phoneSpec(const std::string &id)
{
    auto it = table().find(id);
    if (it == table().end())
        fatal("phoneSpec: unknown phone '%s'", id.c_str());
    return it->second;
}

const std::vector<std::string> &
phoneIds()
{
    static const std::vector<std::string> ids = {
        "lgv30",    "pixel2", "oneplus7pro", "oneplus8pro",
        "oneplus9", "s21",    "pixel5"};
    return ids;
}

} // namespace gpusc::android
