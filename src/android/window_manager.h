/**
 * @file
 * Window manager + choreographer.
 *
 * Drives the vsync loop: at every display refresh, each visible surface
 * with pending damage is re-rendered as one GPU job (surfaces render
 * into their own buffers; hardware composition of the finished buffers
 * is assumed free, matching HWC overlay paths). Also plays the app-
 * switch transition animation, which produces the dense burst of
 * counter changes the attack's app-switch detector keys on (Fig. 13).
 */

#ifndef GPUSC_ANDROID_WINDOW_MANAGER_H
#define GPUSC_ANDROID_WINDOW_MANAGER_H

#include <cstdint>
#include <vector>

#include "android/display.h"
#include "android/surface.h"
#include "gpu/render_engine.h"
#include "util/event_queue.h"

namespace gpusc::android {

/** Composites surfaces on the vsync clock. */
class WindowManager
{
  public:
    WindowManager(EventQueue &eq, gpu::RenderEngine &engine,
                  const DisplayConfig &display);

    /** Register a surface (not owned). */
    void addSurface(Surface *s);
    void removeSurface(Surface *s);

    /** Begin scheduling vsync events. Idempotent. */
    void start();

    const DisplayConfig &display() const { return display_; }
    SimTime vsyncPeriod() const { return display_.vsyncPeriod(); }

    /**
     * Play an app-switch style transition: @p frames consecutive
     * full-area redraws of animated content, one per vsync.
     */
    void playTransition(int frames);

    /** True while a transition animation is still rendering. */
    bool transitionActive() const { return transitionFramesLeft_ > 0; }

    std::uint64_t framesComposited() const { return framesComposited_; }

    EventQueue &eventQueue() { return eq_; }
    gpu::RenderEngine &engine() { return engine_; }

  private:
    void onVsync();
    void renderTransitionFrame();

    EventQueue &eq_;
    gpu::RenderEngine &engine_;
    DisplayConfig display_;
    std::vector<Surface *> surfaces_;
    bool started_ = false;
    std::uint64_t framesComposited_ = 0;
    int transitionFramesLeft_ = 0;
    int transitionPhase_ = 0;
};

} // namespace gpusc::android

#endif // GPUSC_ANDROID_WINDOW_MANAGER_H
