#include "android/display.h"

namespace gpusc::android {

DisplayConfig
displayFhdPlus(int refreshHz)
{
    DisplayConfig c;
    c.name = "FHD+";
    c.width = 1080;
    c.height = 2376;
    c.refreshHz = refreshHz;
    return c;
}

DisplayConfig
displayQhdPlus(int refreshHz)
{
    DisplayConfig c;
    c.name = "QHD+";
    c.width = 1440;
    c.height = 3168;
    c.refreshHz = refreshHz;
    return c;
}

} // namespace gpusc::android
