/**
 * @file
 * Status bar surface: clock, signal icons, notification icons.
 *
 * Notification arrivals and (rare) clock redraws are the "system
 * noise" counter changes the paper's classification threshold has to
 * reject (§5.1). Arrivals follow a Poisson process.
 */

#ifndef GPUSC_ANDROID_STATUS_BAR_H
#define GPUSC_ANDROID_STATUS_BAR_H

#include "android/display.h"
#include "android/surface.h"
#include "util/event_queue.h"
#include "util/rng.h"

namespace gpusc::android {

/** The always-on-top status bar. */
class StatusBar : public Surface
{
  public:
    StatusBar(EventQueue &eq, const DisplayConfig &display, Rng rng);
    ~StatusBar() override;

    void buildScene(gfx::FrameScene &scene) const override;

    /**
     * Start random notification arrivals with the given mean
     * inter-arrival time (exponential). Zero/negative disables.
     */
    void startNotifications(SimTime meanInterval);
    void stopNotifications();

    /** Post one notification right now (icon appears, bar redraws). */
    void postNotification();

    int notificationCount() const { return notifications_; }

  private:
    void scheduleNext();

    EventQueue &eq_;
    DisplayConfig display_;
    Rng rng_;
    int notifications_ = 0;
    SimTime meanInterval_;
    EventId pending_ = 0;
};

} // namespace gpusc::android

#endif // GPUSC_ANDROID_STATUS_BAR_H
