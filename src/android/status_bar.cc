#include "android/status_bar.h"

#include "gfx/font.h"

namespace gpusc::android {

StatusBar::StatusBar(EventQueue &eq, const DisplayConfig &display,
                     Rng rng)
    : Surface("statusbar",
              gfx::Rect{0, 0, display.width,
                        display.statusBarHeightPx()},
              /*ownerPid=*/1),
      eq_(eq), display_(display), rng_(rng)
{
}

StatusBar::~StatusBar()
{
    if (pending_)
        eq_.cancel(pending_);
}

void
StatusBar::buildScene(gfx::FrameScene &scene) const
{
    scene.add(bounds(), true, gfx::PrimTag::StatusBar);

    // Clock ("12:30") on the left.
    const int h = bounds().height() * 2 / 3;
    const int w = h * gfx::kGlyphCols / gfx::kGlyphRows;
    int x = bounds().x0 + display_.dp(8);
    const int y = bounds().y0 + (bounds().height() - h) / 2;
    for (char c : std::string("12:30")) {
        for (const gfx::Rect &run :
             gfx::glyphRunRects(c, gfx::Rect::ofSize(x, y, w, h)))
            scene.add(run, true, gfx::PrimTag::StatusBar);
        x += w + display_.dp(1);
    }

    // System icons (battery, signal) on the right.
    int ix = bounds().x1 - display_.dp(10) - h;
    for (int i = 0; i < 3; ++i) {
        scene.add(gfx::Rect::ofSize(ix, y, h, h), true,
                  gfx::PrimTag::StatusBar);
        ix -= h + display_.dp(4);
    }

    // Notification icons accumulate next to the clock.
    const int shown = std::min(notifications_, 6);
    for (int i = 0; i < shown; ++i) {
        scene.add(gfx::Rect::ofSize(x + display_.dp(4) +
                                        i * (h + display_.dp(3)),
                                    y, h, h),
                  true, gfx::PrimTag::StatusBar);
    }
}

void
StatusBar::postNotification()
{
    ++notifications_;
    invalidate();
}

void
StatusBar::scheduleNext()
{
    const double waitSec =
        rng_.exponential(meanInterval_.seconds());
    pending_ = eq_.scheduleAfter(
        SimTime::fromSeconds(std::max(0.05, waitSec)), [this] {
            postNotification();
            scheduleNext();
        });
}

void
StatusBar::startNotifications(SimTime meanInterval)
{
    stopNotifications();
    if (meanInterval.ns() <= 0)
        return;
    meanInterval_ = meanInterval;
    scheduleNext();
}

void
StatusBar::stopNotifications()
{
    if (pending_) {
        eq_.cancel(pending_);
        pending_ = 0;
    }
}

} // namespace gpusc::android
