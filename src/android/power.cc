#include "android/power.h"

namespace gpusc::android {

namespace {

// Charge per sampler wakeup (timer fire + ioctl + bookkeeping) and per
// inference, in micro-amp-hours. At the default 8 ms interval this
// yields on the order of 1-2 % of a ~4000 mAh battery per hour of
// continuous sampling — the band Fig. 26 reports.
constexpr double kWakeupMicroAh = 0.060;
constexpr double kInferenceMicroAh = 0.004;

} // namespace

PowerModel::PowerModel(const PhoneSpec &phone) : phone_(phone) {}

double
PowerModel::extraMah() const
{
    const double microAh =
        (double(wakeups_) * kWakeupMicroAh +
         double(inferences_) * kInferenceMicroAh) *
        phone_.samplerEnergyScale;
    return microAh * 1e-3;
}

double
PowerModel::extraBatteryPercent() const
{
    return 100.0 * extraMah() / phone_.batteryMah;
}

} // namespace gpusc::android
