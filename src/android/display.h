/**
 * @file
 * Display configurations (resolution, refresh rate, UI scale).
 */

#ifndef GPUSC_ANDROID_DISPLAY_H
#define GPUSC_ANDROID_DISPLAY_H

#include <string>

#include "util/sim_time.h"

namespace gpusc::android {

/** Static display properties of a device configuration. */
struct DisplayConfig
{
    std::string name;   ///< "FHD+" or "QHD+"
    int width = 1080;   ///< pixels
    int height = 2376;  ///< pixels
    int refreshHz = 60;

    /**
     * Pixels per density-independent unit. UI metrics below are
     * expressed in dp and multiplied by this before rasterisation, so
     * the same keyboard renders with more pixels (and different
     * counter signatures) on a QHD+ panel.
     */
    double
    uiScale() const
    {
        return double(width) / 360.0;
    }

    /** Scale a dp metric to device pixels. */
    int
    dp(double v) const
    {
        return int(v * uiScale() + 0.5);
    }

    SimTime
    vsyncPeriod() const
    {
        return SimTime::fromNs(1000000000LL / refreshHz);
    }

    int
    statusBarHeightPx() const
    {
        return dp(24);
    }
};

/** Canonical FHD+ panel (2376x1080), 60 Hz unless overridden. */
DisplayConfig displayFhdPlus(int refreshHz = 60);
/** Canonical QHD+ panel (3168x1440). */
DisplayConfig displayQhdPlus(int refreshHz = 60);

} // namespace gpusc::android

#endif // GPUSC_ANDROID_DISPLAY_H
