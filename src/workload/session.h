/**
 * @file
 * Practical-use sessions (paper §8): a volunteer inputs several random
 * credentials into the target app over ~3 minutes while randomly
 * switching to other apps mid-input, correcting typos with backspace,
 * pulling down the notification shade and free-using other apps.
 */

#ifndef GPUSC_WORKLOAD_SESSION_H
#define GPUSC_WORKLOAD_SESSION_H

#include <memory>
#include <string>
#include <vector>

#include "android/device.h"
#include "workload/credential.h"
#include "workload/typist.h"

namespace gpusc::workload {

/** Behavioural parameters of one practical-use session. */
struct SessionConfig
{
    std::size_t numInputs = 3;
    std::size_t minLen = 8;
    std::size_t maxLen = 16;
    double typoProb = 0.08;
    /** Probability of switching away mid-input (and back). */
    double midInputSwitchProb = 0.4;
    /** Free use of other apps between inputs. */
    SimTime freeUseDuration = SimTime::fromSeconds(8);
    std::size_t volunteer = 0;
    std::uint64_t seed = 1;
};

/** Time-stamped record of one completed credential input. */
struct InputEpisode
{
    std::string truth;
    SimTime start;
    SimTime end;
};

/** Scripts and executes a practical-use session on a device. */
class SessionDriver
{
  public:
    SessionDriver(android::Device &device, SessionConfig cfg);
    ~SessionDriver();

    /** Kick off the session (caller advances the event queue). */
    void start();

    bool done() const { return done_; }

    /** Ground truth for scoring, one entry per credential input. */
    const std::vector<InputEpisode> &episodes() const
    {
        return episodes_;
    }

  private:
    void beginInput(std::size_t index);
    void typeSegment(std::size_t index, std::string remaining,
                     bool switchPlanned);
    void afterInput(std::size_t index);
    void scheduleFreeUse(std::size_t nextIndex, SimTime budget);

    android::Device &device_;
    SessionConfig cfg_;
    Rng rng_;
    CredentialGenerator creds_;
    std::unique_ptr<Typist> typist_;
    std::vector<InputEpisode> episodes_;
    bool done_ = false;
    std::shared_ptr<int> aliveToken_;
};

} // namespace gpusc::workload

#endif // GPUSC_WORKLOAD_SESSION_H
