/**
 * @file
 * Concurrent-workload generators for §7.3.
 *
 * CpuLoadModel perturbs the attack's sampler wakeups the way CFS
 * contention does: with probability ~u the sampler thread queues
 * behind CPU hogs and wakes late, with the tail growing as u -> 1.
 * Late reads merge multiple frames' counter deltas into one observed
 * change, which is the actual accuracy-loss mechanism.
 *
 * GpuLoadGenerator submits foreign render jobs (a background 3D
 * workload) that both occupy the GPU (delaying UI frames) and add
 * foreign counter deltas to the stream.
 */

#ifndef GPUSC_WORKLOAD_LOAD_H
#define GPUSC_WORKLOAD_LOAD_H

#include <memory>

#include "android/device.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace gpusc::workload {

/** Scheduler-contention model for the sampler thread. */
class CpuLoadModel
{
  public:
    /** @param utilization CPU utilisation by other processes, 0..1. */
    CpuLoadModel(double utilization, std::uint64_t seed);

    /** Extra delay applied to the next sampler wakeup. */
    SimTime nextWakeupDelay();

    double utilization() const { return util_; }

  private:
    double util_;
    Rng rng_;
};

/** Background GPU workload (custom GLES renderer, §7.3). */
class GpuLoadGenerator
{
  public:
    /**
     * @param utilization target fraction of GPU time, 0..1.
     */
    GpuLoadGenerator(android::Device &device, double utilization,
                     std::uint64_t seed);
    ~GpuLoadGenerator();

    void start();
    void stop();

  private:
    void tick();

    android::Device &device_;
    double util_;
    Rng rng_;
    bool running_ = false;
    int phase_ = 0;
    std::shared_ptr<int> aliveToken_;
};

} // namespace gpusc::workload

#endif // GPUSC_WORKLOAD_LOAD_H
