/**
 * @file
 * Event-driven typist: replays a text on a Device's IME with human
 * timing (the role of the paper's offline bot program, §6, and of the
 * emulated key presses in every accuracy experiment, §7).
 *
 * The typist plans one physical key press at a time against the IME's
 * *current* page state, so page switches (Shift/?123/ABC) are pressed
 * as real keys with real inter-press intervals. Optional typo
 * injection types a wrong character, "notices" it after 1-3 further
 * characters, backspaces, and retypes — the input-correction behaviour
 * of §5.3/§8.
 */

#ifndef GPUSC_WORKLOAD_TYPIST_H
#define GPUSC_WORKLOAD_TYPIST_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "android/device.h"
#include "workload/typing_model.h"

namespace gpusc::workload {

/** Drives credential input on a device. */
class Typist
{
  public:
    Typist(android::Device &device, TypingModel model,
           std::uint64_t seed);
    ~Typist();

    /**
     * Probability that any committed character is a typo that gets
     * corrected with backspaces shortly after. Zero disables.
     */
    void setTypoProb(double p) { typoProb_ = p; }

    /** One physical key press, reported as ground truth. */
    struct KeyEvent
    {
        enum class Kind
        {
            Char,       ///< a character key (ch holds it)
            Backspace,  ///< the backspace key
            PageSwitch, ///< Shift/?123/ABC (page = target page)
        };
        Kind kind;
        char ch = 0;
        int page = 0;
        SimTime time;
    };

    /** Observe every physical key press (trace recording). */
    void setKeyListener(std::function<void(const KeyEvent &)> fn)
    {
        keyListener_ = std::move(fn);
    }

    /**
     * Start typing @p text after @p startDelay. Only one run at a
     * time. @p onDone fires when the last key has been released.
     */
    void type(const std::string &text, SimTime startDelay,
              std::function<void()> onDone = nullptr);

    bool done() const { return done_; }

    /** Press timestamps of Char keys (ground truth for traces). */
    const std::vector<SimTime> &pressTimes() const { return presses_; }

    /** Total physical key presses issued (incl. page switches and
     *  backspaces). */
    std::size_t physicalPresses() const { return physicalPresses_; }

  private:
    /** One pending unit of typing work. */
    struct Action
    {
        enum class Kind
        {
            TypeChar,
            Backspace,
        };
        Kind kind;
        char ch = 0;
    };

    void step();
    void pressAndContinue(const android::Key &key, bool isCharGoal);

    android::Device &device_;
    TypingModel model_;
    Rng rng_;
    double typoProb_ = 0.0;
    std::function<void(const KeyEvent &)> keyListener_;
    std::vector<Action> plan_;
    std::size_t planPos_ = 0;
    bool done_ = true;
    std::function<void()> onDone_;
    std::vector<SimTime> presses_;
    std::size_t physicalPresses_ = 0;
    bool pausedForCorrection_ = false;
    std::shared_ptr<int> aliveToken_;
};

} // namespace gpusc::workload

#endif // GPUSC_WORKLOAD_TYPIST_H
