/**
 * @file
 * Random credential (username/password) generation with a realistic
 * character mix over the typable keyboard charset.
 */

#ifndef GPUSC_WORKLOAD_CREDENTIAL_H
#define GPUSC_WORKLOAD_CREDENTIAL_H

#include <string>

#include "util/rng.h"

namespace gpusc::workload {

/** Character-class mixing weights for generated credentials. */
struct CharsetMix
{
    double lower = 0.55;
    double upper = 0.12;
    double digit = 0.22;
    double symbol = 0.11;

    /** Only lowercase letters (fastest-typing scenario). */
    static CharsetMix
    lowerOnly()
    {
        return CharsetMix{1.0, 0.0, 0.0, 0.0};
    }
};

/** Deterministic credential generator. */
class CredentialGenerator
{
  public:
    explicit CredentialGenerator(std::uint64_t seed,
                                 CharsetMix mix = CharsetMix());

    /** @return a random credential of exactly @p length characters. */
    std::string next(std::size_t length);

    /** One uniformly random typable character of any class. */
    char randomChar();

    /** The symbols eligible for generation. */
    static const std::string &symbolSet();

  private:
    Rng rng_;
    CharsetMix mix_;
};

/** Character group of Fig. 17(c)/21(c): lower/upper/number/symbol. */
enum class CharGroup
{
    Lower,
    Upper,
    Number,
    Symbol,
};

/** Classify a character into its Fig. 17(c) group. */
CharGroup charGroupOf(char c);
/** Display label for a group. */
std::string charGroupName(CharGroup g);

} // namespace gpusc::workload

#endif // GPUSC_WORKLOAD_CREDENTIAL_H
