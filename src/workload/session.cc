#include "workload/session.h"

namespace gpusc::workload {

using namespace gpusc::sim_literals;

SessionDriver::SessionDriver(android::Device &device, SessionConfig cfg)
    : device_(device), cfg_(cfg), rng_(cfg.seed),
      creds_(rng_.next()),
      typist_(std::make_unique<Typist>(
          device, TypingModel::forVolunteer(cfg.volunteer, rng_.next()),
          rng_.next())),
      aliveToken_(std::make_shared<int>(0))
{
    typist_->setTypoProb(cfg_.typoProb);
}

SessionDriver::~SessionDriver() = default;

void
SessionDriver::start()
{
    device_.launchTargetApp();
    std::weak_ptr<int> alive = aliveToken_;
    device_.eq().scheduleAfter(800_ms, [this, alive] {
        if (!alive.expired())
            beginInput(0);
    });
}

void
SessionDriver::beginInput(std::size_t index)
{
    if (index >= cfg_.numInputs) {
        done_ = true;
        return;
    }
    device_.app().clearText();
    const auto len = std::size_t(rng_.uniformInt(
        std::int64_t(cfg_.minLen), std::int64_t(cfg_.maxLen)));
    InputEpisode ep;
    ep.truth = creds_.next(len);
    ep.start = device_.eq().now();
    episodes_.push_back(ep);

    const bool switchPlanned = rng_.bernoulli(cfg_.midInputSwitchProb);
    typeSegment(index, episodes_.back().truth, switchPlanned);
}

void
SessionDriver::typeSegment(std::size_t index, std::string remaining,
                           bool switchPlanned)
{
    std::weak_ptr<int> alive = aliveToken_;
    if (switchPlanned && remaining.size() >= 4) {
        // Type the first part, wander off to another app, come back
        // and finish.
        const auto cut = std::size_t(rng_.uniformInt(
            2, std::int64_t(remaining.size()) - 2));
        const std::string head = remaining.substr(0, cut);
        const std::string tail = remaining.substr(cut);
        typist_->type(head, 200_ms, [this, alive, index, tail] {
            if (alive.expired())
                return;
            device_.switchToOtherApp();
            device_.eq().scheduleAfter(900_ms, [this, alive] {
                if (!alive.expired())
                    device_.otherApp().interact();
            });
            const SimTime away = SimTime::fromSeconds(
                rng_.uniform(1.5, 4.0));
            device_.eq().scheduleAfter(away, [this, alive, index,
                                              tail] {
                if (alive.expired())
                    return;
                device_.switchBackToTargetApp();
                device_.eq().scheduleAfter(
                    700_ms, [this, alive, index, tail] {
                        if (!alive.expired())
                            typeSegment(index, tail, false);
                    });
            });
        });
        return;
    }

    typist_->type(remaining, 200_ms, [this, alive, index] {
        if (!alive.expired())
            afterInput(index);
    });
}

void
SessionDriver::afterInput(std::size_t index)
{
    episodes_[index].end = device_.eq().now();
    std::weak_ptr<int> alive = aliveToken_;
    // Occasionally pull down the notification shade (full-screen
    // animation burst) before leaving the app.
    if (rng_.bernoulli(0.4)) {
        device_.wm().playTransition(4);
        device_.statusBar().postNotification();
    }
    device_.eq().scheduleAfter(400_ms, [this, alive, index] {
        if (alive.expired())
            return;
        device_.switchToOtherApp();
        scheduleFreeUse(index + 1, cfg_.freeUseDuration);
    });
}

void
SessionDriver::scheduleFreeUse(std::size_t nextIndex, SimTime budget)
{
    std::weak_ptr<int> alive = aliveToken_;
    if (budget <= 0_ms) {
        device_.switchBackToTargetApp();
        device_.eq().scheduleAfter(800_ms, [this, alive, nextIndex] {
            if (!alive.expired())
                beginInput(nextIndex);
        });
        return;
    }
    const SimTime gap =
        SimTime::fromSeconds(rng_.uniform(0.6, 2.2));
    device_.eq().scheduleAfter(gap, [this, alive, nextIndex, budget,
                                     gap] {
        if (alive.expired())
            return;
        device_.otherApp().interact();
        scheduleFreeUse(nextIndex, budget - gap);
    });
}

} // namespace gpusc::workload
