#include "workload/typing_model.h"

#include <algorithm>

#include "util/logging.h"

namespace gpusc::workload {

const std::vector<VolunteerProfile> &
volunteerProfiles()
{
    static const std::vector<VolunteerProfile> profiles = {
        {"volunteer1", 85.0, 18.0, 215.0, 60.0},
        {"volunteer2", 110.0, 25.0, 330.0, 95.0},
        {"volunteer3", 95.0, 20.0, 270.0, 80.0},
        {"volunteer4", 130.0, 30.0, 455.0, 130.0},
        {"volunteer5", 75.0, 15.0, 245.0, 70.0},
    };
    return profiles;
}

TypingModel::TypingModel(VolunteerProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)), rng_(seed)
{
}

TypingModel
TypingModel::forSpeed(TypingSpeed speed, std::uint64_t seed)
{
    // Pooled profile approximating the union of all volunteers.
    // Press durations correlate with intervals in the Fig. 16 data
    // (the slow volunteer also holds keys longest), so each band gets
    // matching duration statistics.
    VolunteerProfile pooled{"pooled", 99.0, 26.0, 303.0, 120.0};
    switch (speed) {
      case TypingSpeed::Fast:
        pooled.meanDurationMs = 82.0;
        pooled.sdDurationMs = 17.0;
        break;
      case TypingSpeed::Medium:
        pooled.meanDurationMs = 101.0;
        pooled.sdDurationMs = 22.0;
        break;
      case TypingSpeed::Slow:
        pooled.meanDurationMs = 131.0;
        pooled.sdDurationMs = 31.0;
        break;
      case TypingSpeed::Mixed:
        break;
    }
    TypingModel m(pooled, seed);
    m.band_ = speed;
    return m;
}

TypingModel
TypingModel::forVolunteer(std::size_t index, std::uint64_t seed)
{
    const auto &profiles = volunteerProfiles();
    if (index >= profiles.size())
        fatal("TypingModel: volunteer index %zu out of range (0-%zu)",
              index, profiles.size() - 1);
    return TypingModel(profiles[index], seed);
}

SimTime
TypingModel::nextDuration()
{
    const double ms = std::max(
        35.0, rng_.logNormalByMoments(profile_.meanDurationMs,
                                      profile_.sdDurationMs));
    return SimTime::fromSeconds(ms * 1e-3);
}

SimTime
TypingModel::nextInterval()
{
    for (int attempt = 0; attempt < 256; ++attempt) {
        const double s =
            std::max(0.09, rng_.logNormalByMoments(
                               profile_.meanIntervalMs * 1e-3,
                               profile_.sdIntervalMs * 1e-3));
        const bool ok = [&] {
            switch (band_) {
              case TypingSpeed::Fast:
                return s < kFastMaxIntervalS;
              case TypingSpeed::Medium:
                return s >= kFastMaxIntervalS && s <= kSlowMinIntervalS;
              case TypingSpeed::Slow:
                return s > kSlowMinIntervalS;
              case TypingSpeed::Mixed:
                return true;
            }
            return true;
        }();
        if (ok)
            return SimTime::fromSeconds(s);
    }
    // Rejection failed (cannot happen with sane bands); fall back to
    // the band midpoint.
    switch (band_) {
      case TypingSpeed::Fast:
        return SimTime::fromSeconds(0.18);
      case TypingSpeed::Slow:
        return SimTime::fromSeconds(0.5);
      default:
        return SimTime::fromSeconds(0.32);
    }
}

} // namespace gpusc::workload
