#include "workload/credential.h"

#include <array>
#include <cctype>

namespace gpusc::workload {

CredentialGenerator::CredentialGenerator(std::uint64_t seed,
                                         CharsetMix mix)
    : rng_(seed), mix_(mix)
{
}

const std::string &
CredentialGenerator::symbolSet()
{
    static const std::string symbols = ",.@#$&-+()/*\"':;!?";
    return symbols;
}

char
CredentialGenerator::randomChar()
{
    const std::array<double, 4> weights = {mix_.lower, mix_.upper,
                                           mix_.digit, mix_.symbol};
    switch (rng_.weightedIndex(weights)) {
      case 0:
        return char('a' + rng_.uniformInt(0, 25));
      case 1:
        return char('A' + rng_.uniformInt(0, 25));
      case 2:
        return char('0' + rng_.uniformInt(0, 9));
      default:
        return rng_.pick(symbolSet());
    }
}

std::string
CredentialGenerator::next(std::size_t length)
{
    std::string s;
    s.reserve(length);
    for (std::size_t i = 0; i < length; ++i)
        s.push_back(randomChar());
    return s;
}

CharGroup
charGroupOf(char c)
{
    if (std::islower(static_cast<unsigned char>(c)))
        return CharGroup::Lower;
    if (std::isupper(static_cast<unsigned char>(c)))
        return CharGroup::Upper;
    if (std::isdigit(static_cast<unsigned char>(c)))
        return CharGroup::Number;
    return CharGroup::Symbol;
}

std::string
charGroupName(CharGroup g)
{
    switch (g) {
      case CharGroup::Lower:
        return "lower";
      case CharGroup::Upper:
        return "upper";
      case CharGroup::Number:
        return "number";
      case CharGroup::Symbol:
        return "symbol";
    }
    return "?";
}

} // namespace gpusc::workload
