#include "workload/load.h"

#include <algorithm>
#include <cmath>

namespace gpusc::workload {

using namespace gpusc::sim_literals;

CpuLoadModel::CpuLoadModel(double utilization, std::uint64_t seed)
    : util_(std::clamp(utilization, 0.0, 0.99)), rng_(seed)
{
}

SimTime
CpuLoadModel::nextWakeupDelay()
{
    if (util_ <= 0.0)
        return SimTime();
    if (!rng_.bernoulli(util_))
        return SimTime();
    // M/M/1-style waiting-time scaling: mean wait explodes as the
    // other load saturates the cores.
    const double meanMs = 4.0 * util_ / (1.0 - util_ + 0.06);
    const double ms = rng_.exponential(meanMs);
    return SimTime::fromSeconds(std::min(ms, 300.0) * 1e-3);
}

namespace {

/** Foreign jobs are issued on this period. */
constexpr SimTime kGpuLoadPeriod = 30_ms;

} // namespace

GpuLoadGenerator::GpuLoadGenerator(android::Device &device,
                                   double utilization,
                                   std::uint64_t seed)
    : device_(device), util_(std::clamp(utilization, 0.0, 1.0)),
      rng_(seed), aliveToken_(std::make_shared<int>(0))
{
}

GpuLoadGenerator::~GpuLoadGenerator() = default;

void
GpuLoadGenerator::start()
{
    if (running_ || util_ <= 0.0)
        return;
    running_ = true;
    tick();
}

void
GpuLoadGenerator::stop()
{
    running_ = false;
}

void
GpuLoadGenerator::tick()
{
    if (!running_)
        return;

    // Compute/blit-style background work sized to ~util of the
    // period: it occupies the GPU (delaying UI frames, raising the
    // busy percentage) without touching the raster-pipeline counters.
    const double budgetUs = util_ * double(kGpuLoadPeriod.us()) *
                            rng_.uniform(0.85, 1.15);
    device_.engine().submitCompute(
        SimTime::fromUs(std::int64_t(budgetUs)));
    ++phase_;

    std::weak_ptr<int> alive = aliveToken_;
    device_.eq().scheduleAfter(kGpuLoadPeriod, [this, alive] {
        if (!alive.expired())
            tick();
    });
}

} // namespace gpusc::workload
