/**
 * @file
 * Human typing-timing models.
 *
 * Five volunteer profiles reproduce the heterogeneity of paper Fig. 16
 * (key-press durations ~60-160 ms, inter-press intervals ~0.1-0.6 s).
 * §7.2 splits the pooled intervals into terciles at 0.24 s and 0.4 s
 * (fast/medium/slow); TypingModel::forSpeed() draws from the pooled
 * distribution restricted to the band.
 */

#ifndef GPUSC_WORKLOAD_TYPING_MODEL_H
#define GPUSC_WORKLOAD_TYPING_MODEL_H

#include <string>
#include <vector>

#include "util/rng.h"
#include "util/sim_time.h"

namespace gpusc::workload {

/** Per-volunteer timing statistics (log-normal by moments). */
struct VolunteerProfile
{
    std::string name;
    double meanDurationMs = 95.0;
    double sdDurationMs = 20.0;
    double meanIntervalMs = 300.0;
    double sdIntervalMs = 90.0;
};

/** The five student volunteers of Fig. 16. */
const std::vector<VolunteerProfile> &volunteerProfiles();

/** Typing-speed classes of §7.2 (tercile bands of the intervals). */
enum class TypingSpeed
{
    Fast,   ///< interval < 0.24 s
    Medium, ///< 0.24 s <= interval <= 0.4 s
    Slow,   ///< interval > 0.4 s
    Mixed,  ///< unrestricted pooled distribution
};

/** Stochastic generator of press durations and inter-press gaps. */
class TypingModel
{
  public:
    TypingModel(VolunteerProfile profile, std::uint64_t seed);

    /** Pooled-distribution model restricted to a speed band. */
    static TypingModel forSpeed(TypingSpeed speed, std::uint64_t seed);

    /** Model for volunteer @p index (0-4). */
    static TypingModel forVolunteer(std::size_t index,
                                    std::uint64_t seed);

    /** Duration of the next key press. */
    SimTime nextDuration();

    /** Gap between the previous release and the next press. */
    SimTime nextInterval();

    const VolunteerProfile &profile() const { return profile_; }

  private:
    VolunteerProfile profile_;
    Rng rng_;
    TypingSpeed band_ = TypingSpeed::Mixed;
};

/** Tercile boundaries used by §7.2. */
inline constexpr double kFastMaxIntervalS = 0.24;
inline constexpr double kSlowMinIntervalS = 0.40;

} // namespace gpusc::workload

#endif // GPUSC_WORKLOAD_TYPING_MODEL_H
