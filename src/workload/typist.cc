#include "workload/typist.h"

#include "util/logging.h"

namespace gpusc::workload {

using namespace gpusc::sim_literals;
using android::Key;
using android::KeyCode;

Typist::Typist(android::Device &device, TypingModel model,
               std::uint64_t seed)
    : device_(device), model_(std::move(model)), rng_(seed),
      aliveToken_(std::make_shared<int>(0))
{
}

Typist::~Typist() = default;

void
Typist::type(const std::string &text, SimTime startDelay,
             std::function<void()> onDone)
{
    if (!done_)
        panic("Typist: type() while a previous run is active");

    plan_.clear();
    planPos_ = 0;
    presses_.clear();
    physicalPresses_ = 0;
    onDone_ = std::move(onDone);
    done_ = false;

    // Expand the text into actions, injecting correction episodes:
    // wrong char -> 0..2 more correct chars -> backspaces -> retype.
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (typoProb_ > 0.0 && rng_.bernoulli(typoProb_)) {
            char wrong = text[i];
            // Pick a different typable character as the typo.
            const std::string pool =
                "abcdefghijklmnopqrstuvwxyz0123456789";
            while (wrong == text[i])
                wrong = rng_.pick(pool);
            const std::size_t lookahead = std::min<std::size_t>(
                std::size_t(rng_.uniformInt(0, 2)),
                text.size() - 1 - i);
            plan_.push_back({Action::Kind::TypeChar, wrong});
            for (std::size_t k = 0; k < lookahead; ++k)
                plan_.push_back(
                    {Action::Kind::TypeChar, text[i + 1 + k]});
            for (std::size_t k = 0; k < lookahead + 1; ++k)
                plan_.push_back({Action::Kind::Backspace, 0});
            for (std::size_t k = 0; k <= lookahead; ++k)
                plan_.push_back(
                    {Action::Kind::TypeChar, text[i + k]});
            i += lookahead;
        } else {
            plan_.push_back({Action::Kind::TypeChar, text[i]});
        }
    }

    std::weak_ptr<int> alive = aliveToken_;
    device_.eq().scheduleAfter(startDelay, [this, alive] {
        if (!alive.expired())
            step();
    });
}

void
Typist::step()
{
    if (planPos_ >= plan_.size()) {
        done_ = true;
        if (onDone_)
            onDone_();
        return;
    }

    const Action &action = plan_[planPos_];

    // Humans pause to notice a typo before reaching for backspace.
    if (action.kind == Action::Kind::Backspace && planPos_ > 0 &&
        plan_[planPos_ - 1].kind == Action::Kind::TypeChar &&
        !pausedForCorrection_) {
        pausedForCorrection_ = true;
        const SimTime pause = SimTime::fromSeconds(
            0.35 + rng_.exponential(0.20));
        std::weak_ptr<int> alive = aliveToken_;
        device_.eq().scheduleAfter(pause, [this, alive] {
            if (!alive.expired())
                step();
        });
        return;
    }
    pausedForCorrection_ = false;

    const Key *key = nullptr;
    if (action.kind == Action::Kind::Backspace) {
        key = device_.ime().backspaceKey();
        if (!key)
            panic("Typist: keyboard has no backspace key");
        ++planPos_;
        pressAndContinue(*key, false);
        return;
    }

    const auto seq = device_.ime().keysFor(action.ch);
    if (seq.empty())
        fatal("Typist: character 0x%02x is not typable on keyboard "
              "'%s'", (unsigned char)action.ch,
              device_.ime().layout().spec().name.c_str());
    key = seq.front();
    const bool isCharGoal = key->code == KeyCode::Char;
    if (isCharGoal)
        ++planPos_; // page switches re-evaluate the same action
    pressAndContinue(*key, isCharGoal);
}

void
Typist::pressAndContinue(const Key &key, bool isCharGoal)
{
    const SimTime duration =
        key.code == KeyCode::Char ? model_.nextDuration() : 90_ms;
    if (isCharGoal)
        presses_.push_back(device_.eq().now());
    ++physicalPresses_;
    if (keyListener_) {
        KeyEvent ev;
        ev.time = device_.eq().now();
        bool report = true;
        switch (key.code) {
          case KeyCode::Char:
            ev.kind = KeyEvent::Kind::Char;
            ev.ch = key.ch;
            break;
          case KeyCode::Backspace:
            ev.kind = KeyEvent::Kind::Backspace;
            break;
          case KeyCode::Shift:
            ev.kind = KeyEvent::Kind::PageSwitch;
            ev.page = int(device_.ime().page() ==
                                  android::KbPage::Lower
                              ? android::KbPage::Upper
                              : android::KbPage::Lower);
            break;
          case KeyCode::Sym:
            ev.kind = KeyEvent::Kind::PageSwitch;
            ev.page = int(android::KbPage::Symbols);
            break;
          case KeyCode::Abc:
            ev.kind = KeyEvent::Kind::PageSwitch;
            ev.page = int(android::KbPage::Lower);
            break;
          default:
            report = false; // Space/Enter leave no popup evidence
            break;
        }
        if (report)
            keyListener_(ev);
    }
    device_.ime().pressKey(key, duration);
    std::weak_ptr<int> alive = aliveToken_;
    device_.eq().scheduleAfter(duration + model_.nextInterval(),
                               [this, alive] {
                                   if (!alive.expired())
                                       step();
                               });
}

} // namespace gpusc::workload
