#include "baseline/desktop_baseline.h"

#include "gfx/font.h"

namespace gpusc::baseline {

const std::vector<DesktopAppSpec> &
desktopApps()
{
    static const std::vector<DesktopAppSpec> apps = {
        {"gedit", 1100, 850, 1.6, 0.0018},
        {"gmail-web", 1440, 900, 2.3, 0.0030},
        {"dropbox-client", 980, 720, 1.9, 0.0024},
    };
    return apps;
}

DesktopGpuBaseline::DesktopGpuBaseline(std::uint64_t seed) : rng_(seed)
{
}

ml::FeatureVec
DesktopGpuBaseline::featuresForKey(const DesktopAppSpec &app, char key)
{
    // Whole-window redraw per keystroke: the key's glyph adds its
    // (scaled) pixel count on top of the window's workload, which the
    // compositor then perturbs by a few percent — far more than any
    // glyph differs from another.
    const double windowPixels =
        double(app.windowW) * app.windowH * app.overdraw;
    const double glyphPixels = double(gfx::glyphPixelCount(key)) *
                               300.0; // large AA glyph + layout shift
    const double basePixels = windowPixels + glyphPixels;
    const double noisy =
        basePixels * (1.0 + rng_.normal(0.0, app.noiseFrac));

    const double busyCycles = noisy * 0.9 +
                              rng_.normal(0.0, noisy * 0.01);
    const double memBytes = noisy * 4.0 * 1.6 +
                            rng_.normal(0.0, noisy * 0.05);
    return {busyCycles, memBytes, noisy};
}

ml::Dataset
DesktopGpuBaseline::collect(const DesktopAppSpec &app, int pressesPerKey)
{
    ml::Dataset data;
    for (char key = 'a'; key <= 'z'; ++key)
        for (int i = 0; i < pressesPerKey; ++i)
            data.add(featuresForKey(app, key), key - 'a');
    return data;
}

} // namespace gpusc::baseline
