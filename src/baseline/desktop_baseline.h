/**
 * @file
 * Reproduction of the prior-work baseline evaluated in Table 2
 * (Naghibijouybari et al., CCS'18 [37]): keystroke inference from
 * *workload-level* counters of a desktop Nvidia GPU (busy cycles,
 * memory traffic, shaded pixels sampled via CUPTI every 10 ms).
 *
 * The mechanism of failure is modelled honestly: a desktop text widget
 * re-renders its whole window per keystroke, so frame-aggregate
 * counters carry the window's workload (millions of pixels) plus
 * compositor noise, while the keystroke's own contribution (one
 * glyph's pixels) is orders of magnitude smaller. Any classifier on
 * such features lands near chance — the paper measures <= 14 %.
 */

#ifndef GPUSC_BASELINE_DESKTOP_BASELINE_H
#define GPUSC_BASELINE_DESKTOP_BASELINE_H

#include <string>
#include <vector>

#include "ml/dataset.h"
#include "util/rng.h"

namespace gpusc::baseline {

/** One desktop typing target of Table 2. */
struct DesktopAppSpec
{
    std::string name;
    int windowW = 1280;
    int windowH = 960;
    /** Average per-frame overdraw factor of the app's UI. */
    double overdraw = 1.8;
    /** Frame-to-frame workload noise (compositor, AA, other damage),
     *  as a fraction of the total workload. */
    double noiseFrac = 0.03;
};

/** gedit / Gmail-in-Chrome / Dropbox client, as in Table 2. */
const std::vector<DesktopAppSpec> &desktopApps();

/** Coarse per-keystroke feature extractor for the baseline. */
class DesktopGpuBaseline
{
  public:
    explicit DesktopGpuBaseline(std::uint64_t seed);

    /**
     * Emulate @p pressesPerKey keystrokes of each lowercase letter in
     * @p app and return (features, key) samples. Features are the
     * workload-level counters [busy_cycles, mem_bytes, pixels].
     */
    ml::Dataset collect(const DesktopAppSpec &app, int pressesPerKey);

  private:
    ml::FeatureVec featuresForKey(const DesktopAppSpec &app, char key);

    Rng rng_;
};

} // namespace gpusc::baseline

#endif // GPUSC_BASELINE_DESKTOP_BASELINE_H
