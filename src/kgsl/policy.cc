#include "kgsl/policy.h"

#include "kgsl/msm_kgsl.h"

namespace gpusc::kgsl {

bool
SecurityPolicy::allowOpen(const ProcessContext &) const
{
    return true;
}

bool
SecurityPolicy::allowIoctl(const ProcessContext &, unsigned long) const
{
    return true;
}

RbacPolicy::RbacPolicy(std::set<std::string> allowedRoles,
                       OpenMode openMode)
    : allowedRoles_(std::move(allowedRoles)), openMode_(openMode)
{
}

bool
RbacPolicy::allowOpen(const ProcessContext &proc) const
{
    if (openMode_ == OpenMode::AllowAll)
        return true;
    return allowedRoles_.contains(proc.seContext);
}

bool
RbacPolicy::allowIoctl(const ProcessContext &proc,
                       unsigned long request) const
{
    const bool isPerfCounterRequest =
        request == IOCTL_KGSL_PERFCOUNTER_GET ||
        request == IOCTL_KGSL_PERFCOUNTER_PUT ||
        request == IOCTL_KGSL_PERFCOUNTER_READ;
    if (!isPerfCounterRequest)
        return true; // rendering ioctls stay available to everyone
    return allowedRoles_.contains(proc.seContext);
}

} // namespace gpusc::kgsl
