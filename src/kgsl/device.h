/**
 * @file
 * The simulated /dev/kgsl-3d0 device file.
 *
 * Userspace (the attacking application, the GLES shim, the offline
 * bot) interacts with the GPU exclusively through open()/ioctl()/
 * close() on this object, mirroring the paper's Figure 10 flow:
 *
 *   int fd = open("/dev/kgsl-3d0", O_RDWR);
 *   ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, &get);   // reserve
 *   ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, &read); // blockread values
 *
 * Reads are served from the RenderEngine's time-aware counter file, so
 * every artefact of real sampling (mid-frame splits, merged frames) is
 * visible through this interface. A SecurityPolicy is consulted on
 * every call, which is where the RBAC mitigation plugs in.
 */

#ifndef GPUSC_KGSL_DEVICE_H
#define GPUSC_KGSL_DEVICE_H

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "gpu/render_engine.h"
#include "kgsl/fault_injector.h"
#include "kgsl/msm_kgsl.h"
#include "kgsl/policy.h"
#include "obs/telemetry.h"

namespace gpusc::kgsl {

/** Simulated KGSL character device. */
class KgslDevice
{
  public:
    KgslDevice(gpu::RenderEngine &engine, const SecurityPolicy &policy);

    /** Device node path, for log/diagnostic symmetry with the paper. */
    static constexpr const char *path() { return "/dev/kgsl-3d0"; }

    /**
     * Open the device file.
     * @return a file descriptor >= 3, or -EACCES if denied.
     */
    int open(const ProcessContext &proc);

    /**
     * Dispatch an ioctl. Supported requests:
     * IOCTL_KGSL_PERFCOUNTER_GET / _PUT / _READ.
     * @return 0 on success or a negative errno.
     */
    int ioctl(int fd, unsigned long request, void *arg);

    /** Close a descriptor; releases its counter reservations. */
    int close(int fd);

    /**
     * The sysfs node
     * /sys/class/kgsl/kgsl-3d0/gpu_busy_percentage (paper §7.3).
     */
    double gpuBusyPercentage();

    /** Number of ioctl calls served (overhead accounting, Fig. 26). */
    std::uint64_t ioctlCount() const { return ioctlCount_; }

    /** Swap the active security policy (used by mitigation benches). */
    void setPolicy(const SecurityPolicy &policy) { policy_ = &policy; }

    /**
     * Attach (or detach, with nullptr) a fault injector. The device
     * consults it on every open/ioctl: transient errno injection,
     * physical-register arbitration (EBUSY), power-collapse /
     * wraparound value transforms and reset epochs (ENODEV).
     */
    void setFaultInjector(FaultInjector *injector)
    {
        injector_ = injector;
    }
    FaultInjector *faultInjector() { return injector_; }

    /**
     * Attach a telemetry context: every ioctl round-trip becomes a
     * `kgsl.ioctl` span plus call/error counters, and every security
     * policy refusal (open or ioctl) a `kgsl.policy_denials` count
     * plus an audit record (Stage::Kgsl, Decision::PolicyDenied) — so
     * defended runs are as observable as undefended ones.
     * Observational only — returned errnos and counter values are
     * unchanged.
     */
    void setTelemetry(obs::Telemetry *tel);

    /** Policy refusals observed (independent of telemetry). */
    std::uint64_t policyDenialCount() const { return policyDenials_; }

    /** Currently open descriptors (fd-leak regression tests). */
    std::size_t openFileCount() const { return files_.size(); }

    /** Counter reservations live across all descriptors. */
    std::size_t totalReservations() const;

  private:
    struct OpenFile
    {
        ProcessContext proc;
        std::set<std::pair<std::uint32_t, std::uint32_t>> reservations;
        /** Reset epoch the descriptor was opened in. */
        std::uint64_t epoch = 0;
        /** Invalidated by a device reset; every ioctl is ENODEV. */
        bool stale = false;
    };

    int ioctlDispatch(int fd, unsigned long request, void *arg);
    void notePolicyDenial(const ProcessContext &proc,
                          const char *what);
    void noteDefenseIntervention(const ProcessContext &proc,
                                 bool stale);
    int doPerfcounterGet(OpenFile &file, kgsl_perfcounter_get *arg);
    int doPerfcounterPut(OpenFile &file, kgsl_perfcounter_put *arg);
    int doPerfcounterRead(OpenFile &file, kgsl_perfcounter_read *arg);

    /** Drop all of @p file's reservations (returning registers). */
    void dropReservations(OpenFile &file);

    gpu::RenderEngine &engine_;
    const SecurityPolicy *policy_;
    FaultInjector *injector_ = nullptr;
    int nextFd_ = 3;
    std::map<int, OpenFile> files_;
    std::uint64_t ioctlCount_ = 0;
    std::uint64_t policyDenials_ = 0;
    obs::Telemetry *telemetry_ = nullptr;
    obs::StageTimer ioctlTimer_;
    obs::Counter *ioctlCallsCtr_ = nullptr;
    obs::Counter *ioctlErrorsCtr_ = nullptr;
    obs::Counter *policyDenialsCtr_ = nullptr;
    obs::Counter *readsThrottledCtr_ = nullptr;
    obs::Counter *readsStaleCtr_ = nullptr;
};

/**
 * @return true if the (group, countable) pair names a counter the
 * simulated hardware implements (the 11 selected ones plus the other
 * enumerable countables exposed by the GLES perf-monitor extension).
 */
bool hardwareImplementsCounter(std::uint32_t groupid,
                               std::uint32_t countable);

} // namespace gpusc::kgsl

#endif // GPUSC_KGSL_DEVICE_H
