/**
 * @file
 * Mirror of the msm_kgsl.h UAPI surface used by the attack (Fig. 9 of
 * the paper): perf-counter group ids, the ioctl request codes for
 * PERFCOUNTER_GET / _PUT / _READ, and their argument structures.
 *
 * Request codes are built with the same _IOWR bit layout as the Linux
 * UAPI so the simulated driver dispatches on realistic values.
 */

#ifndef GPUSC_KGSL_MSM_KGSL_H
#define GPUSC_KGSL_MSM_KGSL_H

#include <cstdint>

namespace gpusc::kgsl {

/** ioctl direction bits (Linux asm-generic layout). */
inline constexpr unsigned long kIocWrite = 1UL;
inline constexpr unsigned long kIocRead = 2UL;

inline constexpr unsigned long
ioc(unsigned long dir, unsigned long type, unsigned long nr,
    unsigned long size)
{
    return (dir << 30) | (size << 16) | (type << 8) | nr;
}

template <typename T>
constexpr unsigned long
iowr(unsigned long type, unsigned long nr)
{
    return ioc(kIocRead | kIocWrite, type, nr, sizeof(T));
}

/** KGSL ioctl magic ('\x09' in the real header). */
inline constexpr unsigned long KGSL_IOC_TYPE = 0x09;

/* Perf counter group IDs (subset relevant to the attack). */
inline constexpr std::uint32_t KGSL_PERFCOUNTER_GROUP_CP = 0x0;
inline constexpr std::uint32_t KGSL_PERFCOUNTER_GROUP_VPC = 0x5;
inline constexpr std::uint32_t KGSL_PERFCOUNTER_GROUP_RAS = 0x7;
inline constexpr std::uint32_t KGSL_PERFCOUNTER_GROUP_SP = 0xa;
inline constexpr std::uint32_t KGSL_PERFCOUNTER_GROUP_LRZ = 0x19;

/** Argument of IOCTL_KGSL_PERFCOUNTER_GET: reserve a countable. */
struct kgsl_perfcounter_get
{
    std::uint32_t groupid = 0;
    std::uint32_t countable = 0;
    std::uint32_t offset = 0;    // filled by the driver
    std::uint32_t offset_hi = 0; // filled by the driver
    std::uint32_t __pad[2] = {0, 0};
};

/** Argument of IOCTL_KGSL_PERFCOUNTER_PUT: release a countable. */
struct kgsl_perfcounter_put
{
    std::uint32_t groupid = 0;
    std::uint32_t countable = 0;
    std::uint32_t __pad[2] = {0, 0};
};

/** One entry of a blockread: identifies a counter, receives a value. */
struct kgsl_perfcounter_read_group
{
    std::uint32_t groupid = 0;
    std::uint32_t countable = 0;
    std::uint64_t value = 0; // filled by the driver
};

/** Argument of IOCTL_KGSL_PERFCOUNTER_READ. */
struct kgsl_perfcounter_read
{
    kgsl_perfcounter_read_group *reads = nullptr;
    std::uint32_t count = 0;
    std::uint32_t __pad[2] = {0, 0};
};

inline constexpr unsigned long IOCTL_KGSL_PERFCOUNTER_GET =
    iowr<kgsl_perfcounter_get>(KGSL_IOC_TYPE, 0x38);
inline constexpr unsigned long IOCTL_KGSL_PERFCOUNTER_PUT =
    iowr<kgsl_perfcounter_put>(KGSL_IOC_TYPE, 0x39);
inline constexpr unsigned long IOCTL_KGSL_PERFCOUNTER_READ =
    iowr<kgsl_perfcounter_read>(KGSL_IOC_TYPE, 0x3B);

/* errno values returned by the simulated driver (negated). */
inline constexpr int KGSL_EPERM = 1;
inline constexpr int KGSL_EINTR = 4;
inline constexpr int KGSL_EBADF = 9;
inline constexpr int KGSL_EAGAIN = 11;
inline constexpr int KGSL_EACCES = 13;
inline constexpr int KGSL_EFAULT = 14;
inline constexpr int KGSL_EBUSY = 16;
inline constexpr int KGSL_ENODEV = 19;
inline constexpr int KGSL_EINVAL = 22;

} // namespace gpusc::kgsl

#endif // GPUSC_KGSL_MSM_KGSL_H
