#include "kgsl/fault_injector.h"

#include "kgsl/msm_kgsl.h"
#include "util/logging.h"

namespace gpusc::kgsl {

const char *
faultKindString(FaultKind k)
{
    switch (k) {
      case FaultKind::TransientError: return "TransientError";
      case FaultKind::CounterBusy: return "CounterBusy";
      case FaultKind::PowerCollapse: return "PowerCollapse";
      case FaultKind::DeviceReset: return "DeviceReset";
    }
    return "Unknown";
}

FaultInjector::FaultInjector(EventQueue &eq, FaultPlan plan)
    : eq_(eq), plan_(std::move(plan)), rng_(plan_.seed)
{
}

void
FaultInjector::emit(FaultKind kind, std::uint64_t detail)
{
    if (listener_)
        listener_({eq_.now(), kind, detail});
}

int
FaultInjector::ioctlFault()
{
    if (plan_.transientErrorProb <= 0.0 ||
        !rng_.bernoulli(plan_.transientErrorProb))
        return 0;
    ++stats_.transientErrors;
    const int err = nextIsEintr_ ? KGSL_EINTR : KGSL_EAGAIN;
    nextIsEintr_ = !nextIsEintr_;
    emit(FaultKind::TransientError, std::uint64_t(err));
    return -err;
}

std::uint32_t
FaultInjector::competitorsHolding(std::uint32_t groupid) const
{
    std::uint32_t held = 0;
    for (const CompetingProfiler &p : plan_.competitors)
        if (p.groupid == groupid && eq_.now() < p.exitTime)
            held += p.registers;
    return held;
}

bool
FaultInjector::tryReserve(std::uint32_t groupid)
{
    const auto cap = plan_.groupRegisters.find(groupid);
    if (cap != plan_.groupRegisters.end()) {
        const std::uint32_t used =
            held_[groupid] + competitorsHolding(groupid);
        if (used >= cap->second) {
            ++stats_.busyDenials;
            emit(FaultKind::CounterBusy, groupid);
            return false;
        }
    }
    ++held_[groupid];
    return true;
}

void
FaultInjector::release(std::uint32_t groupid)
{
    auto it = held_.find(groupid);
    if (it == held_.end() || it->second == 0) {
        warn("FaultInjector: release of unheld group %u", groupid);
        return;
    }
    --it->second;
}

std::uint32_t
FaultInjector::heldRegisters() const
{
    std::uint32_t total = 0;
    for (const auto &[group, n] : held_)
        total += n;
    return total;
}

std::uint64_t
FaultInjector::resetEpoch()
{
    std::uint64_t epoch = 0;
    for (SimTime t : plan_.deviceResets)
        if (t <= eq_.now())
            ++epoch;
    while (announcedEpoch_ < epoch) {
        ++announcedEpoch_;
        ++stats_.deviceResets;
        emit(FaultKind::DeviceReset, announcedEpoch_);
    }
    return epoch;
}

void
FaultInjector::transform(gpu::CounterTotals &totals)
{
    if (plan_.powerCollapseInterval > SimTime()) {
        const std::int64_t periods =
            eq_.now().ns() / plan_.powerCollapseInterval.ns();
        if (periods > collapsePeriods_) {
            // The GPU slept (possibly several times) since the last
            // read; all counters restarted from zero. Readouts are
            // lazy, so the rebase point is the first read after the
            // boundary — work submitted in between is lost, exactly
            // like a real SLUMBER exit.
            const std::uint64_t crossed =
                std::uint64_t(periods - collapsePeriods_);
            collapsePeriods_ = periods;
            collapseBaseline_ = totals;
            everCollapsed_ = true;
            stats_.powerCollapses += crossed;
            emit(FaultKind::PowerCollapse, crossed);
        }
        if (everCollapsed_)
            for (std::size_t i = 0; i < totals.size(); ++i)
                totals[i] -= collapseBaseline_[i];
    }
    if (plan_.wrap32) {
        // The physical registers are 32 bits wide. The configurable
        // offset models counts accumulated before the attack started;
        // a power collapse clears it along with everything else.
        const std::uint64_t bias =
            everCollapsed_ ? 0 : plan_.wrap32Offset;
        for (std::uint64_t &v : totals)
            v = (v + bias) & 0xffffffffull;
    }
}

} // namespace gpusc::kgsl
