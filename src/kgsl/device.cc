#include "kgsl/device.h"

#include "util/logging.h"

namespace gpusc::kgsl {

KgslDevice::KgslDevice(gpu::RenderEngine &engine,
                       const SecurityPolicy &policy)
    : engine_(engine), policy_(&policy)
{
}

int
KgslDevice::open(const ProcessContext &proc)
{
    if (!policy_->allowOpen(proc)) {
        notePolicyDenial(proc, "open");
        return -KGSL_EACCES;
    }
    const int fd = nextFd_++;
    OpenFile file{proc, {}};
    // A descriptor belongs to the reset epoch it was opened in; after
    // a GPU hang recovery it turns ENODEV until the process reopens.
    file.epoch = injector_ ? injector_->resetEpoch() : 0;
    files_.emplace(fd, std::move(file));
    return fd;
}

void
KgslDevice::dropReservations(OpenFile &file)
{
    if (injector_ && !file.stale)
        for (const auto &[groupid, countable] : file.reservations)
            injector_->release(groupid);
    file.reservations.clear();
}

int
KgslDevice::close(int fd)
{
    auto it = files_.find(fd);
    if (it == files_.end())
        return -KGSL_EBADF;
    dropReservations(it->second);
    files_.erase(it);
    return 0;
}

std::size_t
KgslDevice::totalReservations() const
{
    std::size_t n = 0;
    for (const auto &[fd, file] : files_)
        n += file.reservations.size();
    return n;
}

bool
hardwareImplementsCounter(std::uint32_t groupid, std::uint32_t countable)
{
    // The selected 11 countables...
    if (gpu::selectedFromId({groupid, countable}))
        return true;
    // ...plus the rest of each group's countable space (real groups
    // have a few dozen countables; we expose a plausible range so the
    // enumeration step of §3.3 has something to iterate over).
    switch (groupid) {
      case KGSL_PERFCOUNTER_GROUP_VPC:
        return countable < 24;
      case KGSL_PERFCOUNTER_GROUP_RAS:
        return countable < 12;
      case KGSL_PERFCOUNTER_GROUP_LRZ:
        return countable < 26;
      case KGSL_PERFCOUNTER_GROUP_CP:
      case KGSL_PERFCOUNTER_GROUP_SP:
        return countable < 32;
      default:
        return false;
    }
}

int
KgslDevice::doPerfcounterGet(OpenFile &file, kgsl_perfcounter_get *arg)
{
    if (!arg)
        return -KGSL_EFAULT;
    if (!hardwareImplementsCounter(arg->groupid, arg->countable))
        return -KGSL_EINVAL;
    if (!file.reservations.contains({arg->groupid, arg->countable})) {
        // A fresh reservation needs a free physical register in the
        // group (re-GET of a held countable costs nothing, like the
        // refcounted real driver).
        if (injector_ && !injector_->tryReserve(arg->groupid))
            return -KGSL_EBUSY;
        file.reservations.insert({arg->groupid, arg->countable});
    }
    // Real driver returns the register offset; any stable nonzero
    // value preserves the calling convention.
    arg->offset = 0x400 + arg->groupid * 0x40 + arg->countable;
    arg->offset_hi = arg->offset + 1;
    return 0;
}

int
KgslDevice::doPerfcounterPut(OpenFile &file, kgsl_perfcounter_put *arg)
{
    if (!arg)
        return -KGSL_EFAULT;
    if (file.reservations.erase({arg->groupid, arg->countable}) &&
        injector_)
        injector_->release(arg->groupid);
    return 0;
}

int
KgslDevice::doPerfcounterRead(OpenFile &file, kgsl_perfcounter_read *arg)
{
    if (!arg || (arg->count > 0 && !arg->reads))
        return -KGSL_EFAULT;
    gpu::CounterTotals totals{};
    const ReadVerdict verdict =
        policy_->onCounterRead(file.proc, engine_.clock().now());
    if (verdict == ReadVerdict::Throttle) {
        noteDefenseIntervention(file.proc, /*stale=*/false);
        return -KGSL_EAGAIN;
    }
    if (verdict == ReadVerdict::Stale) {
        if (!policy_->staleTotals(file.proc, totals)) {
            // Over budget before anything was ever served: there is
            // no cache to repeat, so the read degrades to EAGAIN.
            noteDefenseIntervention(file.proc, /*stale=*/false);
            return -KGSL_EAGAIN;
        }
        noteDefenseIntervention(file.proc, /*stale=*/true);
    } else {
        // Values are the *global* cumulative hardware registers —
        // this is the leak: the reading process sees work submitted
        // by every app. The fault injector models what the hardware
        // handed the kernel; the policy transform (quantization,
        // noise) is the kernel-side defense applied on top.
        totals = engine_.readAll();
        if (injector_)
            injector_->transform(totals);
        policy_->transformTotals(file.proc, totals);
    }
    for (std::uint32_t i = 0; i < arg->count; ++i) {
        kgsl_perfcounter_read_group &entry = arg->reads[i];
        if (!hardwareImplementsCounter(entry.groupid, entry.countable))
            return -KGSL_EINVAL;
        if (!file.reservations.contains({entry.groupid, entry.countable}))
            return -KGSL_EINVAL; // must PERFCOUNTER_GET first
        const auto sel =
            gpu::selectedFromId({entry.groupid, entry.countable});
        // Countables outside the modelled set read as a constant; the
        // attack never uses them.
        entry.value = sel ? totals[*sel] : 0;
    }
    return 0;
}

void
KgslDevice::setTelemetry(obs::Telemetry *tel)
{
    telemetry_ = tel;
    if (!tel) {
        ioctlTimer_ = obs::StageTimer();
        ioctlCallsCtr_ = ioctlErrorsCtr_ = policyDenialsCtr_ =
            readsThrottledCtr_ = readsStaleCtr_ = nullptr;
        return;
    }
    ioctlTimer_ = obs::StageTimer(tel, "kgsl.ioctl");
    ioctlCallsCtr_ = &tel->metrics.counter("kgsl.ioctl.calls");
    ioctlErrorsCtr_ = &tel->metrics.counter("kgsl.ioctl.errors");
    policyDenialsCtr_ = &tel->metrics.counter("kgsl.policy_denials");
    readsThrottledCtr_ = &tel->metrics.counter("kgsl.reads_throttled");
    readsStaleCtr_ = &tel->metrics.counter("kgsl.reads_stale");
}

void
KgslDevice::noteDefenseIntervention(const ProcessContext &proc,
                                    bool stale)
{
    if (!telemetry_)
        return;
    (stale ? readsStaleCtr_ : readsThrottledCtr_)->inc();
    telemetry_->audit.record(engine_.clock().now(), obs::Stage::Kgsl,
                             stale ? obs::Decision::StaleServed
                                   : obs::Decision::ThrottledRead,
                             proc.seContext);
}

void
KgslDevice::notePolicyDenial(const ProcessContext &proc,
                             const char *what)
{
    ++policyDenials_;
    if (!telemetry_)
        return;
    policyDenialsCtr_->inc();
    // The denied verb and the caller's SELinux domain make defended
    // runs auditable: the label reads e.g. "perfcounter-get
    // untrusted_app".
    telemetry_->audit.record(engine_.clock().now(), obs::Stage::Kgsl,
                             obs::Decision::PolicyDenied,
                             std::string(what) + " " + proc.seContext);
}

int
KgslDevice::ioctl(int fd, unsigned long request, void *arg)
{
    if (!ioctlCallsCtr_)
        return ioctlDispatch(fd, request, arg);
    ioctlCallsCtr_->inc();
    const obs::StageTimer::Scope span =
        ioctlTimer_.scoped(engine_.clock().now());
    const int rc = ioctlDispatch(fd, request, arg);
    if (rc != 0)
        ioctlErrorsCtr_->inc();
    return rc;
}

int
KgslDevice::ioctlDispatch(int fd, unsigned long request, void *arg)
{
    auto it = files_.find(fd);
    if (it == files_.end())
        return -KGSL_EBADF;
    OpenFile &file = it->second;

    ++ioctlCount_;
    if (injector_ && !file.stale &&
        injector_->resetEpoch() > file.epoch) {
        // GPU hang recovery tore the context down: the kernel freed
        // the descriptor's counter registers, and the fd answers
        // ENODEV until the process reopens the device.
        dropReservations(file);
        file.stale = true;
    }
    if (file.stale)
        return -KGSL_ENODEV;
    if (!policy_->allowIoctl(file.proc, request)) {
        notePolicyDenial(file.proc,
                         request == IOCTL_KGSL_PERFCOUNTER_GET
                             ? "perfcounter-get"
                         : request == IOCTL_KGSL_PERFCOUNTER_PUT
                             ? "perfcounter-put"
                         : request == IOCTL_KGSL_PERFCOUNTER_READ
                             ? "perfcounter-read"
                             : "ioctl");
        return -KGSL_EPERM;
    }
    if (injector_ && (request == IOCTL_KGSL_PERFCOUNTER_GET ||
                      request == IOCTL_KGSL_PERFCOUNTER_READ))
        // PUT is exempt: cleanup must stay reliable or every failure
        // path would leak reservations.
        if (int err = injector_->ioctlFault(); err != 0)
            return err;

    if (request == IOCTL_KGSL_PERFCOUNTER_GET)
        return doPerfcounterGet(file,
                                static_cast<kgsl_perfcounter_get *>(arg));
    if (request == IOCTL_KGSL_PERFCOUNTER_PUT)
        return doPerfcounterPut(file,
                                static_cast<kgsl_perfcounter_put *>(arg));
    if (request == IOCTL_KGSL_PERFCOUNTER_READ)
        return doPerfcounterRead(
            file, static_cast<kgsl_perfcounter_read *>(arg));
    return -KGSL_EINVAL;
}

double
KgslDevice::gpuBusyPercentage()
{
    return engine_.busyPercent();
}

} // namespace gpusc::kgsl
