/**
 * @file
 * SELinux-style access control over the KGSL device file.
 *
 * Every simulated process carries a security context label; the policy
 * decides whether an open() or a specific ioctl() request is permitted.
 * The default (stock Android) policy allows everything — which is the
 * vulnerability the paper exploits. The RBAC mitigation of §9.2 is an
 * alternative policy that whitelists perf-counter ioctls per role.
 */

#ifndef GPUSC_KGSL_POLICY_H
#define GPUSC_KGSL_POLICY_H

#include <memory>
#include <set>
#include <string>

namespace gpusc::kgsl {

/** Identity of a calling process as the kernel sees it. */
struct ProcessContext
{
    int pid = 0;
    /** SELinux domain, e.g. "untrusted_app", "platform_app",
     *  "gpu_profiler". */
    std::string seContext = "untrusted_app";
};

/** Access-control hook consulted by the device file. */
class SecurityPolicy
{
  public:
    virtual ~SecurityPolicy() = default;

    /** May this process open the GPU device file at all? */
    virtual bool allowOpen(const ProcessContext &proc) const;

    /** May this process issue this ioctl request? */
    virtual bool allowIoctl(const ProcessContext &proc,
                            unsigned long request) const;

    virtual std::string name() const { return "stock"; }
};

/**
 * The shipped Android policy: the device file is world accessible and
 * no ioctl is filtered (paper §4 — this is what makes the attack
 * possible from an unprivileged app).
 */
class StockPolicy : public SecurityPolicy
{
  public:
    std::string name() const override { return "stock"; }
};

/**
 * Role-based access control (paper §9.2): perf-counter ioctls are only
 * allowed for whitelisted SELinux domains; everything else about the
 * device file keeps working so graphics drivers are unaffected.
 */
class RbacPolicy : public SecurityPolicy
{
  public:
    /** @param allowedRoles domains allowed global PC access. */
    explicit RbacPolicy(std::set<std::string> allowedRoles = {
        "gpu_profiler", "platform_app"});

    bool allowIoctl(const ProcessContext &proc,
                    unsigned long request) const override;

    std::string name() const override { return "rbac"; }

  private:
    std::set<std::string> allowedRoles_;
};

} // namespace gpusc::kgsl

#endif // GPUSC_KGSL_POLICY_H
