/**
 * @file
 * SELinux-style access control over the KGSL device file.
 *
 * Every simulated process carries a security context label; the policy
 * decides whether an open() or a specific ioctl() request is permitted.
 * The default (stock Android) policy allows everything — which is the
 * vulnerability the paper exploits. The RBAC mitigation of §9.2 is an
 * alternative policy that whitelists perf-counter ioctls per role.
 *
 * Beyond the allow/deny gates, a policy may also *degrade* the
 * counter channel (the §9-adjacent defenses measured by the arena):
 * the device consults `onCounterRead` before serving each
 * IOCTL_KGSL_PERFCOUNTER_READ and `transformTotals` on every served
 * value set. The base class implements both as no-ops so existing
 * policies are untouched; kgsl::DefendedPolicy (kgsl/defense.h)
 * implements rate limiting, quantization and noise injection on top
 * of these hooks.
 */

#ifndef GPUSC_KGSL_POLICY_H
#define GPUSC_KGSL_POLICY_H

#include <memory>
#include <set>
#include <string>

#include "gpu/counters.h"
#include "util/sim_time.h"

namespace gpusc::kgsl {

/** Identity of a calling process as the kernel sees it. */
struct ProcessContext
{
    int pid = 0;
    /** SELinux domain, e.g. "untrusted_app", "platform_app",
     *  "gpu_profiler". */
    std::string seContext = "untrusted_app";
};

/** What the active policy decided about one PERFCOUNTER_READ. */
enum class ReadVerdict : std::uint8_t
{
    Allow,    ///< serve fresh hardware values
    Throttle, ///< over budget: fail the ioctl with EAGAIN
    Stale,    ///< over budget: serve the last cached values
};

/** Access-control hook consulted by the device file. */
class SecurityPolicy
{
  public:
    virtual ~SecurityPolicy() = default;

    /** May this process open the GPU device file at all? */
    virtual bool allowOpen(const ProcessContext &proc) const;

    /** May this process issue this ioctl request? */
    virtual bool allowIoctl(const ProcessContext &proc,
                            unsigned long request) const;

    /**
     * Rate-limit gate, consulted once per PERFCOUNTER_READ that
     * passed allowIoctl. @p now is the kernel's view of sim time.
     * Default: always Allow (no throttling).
     */
    virtual ReadVerdict onCounterRead(const ProcessContext &proc,
                                      SimTime now) const
    {
        (void)proc;
        (void)now;
        return ReadVerdict::Allow;
    }

    /**
     * Serve the caller's cached totals for a Stale verdict.
     * @return false when nothing has been cached yet (the device
     * then fails the read with EAGAIN instead).
     */
    virtual bool staleTotals(const ProcessContext &proc,
                             gpu::CounterTotals &out) const
    {
        (void)proc;
        (void)out;
        return false;
    }

    /**
     * Value transform applied to every *served* read (after the fault
     * injector, i.e. on what the hardware handed the kernel):
     * quantization, noise injection, and the stale-cache fill all
     * live here. Default: identity.
     */
    virtual void transformTotals(const ProcessContext &proc,
                                 gpu::CounterTotals &totals) const
    {
        (void)proc;
        (void)totals;
    }

    virtual std::string name() const { return "stock"; }
};

/**
 * The shipped Android policy: the device file is world accessible and
 * no ioctl is filtered (paper §4 — this is what makes the attack
 * possible from an unprivileged app).
 */
class StockPolicy : public SecurityPolicy
{
  public:
    std::string name() const override { return "stock"; }
};

/**
 * Role-based access control (paper §9.2): perf-counter ioctls are only
 * allowed for whitelisted SELinux domains; everything else about the
 * device file keeps working so graphics drivers are unaffected.
 *
 * Open-time enforcement is a separate dial: the default keeps the
 * device node world-openable (graphics clients need it), while
 * OpenMode::RestrictToRoles models the stricter "profiling node"
 * split where unprivileged domains cannot open the file at all. Both
 * denial paths are audited identically by the device (PolicyDenied +
 * the kgsl.policy_denials counter).
 */
class RbacPolicy : public SecurityPolicy
{
  public:
    /** Who may open() the device file at all. */
    enum class OpenMode : std::uint8_t
    {
        AllowAll,        ///< world-openable (graphics keeps working)
        RestrictToRoles, ///< only whitelisted domains may open
    };

    /** @param allowedRoles domains allowed global PC access. */
    explicit RbacPolicy(std::set<std::string> allowedRoles = {
        "gpu_profiler", "platform_app"},
        OpenMode openMode = OpenMode::AllowAll);

    bool allowOpen(const ProcessContext &proc) const override;

    bool allowIoctl(const ProcessContext &proc,
                    unsigned long request) const override;

    std::string name() const override { return "rbac"; }

    OpenMode openMode() const { return openMode_; }

  private:
    std::set<std::string> allowedRoles_;
    OpenMode openMode_;
};

} // namespace gpusc::kgsl

#endif // GPUSC_KGSL_POLICY_H
