/**
 * @file
 * Scriptable fault injection for the simulated KGSL device.
 *
 * Real Adreno drivers are hostile to long-running profilers: perf
 * counters reset to zero when the GPU power-collapses (SLUMBER),
 * physical counter registers are scarce so PERFCOUNTER_GET can fail
 * with EBUSY while another profiler holds a countable, hardware
 * registers are 32 bits wide and wrap, ioctls can be interrupted
 * (EINTR/EAGAIN), and GPU hang recovery invalidates every open
 * descriptor until the process reopens the device. A FaultPlan
 * scripts any combination of these against KgslDevice so the attack's
 * recovery paths (attack::PcSampler, attack::ChangeDetector) can be
 * exercised deterministically.
 *
 * All randomness is drawn from an explicitly seeded Rng, so a faulty
 * run is exactly reproducible — and recordable/replayable through
 * src/trace/ (fault events become v2 trace records).
 */

#ifndef GPUSC_KGSL_FAULT_INJECTOR_H
#define GPUSC_KGSL_FAULT_INJECTOR_H

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "gpu/counters.h"
#include "util/event_queue.h"
#include "util/rng.h"

namespace gpusc::kgsl {

/** Category of one injected fault occurrence. */
enum class FaultKind : std::uint8_t
{
    TransientError = 1, ///< ioctl failed EINTR/EAGAIN (detail: errno)
    CounterBusy = 2,    ///< PERFCOUNTER_GET denied EBUSY (detail: group)
    PowerCollapse = 3,  ///< counters zeroed (detail: periods crossed)
    DeviceReset = 4,    ///< fds invalidated (detail: new epoch)
};

/** Stable name for logs/benches, e.g. "PowerCollapse". */
const char *faultKindString(FaultKind k);

/** One fault occurrence, as observed at the device interface. */
struct FaultEvent
{
    SimTime time;
    FaultKind kind = FaultKind::TransientError;
    std::uint64_t detail = 0;
};

/** A competing profiler process holding physical counter registers
 *  in one group until it exits. */
struct CompetingProfiler
{
    std::uint32_t groupid = 0;
    std::uint32_t registers = 0;
    /** The process exits (releasing its registers) at this time. */
    SimTime exitTime = SimTime::max();
};

/** Everything a fault-injection scenario can script. */
struct FaultPlan
{
    /** Probability that a PERFCOUNTER_GET/_READ ioctl fails with a
     *  transient EINTR/EAGAIN (retryable). */
    double transientErrorProb = 0.0;

    /** GPU power collapse (SLUMBER) period; every boundary zeroes all
     *  counter values. <= 0 disables. */
    SimTime powerCollapseInterval{};

    /** Model 32-bit physical counter registers: reported values
     *  truncate to 32 bits and wrap. */
    bool wrap32 = false;
    /** Pre-attack register contents in wrap32 mode (bias so the first
     *  wraparound happens early in a session). Cleared by the first
     *  power collapse, like the rest of the accumulated count. */
    std::uint64_t wrap32Offset = 0;

    /** Physical registers available per counter group; groups absent
     *  from the map are unlimited (the no-fault default). */
    std::map<std::uint32_t, std::uint32_t> groupRegisters;
    /** Competing profilers consuming registers until they exit. */
    std::vector<CompetingProfiler> competitors;

    /** Device reset (GPU hang recovery) epochs: at each time every
     *  open descriptor turns ENODEV until reopened. */
    std::vector<SimTime> deviceResets;

    std::uint64_t seed = 0x5eedfau;

    /** @return true if any fault source is enabled. */
    bool any() const
    {
        return transientErrorProb > 0.0 ||
               powerCollapseInterval > SimTime() || wrap32 ||
               !groupRegisters.empty() || !competitors.empty() ||
               !deviceResets.empty();
    }
};

/**
 * Executes a FaultPlan against KgslDevice. The device consults the
 * injector on every open/ioctl; the injector arbitrates counter
 * registers, transforms read values and accounts every injected
 * fault.
 */
class FaultInjector
{
  public:
    /** Totals per fault category (plus EBUSY retries observed). */
    struct Stats
    {
        std::uint64_t transientErrors = 0;
        std::uint64_t busyDenials = 0;
        std::uint64_t powerCollapses = 0;
        std::uint64_t deviceResets = 0;
    };

    FaultInjector(EventQueue &eq, FaultPlan plan);

    const FaultPlan &plan() const { return plan_; }
    const Stats &stats() const { return stats_; }

    /** Observe every injected fault (trace recording hook). */
    void setFaultListener(std::function<void(const FaultEvent &)> fn)
    {
        listener_ = std::move(fn);
    }

    // --- Hooks called by KgslDevice --------------------------------

    /**
     * Transient-fault gate for a perf-counter GET/READ ioctl.
     * @return 0, or the negative errno to inject (-EINTR/-EAGAIN).
     */
    int ioctlFault();

    /**
     * Arbitrate one physical counter register in @p groupid.
     * @return true if a register is free (now held by the caller).
     */
    bool tryReserve(std::uint32_t groupid);

    /** Return one register of @p groupid to the free pool. */
    void release(std::uint32_t groupid);

    /** Registers currently held through tryReserve(), all groups. */
    std::uint32_t heldRegisters() const;

    /**
     * Device-reset epoch at the current time: the number of scripted
     * reset times that have passed. A descriptor opened in an older
     * epoch is invalid (ENODEV).
     */
    std::uint64_t resetEpoch();

    /**
     * Apply value faults to a counter readout: zero-rebase after any
     * power collapse crossed since the last read, then 32-bit
     * truncation. Idempotent per point in time.
     */
    void transform(gpu::CounterTotals &totals);

  private:
    void emit(FaultKind kind, std::uint64_t detail);
    std::uint32_t competitorsHolding(std::uint32_t groupid) const;

    EventQueue &eq_;
    FaultPlan plan_;
    Rng rng_;
    Stats stats_;
    std::function<void(const FaultEvent &)> listener_;
    /** Alternates EINTR/EAGAIN for variety in the transient stream. */
    bool nextIsEintr_ = true;
    /** Registers held by the device's clients, per group. */
    std::map<std::uint32_t, std::uint32_t> held_;
    /** Completed power-collapse periods at the last transform. */
    std::int64_t collapsePeriods_ = 0;
    /** Raw totals at the most recent collapse (zero-rebase point). */
    gpu::CounterTotals collapseBaseline_{};
    bool everCollapsed_ = false;
    /** Reset epochs already accounted in stats. */
    std::uint64_t announcedEpoch_ = 0;
};

} // namespace gpusc::kgsl

#endif // GPUSC_KGSL_FAULT_INJECTOR_H
