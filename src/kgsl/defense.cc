#include "kgsl/defense.h"

#include <algorithm>
#include <cstdio>

#include "util/rng.h"

namespace gpusc::kgsl {

namespace {

// Modeled per-operation defender CPU costs (ns). Fixed constants so
// overhead accounting is deterministic (no wall-clock; lint D1) yet
// proportional to the real work each dial implies: an RBAC set
// lookup, a bucket refill, a cache copy, an integer floor, an RNG
// draw.
constexpr std::uint64_t kCheckNs = 18;
constexpr std::uint64_t kGateNs = 32;
constexpr std::uint64_t kThrottleNs = 12;
constexpr std::uint64_t kStaleNs = 45;
constexpr std::uint64_t kQuantNs = 6;
constexpr std::uint64_t kNoiseNs = 22;

} // namespace

bool
DefenseConfig::any() const
{
    return rbac || restrictOpen || readsPerSecond > 0.0 ||
           quantStep > 1 || noiseAmplitude > 0;
}

std::string
DefenseConfig::label() const
{
    std::string out;
    char buf[48];
    const auto part = [&out](const char *p) {
        if (!out.empty())
            out += '+';
        out += p;
    };
    if (rbac)
        part(restrictOpen ? "rbac-open" : "rbac");
    else if (restrictOpen)
        part("open-gate");
    if (readsPerSecond > 0.0) {
        std::snprintf(buf, sizeof(buf), "rate%g%s", readsPerSecond,
                      overBudget == OverBudget::Stale ? "-stale" : "");
        part(buf);
    }
    if (quantStep > 1) {
        std::snprintf(buf, sizeof(buf), "quant%llu",
                      (unsigned long long)quantStep);
        part(buf);
    }
    if (noiseAmplitude > 0) {
        std::snprintf(buf, sizeof(buf), "noise%llu",
                      (unsigned long long)noiseAmplitude);
        part(buf);
    }
    return out.empty() ? "stock" : out;
}

DefendedPolicy::DefendedPolicy(DefenseConfig cfg)
    : cfg_(std::move(cfg)),
      rbac_(cfg_.rbacRoles, cfg_.restrictOpen
                                ? RbacPolicy::OpenMode::RestrictToRoles
                                : RbacPolicy::OpenMode::AllowAll)
{
}

bool
DefendedPolicy::allowOpen(const ProcessContext &proc) const
{
    if (!cfg_.rbac && !cfg_.restrictOpen)
        return true;
    ++overhead_.accessChecks;
    overhead_.cpuNs += kCheckNs;
    return rbac_.allowOpen(proc);
}

bool
DefendedPolicy::allowIoctl(const ProcessContext &proc,
                           unsigned long request) const
{
    if (!cfg_.rbac)
        return true;
    ++overhead_.accessChecks;
    overhead_.cpuNs += kCheckNs;
    return rbac_.allowIoctl(proc, request);
}

DefendedPolicy::ClientState &
DefendedPolicy::clientFor(const ProcessContext &proc, SimTime now) const
{
    ClientState &c = clients_[proc.pid];
    if (!c.primed) {
        c.tokens = cfg_.burst;
        c.lastRefill = now;
        c.primed = true;
    } else if (now > c.lastRefill) {
        const double dt = (now - c.lastRefill).seconds();
        c.tokens = std::min(cfg_.burst,
                            c.tokens + dt * cfg_.readsPerSecond);
        c.lastRefill = now;
    }
    return c;
}

ReadVerdict
DefendedPolicy::onCounterRead(const ProcessContext &proc,
                              SimTime now) const
{
    ++overhead_.readsSeen;
    if (cfg_.readsPerSecond <= 0.0)
        return ReadVerdict::Allow;
    overhead_.cpuNs += kGateNs;
    ClientState &c = clientFor(proc, now);
    if (c.tokens >= 1.0) {
        c.tokens -= 1.0;
        return ReadVerdict::Allow;
    }
    // Over budget. Denied attempts pay the anti-hammering tax: a
    // client that burns inline retries digs its bucket below zero
    // (floored at -burst so recovery stays bounded), while a paced
    // client hovers at the refill rate.
    c.tokens = std::max(c.tokens - cfg_.penaltyTokens, -cfg_.burst);
    if (cfg_.overBudget == DefenseConfig::OverBudget::Stale &&
        c.haveCache)
        return ReadVerdict::Stale;
    ++overhead_.readsThrottled;
    overhead_.cpuNs += kThrottleNs;
    return ReadVerdict::Throttle;
}

bool
DefendedPolicy::staleTotals(const ProcessContext &proc,
                            gpu::CounterTotals &out) const
{
    const auto it = clients_.find(proc.pid);
    if (it == clients_.end() || !it->second.haveCache)
        return false;
    out = it->second.cache;
    ++overhead_.staleServes;
    overhead_.cpuNs += kStaleNs;
    return true;
}

void
DefendedPolicy::transformTotals(const ProcessContext &proc,
                                gpu::CounterTotals &totals) const
{
    ClientState &c = clients_[proc.pid];
    if (cfg_.quantStep > 1) {
        for (std::uint64_t &v : totals)
            v = v / cfg_.quantStep * cfg_.quantStep;
        overhead_.valuesQuantized += totals.size();
        overhead_.cpuNs += kQuantNs * totals.size();
    }
    if (cfg_.noiseAmplitude > 0) {
        // One forked stream per served read: the increments are a
        // pure function of (seed, read index), so a replay with the
        // same read sequence is bit-identical. Increments accumulate
        // (injected GPU work only ever adds), keeping totals
        // monotone.
        Rng rng(forkSeed(cfg_.noiseSeed, servedReads_));
        for (std::size_t i = 0; i < totals.size(); ++i) {
            c.noiseAccum[i] += std::uint64_t(rng.uniformInt(
                0, std::int64_t(cfg_.noiseAmplitude)));
            totals[i] += c.noiseAccum[i];
        }
        overhead_.valuesNoised += totals.size();
        overhead_.cpuNs += kNoiseNs * totals.size();
    }
    ++servedReads_;
    c.cache = totals;
    c.haveCache = true;
}

} // namespace gpusc::kgsl
