/**
 * @file
 * Composable counter-degrading defenses over the KGSL device file.
 *
 * The paper's §9 sketches mitigations that remove the channel; the
 * defenses here instead *degrade* it — the post-Spectre stance of
 * assuming the channel exists and measuring how far coarsening and
 * throttling push residual accuracy down, and what each dial costs
 * the defender. A DefendedPolicy stacks, in this order:
 *
 *   1. RBAC front gate (optional; the §9.2 allow/deny policy,
 *      including the open-time variant),
 *   2. rate limiting: a token bucket per calling process; each served
 *      PERFCOUNTER_READ costs one token, refilled at readsPerSecond.
 *      Over-budget reads either fail with EAGAIN or are served the
 *      last cached values ("stale"), per OverBudget. Denied attempts
 *      pay a small token *penalty* (real limiters tax hammering:
 *      retrying a denied read only digs the bucket deeper), so a
 *      client that paces itself to the allowed cadence sees nearly
 *      the full budget while a retry-storm gets far less,
 *   3. value quantization: served values are floored to a multiple of
 *      quantStep (cumulative counters stay monotone; observed deltas
 *      land on the step lattice ± one step),
 *   4. noise injection: a per-read pseudo-random *increment* drawn
 *      from [0, noiseAmplitude] is accumulated onto every counter.
 *      Injected work only ever adds GPU activity, so totals stay
 *      monotone and the stream never fakes a discontinuity. Draws are
 *      keyed on (seed, served-read index) through forkSeed — replays
 *      are bit-identical.
 *
 * Defender-side cost is *modeled*, not measured (wall-clock reads are
 * banned outside the sanctioned span path — gpusc-lint D1): each
 * bookkeeping step adds a fixed nanosecond constant to
 * DefenseOverhead::cpuNs, so overhead numbers are deterministic and
 * comparable across cells.
 *
 * Thread-safety: policy state (buckets, caches, overhead) is mutable
 * behind the const SecurityPolicy interface. A policy instance
 * belongs to exactly one simulated device, and each parallel-runner
 * shard builds its own device + policy, so access is single-threaded
 * by construction.
 */

#ifndef GPUSC_KGSL_DEFENSE_H
#define GPUSC_KGSL_DEFENSE_H

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "gpu/counters.h"
#include "kgsl/policy.h"
#include "util/sim_time.h"

namespace gpusc::kgsl {

/** Defender-side cost accounting (modeled, deterministic). */
struct DefenseOverhead
{
    /** RBAC access checks evaluated (open + ioctl). */
    std::uint64_t accessChecks = 0;
    /** PERFCOUNTER_READs that reached the rate-limit gate. */
    std::uint64_t readsSeen = 0;
    /** Reads refused with EAGAIN (over budget). */
    std::uint64_t readsThrottled = 0;
    /** Reads served from the stale cache (over budget). */
    std::uint64_t staleServes = 0;
    /** Counter values floored to the quantization lattice. */
    std::uint64_t valuesQuantized = 0;
    /** Counter values that received a noise increment. */
    std::uint64_t valuesNoised = 0;
    /** Modeled defender CPU spent, nanoseconds. */
    std::uint64_t cpuNs = 0;

    bool
    any() const
    {
        return accessChecks != 0 || readsSeen != 0 || cpuNs != 0;
    }

    void
    add(const DefenseOverhead &o)
    {
        accessChecks += o.accessChecks;
        readsSeen += o.readsSeen;
        readsThrottled += o.readsThrottled;
        staleServes += o.staleServes;
        valuesQuantized += o.valuesQuantized;
        valuesNoised += o.valuesNoised;
        cpuNs += o.cpuNs;
    }
};

/**
 * Value-typed spec of a defense stack; a cell of the arena grid.
 * Default-constructed == stock (no defense active).
 */
struct DefenseConfig
{
    /** What a rate limiter does with an over-budget read. */
    enum class OverBudget : std::uint8_t
    {
        Eagain, ///< fail the ioctl with EAGAIN
        Stale,  ///< serve the last cached values
    };

    // --- RBAC front gate (paper §9.2) ---
    bool rbac = false;
    /** Open-time enforcement too (see RbacPolicy::OpenMode). */
    bool restrictOpen = false;
    std::set<std::string> rbacRoles = {"gpu_profiler", "platform_app"};

    // --- Rate limiting ---
    /** Token refill rate; 0 disables the limiter. */
    double readsPerSecond = 0.0;
    /** Bucket capacity (burst allowance). */
    double burst = 4.0;
    /** Token tax per denied attempt (anti-hammering). */
    double penaltyTokens = 0.25;
    OverBudget overBudget = OverBudget::Eagain;

    // --- Value quantization ---
    /** Lattice step served values are floored to; 0/1 disables. */
    std::uint64_t quantStep = 0;

    // --- Noise injection ---
    /** Max per-read additive increment per counter; 0 disables. */
    std::uint64_t noiseAmplitude = 0;
    /** Master seed of the noise stream (forkSeed per read). */
    std::uint64_t noiseSeed = 0x6b67736c646566ULL;

    /** @return true when any dial is active (incl. bare RBAC). */
    bool any() const;

    /** Compact cell name, e.g. "rate64+quant512" ("stock" if none). */
    std::string label() const;
};

/** SecurityPolicy implementing the composable defense stack. */
class DefendedPolicy : public SecurityPolicy
{
  public:
    explicit DefendedPolicy(DefenseConfig cfg);

    bool allowOpen(const ProcessContext &proc) const override;
    bool allowIoctl(const ProcessContext &proc,
                    unsigned long request) const override;
    ReadVerdict onCounterRead(const ProcessContext &proc,
                              SimTime now) const override;
    bool staleTotals(const ProcessContext &proc,
                     gpu::CounterTotals &out) const override;
    void transformTotals(const ProcessContext &proc,
                         gpu::CounterTotals &totals) const override;

    std::string name() const override { return cfg_.label(); }

    const DefenseConfig &config() const { return cfg_; }

    /** Accumulated defender cost since construction. */
    const DefenseOverhead &overhead() const { return overhead_; }

  private:
    struct ClientState
    {
        double tokens = 0.0;
        SimTime lastRefill;
        bool primed = false;
        bool haveCache = false;
        gpu::CounterTotals cache{};
        /** Accumulated noise per counter (monotone running sums). */
        gpu::CounterTotals noiseAccum{};
    };

    ClientState &clientFor(const ProcessContext &proc, SimTime now) const;

    DefenseConfig cfg_;
    RbacPolicy rbac_;
    // Mutable under the const policy interface; see the file comment
    // for why this is single-threaded by construction.
    mutable std::map<int, ClientState> clients_;
    mutable std::uint64_t servedReads_ = 0;
    mutable DefenseOverhead overhead_;
};

} // namespace gpusc::kgsl

#endif // GPUSC_KGSL_DEFENSE_H
