/**
 * @file
 * Live capture tap: funnels sampler readings and ground-truth input
 * events into a TraceWriter while an experiment runs.
 *
 * The recorder is wired by eval::ExperimentRunner (record mode): it
 * taps attack::PcSampler through Eavesdropper::setReadingTap and the
 * victim device's input surfaces (typist key presses, IME popup
 * renders, app switches), producing a self-contained labelled .gpct
 * file for any experiment. IO failures are sticky and reported at
 * finish(); they never interrupt the live run.
 */

#ifndef GPUSC_TRACE_TRACE_RECORDER_H
#define GPUSC_TRACE_TRACE_RECORDER_H

#include <string>

#include "attack/eavesdropper.h"
#include "trace/trace_writer.h"

namespace gpusc::trace {

/** Records one live eavesdropping session to a trace file. */
class TraceRecorder
{
  public:
    /** Open @p path for recording under @p header. */
    TraceError open(const std::string &path,
                    const TraceHeader &header);

    /** Tap @p e's sampler so every reading is recorded. */
    void attachEavesdropper(attack::Eavesdropper &e);

    // Ground-truth feeds (wired to device/typist listeners).
    void onReading(const attack::Reading &r);
    /** Injected-fault annotation (wired to kgsl::FaultInjector). */
    void onFault(const kgsl::FaultEvent &ev);
    void onKeyPress(SimTime t, char ch);
    void onBackspace(SimTime t);
    void onPageSwitch(SimTime t, int page);
    void onAppSwitch(SimTime t, bool toTarget);
    void onPopupShow(SimTime t, char ch);
    void trialBegin(SimTime t, const std::string &truth);
    void trialEnd(SimTime t);

    /** Flush + close; @return first sticky IO error, if any. */
    TraceError finish();

    bool recording() const { return writer_.isOpen(); }
    std::uint64_t recordCount() const
    {
        return writer_.recordCount();
    }
    std::uint64_t readingCount() const { return readings_; }

  private:
    TraceWriter writer_;
    std::uint64_t readings_ = 0;
};

} // namespace gpusc::trace

#endif // GPUSC_TRACE_TRACE_RECORDER_H
