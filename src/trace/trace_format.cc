#include "trace/trace_format.h"

namespace gpusc::trace {

const char *
traceErrorString(TraceError e)
{
    switch (e) {
      case TraceError::None: return "None";
      case TraceError::IoOpen: return "IoOpen";
      case TraceError::IoRead: return "IoRead";
      case TraceError::IoWrite: return "IoWrite";
      case TraceError::NotOpen: return "NotOpen";
      case TraceError::BadMagic: return "BadMagic";
      case TraceError::BadVersion: return "BadVersion";
      case TraceError::TruncatedHeader: return "TruncatedHeader";
      case TraceError::HeaderCrcMismatch: return "HeaderCrcMismatch";
      case TraceError::TruncatedRecord: return "TruncatedRecord";
      case TraceError::RecordCrcMismatch: return "RecordCrcMismatch";
      case TraceError::BadRecordKind: return "BadRecordKind";
      case TraceError::BadRecordPayload: return "BadRecordPayload";
    }
    return "Unknown";
}

bool
knownRecordKind(std::uint8_t k, std::uint16_t version)
{
    const std::uint8_t last = version >= 2
                                  ? std::uint8_t(RecordKind::Fault)
                                  : std::uint8_t(RecordKind::TrialEnd);
    return k >= std::uint8_t(RecordKind::Reading) && k <= last;
}

std::vector<std::uint8_t>
encodeHeader(const TraceHeader &h)
{
    ByteWriter payload;
    payload.str16(h.deviceKey);
    payload.str16(h.device.phone);
    payload.str16(h.device.keyboard);
    payload.str16(h.device.app);
    payload.str16(h.device.resolution);
    payload.i32(h.device.refreshHz);
    payload.i32(h.device.osVersion);
    payload.f64(h.device.noiseSigma);
    payload.u8(h.device.popupsDisabled ? 1 : 0);
    payload.i64(h.device.notificationMeanInterval.ns());
    payload.u64(h.device.seed);
    payload.i64(h.samplingInterval.ns());
    payload.u64(h.seed);

    ByteWriter out;
    out.u32(kTraceMagic);
    out.u16(kTraceVersion);
    out.u16(std::uint16_t(payload.size()));
    out.raw(payload.bytes().data(), payload.size());
    out.u32(crc32(payload.bytes()));
    return out.take();
}

TraceError
decodeHeader(ByteReader &reader, TraceHeader &out)
{
    const std::uint32_t magic = reader.u32();
    if (!reader.ok())
        return TraceError::TruncatedHeader;
    if (magic != kTraceMagic)
        return TraceError::BadMagic;
    const std::uint16_t version = reader.u16();
    if (!reader.ok())
        return TraceError::TruncatedHeader;
    if (version < kTraceMinVersion || version > kTraceVersion)
        return TraceError::BadVersion;
    out.version = version;
    const std::uint16_t payloadLen = reader.u16();
    if (!reader.ok() || reader.remaining() < payloadLen + 4u)
        return TraceError::TruncatedHeader;

    std::vector<std::uint8_t> payload(payloadLen);
    reader.raw(payload.data(), payloadLen);
    const std::uint32_t storedCrc = reader.u32();
    if (!reader.ok())
        return TraceError::TruncatedHeader;
    if (crc32(payload) != storedCrc)
        return TraceError::HeaderCrcMismatch;

    ByteReader p(payload);
    out.deviceKey = p.str16();
    out.device.phone = p.str16();
    out.device.keyboard = p.str16();
    out.device.app = p.str16();
    out.device.resolution = p.str16();
    out.device.refreshHz = p.i32();
    out.device.osVersion = p.i32();
    out.device.noiseSigma = p.f64();
    out.device.popupsDisabled = p.u8() != 0;
    out.device.notificationMeanInterval = SimTime::fromNs(p.i64());
    out.device.seed = p.u64();
    out.samplingInterval = SimTime::fromNs(p.i64());
    out.seed = p.u64();
    if (!p.ok() || !p.atEnd())
        return TraceError::TruncatedHeader;
    return TraceError::None;
}

std::vector<std::uint8_t>
encodeRecord(const TraceRecord &r)
{
    ByteWriter payload;
    payload.i64(r.time.ns());
    switch (r.kind) {
      case RecordKind::Reading:
        for (std::uint64_t v : r.reading.totals)
            payload.u64(v);
        break;
      case RecordKind::KeyPress:
      case RecordKind::PopupShow:
        payload.u8(std::uint8_t(r.ch));
        break;
      case RecordKind::PageSwitch:
        payload.u8(std::uint8_t(r.page));
        break;
      case RecordKind::AppSwitch:
        payload.u8(r.toTarget ? 1 : 0);
        break;
      case RecordKind::TrialBegin:
        payload.str16(r.text);
        break;
      case RecordKind::Fault:
        payload.u8(std::uint8_t(r.fault));
        payload.u64(r.faultDetail);
        break;
      case RecordKind::Backspace:
      case RecordKind::TrialEnd:
        break;
    }

    ByteWriter out;
    out.u8(std::uint8_t(r.kind));
    out.u32(std::uint32_t(payload.size()));
    out.raw(payload.bytes().data(), payload.size());
    // CRC covers the frame prefix too, so a corrupted length or kind
    // byte is caught as well.
    const std::uint32_t crc =
        crc32(payload.bytes(),
              crc32(out.bytes().data(), 5 /* kind + length */));
    out.u32(crc);
    return out.take();
}

TraceError
decodePayload(std::uint8_t kind, const std::uint8_t *payload,
              std::size_t size, TraceRecord &out,
              std::uint16_t version)
{
    if (!knownRecordKind(kind, version))
        return TraceError::BadRecordKind;
    out = TraceRecord{};
    out.kind = RecordKind(kind);
    ByteReader p(payload, size);
    out.time = SimTime::fromNs(p.i64());
    switch (out.kind) {
      case RecordKind::Reading:
        out.reading.time = out.time;
        for (std::uint64_t &v : out.reading.totals)
            v = p.u64();
        break;
      case RecordKind::KeyPress:
      case RecordKind::PopupShow:
        out.ch = char(p.u8());
        break;
      case RecordKind::PageSwitch:
        out.page = int(p.u8());
        break;
      case RecordKind::AppSwitch:
        out.toTarget = p.u8() != 0;
        break;
      case RecordKind::TrialBegin:
        out.text = p.str16();
        break;
      case RecordKind::Fault: {
        const std::uint8_t fk = p.u8();
        if (fk < std::uint8_t(kgsl::FaultKind::TransientError) ||
            fk > std::uint8_t(kgsl::FaultKind::DeviceReset))
            return TraceError::BadRecordPayload;
        out.fault = kgsl::FaultKind(fk);
        out.faultDetail = p.u64();
        break;
      }
      case RecordKind::Backspace:
      case RecordKind::TrialEnd:
        break;
    }
    if (!p.ok() || !p.atEnd())
        return TraceError::BadRecordPayload;
    return TraceError::None;
}

} // namespace gpusc::trace
