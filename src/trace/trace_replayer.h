/**
 * @file
 * Deterministic replay: runs a recorded counter trace back through
 * the attack's inference pipeline without a device.
 *
 * The replayer feeds Reading records into a detached
 * attack::Eavesdropper (no RenderEngine, no KgslDevice, no event
 * queue), so for identical reading streams the inferred output is
 * bit-identical to the live run that recorded the trace. Trial
 * boundary records carry the ground truth, letting the replayer
 * score each recorded credential exactly like
 * eval::ExperimentRunner::runTrial does live.
 */

#ifndef GPUSC_TRACE_TRACE_REPLAYER_H
#define GPUSC_TRACE_TRACE_REPLAYER_H

#include <memory>
#include <string>
#include <vector>

#include "attack/eavesdropper.h"
#include "attack/trace_inference.h"
#include "trace/trace_reader.h"

namespace gpusc::trace {

/** Replays recorded traces through the online inference pipeline. */
class TraceReplayer
{
  public:
    /** Replay against a known signature model. */
    explicit TraceReplayer(const attack::SignatureModel &model,
                           attack::Eavesdropper::Params params = {});

    /**
     * Replay against a preloaded store: the model is resolved by the
     * trace header's device key, falling back to the online
     * device-recognition path when the key is absent.
     */
    explicit TraceReplayer(const attack::ModelStore &store,
                           attack::Eavesdropper::Params params = {});

    /** One recorded credential trial, scored after replay. */
    struct Trial
    {
        std::string truth{};
        std::string inferred{};
        SimTime begin{};
        SimTime end{};
    };

    /** Open + replay a whole file. */
    TraceError replayFile(const std::string &path);

    /** Replay from an already-open reader (streaming). */
    TraceError replay(TraceReader &reader);

    /** Per-trial ground truth vs. replayed inference. */
    const std::vector<Trial> &trials() const { return trials_; }

    /** The pipeline state after replay (events, counters, text). */
    const attack::Eavesdropper &eavesdropper() const
    {
        return *eavesdropper_;
    }

    /** Header of the last replayed trace. */
    const TraceHeader &header() const { return header_; }

    std::uint64_t readingsReplayed() const { return readings_; }
    /** Fault-annotation records seen in the last replay (v2+). */
    std::uint64_t faultsSeen() const { return faults_; }

    /**
     * Whole-trace dynamic-programming inference over the same
     * recorded changes (attack::TraceInference) — the offline
     * accuracy/timeliness counterpart of replay().
     */
    std::vector<attack::InferredKey>
    inferOffline(const std::string &path, TraceError *errOut = nullptr);

  private:
    const attack::SignatureModel *model_ = nullptr;
    const attack::ModelStore *store_ = nullptr;
    attack::Eavesdropper::Params params_;
    std::unique_ptr<attack::Eavesdropper> eavesdropper_;
    TraceHeader header_{};
    std::vector<Trial> trials_;
    std::uint64_t readings_ = 0;
    std::uint64_t faults_ = 0;
};

} // namespace gpusc::trace

#endif // GPUSC_TRACE_TRACE_REPLAYER_H
