/**
 * @file
 * Typed error codes for the trace capture & replay subsystem.
 *
 * Every failure mode of reading/writing a recorded counter trace maps
 * to one enumerator, so corrupt or truncated files surface as values
 * callers can branch on — never as crashes or undefined behaviour.
 */

#ifndef GPUSC_TRACE_TRACE_ERROR_H
#define GPUSC_TRACE_TRACE_ERROR_H

namespace gpusc::trace {

/** Outcome of a trace IO operation. */
enum class TraceError
{
    None = 0,          ///< success
    IoOpen,            ///< file could not be opened
    IoRead,            ///< short read / stream error mid-file
    IoWrite,           ///< write or flush failed (disk full, ...)
    NotOpen,           ///< operation on a closed writer/reader
    BadMagic,          ///< not a trace file
    BadVersion,        ///< written by an unknown format version
    TruncatedHeader,   ///< header ends early
    HeaderCrcMismatch, ///< header bytes corrupted
    TruncatedRecord,   ///< record frame ends early (torn write)
    RecordCrcMismatch, ///< record payload corrupted
    BadRecordKind,     ///< unknown record type byte
    BadRecordPayload,  ///< payload malformed for its kind
};

/** Stable human-readable name, e.g. "RecordCrcMismatch". */
const char *traceErrorString(TraceError e);

} // namespace gpusc::trace

#endif // GPUSC_TRACE_TRACE_ERROR_H
