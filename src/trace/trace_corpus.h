/**
 * @file
 * Directory manager for recorded trace corpora.
 *
 * A corpus is a directory of .gpct files. The manager enumerates
 * them, validates headers, aggregates per-device statistics, and —
 * because traces interleave ground-truth labels with the counter
 * stream — harvests attack::TrainingCapture data so signature models
 * can be trained from recordings instead of live bot sessions
 * (train once, replay everywhere).
 */

#ifndef GPUSC_TRACE_TRACE_CORPUS_H
#define GPUSC_TRACE_TRACE_CORPUS_H

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "attack/trainer.h"
#include "trace/trace_reader.h"

namespace gpusc::trace {

/** Aggregate counts over one trace (or a whole corpus). */
struct TraceStats
{
    std::uint64_t records = 0;
    std::uint64_t readings = 0;
    std::uint64_t keyPresses = 0;
    std::uint64_t backspaces = 0;
    std::uint64_t popupShows = 0;
    std::uint64_t pageSwitches = 0;
    std::uint64_t appSwitches = 0;
    std::uint64_t trials = 0;
    /** Injected-fault annotations (v2+ traces). */
    std::uint64_t faults = 0;
    /** Last record timestamp (sim time spanned by the trace). */
    SimTime duration{};
};

/** One enumerated trace file. */
struct TraceInfo
{
    std::string path{};
    TraceHeader header{};
    TraceStats stats{};
};

/** Enumerates, filters and aggregates a directory of traces. */
class TraceCorpus
{
  public:
    /**
     * Scan and fully validate one file; intact traces are added,
     * corrupt ones are recorded under rejected().
     * @return the file's validation result.
     */
    TraceError addFile(const std::string &path);

    /**
     * Scan @p dir (non-recursive) for *.gpct files in path order.
     * @return IoOpen if the directory cannot be listed.
     */
    TraceError scanDirectory(const std::string &dir);

    const std::vector<TraceInfo> &traces() const { return traces_; }
    /** Files that failed validation during scanning. */
    const std::vector<std::pair<std::string, TraceError>> &
    rejected() const
    {
        return rejected_;
    }

    /** Traces recorded on the given device configuration key. */
    std::vector<const TraceInfo *>
    forDevice(const std::string &deviceKey) const;

    /** Distinct device keys present in the corpus. */
    std::vector<std::string> deviceKeys() const;

    /** Sum of per-trace stats (optionally one device only). */
    TraceStats aggregate(const std::string &deviceKey = "") const;

    /**
     * Harvest labelled training data from every trace of
     * @p deviceKey: popup-show ground truth anchors the popup-render
     * counter change that follows it, small ambient changes become
     * blink samples. (Echo harvesting needs the bot's controlled
     * pacing, so corpus-trained models carry no echo line.)
     */
    attack::TrainingCapture
    capture(const std::string &deviceKey) const;

    /**
     * Train a signature model for @p deviceKey from the corpus via
     * the shared distillation (OfflineTrainer::trainFromCapture).
     * @return nullopt if the corpus holds no labelled samples for
     * the key.
     */
    std::optional<attack::SignatureModel>
    trainModel(const std::string &deviceKey,
               const attack::OfflineTrainer &trainer) const;

  private:
    std::vector<TraceInfo> traces_;
    std::vector<std::pair<std::string, TraceError>> rejected_;
};

} // namespace gpusc::trace

#endif // GPUSC_TRACE_TRACE_CORPUS_H
