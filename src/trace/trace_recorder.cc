#include "trace/trace_recorder.h"

namespace gpusc::trace {

TraceError
TraceRecorder::open(const std::string &path, const TraceHeader &header)
{
    readings_ = 0;
    return writer_.open(path, header);
}

void
TraceRecorder::attachEavesdropper(attack::Eavesdropper &e)
{
    e.setReadingTap(
        [this](const attack::Reading &r) { onReading(r); });
}

void
TraceRecorder::onReading(const attack::Reading &r)
{
    ++readings_;
    writer_.writeReading(r);
}

void
TraceRecorder::onFault(const kgsl::FaultEvent &ev)
{
    writer_.writeFault(ev.time, ev.kind, ev.detail);
}

void
TraceRecorder::onKeyPress(SimTime t, char ch)
{
    writer_.writeKeyPress(t, ch);
}

void
TraceRecorder::onBackspace(SimTime t)
{
    writer_.writeBackspace(t);
}

void
TraceRecorder::onPageSwitch(SimTime t, int page)
{
    writer_.writePageSwitch(t, page);
}

void
TraceRecorder::onAppSwitch(SimTime t, bool toTarget)
{
    writer_.writeAppSwitch(t, toTarget);
}

void
TraceRecorder::onPopupShow(SimTime t, char ch)
{
    writer_.writePopupShow(t, ch);
}

void
TraceRecorder::trialBegin(SimTime t, const std::string &truth)
{
    writer_.writeTrialBegin(t, truth);
}

void
TraceRecorder::trialEnd(SimTime t)
{
    writer_.writeTrialEnd(t);
}

TraceError
TraceRecorder::finish()
{
    return writer_.close();
}

} // namespace gpusc::trace
