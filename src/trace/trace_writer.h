/**
 * @file
 * Streaming writer for .gpct trace files.
 *
 * Records are framed and CRC-protected individually (see
 * trace_format.h), so a crash mid-recording leaves a file whose
 * intact prefix is still fully readable — the reader reports the torn
 * tail as TruncatedRecord instead of discarding the session.
 */

#ifndef GPUSC_TRACE_TRACE_WRITER_H
#define GPUSC_TRACE_TRACE_WRITER_H

#include <cstdio>
#include <string>

#include "trace/trace_format.h"

namespace gpusc::trace {

/** Appends header + record frames to a trace file. */
class TraceWriter
{
  public:
    TraceWriter() = default;
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Create/truncate @p path and write the header block. */
    TraceError open(const std::string &path, const TraceHeader &h);

    /** Append one record frame. */
    TraceError write(const TraceRecord &r);

    // Convenience wrappers for the common record kinds.
    TraceError writeReading(const attack::Reading &r);
    TraceError writeKeyPress(SimTime t, char ch);
    TraceError writeBackspace(SimTime t);
    TraceError writePageSwitch(SimTime t, int page);
    TraceError writeAppSwitch(SimTime t, bool toTarget);
    TraceError writePopupShow(SimTime t, char ch);
    TraceError writeTrialBegin(SimTime t, const std::string &truth);
    TraceError writeTrialEnd(SimTime t);
    TraceError writeFault(SimTime t, kgsl::FaultKind kind,
                          std::uint64_t detail);

    /** Flush and close; returns the first error seen, if any. */
    TraceError close();

    bool isOpen() const { return file_ != nullptr; }
    std::uint64_t recordCount() const { return records_; }
    /** First write error encountered (sticky). */
    TraceError error() const { return error_; }

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t records_ = 0;
    TraceError error_ = TraceError::None;
};

} // namespace gpusc::trace

#endif // GPUSC_TRACE_TRACE_WRITER_H
