#include "trace/trace_corpus.h"

#include <algorithm>
#include <filesystem>
#include <set>

#include "attack/change_detector.h"
#include "util/logging.h"

namespace gpusc::trace {

using namespace gpusc::sim_literals;

namespace {

/** Changes with an L1 above this are popup/page redraws; below,
 *  ambient blinks and echoes (matches the trainer's blink cutoff). */
constexpr std::int64_t kBigChangeL1 = 5000;

/** A ground-truth popup anchors the first big change within this
 *  window (popup render lands within 1-2 sampling periods). */
constexpr SimTime kAnchorWindow = SimTime::fromMs(60);

} // namespace

TraceError
TraceCorpus::addFile(const std::string &path)
{
    TraceInfo info;
    info.path = path;

    TraceReader reader;
    TraceError err = reader.open(path);
    if (err != TraceError::None) {
        rejected_.emplace_back(path, err);
        return err;
    }
    info.header = reader.header();

    TraceRecord rec;
    bool eof = false;
    for (;;) {
        err = reader.next(rec, eof);
        if (err != TraceError::None) {
            rejected_.emplace_back(path, err);
            return err;
        }
        if (eof)
            break;
        ++info.stats.records;
        info.stats.duration =
            std::max(info.stats.duration, rec.time);
        switch (rec.kind) {
          case RecordKind::Reading: ++info.stats.readings; break;
          case RecordKind::KeyPress: ++info.stats.keyPresses; break;
          case RecordKind::Backspace: ++info.stats.backspaces; break;
          case RecordKind::PopupShow: ++info.stats.popupShows; break;
          case RecordKind::PageSwitch:
            ++info.stats.pageSwitches;
            break;
          case RecordKind::AppSwitch: ++info.stats.appSwitches; break;
          case RecordKind::TrialBegin: ++info.stats.trials; break;
          case RecordKind::Fault: ++info.stats.faults; break;
          case RecordKind::TrialEnd: break;
        }
    }
    traces_.push_back(std::move(info));
    return TraceError::None;
}

TraceError
TraceCorpus::scanDirectory(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) {
        warn("TraceCorpus: cannot list '%s': %s", dir.c_str(),
             ec.message().c_str());
        return TraceError::IoOpen;
    }
    std::vector<std::string> paths;
    for (const fs::directory_entry &entry : it) {
        if (!entry.is_regular_file(ec))
            continue;
        if (entry.path().extension() == kTraceExtension)
            paths.push_back(entry.path().string());
    }
    // Deterministic corpus order regardless of directory layout.
    std::sort(paths.begin(), paths.end());
    for (const std::string &p : paths)
        if (addFile(p) != TraceError::None)
            warn("TraceCorpus: skipping corrupt trace '%s' (%s)",
                 p.c_str(),
                 traceErrorString(rejected_.back().second));
    return TraceError::None;
}

std::vector<const TraceInfo *>
TraceCorpus::forDevice(const std::string &deviceKey) const
{
    std::vector<const TraceInfo *> out;
    for (const TraceInfo &t : traces_)
        if (t.header.deviceKey == deviceKey)
            out.push_back(&t);
    return out;
}

std::vector<std::string>
TraceCorpus::deviceKeys() const
{
    std::set<std::string> keys;
    for (const TraceInfo &t : traces_)
        keys.insert(t.header.deviceKey);
    return {keys.begin(), keys.end()};
}

TraceStats
TraceCorpus::aggregate(const std::string &deviceKey) const
{
    TraceStats sum;
    for (const TraceInfo &t : traces_) {
        if (!deviceKey.empty() && t.header.deviceKey != deviceKey)
            continue;
        sum.records += t.stats.records;
        sum.readings += t.stats.readings;
        sum.keyPresses += t.stats.keyPresses;
        sum.backspaces += t.stats.backspaces;
        sum.popupShows += t.stats.popupShows;
        sum.pageSwitches += t.stats.pageSwitches;
        sum.appSwitches += t.stats.appSwitches;
        sum.trials += t.stats.trials;
        sum.faults += t.stats.faults;
        sum.duration += t.stats.duration;
    }
    return sum;
}

attack::TrainingCapture
TraceCorpus::capture(const std::string &deviceKey) const
{
    attack::TrainingCapture cap;
    for (const TraceInfo *info : forDevice(deviceKey)) {
        TraceReader reader;
        if (reader.open(info->path) != TraceError::None)
            continue; // validated at scan time; lost since

        // Pass over the trace: diff readings into changes and keep
        // the ground-truth anchors.
        struct Anchor
        {
            SimTime time;
            attack::Label label;
        };
        std::vector<Anchor> anchors;
        std::vector<attack::PcChange> changes;
        attack::ChangeDetector detector;
        TraceRecord rec;
        bool eof = false;
        while (reader.next(rec, eof) == TraceError::None && !eof) {
            switch (rec.kind) {
              case RecordKind::Reading:
                if (auto c = detector.onReading(rec.reading))
                    changes.push_back(*c);
                break;
              case RecordKind::PopupShow:
                anchors.push_back(
                    {rec.time, attack::Label(1, rec.ch)});
                break;
              case RecordKind::PageSwitch:
                anchors.push_back(
                    {rec.time, attack::pageLabel(rec.page)});
                break;
              default:
                break;
            }
        }

        // Each anchor labels the first big change inside its window;
        // big changes near no anchor are unlabeled (duplicated popup
        // frames, app redraws) and small ambient changes far from
        // any anchor are cursor blinks.
        std::vector<bool> claimed(changes.size(), false);
        std::size_t firstCandidate = 0;
        for (const Anchor &a : anchors) {
            while (firstCandidate < changes.size() &&
                   changes[firstCandidate].time <= a.time)
                ++firstCandidate;
            for (std::size_t i = firstCandidate; i < changes.size();
                 ++i) {
                if (changes[i].time > a.time + kAnchorWindow)
                    break;
                if (claimed[i] ||
                    gpu::l1Norm(changes[i].delta) < kBigChangeL1)
                    continue;
                claimed[i] = true;
                cap.samples[a.label].push_back(changes[i].delta);
                break;
            }
        }
        auto nearAnchor = [&](SimTime t) {
            for (const Anchor &a : anchors)
                if (t >= a.time - 50_ms &&
                    t <= a.time + kAnchorWindow + 50_ms)
                    return true;
            return false;
        };
        for (std::size_t i = 0; i < changes.size(); ++i) {
            if (claimed[i] ||
                gpu::l1Norm(changes[i].delta) >= kBigChangeL1)
                continue;
            if (!nearAnchor(changes[i].time) &&
                cap.blinkSamples.size() < 64)
                cap.blinkSamples.push_back(changes[i].delta);
        }
    }
    return cap;
}

std::optional<attack::SignatureModel>
TraceCorpus::trainModel(const std::string &deviceKey,
                        const attack::OfflineTrainer &trainer) const
{
    const attack::TrainingCapture cap = capture(deviceKey);
    if (cap.samples.empty())
        return std::nullopt;
    inform("TraceCorpus: training %s from %zu labelled classes",
           deviceKey.c_str(), cap.samples.size());
    return trainer.trainFromCapture(deviceKey, cap);
}

} // namespace gpusc::trace
