/**
 * @file
 * The versioned on-disk format for recorded performance-counter
 * traces (.gpct files).
 *
 * A trace is the complete observable input of one eavesdropping
 * session: the timestamped counter readings the sampler produced,
 * interleaved with ground-truth events (key presses, popup renders,
 * app switches, trial boundaries) so recorded corpora carry their own
 * labels. Layout:
 *
 *   [ u32 magic "GPCT" | u16 version | u16 payloadLen |
 *     header payload ... | u32 crc32(payload) ]
 *   [ record ]*
 *
 * where each record is framed as
 *
 *   [ u8 kind | u32 payloadLen | payload ... |
 *     u32 crc32(kind, payloadLen, payload) ]
 *
 * The header payload stores the device-configuration key plus the
 * full DeviceConfig, the sampling interval and the experiment seed,
 * so a trace is self-describing: replay tooling can re-train the
 * matching signature model from the header alone. Readers must
 * reject unknown versions; unknown record kinds within a known
 * version are a format error (kinds are append-only across
 * versions).
 */

#ifndef GPUSC_TRACE_TRACE_FORMAT_H
#define GPUSC_TRACE_TRACE_FORMAT_H

#include <cstdint>
#include <string>
#include <vector>

#include "android/device.h"
#include "attack/sampler.h"
#include "kgsl/fault_injector.h"
#include "trace/trace_error.h"
#include "util/binary_io.h"

namespace gpusc::trace {

/** File magic "GPCT" (GPu Counter Trace), little-endian. */
inline constexpr std::uint32_t kTraceMagic = 0x54435047;
/**
 * Current format version; bump on any layout change.
 * v1: initial format. v2: adds the Fault record kind (injected
 * device faults annotate the stream; everything else is unchanged,
 * so v1 files remain fully readable).
 */
inline constexpr std::uint16_t kTraceVersion = 2;
/** Oldest version this reader still accepts. */
inline constexpr std::uint16_t kTraceMinVersion = 1;
/** Conventional file extension for traces. */
inline constexpr const char *kTraceExtension = ".gpct";

/** Everything a trace records about the session that produced it. */
struct TraceHeader
{
    /** Format version of the file (filled on read; files are always
     *  written at kTraceVersion). */
    std::uint16_t version = kTraceVersion;
    /** Device::modelKey() of the recorded victim device. */
    std::string deviceKey{};
    /** Full victim configuration (self-describing replay). */
    android::DeviceConfig device{};
    /** Sampler interval used during capture. */
    SimTime samplingInterval = SimTime::fromMs(8);
    /** Experiment seed of the recorded run. */
    std::uint64_t seed = 0;
};

/** Record type tags (append-only; never renumber). */
enum class RecordKind : std::uint8_t
{
    Reading = 1,    ///< one sampler observation
    KeyPress = 2,   ///< ground truth: character key pressed
    Backspace = 3,  ///< ground truth: backspace pressed
    PageSwitch = 4, ///< ground truth: keyboard page switch
    AppSwitch = 5,  ///< ground truth: foreground app changed
    PopupShow = 6,  ///< ground truth: key popup rendered
    TrialBegin = 7, ///< ground truth: credential entry starts
    TrialEnd = 8,   ///< ground truth: credential entry scored
    Fault = 9,      ///< v2+: injected device fault (annotation)
};

/**
 * True if @p k is a kind a file of @p version may legally contain
 * (kinds are append-only, so the version caps the range).
 */
bool knownRecordKind(std::uint8_t k,
                     std::uint16_t version = kTraceVersion);

/** One decoded trace record (tagged union, kind selects fields). */
struct TraceRecord
{
    RecordKind kind = RecordKind::Reading;
    SimTime time{};
    /** Kind::Reading */
    attack::Reading reading{};
    /** KeyPress / PopupShow: the key's character. */
    char ch = 0;
    /** PageSwitch: target keyboard page index. */
    int page = 0;
    /** AppSwitch: true when switching back into the target app. */
    bool toTarget = false;
    /** TrialBegin: the ground-truth credential text. */
    std::string text{};
    /** Fault: category of the injected fault. */
    kgsl::FaultKind fault = kgsl::FaultKind::TransientError;
    /** Fault: kind-specific detail (errno, group, epoch, ...). */
    std::uint64_t faultDetail = 0;
};

// --- Header codec --------------------------------------------------

/** Serialise the full header block (magic through CRC). */
std::vector<std::uint8_t> encodeHeader(const TraceHeader &h);

/**
 * Parse a header block from the front of @p reader.
 * @return None and fills @p out, or the typed failure.
 */
TraceError decodeHeader(ByteReader &reader, TraceHeader &out);

// --- Record codec --------------------------------------------------

/** Serialise one record frame (kind through CRC). */
std::vector<std::uint8_t> encodeRecord(const TraceRecord &r);

/**
 * Decode one record frame from @p frame (the bytes between the
 * 5-byte kind+length prefix and the trailing CRC having already been
 * sliced out by the reader). @p version is the containing file's
 * format version; kinds newer than it are a format error.
 */
TraceError decodePayload(std::uint8_t kind,
                         const std::uint8_t *payload,
                         std::size_t size, TraceRecord &out,
                         std::uint16_t version = kTraceVersion);

} // namespace gpusc::trace

#endif // GPUSC_TRACE_TRACE_FORMAT_H
