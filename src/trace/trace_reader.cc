#include "trace/trace_reader.h"

#include "util/logging.h"

namespace gpusc::trace {

namespace {

/** Upper bound on a sane record payload; a corrupted length byte
 *  must not trigger a multi-gigabyte allocation. The largest real
 *  record (TrialBegin) is bounded by the 64 kB string prefix. */
constexpr std::uint32_t kMaxRecordPayload = 1u << 20;

} // namespace

TraceReader::~TraceReader()
{
    close();
}

TraceError
TraceReader::open(const std::string &path)
{
    close();
    error_ = TraceError::None;
    records_ = 0;
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        return error_ = TraceError::IoOpen;

    // Fixed prefix: magic + version + payload length.
    std::uint8_t prefix[8];
    if (std::fread(prefix, 1, sizeof(prefix), file_) !=
        sizeof(prefix)) {
        close();
        return error_ = TraceError::TruncatedHeader;
    }
    // Validate magic + version before trusting the payload length:
    // a non-trace file must report BadMagic, not a bogus truncation.
    ByteReader pr(prefix, sizeof(prefix));
    if (pr.u32() != kTraceMagic) {
        close();
        return error_ = TraceError::BadMagic;
    }
    const std::uint16_t version = pr.u16();
    if (version < kTraceMinVersion || version > kTraceVersion) {
        close();
        return error_ = TraceError::BadVersion;
    }
    const std::uint16_t payloadLen = pr.u16();

    std::vector<std::uint8_t> block(sizeof(prefix) + payloadLen + 4);
    std::memcpy(block.data(), prefix, sizeof(prefix));
    if (std::fread(block.data() + sizeof(prefix), 1, payloadLen + 4u,
                   file_) != payloadLen + 4u) {
        close();
        return error_ = TraceError::TruncatedHeader;
    }
    ByteReader r(block);
    const TraceError err = decodeHeader(r, header_);
    if (err != TraceError::None) {
        close();
        return error_ = err;
    }
    return TraceError::None;
}

TraceError
TraceReader::next(TraceRecord &out, bool &eof)
{
    eof = false;
    if (!file_)
        return error_ != TraceError::None ? error_
                                          : TraceError::NotOpen;

    std::uint8_t frame[5];
    const std::size_t got = std::fread(frame, 1, sizeof(frame), file_);
    if (got == 0 && std::feof(file_)) {
        eof = true;
        return TraceError::None;
    }
    if (got != sizeof(frame)) {
        close();
        return error_ = TraceError::TruncatedRecord;
    }
    ByteReader fr(frame, sizeof(frame));
    const std::uint8_t kind = fr.u8();
    const std::uint32_t payloadLen = fr.u32();
    if (payloadLen > kMaxRecordPayload) {
        close();
        return error_ = TraceError::BadRecordPayload;
    }

    std::vector<std::uint8_t> payload(payloadLen);
    if (payloadLen > 0 &&
        std::fread(payload.data(), 1, payloadLen, file_) !=
            payloadLen) {
        close();
        return error_ = TraceError::TruncatedRecord;
    }
    std::uint8_t crcBytes[4];
    if (std::fread(crcBytes, 1, sizeof(crcBytes), file_) !=
        sizeof(crcBytes)) {
        close();
        return error_ = TraceError::TruncatedRecord;
    }
    ByteReader cr(crcBytes, sizeof(crcBytes));
    const std::uint32_t storedCrc = cr.u32();
    const std::uint32_t crc =
        crc32(payload, crc32(frame, sizeof(frame)));
    if (crc != storedCrc) {
        close();
        return error_ = TraceError::RecordCrcMismatch;
    }

    const TraceError err = decodePayload(
        kind, payload.data(), payload.size(), out, header_.version);
    if (err != TraceError::None) {
        close();
        return error_ = err;
    }
    ++records_;
    return TraceError::None;
}

void
TraceReader::close()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

TraceError
TraceReader::verifyFile(const std::string &path,
                        std::uint64_t *recordsOut,
                        TraceHeader *headerOut,
                        std::vector<TraceRecord> *faultsOut)
{
    TraceReader reader;
    TraceError err = reader.open(path);
    if (err != TraceError::None)
        return err;
    if (headerOut)
        *headerOut = reader.header();
    TraceRecord rec;
    bool eof = false;
    while (!eof) {
        err = reader.next(rec, eof);
        if (err != TraceError::None)
            break;
        if (!eof && faultsOut && rec.kind == RecordKind::Fault)
            faultsOut->push_back(rec);
    }
    if (recordsOut)
        *recordsOut = reader.recordCount();
    return err;
}

} // namespace gpusc::trace
