/**
 * @file
 * Streaming reader for .gpct trace files.
 *
 * The reader validates the header (magic, version, CRC) on open and
 * every record frame's CRC as it streams, so any flipped byte in a
 * trace surfaces as a typed TraceError — truncation, corruption and
 * unknown record kinds are all hard failures, never crashes.
 */

#ifndef GPUSC_TRACE_TRACE_READER_H
#define GPUSC_TRACE_TRACE_READER_H

#include <cstdio>
#include <string>

#include "trace/trace_format.h"

namespace gpusc::trace {

/** Streams validated records out of a trace file. */
class TraceReader
{
  public:
    TraceReader() = default;
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** Open @p path and parse + validate the header. */
    TraceError open(const std::string &path);

    const TraceHeader &header() const { return header_; }

    /**
     * Read the next record. Sets @p eof (with None) at a clean end
     * of file; any mid-file failure is a typed error and poisons the
     * reader (further next() calls return the same error).
     */
    TraceError next(TraceRecord &out, bool &eof);

    void close();

    bool isOpen() const { return file_ != nullptr; }
    std::uint64_t recordCount() const { return records_; }

    /**
     * Scan an entire file, validating every frame.
     * @return None iff the file is fully intact; optionally reports
     * the record count, parsed header and the fault-event records
     * (v2+) encountered along the way.
     */
    static TraceError
    verifyFile(const std::string &path,
               std::uint64_t *recordsOut = nullptr,
               TraceHeader *headerOut = nullptr,
               std::vector<TraceRecord> *faultsOut = nullptr);

  private:
    std::FILE *file_ = nullptr;
    TraceHeader header_{};
    std::uint64_t records_ = 0;
    TraceError error_ = TraceError::None;
};

} // namespace gpusc::trace

#endif // GPUSC_TRACE_TRACE_READER_H
