#include "trace/trace_writer.h"

#include "util/logging.h"

namespace gpusc::trace {

TraceWriter::~TraceWriter()
{
    if (file_)
        close();
}

TraceError
TraceWriter::open(const std::string &path, const TraceHeader &h)
{
    if (file_)
        close();
    error_ = TraceError::None;
    records_ = 0;
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_) {
        warn("TraceWriter: cannot open '%s' for writing",
             path.c_str());
        return error_ = TraceError::IoOpen;
    }
    const std::vector<std::uint8_t> hdr = encodeHeader(h);
    if (std::fwrite(hdr.data(), 1, hdr.size(), file_) != hdr.size()) {
        std::fclose(file_);
        file_ = nullptr;
        return error_ = TraceError::IoWrite;
    }
    return TraceError::None;
}

TraceError
TraceWriter::write(const TraceRecord &r)
{
    if (!file_)
        return TraceError::NotOpen;
    const std::vector<std::uint8_t> frame = encodeRecord(r);
    if (std::fwrite(frame.data(), 1, frame.size(), file_) !=
        frame.size()) {
        if (error_ == TraceError::None)
            error_ = TraceError::IoWrite;
        return TraceError::IoWrite;
    }
    ++records_;
    return TraceError::None;
}

TraceError
TraceWriter::writeReading(const attack::Reading &r)
{
    TraceRecord rec;
    rec.kind = RecordKind::Reading;
    rec.time = r.time;
    rec.reading = r;
    return write(rec);
}

TraceError
TraceWriter::writeKeyPress(SimTime t, char ch)
{
    TraceRecord rec;
    rec.kind = RecordKind::KeyPress;
    rec.time = t;
    rec.ch = ch;
    return write(rec);
}

TraceError
TraceWriter::writeBackspace(SimTime t)
{
    TraceRecord rec;
    rec.kind = RecordKind::Backspace;
    rec.time = t;
    return write(rec);
}

TraceError
TraceWriter::writePageSwitch(SimTime t, int page)
{
    TraceRecord rec;
    rec.kind = RecordKind::PageSwitch;
    rec.time = t;
    rec.page = page;
    return write(rec);
}

TraceError
TraceWriter::writeAppSwitch(SimTime t, bool toTarget)
{
    TraceRecord rec;
    rec.kind = RecordKind::AppSwitch;
    rec.time = t;
    rec.toTarget = toTarget;
    return write(rec);
}

TraceError
TraceWriter::writePopupShow(SimTime t, char ch)
{
    TraceRecord rec;
    rec.kind = RecordKind::PopupShow;
    rec.time = t;
    rec.ch = ch;
    return write(rec);
}

TraceError
TraceWriter::writeTrialBegin(SimTime t, const std::string &truth)
{
    TraceRecord rec;
    rec.kind = RecordKind::TrialBegin;
    rec.time = t;
    rec.text = truth;
    return write(rec);
}

TraceError
TraceWriter::writeTrialEnd(SimTime t)
{
    TraceRecord rec;
    rec.kind = RecordKind::TrialEnd;
    rec.time = t;
    return write(rec);
}

TraceError
TraceWriter::writeFault(SimTime t, kgsl::FaultKind kind,
                        std::uint64_t detail)
{
    TraceRecord rec;
    rec.kind = RecordKind::Fault;
    rec.time = t;
    rec.fault = kind;
    rec.faultDetail = detail;
    return write(rec);
}

TraceError
TraceWriter::close()
{
    if (!file_)
        return error_;
    if (std::fflush(file_) != 0 && error_ == TraceError::None)
        error_ = TraceError::IoWrite;
    std::fclose(file_);
    file_ = nullptr;
    return error_;
}

} // namespace gpusc::trace
