#include "trace/trace_replayer.h"

#include "attack/change_detector.h"
#include "util/logging.h"

namespace gpusc::trace {

TraceReplayer::TraceReplayer(const attack::SignatureModel &model,
                             attack::Eavesdropper::Params params)
    : model_(&model), params_(params)
{
}

TraceReplayer::TraceReplayer(const attack::ModelStore &store,
                             attack::Eavesdropper::Params params)
    : store_(&store), params_(params)
{
}

TraceError
TraceReplayer::replayFile(const std::string &path)
{
    TraceReader reader;
    const TraceError err = reader.open(path);
    if (err != TraceError::None)
        return err;
    return replay(reader);
}

TraceError
TraceReplayer::replay(TraceReader &reader)
{
    header_ = reader.header();
    trials_.clear();
    readings_ = 0;
    faults_ = 0;

    // Fresh detached pipeline per replay. With a store, prefer the
    // exact model for the recorded device key; an unknown key falls
    // back to online device recognition from the replayed changes.
    const attack::SignatureModel *model = model_;
    if (!model && store_)
        model = store_->find(header_.deviceKey);
    if (model) {
        eavesdropper_ = std::make_unique<attack::Eavesdropper>(
            *model, params_);
    } else if (store_) {
        eavesdropper_ = std::make_unique<attack::Eavesdropper>(
            *store_, params_);
    } else {
        panic("TraceReplayer: neither model nor store available");
    }

    // Consecutive Reading records are accumulated and drained through
    // the batch entry point; any other record kind flushes first so
    // ordering against trial markers is preserved. Bit-identical to
    // feeding one reading at a time.
    const std::size_t replayBatch =
        params_.readingBatch > 0 ? params_.readingBatch : 256;
    std::vector<attack::Reading> batch;
    batch.reserve(replayBatch);
    auto flush = [&] {
        if (batch.empty())
            return;
        eavesdropper_->feedReadings(batch);
        batch.clear();
    };

    TraceRecord rec;
    bool eof = false;
    bool inTrial = false;
    for (;;) {
        const TraceError err = reader.next(rec, eof);
        if (err != TraceError::None)
            return err;
        if (eof)
            break;
        if (rec.kind != RecordKind::Reading)
            flush();
        switch (rec.kind) {
          case RecordKind::Reading:
            ++readings_;
            batch.push_back(rec.reading);
            if (batch.size() >= replayBatch)
                flush();
            break;
          case RecordKind::TrialBegin:
            trials_.push_back(
                {rec.text, std::string(), rec.time, SimTime::max()});
            inTrial = true;
            break;
          case RecordKind::TrialEnd:
            if (inTrial) {
                trials_.back().end = rec.time;
                inTrial = false;
            }
            break;
          case RecordKind::Fault:
            // Faults are annotations: their *effects* live in the
            // Reading stream, so replay stays bit-identical by
            // feeding readings alone. Count them for diagnostics.
            ++faults_;
            break;
          default:
            break; // other ground truth is not needed for replay
        }
    }
    flush();

    // The stream is fully fed: push the batched telemetry tallies
    // out so exported metrics are exact for this replay.
    eavesdropper_->flushTelemetry();

    // Score trials exactly like ExperimentRunner::runTrial: the
    // inferred text is the event stream restricted to the trial's
    // [begin, end] window.
    for (Trial &t : trials_)
        t.inferred =
            eavesdropper_->inferredTextBetween(t.begin, t.end);
    return TraceError::None;
}

std::vector<attack::InferredKey>
TraceReplayer::inferOffline(const std::string &path,
                            TraceError *errOut)
{
    auto setErr = [&](TraceError e) {
        if (errOut)
            *errOut = e;
    };
    setErr(TraceError::None);

    TraceReader reader;
    TraceError err = reader.open(path);
    if (err != TraceError::None) {
        setErr(err);
        return {};
    }
    const attack::SignatureModel *model = model_;
    if (!model && store_)
        model = store_->find(reader.header().deviceKey);
    if (!model) {
        warn("TraceReplayer: no model for device key '%s'",
             reader.header().deviceKey.c_str());
        setErr(TraceError::None);
        return {};
    }

    attack::ChangeDetector changes;
    std::vector<attack::PcChange> trace;
    TraceRecord rec;
    bool eof = false;
    for (;;) {
        err = reader.next(rec, eof);
        if (err != TraceError::None) {
            setErr(err);
            return {};
        }
        if (eof)
            break;
        if (rec.kind != RecordKind::Reading)
            continue;
        if (auto c = changes.onReading(rec.reading))
            trace.push_back(*c);
    }
    const attack::TraceInference inference(*model,
                                           params_.inference);
    return inference.infer(trace);
}

} // namespace gpusc::trace
