/**
 * @file
 * Whole-trace (offline) key inference — the accuracy/timeliness
 * trade-off the paper raises after Algorithm 1.
 *
 * Algorithm 1 is greedy: it combines two consecutive changes into a
 * key "whenever possible", which can mis-pair split pieces. With the
 * *entire* trace available (eavesdropping scored after the input
 * finished), a dynamic program can choose the globally best
 * segmentation: each observed change is either noise, a key press by
 * itself, or one half of a split pair — maximising the number of
 * accepted keys and breaking ties by total classification distance.
 */

#ifndef GPUSC_ATTACK_TRACE_INFERENCE_H
#define GPUSC_ATTACK_TRACE_INFERENCE_H

#include <vector>

#include "attack/online_inference.h"

namespace gpusc::attack {

/** Offline, whole-trace counterpart of OnlineInference. */
class TraceInference
{
  public:
    TraceInference(const SignatureModel &model,
                   OnlineInference::Params params);

    /**
     * Infer key presses from a complete change trace.
     * Changes must be in time order.
     */
    std::vector<InferredKey>
    infer(const std::vector<PcChange> &changes) const;

    /** Concatenate the non-page labels of @p keys into text. */
    static std::string textFrom(const std::vector<InferredKey> &keys);

  private:
    const SignatureModel &model_;
    OnlineInference::Params params_;
};

} // namespace gpusc::attack

#endif // GPUSC_ATTACK_TRACE_INFERENCE_H
