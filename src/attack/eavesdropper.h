/**
 * @file
 * The complete attacking application (Online Phase, paper Fig. 4):
 * a background service that samples the GPU counters through the KGSL
 * device file, recognises the device configuration, infers key
 * presses with Algorithm 1, suppresses app-switch intervals, tracks
 * backspace corrections, and reconstructs the typed credential.
 */

#ifndef GPUSC_ATTACK_EAVESDROPPER_H
#define GPUSC_ATTACK_EAVESDROPPER_H

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "android/device.h"
#include "attack/app_switch_detector.h"
#include "attack/change_detector.h"
#include "attack/correction_tracker.h"
#include "attack/model_store.h"
#include "attack/online_inference.h"
#include "attack/sampler.h"
#include "obs/telemetry.h"
#include "util/stats.h"

namespace gpusc::attack {

/** One entry of the eavesdropping output stream. */
struct StolenEvent
{
    enum class Kind
    {
        Char,     ///< a printable character was typed
        Page,     ///< the keyboard switched page
        Deletion, ///< a backspace removed the previous character
    };
    Kind kind;
    char ch = 0; ///< for Kind::Char
    SimTime time;
};

/** The attacking application. */
class Eavesdropper
{
  public:
    struct Params
    {
        /** Counter sampling interval (§4 default: 8 ms). */
        SimTime samplingInterval = SimTime::fromMs(8);
        /** Algorithm 1 knobs. */
        OnlineInference::Params inference{};
        /** Sampler self-healing knobs (retries, backoff, watchdog). */
        RecoveryParams recovery{};
        /** Disable components for ablation studies. */
        bool appSwitchDetection = true;
        bool correctionTracking = true;
        /** Keep the raw change trace (offline-inference studies). */
        bool recordTrace = false;
        /**
         * Readings per feedReadings() chunk for bulk feeders that
         * honour it (trace replay; streaming ingest has its own
         * stream::SessionConfig::drainBatch). 0 = auto. Results are
         * bit-identical for any value — batching only amortises the
         * per-call pipeline entry. Surfaced as the CLIs' --batch.
         */
        std::size_t readingBatch = 0;
        /**
         * Telemetry context (not owned, must outlive the
         * eavesdropper; null = no instrumentation). Propagated to
         * the sampler, change detector and inference stages; purely
         * observational — the inferred output is bit-identical with
         * telemetry on or off.
         */
        obs::Telemetry *telemetry = nullptr;
    };

    /** Attach with a known model (trained for this device config). */
    Eavesdropper(android::Device &device, const SignatureModel &model);
    Eavesdropper(android::Device &device, const SignatureModel &model,
                 Params params);

    /**
     * Attach with a preloaded model store: the device configuration
     * is recognised from the first counter changes (Fig. 4's "device
     * recognition" step).
     */
    Eavesdropper(android::Device &device, const ModelStore &store,
                 Params params);

    /**
     * Detached (replay) mode: no device, no sampler. Readings are
     * injected through feedReading() — the entry point used by
     * trace::TraceReplayer to run recorded counter streams through
     * the identical inference pipeline offline.
     */
    Eavesdropper(const SignatureModel &model, Params params);
    Eavesdropper(const ModelStore &store, Params params);

    ~Eavesdropper();

    /** Start the background service. False if the kernel denies the
     *  counter ioctls (RBAC mitigation). Detached instances have
     *  nothing to start and return true. */
    bool start();
    void stop();

    /**
     * Inject one counter reading, exactly as if the sampler had
     * produced it. Replayed traces flow through the same change
     * detection + inference code as live runs, so outputs are
     * bit-identical for identical reading streams.
     */
    void feedReading(const Reading &r);

    /**
     * Inject a batch of readings in order. Bit-identical to calling
     * feedReading() once per element — this is the bulk entry point
     * the trace replayer and streaming ingest drain their buffers
     * through, so per-call overhead is paid once per batch.
     */
    void feedReadings(std::span<const Reading> rs);

    /** Observe the live sampler stream (trace recording). No-op in
     *  detached mode. */
    void setReadingTap(std::function<void(const Reading &)> fn);

    /** Extra wakeup latency source (CPU contention, §7.3). */
    void setWakeupJitter(std::function<SimTime()> fn);

    /**
     * Observe every inferred key that survives app-switch
     * suppression, i.e. exactly the presses that enter events().
     * Streaming ingest uses this to drive online template adaptation
     * (stream::TemplateUpdater); observational — attaching a listener
     * never changes the inferred output.
     */
    void setAcceptListener(std::function<void(const InferredKey &)> fn)
    {
        acceptListener_ = std::move(fn);
    }

    /**
     * Push lazily-accumulated telemetry (the reading count, batched
     * off the per-reading hot path) into the metric registry, and
     * publish the pipeline's HealthStats: the monotonic fault
     * counters become `health.*` registry counters (incremented by
     * their growth since the previous flush, so the registry tracks
     * the stats exactly) and the level-like fields become gauges
     * (`health.counters_held`, `health.effective_interval_ns`). The
     * live telemetry plane windows these like any other counter,
     * which is what makes e.g. the pace-backoff *rate* SLO-able.
     * Called automatically on stop() and destruction; replay tooling
     * calls it after feeding a stream so exported metrics are exact.
     */
    void flushTelemetry();

    /** Everything stolen so far. */
    const std::vector<StolenEvent> &events() const { return events_; }

    /** Reconstructed text over the whole run (deletions applied). */
    std::string inferredText() const;

    /** Reconstructed text from events within [t0, t1]. */
    std::string inferredTextBetween(SimTime t0, SimTime t1) const;

    /**
     * Current credential-field length decoded from the echo channel.
     * Works even when popups are disabled (§9.1's residual leak: the
     * text length remains inferable).
     */
    int inferredFieldLength() const { return bufferLen_; }
    /** Longest field length ever observed (the credential's length). */
    int maxObservedFieldLength() const { return maxFieldLen_; }

    /**
     * Bytes needed to send the loot home (paper Fig. 4 "send back
     * inferred key presses"; §7.6 claims negligible network traffic —
     * only *results* leave the device, never raw counter streams).
     * Encoding: 1 event byte + 4 timestamp bytes per stolen event.
     */
    std::size_t exfiltrationBytes() const;
    /** Raw bytes the sampler observed (for the traffic comparison). */
    std::size_t rawCounterBytes() const;

    /**
     * Fault-recovery accounting for the whole pipeline: the sampler's
     * retry/reopen/watchdog counters merged with the ChangeDetector's
     * stream repairs. Detached instances report all counters held
     * (there is no device to lose them to).
     */
    HealthStats health() const;

    /** Model actually in use (after recognition, if any). */
    const SignatureModel *activeModel() const { return model_; }

    /** Host-measured per-change inference latency, microseconds
     *  (Fig. 25). */
    const Samples &inferenceLatenciesUs() const { return latencies_; }

    const OnlineInference *inference() const { return inference_.get(); }
    /** Live mode only — detached instances have no sampler. */
    const PcSampler &sampler() const { return *sampler_; }
    const AppSwitchDetector &switchDetector() const
    {
        return switchDetector_;
    }
    const CorrectionTracker *correctionTracker() const
    {
        return correction_.get();
    }
    /** Raw change trace (only when Params::recordTrace). */
    const std::vector<PcChange> &trace() const { return trace_; }
    int lastErrno() const
    {
        return sampler_ ? sampler_->lastErrno() : 0;
    }

  private:
    void onReading(const Reading &r);
    void onChange(const PcChange &c);
    bool tryRecognize(const PcChange &c);
    void adoptModel(const SignatureModel &model);
    void wireStreamRepair();
    void wireTelemetry();

    /** Null in detached (replay) mode. */
    android::Device *device_ = nullptr;
    Params params_;
    const ModelStore *store_ = nullptr;
    const SignatureModel *model_ = nullptr;
    /** Null in detached (replay) mode. */
    std::unique_ptr<PcSampler> sampler_;
    /** Readings injected through feedReading(). */
    std::uint64_t readsFed_ = 0;
    ChangeDetector changes_;
    std::unique_ptr<OnlineInference> inference_;
    AppSwitchDetector switchDetector_;
    std::unique_ptr<CorrectionTracker> correction_;
    std::function<void(const InferredKey &)> acceptListener_;
    std::vector<StolenEvent> events_;
    Samples latencies_;
    std::vector<PcChange> recognitionBuffer_;
    std::vector<PcChange> trace_;
    /** Running estimate of the credential field's length. */
    int bufferLen_ = 0;
    int maxFieldLen_ = 0;

    /** Telemetry handles, resolved once in wireTelemetry(). Counting
     *  every reading is cheap; host-timing every reading is not, so
     *  the change-detect span samples 1 reading in 64. */
    obs::StageTimer changeDetectTimer_;
    obs::StageTimer classifyTimer_;
    obs::Counter *readingsInCtr_ = nullptr;
    obs::Counter *recogChangesCtr_ = nullptr;
    obs::Counter *suppressedCtr_ = nullptr;
    obs::Counter *keysCtr_ = nullptr;
    obs::Counter *pagesCtr_ = nullptr;
    obs::Counter *deletionsCtr_ = nullptr;
    std::uint64_t readingSeq_ = 0;
    std::uint64_t readingsFlushed_ = 0;
    /** HealthStats as of the last flush (counter-delta baseline). */
    HealthStats healthFlushed_;
};

} // namespace gpusc::attack

#endif // GPUSC_ATTACK_EAVESDROPPER_H
