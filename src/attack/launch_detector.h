/**
 * @file
 * Target-application launch detection (paper §3.2).
 *
 * The monitoring service uses existing procfs/cache side channels
 * ([14,15,49,50] in the paper; reported >90 % accurate over >100
 * apps) to notice when one of the attacker's target applications
 * comes to the foreground, and only then starts reading the GPU
 * counters. We model the detector's *behaviour*: it polls the
 * (simulated) foreground state and fires its callback with the
 * published accuracy and a small detection latency; misses and the
 * resulting lost prefixes are therefore part of end-to-end results.
 */

#ifndef GPUSC_ATTACK_LAUNCH_DETECTOR_H
#define GPUSC_ATTACK_LAUNCH_DETECTOR_H

#include <functional>
#include <memory>
#include <set>
#include <string>

#include "android/device.h"
#include "util/rng.h"

namespace gpusc::attack {

/** Foreground-app monitor driving the attack's activation. */
class LaunchDetector
{
  public:
    struct Params
    {
        /** Polling cadence of the procfs scan. */
        SimTime pollInterval = SimTime::fromMs(200);
        /** Probability a launch is recognised (paper: >90 %). */
        double detectionRate = 0.93;
        std::uint64_t seed = 3;
    };

    LaunchDetector(android::Device &device,
                   std::set<std::string> targetApps, Params params);
    ~LaunchDetector();

    /** Fires once per recognised target-app foreground session. */
    void setOnLaunch(std::function<void(const std::string &)> fn)
    {
        onLaunch_ = std::move(fn);
    }

    /** Fires when the target app leaves the foreground. */
    void setOnExit(std::function<void()> fn) { onExit_ = std::move(fn); }

    void start();
    void stop();

    bool targetInForeground() const { return inForeground_; }
    std::uint64_t launchesDetected() const { return detected_; }
    std::uint64_t launchesMissed() const { return missed_; }

  private:
    void poll();

    android::Device &device_;
    std::set<std::string> targets_;
    Params params_;
    Rng rng_;
    bool running_ = false;
    bool inForeground_ = false;
    bool missedThisSession_ = false;
    std::function<void(const std::string &)> onLaunch_;
    std::function<void()> onExit_;
    std::uint64_t detected_ = 0;
    std::uint64_t missed_ = 0;
    std::shared_ptr<int> aliveToken_;
};

} // namespace gpusc::attack

#endif // GPUSC_ATTACK_LAUNCH_DETECTOR_H
