/**
 * @file
 * Per-configuration signature models (the "classification models" of
 * paper §3.2/§5.1).
 *
 * A model maps each label — one per unique typable character plus one
 * per keyboard page (page-switch redraws have signatures too) — to the
 * centroid of its popup-show counter deltas, together with the
 * rejection threshold C_th, per-dimension normalisation and the echo-
 * band cutoff used by the input-correction tracker. Models serialise
 * to a compact binary (~3.6 kB, §7.6) so thousands can be preloaded in
 * the attack APK.
 */

#ifndef GPUSC_ATTACK_SIGNATURE_H
#define GPUSC_ATTACK_SIGNATURE_H

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "gpu/counters.h"
#include "simd/panel.h"

namespace gpusc::attack {

/** Classification label: single-char string, or "PAGE:<name>". */
using Label = std::string;

/** Make the label for a page-switch redraw. */
Label pageLabel(int page);
/** True if @p label is a page-switch label. */
bool isPageLabel(const Label &label);

/** One trained class. */
struct LabelSignature
{
    Label label;
    gpu::CounterVec centroid{};
};

/** A trained classification model for one device configuration. */
class SignatureModel
{
  public:
    /** Result of classifying one counter change. */
    struct Match
    {
        const LabelSignature *sig = nullptr; ///< null if no signatures
        double distance = 0.0;               ///< normalised distance
        bool
        accepted(double threshold) const
        {
            return sig && distance <= threshold;
        }
    };

    /** Nearest centroid in normalised space. */
    Match classify(const gpu::CounterVec &delta) const;

    /**
     * Classify every delta of a batch (out.size() >= deltas.size()).
     * Identical results to looping classify(); the centroid panel and
     * per-query int64-to-double conversion are reused across the
     * batch.
     */
    void classifyBatch(std::span<const gpu::CounterVec> deltas,
                       std::span<Match> out) const;

    /** Batched classifyRobust (no effective-delta reporting). */
    void classifyRobustBatch(std::span<const gpu::CounterVec> deltas,
                             std::span<Match> out) const;

    /**
     * Nearest centroid allowing for a merged cursor-blink frame: also
     * tries delta minus each trained blink variant and returns the
     * best match. This is how the online phase tolerates a popup
     * render that shared its sampling window with a blink redraw.
     *
     * When @p effectiveOut is non-null it receives the variant that
     * actually matched — @p delta itself, or delta minus the winning
     * blink vector — i.e. the popup render's own contribution. Online
     * template adaptation (stream::TemplateUpdater) blends *this*
     * vector back into the centroid, never the blink-contaminated
     * raw delta.
     */
    Match classifyRobust(const gpu::CounterVec &delta,
                         gpu::CounterVec *effectiveOut) const;
    Match classifyRobust(const gpu::CounterVec &delta) const
    {
        return classifyRobust(delta, nullptr);
    }

    /** Trained cursor-blink redraw variants (per tile alignment). */
    const std::vector<gpu::CounterVec> &blinkVariants() const
    {
        return blinkVariants_;
    }
    void setBlinkVariants(std::vector<gpu::CounterVec> v)
    {
        blinkVariants_ = std::move(v);
    }

    /** Accept iff distance <= threshold (C_th). */
    std::optional<Label> accept(const gpu::CounterVec &delta) const;

    const std::vector<LabelSignature> &signatures() const
    {
        return sigs_;
    }
    double threshold() const { return threshold_; }
    /** L1 pre-filter: changes above this are not field echoes. */
    double echoCutoff() const { return echoCutoff_; }

    /**
     * The credential field's *echo line* (§5.3): a field redraw with k
     * committed characters produces counter deltas echoBase + k *
     * echoInc. Projecting an observed change onto this line yields the
     * current text length; residuals beyond echoTol mean the change is
     * not a field redraw at all (popup dismissal, status bar, ...).
     */
    const gpu::CounterVec &echoBase() const { return echoBase_; }
    const gpu::CounterVec &echoInc() const { return echoInc_; }
    double echoTol() const { return echoTol_; }
    bool hasEchoModel() const;

    /**
     * Decode a change as a field redraw.
     * @return the text length, or nullopt if off the echo line.
     */
    std::optional<int> decodeEchoLength(
        const gpu::CounterVec &delta,
        double *residualOut = nullptr) const;
    const std::string &modelKey() const { return modelKey_; }
    const std::array<double, gpu::kNumSelectedCounters> &scale() const
    {
        return scale_;
    }

    /** Smallest distance between two distinct centroids
     *  (separability diagnostic). */
    double minInterClassDistance() const;

    // Construction (used by the trainer and deserialisation).
    void setModelKey(std::string key) { modelKey_ = std::move(key); }
    void setThreshold(double t) { threshold_ = t; }
    void setEchoCutoff(double c) { echoCutoff_ = c; }
    void
    setEchoLine(const gpu::CounterVec &base, const gpu::CounterVec &inc,
                double tol)
    {
        echoBase_ = base;
        echoInc_ = inc;
        echoTol_ = tol;
    }
    void setScale(const std::array<double, gpu::kNumSelectedCounters> &s)
    {
        scale_ = s;
    }
    void addSignature(LabelSignature sig);

    /**
     * Online template adaptation (the enrollment/match/update loop):
     * fold an observed high-confidence delta back into @p label's
     * centroid with an exponential blend,
     *
     *   centroid' = round((1 - blend) * centroid + blend * delta)
     *
     * per dimension (llround, so the update is bit-deterministic and
     * order-deterministic for a given observation sequence). Keeps
     * the centroid within the serialisable 32-bit range. @return
     * false (and changes nothing) if the label is not trained or
     * @p blend is outside (0, 1].
     */
    bool updateSignature(const Label &label,
                         const gpu::CounterVec &delta, double blend);

    /** Serialised size in bytes (the Fig.-26-adjacent 3.59 kB claim). */
    std::size_t byteSize() const;
    std::vector<std::uint8_t> serialize() const;
    /** Aborts on malformed input (trusted, in-process blobs only). */
    static SignatureModel deserialize(const std::uint8_t *data,
                                      std::size_t size);
    /** Bounds-checked parse of an untrusted blob: nullopt on bad
     *  magic, truncation or trailing garbage — never UB or abort. */
    static std::optional<SignatureModel>
    tryDeserialize(const std::uint8_t *data, std::size_t size);

    bool operator==(const SignatureModel &other) const;

  private:
    /**
     * Repack the SIMD centroid panel. Called eagerly on every
     * signature mutation (never lazily from classify(): classify is
     * const and runs concurrently from replay/stream workers, so the
     * panel must be immutable while classification is in flight).
     */
    void rebuildPanel();

    std::string modelKey_;
    std::vector<LabelSignature> sigs_;
    /** sigs_ centroids as doubles, transposed for the argmin kernel.
     *  Derived state — never serialised, never compared. */
    simd::Panel panel_;
    double threshold_ = 0.0;
    double echoCutoff_ = 0.0;
    gpu::CounterVec echoBase_{};
    gpu::CounterVec echoInc_{};
    double echoTol_ = 0.0;
    std::vector<gpu::CounterVec> blinkVariants_;
    std::array<double, gpu::kNumSelectedCounters> scale_{};
};

} // namespace gpusc::attack

#endif // GPUSC_ATTACK_SIGNATURE_H
