#include "attack/signature.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <cstring>
#include <limits>

#include "simd/kernels.h"
#include "util/binary_io.h"
#include "util/logging.h"

namespace gpusc::attack {

namespace {

/**
 * Widen an int64 counter delta to doubles for the kernels. Counter
 * deltas are per-frame differences that sit far below 2^53, so the
 * conversion is exact and (a - b) computed in int64 equals
 * double(a) - double(b) bit-for-bit — which is what lets the panel
 * store pre-converted centroids without changing a single distance.
 */
void
widen(const gpu::CounterVec &v,
      double (&out)[gpu::kNumSelectedCounters])
{
    for (std::size_t d = 0; d < v.size(); ++d)
        out[d] = double(v[d]);
}

} // namespace

Label
pageLabel(int page)
{
    static const char *names[] = {"lower", "upper", "symbols"};
    if (page < 0 || page > 2)
        panic("pageLabel: bad page %d", page);
    return std::string("PAGE:") + names[page];
}

bool
isPageLabel(const Label &label)
{
    return label.rfind("PAGE:", 0) == 0;
}

void
SignatureModel::addSignature(LabelSignature sig)
{
    sigs_.push_back(std::move(sig));
    rebuildPanel();
}

void
SignatureModel::rebuildPanel()
{
    std::vector<double> rows(sigs_.size() *
                             gpu::kNumSelectedCounters);
    for (std::size_t i = 0; i < sigs_.size(); ++i)
        for (std::size_t d = 0; d < gpu::kNumSelectedCounters; ++d)
            rows[i * gpu::kNumSelectedCounters + d] =
                double(sigs_[i].centroid[d]);
    panel_.packContiguous(rows.data(), sigs_.size(),
                          gpu::kNumSelectedCounters,
                          gpu::kNumSelectedCounters);
}

SignatureModel::Match
SignatureModel::classify(const gpu::CounterVec &delta) const
{
    // Hot path (one call per sampled counter change): the weighted
    // argmin kernel compares squared distances, abandons losers via
    // bound-pruned early exit and takes one sqrt for the winner.
    // sqrt is monotone and partial sums of squares never decrease, so
    // the winner (and its tie-break on declaration order) is
    // identical to the naive scan.
    Match best;
    if (sigs_.empty()) {
        best.distance = std::numeric_limits<double>::infinity();
        return best;
    }
    double q[gpu::kNumSelectedCounters];
    widen(delta, q);
    const simd::Argmin a =
        simd::kernels().argminWL2(q, scale_.data(), panel_);
    best.sig = &sigs_[a.index];
    best.distance = std::sqrt(a.sq);
    return best;
}

void
SignatureModel::classifyBatch(std::span<const gpu::CounterVec> deltas,
                              std::span<Match> out) const
{
    if (out.size() < deltas.size())
        panic("classifyBatch: %zu outputs for %zu deltas", out.size(),
              deltas.size());
    for (std::size_t i = 0; i < deltas.size(); ++i)
        out[i] = classify(deltas[i]);
}

void
SignatureModel::classifyRobustBatch(
    std::span<const gpu::CounterVec> deltas, std::span<Match> out) const
{
    if (out.size() < deltas.size())
        panic("classifyRobustBatch: %zu outputs for %zu deltas",
              out.size(), deltas.size());
    for (std::size_t i = 0; i < deltas.size(); ++i)
        out[i] = classifyRobust(deltas[i]);
}

SignatureModel::Match
SignatureModel::classifyRobust(const gpu::CounterVec &delta,
                               gpu::CounterVec *effectiveOut) const
{
    Match best = classify(delta);
    if (effectiveOut)
        *effectiveOut = delta;
    gpu::CounterVec scratch{}; // reused across variants, stays on stack
    for (const gpu::CounterVec &blink : blinkVariants_) {
        for (std::size_t d = 0; d < delta.size(); ++d)
            scratch[d] = delta[d] - blink[d];
        const Match m = classify(scratch);
        if (m.distance < best.distance) {
            best = m;
            if (effectiveOut)
                *effectiveOut = scratch;
        }
    }
    return best;
}

bool
SignatureModel::updateSignature(const Label &label,
                                const gpu::CounterVec &delta,
                                double blend)
{
    if (!(blend > 0.0) || blend > 1.0)
        return false;
    for (std::size_t i = 0; i < sigs_.size(); ++i) {
        LabelSignature &sig = sigs_[i];
        if (sig.label != label)
            continue;
        for (std::size_t d = 0; d < sig.centroid.size(); ++d) {
            const double mixed =
                (1.0 - blend) * double(sig.centroid[d]) +
                blend * double(delta[d]);
            std::int64_t v = std::llround(mixed);
            // Serialisation stores centroids as i32; an adapted model
            // must stay storable byte-for-byte.
            v = std::clamp<std::int64_t>(v, INT32_MIN, INT32_MAX);
            sig.centroid[d] = v;
        }
        // Refresh just the adapted row of the packed panel.
        double row[gpu::kNumSelectedCounters];
        widen(sig.centroid, row);
        panel_.setRow(i, row);
        return true;
    }
    return false;
}

std::optional<Label>
SignatureModel::accept(const gpu::CounterVec &delta) const
{
    const Match m = classify(delta);
    if (m.accepted(threshold_))
        return m.sig->label;
    return std::nullopt;
}

double
SignatureModel::minInterClassDistance() const
{
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < sigs_.size(); ++i) {
        for (std::size_t j = i + 1; j < sigs_.size(); ++j) {
            double s = 0.0;
            for (std::size_t d = 0; d < gpu::kNumSelectedCounters;
                 ++d) {
                const double diff =
                    double(sigs_[i].centroid[d] - sigs_[j].centroid[d]) *
                    scale_[d];
                s += diff * diff;
            }
            best = std::min(best, std::sqrt(s));
        }
    }
    return best;
}

bool
SignatureModel::hasEchoModel() const
{
    return echoTol_ > 0.0 && !gpu::isZero(echoInc_);
}

std::optional<int>
SignatureModel::decodeEchoLength(const gpu::CounterVec &delta,
                                 double *residualOut) const
{
    if (!hasEchoModel())
        return std::nullopt;
    // Least-squares projection of (delta - base) onto the increment
    // direction in the model's normalised space.
    double num = 0.0;
    double den = 0.0;
    for (std::size_t d = 0; d < delta.size(); ++d) {
        const double inc = double(echoInc_[d]) * scale_[d];
        const double rel =
            double(delta[d] - echoBase_[d]) * scale_[d];
        num += rel * inc;
        den += inc * inc;
    }
    if (den <= 0.0)
        return std::nullopt;
    const int k = std::max(0, int(std::lround(num / den)));
    double res = 0.0;
    for (std::size_t d = 0; d < delta.size(); ++d) {
        const double fit =
            double(echoBase_[d] + k * echoInc_[d]) * scale_[d];
        const double diff = double(delta[d]) * scale_[d] - fit;
        res += diff * diff;
    }
    if (residualOut)
        *residualOut = std::sqrt(res);
    if (std::sqrt(res) > echoTol_)
        return std::nullopt;
    return k;
}

namespace {

template <typename T>
void
put(std::vector<std::uint8_t> &out, const T &v)
{
    const auto *p = reinterpret_cast<const std::uint8_t *>(&v);
    out.insert(out.end(), p, p + sizeof(T));
}

constexpr std::uint32_t kMagic = 0x47535047; // "GPSG"

} // namespace

std::vector<std::uint8_t>
SignatureModel::serialize() const
{
    std::vector<std::uint8_t> out;
    put(out, kMagic);
    put(out, std::uint16_t(modelKey_.size()));
    out.insert(out.end(), modelKey_.begin(), modelKey_.end());
    put(out, float(threshold_));
    put(out, float(echoCutoff_));
    put(out, float(echoTol_));
    for (std::int64_t v : echoBase_)
        put(out, std::int32_t(v));
    for (std::int64_t v : echoInc_)
        put(out, std::int32_t(v));
    for (double s : scale_)
        put(out, float(s));
    put(out, std::uint8_t(blinkVariants_.size()));
    for (const gpu::CounterVec &b : blinkVariants_)
        for (std::int64_t v : b)
            put(out, std::int32_t(v));
    put(out, std::uint16_t(sigs_.size()));
    for (const LabelSignature &sig : sigs_) {
        put(out, std::uint8_t(sig.label.size()));
        out.insert(out.end(), sig.label.begin(), sig.label.end());
        // Centroids fit comfortably in 32 bits per counter.
        for (std::int64_t v : sig.centroid)
            put(out, std::int32_t(v));
    }
    return out;
}

std::size_t
SignatureModel::byteSize() const
{
    return serialize().size();
}

SignatureModel
SignatureModel::deserialize(const std::uint8_t *data, std::size_t size)
{
    std::optional<SignatureModel> m = tryDeserialize(data, size);
    if (!m)
        fatal("SignatureModel::deserialize: truncated or corrupt "
              "model blob");
    return *std::move(m);
}

std::optional<SignatureModel>
SignatureModel::tryDeserialize(const std::uint8_t *data,
                               std::size_t size)
{
    ByteReader r(data, size);
    SignatureModel m;
    if (r.u32() != kMagic || !r.ok())
        return std::nullopt;
    {
        const std::uint16_t keyLen = r.u16();
        if (!r.ok() || keyLen > r.remaining())
            return std::nullopt;
        m.modelKey_.resize(keyLen);
        r.raw(reinterpret_cast<std::uint8_t *>(m.modelKey_.data()),
              keyLen);
    }
    m.threshold_ = r.f32();
    m.echoCutoff_ = r.f32();
    m.echoTol_ = r.f32();
    for (std::int64_t &v : m.echoBase_)
        v = r.i32();
    for (std::int64_t &v : m.echoInc_)
        v = r.i32();
    for (double &s : m.scale_)
        s = r.f32();
    const std::uint8_t nBlink = r.u8();
    for (std::uint8_t i = 0; r.ok() && i < nBlink; ++i) {
        gpu::CounterVec b{};
        for (std::int64_t &v : b)
            v = r.i32();
        m.blinkVariants_.push_back(b);
    }
    const std::uint16_t n = r.u16();
    for (std::uint16_t i = 0; r.ok() && i < n; ++i) {
        LabelSignature sig;
        const std::uint8_t len = r.u8();
        if (!r.ok() || len > r.remaining())
            return std::nullopt;
        sig.label.resize(len);
        r.raw(reinterpret_cast<std::uint8_t *>(sig.label.data()),
              len);
        for (std::int64_t &v : sig.centroid)
            v = r.i32();
        m.sigs_.push_back(std::move(sig));
    }
    // A short buffer or trailing garbage both mean the blob does not
    // frame a model of this version.
    if (!r.ok() || !r.atEnd())
        return std::nullopt;
    m.rebuildPanel();
    return m;
}

bool
SignatureModel::operator==(const SignatureModel &other) const
{
    if (modelKey_ != other.modelKey_ ||
        sigs_.size() != other.sigs_.size())
        return false;
    for (std::size_t i = 0; i < sigs_.size(); ++i)
        if (sigs_[i].label != other.sigs_[i].label ||
            sigs_[i].centroid != other.sigs_[i].centroid)
            return false;
    return true;
}

} // namespace gpusc::attack
