/**
 * @file
 * The attack's periodic performance-counter sampler.
 *
 * Replays the paper's Fig. 10 flow through the simulated device file:
 * open /dev/kgsl-3d0, reserve the 11 selected countables with
 * IOCTL_KGSL_PERFCOUNTER_GET, then blockread them all on a fixed
 * interval (default 8 ms) with IOCTL_KGSL_PERFCOUNTER_READ. Wakeups
 * can be jittered by a caller-supplied delay source to model CPU
 * contention (§7.3).
 *
 * A real driver fights back (see kgsl/fault_injector.h), so the
 * sampler self-heals: transient EINTR/EAGAIN ioctls retry inline,
 * EBUSY reservations fall back to a degraded counter subset and are
 * re-attempted with exponential backoff, ENODEV (device reset)
 * triggers a reopen + re-reserve within the same tick, and a hard
 * fault that halts the tick chain (e.g. an RBAC policy denial) parks
 * the sampler in a suspended state that a slow watchdog probes until
 * the device answers again. Every recovery is accounted in
 * HealthStats.
 */

#ifndef GPUSC_ATTACK_SAMPLER_H
#define GPUSC_ATTACK_SAMPLER_H

#include <array>
#include <functional>
#include <memory>

#include "gpu/counters.h"
#include "kgsl/device.h"
#include "obs/telemetry.h"
#include "util/event_queue.h"

namespace gpusc::attack {

/** One sampler tick's observation. */
struct Reading
{
    SimTime time;
    gpu::CounterTotals totals{};
};

/** Knobs of the sampler's self-healing machinery. */
struct RecoveryParams
{
    /** Inline retries of an EINTR/EAGAIN ioctl before giving up. */
    int maxTransientRetries = 8;
    /** First backoff before re-attempting an EBUSY reservation. */
    SimTime busyRetryBase = SimTime::fromMs(16);
    /** Backoff ceiling for EBUSY re-reservation rounds. */
    SimTime busyRetryMax = SimTime::fromMs(1024);
    /** Watchdog cadence; probes for recovery while suspended. */
    SimTime watchdogInterval = SimTime::fromMs(64);
    /** Keep sampling on whatever counter subset was reservable. */
    bool allowDegraded = true;
    /**
     * Robust-attacker mode: detect sustained EAGAIN throttling (a
     * rate-limiting kgsl policy) and *pace* — stretch the effective
     * sampling interval toward the allowed cadence and stop burning
     * inline EAGAIN retries, which a penalising token bucket taxes.
     * Successful paced ticks probe back toward the full rate, so the
     * sampler converges on the fastest cadence the defense serves.
     */
    bool rateLimitAware = false;
    /** Consecutive throttled ticks that trigger one pace backoff. */
    int throttleDetectTicks = 2;
    /** Pacing ceiling (slowest cadence the pacer falls back to). */
    SimTime paceMax = SimTime::fromMs(512);
    /** Successful paced ticks before probing a faster cadence. */
    int paceProbeTicks = 16;
};

/**
 * Counters of the sampler's fault-recovery activity (plus the
 * stream-repair stats the Eavesdropper merges in from its
 * ChangeDetector). All-zero on a fault-free run.
 */
struct HealthStats
{
    /** EINTR/EAGAIN ioctls retried inline. */
    std::uint64_t transientRetries = 0;
    /** EBUSY reservation re-attempts (degraded-mode reacquisition). */
    std::uint64_t busyRetries = 0;
    /** Device reopen cycles (after ENODEV). */
    std::uint64_t reopens = 0;
    /** Device resets survived with sampling resumed. */
    std::uint64_t resetsSurvived = 0;
    /** Times the watchdog revived a suspended tick chain. */
    std::uint64_t watchdogRecoveries = 0;
    /** Ticks that delivered no reading. */
    std::uint64_t missedReads = 0;
    /** Readings dropped to re-baseline (ChangeDetector). */
    std::uint64_t streamResets = 0;
    /** 32-bit wraparounds repaired in-stream (ChangeDetector). */
    std::uint64_t wrapsRepaired = 0;
    /** Counters currently reserved, of gpu::kNumSelectedCounters. */
    std::uint64_t countersHeld = 0;
    /** Reads lost to rate-limit throttling (EAGAIN after retries). */
    std::uint64_t throttledReads = 0;
    /** Pace backoffs (sampling cadence stretched under throttling). */
    std::uint64_t paceBackoffs = 0;
    /** Pace probes back toward full rate after sustained success. */
    std::uint64_t paceRecoveries = 0;
    /** Effective sampling interval, ns (degraded rate surfaced to
     *  the operator; aggregations keep the max across shards). */
    std::uint64_t effectiveIntervalNs = 0;
};

/** Periodic PC reader over the KGSL ioctl interface. */
class PcSampler
{
  public:
    PcSampler(kgsl::KgslDevice &dev, kgsl::ProcessContext proc,
              EventQueue &eq, SimTime interval,
              RecoveryParams recovery = {});
    ~PcSampler();

    PcSampler(const PcSampler &) = delete;
    PcSampler &operator=(const PcSampler &) = delete;

    /** Called with every completed reading. */
    void setListener(std::function<void(const Reading &)> fn)
    {
        listener_ = std::move(fn);
    }

    /**
     * Secondary observer invoked before the listener on every
     * reading. The tap sees exactly the stream the listener consumes,
     * so a trace recorded here replays bit-identically (trace
     * capture, see src/trace/).
     */
    void setTap(std::function<void(const Reading &)> fn)
    {
        tap_ = std::move(fn);
    }

    /** Extra wakeup latency source (CPU-load model). */
    void setWakeupJitter(std::function<SimTime()> fn)
    {
        wakeupJitter_ = std::move(fn);
    }

    /**
     * Attach a telemetry context: per-tick `sampler.tick` spans,
     * read/recovery counters, a counters-held gauge and audit
     * records for suspension/recovery. Observational only — the
     * reading stream is identical with telemetry on or off.
     */
    void setTelemetry(obs::Telemetry *tel);

    /**
     * Open the device file and reserve the counters.
     * @return true on success; false (with lastErrno set) if the
     * security policy denies the attack — the RBAC mitigation path.
     */
    bool start();

    /** Stop sampling and close the descriptor. */
    void stop();

    bool running() const { return running_; }
    SimTime interval() const { return interval_; }

    /** Current tick cadence: interval(), stretched while the pacer
     *  is backing off from a rate-limiting policy. */
    SimTime effectiveInterval() const
    {
        return paceInterval_ > interval_ ? paceInterval_ : interval_;
    }

    std::uint64_t readCount() const { return reads_; }
    int lastErrno() const { return lastErrno_; }

    /** @return true if the tick chain is parked on a hard fault and
     *  only the watchdog is still probing the device. */
    bool suspended() const { return suspended_; }

    /** @return true while holding fewer than all selected counters. */
    bool degraded() const;

    /** Recovery accounting (streamResets/wrapsRepaired stay 0 here;
     *  the Eavesdropper's view merges the ChangeDetector's). */
    HealthStats health() const;

    const RecoveryParams &recovery() const { return recovery_; }

    /** Synchronous single read (used by the offline trainer's bot). */
    static bool readOnce(kgsl::KgslDevice &dev, int fd,
                         gpu::CounterTotals &out);

  private:
    void tick();
    void scheduleNext();
    void scheduleWatchdog();
    void watchdogProbe();
    bool openAndReserve();
    bool reopenAfterReset();
    void maybeReacquire();
    void notePaceThrottle();
    void notePaceSuccess();
    void updateHeldGauge();
    int ioctlRetrying(unsigned long request, void *arg);
    int readHeld(gpu::CounterTotals &out);

    kgsl::KgslDevice &dev_;
    kgsl::ProcessContext proc_;
    EventQueue &eq_;
    SimTime interval_;
    RecoveryParams recovery_;
    std::function<void(const Reading &)> listener_;
    std::function<void(const Reading &)> tap_;
    std::function<SimTime()> wakeupJitter_;
    int fd_ = -1;
    bool running_ = false;
    bool suspended_ = false;
    std::uint64_t reads_ = 0;
    int lastErrno_ = 0;
    /** Which of the 11 selected counters we currently hold. */
    std::array<bool, gpu::kNumSelectedCounters> held_{};
    /** Last value read per counter; unheld counters repeat theirs so
     *  downstream deltas stay zero instead of going backwards. */
    gpu::CounterTotals lastSeen_{};
    /** Current / next-due EBUSY re-reservation backoff. */
    SimTime backoff_;
    SimTime backoffDue_;
    /** Paced tick cadence (== interval_ when not throttled). */
    SimTime paceInterval_;
    /** Consecutive EAGAIN-missed / successful ticks (pacing). */
    int consecThrottled_ = 0;
    int consecOk_ = 0;
    HealthStats health_;
    obs::Telemetry *telemetry_ = nullptr;
    obs::StageTimer tickTimer_;
    obs::Counter *readsOkCtr_ = nullptr;
    obs::Counter *readsMissedCtr_ = nullptr;
    obs::Counter *transientRetriesCtr_ = nullptr;
    obs::Counter *busyRetriesCtr_ = nullptr;
    obs::Counter *reopensCtr_ = nullptr;
    obs::Counter *watchdogRecoveriesCtr_ = nullptr;
    obs::Counter *throttledReadsCtr_ = nullptr;
    obs::Counter *paceBackoffsCtr_ = nullptr;
    obs::Counter *paceRecoveriesCtr_ = nullptr;
    obs::Gauge *countersHeldGauge_ = nullptr;
    /** Bumped by start()/stop(); pending callbacks from an older
     *  generation are no-ops, making stop/restart cycles safe. */
    std::uint64_t generation_ = 0;
    std::shared_ptr<int> aliveToken_;
};

/**
 * Open the device and reserve the 11 selected counters.
 * @return the fd, or a negative errno.
 */
int openAndReserveCounters(kgsl::KgslDevice &dev,
                           const kgsl::ProcessContext &proc);

} // namespace gpusc::attack

#endif // GPUSC_ATTACK_SAMPLER_H
