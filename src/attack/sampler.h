/**
 * @file
 * The attack's periodic performance-counter sampler.
 *
 * Replays the paper's Fig. 10 flow through the simulated device file:
 * open /dev/kgsl-3d0, reserve the 11 selected countables with
 * IOCTL_KGSL_PERFCOUNTER_GET, then blockread them all on a fixed
 * interval (default 8 ms) with IOCTL_KGSL_PERFCOUNTER_READ. Wakeups
 * can be jittered by a caller-supplied delay source to model CPU
 * contention (§7.3).
 */

#ifndef GPUSC_ATTACK_SAMPLER_H
#define GPUSC_ATTACK_SAMPLER_H

#include <functional>
#include <memory>

#include "gpu/counters.h"
#include "kgsl/device.h"
#include "util/event_queue.h"

namespace gpusc::attack {

/** One sampler tick's observation. */
struct Reading
{
    SimTime time;
    gpu::CounterTotals totals{};
};

/** Periodic PC reader over the KGSL ioctl interface. */
class PcSampler
{
  public:
    PcSampler(kgsl::KgslDevice &dev, kgsl::ProcessContext proc,
              EventQueue &eq, SimTime interval);
    ~PcSampler();

    PcSampler(const PcSampler &) = delete;
    PcSampler &operator=(const PcSampler &) = delete;

    /** Called with every completed reading. */
    void setListener(std::function<void(const Reading &)> fn)
    {
        listener_ = std::move(fn);
    }

    /**
     * Secondary observer invoked before the listener on every
     * reading. The tap sees exactly the stream the listener consumes,
     * so a trace recorded here replays bit-identically (trace
     * capture, see src/trace/).
     */
    void setTap(std::function<void(const Reading &)> fn)
    {
        tap_ = std::move(fn);
    }

    /** Extra wakeup latency source (CPU-load model). */
    void setWakeupJitter(std::function<SimTime()> fn)
    {
        wakeupJitter_ = std::move(fn);
    }

    /**
     * Open the device file and reserve the counters.
     * @return true on success; false (with lastErrno set) if the
     * security policy denies the attack — the RBAC mitigation path.
     */
    bool start();

    /** Stop sampling and close the descriptor. */
    void stop();

    bool running() const { return running_; }
    SimTime interval() const { return interval_; }
    std::uint64_t readCount() const { return reads_; }
    int lastErrno() const { return lastErrno_; }

    /** Synchronous single read (used by the offline trainer's bot). */
    static bool readOnce(kgsl::KgslDevice &dev, int fd,
                         gpu::CounterTotals &out);

  private:
    void tick();

    kgsl::KgslDevice &dev_;
    kgsl::ProcessContext proc_;
    EventQueue &eq_;
    SimTime interval_;
    std::function<void(const Reading &)> listener_;
    std::function<void(const Reading &)> tap_;
    std::function<SimTime()> wakeupJitter_;
    int fd_ = -1;
    bool running_ = false;
    std::uint64_t reads_ = 0;
    int lastErrno_ = 0;
    std::shared_ptr<int> aliveToken_;
};

/**
 * Open the device and reserve the 11 selected counters.
 * @return the fd, or a negative errno.
 */
int openAndReserveCounters(kgsl::KgslDevice &dev,
                           const kgsl::ProcessContext &proc);

} // namespace gpusc::attack

#endif // GPUSC_ATTACK_SAMPLER_H
