#include "attack/trace_inference.h"

#include <limits>

namespace gpusc::attack {

TraceInference::TraceInference(const SignatureModel &model,
                               OnlineInference::Params params)
    : model_(model), params_(params)
{
}

std::vector<InferredKey>
TraceInference::infer(const std::vector<PcChange> &changes) const
{
    const std::size_t n = changes.size();

    // Pre-classify every candidate once through the batch path: all
    // single-change deltas, plus the combined delta of every pair
    // that falls inside the combine window (the pairing condition
    // depends only on timestamps, so it is known up front). The DP
    // and the decision walk below then reuse these matches instead
    // of re-running classifyRobust — same matches, computed once.
    std::vector<gpu::CounterVec> singleDeltas(n);
    for (std::size_t i = 0; i < n; ++i)
        singleDeltas[i] = changes[i].delta;
    std::vector<SignatureModel::Match> single(n);
    model_.classifyRobustBatch(singleDeltas, single);

    std::vector<std::size_t> pairSlot(n, std::size_t(-1));
    std::vector<gpu::CounterVec> pairDeltas;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        if (changes[i + 1].time - changes[i].time >
            params_.combineWindow)
            continue;
        using gpu::operator+;
        pairSlot[i] = pairDeltas.size();
        pairDeltas.push_back(changes[i].delta + changes[i + 1].delta);
    }
    std::vector<SignatureModel::Match> pairMatch(pairDeltas.size());
    model_.classifyRobustBatch(pairDeltas, pairMatch);

    // dp[i]: best (keys, totalDistance) for the suffix starting at i,
    // with choice[i] recording the decision (0 = noise, 1 = single,
    // 2 = pair with i+1).
    struct Cell
    {
        int keys = 0;
        double dist = 0.0;
        int choice = 0;
    };
    std::vector<Cell> dp(n + 1);

    auto better = [](int keysA, double distA, int keysB, double distB) {
        if (keysA != keysB)
            return keysA > keysB;
        return distA < distB;
    };

    for (std::size_t idx = n; idx-- > 0;) {
        // Option 0: this change is noise.
        Cell best{dp[idx + 1].keys, dp[idx + 1].dist, 0};

        // Option 1: a key press by itself.
        if (single[idx].accepted(model_.threshold())) {
            const int keys = 1 + dp[idx + 1].keys;
            const double dist =
                single[idx].distance + dp[idx + 1].dist;
            if (better(keys, dist, best.keys, best.dist))
                best = Cell{keys, dist, 1};
        }

        // Option 2: the left half of a split pair.
        if (pairSlot[idx] != std::size_t(-1)) {
            const SignatureModel::Match &pair =
                pairMatch[pairSlot[idx]];
            if (pair.accepted(model_.threshold())) {
                const int keys = 1 + dp[idx + 2].keys;
                const double dist = pair.distance + dp[idx + 2].dist;
                if (better(keys, dist, best.keys, best.dist))
                    best = Cell{keys, dist, 2};
            }
        }
        dp[idx] = best;
    }

    // Walk the decisions, then apply the T_min duplication rule the
    // same way the online phase does.
    std::vector<InferredKey> keys;
    SimTime lastAccepted = SimTime::fromSeconds(-1e6);
    std::size_t i = 0;
    while (i < n) {
        const int choice = dp[i].choice;
        if (choice == 0) {
            ++i;
            continue;
        }
        const SignatureModel::Match &match =
            choice == 1 ? single[i] : pairMatch[pairSlot[i]];
        const SimTime at = changes[i].time;
        if (at - lastAccepted >= params_.tmin) {
            keys.push_back(
                InferredKey{match.sig->label, at, match.distance});
            lastAccepted = at;
        }
        i += std::size_t(choice);
    }
    return keys;
}

std::string
TraceInference::textFrom(const std::vector<InferredKey> &keys)
{
    std::string out;
    for (const InferredKey &k : keys)
        if (!isPageLabel(k.label) && k.label.size() == 1)
            out.push_back(k.label[0]);
    return out;
}

} // namespace gpusc::attack
