#include "attack/online_inference.h"

namespace gpusc::attack {

OnlineInference::OnlineInference(const SignatureModel &model,
                                 Params params)
    : model_(model), params_(params)
{
}

void
OnlineInference::setTelemetry(obs::Telemetry *tel)
{
    telemetry_ = tel;
    if (!tel) {
        changesInCtr_ = acceptedCtr_ = dupDropsCtr_ =
            splitCombinesCtr_ = noiseCtr_ = nullptr;
        return;
    }
    auto &m = tel->metrics;
    changesInCtr_ = &m.counter("infer.changes_in");
    acceptedCtr_ = &m.counter("infer.accepted");
    dupDropsCtr_ = &m.counter("infer.dup_drops");
    splitCombinesCtr_ = &m.counter("infer.split_combines");
    noiseCtr_ = &m.counter("infer.noise");
}

std::optional<InferredKey>
OnlineInference::onChange(const PcChange &change)
{
    if (changesInCtr_)
        changesInCtr_->inc();

    // Step 0: duplication filter. A human cannot press two keys
    // within T_min, so a change right after an inferred press is the
    // popup animation re-rendering, not a new key.
    if (dupFilter_ && change.time - lastInferred_ < params_.tmin) {
        ++dupDrops_;
        if (telemetry_) {
            dupDropsCtr_->inc();
            telemetry_->audit.record(change.time,
                                     obs::Stage::Inference,
                                     obs::Decision::DuplicationDrop);
        }
        return std::nullopt;
    }

    // Step 1: direct classification. (The classify stage's host
    // latency is recorded by the Eavesdropper, which times every
    // change anyway — no clock reads here.)
    gpu::CounterVec effective{};
    const SignatureModel::Match direct =
        model_.classifyRobust(change.delta, &effective);
    if (direct.accepted(model_.threshold())) {
        lastInferred_ = change.time;
        prevUnmatched_.reset();
        ++inferred_;
        if (acceptedCtr_)
            acceptedCtr_->inc();
        return InferredKey{direct.sig->label, change.time,
                           direct.distance, false, effective};
    }

    // Step 2: split repair — the GPU was mid-frame at the previous
    // read, so this change plus the previous unmatched one may be the
    // two halves of a single frame's delta.
    if (splitRepair_ && prevUnmatched_ &&
        change.time - prevUnmatched_->time <= params_.combineWindow) {
        using gpu::operator+;
        const gpu::CounterVec combined =
            prevUnmatched_->delta + change.delta;
        const SignatureModel::Match m =
            model_.classifyRobust(combined, &effective);
        if (m.accepted(model_.threshold())) {
            const SimTime at = prevUnmatched_->time;
            lastInferred_ = change.time;
            prevUnmatched_.reset();
            ++inferred_;
            ++splitCombines_;
            if (telemetry_) {
                acceptedCtr_->inc();
                splitCombinesCtr_->inc();
            }
            return InferredKey{m.sig->label, at, m.distance, true,
                               effective};
        }
    }

    // Step 3: system noise; remember it as a potential left split
    // piece.
    ++noise_;
    prevUnmatched_ = change;
    if (telemetry_) {
        noiseCtr_->inc();
        telemetry_->audit.record(change.time, obs::Stage::Inference,
                                 obs::Decision::NoiseRejected);
    }
    if (noiseListener_)
        noiseListener_(change);
    return std::nullopt;
}

} // namespace gpusc::attack
