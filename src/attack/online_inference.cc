#include "attack/online_inference.h"

#include <cmath>

namespace gpusc::attack {

OnlineInference::OnlineInference(const SignatureModel &model,
                                 Params params)
    : model_(model), params_(params)
{
}

void
OnlineInference::setTelemetry(obs::Telemetry *tel)
{
    telemetry_ = tel;
    if (!tel) {
        changesInCtr_ = acceptedCtr_ = dupDropsCtr_ =
            splitCombinesCtr_ = noiseCtr_ = nullptr;
        return;
    }
    auto &m = tel->metrics;
    changesInCtr_ = &m.counter("infer.changes_in");
    acceptedCtr_ = &m.counter("infer.accepted");
    dupDropsCtr_ = &m.counter("infer.dup_drops");
    splitCombinesCtr_ = &m.counter("infer.split_combines");
    noiseCtr_ = &m.counter("infer.noise");
}

double
OnlineInference::effectiveThreshold() const
{
    if (!params_.noiseRobust)
        return model_.threshold();
    double th = model_.threshold() * params_.robustMarginScale;
    if (lattice_) {
        // Flooring cumulative values to a step-q lattice displaces
        // each observed delta by up to ±q per dimension. Widen the
        // accept radius by the normalised norm of the full-step
        // vector — the worst-case displacement of a genuine popup
        // delta, in the same units as C_th.
        double s = 0.0;
        const auto &scale = model_.scale();
        for (std::size_t d = 0; d < scale.size(); ++d) {
            if ((*lattice_)[d] > 1) {
                const double e = double((*lattice_)[d]) * scale[d];
                s += e * e;
            }
        }
        th += std::sqrt(s);
    }
    return th;
}

SignatureModel::Match
OnlineInference::classifyForMode(const gpu::CounterVec &delta,
                                 gpu::CounterVec *effectiveOut) const
{
    const SignatureModel::Match best =
        model_.classifyRobust(delta, effectiveOut);
    if (!params_.noiseRobust || !lattice_)
        return best;
    bool anyStep = false;
    for (std::size_t d = 0; d < lattice_->size(); ++d)
        anyStep = anyStep || (*lattice_)[d] > 1;
    if (!anyStep)
        return best;

    // Multi-reading voting over the lattice-displaced variants: the
    // observed delta, and the half-step up/down shifts that undo the
    // two worst-case flooring alignments. A label agreed by two of
    // the three votes wins outright; failing consensus, the closest
    // accepted variant still beats a rejected raw match (flooring
    // rarely leaves the raw delta inside the accept radius at all).
    gpu::CounterVec vplus{}, vminus{}, effPlus{}, effMinus{};
    for (std::size_t d = 0; d < delta.size(); ++d) {
        const std::int64_t half =
            (*lattice_)[d] > 1 ? std::int64_t((*lattice_)[d] / 2) : 0;
        vplus[d] = delta[d] + half;
        vminus[d] = delta[d] - half;
    }
    const SignatureModel::Match mp =
        model_.classifyRobust(vplus, &effPlus);
    const SignatureModel::Match mm =
        model_.classifyRobust(vminus, &effMinus);

    const double effTh = effectiveThreshold();
    const SignatureModel::Match *cands[3] = {&best, &mp, &mm};
    const gpu::CounterVec *effs[3] = {effectiveOut, &effPlus,
                                      &effMinus};
    int winner = -1;
    for (int i = 0; i < 3; ++i) {
        if (!cands[i]->accepted(effTh))
            continue;
        int votes = 0;
        for (int j = 0; j < 3; ++j)
            if (cands[j]->accepted(effTh) &&
                cands[j]->sig->label == cands[i]->sig->label)
                ++votes;
        if (votes < 2)
            continue;
        if (winner < 0 || cands[i]->distance < cands[winner]->distance)
            winner = i;
    }
    if (winner < 0)
        // No consensus: take the closest accepted variant, if any.
        for (int i = 0; i < 3; ++i)
            if (cands[i]->accepted(effTh) &&
                (winner < 0 ||
                 cands[i]->distance < cands[winner]->distance))
                winner = i;
    if (winner <= 0)
        return best; // raw match won, or nothing accepted
    if (effectiveOut && effs[winner])
        *effectiveOut = *effs[winner];
    return *cands[winner];
}

std::optional<InferredKey>
OnlineInference::onChange(const PcChange &change)
{
    if (changesInCtr_)
        changesInCtr_->inc();

    // Step 0: duplication filter. A human cannot press two keys
    // within T_min, so a change right after an inferred press is the
    // popup animation re-rendering, not a new key.
    if (dupFilter_ && change.time - lastInferred_ < params_.tmin) {
        ++dupDrops_;
        if (telemetry_) {
            dupDropsCtr_->inc();
            telemetry_->audit.record(change.time,
                                     obs::Stage::Inference,
                                     obs::Decision::DuplicationDrop);
        }
        return std::nullopt;
    }

    // Step 1: direct classification. (The classify stage's host
    // latency is recorded by the Eavesdropper, which times every
    // change anyway — no clock reads here.)
    gpu::CounterVec effective{};
    const SignatureModel::Match direct =
        classifyForMode(change.delta, &effective);
    if (direct.accepted(effectiveThreshold())) {
        lastInferred_ = change.time;
        prevUnmatched_.reset();
        ++inferred_;
        if (acceptedCtr_)
            acceptedCtr_->inc();
        return InferredKey{direct.sig->label, change.time,
                           direct.distance, false, effective};
    }

    // Step 2: split repair — the GPU was mid-frame at the previous
    // read, so this change plus the previous unmatched one may be the
    // two halves of a single frame's delta.
    if (splitRepair_ && prevUnmatched_ &&
        change.time - prevUnmatched_->time <= params_.combineWindow) {
        using gpu::operator+;
        const gpu::CounterVec combined =
            prevUnmatched_->delta + change.delta;
        const SignatureModel::Match m =
            classifyForMode(combined, &effective);
        if (m.accepted(effectiveThreshold())) {
            const SimTime at = prevUnmatched_->time;
            lastInferred_ = change.time;
            prevUnmatched_.reset();
            ++inferred_;
            ++splitCombines_;
            if (telemetry_) {
                acceptedCtr_->inc();
                splitCombinesCtr_->inc();
            }
            return InferredKey{m.sig->label, at, m.distance, true,
                               effective};
        }
    }

    // Step 3: system noise; remember it as a potential left split
    // piece.
    ++noise_;
    prevUnmatched_ = change;
    if (telemetry_) {
        noiseCtr_->inc();
        telemetry_->audit.record(change.time, obs::Stage::Inference,
                                 obs::Decision::NoiseRejected);
    }
    if (noiseListener_)
        noiseListener_(change);
    return std::nullopt;
}

} // namespace gpusc::attack
