#include "attack/launch_detector.h"

namespace gpusc::attack {

LaunchDetector::LaunchDetector(android::Device &device,
                               std::set<std::string> targetApps,
                               Params params)
    : device_(device), targets_(std::move(targetApps)),
      params_(params), rng_(params.seed),
      aliveToken_(std::make_shared<int>(0))
{
}

LaunchDetector::~LaunchDetector() = default;

void
LaunchDetector::start()
{
    if (running_)
        return;
    running_ = true;
    poll();
}

void
LaunchDetector::stop()
{
    running_ = false;
}

void
LaunchDetector::poll()
{
    if (!running_)
        return;

    const bool targetNow =
        device_.inTargetApp() &&
        targets_.contains(device_.config().app);

    if (targetNow && !inForeground_ && !missedThisSession_) {
        // A fresh foreground session of a target app: the procfs
        // classifier recognises it with the published accuracy; a
        // missed session stays missed until the app leaves.
        if (rng_.bernoulli(params_.detectionRate)) {
            inForeground_ = true;
            ++detected_;
            if (onLaunch_)
                onLaunch_(device_.config().app);
        } else {
            missedThisSession_ = true;
            ++missed_;
        }
    } else if (!targetNow) {
        missedThisSession_ = false;
        if (inForeground_) {
            inForeground_ = false;
            if (onExit_)
                onExit_();
        }
    }

    std::weak_ptr<int> alive = aliveToken_;
    device_.eq().scheduleAfter(params_.pollInterval, [this, alive] {
        if (!alive.expired())
            poll();
    });
}

} // namespace gpusc::attack
