#include "attack/trainer.h"

#include <algorithm>
#include <cstdlib>
#include <cmath>
#include <map>
#include <set>

#include "android/input.h"
#include "attack/sampler.h"
#include "util/logging.h"

namespace gpusc::attack {

using namespace gpusc::sim_literals;
using android::KbPage;
using android::Key;
using android::KeyCode;

namespace {

/** Bot-side helper driving one device through capture cycles. */
class TrainingBot
{
  public:
    TrainingBot(android::Device &dev, int fd,
                const OfflineTrainer::Params &params)
        : dev_(dev), fd_(fd), params_(params), injector_(dev)
    {
    }

    gpu::CounterTotals
    read()
    {
        gpu::CounterTotals t{};
        if (!PcSampler::readOnce(dev_.kgsl(), fd_, t))
            fatal("TrainingBot: counter read failed");
        return t;
    }

    /**
     * Wait until the counters stop moving (UI fully settled). The
     * stability window must exceed one vsync period: an invalidation
     * that has not rendered yet is invisible to the counters, and a
     * shorter window would let it merge into the next captured frame.
     */
    void
    settle()
    {
        gpu::CounterTotals last = read();
        int stable = 0;
        for (int i = 0; i < 1500 && stable < 24; ++i) {
            dev_.runFor(1_ms);
            const gpu::CounterTotals cur = read();
            if (cur == last) {
                ++stable;
            } else {
                stable = 0;
                last = cur;
            }
        }
    }

    /**
     * Wait for the next counter change and accumulate it until the
     * counters hold still for 3 ms (merging split pieces of one
     * frame, stopping before the next vsync can add another frame).
     * @return the change, or a zero vector on timeout.
     */
    gpu::CounterVec
    captureNextChange(int timeoutMs = 80)
    {
        const gpu::CounterTotals base = read();
        gpu::CounterTotals cur = base;
        int waited = 0;
        while (cur == base && waited < timeoutMs) {
            dev_.runFor(1_ms);
            cur = read();
            ++waited;
        }
        gpu::CounterVec delta{};
        if (cur == base)
            return delta; // timeout
        gpu::CounterTotals last = cur;
        int stable = 0;
        while (stable < 3) {
            dev_.runFor(1_ms);
            cur = read();
            if (cur == last) {
                ++stable;
            } else {
                stable = 0;
                last = cur;
            }
        }
        for (std::size_t i = 0; i < delta.size(); ++i)
            delta[i] = std::int64_t(last[i] - base[i]);
        return delta;
    }

    /** Steer the IME onto @p page with injected touches. */
    void
    navigateTo(KbPage page)
    {
        for (int hop = 0; hop < 4 && dev_.ime().page() != page;
             ++hop) {
            const KbPage cur = dev_.ime().page();
            KeyCode need;
            if (cur == KbPage::Symbols)
                need = KeyCode::Abc;
            else if (page == KbPage::Symbols)
                need = KeyCode::Sym;
            else
                need = KeyCode::Shift;
            const Key *k = dev_.ime().layout().findSpecial(cur, need);
            if (!k)
                fatal("TrainingBot: page-switch key missing");
            injector_.tapKey(*k, 90_ms);
            dev_.runFor(200_ms);
            settle();
        }
        if (dev_.ime().page() != page)
            fatal("TrainingBot: failed to reach keyboard page %d",
                  int(page));
    }

    /** Inject a touch on @p key through the /dev/input path. */
    void
    press(const Key &key, SimTime duration)
    {
        injector_.tapKey(key, duration);
    }

    /** Capture one popup-show sample (and the trailing echo). */
    void
    sampleKey(const Key &key, gpu::CounterVec &sigOut,
              gpu::CounterVec &echoOut, bool &echoValid)
    {
        settle();
        press(key, params_.pressDuration);
        sigOut = captureNextChange();
        // The next change after the popup show is either the popup
        // animation's duplicate frame (same magnitude) or the text
        // echo (small); skip duplicates.
        echoValid = false;
        const std::int64_t sigL1 = gpu::l1Norm(sigOut);
        for (int attempt = 0; attempt < 3; ++attempt) {
            const gpu::CounterVec next = captureNextChange(160);
            if (gpu::isZero(next))
                break;
            const std::int64_t l1 = gpu::l1Norm(next);
            // The field echo redraw is roughly a tenth of the popup
            // show; cursor blinks are thousands of times smaller and
            // popup dismissals a few times smaller. Only accept the
            // echo-sized change.
            if (l1 > sigL1 / 20 && l1 < sigL1 / 4) {
                echoOut = next;
                echoValid = true;
                break;
            }
        }
        dev_.runFor(260_ms); // flush popup dismissal / auto-unshift
        settle();
    }

  private:
    android::Device &dev_;
    int fd_;
    const OfflineTrainer::Params &params_;
    android::InputInjector injector_;
};

} // namespace

SignatureModel
OfflineTrainer::train(const android::DeviceConfig &victimCfg) const
{
    // The bot owns the device: no notifications, deterministic seed.
    android::DeviceConfig cfg = victimCfg;
    cfg.notificationMeanInterval = SimTime();
    cfg.seed = victimCfg.seed ^ 0x7261696e65724aULL;
    android::Device dev(cfg);
    dev.boot();
    dev.launchTargetApp();
    dev.runFor(500_ms);

    // The bot runs in Termux on a rooted device (paper §6); it still
    // reads counters through the same device-file interface.
    const kgsl::ProcessContext botCtx{999, "shell"};
    const int fd = openAndReserveCounters(dev.kgsl(), botCtx);
    if (fd < 0)
        fatal("OfflineTrainer: cannot open %s (errno %d)",
              kgsl::KgslDevice::path(), -fd);

    TrainingBot bot(dev, fd, params_);

    TrainingCapture cap;

    // Measure the cursor-blink change at several cursor positions:
    // with the field focused and the bot idle, the small periodic
    // changes are blink toggles. The cursor's horizontal position
    // (hence its tile alignment) depends on the text length, so
    // variants are sampled at a few lengths. They serve two purposes:
    // subtraction candidates for classifyRobust(), and a floor under
    // C_th for the residual alignment mismatch.
    auto &blinkSamples = cap.blinkSamples;
    auto captureBlinks = [&](int count) {
        for (int i = 0; i < count; ++i) {
            const gpu::CounterVec b = bot.captureNextChange(700);
            if (!gpu::isZero(b) && gpu::l1Norm(b) < 5000)
                blinkSamples.push_back(b);
        }
    };
    captureBlinks(2);
    {
        const Key *seed =
            dev.ime().layout().findChar(KbPage::Lower, 'a');
        for (int round = 0; round < 3; ++round) {
            bot.press(*seed, params_.pressDuration);
            dev.runFor(400_ms);
            bot.settle();
            captureBlinks(2);
        }
        dev.app().clearText();
        dev.runFor(200_ms);
        bot.settle();
    }

    auto &samples = cap.samples;
    auto &echoes = cap.echoes;
    int pressesSinceClear = 0;
    int clearEpoch = 0;
    int pressIdx = 0;

    // --- Page-switch labels: capture the full-page redraw deltas.
    for (int rep = 0; rep < params_.repetitions; ++rep) {
        bot.navigateTo(KbPage::Lower);
        for (KbPage page : {KbPage::Upper, KbPage::Symbols}) {
            bot.navigateTo(page == KbPage::Symbols ? KbPage::Lower
                                                   : KbPage::Lower);
            bot.settle();
            const Key *k = dev.ime().layout().findSpecial(
                KbPage::Lower, page == KbPage::Upper ? KeyCode::Shift
                                                     : KeyCode::Sym);
            bot.press(*k, 90_ms);
            samples[pageLabel(int(page))].push_back(
                bot.captureNextChange());
            dev.runFor(150_ms);
            // Return to Lower (capturing the PAGE:lower sample).
            bot.settle();
            const Key *back = dev.ime().layout().findSpecial(
                page, page == KbPage::Upper ? KeyCode::Shift
                                            : KeyCode::Abc);
            bot.press(*back, 90_ms);
            samples[pageLabel(int(KbPage::Lower))].push_back(
                bot.captureNextChange());
            dev.runFor(150_ms);
        }
    }

    // --- Character labels, page by page.
    std::set<char> trained;
    int textLen = 0;
    for (KbPage page :
         {KbPage::Lower, KbPage::Upper, KbPage::Symbols}) {
        for (const Key &key : dev.ime().layout().keys(page)) {
            if (key.code != KeyCode::Char || key.ch == ' ' ||
                trained.contains(key.ch))
                continue;
            trained.insert(key.ch);
            for (int rep = 0; rep < params_.repetitions; ++rep) {
                bot.navigateTo(page);
                if (pressesSinceClear >= 12) {
                    dev.app().clearText();
                    pressesSinceClear = 0;
                    textLen = 0;
                    ++clearEpoch;
                }
                gpu::CounterVec sig{}, echo{};
                bool echoValid = false;
                bot.sampleKey(key, sig, echo, echoValid);
                ++pressesSinceClear;
                if (gpu::isZero(sig)) {
                    warn("OfflineTrainer: empty sample for '%c'",
                         key.ch);
                    continue;
                }
                if (std::getenv("GPUSC_TRAINER_DEBUG") &&
                    (key.ch == 'a' || key.ch == 'w')) {
                    warn("sample '%c' rep %d: prim=%lld part=%lld "
                         "pix=%lld cyc=%lld full=%lld",
                         key.ch, rep,
                         (long long)sig[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ],
                         (long long)sig[gpu::LRZ_PARTIAL_8X8_TILES],
                         (long long)sig[gpu::LRZ_VISIBLE_PIXEL_AFTER_LRZ],
                         (long long)sig[gpu::RAS_SUPERTILE_ACTIVE_CYCLES],
                         (long long)sig[gpu::LRZ_FULL_8X8_TILES]);
                }
                samples[Label(1, key.ch)].push_back(sig);
                ++pressIdx;
                ++textLen; // the press committed one character
                if (echoValid)
                    echoes.push_back(
                        {echo, clearEpoch, pressIdx, textLen});
            }
        }
    }

    dev.kgsl().close(fd);

    return trainFromCapture(dev.modelKey(), cap);
}

SignatureModel
OfflineTrainer::trainFromCapture(const std::string &modelKey,
                                 const TrainingCapture &capture) const
{
    const auto &samples = capture.samples;
    const auto &blinkSamples = capture.blinkSamples;
    const auto &echoes = capture.echoes;

    // --- Distil the model.
    SignatureModel model;
    model.setModelKey(modelKey);
    if (samples.empty()) {
        warn("OfflineTrainer: empty capture for '%s'",
             modelKey.c_str());
        std::array<double, gpu::kNumSelectedCounters> unit{};
        unit.fill(1.0);
        model.setScale(unit);
        return model;
    }

    // Per-dimension scale: inverse mean magnitude across all samples.
    std::array<double, gpu::kNumSelectedCounters> meanAbs{};
    std::size_t n = 0;
    for (const auto &[label, vecs] : samples) {
        for (const auto &v : vecs) {
            for (std::size_t d = 0; d < meanAbs.size(); ++d)
                meanAbs[d] += double(std::llabs(v[d]));
            ++n;
        }
    }
    // Discriminative normalisation. Counter values ride on huge
    // scene-wide baselines (~10^5) while the per-key information
    // lives in differences of tens to hundreds of counts, so
    // dimensions are scaled by how much the *label means* spread
    // (inter-class std), floored by the measurement-noise level so
    // uninformative dimensions cannot amplify noise.
    std::array<double, gpu::kNumSelectedCounters> scale{};
    {
        // Label means per dimension.
        std::vector<std::array<double, gpu::kNumSelectedCounters>>
            labelMeans;
        std::array<double, gpu::kNumSelectedCounters> intraVar{};
        std::size_t intraN = 0;
        for (const auto &[label, vecs] : samples) {
            if (vecs.empty())
                continue;
            std::array<double, gpu::kNumSelectedCounters> mean{};
            for (const auto &v : vecs)
                for (std::size_t d = 0; d < mean.size(); ++d)
                    mean[d] += double(v[d]);
            for (double &m : mean)
                m /= double(vecs.size());
            for (const auto &v : vecs) {
                for (std::size_t d = 0; d < mean.size(); ++d) {
                    const double diff = double(v[d]) - mean[d];
                    intraVar[d] += diff * diff;
                }
                ++intraN;
            }
            labelMeans.push_back(mean);
        }
        std::array<double, gpu::kNumSelectedCounters> grand{};
        for (const auto &m : labelMeans)
            for (std::size_t d = 0; d < grand.size(); ++d)
                grand[d] += m[d];
        for (double &g : grand)
            g /= double(labelMeans.size());
        for (std::size_t d = 0; d < scale.size(); ++d) {
            double interVar = 0.0;
            for (const auto &m : labelMeans) {
                const double diff = m[d] - grand[d];
                interVar += diff * diff;
            }
            const double interStd =
                std::sqrt(interVar / double(labelMeans.size()));
            const double intraStd = std::sqrt(
                intraVar[d] / double(std::max<std::size_t>(1, intraN)));
            scale[d] =
                1.0 / std::max({1.0, interStd, 8.0 * intraStd});
        }
    }
    model.setScale(scale);

    double maxSelf = 0.0;
    for (const auto &[label, vecs] : samples) {
        if (vecs.empty())
            continue;
        LabelSignature sig;
        sig.label = label;
        // Component-wise median: a rare capture polluted by a merged
        // cursor-blink frame must not drag the centroid.
        for (std::size_t d = 0; d < gpu::kNumSelectedCounters; ++d) {
            std::vector<std::int64_t> vals;
            vals.reserve(vecs.size());
            for (const auto &v : vecs)
                vals.push_back(v[d]);
            std::sort(vals.begin(), vals.end());
            sig.centroid[d] = vals[vals.size() / 2];
        }
        std::vector<double> dists;
        for (const auto &v : vecs) {
            double s = 0.0;
            for (std::size_t d = 0; d < gpu::kNumSelectedCounters;
                 ++d) {
                const double diff =
                    double(v[d] - sig.centroid[d]) * scale[d];
                s += diff * diff;
            }
            dists.push_back(std::sqrt(s));
        }
        std::sort(dists.begin(), dists.end());
        // Robust spread: captures merged with an unlucky cursor-blink
        // frame sit far outside the noise cloud; exclude anything
        // beyond 5x the median distance when sizing the threshold.
        const double medianDist = dists[dists.size() / 2];
        double labelSelf = 0.0;
        for (double dist : dists)
            if (dist <= 5.0 * medianDist + 1e-6)
                labelSelf = std::max(labelSelf, dist);
        if (std::getenv("GPUSC_TRAINER_DEBUG") && labelSelf > 0.05)
            warn("trainer: label '%s' intra-class spread %.4f",
                 sig.label.c_str(), labelSelf);
        maxSelf = std::max(maxSelf, labelSelf);
        model.addSignature(std::move(sig));
    }
    // Blink variants: dedupe the sampled blink vectors (tile
    // alignment yields a handful of distinct shapes) and keep them in
    // the model for subtraction during online classification.
    std::vector<gpu::CounterVec> variants;
    auto scaledDist = [&](const gpu::CounterVec &a,
                          const gpu::CounterVec &b) {
        double s = 0.0;
        for (std::size_t d = 0; d < gpu::kNumSelectedCounters; ++d) {
            const double diff = double(a[d] - b[d]) * scale[d];
            s += diff * diff;
        }
        return std::sqrt(s);
    };
    for (const auto &b : blinkSamples) {
        bool dup = false;
        for (const auto &v : variants)
            dup = dup || scaledDist(b, v) < 0.05;
        if (!dup && variants.size() < 6)
            variants.push_back(b);
    }

    // C_th: wide enough to absorb intra-class spread (measurement
    // noise) plus the residual left when a blink-merged popup frame
    // subtracts a slightly-misaligned blink variant. Junk changes —
    // echoes, dismissals, split pieces, app redraws — sit orders of
    // magnitude further out, so the floor stays safe.
    double blinkResidual = 0.0;
    const gpu::CounterVec zero{};
    for (const auto &b : blinkSamples) {
        double best = scaledDist(b, zero);
        for (const auto &v : variants)
            best = std::min(best, scaledDist(b, v));
        blinkResidual = std::max(blinkResidual, best);
    }
    // Residuals across unseen alignments can exceed what training
    // observed; allow one full alignment step of slack.
    double maxVariantNorm = 0.0;
    for (const auto &v : variants)
        maxVariantNorm =
            std::max(maxVariantNorm, scaledDist(v, zero));
    model.setBlinkVariants(std::move(variants));
    model.setThreshold(std::max({params_.thresholdMargin * maxSelf,
                                 2.5 * blinkResidual,
                                 0.45 * maxVariantNorm, 1e-4}));

    // Echo model (§5.3): the field-redraw deltas lie on a line
    // echoBase + len * echoInc. Fit the per-dimension increment from
    // consecutive echoes, then the base, then a residual tolerance.
    double maxEchoL1 = 0.0;
    for (const auto &e : echoes)
        maxEchoL1 = std::max(maxEchoL1, double(gpu::l1Norm(e.delta)));
    model.setEchoCutoff(3.0 * maxEchoL1);

    gpu::CounterVec echoInc{};
    gpu::CounterVec echoBase{};
    for (std::size_t d = 0; d < gpu::kNumSelectedCounters; ++d) {
        std::vector<double> incs;
        for (std::size_t i = 1; i < echoes.size(); ++i) {
            if (echoes[i].epoch != echoes[i - 1].epoch ||
                echoes[i].pressIdx != echoes[i - 1].pressIdx + 1)
                continue;
            incs.push_back(double(echoes[i].delta[d]) -
                           double(echoes[i - 1].delta[d]));
        }
        if (!incs.empty()) {
            std::sort(incs.begin(), incs.end());
            echoInc[d] =
                std::int64_t(std::llround(incs[incs.size() / 2]));
        }
        std::vector<double> bases;
        for (const auto &e : echoes)
            bases.push_back(double(e.delta[d]) -
                            double(e.textLen) * double(echoInc[d]));
        if (!bases.empty()) {
            std::sort(bases.begin(), bases.end());
            echoBase[d] =
                std::int64_t(std::llround(bases[bases.size() / 2]));
        }
    }
    // Tolerance: a multiple of the typical training residual. The
    // 75th percentile is used instead of the max so echo captures that
    // merged with ambient animation frames (animated login screens)
    // cannot blow the band open and let junk decode as field redraws.
    std::vector<double> residuals;
    for (const auto &e : echoes) {
        double res = 0.0;
        for (std::size_t d = 0; d < gpu::kNumSelectedCounters; ++d) {
            const double fit =
                double(echoBase[d] + e.textLen * echoInc[d]) * scale[d];
            const double diff = double(e.delta[d]) * scale[d] - fit;
            res += diff * diff;
        }
        residuals.push_back(std::sqrt(res));
    }
    if (!echoes.empty()) {
        std::sort(residuals.begin(), residuals.end());
        const double typical = residuals[residuals.size() * 3 / 4];
        model.setEchoLine(echoBase, echoInc,
                          std::max(6.0 * typical, 0.05));
    }

    return model;
}

} // namespace gpusc::attack
