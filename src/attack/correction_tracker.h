/**
 * @file
 * Input-correction (backspace) detection, paper §5.3 / Fig. 14.
 *
 * Backspace raises no popup; its only GPU trace is the credential
 * field redrawing with one dot fewer — the visible-primitive counter
 * moves by exactly -2. Cursor blinking also moves the field's counter
 * by ±2 but alternates strictly (off/on/off/...) on a 0.5 s clock, so
 * two consecutive "-2" field events (or a single "-4") betray a
 * deletion. Field events are recognised by their small magnitude
 * (below the trained echo-band cutoff).
 */

#ifndef GPUSC_ATTACK_CORRECTION_TRACKER_H
#define GPUSC_ATTACK_CORRECTION_TRACKER_H

#include <functional>
#include <optional>

#include "attack/change_detector.h"
#include "attack/signature.h"

namespace gpusc::attack {

/** Decodes credential-field redraws into absolute text lengths. */
class CorrectionTracker
{
  public:
    explicit CorrectionTracker(const SignatureModel &model);

    /**
     * Inspect a change that was NOT classified as a key press.
     * @return the absolute field length if the change is a field
     * redraw on the trained echo line, else nullopt (blink, popup
     * dismissal, notification, foreign work, ...).
     */
    std::optional<int> decodeFieldLength(const PcChange &change) const;

    void noteDeletions(int n) { deletions_ += std::uint64_t(n); }
    std::uint64_t deletionsDetected() const { return deletions_; }

  private:
    const SignatureModel &model_;
    std::uint64_t deletions_ = 0;
};

} // namespace gpusc::attack

#endif // GPUSC_ATTACK_CORRECTION_TRACKER_H
