#include "attack/model_store.h"

#include <cstdio>
#include <cstring>

#include "util/binary_io.h"
#include "util/logging.h"

namespace gpusc::attack {

namespace {

/** File envelope magic "GPMS" (GPu Model Store). */
constexpr std::uint32_t kStoreFileMagic = 0x534d5047;
constexpr std::uint32_t kStoreFileVersion = 1;

} // namespace

void
ModelStore::put(SignatureModel model)
{
    const std::string key = model.modelKey();
    models_.insert_or_assign(key, std::move(model));
}

const SignatureModel *
ModelStore::find(const std::string &key) const
{
    auto it = models_.find(key);
    return it == models_.end() ? nullptr : &it->second;
}

const SignatureModel &
ModelStore::getOrTrain(const android::DeviceConfig &cfg,
                       const OfflineTrainer &trainer)
{
    // Key derivation must match Device::modelKey(); build a throwaway
    // device only to compute it cheaply? Constructing a Device is
    // cheap (no simulation run), so use it directly.
    const std::string key = android::Device(cfg).modelKey();
    auto it = models_.find(key);
    if (it != models_.end())
        return it->second;
    inform("ModelStore: training model for %s", key.c_str());
    SignatureModel m = trainer.train(cfg);
    return models_.emplace(key, std::move(m)).first->second;
}

std::vector<std::string>
ModelStore::keys() const
{
    std::vector<std::string> out;
    for (const auto &[k, v] : models_)
        out.push_back(k);
    return out;
}

std::size_t
ModelStore::totalByteSize() const
{
    std::size_t n = 0;
    for (const auto &[k, m] : models_)
        n += m.byteSize();
    return n;
}

std::vector<std::uint8_t>
ModelStore::serialize() const
{
    std::vector<std::uint8_t> out;
    const std::uint32_t count = std::uint32_t(models_.size());
    const auto *cp = reinterpret_cast<const std::uint8_t *>(&count);
    out.insert(out.end(), cp, cp + sizeof(count));
    for (const auto &[k, m] : models_) {
        const std::vector<std::uint8_t> blob = m.serialize();
        const std::uint32_t len = std::uint32_t(blob.size());
        const auto *lp = reinterpret_cast<const std::uint8_t *>(&len);
        out.insert(out.end(), lp, lp + sizeof(len));
        out.insert(out.end(), blob.begin(), blob.end());
    }
    return out;
}

ModelStore
ModelStore::deserialize(const std::vector<std::uint8_t> &blob)
{
    std::optional<ModelStore> store = tryDeserialize(blob);
    if (!store) {
        warn("ModelStore::deserialize: truncated or corrupt blob "
             "(%zu bytes) — returning an empty store",
             blob.size());
        return ModelStore{};
    }
    return *std::move(store);
}

std::optional<ModelStore>
ModelStore::tryDeserialize(const std::vector<std::uint8_t> &blob)
{
    ModelStore store;
    ByteReader r(blob);
    const std::uint32_t count = r.u32();
    if (!r.ok())
        return std::nullopt;
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t len = r.u32();
        if (!r.ok() || len > r.remaining())
            return std::nullopt;
        std::optional<SignatureModel> m =
            SignatureModel::tryDeserialize(blob.data() + r.pos(),
                                           len);
        if (!m)
            return std::nullopt;
        r.skip(len);
        store.put(*std::move(m));
    }
    if (!r.atEnd())
        return std::nullopt; // trailing garbage
    return store;
}

bool
ModelStore::saveToFile(const std::string &path) const
{
    FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const std::vector<std::uint8_t> payload = serialize();
    ByteWriter envelope;
    envelope.u32(kStoreFileMagic);
    envelope.u32(kStoreFileVersion);
    envelope.u64(payload.size());
    envelope.raw(payload.data(), payload.size());
    envelope.u32(crc32(payload));
    const std::vector<std::uint8_t> &blob = envelope.bytes();
    const bool ok =
        std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
    std::fclose(f);
    return ok;
}

ModelStore
ModelStore::loadFromFile(const std::string &path)
{
    std::optional<ModelStore> store = tryLoadFromFile(path);
    if (!store) {
        warn("ModelStore: cannot load '%s' — returning an empty "
             "store",
             path.c_str());
        return ModelStore{};
    }
    return *std::move(store);
}

std::optional<ModelStore>
ModelStore::tryLoadFromFile(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        warn("ModelStore: cannot open '%s'", path.c_str());
        return std::nullopt;
    }
    std::vector<std::uint8_t> blob;
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        blob.insert(blob.end(), buf, buf + n);
    std::fclose(f);

    ByteReader r(blob);
    if (r.u32() != kStoreFileMagic || !r.ok()) {
        warn("ModelStore: '%s' is not a model-store file",
             path.c_str());
        return std::nullopt;
    }
    if (r.u32() != kStoreFileVersion || !r.ok()) {
        warn("ModelStore: '%s' has an unknown version",
             path.c_str());
        return std::nullopt;
    }
    const std::uint64_t len = r.u64();
    if (!r.ok() || len + 4 != r.remaining()) {
        warn("ModelStore: '%s' is truncated", path.c_str());
        return std::nullopt;
    }
    const std::size_t payloadPos = r.pos();
    r.skip(std::size_t(len));
    const std::uint32_t storedCrc = r.u32();
    if (crc32(blob.data() + payloadPos, std::size_t(len)) !=
        storedCrc) {
        warn("ModelStore: '%s' failed its CRC check (corrupt file)",
             path.c_str());
        return std::nullopt;
    }
    std::optional<ModelStore> store = tryDeserialize(
        {blob.begin() + long(payloadPos),
         blob.begin() + long(payloadPos + len)});
    if (!store)
        warn("ModelStore: '%s' payload is malformed", path.c_str());
    return store;
}

ModelStore &
ModelStore::global()
{
    static ModelStore store;
    return store;
}

} // namespace gpusc::attack
