#include "attack/model_store.h"

#include <cstdio>
#include <cstring>

#include "util/logging.h"

namespace gpusc::attack {

void
ModelStore::put(SignatureModel model)
{
    const std::string key = model.modelKey();
    models_.insert_or_assign(key, std::move(model));
}

const SignatureModel *
ModelStore::find(const std::string &key) const
{
    auto it = models_.find(key);
    return it == models_.end() ? nullptr : &it->second;
}

const SignatureModel &
ModelStore::getOrTrain(const android::DeviceConfig &cfg,
                       const OfflineTrainer &trainer)
{
    // Key derivation must match Device::modelKey(); build a throwaway
    // device only to compute it cheaply? Constructing a Device is
    // cheap (no simulation run), so use it directly.
    const std::string key = android::Device(cfg).modelKey();
    auto it = models_.find(key);
    if (it != models_.end())
        return it->second;
    inform("ModelStore: training model for %s", key.c_str());
    SignatureModel m = trainer.train(cfg);
    return models_.emplace(key, std::move(m)).first->second;
}

std::vector<std::string>
ModelStore::keys() const
{
    std::vector<std::string> out;
    for (const auto &[k, v] : models_)
        out.push_back(k);
    return out;
}

std::size_t
ModelStore::totalByteSize() const
{
    std::size_t n = 0;
    for (const auto &[k, m] : models_)
        n += m.byteSize();
    return n;
}

std::vector<std::uint8_t>
ModelStore::serialize() const
{
    std::vector<std::uint8_t> out;
    const std::uint32_t count = std::uint32_t(models_.size());
    const auto *cp = reinterpret_cast<const std::uint8_t *>(&count);
    out.insert(out.end(), cp, cp + sizeof(count));
    for (const auto &[k, m] : models_) {
        const std::vector<std::uint8_t> blob = m.serialize();
        const std::uint32_t len = std::uint32_t(blob.size());
        const auto *lp = reinterpret_cast<const std::uint8_t *>(&len);
        out.insert(out.end(), lp, lp + sizeof(len));
        out.insert(out.end(), blob.begin(), blob.end());
    }
    return out;
}

ModelStore
ModelStore::deserialize(const std::vector<std::uint8_t> &blob)
{
    ModelStore store;
    std::size_t pos = 0;
    auto need = [&](std::size_t n) {
        if (pos + n > blob.size())
            fatal("ModelStore::deserialize: truncated blob");
    };
    need(4);
    std::uint32_t count;
    std::memcpy(&count, blob.data() + pos, 4);
    pos += 4;
    for (std::uint32_t i = 0; i < count; ++i) {
        need(4);
        std::uint32_t len;
        std::memcpy(&len, blob.data() + pos, 4);
        pos += 4;
        need(len);
        store.put(
            SignatureModel::deserialize(blob.data() + pos, len));
        pos += len;
    }
    return store;
}

bool
ModelStore::saveToFile(const std::string &path) const
{
    FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const std::vector<std::uint8_t> blob = serialize();
    const bool ok =
        std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
    std::fclose(f);
    return ok;
}

ModelStore
ModelStore::loadFromFile(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("ModelStore: cannot open '%s'", path.c_str());
    std::vector<std::uint8_t> blob;
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        blob.insert(blob.end(), buf, buf + n);
    std::fclose(f);
    return deserialize(blob);
}

ModelStore &
ModelStore::global()
{
    static ModelStore store;
    return store;
}

} // namespace gpusc::attack
