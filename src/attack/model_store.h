/**
 * @file
 * Store of preloaded per-configuration signature models (the attack
 * APK ships thousands of these; §7.6 sizes them at ~3.6 kB each).
 * Also memoises training so experiment campaigns train each device
 * configuration only once.
 */

#ifndef GPUSC_ATTACK_MODEL_STORE_H
#define GPUSC_ATTACK_MODEL_STORE_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "android/device.h"
#include "attack/signature.h"
#include "attack/trainer.h"

namespace gpusc::attack {

/** Keyed collection of signature models. */
class ModelStore
{
  public:
    /** Add (or replace) a model under its own key. */
    void put(SignatureModel model);

    /** @return the model for @p key, or nullptr. */
    const SignatureModel *find(const std::string &key) const;

    /**
     * Return the model for the configuration, training it via the
     * offline phase if the store does not have it yet.
     */
    const SignatureModel &getOrTrain(const android::DeviceConfig &cfg,
                                     const OfflineTrainer &trainer);

    std::size_t size() const { return models_.size(); }
    std::vector<std::string> keys() const;
    const std::map<std::string, SignatureModel> &all() const
    {
        return models_;
    }

    /** Total serialised size of all models, bytes. */
    std::size_t totalByteSize() const;

    /** Serialise the whole store / load it back. */
    std::vector<std::uint8_t> serialize() const;
    /**
     * Parse a serialised store. Truncated or corrupt blobs yield an
     * empty store with a warning log line — never UB or a crash.
     */
    static ModelStore deserialize(
        const std::vector<std::uint8_t> &blob);
    /** Like deserialize(), but reports failure as nullopt. */
    static std::optional<ModelStore> tryDeserialize(
        const std::vector<std::uint8_t> &blob);

    /**
     * File round trip (the preloaded asset in the APK). Files carry
     * a CRC-protected envelope, so any flipped byte is detected on
     * load; loadFromFile returns an empty store (with a warning) on
     * a missing, truncated or corrupt file.
     */
    bool saveToFile(const std::string &path) const;
    static ModelStore loadFromFile(const std::string &path);
    /** Like loadFromFile(), but reports failure as nullopt. */
    static std::optional<ModelStore> tryLoadFromFile(
        const std::string &path);

    /**
     * The process-wide store used by benches/tests so each device
     * configuration is trained at most once per process.
     */
    static ModelStore &global();

  private:
    std::map<std::string, SignatureModel> models_;
};

} // namespace gpusc::attack

#endif // GPUSC_ATTACK_MODEL_STORE_H
