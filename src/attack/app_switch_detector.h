/**
 * @file
 * Application-switch detection (paper §5.2, Fig. 13).
 *
 * The app-overview animation produces a dense burst of large counter
 * changes with inter-arrival gaps far below human typing (<50 ms).
 * While such a burst (or its aftermath) is active, key inference is
 * suppressed; it resumes when the keyboard's full redraw is recognised
 * (a PAGE:* classification — the keyboard reappearing in the target
 * app) or after a long quiet period.
 */

#ifndef GPUSC_ATTACK_APP_SWITCH_DETECTOR_H
#define GPUSC_ATTACK_APP_SWITCH_DETECTOR_H

#include <deque>

#include "attack/change_detector.h"
#include "attack/signature.h"
#include "util/sim_time.h"

namespace gpusc::attack {

/** Burst-based suppression state machine. */
class AppSwitchDetector
{
  public:
    struct Params
    {
        /** Max gap between changes belonging to one burst. */
        SimTime burstGap = SimTime::fromMs(50);
        /** Changes within burstGap chains needed to call it a burst.
         *  Transition animations produce 10-20 such changes; normal
         *  typing maxes out around 4 (split pieces + a duplicated
         *  popup frame). */
        int burstCount = 7;
        /** Quiet time that ends suppression without a PAGE resume. */
        SimTime quietResume = SimTime::fromMs(800);
    };

    AppSwitchDetector() : AppSwitchDetector(Params{}) {}
    explicit AppSwitchDetector(Params params);

    /** Feed every change (before classification). */
    void onChange(const PcChange &change);

    /** Feed every accepted classification (after onChange). Any
     *  accepted signature match means the keyboard is rendering in
     *  the target app again, so suppression ends. */
    void onClassified(const Label &label, SimTime time);

    /** True while inference output should be discarded. */
    bool suppressed(SimTime now) const;

    std::uint64_t burstsDetected() const { return bursts_; }

  private:
    Params params_;
    std::deque<SimTime> recent_;
    bool suppressed_ = false;
    SimTime lastChange_ = SimTime::fromSeconds(-1e6);
    std::uint64_t bursts_ = 0;
};

} // namespace gpusc::attack

#endif // GPUSC_ATTACK_APP_SWITCH_DETECTOR_H
