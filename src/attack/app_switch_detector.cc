#include "attack/app_switch_detector.h"

namespace gpusc::attack {

AppSwitchDetector::AppSwitchDetector(Params params) : params_(params) {}

void
AppSwitchDetector::onChange(const PcChange &change)
{
    // A long quiet gap ends any active suppression before this change
    // is considered.
    if (suppressed_ && change.time - lastChange_ > params_.quietResume) {
        suppressed_ = false;
        recent_.clear();
    }
    // Maintain the chain of changes whose consecutive gaps are below
    // the burst threshold.
    if (!recent_.empty() &&
        change.time - recent_.back() > params_.burstGap)
        recent_.clear();
    recent_.push_back(change.time);
    if (int(recent_.size()) >= params_.burstCount) {
        if (!suppressed_)
            ++bursts_;
        suppressed_ = true;
    }
    lastChange_ = change.time;
}

void
AppSwitchDetector::onClassified(const Label &label, SimTime time)
{
    // Any signature acceptance — a keyboard page redraw or a key
    // popup — means the keyboard is rendering in the target app
    // again; the overview animation and other apps never match the
    // trained signatures.
    (void)label;
    (void)time;
    if (suppressed_) {
        suppressed_ = false;
        recent_.clear();
    }
}

bool
AppSwitchDetector::suppressed(SimTime now) const
{
    if (!suppressed_)
        return false;
    // Long silence also ends suppression (the switch animation and the
    // other app's activity are over); onChange makes this permanent on
    // the next event.
    return now - lastChange_ <= params_.quietResume;
}

} // namespace gpusc::attack
