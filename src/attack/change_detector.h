/**
 * @file
 * Turns the sampler's cumulative counter readings into change events
 * (paper Fig. 11's "PC value changes"). A change is any reading whose
 * totals differ from the previous reading; consecutive changes from
 * one long render job are the *split* artefact repaired downstream.
 *
 * Real hardware counters are not monotonic: a GPU power collapse
 * zeroes them and the 32-bit physical registers wrap. A counter
 * moving backwards (or implausibly far forwards) is therefore a
 * stream discontinuity, not a render job — naive unsigned
 * subtraction would turn it into one garbage mega-change that the
 * classifier mistakes for a huge frame. The detector disambiguates:
 * a small backward step near the 2^32 boundary is repaired as a
 * wraparound; anything else re-baselines silently and notifies the
 * discontinuity listener so downstream split-repair state can be
 * flushed too.
 */

#ifndef GPUSC_ATTACK_CHANGE_DETECTOR_H
#define GPUSC_ATTACK_CHANGE_DETECTOR_H

#include <array>
#include <cstdint>
#include <functional>
#include <numeric>
#include <optional>

#include "attack/sampler.h"
#include "gpu/counters.h"
#include "obs/telemetry.h"

namespace gpusc::attack {

/** One observed counter-value change. */
struct PcChange
{
    SimTime time;
    gpu::CounterVec delta{};
};

/** Differences consecutive readings. */
class ChangeDetector
{
  public:
    /** 32-bit physical registers wrap at this modulus. */
    static constexpr std::uint64_t kWrapModulus = 1ull << 32;

    /**
     * No real render job moves a counter further than this between
     * two samples (the busiest frames are ~10^5 per counter); a
     * larger delta is a reset/wraparound artefact.
     */
    static constexpr std::int64_t kMaxPlausibleDelta = 1ll << 26;

    /** @return a change if this reading differs from the previous. */
    std::optional<PcChange>
    onReading(const Reading &r)
    {
        if (!havePrev_) {
            prev_ = r.totals;
            havePrev_ = true;
            if (baselines_)
                baselines_->inc();
            return std::nullopt;
        }
        PcChange c;
        c.time = r.time;
        bool any = false;
        bool discontinuity = false;
        for (std::size_t i = 0; i < r.totals.size(); ++i) {
            const std::uint64_t prev = prev_[i], now = r.totals[i];
            std::int64_t delta;
            if (now >= prev) {
                delta = std::int64_t(now - prev);
                if (delta > kMaxPlausibleDelta)
                    discontinuity = true; // collapse under wrap bias
            } else if (prev < kWrapModulus && now < kWrapModulus &&
                       std::int64_t(now + kWrapModulus - prev) <=
                           kMaxPlausibleDelta) {
                // Backward step that a single 32-bit wrap explains:
                // repair it and keep the stream.
                delta = std::int64_t(now + kWrapModulus - prev);
                ++wrapsRepaired_;
                if (wrapsRepairedCtr_)
                    wrapsRepairedCtr_->inc();
            } else {
                delta = 0;
                discontinuity = true; // power collapse / device reset
            }
            c.delta[i] = delta;
            any = any || delta != 0;
        }
        prev_ = r.totals;
        if (discontinuity) {
            // The reading straddles a counter reset; its deltas mix
            // pre- and post-reset state, so drop the whole sample and
            // let the next pair difference cleanly.
            ++resetsDetected_;
            if (telemetry_) {
                discontinuityDrops_->inc();
                telemetry_->audit.record(
                    r.time, obs::Stage::ChangeDetector,
                    obs::Decision::DiscontinuityDropped);
            }
            if (onDiscontinuity_)
                onDiscontinuity_(r.time);
            return std::nullopt;
        }
        if (!any)
            return std::nullopt;
        if (latticeOn_)
            // Deltas here are non-negative by construction (monotone
            // totals; wraps repaired above).
            for (std::size_t i = 0; i < c.delta.size(); ++i)
                if (c.delta[i] > 0)
                    lattice_[i] = std::gcd(
                        lattice_[i], std::uint64_t(c.delta[i]));
        if (changesOut_)
            changesOut_->inc();
        return c;
    }

    void
    reset()
    {
        havePrev_ = false;
    }

    /** Notified (with the reading's time) on every re-baseline. */
    void
    setDiscontinuityListener(std::function<void(SimTime)> fn)
    {
        onDiscontinuity_ = std::move(fn);
    }

    /**
     * Attach (or detach, with nullptr) a telemetry context. Metric
     * handles are resolved here once, and only the non-per-reading
     * outcomes carry counters (readings in are already counted by the
     * Eavesdropper as `pipeline.readings_in`; no-change readings are
     * the difference — keeping the per-reading path increment-free is
     * part of the replay overhead budget). Purely observational:
     * emitted changes are identical with telemetry on or off.
     */
    void
    setTelemetry(obs::Telemetry *tel)
    {
        telemetry_ = tel;
        if (!tel) {
            baselines_ = changesOut_ = discontinuityDrops_ =
                wrapsRepairedCtr_ = nullptr;
            return;
        }
        auto &m = tel->metrics;
        baselines_ = &m.counter("change.baselines");
        changesOut_ = &m.counter("change.changes_out");
        discontinuityDrops_ = &m.counter("change.discontinuity_drops");
        wrapsRepairedCtr_ = &m.counter("change.wraps_repaired");
    }

    /**
     * Quantization awareness (robust attacker): when enabled, every
     * emitted nonzero per-counter delta folds into a running GCD —
     * the estimate of the value lattice the stream lives on. Under a
     * value-coarsening defense the GCD converges to the quantization
     * step within a few changes; on an undefended (or noisy) stream
     * it collapses to ~1 almost immediately, making the estimate a
     * safe input for threshold re-estimation downstream.
     */
    void setLatticeEstimation(bool on) { latticeOn_ = on; }

    /** Per-counter lattice step estimate (0 = nothing observed). */
    const std::array<std::uint64_t, gpu::kNumSelectedCounters> &
    latticeEstimate() const
    {
        return lattice_;
    }

    /** Readings dropped to re-baseline (resets / power collapses). */
    std::uint64_t resetsDetected() const { return resetsDetected_; }

    /** Backward steps repaired as 32-bit wraparounds. */
    std::uint64_t wrapsRepaired() const { return wrapsRepaired_; }

  private:
    gpu::CounterTotals prev_{};
    bool havePrev_ = false;
    bool latticeOn_ = false;
    std::array<std::uint64_t, gpu::kNumSelectedCounters> lattice_{};
    std::uint64_t resetsDetected_ = 0;
    std::uint64_t wrapsRepaired_ = 0;
    std::function<void(SimTime)> onDiscontinuity_;
    obs::Telemetry *telemetry_ = nullptr;
    obs::Counter *baselines_ = nullptr;
    obs::Counter *changesOut_ = nullptr;
    obs::Counter *discontinuityDrops_ = nullptr;
    obs::Counter *wrapsRepairedCtr_ = nullptr;
};

} // namespace gpusc::attack

#endif // GPUSC_ATTACK_CHANGE_DETECTOR_H
