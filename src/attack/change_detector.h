/**
 * @file
 * Turns the sampler's cumulative counter readings into change events
 * (paper Fig. 11's "PC value changes"). A change is any reading whose
 * totals differ from the previous reading; consecutive changes from
 * one long render job are the *split* artefact repaired downstream.
 */

#ifndef GPUSC_ATTACK_CHANGE_DETECTOR_H
#define GPUSC_ATTACK_CHANGE_DETECTOR_H

#include <optional>

#include "attack/sampler.h"
#include "gpu/counters.h"

namespace gpusc::attack {

/** One observed counter-value change. */
struct PcChange
{
    SimTime time;
    gpu::CounterVec delta{};
};

/** Differences consecutive readings. */
class ChangeDetector
{
  public:
    /** @return a change if this reading differs from the previous. */
    std::optional<PcChange>
    onReading(const Reading &r)
    {
        if (!havePrev_) {
            prev_ = r.totals;
            havePrev_ = true;
            return std::nullopt;
        }
        PcChange c;
        c.time = r.time;
        bool any = false;
        for (std::size_t i = 0; i < r.totals.size(); ++i) {
            c.delta[i] = std::int64_t(r.totals[i] - prev_[i]);
            any = any || c.delta[i] != 0;
        }
        prev_ = r.totals;
        if (!any)
            return std::nullopt;
        return c;
    }

    void
    reset()
    {
        havePrev_ = false;
    }

  private:
    gpu::CounterTotals prev_{};
    bool havePrev_ = false;
};

} // namespace gpusc::attack

#endif // GPUSC_ATTACK_CHANGE_DETECTOR_H
