/**
 * @file
 * The paper's online key-press inference (Algorithm 1 + the T_min
 * duplication filter of §5.1).
 *
 * For each observed change O at time t:
 *   0. if a key press was already inferred within T_min (75 ms, the
 *      shortest plausible human inter-press gap), drop O — this kills
 *      popup-animation duplications;
 *   1. classify O against the signature model; distance <= C_th means
 *      a key press;
 *   2. otherwise try combining O with the immediately preceding
 *      unmatched change (split repair) and classify the sum;
 *   3. otherwise O is system noise (it is remembered as the candidate
 *      left piece of a future split).
 */

#ifndef GPUSC_ATTACK_ONLINE_INFERENCE_H
#define GPUSC_ATTACK_ONLINE_INFERENCE_H

#include <array>
#include <functional>
#include <optional>

#include "attack/change_detector.h"
#include "attack/signature.h"
#include "obs/telemetry.h"
#include "util/sim_time.h"

namespace gpusc::attack {

/** A key press recovered from the counter stream. */
struct InferredKey
{
    Label label;
    SimTime time;
    double distance = 0.0;
    /** True when split repair (step 2) produced this key. */
    bool fromSplit = false;
    /**
     * The counter delta that matched the centroid: the raw change,
     * the blink-subtracted variant, or the split-combined sum —
     * whichever classifyRobust actually accepted. This is the vector
     * online template adaptation blends back into the signature.
     */
    gpu::CounterVec delta{};
};

/** Online classification state machine (Algorithm 1). */
class OnlineInference
{
  public:
    struct Params
    {
        /** Shortest plausible gap between two human key presses. */
        SimTime tmin = SimTime::fromMs(75);
        /** Max gap between two changes that may be one split frame. */
        SimTime combineWindow = SimTime::fromMs(25);
        /**
         * Noise-robust classify mode (the robust attacker): widen the
         * accept margin by robustMarginScale plus a lattice-derived
         * inflation term (quantization-aware C_th re-estimation, fed
         * by ChangeDetector::latticeEstimate via setQuantLattice),
         * and vote across lattice-displaced variants of each change
         * before accepting a borderline match.
         */
        bool noiseRobust = false;
        /** Multiplicative widening of C_th in robust mode. */
        double robustMarginScale = 1.35;
    };

    OnlineInference(const SignatureModel &model, Params params);

    /** Feed one change; maybe emit an inferred key press. */
    std::optional<InferredKey> onChange(const PcChange &change);

    /** Changes rejected as noise flow here (correction tracking). */
    void setNoiseListener(std::function<void(const PcChange &)> fn)
    {
        noiseListener_ = std::move(fn);
    }

    /**
     * Attach a telemetry context: per-change decision counters and
     * audit records for the two rejection classes decided here
     * (duplication and noise; the acceptance classes — and the
     * `attack.classify` latency lane — live in the Eavesdropper,
     * which knows about app-switch suppression and times every
     * change already). Observational only.
     */
    void setTelemetry(obs::Telemetry *tel);

    /** Disable step 2 (ablation: no split repair). */
    void setSplitRepairEnabled(bool on) { splitRepair_ = on; }
    /** Disable step 0 (ablation: no duplication filter). */
    void setDuplicationFilterEnabled(bool on) { dupFilter_ = on; }

    /**
     * Feed the live per-counter lattice estimate (owned by the
     * ChangeDetector; must outlive this object). Only consulted in
     * noise-robust mode.
     */
    void setQuantLattice(
        const std::array<std::uint64_t, gpu::kNumSelectedCounters>
            *lattice)
    {
        lattice_ = lattice;
    }

    /**
     * The accept threshold actually in force: C_th as trained, or —
     * in noise-robust mode — C_th widened by the margin scale plus
     * the normalised half-step norm of the observed value lattice.
     */
    double effectiveThreshold() const;

    /**
     * The counter stream re-baselined (reset / power collapse): a
     * pending split candidate from before the gap must not be
     * combined with changes after it.
     */
    void
    noteDiscontinuity()
    {
        prevUnmatched_.reset();
        ++discontinuities_;
    }

    SimTime lastInferredTime() const { return lastInferred_; }

    // Diagnostics.
    std::uint64_t inferredCount() const { return inferred_; }
    std::uint64_t duplicationDrops() const { return dupDrops_; }
    std::uint64_t splitCombines() const { return splitCombines_; }
    std::uint64_t noiseCount() const { return noise_; }
    std::uint64_t discontinuities() const { return discontinuities_; }

    const SignatureModel &model() const { return model_; }

  private:
    SignatureModel::Match classifyForMode(
        const gpu::CounterVec &delta,
        gpu::CounterVec *effectiveOut) const;

    const SignatureModel &model_;
    Params params_;
    bool splitRepair_ = true;
    bool dupFilter_ = true;
    const std::array<std::uint64_t, gpu::kNumSelectedCounters>
        *lattice_ = nullptr;
    std::function<void(const PcChange &)> noiseListener_;
    std::optional<PcChange> prevUnmatched_;
    SimTime lastInferred_ = SimTime::fromSeconds(-1e6);
    std::uint64_t inferred_ = 0;
    std::uint64_t dupDrops_ = 0;
    std::uint64_t splitCombines_ = 0;
    std::uint64_t noise_ = 0;
    std::uint64_t discontinuities_ = 0;
    obs::Telemetry *telemetry_ = nullptr;
    obs::Counter *changesInCtr_ = nullptr;
    obs::Counter *acceptedCtr_ = nullptr;
    obs::Counter *dupDropsCtr_ = nullptr;
    obs::Counter *splitCombinesCtr_ = nullptr;
    obs::Counter *noiseCtr_ = nullptr;
};

} // namespace gpusc::attack

#endif // GPUSC_ATTACK_ONLINE_INFERENCE_H
