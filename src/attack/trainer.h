/**
 * @file
 * The Offline Phase (paper §3.2/§6): on an attacker-controlled device
 * of the victim's model and configuration, a bot presses every key
 * repeatedly, reads the counters through the same KGSL ioctl path the
 * online attack uses, and distils per-key signatures into a
 * SignatureModel.
 *
 * For each label the bot captures the *first* counter change after the
 * press (the popup-show delta of Fig. 3), merging split pieces by
 * sampling densely until the counters settle. Echo changes are also
 * harvested to train the echo band used for correction tracking.
 */

#ifndef GPUSC_ATTACK_TRAINER_H
#define GPUSC_ATTACK_TRAINER_H

#include <map>
#include <string>
#include <vector>

#include "android/device.h"
#include "attack/signature.h"

namespace gpusc::attack {

/**
 * Raw labelled measurements gathered during the offline phase —
 * either live by the training bot, or harvested from a recorded
 * trace corpus (trace::TraceCorpus). Distillation into a
 * SignatureModel is shared between both sources.
 */
struct TrainingCapture
{
    /** Popup-show counter deltas per label. */
    std::map<Label, std::vector<gpu::CounterVec>> samples;
    /** Cursor-blink redraw deltas (subtraction variants). */
    std::vector<gpu::CounterVec> blinkSamples;
    /** One harvested field-echo redraw. */
    struct Echo
    {
        gpu::CounterVec delta;
        /** Field-clear epoch (echoes across clears never pair). */
        int epoch;
        /** Running press index (consecutive indices pair for the
         *  increment fit). */
        int pressIdx;
        /** Committed characters at capture time. */
        int textLen;
    };
    std::vector<Echo> echoes;
};

/** Offline-phase trainer. */
class OfflineTrainer
{
  public:
    struct Params
    {
        /** Samples captured per label. */
        int repetitions = 8;
        /** Threshold margin over the worst intra-class distance. */
        double thresholdMargin = 2.5;
        /** Bot key-press duration. */
        SimTime pressDuration = SimTime::fromMs(120);
    };

    OfflineTrainer() : OfflineTrainer(Params{}) {}
    explicit OfflineTrainer(Params params) : params_(params) {}

    /**
     * Build the signature model for the device configuration. The
     * victim's app choice is irrelevant to popup signatures, but the
     * same config is used so echo statistics match.
     */
    SignatureModel train(const android::DeviceConfig &victimCfg) const;

    /**
     * Distil a signature model from raw labelled measurements. This
     * is the second half of train(); recorded-corpus training feeds
     * captures harvested from .gpct files through the identical
     * distillation (scales, centroids, C_th, echo line).
     */
    SignatureModel
    trainFromCapture(const std::string &modelKey,
                     const TrainingCapture &capture) const;

  private:
    Params params_;
};

} // namespace gpusc::attack

#endif // GPUSC_ATTACK_TRAINER_H
