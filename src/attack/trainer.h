/**
 * @file
 * The Offline Phase (paper §3.2/§6): on an attacker-controlled device
 * of the victim's model and configuration, a bot presses every key
 * repeatedly, reads the counters through the same KGSL ioctl path the
 * online attack uses, and distils per-key signatures into a
 * SignatureModel.
 *
 * For each label the bot captures the *first* counter change after the
 * press (the popup-show delta of Fig. 3), merging split pieces by
 * sampling densely until the counters settle. Echo changes are also
 * harvested to train the echo band used for correction tracking.
 */

#ifndef GPUSC_ATTACK_TRAINER_H
#define GPUSC_ATTACK_TRAINER_H

#include "android/device.h"
#include "attack/signature.h"

namespace gpusc::attack {

/** Offline-phase trainer. */
class OfflineTrainer
{
  public:
    struct Params
    {
        /** Samples captured per label. */
        int repetitions = 8;
        /** Threshold margin over the worst intra-class distance. */
        double thresholdMargin = 2.5;
        /** Bot key-press duration. */
        SimTime pressDuration = SimTime::fromMs(120);
    };

    OfflineTrainer() : OfflineTrainer(Params{}) {}
    explicit OfflineTrainer(Params params) : params_(params) {}

    /**
     * Build the signature model for the device configuration. The
     * victim's app choice is irrelevant to popup signatures, but the
     * same config is used so echo statistics match.
     */
    SignatureModel train(const android::DeviceConfig &victimCfg) const;

  private:
    Params params_;
};

} // namespace gpusc::attack

#endif // GPUSC_ATTACK_TRAINER_H
