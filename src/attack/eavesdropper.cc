#include "attack/eavesdropper.h"

#include <algorithm>
#include <optional>

#include "util/logging.h"

namespace gpusc::attack {

using namespace gpusc::sim_literals;

Eavesdropper::Eavesdropper(android::Device &device,
                           const SignatureModel &model)
    : Eavesdropper(device, model, Params{})
{
}

Eavesdropper::Eavesdropper(android::Device &device,
                           const SignatureModel &model, Params params)
    : device_(&device), params_(params)
{
    sampler_ = std::make_unique<PcSampler>(
        device_->kgsl(), device_->attackerContext(), device_->eq(),
        params_.samplingInterval, params_.recovery);
    sampler_->setListener([this](const Reading &r) { onReading(r); });
    wireStreamRepair();
    wireTelemetry();
    adoptModel(model);
}

Eavesdropper::Eavesdropper(android::Device &device,
                           const ModelStore &store, Params params)
    : device_(&device), params_(params), store_(&store)
{
    sampler_ = std::make_unique<PcSampler>(
        device_->kgsl(), device_->attackerContext(), device_->eq(),
        params_.samplingInterval, params_.recovery);
    sampler_->setListener([this](const Reading &r) { onReading(r); });
    wireStreamRepair();
    wireTelemetry();
}

Eavesdropper::Eavesdropper(const SignatureModel &model, Params params)
    : params_(params)
{
    wireStreamRepair();
    wireTelemetry();
    adoptModel(model);
}

Eavesdropper::Eavesdropper(const ModelStore &store, Params params)
    : params_(params), store_(&store)
{
    wireStreamRepair();
    wireTelemetry();
}

void
Eavesdropper::wireStreamRepair()
{
    // A stream discontinuity (counter reset / power collapse) must
    // also flush Algorithm 1's pending split candidate: a change from
    // before the gap may not combine with one after it. No inference
    // exists yet during device recognition — drop the notification.
    changes_.setDiscontinuityListener([this](SimTime) {
        if (inference_)
            inference_->noteDiscontinuity();
    });
}

void
Eavesdropper::wireTelemetry()
{
    obs::Telemetry *tel = params_.telemetry;
    changes_.setTelemetry(tel);
    if (sampler_)
        sampler_->setTelemetry(tel);
    if (!tel)
        return;
    changeDetectTimer_ = obs::StageTimer(tel, "attack.change_detect");
    classifyTimer_ = obs::StageTimer(tel, "attack.classify");
    auto &m = tel->metrics;
    readingsInCtr_ = &m.counter("pipeline.readings_in");
    recogChangesCtr_ = &m.counter("pipeline.changes_recognition");
    suppressedCtr_ = &m.counter("pipeline.suppressed_app_switch");
    keysCtr_ = &m.counter("pipeline.keys");
    pagesCtr_ = &m.counter("pipeline.pages");
    deletionsCtr_ = &m.counter("pipeline.deletions");
}

void
Eavesdropper::flushTelemetry()
{
    if (!readingsInCtr_)
        return;
    readingsInCtr_->inc(readingSeq_ - readingsFlushed_);
    readingsFlushed_ = readingSeq_;

    obs::Telemetry *tel = params_.telemetry;
    const HealthStats now = health();
    const HealthStats &was = healthFlushed_;
    auto &m = tel->metrics;
    const struct
    {
        const char *name;
        std::uint64_t now;
        std::uint64_t was;
    } monotonic[] = {
        {"health.transient_retries", now.transientRetries,
         was.transientRetries},
        {"health.busy_retries", now.busyRetries, was.busyRetries},
        {"health.reopens", now.reopens, was.reopens},
        {"health.resets_survived", now.resetsSurvived,
         was.resetsSurvived},
        {"health.watchdog_recoveries", now.watchdogRecoveries,
         was.watchdogRecoveries},
        {"health.missed_reads", now.missedReads, was.missedReads},
        {"health.stream_resets", now.streamResets, was.streamResets},
        {"health.wraps_repaired", now.wrapsRepaired,
         was.wrapsRepaired},
        {"health.throttled_reads", now.throttledReads,
         was.throttledReads},
        {"health.pace_backoffs", now.paceBackoffs, was.paceBackoffs},
        {"health.pace_recoveries", now.paceRecoveries,
         was.paceRecoveries},
    };
    for (const auto &row : monotonic)
        if (row.now > row.was)
            m.counter(row.name).inc(row.now - row.was);
    m.gauge("health.counters_held").set(double(now.countersHeld));
    m.gauge("health.effective_interval_ns")
        .set(double(now.effectiveIntervalNs));
    healthFlushed_ = now;
}

HealthStats
Eavesdropper::health() const
{
    HealthStats h;
    if (sampler_)
        h = sampler_->health();
    else
        // Detached (replay) mode has no device to lose counters to.
        h.countersHeld = gpu::kNumSelectedCounters;
    h.streamResets = changes_.resetsDetected();
    h.wrapsRepaired = changes_.wrapsRepaired();
    return h;
}

Eavesdropper::~Eavesdropper()
{
    // Params::telemetry is documented to outlive the eavesdropper.
    flushTelemetry();
}

void
Eavesdropper::adoptModel(const SignatureModel &model)
{
    model_ = &model;
    inference_ =
        std::make_unique<OnlineInference>(model, params_.inference);
    inference_->setTelemetry(params_.telemetry);
    if (params_.inference.noiseRobust) {
        // Quantization-aware mode: the detector's live lattice
        // estimate feeds the inference's threshold re-estimation.
        changes_.setLatticeEstimation(true);
        inference_->setQuantLattice(&changes_.latticeEstimate());
    }
    correction_ = std::make_unique<CorrectionTracker>(model);
    inference_->setNoiseListener([this](const PcChange &c) {
        if (!params_.correctionTracking || !correction_)
            return;
        const auto len = correction_->decodeFieldLength(c);
        if (!len)
            return;
        // A *shrunken* field length means backspace deletions
        // (§5.3): typing echoes confirm the running length, while
        // backspace runs produce no popups and only shrink it. A
        // single-step shrink right after an inferred key press is
        // ambiguous (a duplicated popup frame inflated the estimate),
        // so only multi-step shrinks pass inside that window.
        const bool afterKey =
            c.time - inference_->lastInferredTime() <
            SimTime::fromMs(300);
        // A very large drop is the field being cleared (navigating
        // away / trial reset), not a backspace run — re-anchor only.
        if (*len < bufferLen_ && bufferLen_ - *len <= 8 &&
            !(afterKey && *len + 1 == bufferLen_)) {
            const int deletions = std::min(bufferLen_ - *len, 8);
            correction_->noteDeletions(deletions);
            for (int i = 0; i < deletions; ++i)
                events_.push_back(
                    {StolenEvent::Kind::Deletion, 0, c.time});
            if (deletionsCtr_)
                deletionsCtr_->inc(std::uint64_t(deletions));
            bufferLen_ = *len;
        } else {
            // Track the decoded level (appends are accounted for by
            // popup inference, but the decode re-anchors drift).
            bufferLen_ = *len;
        }
        maxFieldLen_ = std::max(maxFieldLen_, *len);
    });
}

bool
Eavesdropper::start()
{
    return sampler_ ? sampler_->start() : true;
}

void
Eavesdropper::stop()
{
    if (sampler_)
        sampler_->stop();
    flushTelemetry();
}

void
Eavesdropper::setWakeupJitter(std::function<SimTime()> fn)
{
    if (sampler_)
        sampler_->setWakeupJitter(std::move(fn));
}

void
Eavesdropper::setReadingTap(std::function<void(const Reading &)> fn)
{
    if (sampler_)
        sampler_->setTap(std::move(fn));
}

void
Eavesdropper::feedReading(const Reading &r)
{
    ++readsFed_;
    onReading(r);
}

void
Eavesdropper::feedReadings(std::span<const Reading> rs)
{
    readsFed_ += rs.size();
    for (const Reading &r : rs)
        onReading(r);
}

void
Eavesdropper::onReading(const Reading &r)
{
    if (device_)
        device_->power().addSamplerWakeups(1);
    if (readingsInCtr_) {
        // Per-reading work stays increment-free: the sequence number
        // (needed for sampling anyway) is flushed to the counter at
        // the 1-in-64 sample points and by flushTelemetry(). Host-
        // timing every reading would eat the replay overhead budget;
        // sample 1 in 64 into the change-detect latency lane.
        if ((readingSeq_++ & 63) == 0) {
            flushTelemetry();
            std::optional<PcChange> change;
            {
                const obs::StageTimer::Scope span =
                    changeDetectTimer_.scoped(r.time);
                change = changes_.onReading(r);
            }
            if (change)
                onChange(*change);
            return;
        }
    }
    if (auto change = changes_.onReading(r))
        onChange(*change);
}

bool
Eavesdropper::tryRecognize(const PcChange &c)
{
    // Device recognition: buffer sizeable changes and pick the model
    // whose signature table explains them best.
    recognitionBuffer_.push_back(c);
    if (recognitionBuffer_.size() < 6)
        return false;
    // One batch of deltas, classified against every store model via
    // the batch path (identical matches to per-change classify()).
    std::vector<gpu::CounterVec> deltas;
    deltas.reserve(recognitionBuffer_.size());
    for (const PcChange &b : recognitionBuffer_)
        deltas.push_back(b.delta);
    std::vector<SignatureModel::Match> matches(deltas.size());
    const SignatureModel *best = nullptr;
    double bestScore = 0.0;
    for (const auto &[key, m] : store_->all()) {
        m.classifyBatch(deltas, matches);
        double score = 0.0;
        int accepted = 0;
        for (const SignatureModel::Match &match : matches) {
            if (match.accepted(m.threshold())) {
                ++accepted;
                score += 1.0 / (1.0 + match.distance);
            }
        }
        score += double(accepted);
        if (!best || score > bestScore) {
            best = &m;
            bestScore = score;
        }
    }
    if (!best)
        return false;
    adoptModel(*best);
    inform("Eavesdropper: recognised configuration %s",
           best->modelKey().c_str());
    // Replay buffered changes through the adopted pipeline.
    std::vector<PcChange> buffered;
    buffered.swap(recognitionBuffer_);
    for (const PcChange &b : buffered)
        onChange(b);
    return true;
}

void
Eavesdropper::onChange(const PcChange &c)
{
    if (!model_) {
        // Recognition-phase changes are counted separately: the
        // buffered ones re-enter onChange() once a model is adopted
        // and only then join the decision funnel.
        if (recogChangesCtr_)
            recogChangesCtr_->inc();
        tryRecognize(c);
        return;
    }

    if (params_.recordTrace)
        trace_.push_back(c);

    if (params_.appSwitchDetection)
        switchDetector_.onChange(c);

    const std::int64_t t0 = obs::hostNowNs();
    const auto key = inference_->onChange(c);
    const std::int64_t hostNs = obs::hostNowNs() - t0;
    latencies_.add(double(hostNs) / 1000.0);
    // The classify latency lane reuses the measurement above — no
    // additional clock reads on the per-change path.
    classifyTimer_.note(c.time, hostNs);
    if (device_)
        device_->power().addInferences(1);

    if (!key)
        return; // rejections are audited inside OnlineInference

    if (params_.appSwitchDetection) {
        switchDetector_.onClassified(key->label, key->time);
        if (switchDetector_.suppressed(c.time)) {
            if (params_.telemetry) {
                suppressedCtr_->inc();
                params_.telemetry->audit.record(
                    key->time, obs::Stage::Eavesdropper,
                    obs::Decision::SuppressedAppSwitch, key->label,
                    key->distance);
            }
            return;
        }
    }

    if (params_.telemetry)
        params_.telemetry->audit.record(
            key->time, obs::Stage::Eavesdropper,
            key->fromSplit ? obs::Decision::SplitRepaired
                           : obs::Decision::AcceptedKey,
            key->label, key->distance);

    if (acceptListener_)
        acceptListener_(*key);

    if (isPageLabel(key->label)) {
        events_.push_back({StolenEvent::Kind::Page, 0, key->time});
        if (pagesCtr_)
            pagesCtr_->inc();
    } else if (key->label.size() == 1) {
        events_.push_back(
            {StolenEvent::Kind::Char, key->label[0], key->time});
        ++bufferLen_;
        if (keysCtr_)
            keysCtr_->inc();
    } else {
        warn("Eavesdropper: unexpected label '%s'",
             key->label.c_str());
    }
}

std::string
Eavesdropper::inferredTextBetween(SimTime t0, SimTime t1) const
{
    std::string out;
    for (const StolenEvent &e : events_) {
        if (e.time < t0 || e.time > t1)
            continue;
        switch (e.kind) {
          case StolenEvent::Kind::Char:
            out.push_back(e.ch);
            break;
          case StolenEvent::Kind::Deletion:
            if (!out.empty())
                out.pop_back();
            break;
          case StolenEvent::Kind::Page:
            break;
        }
    }
    return out;
}

std::size_t
Eavesdropper::exfiltrationBytes() const
{
    return events_.size() * 5;
}

std::size_t
Eavesdropper::rawCounterBytes() const
{
    const std::uint64_t reads =
        sampler_ ? sampler_->readCount() : readsFed_;
    return std::size_t(reads) * gpu::kNumSelectedCounters *
           sizeof(std::uint64_t);
}

std::string
Eavesdropper::inferredText() const
{
    return inferredTextBetween(SimTime::fromSeconds(-1e9),
                               SimTime::max());
}

} // namespace gpusc::attack
