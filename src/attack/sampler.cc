#include "attack/sampler.h"

#include <algorithm>

#include "kgsl/msm_kgsl.h"

namespace gpusc::attack {

int
openAndReserveCounters(kgsl::KgslDevice &dev,
                       const kgsl::ProcessContext &proc)
{
    const int fd = dev.open(proc);
    if (fd < 0)
        return fd;
    for (std::size_t i = 0; i < gpu::kNumSelectedCounters; ++i) {
        const gpu::CounterId id =
            gpu::counterId(gpu::SelectedCounter(i));
        kgsl::kgsl_perfcounter_get get;
        get.groupid = id.group;
        get.countable = id.countable;
        const int rc =
            dev.ioctl(fd, kgsl::IOCTL_KGSL_PERFCOUNTER_GET, &get);
        if (rc != 0) {
            dev.close(fd);
            return rc;
        }
    }
    return fd;
}

bool
PcSampler::readOnce(kgsl::KgslDevice &dev, int fd,
                    gpu::CounterTotals &out)
{
    kgsl::kgsl_perfcounter_read_group
        entries[gpu::kNumSelectedCounters];
    for (std::size_t i = 0; i < gpu::kNumSelectedCounters; ++i) {
        const gpu::CounterId id =
            gpu::counterId(gpu::SelectedCounter(i));
        entries[i].groupid = id.group;
        entries[i].countable = id.countable;
    }
    kgsl::kgsl_perfcounter_read req;
    req.reads = entries;
    req.count = gpu::kNumSelectedCounters;
    if (dev.ioctl(fd, kgsl::IOCTL_KGSL_PERFCOUNTER_READ, &req) != 0)
        return false;
    for (std::size_t i = 0; i < gpu::kNumSelectedCounters; ++i)
        out[i] = entries[i].value;
    return true;
}

PcSampler::PcSampler(kgsl::KgslDevice &dev, kgsl::ProcessContext proc,
                     EventQueue &eq, SimTime interval,
                     RecoveryParams recovery)
    : dev_(dev), proc_(proc), eq_(eq), interval_(interval),
      recovery_(recovery), paceInterval_(interval),
      aliveToken_(std::make_shared<int>(0))
{
}

PcSampler::~PcSampler()
{
    stop();
}

void
PcSampler::setTelemetry(obs::Telemetry *tel)
{
    telemetry_ = tel;
    if (!tel) {
        tickTimer_ = obs::StageTimer();
        readsOkCtr_ = readsMissedCtr_ = transientRetriesCtr_ =
            busyRetriesCtr_ = reopensCtr_ = watchdogRecoveriesCtr_ =
                throttledReadsCtr_ = paceBackoffsCtr_ =
                    paceRecoveriesCtr_ = nullptr;
        countersHeldGauge_ = nullptr;
        return;
    }
    tickTimer_ = obs::StageTimer(tel, "sampler.tick");
    auto &m = tel->metrics;
    readsOkCtr_ = &m.counter("sampler.reads_ok");
    readsMissedCtr_ = &m.counter("sampler.reads_missed");
    transientRetriesCtr_ = &m.counter("sampler.transient_retries");
    busyRetriesCtr_ = &m.counter("sampler.busy_retries");
    reopensCtr_ = &m.counter("sampler.reopens");
    watchdogRecoveriesCtr_ = &m.counter("sampler.watchdog_recoveries");
    throttledReadsCtr_ = &m.counter("sampler.reads_throttled");
    paceBackoffsCtr_ = &m.counter("sampler.pace_backoffs");
    paceRecoveriesCtr_ = &m.counter("sampler.pace_recoveries");
    countersHeldGauge_ = &m.gauge("sampler.counters_held");
    updateHeldGauge();
}

void
PcSampler::updateHeldGauge()
{
    if (!countersHeldGauge_)
        return;
    std::size_t held = 0;
    for (std::size_t i = 0; i < gpu::kNumSelectedCounters; ++i)
        held += held_[i] ? 1 : 0;
    countersHeldGauge_->set(double(held));
}

int
PcSampler::ioctlRetrying(unsigned long request, void *arg)
{
    // While the pacer is backing off from a rate limiter, inline
    // EAGAIN retries are pure loss: a token bucket refills with time,
    // not attempts, and a penalising one taxes every denied retry.
    // EINTR (a genuinely transient signal) still retries.
    const bool skipEagain =
        recovery_.rateLimitAware && paceInterval_ > interval_;
    int rc = dev_.ioctl(fd_, request, arg);
    for (int attempt = 0;
         (rc == -kgsl::KGSL_EINTR ||
          (rc == -kgsl::KGSL_EAGAIN && !skipEagain)) &&
         attempt < recovery_.maxTransientRetries;
         ++attempt) {
        ++health_.transientRetries;
        if (transientRetriesCtr_)
            transientRetriesCtr_->inc();
        rc = dev_.ioctl(fd_, request, arg);
    }
    return rc;
}

bool
PcSampler::openAndReserve()
{
    const int fd = dev_.open(proc_);
    if (fd < 0) {
        lastErrno_ = -fd;
        return false;
    }
    fd_ = fd;
    held_.fill(false);
    std::size_t got = 0;
    for (std::size_t i = 0; i < gpu::kNumSelectedCounters; ++i) {
        const gpu::CounterId id =
            gpu::counterId(gpu::SelectedCounter(i));
        kgsl::kgsl_perfcounter_get get;
        get.groupid = id.group;
        get.countable = id.countable;
        const int rc =
            ioctlRetrying(kgsl::IOCTL_KGSL_PERFCOUNTER_GET, &get);
        if (rc == 0) {
            held_[i] = true;
            ++got;
            continue;
        }
        lastErrno_ = -rc;
        if (rc == -kgsl::KGSL_EBUSY && recovery_.allowDegraded)
            continue; // degraded mode: sample whatever is free
        // Hard failure: closing the descriptor makes the kernel free
        // every partially acquired reservation, so nothing leaks even
        // when a PUT would itself be denied (e.g. RBAC swap).
        dev_.close(fd_);
        fd_ = -1;
        held_.fill(false);
        return false;
    }
    if (got == 0) {
        // A run with zero counters observes nothing; fail the attempt
        // (the watchdog retries if we were already running).
        dev_.close(fd_);
        fd_ = -1;
        return false;
    }
    backoff_ = recovery_.busyRetryBase;
    backoffDue_ = eq_.now() + backoff_;
    updateHeldGauge();
    return true;
}

bool
PcSampler::reopenAfterReset()
{
    dev_.close(fd_);
    fd_ = -1;
    held_.fill(false);
    if (!openAndReserve())
        return false;
    ++health_.reopens;
    ++health_.resetsSurvived;
    if (reopensCtr_)
        reopensCtr_->inc();
    return true;
}

void
PcSampler::maybeReacquire()
{
    bool missing = false;
    for (std::size_t i = 0; i < gpu::kNumSelectedCounters; ++i)
        missing = missing || !held_[i];
    if (!missing || eq_.now() < backoffDue_)
        return;
    bool still = false;
    for (std::size_t i = 0; i < gpu::kNumSelectedCounters; ++i) {
        if (held_[i])
            continue;
        ++health_.busyRetries;
        if (busyRetriesCtr_)
            busyRetriesCtr_->inc();
        const gpu::CounterId id =
            gpu::counterId(gpu::SelectedCounter(i));
        kgsl::kgsl_perfcounter_get get;
        get.groupid = id.group;
        get.countable = id.countable;
        const int rc =
            ioctlRetrying(kgsl::IOCTL_KGSL_PERFCOUNTER_GET, &get);
        if (rc == 0) {
            held_[i] = true;
        } else {
            lastErrno_ = -rc;
            still = true;
        }
    }
    if (still) {
        backoff_ = std::min(backoff_ * 2, recovery_.busyRetryMax);
        backoffDue_ = eq_.now() + backoff_;
    } else {
        backoff_ = recovery_.busyRetryBase;
    }
    updateHeldGauge();
}

int
PcSampler::readHeld(gpu::CounterTotals &out)
{
    for (int attempt = 0; attempt < 2; ++attempt) {
        kgsl::kgsl_perfcounter_read_group
            entries[gpu::kNumSelectedCounters];
        std::size_t slot[gpu::kNumSelectedCounters];
        std::uint32_t n = 0;
        for (std::size_t i = 0; i < gpu::kNumSelectedCounters; ++i) {
            if (!held_[i])
                continue;
            const gpu::CounterId id =
                gpu::counterId(gpu::SelectedCounter(i));
            entries[n].groupid = id.group;
            entries[n].countable = id.countable;
            slot[n] = i;
            ++n;
        }
        kgsl::kgsl_perfcounter_read req;
        req.reads = entries;
        req.count = n;
        const int rc =
            n ? ioctlRetrying(kgsl::IOCTL_KGSL_PERFCOUNTER_READ, &req)
              : 0;
        if (rc == 0) {
            for (std::uint32_t j = 0; j < n; ++j)
                lastSeen_[slot[j]] = entries[j].value;
            // Unheld counters repeat their last value: downstream
            // deltas are 0 instead of a bogus backward step.
            out = lastSeen_;
            return 0;
        }
        lastErrno_ = -rc;
        if (rc == -kgsl::KGSL_ENODEV && attempt == 0 &&
            reopenAfterReset())
            continue; // retry the read on the fresh descriptor
        return rc;
    }
    return -kgsl::KGSL_ENODEV;
}

bool
PcSampler::start()
{
    if (running_)
        return true;
    if (!openAndReserve())
        return false;
    running_ = true;
    suspended_ = false;
    paceInterval_ = interval_;
    consecThrottled_ = consecOk_ = 0;
    ++generation_;
    scheduleWatchdog();
    tick();
    return true;
}

void
PcSampler::stop()
{
    ++generation_; // pending ticks/watchdogs become no-ops
    if (fd_ >= 0) {
        dev_.close(fd_);
        fd_ = -1;
    }
    held_.fill(false);
    running_ = false;
    suspended_ = false;
    updateHeldGauge();
}

bool
PcSampler::degraded() const
{
    for (std::size_t i = 0; i < gpu::kNumSelectedCounters; ++i)
        if (!held_[i])
            return true;
    return false;
}

HealthStats
PcSampler::health() const
{
    HealthStats h = health_;
    h.countersHeld = 0;
    for (std::size_t i = 0; i < gpu::kNumSelectedCounters; ++i)
        h.countersHeld += held_[i] ? 1 : 0;
    h.effectiveIntervalNs = std::uint64_t(effectiveInterval().ns());
    return h;
}

void
PcSampler::tick()
{
    if (!running_)
        return;
    const std::uint64_t gen = generation_;
    const obs::StageTimer::Scope tickSpan =
        tickTimer_.scoped(eq_.now());
    maybeReacquire();
    Reading r;
    r.time = eq_.now();
    const int rc = readHeld(r.totals);
    if (rc == 0) {
        ++reads_;
        if (readsOkCtr_)
            readsOkCtr_->inc();
        notePaceSuccess();
        if (tap_)
            tap_(r);
        if (listener_)
            listener_(r);
    } else {
        ++health_.missedReads;
        if (readsMissedCtr_)
            readsMissedCtr_->inc();
        if (rc == -kgsl::KGSL_EAGAIN)
            notePaceThrottle();
        if (rc == -kgsl::KGSL_EPERM || rc == -kgsl::KGSL_EACCES ||
            rc == -kgsl::KGSL_ENODEV) {
            // Hard fault (policy denial, or a reset we could not
            // reopen through): park the chain; the watchdog probes
            // for recovery at a gentler cadence.
            suspended_ = true;
            if (telemetry_)
                telemetry_->audit.record(
                    r.time, obs::Stage::Sampler,
                    obs::Decision::SamplerSuspended);
        }
    }
    // The listener may have called stop()/start() on us.
    if (!running_ || generation_ != gen || suspended_)
        return;
    scheduleNext();
}

void
PcSampler::notePaceThrottle()
{
    ++health_.throttledReads;
    if (throttledReadsCtr_)
        throttledReadsCtr_->inc();
    consecOk_ = 0;
    if (!recovery_.rateLimitAware)
        return;
    if (++consecThrottled_ < recovery_.throttleDetectTicks)
        return;
    consecThrottled_ = 0;
    // Sustained EAGAIN: the driver is rate limiting, not glitching.
    // Stretch the cadence (at least doubling it) and let successful
    // paced ticks probe back down later.
    const SimTime doubled = effectiveInterval() * 2;
    const SimTime next =
        doubled < recovery_.paceMax ? doubled : recovery_.paceMax;
    if (next > paceInterval_) {
        paceInterval_ = next;
        ++health_.paceBackoffs;
        if (paceBackoffsCtr_)
            paceBackoffsCtr_->inc();
    }
}

void
PcSampler::notePaceSuccess()
{
    consecThrottled_ = 0;
    if (!recovery_.rateLimitAware || paceInterval_ <= interval_)
        return;
    if (++consecOk_ < recovery_.paceProbeTicks)
        return;
    consecOk_ = 0;
    // The paced cadence has been clean for a while: probe a faster
    // one. If the limiter pushes back, the next backoff restores it.
    const SimTime halved = paceInterval_ / 2;
    paceInterval_ = halved > interval_ ? halved : interval_;
    ++health_.paceRecoveries;
    if (paceRecoveriesCtr_)
        paceRecoveriesCtr_->inc();
}

void
PcSampler::scheduleNext()
{
    SimTime next = effectiveInterval();
    if (wakeupJitter_)
        next += wakeupJitter_();
    std::weak_ptr<int> alive = aliveToken_;
    const std::uint64_t gen = generation_;
    eq_.scheduleAfter(next, [this, alive, gen] {
        if (!alive.expired() && generation_ == gen)
            tick();
    });
}

void
PcSampler::scheduleWatchdog()
{
    std::weak_ptr<int> alive = aliveToken_;
    const std::uint64_t gen = generation_;
    eq_.scheduleAfter(recovery_.watchdogInterval, [this, alive, gen] {
        if (alive.expired() || !running_ || generation_ != gen)
            return;
        watchdogProbe();
        if (running_ && generation_ == gen)
            scheduleWatchdog();
    });
}

void
PcSampler::watchdogProbe()
{
    if (!suspended_)
        return;
    bool ok;
    if (fd_ < 0) {
        // Still fd-less after a device reset: try a full reopen.
        ok = openAndReserve();
        if (ok) {
            ++health_.reopens;
            ++health_.resetsSurvived;
            if (reopensCtr_)
                reopensCtr_->inc();
        }
    } else {
        // Descriptor intact but reads were denied (RBAC swap): probe
        // whether the device answers again. The probe value is
        // discarded; the resumed tick chain delivers the next one.
        gpu::CounterTotals probe{};
        ok = readHeld(probe) == 0;
    }
    if (ok) {
        suspended_ = false;
        ++health_.watchdogRecoveries;
        if (watchdogRecoveriesCtr_) {
            watchdogRecoveriesCtr_->inc();
            telemetry_->audit.record(eq_.now(), obs::Stage::Sampler,
                                     obs::Decision::SamplerRecovered);
        }
        tick();
    }
}

} // namespace gpusc::attack
