#include "attack/sampler.h"

#include "kgsl/msm_kgsl.h"

namespace gpusc::attack {

int
openAndReserveCounters(kgsl::KgslDevice &dev,
                       const kgsl::ProcessContext &proc)
{
    const int fd = dev.open(proc);
    if (fd < 0)
        return fd;
    for (std::size_t i = 0; i < gpu::kNumSelectedCounters; ++i) {
        const gpu::CounterId id =
            gpu::counterId(gpu::SelectedCounter(i));
        kgsl::kgsl_perfcounter_get get;
        get.groupid = id.group;
        get.countable = id.countable;
        const int rc =
            dev.ioctl(fd, kgsl::IOCTL_KGSL_PERFCOUNTER_GET, &get);
        if (rc != 0) {
            dev.close(fd);
            return rc;
        }
    }
    return fd;
}

bool
PcSampler::readOnce(kgsl::KgslDevice &dev, int fd,
                    gpu::CounterTotals &out)
{
    kgsl::kgsl_perfcounter_read_group
        entries[gpu::kNumSelectedCounters];
    for (std::size_t i = 0; i < gpu::kNumSelectedCounters; ++i) {
        const gpu::CounterId id =
            gpu::counterId(gpu::SelectedCounter(i));
        entries[i].groupid = id.group;
        entries[i].countable = id.countable;
    }
    kgsl::kgsl_perfcounter_read req;
    req.reads = entries;
    req.count = gpu::kNumSelectedCounters;
    if (dev.ioctl(fd, kgsl::IOCTL_KGSL_PERFCOUNTER_READ, &req) != 0)
        return false;
    for (std::size_t i = 0; i < gpu::kNumSelectedCounters; ++i)
        out[i] = entries[i].value;
    return true;
}

PcSampler::PcSampler(kgsl::KgslDevice &dev, kgsl::ProcessContext proc,
                     EventQueue &eq, SimTime interval)
    : dev_(dev), proc_(proc), eq_(eq), interval_(interval),
      aliveToken_(std::make_shared<int>(0))
{
}

PcSampler::~PcSampler()
{
    stop();
}

bool
PcSampler::start()
{
    if (running_)
        return true;
    const int fd = openAndReserveCounters(dev_, proc_);
    if (fd < 0) {
        lastErrno_ = -fd;
        return false;
    }
    fd_ = fd;
    running_ = true;
    tick();
    return true;
}

void
PcSampler::stop()
{
    if (fd_ >= 0) {
        dev_.close(fd_);
        fd_ = -1;
    }
    running_ = false;
}

void
PcSampler::tick()
{
    if (!running_)
        return;
    Reading r;
    r.time = eq_.now();
    if (readOnce(dev_, fd_, r.totals)) {
        ++reads_;
        if (tap_)
            tap_(r);
        if (listener_)
            listener_(r);
    }
    SimTime next = interval_;
    if (wakeupJitter_)
        next += wakeupJitter_();
    std::weak_ptr<int> alive = aliveToken_;
    eq_.scheduleAfter(next, [this, alive] {
        if (!alive.expired())
            tick();
    });
}

} // namespace gpusc::attack
