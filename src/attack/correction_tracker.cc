#include "attack/correction_tracker.h"

namespace gpusc::attack {

CorrectionTracker::CorrectionTracker(const SignatureModel &model)
    : model_(model)
{
}

std::optional<int>
CorrectionTracker::decodeFieldLength(const PcChange &change) const
{
    // Cheap pre-filter: field redraws are small; popup shows and app
    // redraws are far above the trained cutoff.
    if (model_.echoCutoff() <= 0.0 ||
        double(gpu::l1Norm(change.delta)) > model_.echoCutoff())
        return std::nullopt;
    // Echo-line decode (§5.3): the residual test rejects cursor
    // blinks, popup dismissals, notifications etc.
    return model_.decodeEchoLength(change.delta);
}

} // namespace gpusc::attack
