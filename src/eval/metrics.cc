#include "eval/metrics.h"

#include <algorithm>

namespace gpusc::eval {

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t cur = row[j];
            const std::size_t sub =
                diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
            diag = cur;
        }
    }
    return row[b.size()];
}

std::vector<bool>
alignMatches(const std::string &truth, const std::string &inferred)
{
    const std::size_t n = truth.size();
    const std::size_t m = inferred.size();
    // Full DP matrix with backtrace (texts are short).
    std::vector<std::vector<std::size_t>> dp(
        n + 1, std::vector<std::size_t>(m + 1));
    for (std::size_t i = 0; i <= n; ++i)
        dp[i][0] = i;
    for (std::size_t j = 0; j <= m; ++j)
        dp[0][j] = j;
    for (std::size_t i = 1; i <= n; ++i)
        for (std::size_t j = 1; j <= m; ++j)
            dp[i][j] = std::min(
                {dp[i - 1][j] + 1, dp[i][j - 1] + 1,
                 dp[i - 1][j - 1] +
                     (truth[i - 1] == inferred[j - 1] ? 0 : 1)});

    std::vector<bool> matches(n, false);
    std::size_t i = n, j = m;
    while (i > 0 && j > 0) {
        if (dp[i][j] == dp[i - 1][j - 1] &&
            truth[i - 1] == inferred[j - 1]) {
            matches[i - 1] = true;
            --i;
            --j;
        } else if (dp[i][j] == dp[i - 1][j - 1] + 1) {
            --i;
            --j;
        } else if (dp[i][j] == dp[i - 1][j] + 1) {
            --i;
        } else {
            --j;
        }
    }
    return matches;
}

void
AccuracyStats::add(const std::string &truth, const std::string &inferred)
{
    ++trials_;
    if (truth == inferred)
        ++exact_;
    editTotal_ += editDistance(truth, inferred);

    const std::vector<bool> matches = alignMatches(truth, inferred);
    for (std::size_t i = 0; i < truth.size(); ++i) {
        const bool ok = matches[i];
        ++chars_.total;
        chars_.correct += ok;
        Tally &g = groups_[workload::charGroupOf(truth[i])];
        ++g.total;
        g.correct += ok;
        Tally &k = perKey_[truth[i]];
        ++k.total;
        k.correct += ok;
    }
}

double
AccuracyStats::textAccuracy() const
{
    return trials_ ? double(exact_) / double(trials_) : 0.0;
}

double
AccuracyStats::charAccuracy() const
{
    return chars_.total ? double(chars_.correct) / double(chars_.total)
                        : 0.0;
}

double
AccuracyStats::avgErrorsPerText() const
{
    return trials_ ? double(editTotal_) / double(trials_) : 0.0;
}

double
AccuracyStats::groupAccuracy(workload::CharGroup g) const
{
    auto it = groups_.find(g);
    if (it == groups_.end() || it->second.total == 0)
        return 0.0;
    return double(it->second.correct) / double(it->second.total);
}

std::size_t
AccuracyStats::groupTotal(workload::CharGroup g) const
{
    auto it = groups_.find(g);
    return it == groups_.end() ? 0 : it->second.total;
}

std::map<char, double>
AccuracyStats::perKeyAccuracy() const
{
    std::map<char, double> out;
    for (const auto &[c, tally] : perKey_)
        if (tally.total > 0)
            out[c] = double(tally.correct) / double(tally.total);
    return out;
}

std::size_t
AccuracyStats::perKeyTotal(char c) const
{
    auto it = perKey_.find(c);
    return it == perKey_.end() ? 0 : it->second.total;
}

} // namespace gpusc::eval
