#include "eval/experiment.h"

#include "util/logging.h"

namespace gpusc::eval {

using namespace gpusc::sim_literals;

ExperimentRunner::ExperimentRunner(ExperimentConfig cfg,
                                   attack::ModelStore &store)
    : cfg_(std::move(cfg)), creds_(cfg_.seed ^ 0xc0ffee, cfg_.charset),
      rng_(cfg_.seed)
{
    // Offline phase first (trains on a separate bot-controlled device
    // of the same configuration).
    const attack::OfflineTrainer trainer;
    model_ = &store.getOrTrain(cfg_.device, trainer);
    if (cfg_.modelTransform) {
        transformedModel_ = cfg_.modelTransform(*model_);
        model_ = &*transformedModel_;
    }

    // Victim device + session.
    android::DeviceConfig devCfg = cfg_.device;
    devCfg.seed = cfg_.seed ^ 0x76696374696dULL;
    device_ = std::make_unique<android::Device>(devCfg);

    // Defense stack on the victim's driver (the lab device above
    // trained against a stock one). Installed before boot so the very
    // first open already meets the gate.
    if (cfg_.defense.any()) {
        defensePolicy_ =
            std::make_unique<kgsl::DefendedPolicy>(cfg_.defense);
        device_->setSecurityPolicy(*defensePolicy_);
    }

    // Telemetry flows to every instrumented layer from here: the
    // attack pipeline via its Params, the driver boundary directly.
    cfg_.attackParams.telemetry = cfg_.telemetry;
    device_->kgsl().setTelemetry(cfg_.telemetry);
    if (cfg_.telemetry) {
        trialTimer_ = obs::StageTimer(cfg_.telemetry, "eval.trial");
        trialsCtr_ = &cfg_.telemetry->metrics.counter("eval.trials");
    }

    // Driver hostility applies to the victim device only (the
    // trainer's lab device above stays pristine). Attach before the
    // sampler starts so even the first reservations arbitrate.
    if (cfg_.faultPlan.any()) {
        injector_ = std::make_unique<kgsl::FaultInjector>(
            device_->eq(), cfg_.faultPlan);
        device_->kgsl().setFaultInjector(injector_.get());
    }

    if (cfg_.useDeviceRecognition) {
        eavesdropper_ = std::make_unique<attack::Eavesdropper>(
            *device_, store, cfg_.attackParams);
    } else {
        eavesdropper_ = std::make_unique<attack::Eavesdropper>(
            *device_, *model_, cfg_.attackParams);
    }

    // Both kinds of contention delay the sampler's wakeups: CPU hogs
    // directly, a saturated GPU through the kgsl driver path (§7.3:
    // "unable to timely read GPU performance counters").
    const double readContention =
        std::max(cfg_.cpuLoad, 0.75 * cfg_.gpuLoad);
    if (readContention > 0.0) {
        cpuLoad_ = std::make_unique<workload::CpuLoadModel>(
            readContention, rng_.next());
        eavesdropper_->setWakeupJitter(
            [this] { return cpuLoad_->nextWakeupDelay(); });
    }

    workload::TypingModel typing =
        cfg_.volunteer >= 0
            ? workload::TypingModel::forVolunteer(
                  std::size_t(cfg_.volunteer), rng_.next())
            : workload::TypingModel::forSpeed(cfg_.speed, rng_.next());
    typist_ = std::make_unique<workload::Typist>(*device_, typing,
                                                 rng_.next());
    typist_->setTypoProb(cfg_.typoProb);

    // Record mode: tap the sampler and the ground-truth input
    // surfaces before any reading can flow.
    if (!cfg_.recordTracePath.empty()) {
        trace::TraceHeader header;
        header.deviceKey = device_->modelKey();
        header.device = devCfg;
        header.samplingInterval = cfg_.attackParams.samplingInterval;
        header.seed = cfg_.seed;
        recorder_ = std::make_unique<trace::TraceRecorder>();
        if (recorder_->open(cfg_.recordTracePath, header) !=
            trace::TraceError::None) {
            warn("ExperimentRunner: cannot record to '%s'",
                 cfg_.recordTracePath.c_str());
            recorder_.reset();
        } else {
            recorder_->attachEavesdropper(*eavesdropper_);
            typist_->setKeyListener(
                [this](const workload::Typist::KeyEvent &ev) {
                    using Kind = workload::Typist::KeyEvent::Kind;
                    switch (ev.kind) {
                      case Kind::Char:
                        recorder_->onKeyPress(ev.time, ev.ch);
                        break;
                      case Kind::Backspace:
                        recorder_->onBackspace(ev.time);
                        break;
                      case Kind::PageSwitch:
                        recorder_->onPageSwitch(ev.time, ev.page);
                        break;
                    }
                });
            device_->ime().setPopupListener([this](char ch,
                                                   SimTime t) {
                recorder_->onPopupShow(t, ch);
            });
            device_->setAppSwitchListener(
                [this](bool toTarget, SimTime t) {
                    recorder_->onAppSwitch(t, toTarget);
                });
            if (injector_)
                injector_->setFaultListener(
                    [this](const kgsl::FaultEvent &ev) {
                        recorder_->onFault(ev);
                    });
        }
    }

    device_->boot();
    if (!eavesdropper_->start())
        warn("ExperimentRunner: attack failed to start (errno %d)",
             eavesdropper_->lastErrno());
    device_->launchTargetApp();

    if (cfg_.gpuLoad > 0.0) {
        gpuLoad_ = std::make_unique<workload::GpuLoadGenerator>(
            *device_, cfg_.gpuLoad, rng_.next());
        gpuLoad_->start();
    }

    // Let launch redraws and the first notification-free second pass.
    device_->runFor(1200_ms);
}

ExperimentRunner::~ExperimentRunner()
{
    finishRecording();
}

trace::TraceError
ExperimentRunner::finishRecording()
{
    if (!recorder_ || !recorder_->recording())
        return trace::TraceError::None;
    const trace::TraceError err = recorder_->finish();
    if (err != trace::TraceError::None)
        warn("ExperimentRunner: trace recording failed (%s)",
             trace::traceErrorString(err));
    else
        inform("ExperimentRunner: recorded %llu readings to '%s'",
               (unsigned long long)recorder_->readingCount(),
               cfg_.recordTracePath.c_str());
    return err;
}

TrialResult
ExperimentRunner::runTrial(const std::string &credential)
{
    const obs::StageTimer::Scope trialSpan =
        trialTimer_.scoped(device_->eq().now());
    if (trialsCtr_)
        trialsCtr_->inc();

    device_->app().clearText();
    device_->runFor(300_ms);

    const SimTime start = device_->eq().now();
    if (recorder_)
        recorder_->trialBegin(start, credential);
    bool done = false;
    typist_->type(credential, 100_ms, [&done] { done = true; });
    // Advance until the typist finishes (generous bound: 3 s per key
    // covers even pathological sampling configurations).
    const SimTime deadline =
        start + SimTime::fromSeconds(3.0 * double(credential.size()) +
                                     10.0);
    while (!done && device_->eq().now() < deadline)
        device_->runFor(50_ms);
    if (!done)
        panic("ExperimentRunner: typist did not finish");
    device_->runFor(600_ms); // flush trailing echoes/dismissals
    const SimTime end = device_->eq().now();
    if (recorder_)
        recorder_->trialEnd(end);

    eavesdropper_->flushTelemetry();

    TrialResult r;
    r.truth = credential;
    r.inferred = eavesdropper_->inferredTextBetween(start, end);
    if (trialListener_)
        trialListener_(r, end);
    return r;
}

AccuracyStats
ExperimentRunner::runTrials(int n, std::size_t minLen,
                            std::size_t maxLen)
{
    return runTrials(n, minLen, maxLen, nullptr);
}

AccuracyStats
ExperimentRunner::runTrials(int n, std::size_t minLen,
                            std::size_t maxLen,
                            std::vector<TrialResult> *trials)
{
    AccuracyStats stats;
    for (int i = 0; i < n; ++i) {
        const auto len = std::size_t(rng_.uniformInt(
            std::int64_t(minLen), std::int64_t(maxLen)));
        const TrialResult r = runTrial(creds_.next(len));
        stats.add(r.truth, r.inferred);
        if (trials)
            trials->push_back(r);
    }
    return stats;
}

} // namespace gpusc::eval
