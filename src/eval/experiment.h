/**
 * @file
 * End-to-end experiment runner: assemble a victim device, train (or
 * fetch) the signature model, attach the eavesdropper, replay
 * credential inputs with a typing model, and score inferred vs truth.
 * Every accuracy figure in the paper's §7 is a parameterisation of
 * this loop.
 */

#ifndef GPUSC_EVAL_EXPERIMENT_H
#define GPUSC_EVAL_EXPERIMENT_H

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "android/device.h"
#include "attack/eavesdropper.h"
#include "attack/model_store.h"
#include "eval/metrics.h"
#include "kgsl/defense.h"
#include "trace/trace_recorder.h"
#include "workload/credential.h"
#include "workload/load.h"
#include "workload/typing_model.h"
#include "workload/typist.h"

namespace gpusc::eval {

/** Everything a §7-style accuracy experiment can vary. */
struct ExperimentConfig
{
    android::DeviceConfig device;
    /** Typing behaviour: a speed band, or a volunteer profile. */
    workload::TypingSpeed speed = workload::TypingSpeed::Mixed;
    int volunteer = -1; ///< >=0 selects a volunteer profile
    double typoProb = 0.0;
    /** Character mix of generated credentials. */
    workload::CharsetMix charset{};
    /** Attack knobs. */
    attack::Eavesdropper::Params attackParams{};
    /** Concurrent workloads (§7.3), 0..1 utilisation. */
    double cpuLoad = 0.0;
    double gpuLoad = 0.0;
    /**
     * Driver hostility (kgsl::FaultInjector): transient errnos,
     * scarce counter registers, power collapses, 32-bit wraparound,
     * device resets. Default-constructed = no faults. Only the victim
     * device is affected; the offline trainer's bot device runs
     * fault-free (the paper trains in the attacker's lab).
     */
    kgsl::FaultPlan faultPlan{};
    /**
     * Counter-degrading kgsl defense stack (kgsl::DefendedPolicy):
     * RBAC gate, read rate limiting, value quantization, noise
     * injection. Default-constructed = stock driver. Only the victim
     * device defends itself; the offline trainer's lab device is
     * always stock.
     */
    kgsl::DefenseConfig defense{};
    /** Use the preloaded-store + device-recognition path. */
    bool useDeviceRecognition = false;
    /**
     * Optional transformation applied to the trained model before the
     * attack uses it (ablation studies: counter masking, threshold
     * scaling).
     */
    std::function<attack::SignatureModel(
        const attack::SignatureModel &)> modelTransform;
    /**
     * Record mode: when non-empty, the whole session (counter
     * readings + ground-truth input events + trial boundaries) is
     * captured to this .gpct file for offline replay (src/trace/).
     */
    std::string recordTracePath;
    std::uint64_t seed = 1;
    /**
     * Telemetry context (not owned; null = off). Propagated to the
     * attack pipeline and the victim's KGSL device; the runner adds
     * per-trial spans and counters of its own. Purely observational:
     * results are identical with telemetry on or off.
     */
    obs::Telemetry *telemetry = nullptr;
};

/** Result of one credential trial. */
struct TrialResult
{
    std::string truth;
    std::string inferred;
};

/** Owns a live device + attack session and runs credential trials. */
class ExperimentRunner
{
  public:
    /**
     * @param store model cache; the configuration's model is trained
     * through the offline phase on first use.
     */
    ExperimentRunner(ExperimentConfig cfg, attack::ModelStore &store);
    ~ExperimentRunner();

    /** Type one credential and return truth + inferred text. */
    TrialResult runTrial(const std::string &credential);

    /**
     * Observe every finished trial, stamped with the device's sim
     * time — the hook experiment_cli's --live-metrics mode uses to
     * tick a live telemetry plane between trials. Observational:
     * attaching a listener never changes results.
     */
    void
    setTrialListener(std::function<void(const TrialResult &, SimTime)> fn)
    {
        trialListener_ = std::move(fn);
    }

    /** Run @p n random trials with lengths in [minLen, maxLen]. */
    AccuracyStats runTrials(int n, std::size_t minLen,
                            std::size_t maxLen);

    /** Same, also recording each trial. */
    AccuracyStats runTrials(int n, std::size_t minLen,
                            std::size_t maxLen,
                            std::vector<TrialResult> *trials);

    android::Device &device() { return *device_; }
    attack::Eavesdropper &eavesdropper() { return *eavesdropper_; }
    const attack::SignatureModel &model() const { return *model_; }

    /** Active fault injector, or null when the plan is empty. */
    kgsl::FaultInjector *faultInjector() { return injector_.get(); }

    /** Active defense policy, or null when cfg.defense is stock. */
    const kgsl::DefendedPolicy *defense() const
    {
        return defensePolicy_.get();
    }

    /** Defender-side cost so far (all-zero when undefended). */
    kgsl::DefenseOverhead defenseOverhead() const
    {
        return defensePolicy_ ? defensePolicy_->overhead()
                              : kgsl::DefenseOverhead{};
    }

    /** Pipeline fault-recovery accounting (sampler + detector). */
    attack::HealthStats health() const
    {
        return eavesdropper_->health();
    }

    /**
     * Close the trace being recorded (record mode only); called
     * automatically on destruction. @return the first recording IO
     * error, if any.
     */
    trace::TraceError finishRecording();

    /** Active recorder, or null when not in record mode. */
    const trace::TraceRecorder *recorder() const
    {
        return recorder_.get();
    }

  private:
    ExperimentConfig cfg_;
    /** Declared before device_: the device keeps a raw pointer to the
     *  active policy, so the policy must be destroyed after it. */
    std::unique_ptr<kgsl::DefendedPolicy> defensePolicy_;
    std::unique_ptr<android::Device> device_;
    std::unique_ptr<kgsl::FaultInjector> injector_;
    std::unique_ptr<trace::TraceRecorder> recorder_;
    std::optional<attack::SignatureModel> transformedModel_;
    const attack::SignatureModel *model_;
    std::unique_ptr<attack::Eavesdropper> eavesdropper_;
    std::unique_ptr<workload::Typist> typist_;
    std::unique_ptr<workload::CpuLoadModel> cpuLoad_;
    std::unique_ptr<workload::GpuLoadGenerator> gpuLoad_;
    workload::CredentialGenerator creds_;
    Rng rng_;
    obs::StageTimer trialTimer_;
    obs::Counter *trialsCtr_ = nullptr;
    std::function<void(const TrialResult &, SimTime)> trialListener_;
};

} // namespace gpusc::eval

#endif // GPUSC_EVAL_EXPERIMENT_H
