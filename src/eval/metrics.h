/**
 * @file
 * Accuracy metrics matching the paper's reporting: exact-match text
 * accuracy (Fig. 17a), per-key accuracy via edit-distance alignment
 * (Fig. 17b/18), and per-character-group breakdowns (Fig. 17c).
 */

#ifndef GPUSC_EVAL_METRICS_H
#define GPUSC_EVAL_METRICS_H

#include <map>
#include <string>
#include <vector>

#include "workload/credential.h"

namespace gpusc::eval {

/** Levenshtein distance between two strings. */
std::size_t editDistance(const std::string &a, const std::string &b);

/**
 * Optimal alignment of truth vs inferred: for each truth character,
 * whether the aligned inferred character matches.
 */
std::vector<bool> alignMatches(const std::string &truth,
                               const std::string &inferred);

/** Accumulates per-trial and per-character statistics. */
class AccuracyStats
{
  public:
    void add(const std::string &truth, const std::string &inferred);

    std::size_t trials() const { return trials_; }

    /** Fraction of texts inferred exactly (Fig. 17a). */
    double textAccuracy() const;

    /** Fraction of truth characters inferred correctly (aligned). */
    double charAccuracy() const;

    /** Mean edit distance per text (Fig. 17b). */
    double avgErrorsPerText() const;

    /** Accuracy for one character group (Fig. 17c). */
    double groupAccuracy(workload::CharGroup g) const;
    /** Samples seen for a group. */
    std::size_t groupTotal(workload::CharGroup g) const;

    /** Per-character accuracy (Fig. 18); keys with zero samples are
     *  omitted. */
    std::map<char, double> perKeyAccuracy() const;
    std::size_t perKeyTotal(char c) const;

  private:
    struct Tally
    {
        std::size_t correct = 0;
        std::size_t total = 0;
    };

    std::size_t trials_ = 0;
    std::size_t exact_ = 0;
    std::size_t editTotal_ = 0;
    Tally chars_;
    std::map<workload::CharGroup, Tally> groups_;
    std::map<char, Tally> perKey_;
};

} // namespace gpusc::eval

#endif // GPUSC_EVAL_METRICS_H
