/**
 * @file
 * OS-level performance-counter obfuscation (paper §9.3): the system
 * periodically executes small random GPU workloads in the background
 * so the attacker's counter stream is polluted. The open question the
 * paper raises — how much obfuscation workload is enough, and at what
 * performance cost — is what the mitigation bench sweeps.
 */

#ifndef GPUSC_MITIGATION_OBFUSCATION_H
#define GPUSC_MITIGATION_OBFUSCATION_H

#include <memory>

#include "android/device.h"
#include "util/rng.h"

namespace gpusc::mitigation {

/** Random background GPU workload injector. */
class PcObfuscator
{
  public:
    struct Params
    {
        /** Mean time between obfuscation jobs. */
        SimTime meanPeriod = SimTime::fromMs(30);
        /** Mean pixels per job, as a fraction of the screen. */
        double meanAreaFrac = 0.05;
        std::uint64_t seed = 17;
    };

    PcObfuscator(android::Device &device, Params params);
    ~PcObfuscator();

    void start();
    void stop();

    /** GPU time consumed by obfuscation so far (overhead metric). */
    SimTime gpuTimeConsumed() const { return consumed_; }

  private:
    void tick();

    android::Device &device_;
    Params params_;
    Rng rng_;
    bool running_ = false;
    int phase_ = 0;
    SimTime consumed_;
    std::shared_ptr<int> aliveToken_;
};

} // namespace gpusc::mitigation

#endif // GPUSC_MITIGATION_OBFUSCATION_H
