#include "mitigation/obfuscation.h"

#include <algorithm>

namespace gpusc::mitigation {

PcObfuscator::PcObfuscator(android::Device &device, Params params)
    : device_(device), params_(params), rng_(params.seed),
      aliveToken_(std::make_shared<int>(0))
{
}

PcObfuscator::~PcObfuscator() = default;

void
PcObfuscator::start()
{
    if (running_)
        return;
    running_ = true;
    tick();
}

void
PcObfuscator::stop()
{
    running_ = false;
}

void
PcObfuscator::tick()
{
    if (!running_)
        return;

    const auto &display = device_.display();
    const double areaFrac =
        std::max(0.005, rng_.exponential(params_.meanAreaFrac));
    const auto targetPixels = std::int64_t(
        areaFrac * double(display.width) * double(display.height));

    gfx::FrameScene scene;
    scene.damage = gfx::Rect{0, 0, display.width, display.height};
    std::int64_t pixels = 0;
    int i = 0;
    while (pixels < targetPixels) {
        const int w =
            60 + int(rng_.uniformInt(0, display.width / 3));
        const int h =
            40 + int(rng_.uniformInt(0, display.height / 10));
        const int x = int(rng_.uniformInt(0, display.width - 60));
        const int y = int(rng_.uniformInt(0, display.height - 40));
        scene.add(gfx::Rect{x, y, std::min(x + w, display.width),
                            std::min(y + h, display.height)},
                  (i + phase_) % 2 == 0, gfx::PrimTag::Foreign);
        pixels += std::int64_t(w) * h;
        ++i;
    }
    const SimTime before = device_.engine().totalBusyTime();
    device_.engine().submit(scene);
    consumed_ += device_.engine().totalBusyTime() - before;
    ++phase_;

    const double waitS = rng_.exponential(
        std::max(1e-3, params_.meanPeriod.seconds()));
    std::weak_ptr<int> alive = aliveToken_;
    device_.eq().scheduleAfter(
        SimTime::fromSeconds(std::max(2e-3, waitS)), [this, alive] {
            if (!alive.expired())
                tick();
        });
}

} // namespace gpusc::mitigation
