#include "obs/log_histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace gpusc::obs {

std::size_t
LogHistogram::bucketIndex(std::uint64_t v)
{
    if (v < kSubBuckets)
        return std::size_t(v);
    const unsigned octave = 63u - unsigned(std::countl_zero(v));
    const unsigned sub =
        unsigned((v >> (octave - kSubBits)) & (kSubBuckets - 1));
    return kSubBuckets + std::size_t(octave - kSubBits) * kSubBuckets +
           sub;
}

std::uint64_t
LogHistogram::bucketLow(std::size_t i)
{
    if (i < kSubBuckets)
        return i;
    const std::size_t g = i - kSubBuckets;
    const unsigned octave = unsigned(g / kSubBuckets) + kSubBits;
    const unsigned sub = unsigned(g % kSubBuckets);
    return (std::uint64_t(1) << octave) +
           (std::uint64_t(sub) << (octave - kSubBits));
}

std::uint64_t
LogHistogram::bucketHigh(std::size_t i)
{
    if (i + 1 < kBuckets)
        return bucketLow(i + 1);
    return UINT64_MAX;
}

void
LogHistogram::add(std::uint64_t v)
{
    addCount(v, 1);
}

void
LogHistogram::addCount(std::uint64_t v, std::uint64_t n)
{
    if (n == 0)
        return;
    counts_[bucketIndex(v)] += n;
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    count_ += n;
    sum_ += double(v) * double(n);
}

void
LogHistogram::merge(const LogHistogram &other)
{
    if (other.count_ == 0)
        return;
    for (std::size_t i = 0; i < kBuckets; ++i)
        counts_[i] += other.counts_[i];
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

LogHistogram
LogHistogram::deltaSince(const LogHistogram &prev) const
{
    LogHistogram d;
    bool any = false;
    std::size_t first = 0, last = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        const std::uint64_t was = prev.counts_[i];
        const std::uint64_t now = counts_[i];
        d.counts_[i] = now >= was ? now - was : 0;
        if (d.counts_[i] == 0)
            continue;
        if (!any)
            first = i;
        last = i;
        any = true;
    }
    if (!any)
        return d;
    d.count_ = count_ - prev.count_;
    d.sum_ = sum_ - prev.sum_;
    // Bucket-derived extrema: deterministic from the delta alone.
    d.min_ = bucketLow(first);
    d.max_ = bucketHigh(last) - 1;
    return d;
}

std::uint64_t
LogHistogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-th sample, 1-based; q=0 picks the first.
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, std::uint64_t(q * double(count_) + 0.5));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += counts_[i];
        if (seen >= rank) {
            const std::uint64_t lo = bucketLow(i);
            const std::uint64_t hi = bucketHigh(i);
            const std::uint64_t mid = lo + (hi - lo) / 2;
            return std::clamp(mid, min_, max_);
        }
    }
    return max_;
}

std::string
LogHistogram::render(std::size_t width) const
{
    std::string out;
    std::uint64_t peak = 0;
    for (std::uint64_t c : counts_)
        peak = std::max(peak, c);
    if (peak == 0)
        return out;
    char line[128];
    for (std::size_t i = 0; i < kBuckets; ++i) {
        if (counts_[i] == 0)
            continue;
        std::snprintf(line, sizeof(line),
                      "[%12llu, %12llu) %8llu |",
                      (unsigned long long)bucketLow(i),
                      (unsigned long long)bucketHigh(i),
                      (unsigned long long)counts_[i]);
        out += line;
        out.append(std::size_t(counts_[i] * width / peak), '#');
        out += '\n';
    }
    return out;
}

} // namespace gpusc::obs
