#include "obs/span.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/metric_registry.h"

namespace gpusc::obs {

std::int64_t
hostNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now()
                   .time_since_epoch())
        .count();
}

Tracer::Tracer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity))
{
    ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

int
Tracer::stageId(const std::string &name)
{
    for (std::size_t i = 0; i < stages_.size(); ++i)
        if (stages_[i] == name)
            return int(i);
    stages_.push_back(name);
    return int(stages_.size() - 1);
}

void
Tracer::record(int tid, SimTime at, std::int64_t hostNs)
{
    Span s;
    s.tid = tid;
    s.name = stages_[std::size_t(tid)].c_str();
    s.at = at;
    s.hostNs = hostNs;
    s.seq = seq_++;
    if (ring_.size() < capacity_) {
        // One-shot full reserve (see AuditTrail::record): no growth
        // reallocations on the instrumented path.
        if (ring_.capacity() < capacity_)
            ring_.reserve(capacity_);
        ring_.push_back(s);
    } else {
        ring_[std::size_t(s.seq % capacity_)] = s;
    }
}

void
Tracer::merge(const Tracer &other)
{
    // Remap the other's lane ids into this tracer's stage table.
    std::vector<int> remap(other.stages_.size());
    for (std::size_t i = 0; i < other.stages_.size(); ++i)
        remap[i] = stageId(other.stages_[i]);
    for (const Span &s : other.snapshot())
        record(remap[std::size_t(s.tid)], s.at, s.hostNs);
    seq_ += other.dropped();
}

std::size_t
Tracer::size() const
{
    return ring_.size();
}

std::uint64_t
Tracer::dropped() const
{
    return seq_ > ring_.size() ? seq_ - ring_.size() : 0;
}

std::vector<Span>
Tracer::snapshot() const
{
    std::vector<Span> out = ring_;
    std::sort(out.begin(), out.end(),
              [](const Span &a, const Span &b) { return a.seq < b.seq; });
    return out;
}

std::string
Tracer::chromeTraceJson() const
{
    std::string out = "{\"traceEvents\": [";
    bool first = true;
    char buf[160];
    // Metadata: one named lane per stage, all under pid 1.
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        if (!first)
            out += ", ";
        first = false;
        out += "{\"name\": \"thread_name\", \"ph\": \"M\", "
               "\"pid\": 1, \"tid\": ";
        std::snprintf(buf, sizeof(buf), "%zu", i);
        out += buf;
        out += ", \"args\": {\"name\": ";
        appendJsonString(out, stages_[i]);
        out += "}}";
    }
    for (const Span &s : snapshot()) {
        if (!first)
            out += ", ";
        first = false;
        out += "{\"name\": ";
        appendJsonString(out, s.name);
        std::snprintf(buf, sizeof(buf),
                      ", \"cat\": \"pipeline\", \"ph\": \"X\", "
                      "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, "
                      "\"tid\": %d}",
                      double(s.at.ns()) / 1000.0,
                      double(s.hostNs) / 1000.0, s.tid);
        out += buf;
    }
    out += "], \"displayTimeUnit\": \"ms\"}";
    return out;
}

} // namespace gpusc::obs
