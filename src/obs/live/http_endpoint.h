/**
 * @file
 * Minimal self-contained HTTP exposition endpoint for the live
 * telemetry plane — a blocking accept loop on a dedicated thread
 * serving pre-rendered snapshot strings over 127.0.0.1.
 *
 * The endpoint never touches pipeline state: the plane publishes an
 * immutable Snapshot (shared_ptr swap under a mutex) at each window
 * boundary, and every request is answered entirely from the snapshot
 * it grabbed. That keeps the serving thread off the determinism
 * surface — the pipeline's output is byte-identical whether anyone
 * is scraping or not — and means a slow or stuck scraper can never
 * backpressure ingest.
 *
 * Routes: /metrics (Prometheus text), /metrics.json (registry-style
 * snapshot of the plane), /healthz, /sessions, /alerts; anything
 * else is 404. HTTP/1.0, connection-close per request — deliberately
 * dumb, it exists for curl/Prometheus scrapes and the CI smoke job,
 * not as a web server.
 */

#ifndef GPUSC_OBS_LIVE_HTTP_ENDPOINT_H
#define GPUSC_OBS_LIVE_HTTP_ENDPOINT_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace gpusc::obs::live {

/** Immutable pre-rendered response bodies for every route. */
struct EndpointSnapshot
{
    std::string metricsText;  ///< /metrics (Prometheus text)
    std::string metricsJson;  ///< /metrics.json
    std::string sessionsJson; ///< /sessions
    std::string alertsJson;   ///< /alerts
};

/** Loopback HTTP server over published EndpointSnapshots. */
class HttpEndpoint
{
  public:
    HttpEndpoint() = default;
    ~HttpEndpoint();

    HttpEndpoint(const HttpEndpoint &) = delete;
    HttpEndpoint &operator=(const HttpEndpoint &) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 picks an ephemeral port), start the
     * accept thread. False (with a warn) when the bind fails; the
     * plane then degrades to file-sink-only.
     */
    bool start(std::uint16_t port);

    /** Close the listener and join the accept thread (idempotent). */
    void stop();

    bool running() const { return running_.load(); }

    /** Actual bound port (after start with port 0). */
    std::uint16_t port() const { return port_; }

    /** Swap in a new snapshot; in-flight requests keep the old one. */
    void publish(std::shared_ptr<const EndpointSnapshot> snap);

    /** Requests answered since start (any route, including 404s). */
    std::uint64_t requestsServed() const
    {
        return requestsServed_.load();
    }

  private:
    void serveLoop();
    void handleConnection(int fd);
    std::shared_ptr<const EndpointSnapshot> currentSnapshot();

    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> requestsServed_{0};
    std::mutex snapMutex_;
    std::shared_ptr<const EndpointSnapshot> snapshot_;
};

} // namespace gpusc::obs::live

#endif // GPUSC_OBS_LIVE_HTTP_ENDPOINT_H
