/**
 * @file
 * Declarative SLO watchdogs evaluated per time-series window.
 *
 * An SloRule describes one health condition over the windowed metric
 * stream — a counter rate crossing a threshold (shed rate, pace
 * backoffs), a gauge level (memory headroom), the funnel residual
 * deviating from zero, or a ratio (accuracy proxy) whose EWMA drops
 * below a floor. The SloEngine evaluates every rule against each
 * closed window with consecutive-window hysteresis (`fireAfter`
 * breaching windows to fire, `resolveAfter` healthy windows to
 * resolve), records AlertFired / AlertResolved into the run's
 * AuditTrail under Stage::LiveObs — *outside* the change funnel, so
 * the funnel identity is untouched — and mirrors the firing count
 * into the `obs.alerts_active` gauge.
 *
 * Rules are plain data: built in code, or parsed from a rules file
 * (one rule per line, `key=value` fields) for the `--slo` CLI flag.
 */

#ifndef GPUSC_OBS_LIVE_SLO_H
#define GPUSC_OBS_LIVE_SLO_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/live/time_series.h"

namespace gpusc::obs {
class Telemetry;
} // namespace gpusc::obs

namespace gpusc::obs::live {

/** One declarative health condition over the window stream. */
struct SloRule
{
    enum class Kind : std::uint8_t
    {
        /** Sum of `counters` deltas per second vs threshold. */
        CounterRate,
        /** Latest value of `gauge` vs threshold. */
        GaugeLevel,
        /** |funnel.changes_in - sum of funnel outcome deltas| — the
         *  funnel residual; healthy runs hold it at exactly 0. */
        FunnelResidual,
        /** EWMA of sum(counters)/sum(denomCounters) vs threshold
         *  (windows with an empty denominator don't update the
         *  EWMA). The accuracy-drop watchdog shape. */
        RatioDrop,
    };

    enum class Cmp : std::uint8_t
    {
        Gt, ///< breach when observed > threshold
        Lt, ///< breach when observed < threshold
        Ne, ///< breach when observed != threshold (exact compare)
    };

    std::string name;
    Kind kind = Kind::CounterRate;
    Cmp cmp = Cmp::Gt;
    /** Numerator counters (summed); CounterRate / RatioDrop. */
    std::vector<std::string> counters;
    /** Denominator counters (summed); RatioDrop only. */
    std::vector<std::string> denomCounters;
    /** Gauge name; GaugeLevel only. */
    std::string gauge;
    double threshold = 0.0;
    /** EWMA smoothing for RatioDrop (1.0 = no smoothing). */
    double ewmaAlpha = 0.3;
    /** Consecutive breaching windows before the alert fires. */
    std::uint32_t fireAfter = 1;
    /** Consecutive healthy windows before a firing alert resolves. */
    std::uint32_t resolveAfter = 2;
};

const char *sloKindName(SloRule::Kind kind);
const char *sloCmpName(SloRule::Cmp cmp);

/** Live evaluation state of one rule. */
struct AlertState
{
    SloRule rule;
    bool firing = false;
    std::uint32_t breachStreak = 0;
    std::uint32_t okStreak = 0;
    /** Observed value in the last evaluated window. */
    double lastValue = 0.0;
    /** EWMA accumulator (RatioDrop). */
    double ewma = 0.0;
    bool ewmaSeeded = false;
    std::uint64_t timesFired = 0;
    std::uint64_t timesResolved = 0;
    SimTime lastTransition;
};

/** Typed description of why a rules-file line failed to parse. */
struct SloParseError
{
    std::size_t line = 0;
    std::string message;
};

/** Evaluates a rule set against each closed window. */
class SloEngine
{
  public:
    explicit SloEngine(std::vector<SloRule> rules = {});

    void addRule(SloRule rule);

    /**
     * Evaluate every rule against the closed window @p w. Fire /
     * resolve transitions are recorded into @p telemetry's audit
     * trail (Stage::LiveObs) and the `obs.alerts_active` gauge is
     * refreshed. Null telemetry evaluates silently (tests).
     */
    void evaluate(const TsWindow &w, Telemetry *telemetry);

    std::size_t activeAlerts() const;
    const std::vector<AlertState> &alerts() const { return alerts_; }

    /** The /alerts endpoint body: one JSON object per rule. */
    std::string toJson() const;

    /**
     * Observed value of @p rule in window @p w (pre-hysteresis; the
     * quantity the rule's Cmp compares against its threshold).
     */
    static double observedValue(const SloRule &rule, const TsWindow &w,
                                const AlertState &state);

    /**
     * Parse a rules file: one rule per line as space-separated
     * `key=value` fields (name=, kind=, cmp=, threshold=, counters=
     * a,b,c, denom=, gauge=, ewma_alpha=, fire_after=,
     * resolve_after=); `#` starts a comment. Returns the rules, or
     * reports the first malformed line through @p error (non-null)
     * and returns what parsed before it.
     */
    static std::vector<SloRule> parseRules(const std::string &text,
                                           SloParseError *error);

  private:
    std::vector<AlertState> alerts_;
};

} // namespace gpusc::obs::live

#endif // GPUSC_OBS_LIVE_SLO_H
