#include "obs/live/slo.h"

#include <cmath>
#include <cstdlib>

#include "obs/telemetry.h"

namespace gpusc::obs::live {

const char *
sloKindName(SloRule::Kind kind)
{
    switch (kind) {
      case SloRule::Kind::CounterRate:
        return "counter_rate";
      case SloRule::Kind::GaugeLevel:
        return "gauge_level";
      case SloRule::Kind::FunnelResidual:
        return "funnel_residual";
      case SloRule::Kind::RatioDrop:
        return "ratio_drop";
    }
    return "?";
}

const char *
sloCmpName(SloRule::Cmp cmp)
{
    switch (cmp) {
      case SloRule::Cmp::Gt:
        return "gt";
      case SloRule::Cmp::Lt:
        return "lt";
      case SloRule::Cmp::Ne:
        return "ne";
    }
    return "?";
}

namespace {

std::uint64_t
sumDeltas(const TsWindow &w, const std::vector<std::string> &names)
{
    std::uint64_t total = 0;
    for (const std::string &name : names)
        total += w.counterDelta(name);
    return total;
}

bool
breaches(SloRule::Cmp cmp, double observed, double threshold)
{
    switch (cmp) {
      case SloRule::Cmp::Gt:
        return observed > threshold;
      case SloRule::Cmp::Lt:
        return observed < threshold;
      case SloRule::Cmp::Ne:
        // Exact compare is intended: Ne exists for integral signals
        // (the funnel residual); approximate rules use Gt/Lt.
        return observed != threshold;
    }
    return false;
}

} // namespace

SloEngine::SloEngine(std::vector<SloRule> rules)
{
    for (SloRule &rule : rules)
        addRule(std::move(rule));
}

void
SloEngine::addRule(SloRule rule)
{
    AlertState state;
    state.rule = std::move(rule);
    alerts_.push_back(std::move(state));
}

double
SloEngine::observedValue(const SloRule &rule, const TsWindow &w,
                         const AlertState &state)
{
    switch (rule.kind) {
      case SloRule::Kind::CounterRate: {
        const double secs = w.width.seconds();
        const double total = double(sumDeltas(w, rule.counters));
        return secs > 0.0 ? total / secs : total;
      }
      case SloRule::Kind::GaugeLevel: {
        const auto it = w.gauges.find(rule.gauge);
        return it == w.gauges.end() ? 0.0 : it->second;
      }
      case SloRule::Kind::FunnelResidual: {
        const std::uint64_t in = w.counterDelta("funnel.changes_in");
        std::uint64_t out = 0;
        const Decision outcomes[] = {
            Decision::AcceptedKey,        Decision::SplitRepaired,
            Decision::DuplicationDrop,    Decision::NoiseRejected,
            Decision::SuppressedAppSwitch,
        };
        for (Decision d : outcomes)
            out += w.counterDelta(std::string("funnel.") +
                                  decisionName(d));
        return double(in) - double(out);
      }
      case SloRule::Kind::RatioDrop: {
        const std::uint64_t denom = sumDeltas(w, rule.denomCounters);
        if (denom == 0)
            return state.ewmaSeeded ? state.ewma : 0.0;
        const double ratio =
            double(sumDeltas(w, rule.counters)) / double(denom);
        if (!state.ewmaSeeded)
            return ratio;
        return state.ewma +
               rule.ewmaAlpha * (ratio - state.ewma);
      }
    }
    return 0.0;
}

void
SloEngine::evaluate(const TsWindow &w, Telemetry *telemetry)
{
    for (AlertState &state : alerts_) {
        const SloRule &rule = state.rule;
        const double observed = observedValue(rule, w, state);
        state.lastValue = observed;
        if (rule.kind == SloRule::Kind::RatioDrop) {
            // observedValue already folded this window into the EWMA
            // (or passed the held value through on an empty
            // denominator); commit it as the new accumulator.
            const bool hadSamples =
                sumDeltas(w, rule.denomCounters) != 0;
            if (hadSamples) {
                state.ewma = observed;
                state.ewmaSeeded = true;
            }
            if (!state.ewmaSeeded)
                continue; // nothing observed yet: neither breach nor ok
        }
        if (breaches(rule.cmp, observed, rule.threshold)) {
            ++state.breachStreak;
            state.okStreak = 0;
            if (!state.firing &&
                state.breachStreak >= rule.fireAfter) {
                state.firing = true;
                ++state.timesFired;
                state.lastTransition = w.end();
                if (telemetry != nullptr)
                    telemetry->audit.record(
                        w.end(), Stage::LiveObs,
                        Decision::AlertFired, rule.name, observed);
            }
        } else {
            ++state.okStreak;
            state.breachStreak = 0;
            if (state.firing &&
                state.okStreak >= rule.resolveAfter) {
                state.firing = false;
                ++state.timesResolved;
                state.lastTransition = w.end();
                if (telemetry != nullptr)
                    telemetry->audit.record(
                        w.end(), Stage::LiveObs,
                        Decision::AlertResolved, rule.name, observed);
            }
        }
    }
    if (telemetry != nullptr)
        telemetry->metrics.gauge("obs.alerts_active")
            .set(double(activeAlerts()));
}

std::size_t
SloEngine::activeAlerts() const
{
    std::size_t n = 0;
    for (const AlertState &state : alerts_)
        if (state.firing)
            ++n;
    return n;
}

std::string
SloEngine::toJson() const
{
    std::string out = "{\"active\": ";
    appendJsonNumber(out, double(activeAlerts()));
    out += ", \"alerts\": [";
    bool first = true;
    for (const AlertState &state : alerts_) {
        if (!first)
            out += ", ";
        first = false;
        out += "{\"name\": ";
        appendJsonString(out, state.rule.name);
        out += ", \"kind\": ";
        appendJsonString(out, sloKindName(state.rule.kind));
        out += ", \"cmp\": ";
        appendJsonString(out, sloCmpName(state.rule.cmp));
        out += ", \"threshold\": ";
        appendJsonNumber(out, state.rule.threshold);
        out += ", \"firing\": ";
        out += state.firing ? "true" : "false";
        out += ", \"last_value\": ";
        appendJsonNumber(out, state.lastValue);
        out += ", \"times_fired\": ";
        appendJsonNumber(out, double(state.timesFired));
        out += ", \"times_resolved\": ";
        appendJsonNumber(out, double(state.timesResolved));
        out += ", \"last_transition_ms\": ";
        appendJsonNumber(out, state.lastTransition.millis());
        out += '}';
    }
    out += "]}";
    return out;
}

namespace {

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t at = 0;
    while (at <= s.size()) {
        const std::size_t comma = s.find(',', at);
        const std::size_t end =
            comma == std::string::npos ? s.size() : comma;
        if (end > at)
            out.push_back(s.substr(at, end - at));
        if (comma == std::string::npos)
            break;
        at = comma + 1;
    }
    return out;
}

bool
parseField(SloRule &rule, const std::string &key,
           const std::string &value, std::string &error)
{
    if (key == "name") {
        rule.name = value;
    } else if (key == "kind") {
        if (value == "counter_rate")
            rule.kind = SloRule::Kind::CounterRate;
        else if (value == "gauge_level")
            rule.kind = SloRule::Kind::GaugeLevel;
        else if (value == "funnel_residual")
            rule.kind = SloRule::Kind::FunnelResidual;
        else if (value == "ratio_drop")
            rule.kind = SloRule::Kind::RatioDrop;
        else {
            error = "unknown kind '" + value + "'";
            return false;
        }
    } else if (key == "cmp") {
        if (value == "gt")
            rule.cmp = SloRule::Cmp::Gt;
        else if (value == "lt")
            rule.cmp = SloRule::Cmp::Lt;
        else if (value == "ne")
            rule.cmp = SloRule::Cmp::Ne;
        else {
            error = "unknown cmp '" + value + "'";
            return false;
        }
    } else if (key == "counters") {
        rule.counters = splitList(value);
    } else if (key == "denom") {
        rule.denomCounters = splitList(value);
    } else if (key == "gauge") {
        rule.gauge = value;
    } else if (key == "threshold") {
        rule.threshold = std::strtod(value.c_str(), nullptr);
    } else if (key == "ewma_alpha") {
        rule.ewmaAlpha = std::strtod(value.c_str(), nullptr);
    } else if (key == "fire_after") {
        rule.fireAfter =
            std::uint32_t(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "resolve_after") {
        rule.resolveAfter =
            std::uint32_t(std::strtoul(value.c_str(), nullptr, 10));
    } else {
        error = "unknown field '" + key + "'";
        return false;
    }
    return true;
}

} // namespace

std::vector<SloRule>
SloEngine::parseRules(const std::string &text, SloParseError *error)
{
    std::vector<SloRule> rules;
    std::size_t lineNo = 0;
    std::size_t at = 0;
    while (at <= text.size()) {
        const std::size_t nl = text.find('\n', at);
        const std::size_t end =
            nl == std::string::npos ? text.size() : nl;
        std::string line = text.substr(at, end - at);
        ++lineNo;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        SloRule rule;
        bool sawField = false;
        bool bad = false;
        std::size_t tok = 0;
        while (tok < line.size() && !bad) {
            while (tok < line.size() &&
                   (line[tok] == ' ' || line[tok] == '\t'))
                ++tok;
            if (tok >= line.size())
                break;
            std::size_t stop = tok;
            while (stop < line.size() && line[stop] != ' ' &&
                   line[stop] != '\t')
                ++stop;
            const std::string field = line.substr(tok, stop - tok);
            tok = stop;
            const std::size_t eq = field.find('=');
            std::string fieldError;
            if (eq == std::string::npos) {
                fieldError = "expected key=value, got '" + field + "'";
                bad = true;
            } else if (!parseField(rule, field.substr(0, eq),
                                   field.substr(eq + 1), fieldError)) {
                bad = true;
            } else {
                sawField = true;
            }
            if (bad && error != nullptr) {
                error->line = lineNo;
                error->message = fieldError;
            }
        }
        if (bad)
            return rules;
        if (sawField) {
            if (rule.name.empty()) {
                if (error != nullptr) {
                    error->line = lineNo;
                    error->message = "rule is missing name=";
                }
                return rules;
            }
            rules.push_back(std::move(rule));
        }
        if (nl == std::string::npos)
            break;
        at = nl + 1;
    }
    return rules;
}

} // namespace gpusc::obs::live
