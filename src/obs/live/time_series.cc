#include "obs/live/time_series.h"

#include <cstdio>

#include "util/logging.h"

namespace gpusc::obs::live {

const char *
windowLevelName(WindowLevel level)
{
    switch (level) {
      case WindowLevel::Fine:
        return "fine";
      case WindowLevel::Coarse:
        return "coarse";
      case WindowLevel::Archive:
        return "archive";
      case WindowLevel::Open:
        return "open";
    }
    return "?";
}

void
TsWindow::absorb(const TsWindow &other)
{
    for (const auto &[name, delta] : other.counters)
        counters[name] += delta;
    for (const auto &[name, value] : other.gauges)
        gauges[name] = value;
    for (const auto &[name, hist] : other.histograms)
        histograms[name].merge(hist);
    const SimTime newStart = std::min(start, other.start);
    const SimTime newEnd = std::max(end(), other.end());
    start = newStart;
    width = newEnd - newStart;
}

std::uint64_t
TsWindow::counterDelta(const std::string &name) const
{
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

std::string
TsWindow::toJson(const MetricRegistry *unitSource) const
{
    std::string out = "{\"t_ms\": ";
    appendJsonNumber(out, start.millis());
    out += ", \"w_ms\": ";
    appendJsonNumber(out, width.millis());
    out += ", \"level\": ";
    appendJsonString(out, windowLevelName(level));
    out += ", \"counters\": {";
    bool first = true;
    for (const auto &[name, delta] : counters) {
        if (!first)
            out += ", ";
        first = false;
        appendJsonString(out, name);
        out += ": ";
        appendJsonNumber(out, double(delta));
    }
    out += "}, \"gauges\": {";
    first = true;
    for (const auto &[name, value] : gauges) {
        if (!first)
            out += ", ";
        first = false;
        appendJsonString(out, name);
        out += ": ";
        appendJsonNumber(out, value);
    }
    out += "}, \"histograms\": {";
    first = true;
    for (const auto &[name, hist] : histograms) {
        if (!first)
            out += ", ";
        first = false;
        appendJsonString(out, name);
        out += ": ";
        appendHistogramJson(out, hist,
                            unitSource ? unitSource->histogramUnit(name)
                                       : std::string());
    }
    out += "}}";
    return out;
}

TimeSeries::TimeSeries() : TimeSeries(Params{}) {}

TimeSeries::TimeSeries(Params params) : params_(params)
{
    if (params_.fineWidth.ns() <= 0)
        panic("TimeSeries: fineWidth must be positive (got %lldns)",
              (long long)params_.fineWidth.ns());
    if (params_.fineCapacity == 0 || params_.coarsePerFine == 0 ||
        params_.coarseCapacity == 0)
        panic("TimeSeries: capacities and coarsePerFine must be "
              "non-zero");
}

void
TimeSeries::observe(SimTime now, const MetricRegistry &reg,
                    const DecisionCounts *decisions)
{
    if (!haveOpen_) {
        const std::int64_t slot = now.ns() / params_.fineWidth.ns();
        open_ = TsWindow{};
        open_.start = SimTime::fromNs(slot * params_.fineWidth.ns());
        open_.width = params_.fineWidth;
        open_.level = WindowLevel::Open;
        haveOpen_ = true;
    }
    if (now < open_.start)
        panic("TimeSeries::observe: non-monotone tick (%lldns into a "
              "window starting at %lldns)",
              (long long)now.ns(), (long long)open_.start.ns());
    while (now >= open_.end()) {
        const SimTime nextStart = open_.end();
        closeOpenWindow();
        open_ = TsWindow{};
        open_.start = nextStart;
        open_.width = params_.fineWidth;
        open_.level = WindowLevel::Open;
        // Gauges are levels, not deltas: a window nobody ticked
        // inside still reports the last-known levels at its end.
        open_.gauges = lastGauges_;
    }

    for (const auto &[name, c] : reg.counters()) {
        const std::uint64_t value = c->value();
        std::uint64_t &last = lastCounters_[name];
        if (value > last)
            open_.counters[name] += value - last;
        last = value;
    }
    if (decisions != nullptr) {
        // The synthetic funnel.* names are per-instance constants;
        // building them once keeps the per-tick cost to map lookups.
        if (funnelNames_.empty()) {
            funnelNames_.reserve(kNumDecisions + 1);
            for (std::size_t d = 0; d < kNumDecisions; ++d)
                funnelNames_.push_back(std::string("funnel.") +
                                       decisionName(Decision(d)));
            funnelNames_.push_back("funnel.changes_in");
        }
        for (std::size_t d = 0; d < kNumDecisions; ++d) {
            const std::uint64_t value = decisions->counts[d];
            std::uint64_t &last = lastCounters_[funnelNames_[d]];
            if (value > last)
                open_.counters[funnelNames_[d]] += value - last;
            last = value;
        }
        std::uint64_t &lastIn =
            lastCounters_[funnelNames_[kNumDecisions]];
        if (decisions->changesIn > lastIn)
            open_.counters[funnelNames_[kNumDecisions]] +=
                decisions->changesIn - lastIn;
        lastIn = decisions->changesIn;
    }
    for (const auto &[name, g] : reg.gauges()) {
        open_.gauges[name] = g->value();
        lastGauges_[name] = g->value();
    }
    for (const auto &[name, h] : reg.histograms()) {
        LogHistogram &last = lastHistograms_[name];
        if (h->count() == last.count())
            continue; // no new samples: skip the two array copies
        const LogHistogram delta = h->deltaSince(last);
        if (!delta.empty())
            open_.histograms[name].merge(delta);
        last = *h;
    }
}

void
TimeSeries::finish()
{
    if (!haveOpen_)
        return;
    closeOpenWindow();
    haveOpen_ = false;
}

void
TimeSeries::closeOpenWindow()
{
    open_.level = WindowLevel::Fine;
    ++closed_;
    if (windowListener_)
        windowListener_(open_);
    // Every caller re-initialises open_ right after, so the maps can
    // move into the ring instead of deep-copying ~40 nodes per close.
    fine_.push_back(std::move(open_));
    rollUp();
}

void
TimeSeries::rollUp()
{
    const SimTime coarseW = coarseWidth();
    while (fine_.size() > params_.fineCapacity) {
        const TsWindow &oldest = fine_.front();
        const std::int64_t slot = oldest.start.ns() / coarseW.ns();
        const SimTime bucketStart =
            SimTime::fromNs(slot * coarseW.ns());
        if (coarse_.empty() || coarse_.back().start != bucketStart) {
            TsWindow bucket;
            bucket.start = bucketStart;
            bucket.width = coarseW;
            bucket.level = WindowLevel::Coarse;
            coarse_.push_back(std::move(bucket));
        }
        coarse_.back().absorb(oldest);
        coarse_.back().level = WindowLevel::Coarse;
        fine_.pop_front();
        ++rollupsFine_;
    }
    while (coarse_.size() > params_.coarseCapacity) {
        if (!haveArchive_) {
            archive_ = coarse_.front();
            archive_.level = WindowLevel::Archive;
            haveArchive_ = true;
        } else {
            archive_.absorb(coarse_.front());
            archive_.level = WindowLevel::Archive;
        }
        coarse_.pop_front();
        ++rollupsCoarse_;
    }
}

std::vector<const TsWindow *>
TimeSeries::windows() const
{
    std::vector<const TsWindow *> out;
    out.reserve((haveArchive_ ? 1 : 0) + coarse_.size() + fine_.size());
    if (haveArchive_)
        out.push_back(&archive_);
    for (const TsWindow &w : coarse_)
        out.push_back(&w);
    for (const TsWindow &w : fine_)
        out.push_back(&w);
    return out;
}

std::map<std::string, std::uint64_t>
TimeSeries::totalCounterDeltas() const
{
    std::map<std::string, std::uint64_t> totals;
    for (const TsWindow *w : windows())
        for (const auto &[name, delta] : w->counters)
            totals[name] += delta;
    if (haveOpen_)
        for (const auto &[name, delta] : open_.counters)
            totals[name] += delta;
    return totals;
}

} // namespace gpusc::obs::live
