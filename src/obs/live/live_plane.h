/**
 * @file
 * LivePlane: the assembled live telemetry plane — a TimeSeries fed
 * from a Telemetry context, an SloEngine evaluating each closed
 * window, and exposition through an HTTP endpoint and/or a JSONL
 * file sink.
 *
 * The plane is layered strictly *on top of* the existing Telemetry:
 * it only reads the MetricRegistry / AuditTrail at tick time and
 * writes back nothing but its own audit records (alert transitions,
 * Stage::LiveObs) and the `obs.alerts_active` gauge — none of which
 * enter the change funnel or influence inference. A pipeline run
 * with the plane enabled therefore produces byte-identical inferred
 * output to one without it (enforced by tests at 1 and 4 threads).
 *
 * Ticking is driven by the host (IngestService::pump, the trial
 * listener) with *sim* timestamps; inside a window a tick is an O(1)
 * boundary check, and crossing a boundary does the windowing, SLO
 * evaluation, snapshot render and publish.
 */

#ifndef GPUSC_OBS_LIVE_LIVE_PLANE_H
#define GPUSC_OBS_LIVE_LIVE_PLANE_H

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/live/exposition.h"
#include "obs/live/http_endpoint.h"
#include "obs/live/slo.h"
#include "obs/live/time_series.h"

namespace gpusc::obs {
class Telemetry;
} // namespace gpusc::obs

namespace gpusc::obs::live {

/** Plane wiring: window geometry, rules, sinks. */
struct LiveConfig
{
    TimeSeries::Params series;
    std::vector<SloRule> rules;
    /** JSONL window-record sink; empty disables the file sink. */
    std::string jsonlPath;
    /** HTTP port: <0 disables the endpoint, 0 picks ephemeral. */
    int httpPort = -1;
};

class LivePlane
{
  public:
    /**
     * @p telemetry is the service-level context the plane observes
     * and writes alert transitions into; it must outlive the plane.
     */
    LivePlane(LiveConfig config, Telemetry *telemetry);
    ~LivePlane();

    LivePlane(const LivePlane &) = delete;
    LivePlane &operator=(const LivePlane &) = delete;

    /**
     * Cheap per-batch tick: no-op while @p now stays inside the
     * current window, full observe/evaluate/publish when a fine
     * boundary was crossed (or on the very first call).
     */
    void maybeTick(SimTime now);

    /** Force an observe at @p now regardless of boundaries. */
    void tick(SimTime now);

    /** Final flush: close the open window, publish, close the sink.
     *  Idempotent; also runs from the destructor. */
    void finish(SimTime now);

    /**
     * Cumulative decision counts to window (default: the telemetry
     * context's own audit trail). The ingest service installs a
     * provider that also folds in per-session trails.
     */
    void setDecisionProvider(std::function<DecisionCounts()> fn)
    {
        decisionProvider_ = std::move(fn);
    }

    /** Session health views for /sessions (default: none). */
    void
    setSessionHealthProvider(
        std::function<std::vector<SessionHealth>()> fn)
    {
        sessionHealthProvider_ = std::move(fn);
    }

    const TimeSeries &series() const { return series_; }
    const SloEngine &slo() const { return slo_; }
    SloEngine &slo() { return slo_; }

    /** The endpoint, when one was started (else null). */
    const HttpEndpoint *endpoint() const
    {
        return endpointRunning_ ? &endpoint_ : nullptr;
    }

    /** Windows written to the JSONL sink so far. */
    std::uint64_t windowsEmitted() const { return windowsEmitted_; }

    /**
     * Final Prometheus text (also written to `<jsonlPath>.prom` by
     * finish() when the file sink is active — the CI scrape-less
     * validation path).
     */
    std::string prometheusText() const;

  private:
    void observeNow(SimTime now);
    void onWindowClosed(const TsWindow &w);
    void publishSnapshot();

    LiveConfig config_;
    Telemetry *telemetry_;
    TimeSeries series_;
    SloEngine slo_;
    HttpEndpoint endpoint_;
    bool endpointRunning_ = false;
    std::FILE *jsonl_ = nullptr;
    bool finished_ = false;
    bool ticked_ = false;
    SimTime nextBoundary_;
    std::uint64_t windowsEmitted_ = 0;
    std::function<DecisionCounts()> decisionProvider_;
    std::function<std::vector<SessionHealth>()> sessionHealthProvider_;
};

} // namespace gpusc::obs::live

#endif // GPUSC_OBS_LIVE_LIVE_PLANE_H
