#include "obs/live/http_endpoint.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/logging.h"

namespace gpusc::obs::live {

HttpEndpoint::~HttpEndpoint()
{
    stop();
}

bool
HttpEndpoint::start(std::uint16_t port)
{
    if (running_.load())
        return true;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        warn("HttpEndpoint: socket() failed: %s",
             std::strerror(errno));
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        warn("HttpEndpoint: bind(127.0.0.1:%u) failed: %s",
             unsigned(port), std::strerror(errno));
        ::close(fd);
        return false;
    }
    if (::listen(fd, 16) != 0) {
        warn("HttpEndpoint: listen() failed: %s",
             std::strerror(errno));
        ::close(fd);
        return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        port_ = ntohs(bound.sin_port);
    else
        port_ = port;
    listenFd_ = fd;
    running_.store(true);
    thread_ = std::thread([this] { serveLoop(); });
    return true;
}

void
HttpEndpoint::stop()
{
    if (!running_.exchange(false)) {
        if (thread_.joinable())
            thread_.join();
        return;
    }
    // shutdown() unblocks the accept() so the serve thread notices
    // running_ turned false; close() alone can leave it parked.
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
    listenFd_ = -1;
    if (thread_.joinable())
        thread_.join();
}

void
HttpEndpoint::publish(std::shared_ptr<const EndpointSnapshot> snap)
{
    const std::lock_guard<std::mutex> lock(snapMutex_);
    snapshot_ = std::move(snap);
}

std::shared_ptr<const EndpointSnapshot>
HttpEndpoint::currentSnapshot()
{
    const std::lock_guard<std::mutex> lock(snapMutex_);
    return snapshot_;
}

void
HttpEndpoint::serveLoop()
{
    while (running_.load()) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (!running_.load())
                break;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            break;
        }
        handleConnection(fd);
        ::close(fd);
    }
}

namespace {

void
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + sent, data.size() - sent, 0);
        if (n <= 0)
            return;
        sent += std::size_t(n);
    }
}

std::string
makeResponse(const char *status, const char *contentType,
             const std::string &body)
{
    std::string out = "HTTP/1.0 ";
    out += status;
    out += "\r\nContent-Type: ";
    out += contentType;
    out += "\r\nContent-Length: " + std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

} // namespace

void
HttpEndpoint::handleConnection(int fd)
{
    char buf[2048];
    std::string request;
    // Read until the header terminator (or the client stops); one
    // request per connection, HTTP/1.0 style.
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < 16384) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        request.append(buf, std::size_t(n));
    }
    const std::size_t sp1 = request.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : request.find(' ', sp1 + 1);
    std::string path;
    if (sp2 != std::string::npos)
        path = request.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos)
        path.resize(query);

    requestsServed_.fetch_add(1);
    const std::shared_ptr<const EndpointSnapshot> snap =
        currentSnapshot();
    if (path == "/healthz") {
        sendAll(fd, makeResponse("200 OK", "text/plain", "ok\n"));
        return;
    }
    if (snap == nullptr) {
        sendAll(fd, makeResponse("503 Service Unavailable",
                                 "text/plain",
                                 "no snapshot published yet\n"));
        return;
    }
    if (path == "/metrics") {
        sendAll(fd, makeResponse("200 OK",
                                 "text/plain; version=0.0.4",
                                 snap->metricsText));
    } else if (path == "/metrics.json") {
        sendAll(fd, makeResponse("200 OK", "application/json",
                                 snap->metricsJson));
    } else if (path == "/sessions") {
        sendAll(fd, makeResponse("200 OK", "application/json",
                                 snap->sessionsJson));
    } else if (path == "/alerts") {
        sendAll(fd, makeResponse("200 OK", "application/json",
                                 snap->alertsJson));
    } else {
        sendAll(fd, makeResponse("404 Not Found", "text/plain",
                                 "unknown route\n"));
    }
}

} // namespace gpusc::obs::live
