/**
 * @file
 * Exposition layer of the live telemetry plane: renders the latest
 * cumulative state as Prometheus-style text, closed windows as JSONL
 * records, and per-session health views as the /sessions body.
 *
 * Rendering always happens over immutable snapshots pulled at a
 * window boundary — the HTTP endpoint and the file sink consume the
 * same pre-rendered strings, so serving a scrape never touches
 * pipeline state and the file-sink CI mode exercises the exact bytes
 * a scraper would see.
 */

#ifndef GPUSC_OBS_LIVE_EXPOSITION_H
#define GPUSC_OBS_LIVE_EXPOSITION_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/live/slo.h"
#include "obs/live/time_series.h"

namespace gpusc::obs::live {

/**
 * One streaming session's health, as exposed through /sessions and
 * obs_top. Lives in obs::live (not src/stream/) so the stream layer
 * depends on the plane's vocabulary rather than the other way round.
 */
struct SessionHealth
{
    std::uint64_t id = 0;
    std::size_t ringDepth = 0;
    std::size_t ringCapacity = 0;
    std::uint64_t readingsDrained = 0;
    std::uint64_t shedOldest = 0;
    std::uint64_t shedNewest = 0;
    std::uint64_t templateUpdates = 0;
    std::uint64_t acceptedKeys = 0;
    std::size_t memoryBytes = 0;
    SimTime lastTouch;

    std::string toJson() const;
};

/** Renders plane state into scrape-ready text formats. */
class Exposition
{
  public:
    /**
     * Prometheus text format over the latest cumulative counters,
     * gauges and alert states: metric names are sanitized
     * (dots/hyphens to underscores) and prefixed `gpusc_`, counters
     * get a `_total` suffix, and each family carries a `# TYPE`
     * comment. @p series supplies cumulative counters and gauges;
     * @p slo (nullable) contributes `gpusc_obs_alert_firing{rule=..}`.
     */
    static std::string prometheusText(const TimeSeries &series,
                                      const SloEngine *slo);

    /** One JSONL line (newline-terminated) for a closed window. */
    static std::string windowJsonl(const TsWindow &w,
                                   const MetricRegistry *unitSource,
                                   std::size_t alertsActive);

    /** The /sessions body: a JSON array of health views. */
    static std::string
    sessionsJson(const std::vector<SessionHealth> &sessions);

    /** Sanitize a dotted metric name into a Prometheus identifier. */
    static std::string promName(const std::string &name);
};

} // namespace gpusc::obs::live

#endif // GPUSC_OBS_LIVE_EXPOSITION_H
