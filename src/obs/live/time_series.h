/**
 * @file
 * Windowed time-series aggregation over a MetricRegistry / AuditTrail
 * — the storage layer of the live telemetry plane.
 *
 * A TimeSeries slices the run into fixed-width windows keyed on
 * *sim-time* (never the host clock — lint D1 applies here exactly as
 * it does to the pipeline): each closed window holds the counter
 * *deltas* that accrued inside it, the *last* value of every gauge,
 * and mergeable LogHistogram deltas. Fine windows (default 100 ms)
 * roll up losslessly into coarse windows (fine x coarsePerFine,
 * default 10 s) once the fine ring is full, and coarse windows roll
 * into a single unbounded archive window once their ring is full —
 * so a daemon that runs for hours keeps bounded memory while *no
 * delta is ever dropped*: the sum of every retained window (archive +
 * coarse + fine + open) equals the cumulative snapshot, exactly, for
 * every tracked counter. That reconciliation identity is what
 * stream_cli's self-check and the live-obs CI job gate.
 *
 * Decision counts from an AuditTrail are windowed through the same
 * mechanism as synthetic `funnel.<decision>` counters (plus
 * `funnel.changes_in`), so SLO rules can watch the change funnel
 * per-window without the trail growing a second bookkeeping path.
 */

#ifndef GPUSC_OBS_LIVE_TIME_SERIES_H
#define GPUSC_OBS_LIVE_TIME_SERIES_H

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "obs/audit.h"
#include "obs/log_histogram.h"
#include "obs/metric_registry.h"
#include "util/sim_time.h"

namespace gpusc::obs::live {

/** Cumulative decision counts observed at one tick (a funnel
 *  snapshot; aggregators sum several AuditTrails into one). */
struct DecisionCounts
{
    std::array<std::uint64_t, kNumDecisions> counts{};
    std::uint64_t changesIn = 0;

    void
    add(const AuditTrail &audit)
    {
        for (std::size_t d = 0; d < kNumDecisions; ++d)
            counts[d] += audit.count(Decision(d));
        changesIn += audit.changesAudited();
    }
};

/** Resolution level a window was aggregated at. */
enum class WindowLevel : std::uint8_t
{
    Fine,    ///< one fine-width slice
    Coarse,  ///< coarsePerFine fine slices merged
    Archive, ///< everything older than the coarse ring
    Open,    ///< the in-progress slice (not yet closed)
};

const char *windowLevelName(WindowLevel level);

/** One closed (or in-progress) aggregation window. */
struct TsWindow
{
    SimTime start;
    SimTime width; ///< archive windows: start..start+width covered
    WindowLevel level = WindowLevel::Fine;
    /** Counter growth inside the window, by metric name. */
    std::map<std::string, std::uint64_t> counters;
    /** Last-set gauge values as of the window's end. */
    std::map<std::string, double> gauges;
    /** Histogram growth inside the window (mergeable deltas). */
    std::map<std::string, LogHistogram> histograms;

    /** Fold @p other (the newer window) into this one: counters and
     *  histograms add, gauges take the newer value, the covered
     *  interval extends. The roll-up primitive. */
    void absorb(const TsWindow &other);

    /** Delta of @p name in this window (0 when absent). */
    std::uint64_t counterDelta(const std::string &name) const;

    /** Window end (start + width). */
    SimTime end() const { return start + width; }

    /** One JSONL record (the file-sink / /windows format). */
    std::string toJson(const MetricRegistry *unitSource) const;
};

/** Ring-of-windows aggregation with lossless multi-level roll-up. */
class TimeSeries
{
  public:
    struct Params
    {
        /** Fine window width, sim time. */
        SimTime fineWidth = SimTime::fromMs(100);
        /** Fine windows retained before rolling up. */
        std::size_t fineCapacity = 128;
        /** Fine windows per coarse window (coarse width multiple). */
        std::size_t coarsePerFine = 100;
        /** Coarse windows retained before archiving. */
        std::size_t coarseCapacity = 64;
    };

    TimeSeries();
    explicit TimeSeries(Params params);

    /**
     * Observe cumulative state at sim time @p now: growth since the
     * previous observe is attributed to the window containing @p now,
     * and every fine boundary crossed since the last tick closes the
     * window it ends (notifying the window listener). @p decisions,
     * when non-null, contributes the synthetic funnel counters.
     * Ticks must be monotone in @p now.
     */
    void observe(SimTime now, const MetricRegistry &reg,
                 const DecisionCounts *decisions = nullptr);

    /** Close the in-progress window (end of run / final flush). */
    void finish();

    /** Called with each window the moment it closes (always at Fine
     *  level — roll-ups reshape retention, not the event stream). */
    void setWindowListener(std::function<void(const TsWindow &)> fn)
    {
        windowListener_ = std::move(fn);
    }

    /** Retained windows oldest-first: archive, coarse, fine. */
    std::vector<const TsWindow *> windows() const;

    /** The in-progress window (null before the first observe). */
    const TsWindow *openWindow() const
    {
        return haveOpen_ ? &open_ : nullptr;
    }

    /** Windows closed over the series' lifetime (pre-roll-up). */
    std::uint64_t windowsClosed() const { return closed_; }
    std::uint64_t rollupsFine() const { return rollupsFine_; }
    std::uint64_t rollupsCoarse() const { return rollupsCoarse_; }

    /**
     * Sum of every retained window's deltas plus the open window —
     * the reconciliation total. Equals the cumulative value of every
     * tracked counter at the last observe, exactly; stream_cli and
     * the live-obs CI job assert this against the end-of-run
     * snapshot.
     */
    std::map<std::string, std::uint64_t> totalCounterDeltas() const;

    /** Latest cumulative counter values as of the last observe (the
     *  Prometheus exposition source). */
    const std::map<std::string, std::uint64_t> &cumulative() const
    {
        return lastCounters_;
    }
    /** Latest gauge values as of the last observe. */
    const std::map<std::string, double> &latestGauges() const
    {
        return lastGauges_;
    }

    const Params &params() const { return params_; }
    SimTime coarseWidth() const
    {
        return params_.fineWidth *
               std::int64_t(params_.coarsePerFine);
    }

  private:
    void closeOpenWindow();
    void rollUp();

    Params params_;
    TsWindow open_;
    bool haveOpen_ = false;
    std::deque<TsWindow> fine_;
    std::deque<TsWindow> coarse_;
    TsWindow archive_;
    bool haveArchive_ = false;
    std::uint64_t closed_ = 0;
    std::uint64_t rollupsFine_ = 0;
    std::uint64_t rollupsCoarse_ = 0;
    /** Cumulative values at the previous observe (delta baselines). */
    std::map<std::string, std::uint64_t> lastCounters_;
    std::map<std::string, double> lastGauges_;
    std::map<std::string, LogHistogram> lastHistograms_;
    /** Lazily-built "funnel.<decision>" names (+ changes_in last). */
    std::vector<std::string> funnelNames_;
    std::function<void(const TsWindow &)> windowListener_;
};

} // namespace gpusc::obs::live

#endif // GPUSC_OBS_LIVE_TIME_SERIES_H
