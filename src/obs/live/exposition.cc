#include "obs/live/exposition.h"

#include <cstdio>

namespace gpusc::obs::live {

std::string
SessionHealth::toJson() const
{
    std::string out = "{\"id\": ";
    appendJsonNumber(out, double(id));
    out += ", \"ring_depth\": ";
    appendJsonNumber(out, double(ringDepth));
    out += ", \"ring_capacity\": ";
    appendJsonNumber(out, double(ringCapacity));
    out += ", \"readings_drained\": ";
    appendJsonNumber(out, double(readingsDrained));
    out += ", \"shed_oldest\": ";
    appendJsonNumber(out, double(shedOldest));
    out += ", \"shed_newest\": ";
    appendJsonNumber(out, double(shedNewest));
    out += ", \"template_updates\": ";
    appendJsonNumber(out, double(templateUpdates));
    out += ", \"accepted_keys\": ";
    appendJsonNumber(out, double(acceptedKeys));
    out += ", \"memory_bytes\": ";
    appendJsonNumber(out, double(memoryBytes));
    out += ", \"last_touch_ms\": ";
    appendJsonNumber(out, lastTouch.millis());
    out += '}';
    return out;
}

std::string
Exposition::promName(const std::string &name)
{
    std::string out = "gpusc_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

std::string
Exposition::prometheusText(const TimeSeries &series,
                           const SloEngine *slo)
{
    std::string out;
    char buf[64];
    for (const auto &[name, value] : series.cumulative()) {
        const std::string prom = promName(name) + "_total";
        out += "# TYPE " + prom + " counter\n";
        std::snprintf(buf, sizeof(buf), " %llu\n",
                      (unsigned long long)value);
        out += prom;
        out += buf;
    }
    for (const auto &[name, value] : series.latestGauges()) {
        const std::string prom = promName(name);
        out += "# TYPE " + prom + " gauge\n";
        std::snprintf(buf, sizeof(buf), " %.9g\n", value);
        out += prom;
        out += buf;
    }
    if (slo != nullptr) {
        out += "# TYPE gpusc_obs_alert_firing gauge\n";
        for (const AlertState &state : slo->alerts()) {
            std::string label;
            appendJsonString(label, state.rule.name);
            out += "gpusc_obs_alert_firing{rule=" + label + "} ";
            out += state.firing ? '1' : '0';
            out += '\n';
        }
        out += "# TYPE gpusc_obs_alerts_active gauge\n";
        std::snprintf(buf, sizeof(buf),
                      "gpusc_obs_alerts_active %zu\n",
                      slo->activeAlerts());
        out += buf;
    }
    return out;
}

std::string
Exposition::windowJsonl(const TsWindow &w,
                        const MetricRegistry *unitSource,
                        std::size_t alertsActive)
{
    std::string out = w.toJson(unitSource);
    // Splice the alert count into the window record so a JSONL tail
    // (obs_top --file) can plot alert activity without /alerts.
    out.pop_back(); // trailing '}'
    out += ", \"alerts_active\": ";
    appendJsonNumber(out, double(alertsActive));
    out += "}\n";
    return out;
}

std::string
Exposition::sessionsJson(const std::vector<SessionHealth> &sessions)
{
    std::string out = "{\"sessions\": [";
    bool first = true;
    for (const SessionHealth &s : sessions) {
        if (!first)
            out += ", ";
        first = false;
        out += s.toJson();
    }
    out += "]}";
    return out;
}

} // namespace gpusc::obs::live
