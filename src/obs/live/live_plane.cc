#include "obs/live/live_plane.h"

#include "obs/telemetry.h"
#include "util/logging.h"

namespace gpusc::obs::live {

LivePlane::LivePlane(LiveConfig config, Telemetry *telemetry)
    : config_(std::move(config)), telemetry_(telemetry),
      series_(config_.series), slo_(config_.rules)
{
    if (telemetry_ == nullptr)
        panic("LivePlane: telemetry context is required");
    series_.setWindowListener(
        [this](const TsWindow &w) { onWindowClosed(w); });
    if (!config_.jsonlPath.empty()) {
        jsonl_ = std::fopen(config_.jsonlPath.c_str(), "w");
        if (jsonl_ == nullptr)
            warn("LivePlane: cannot open JSONL sink '%s'",
                 config_.jsonlPath.c_str());
    }
    if (config_.httpPort >= 0)
        endpointRunning_ =
            endpoint_.start(std::uint16_t(config_.httpPort));
}

LivePlane::~LivePlane()
{
    if (!finished_)
        finish(ticked_ ? nextBoundary_ : SimTime());
}

void
LivePlane::maybeTick(SimTime now)
{
    if (finished_)
        return;
    if (ticked_ && now < nextBoundary_)
        return;
    observeNow(now);
}

void
LivePlane::tick(SimTime now)
{
    if (finished_)
        return;
    observeNow(now);
}

void
LivePlane::observeNow(SimTime now)
{
    DecisionCounts decisions;
    if (decisionProvider_)
        decisions = decisionProvider_();
    else
        decisions.add(telemetry_->audit);
    const std::uint64_t closedBefore = series_.windowsClosed();
    series_.observe(now, telemetry_->metrics, &decisions);
    ticked_ = true;
    const TsWindow *open = series_.openWindow();
    nextBoundary_ = open ? open->end() : now;
    if (series_.windowsClosed() != closedBefore)
        publishSnapshot();
}

void
LivePlane::onWindowClosed(const TsWindow &w)
{
    slo_.evaluate(w, telemetry_);
    if (jsonl_ != nullptr) {
        const std::string line = Exposition::windowJsonl(
            w, &telemetry_->metrics, slo_.activeAlerts());
        std::fwrite(line.data(), 1, line.size(), jsonl_);
    }
    ++windowsEmitted_;
}

void
LivePlane::publishSnapshot()
{
    if (!endpointRunning_)
        return;
    auto snap = std::make_shared<EndpointSnapshot>();
    snap->metricsText = Exposition::prometheusText(series_, &slo_);
    snap->metricsJson = telemetry_->metrics.toJson();
    snap->sessionsJson = Exposition::sessionsJson(
        sessionHealthProvider_ ? sessionHealthProvider_()
                               : std::vector<SessionHealth>{});
    snap->alertsJson = slo_.toJson();
    endpoint_.publish(std::move(snap));
}

void
LivePlane::finish(SimTime now)
{
    if (finished_)
        return;
    if (ticked_) {
        observeNow(now);
        series_.finish();
    }
    publishSnapshot();
    if (jsonl_ != nullptr) {
        std::fflush(jsonl_);
        std::fclose(jsonl_);
        jsonl_ = nullptr;
        Telemetry::writeFile(config_.jsonlPath + ".prom",
                             prometheusText());
    }
    finished_ = true;
}

std::string
LivePlane::prometheusText() const
{
    return Exposition::prometheusText(series_, &slo_);
}

} // namespace gpusc::obs::live
