/**
 * @file
 * Log-bucketed value histogram for latency-style distributions.
 *
 * An HdrHistogram-style layout: values below 2^kSubBits land in their
 * own unit-wide bucket, larger values share an octave split into
 * 2^kSubBits sub-buckets, so relative resolution is a constant ~12 %
 * across the whole 64-bit range while the bucket table stays a few
 * hundred entries. Recording is two shifts and an increment — cheap
 * enough for per-event instrumentation on the replay hot path —
 * and quantile queries (p50/p90/p99/...) walk the cumulative counts.
 *
 * Histograms merge losslessly (bucket-wise addition), which is how
 * MetricRegistry snapshots fold per-stage latency distributions into
 * pipeline-wide ones.
 */

#ifndef GPUSC_OBS_LOG_HISTOGRAM_H
#define GPUSC_OBS_LOG_HISTOGRAM_H

#include <array>
#include <cstdint>
#include <string>

namespace gpusc::obs {

/** Log-bucketed histogram over unsigned 64-bit values. */
class LogHistogram
{
  public:
    /** Sub-bucket resolution: 2^kSubBits sub-buckets per octave. */
    static constexpr unsigned kSubBits = 3;
    static constexpr unsigned kSubBuckets = 1u << kSubBits;
    /** Unit-wide buckets for 0..kSubBuckets-1, then one group of
     *  kSubBuckets per octave up to 2^64. */
    static constexpr std::size_t kBuckets =
        kSubBuckets + (64 - kSubBits) * kSubBuckets;

    /** Record one value. */
    void add(std::uint64_t v);

    /** Record @p n occurrences of @p v (merge helpers, tests). */
    void addCount(std::uint64_t v, std::uint64_t n);

    /** Fold @p other into this histogram (bucket-wise addition). */
    void merge(const LogHistogram &other);

    /**
     * The growth of this histogram since the @p prev snapshot, as a
     * histogram of its own (bucket-wise subtraction; @p prev must be
     * an earlier snapshot of the same histogram, i.e. no bucket may
     * shrink). The delta's min/max are re-derived from its non-empty
     * bucket bounds — a pure function of the delta buckets, so
     * merging consecutive deltas is bit-identical to taking one
     * delta over the combined interval (the live-plane window
     * roll-up invariant). Sums subtract in floating point and are
     * therefore near-, not bit-, lossless under re-association.
     */
    LogHistogram deltaSince(const LogHistogram &prev) const;

    std::uint64_t count() const { return count_; }
    bool empty() const { return count_ == 0; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
    /** Exact extrema (tracked beside the buckets). */
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }

    /**
     * Value at quantile @p q in [0, 1], estimated as the midpoint of
     * the bucket holding the q-th sample (clamped to the exact
     * min/max). Empty histograms report 0.
     */
    std::uint64_t quantile(double q) const;
    std::uint64_t p50() const { return quantile(0.50); }
    std::uint64_t p90() const { return quantile(0.90); }
    std::uint64_t p99() const { return quantile(0.99); }

    /** Bucket accessors (exporters, tests). */
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    /** Lowest value mapping to bucket @p i. */
    static std::uint64_t bucketLow(std::size_t i);
    /** One past the highest value mapping to bucket @p i. */
    static std::uint64_t bucketHigh(std::size_t i);
    /** Bucket index @p v maps to. */
    static std::size_t bucketIndex(std::uint64_t v);

    /** ASCII rendering of the non-empty buckets (CLI output). */
    std::string render(std::size_t width = 40) const;

  private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace gpusc::obs

#endif // GPUSC_OBS_LOG_HISTOGRAM_H
