/**
 * @file
 * Stage-timing spans: sim-time-stamped, host-duration-measured
 * events held in a fixed-capacity in-memory ring and exportable as
 * Chrome trace-event JSON (load the file in Perfetto / about:tracing).
 *
 * Two clocks meet in a span deliberately: the *timestamp* is the
 * simulator's clock (so spans line up with the eavesdropping session
 * being simulated), while the *duration* is host wall time (so span
 * widths compare the real compute cost of each stage). The exported
 * `ts` therefore orders events on the sim timeline and `dur` is only
 * meaningful relative to other spans, not to the timeline itself.
 */

#ifndef GPUSC_OBS_SPAN_H
#define GPUSC_OBS_SPAN_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/sim_time.h"

namespace gpusc::obs {

/**
 * Monotonic host time in nanoseconds.
 *
 * The single sanctioned wall-clock read in the pipeline: span and
 * latency *durations* come from here, while every *timestamp* is
 * sim time. Everything outside span.cc (the gpusc_lint D1 allowlist)
 * must call this instead of touching std::chrono directly, so replay
 * determinism can be audited at one definition.
 */
std::int64_t hostNowNs();

/** One completed stage execution. */
struct Span
{
    /** Stage name (owned by the Tracer's stage table). */
    const char *name = nullptr;
    /** Perfetto lane: one tid per distinct stage. */
    int tid = 0;
    /** When the stage ran, in simulated time. */
    SimTime at;
    /** How long the stage took on the host, nanoseconds. */
    std::int64_t hostNs = 0;
    /** Global emission order (survives ring wraparound). */
    std::uint64_t seq = 0;
};

/** Fixed-capacity span ring with Chrome trace-event export. */
class Tracer
{
  public:
    explicit Tracer(std::size_t capacity = 65536);

    /**
     * Intern @p name and return its lane id. Resolved once per stage
     * at wiring time (StageTimer); the returned id indexes the
     * stage-name table for the life of the tracer.
     */
    int stageId(const std::string &name);

    /** Stable name pointer for a lane id from stageId(). */
    const char *stageName(int tid) const
    {
        return stages_[std::size_t(tid)].c_str();
    }

    /** Record one completed span (overwrites the oldest when full). */
    void record(int tid, SimTime at, std::int64_t hostNs);

    /**
     * Fold @p other into this tracer: the other's stage names are
     * interned here (ids remapped) and its retained spans appended,
     * oldest first, with fresh sequence numbers. Used by the
     * parallel evaluation engine to collect per-shard tracers in
     * shard-index order.
     */
    void merge(const Tracer &other);

    std::size_t capacity() const { return capacity_; }
    /** Spans currently retained (<= capacity). */
    std::size_t size() const;
    /** Spans recorded over the tracer's lifetime. */
    std::uint64_t recorded() const { return seq_; }
    /** Spans lost to ring wraparound. */
    std::uint64_t dropped() const;

    /** Retained spans, oldest first. */
    std::vector<Span> snapshot() const;

    /**
     * Chrome trace-event JSON: `{"traceEvents": [...]}` of "X"
     * (complete) events, ts/dur in microseconds, plus metadata
     * records naming each stage lane.
     */
    std::string chromeTraceJson() const;

  private:
    std::size_t capacity_;
    std::deque<std::string> stages_;
    std::vector<Span> ring_;
    std::uint64_t seq_ = 0;
};

} // namespace gpusc::obs

#endif // GPUSC_OBS_SPAN_H
