#include "obs/metric_registry.h"

#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace gpusc::obs {

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendJsonNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    char buf[40];
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    else
        std::snprintf(buf, sizeof(buf), "%.9g", v);
    out += buf;
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

LogHistogram &
MetricRegistry::histogram(const std::string &name,
                          const std::string &unit)
{
    auto &slot = histograms_[name];
    if (!slot) {
        slot = std::make_unique<LogHistogram>();
        units_[name] = unit;
    }
    return *slot;
}

const std::string &
MetricRegistry::histogramUnit(const std::string &name) const
{
    static const std::string empty;
    const auto it = units_.find(name);
    return it == units_.end() ? empty : it->second;
}

std::optional<MetricRegistry::UnitMismatch>
MetricRegistry::checkMergeUnits(const MetricRegistry &other) const
{
    for (const auto &[name, unit] : other.units_) {
        const auto it = units_.find(name);
        if (it != units_.end() && it->second != unit)
            return UnitMismatch{name, it->second, unit};
    }
    return std::nullopt;
}

void
MetricRegistry::merge(const MetricRegistry &other)
{
    if (const auto bad = checkMergeUnits(other))
        panic("MetricRegistry::merge: unit mismatch for '%s': "
              "have '%s', merging '%s'",
              bad->metric.c_str(), bad->haveUnit.c_str(),
              bad->otherUnit.c_str());
    for (const auto &[name, c] : other.counters_)
        counter(name).inc(c->value());
    for (const auto &[name, g] : other.gauges_)
        gauge(name).set(g->value());
    for (const auto &[name, h] : other.histograms_)
        histogram(name, other.histogramUnit(name)).merge(*h);
}

LogHistogram
MetricRegistry::mergedLatency() const
{
    LogHistogram all;
    for (const auto &[name, h] : histograms_)
        if (name.rfind("latency.", 0) == 0)
            all.merge(*h);
    return all;
}

void
appendHistogramJson(std::string &out, const LogHistogram &h,
                    const std::string &unit)
{
    out += "{\"count\": ";
    appendJsonNumber(out, double(h.count()));
    out += ", \"sum\": ";
    appendJsonNumber(out, h.sum());
    out += ", \"mean\": ";
    appendJsonNumber(out, h.mean());
    out += ", \"min\": ";
    appendJsonNumber(out, double(h.min()));
    out += ", \"p50\": ";
    appendJsonNumber(out, double(h.p50()));
    out += ", \"p90\": ";
    appendJsonNumber(out, double(h.p90()));
    out += ", \"p99\": ";
    appendJsonNumber(out, double(h.p99()));
    out += ", \"max\": ";
    appendJsonNumber(out, double(h.max()));
    out += ", \"unit\": ";
    appendJsonString(out, unit);
    out += '}';
}

std::string
MetricRegistry::toJson() const
{
    std::string out = "{\"counters\": {";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        if (!first)
            out += ", ";
        first = false;
        appendJsonString(out, name);
        out += ": ";
        appendJsonNumber(out, double(c->value()));
    }
    out += "}, \"gauges\": {";
    first = true;
    for (const auto &[name, g] : gauges_) {
        if (!first)
            out += ", ";
        first = false;
        appendJsonString(out, name);
        out += ": ";
        appendJsonNumber(out, g->value());
    }
    out += "}, \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms_) {
        if (!first)
            out += ", ";
        first = false;
        appendJsonString(out, name);
        out += ": ";
        appendHistogramJson(out, *h, histogramUnit(name));
    }
    const LogHistogram all = mergedLatency();
    if (!all.empty()) {
        if (!first)
            out += ", ";
        appendJsonString(out, "latency.all_stages");
        out += ": ";
        appendHistogramJson(out, all, "ns");
    }
    out += "}}";
    return out;
}

} // namespace gpusc::obs
