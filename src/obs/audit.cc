#include "obs/audit.h"

#include <algorithm>
#include <cstdio>

#include "obs/metric_registry.h"

namespace gpusc::obs {

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::Sampler:
        return "sampler";
      case Stage::ChangeDetector:
        return "change-detector";
      case Stage::Inference:
        return "inference";
      case Stage::Eavesdropper:
        return "eavesdropper";
      case Stage::Kgsl:
        return "kgsl";
      case Stage::Ingest:
        return "ingest";
      case Stage::LiveObs:
        return "live-obs";
    }
    return "?";
}

const char *
decisionName(Decision d)
{
    switch (d) {
      case Decision::AcceptedKey:
        return "accepted-key";
      case Decision::SplitRepaired:
        return "split-repaired";
      case Decision::DuplicationDrop:
        return "duplication-drop";
      case Decision::NoiseRejected:
        return "noise-rejected";
      case Decision::SuppressedAppSwitch:
        return "suppressed-app-switch";
      case Decision::DiscontinuityDropped:
        return "discontinuity-dropped";
      case Decision::SamplerSuspended:
        return "sampler-suspended";
      case Decision::SamplerRecovered:
        return "sampler-recovered";
      case Decision::PolicyDenied:
        return "policy-denied";
      case Decision::ShedOldestDrop:
        return "shed-oldest";
      case Decision::ShedNewestDrop:
        return "shed-newest";
      case Decision::SessionEvicted:
        return "session-evicted";
      case Decision::TemplateUpdated:
        return "template-updated";
      case Decision::ThrottledRead:
        return "throttled-read";
      case Decision::StaleServed:
        return "stale-served";
      case Decision::AlertFired:
        return "alert-fired";
      case Decision::AlertResolved:
        return "alert-resolved";
    }
    return "?";
}

AuditTrail::AuditTrail(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity))
{
}

void
AuditTrail::record(SimTime time, Stage stage, Decision decision,
                   const std::string &label, double distance)
{
    ++counts_[std::size_t(decision)];
    AuditRecord r;
    r.seq = seq_++;
    r.time = time;
    r.stage = stage;
    r.decision = decision;
    r.label = label;
    r.distance = distance;
    if (ring_.size() < capacity_) {
        // Reserve the whole ring on first use: growth reallocations
        // mid-run would show up as latency spikes in the very spans
        // this subsystem measures.
        if (ring_.capacity() < capacity_)
            ring_.reserve(capacity_);
        ring_.push_back(std::move(r));
    } else {
        ring_[std::size_t(r.seq % capacity_)] = std::move(r);
    }
}

void
AuditTrail::merge(const AuditTrail &other)
{
    for (const AuditRecord &r : other.snapshot()) {
        // Re-record so ring windowing and renumbering follow the
        // exact single-trail semantics; subtract the count the
        // re-record adds, then fold in the other's full counts once.
        record(r.time, r.stage, r.decision, r.label, r.distance);
        --counts_[std::size_t(r.decision)];
    }
    // Records the other trail already evicted still count towards
    // recorded(), mirroring the counts: only the ring is windowed.
    seq_ += other.dropped();
    for (std::size_t d = 0; d < kNumDecisions; ++d)
        counts_[d] += other.counts_[d];
}

std::uint64_t
AuditTrail::changesAudited() const
{
    return count(Decision::AcceptedKey) +
           count(Decision::SplitRepaired) +
           count(Decision::DuplicationDrop) +
           count(Decision::NoiseRejected) +
           count(Decision::SuppressedAppSwitch);
}

std::uint64_t
AuditTrail::dropped() const
{
    return seq_ > ring_.size() ? seq_ - ring_.size() : 0;
}

std::vector<AuditRecord>
AuditTrail::snapshot() const
{
    std::vector<AuditRecord> out = ring_;
    std::sort(out.begin(), out.end(),
              [](const AuditRecord &a, const AuditRecord &b) {
                  return a.seq < b.seq;
              });
    return out;
}

std::string
AuditTrail::toJsonl() const
{
    std::string out;
    char buf[96];
    for (const AuditRecord &r : snapshot()) {
        std::snprintf(buf, sizeof(buf),
                      "{\"seq\": %llu, \"t_ms\": %.3f, \"stage\": ",
                      (unsigned long long)r.seq, r.time.millis());
        out += buf;
        appendJsonString(out, stageName(r.stage));
        out += ", \"decision\": ";
        appendJsonString(out, decisionName(r.decision));
        if (!r.label.empty()) {
            out += ", \"label\": ";
            appendJsonString(out, r.label);
        }
        // gpusc-lint: allow(F1): 0.0 is record()'s exact "no distance recorded" sentinel, not a computed value.
        if (r.distance != 0.0) {
            out += ", \"distance\": ";
            appendJsonNumber(out, r.distance);
        }
        out += "}\n";
    }
    return out;
}

std::string
AuditTrail::funnelJson() const
{
    std::string out = "{\"changes_in\": ";
    appendJsonNumber(out, double(changesAudited()));
    const struct
    {
        const char *key;
        Decision d;
    } rows[] = {
        {"accepted", Decision::AcceptedKey},
        {"split_repaired", Decision::SplitRepaired},
        {"duplication_dropped", Decision::DuplicationDrop},
        {"noise_rejected", Decision::NoiseRejected},
        {"suppressed_app_switch", Decision::SuppressedAppSwitch},
        {"discontinuity_dropped", Decision::DiscontinuityDropped},
        {"sampler_suspensions", Decision::SamplerSuspended},
        {"sampler_recoveries", Decision::SamplerRecovered},
        {"policy_denials", Decision::PolicyDenied},
        {"shed_oldest", Decision::ShedOldestDrop},
        {"shed_newest", Decision::ShedNewestDrop},
        {"sessions_evicted", Decision::SessionEvicted},
        {"template_updates", Decision::TemplateUpdated},
        {"reads_throttled", Decision::ThrottledRead},
        {"reads_stale_served", Decision::StaleServed},
        {"alerts_fired", Decision::AlertFired},
        {"alerts_resolved", Decision::AlertResolved},
    };
    for (const auto &row : rows) {
        out += ", ";
        appendJsonString(out, row.key);
        out += ": ";
        appendJsonNumber(out, double(count(row.d)));
    }
    out += '}';
    return out;
}

} // namespace gpusc::obs
