#include "obs/telemetry.h"

#include <cstdio>

#include "util/logging.h"

namespace gpusc::obs {

std::string
Telemetry::metricsJson() const
{
    // Compose the registry object with the funnel and span
    // accounting: strip the registry's closing brace and append.
    std::string out = metrics.toJson();
    out.pop_back();
    out += ", \"funnel\": ";
    out += audit.funnelJson();
    out += ", \"spans\": {\"recorded\": ";
    appendJsonNumber(out, double(tracer.recorded()));
    out += ", \"retained\": ";
    appendJsonNumber(out, double(tracer.size()));
    out += ", \"dropped\": ";
    appendJsonNumber(out, double(tracer.dropped()));
    out += "}, \"audit\": {\"recorded\": ";
    appendJsonNumber(out, double(audit.recorded()));
    out += ", \"dropped\": ";
    appendJsonNumber(out, double(audit.dropped()));
    out += "}}";
    return out;
}

bool
Telemetry::writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("Telemetry: cannot write '%s'", path.c_str());
        return false;
    }
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    if (std::fclose(f) != 0 || !ok) {
        warn("Telemetry: short write to '%s'", path.c_str());
        return false;
    }
    return true;
}

} // namespace gpusc::obs
