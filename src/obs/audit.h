/**
 * @file
 * Decision audit trail: a structured record of what the pipeline did
 * with every observed counter change (and the sampler/stream events
 * around them), replacing printf archaeology with a queryable funnel.
 *
 * Every change that reaches Algorithm 1 receives exactly one
 * change-level decision — accepted-as-key, split-repaired (accepted
 * by combining with the previous unmatched change), duplication-drop,
 * noise-rejected, or suppressed-app-switch — so the change funnel
 * partitions:
 *
 *   changes in == accepted + split-repaired + duplication
 *               + noise + suppressed
 *
 * Reading-level events (discontinuity-dropped re-baselines), sampler
 * lifecycle events (suspended / recovered), driver policy denials,
 * defense interventions (throttled reads, stale serves — the reads
 * they degrade never become changes, or become ordinary no-change
 * readings) and streaming-ingest events (backpressure sheds, session
 * evictions, template updates) are recorded in the same trail under
 * their own stages but do not enter the change funnel — sheds drop
 * *readings* before change detection, so the funnel identity over
 * changes is preserved exactly. Decision *counts* cover the whole run; the record ring
 * keeps the most recent `capacity` records for JSONL export.
 */

#ifndef GPUSC_OBS_AUDIT_H
#define GPUSC_OBS_AUDIT_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/sim_time.h"

namespace gpusc::obs {

/** Pipeline stage that made a decision. */
enum class Stage : std::uint8_t
{
    Sampler,        ///< attack::PcSampler
    ChangeDetector, ///< attack::ChangeDetector
    Inference,      ///< attack::OnlineInference (Algorithm 1)
    Eavesdropper,   ///< attack::Eavesdropper (post-inference)
    Kgsl,           ///< kgsl::KgslDevice (driver boundary)
    Ingest,         ///< stream::IngestService (streaming service)
    LiveObs,        ///< obs::live (SLO watchdogs, telemetry plane)
};

/** What happened to the observed event. */
enum class Decision : std::uint8_t
{
    AcceptedKey,          ///< change classified directly as a key
    SplitRepaired,        ///< change accepted after split combine
    DuplicationDrop,      ///< change inside T_min (popup re-render)
    NoiseRejected,        ///< change matched nothing (system noise)
    SuppressedAppSwitch,  ///< key inferred but inside a switch window
    DiscontinuityDropped, ///< reading dropped to re-baseline
    SamplerSuspended,     ///< tick chain parked on a hard fault
    SamplerRecovered,     ///< watchdog revived the tick chain
    PolicyDenied,         ///< kernel security policy refused a call
    ShedOldestDrop,       ///< ingest backpressure dropped the oldest
                          ///< queued reading to admit a new one
    ShedNewestDrop,       ///< ingest backpressure dropped the
                          ///< incoming reading (queue stayed intact)
    SessionEvicted,       ///< session manager reclaimed an LRU
                          ///< session to stay inside its budget
    TemplateUpdated,      ///< a high-confidence match was folded back
                          ///< into the per-key signature (adaptation)
    ThrottledRead,        ///< rate-limiting policy refused a counter
                          ///< read (over budget; ioctl got EAGAIN)
    StaleServed,          ///< rate-limiting policy served cached
                          ///< values instead of fresh hardware state
    AlertFired,           ///< an SLO watchdog crossed its fire
                          ///< hysteresis (obs::live::SloEngine)
    AlertResolved,        ///< a firing SLO watchdog recovered
};

inline constexpr std::size_t kNumDecisions = 17;

const char *stageName(Stage s);
const char *decisionName(Decision d);

/** One audited pipeline decision. */
struct AuditRecord
{
    /** Global decision order (survives ring eviction). */
    std::uint64_t seq = 0;
    SimTime time;
    Stage stage = Stage::Inference;
    Decision decision = Decision::NoiseRejected;
    /** Inferred key label, when the decision carries one. */
    std::string label;
    /** Classifier distance, when the decision carries one. */
    double distance = 0.0;
};

/** Whole-run decision counts plus a bounded ring of recent records. */
class AuditTrail
{
  public:
    explicit AuditTrail(std::size_t capacity = 262144);

    void record(SimTime time, Stage stage, Decision decision,
                const std::string &label = {}, double distance = 0.0);

    /**
     * Fold @p other into this trail: decision counts add, and the
     * other's retained records are appended (oldest first) with
     * fresh sequence numbers. Counts merge losslessly; record rings
     * keep the usual most-recent-`capacity` window. The parallel
     * evaluation engine merges per-shard trails in shard-index
     * order, so the merged trail is identical for any worker count.
     */
    void merge(const AuditTrail &other);

    /** Whole-run count of @p d decisions (not bounded by the ring). */
    std::uint64_t count(Decision d) const
    {
        return counts_[std::size_t(d)];
    }

    /** Changes that entered Algorithm 1 (sum of the funnel classes). */
    std::uint64_t changesAudited() const;

    std::uint64_t recorded() const { return seq_; }
    std::uint64_t dropped() const;

    /** Retained records, oldest first. */
    std::vector<AuditRecord> snapshot() const;

    /** One JSON object per line (the --audit-out format). */
    std::string toJsonl() const;

    /**
     * The funnel as a JSON object: every decision class count plus
     * the derived `changes_in` total (see class comment).
     */
    std::string funnelJson() const;

  private:
    std::size_t capacity_;
    std::vector<AuditRecord> ring_;
    std::array<std::uint64_t, kNumDecisions> counts_{};
    std::uint64_t seq_ = 0;
};

} // namespace gpusc::obs

#endif // GPUSC_OBS_AUDIT_H
