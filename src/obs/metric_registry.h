/**
 * @file
 * Named-metric registry: counters, gauges and log-bucketed latency
 * histograms, resolvable once and updated through stable references.
 *
 * Instrumented components resolve their metrics by name a single time
 * (at wiring) and keep the returned reference; the hot-path update is
 * then a plain increment with no map lookup, which is what keeps
 * telemetry inside the <2 % replay-overhead budget. Metric objects
 * are owned by the registry and their addresses never move.
 *
 * Naming scheme (see DESIGN.md "Observability"): dotted lowercase
 * `<component>.<what>` for counters/gauges (`sampler.reads_ok`,
 * `pipeline.changes_in`) and `latency.<stage>` for histograms, whose
 * unit string travels with the metric into the JSON export.
 */

#ifndef GPUSC_OBS_METRIC_REGISTRY_H
#define GPUSC_OBS_METRIC_REGISTRY_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "obs/log_histogram.h"

namespace gpusc::obs {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void inc(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Point-in-time level (set, not accumulated). */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** Owns every metric; hands out stable references by name. */
class MetricRegistry
{
  public:
    /** Resolve (creating on first use) the named metric. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** @p unit is recorded on first resolution ("ns", "us", ...). */
    LogHistogram &histogram(const std::string &name,
                            const std::string &unit = "ns");

    /** Unit string a histogram was registered with. */
    const std::string &histogramUnit(const std::string &name) const;

    /**
     * One metric name registered with two different unit strings —
     * the typed description of why a merge() hard-failed.
     */
    struct UnitMismatch
    {
        std::string metric;
        std::string haveUnit; ///< unit already registered here
        std::string otherUnit; ///< unit the other registry carries
    };

    /**
     * First unit-string conflict a merge of @p other would hit, or
     * nullopt when the registries are merge-compatible.
     */
    std::optional<UnitMismatch>
    checkMergeUnits(const MetricRegistry &other) const;

    /**
     * Fold @p other into this registry: counters add, histograms
     * merge bucket-wise, gauges take the other's latest value.
     * Used to aggregate per-run registries into one snapshot.
     * Hard-fails (panic, carrying the UnitMismatch detail) when the
     * same histogram name was registered with different units —
     * silently keeping one unit would mislabel every merged sample.
     */
    void merge(const MetricRegistry &other);

    /**
     * Pipeline-wide latency distribution: every `latency.`-prefixed
     * histogram merged into one (the snapshot's "all stages" row).
     */
    LogHistogram mergedLatency() const;

    /**
     * Render the whole registry as a JSON object with `counters`,
     * `gauges` and `histograms` keys; histograms export count, sum,
     * mean, p50/p90/p99, min/max and their unit.
     */
    std::string toJson() const;

    const std::map<std::string, std::unique_ptr<Counter>> &
    counters() const
    {
        return counters_;
    }
    const std::map<std::string, std::unique_ptr<Gauge>> &gauges() const
    {
        return gauges_;
    }
    const std::map<std::string, std::unique_ptr<LogHistogram>> &
    histograms() const
    {
        return histograms_;
    }

  private:
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
    std::map<std::string, std::string> units_;
};

/** Append @p s to @p out as a JSON string literal (with escapes). */
void appendJsonString(std::string &out, const std::string &s);
/** Append @p v with enough precision to round-trip. */
void appendJsonNumber(std::string &out, double v);
/**
 * Append @p h as the JSON object the registry snapshot exports
 * (count/sum/mean/min/p50/p90/p99/max/unit, quantiles from the
 * midpoint-of-bucket estimator). Shared by the end-of-run snapshot
 * and the live-plane window exposition so both describe histograms
 * identically.
 */
void appendHistogramJson(std::string &out, const LogHistogram &h,
                         const std::string &unit);

} // namespace gpusc::obs

#endif // GPUSC_OBS_METRIC_REGISTRY_H
