/**
 * @file
 * The telemetry context instrumented components share: a
 * MetricRegistry, a span Tracer and the decision AuditTrail, plus
 * the StageTimer helper that makes per-stage timing a two-clock-read
 * affair with every name lookup done once at wiring time.
 *
 * Telemetry is strictly observational and strictly optional: every
 * component takes a `Telemetry *` that defaults to null, and a null
 * context must cost one predictable branch on the hot path. Live
 * runs and trace replays produce bit-identical inferred output with
 * telemetry on or off (enforced by tests and the
 * bench/telemetry_overhead budget of <2 % replay throughput).
 */

#ifndef GPUSC_OBS_TELEMETRY_H
#define GPUSC_OBS_TELEMETRY_H

#include <string>

#include "obs/audit.h"
#include "obs/metric_registry.h"
#include "obs/span.h"

namespace gpusc::obs {

/** Shared observation context (metrics + spans + audit). */
class Telemetry
{
  public:
    struct Params
    {
        /** Span ring capacity (oldest spans overwritten beyond it). */
        std::size_t spanCapacity = 65536;
        /** Audit record ring capacity (counts are never bounded). */
        std::size_t auditCapacity = 262144;
    };

    Telemetry() : Telemetry(Params{}) {}
    explicit Telemetry(Params p)
        : tracer(p.spanCapacity), audit(p.auditCapacity)
    {
    }

    Telemetry(const Telemetry &) = delete;
    Telemetry &operator=(const Telemetry &) = delete;

    MetricRegistry metrics;
    Tracer tracer;
    AuditTrail audit;

    /**
     * Fold @p other into this context: counters add, histograms
     * merge bucket-wise, gauges take the other's latest value,
     * spans and audit records append with fresh sequence numbers.
     * The parallel evaluation engine (src/exec/) gives every shard
     * its own Telemetry and merges them here in shard-index order,
     * so merged counters, the decision funnel and the audit trail
     * are bit-identical for any worker count (host-time latency
     * *values* naturally vary run to run; their counts do not).
     */
    void merge(const Telemetry &other)
    {
        metrics.merge(other.metrics);
        tracer.merge(other.tracer);
        audit.merge(other.audit);
    }

    /** Full metrics snapshot as JSON: registry + funnel + span
     *  accounting, the --metrics-out payload. */
    std::string metricsJson() const;

    /** Write @p text to @p path; false (with a warn) on IO failure. */
    static bool writeFile(const std::string &path,
                          const std::string &text);
};

/**
 * Pre-resolved handle for timing one stage: holds the stage's
 * latency histogram and tracer lane so the per-execution cost is
 * two hostNowNs() reads, a histogram add and a ring write.
 * Default-constructed (or resolved from a null Telemetry) timers
 * no-op without touching the clock.
 */
class StageTimer
{
  public:
    StageTimer() = default;

    /** Resolve @p stage in @p tel (null @p tel gives a no-op timer). */
    StageTimer(Telemetry *tel, const std::string &stage)
    {
        if (!tel)
            return;
        tracer_ = &tel->tracer;
        hist_ = &tel->metrics.histogram("latency." + stage, "ns");
        tid_ = tel->tracer.stageId(stage);
    }

    bool enabled() const { return tracer_ != nullptr; }

    /** RAII measurement; records on destruction (or end()). */
    class Scope
    {
      public:
        Scope(const StageTimer *timer, SimTime at) : timer_(timer)
        {
            if (timer_ && timer_->enabled()) {
                at_ = at;
                start_ = hostNowNs();
            } else {
                timer_ = nullptr;
            }
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

        ~Scope() { end(); }

        void
        end()
        {
            if (!timer_)
                return;
            const std::int64_t ns = hostNowNs() - start_;
            timer_->hist_->add(std::uint64_t(ns < 0 ? 0 : ns));
            timer_->tracer_->record(timer_->tid_, at_, ns);
            timer_ = nullptr;
        }

      private:
        const StageTimer *timer_;
        SimTime at_;
        std::int64_t start_ = 0;
    };

    /** Start measuring one execution stamped at sim time @p at. */
    Scope scoped(SimTime at) const { return Scope(this, at); }

    /**
     * Record an already-measured execution of @p hostNs at sim time
     * @p at — for call sites that clock the stage themselves anyway
     * (no extra hostNowNs() reads on the hot path).
     */
    void
    note(SimTime at, std::int64_t hostNs) const
    {
        if (!tracer_)
            return;
        hist_->add(std::uint64_t(hostNs < 0 ? 0 : hostNs));
        tracer_->record(tid_, at, hostNs);
    }

  private:
    friend class Scope;
    Tracer *tracer_ = nullptr;
    LogHistogram *hist_ = nullptr;
    int tid_ = 0;
};

} // namespace gpusc::obs

#endif // GPUSC_OBS_TELEMETRY_H
