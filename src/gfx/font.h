/**
 * @file
 * A 5x7 bitmap font covering the printable characters evaluated in the
 * paper (Fig. 18: a-z, A-Z, 0-9 and the Gboard symbol rows).
 *
 * Glyph shapes matter here: the attack's per-key signatures arise from
 * the pixel coverage of the popup glyph, so characters must have
 * realistically distinct footprints ('i' thin, 'w' wide, '.' tiny).
 * Glyphs are rasterised into per-row run rectangles which become GPU
 * primitives.
 */

#ifndef GPUSC_GFX_FONT_H
#define GPUSC_GFX_FONT_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "gfx/geometry.h"

namespace gpusc::gfx {

/** Number of glyph columns/rows in the bitmap font. */
inline constexpr int kGlyphCols = 5;
inline constexpr int kGlyphRows = 7;

/** One glyph: 7 rows, low 5 bits used, bit 4 = leftmost column. */
struct Glyph
{
    std::array<std::uint8_t, kGlyphRows> rows;
};

/**
 * Look up the glyph for @p c. Characters without a dedicated glyph map
 * to a filled box so they still render deterministically.
 */
const Glyph &glyphFor(char c);

/** @return true if the font has a real (non-fallback) glyph for @p c. */
bool hasGlyph(char c);

/** Number of lit pixels in the 5x7 cell of @p c. */
int glyphPixelCount(char c);

/**
 * Scale the glyph for @p c into @p box and decompose it into one
 * rectangle per horizontal run of lit pixels per row. These rectangles
 * are what the UI layer submits to the GPU as primitives.
 */
std::vector<Rect> glyphRunRects(char c, const Rect &box);

/** All characters with dedicated glyphs, in Fig. 18 display order. */
const std::string &fontCharset();

} // namespace gpusc::gfx

#endif // GPUSC_GFX_FONT_H
