/**
 * @file
 * Integer pixel geometry: points, rectangles and helpers.
 *
 * Coordinates are device pixels with the origin at the top-left of the
 * screen; rectangles are half-open ([x0, x1) x [y0, y1)).
 */

#ifndef GPUSC_GFX_GEOMETRY_H
#define GPUSC_GFX_GEOMETRY_H

#include <algorithm>
#include <cstdint>
#include <string>

namespace gpusc::gfx {

struct Point
{
    int x = 0;
    int y = 0;

    bool operator==(const Point &) const = default;
};

/** Half-open axis-aligned rectangle in device pixels. */
struct Rect
{
    int x0 = 0;
    int y0 = 0;
    int x1 = 0;
    int y1 = 0;

    static constexpr Rect
    ofSize(int x, int y, int w, int h)
    {
        return Rect{x, y, x + w, y + h};
    }

    constexpr int width() const { return x1 - x0; }
    constexpr int height() const { return y1 - y0; }
    constexpr std::int64_t
    area() const
    {
        return empty() ? 0 : std::int64_t(width()) * height();
    }
    constexpr bool empty() const { return x1 <= x0 || y1 <= y0; }

    constexpr bool
    contains(Point p) const
    {
        return p.x >= x0 && p.x < x1 && p.y >= y0 && p.y < y1;
    }

    constexpr bool
    contains(const Rect &o) const
    {
        return o.empty() ||
               (o.x0 >= x0 && o.x1 <= x1 && o.y0 >= y0 && o.y1 <= y1);
    }

    constexpr bool
    intersects(const Rect &o) const
    {
        return !intersect(o).empty();
    }

    constexpr Rect
    intersect(const Rect &o) const
    {
        return Rect{std::max(x0, o.x0), std::max(y0, o.y0),
                    std::min(x1, o.x1), std::min(y1, o.y1)};
    }

    /** Smallest rect covering both (empty rects are identities). */
    constexpr Rect
    unite(const Rect &o) const
    {
        if (empty())
            return o;
        if (o.empty())
            return *this;
        return Rect{std::min(x0, o.x0), std::min(y0, o.y0),
                    std::max(x1, o.x1), std::max(y1, o.y1)};
    }

    constexpr Rect
    translated(int dx, int dy) const
    {
        return Rect{x0 + dx, y0 + dy, x1 + dx, y1 + dy};
    }

    /** Shrink (positive inset) or grow (negative) on all sides. */
    constexpr Rect
    inset(int d) const
    {
        return Rect{x0 + d, y0 + d, x1 - d, y1 - d};
    }

    Point
    center() const
    {
        return Point{(x0 + x1) / 2, (y0 + y1) / 2};
    }

    bool operator==(const Rect &) const = default;

    std::string toString() const;
};

/**
 * Number of fixed-size tiles a rect touches when the screen is divided
 * into a tileW x tileH grid anchored at the origin.
 */
std::int64_t tilesTouched(const Rect &r, int tileW, int tileH);

/**
 * Number of grid tiles lying entirely inside @p r (fully covered by
 * an opaque draw of exactly @p r).
 */
std::int64_t tilesFullyCovered(const Rect &r, int tileW, int tileH);

} // namespace gpusc::gfx

#endif // GPUSC_GFX_GEOMETRY_H
