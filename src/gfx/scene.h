/**
 * @file
 * The draw-list representation consumed by the GPU simulator.
 *
 * A frame is a damage rectangle plus a back-to-front ordered list of
 * primitives. Each primitive is an axis-aligned quad (two triangles in
 * counter terms); glyphs are decomposed into per-row run quads before
 * reaching this level, mirroring how a real UI toolkit batches text as
 * textured quads.
 */

#ifndef GPUSC_GFX_SCENE_H
#define GPUSC_GFX_SCENE_H

#include <cstdint>
#include <string>
#include <vector>

#include "gfx/geometry.h"

namespace gpusc::gfx {

/** What produced a primitive; used in tests and trace output only. */
enum class PrimTag : std::uint8_t
{
    Background,
    KeyCap,
    KeyLabel,
    Popup,
    PopupGlyph,
    TextField,
    TextEcho,
    Cursor,
    StatusBar,
    AppContent,
    Animation,
    Foreign, // background (non-UI) GPU workload
};

/** A single draw primitive: one opaque or translucent quad. */
struct Prim
{
    Rect rect;
    bool opaque = true;
    PrimTag tag = PrimTag::AppContent;
};

/** One frame's worth of GPU work. */
struct FrameScene
{
    /** Region invalidated this frame; prims are clipped against it. */
    Rect damage;
    /** Primitives in back-to-front submission order. */
    std::vector<Prim> prims;

    bool empty() const { return damage.empty() || prims.empty(); }

    /** Append a quad clipped to the damage region (if visible). */
    void
    add(const Rect &r, bool opaque, PrimTag tag)
    {
        Rect clipped = r.intersect(damage);
        if (!clipped.empty())
            prims.push_back(Prim{clipped, opaque, tag});
    }

    /**
     * Stable content hash over damage and primitive list; used by the
     * render engine to memoise counter deltas for identical frames.
     */
    std::uint64_t contentHash() const;
};

} // namespace gpusc::gfx

#endif // GPUSC_GFX_SCENE_H
