#include "gfx/scene.h"

namespace gpusc::gfx {

namespace {

void
mix(std::uint64_t &h, std::uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

} // namespace

std::uint64_t
FrameScene::contentHash() const
{
    std::uint64_t h = 0x243f6a8885a308d3ULL;
    mix(h, std::uint64_t(std::uint32_t(damage.x0)) << 32 |
               std::uint32_t(damage.y0));
    mix(h, std::uint64_t(std::uint32_t(damage.x1)) << 32 |
               std::uint32_t(damage.y1));
    for (const Prim &p : prims) {
        mix(h, std::uint64_t(std::uint32_t(p.rect.x0)) << 32 |
                   std::uint32_t(p.rect.y0));
        mix(h, std::uint64_t(std::uint32_t(p.rect.x1)) << 32 |
                   std::uint32_t(p.rect.y1));
        mix(h, std::uint64_t(p.opaque) << 8 | std::uint64_t(p.tag));
    }
    return h;
}

} // namespace gpusc::gfx
