#include "gfx/geometry.h"

#include <cstdio>

namespace gpusc::gfx {

std::string
Rect::toString() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "[%d,%d %dx%d]", x0, y0, width(),
                  height());
    return buf;
}

namespace {

/** Integer floor division for possibly-negative coordinates. */
int
floorDiv(int a, int b)
{
    int q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0)))
        --q;
    return q;
}

} // namespace

std::int64_t
tilesTouched(const Rect &r, int tileW, int tileH)
{
    if (r.empty())
        return 0;
    const int tx0 = floorDiv(r.x0, tileW);
    const int tx1 = floorDiv(r.x1 - 1, tileW);
    const int ty0 = floorDiv(r.y0, tileH);
    const int ty1 = floorDiv(r.y1 - 1, tileH);
    return std::int64_t(tx1 - tx0 + 1) * (ty1 - ty0 + 1);
}

std::int64_t
tilesFullyCovered(const Rect &r, int tileW, int tileH)
{
    if (r.empty())
        return 0;
    // First tile whose left edge >= r.x0, last tile whose right
    // edge <= r.x1.
    const int tx0 = floorDiv(r.x0 + tileW - 1, tileW);
    const int tx1 = floorDiv(r.x1, tileW); // exclusive
    const int ty0 = floorDiv(r.y0 + tileH - 1, tileH);
    const int ty1 = floorDiv(r.y1, tileH); // exclusive
    if (tx1 <= tx0 || ty1 <= ty0)
        return 0;
    return std::int64_t(tx1 - tx0) * (ty1 - ty0);
}

} // namespace gpusc::gfx
