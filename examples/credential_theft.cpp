/**
 * @file
 * The full attack story, end to end (paper Fig. 4): the attacking app
 * ships a store of preloaded models, waits for the victim to launch a
 * banking app, *recognises the device configuration from the first
 * counter changes*, then eavesdrops a realistic usage session —
 * including a mid-input switch to another app and typo corrections —
 * and reports each stolen credential.
 */

#include <cstdio>

#include "attack/eavesdropper.h"
#include "attack/launch_detector.h"
#include "attack/model_store.h"
#include "attack/trainer.h"
#include "util/logging.h"
#include "workload/session.h"

using namespace gpusc;
using namespace gpusc::sim_literals;

int
main()
{
    // Offline phase: the attacker pre-trains models for the device
    // configurations they expect in the wild.
    attack::ModelStore &store = attack::ModelStore::global();
    const attack::OfflineTrainer trainer;
    for (const char *phone : {"oneplus8pro", "pixel2"}) {
        android::DeviceConfig cfg;
        cfg.phone = phone;
        cfg.app = "chase";
        store.getOrTrain(cfg, trainer);
    }
    inform("model store holds %zu configurations (%zu bytes)",
           store.size(), store.totalByteSize());

    // The victim's device: a OnePlus 8 Pro about to open Chase.
    android::DeviceConfig victimCfg;
    victimCfg.phone = "oneplus8pro";
    victimCfg.app = "chase";
    victimCfg.seed = 77;
    android::Device victim(victimCfg);

    // The attacking app attaches with the *store*; it must figure out
    // which configuration it is running on by itself — and it only
    // starts sampling once the launch detector (a procfs side channel,
    // paper §3.2) sees a target app in the foreground.
    attack::Eavesdropper spy(victim, store,
                             attack::Eavesdropper::Params{});
    attack::LaunchDetector watcher(
        victim, {"chase", "amex", "fidelity"},
        attack::LaunchDetector::Params{});
    watcher.setOnLaunch([&](const std::string &app) {
        inform("launch detector: '%s' in foreground -> sampling on",
               app.c_str());
        if (!spy.start())
            fatal("attack could not start");
    });
    victim.boot();
    watcher.start();

    // A realistic session: two credentials, typos, an app switch.
    workload::SessionConfig sessCfg;
    sessCfg.numInputs = 2;
    sessCfg.typoProb = 0.1;
    sessCfg.midInputSwitchProb = 0.6;
    sessCfg.volunteer = 1;
    sessCfg.seed = 1234;
    workload::SessionDriver session(victim, sessCfg);
    session.start();
    while (!session.done() &&
           victim.eq().now() < SimTime::fromSeconds(240))
        victim.runFor(500_ms);
    victim.runFor(1_s);

    if (!spy.activeModel())
        fatal("device recognition failed");
    std::printf("\nrecognised configuration: %s\n",
                spy.activeModel()->modelKey().c_str());

    int correct = 0;
    for (const workload::InputEpisode &ep : session.episodes()) {
        const std::string stolen = spy.inferredTextBetween(
            ep.start - 100_ms, ep.end + 600_ms);
        std::printf("victim typed : %s\nattacker saw : %s  [%s]\n\n",
                    ep.truth.c_str(), stolen.c_str(),
                    stolen == ep.truth ? "EXACT" : "partial");
        correct += stolen == ep.truth;
    }
    std::printf("stolen exactly: %d/%zu credentials; sampler made "
                "%llu ioctl reads; app-switch bursts seen: %llu; "
                "launches detected: %llu\n",
                correct, session.episodes().size(),
                (unsigned long long)spy.sampler().readCount(),
                (unsigned long long)
                    spy.switchDetector().burstsDetected(),
                (unsigned long long)watcher.launchesDetected());
    return correct > 0 ? 0 : 1;
}
