/**
 * @file
 * Offline Phase walk-through (paper §3.2/§6).
 *
 * Plays the attacker's role: enumerates the counters through the
 * GL_AMD_performance_monitor-style interface (how the paper found the
 * Table 1 counters), trains signature models for several device
 * configurations with the input-injection bot, packs them into the
 * preloaded model store, round-trips the store through a file, and
 * prints the §7.6 size accounting.
 */

#include <cstdio>

#include "android/gles.h"
#include "attack/model_store.h"
#include "attack/trainer.h"
#include "util/logging.h"
#include "util/table.h"

using namespace gpusc;

int
main()
{
    // --- Counter discovery (paper §3.3).
    std::printf("enumerating perf-monitor groups (Table 1 "
                "selection):\n");
    for (const auto &group : android::gles::getPerfMonitorGroupsAMD()) {
        if (group.name != "LRZ" && group.name != "RAS" &&
            group.name != "VPC")
            continue;
        std::printf("  group %s (0x%x): %zu countables, e.g. %s\n",
                    group.name.c_str(), group.id,
                    group.counters.size(),
                    android::gles::getPerfMonitorCounterStringAMD(
                        group.id, group.counters.at(
                                      group.name == "LRZ" ? 13 : 4))
                        .c_str());
    }

    // --- Train a handful of configurations.
    attack::ModelStore store;
    const attack::OfflineTrainer trainer;
    struct ConfigSpec
    {
        const char *phone;
        const char *keyboard;
    };
    const ConfigSpec configs[] = {
        {"oneplus8pro", "gboard"},
        {"oneplus8pro", "swift"},
        {"pixel2", "gboard"},
        {"s21", "gboard"},
    };
    Table table({"configuration", "labels", "C_th", "model size"});
    for (const ConfigSpec &spec : configs) {
        android::DeviceConfig cfg;
        cfg.phone = spec.phone;
        cfg.keyboard = spec.keyboard;
        inform("training %s + %s ...", spec.phone, spec.keyboard);
        const attack::SignatureModel &m = store.getOrTrain(cfg, trainer);
        table.addRow({m.modelKey(),
                      std::to_string(m.signatures().size()),
                      Table::num(m.threshold(), 4),
                      Table::num(double(m.byteSize()) / 1024.0, 2) +
                          " kB"});
    }
    table.print("\ntrained models");

    // --- Persist the preloaded asset and read it back.
    const std::string path = "/tmp/gpusc_models.bin";
    if (!store.saveToFile(path))
        fatal("cannot write %s", path.c_str());
    const attack::ModelStore loaded = attack::ModelStore::loadFromFile(path);
    std::printf("\nstore round trip: %zu models, %zu bytes -> %s\n",
                loaded.size(), store.totalByteSize(),
                loaded.size() == store.size() ? "OK" : "MISMATCH");

    const double avgKb =
        double(store.totalByteSize()) / double(store.size()) / 1024.0;
    std::printf("average model size: %.2f kB (paper: 3.59 kB)\n",
                avgKb);
    std::printf("3000-model APK payload: %.1f MB (paper: 13.40 MB, "
                "Play Store cap 100 MB)\n",
                3000.0 * avgKb / 1024.0);
    return 0;
}
