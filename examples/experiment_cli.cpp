/**
 * @file
 * Command-line experiment runner — the public API as a tool.
 *
 * Runs an accuracy experiment for any device configuration without
 * writing code:
 *
 *   experiment_cli [--phone P] [--keyboard K] [--app A]
 *                  [--refresh HZ] [--resolution FHD+|QHD+]
 *                  [--os N] [--speed slow|medium|fast|mixed]
 *                  [--cpu-load F] [--gpu-load F] [--interval MS]
 *                  [--trials N] [--min-len N] [--max-len N]
 *                  [--typo-prob F] [--seed N] [--list]
 *
 * Driver-hostility (fault-injection) options exercise the hardened
 * sampling pipeline against a realistic KGSL driver:
 *
 *   experiment_cli --collapse-every 2000 --wrap32 \
 *                  --transient-prob 0.1 --reset-at 5000 \
 *                  --registers 5:8 --competitor 7:4:30
 *
 * Defense-arena options put a counter-degrading policy stack on the
 * victim's driver (src/kgsl/defense.h) and pick the attacker mode:
 *
 *   experiment_cli --defense rate:48 --defense quant:192 \
 *                  --attacker robust
 *
 * Telemetry (src/obs/): --telemetry prints the decision funnel and
 * per-stage latency tables; the output flags additionally export
 * machine-readable snapshots:
 *
 *   experiment_cli --metrics-out=metrics.json \
 *                  --chrome-trace=trace.json --audit-out=audit.jsonl
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "android/keyboard.h"
#include "android/phone.h"
#include "arena/matrix.h"
#include "eval/experiment.h"
#include "exec/parallel_runner.h"
#include "obs/live/live_plane.h"
#include "obs/telemetry.h"
#include "util/logging.h"
#include "util/table.h"

using namespace gpusc;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --phone <id>        victim phone (default oneplus8pro)\n"
        "  --keyboard <name>   on-screen keyboard (default gboard)\n"
        "  --app <name>        target app (default chase)\n"
        "  --refresh <hz>      60 or 120 (default: phone default)\n"
        "  --resolution <r>    FHD+ or QHD+ (default: phone default)\n"
        "  --os <version>      Android major version\n"
        "  --speed <band>      slow|medium|fast|mixed\n"
        "  --cpu-load <f>      concurrent CPU load 0..1\n"
        "  --gpu-load <f>      concurrent GPU load 0..1\n"
        "  --interval <ms>     counter sampling interval (default 8)\n"
        "  --trials <n>        credentials to type (default 100)\n"
        "  --min-len/--max-len credential lengths (default 8/16)\n"
        "  --typo-prob <f>     correction behaviour (default 0)\n"
        "  --seed <n>          RNG seed (default 1)\n"
        "  --batch <n>         classify/feed batch size for bulk\n"
        "                      pipeline consumers (default auto);\n"
        "                      results are bit-identical for any N\n"
        "  --threads <n>       worker threads for the trial campaign\n"
        "                      (default 1 = serial; >1 shards trials\n"
        "                      across src/exec/, deterministically)\n"
        "  --list              print known phones/keyboards/apps\n"
        "fault injection (driver hostility):\n"
        "  --transient-prob <f>  P(EINTR/EAGAIN) per GET/READ ioctl\n"
        "  --collapse-every <ms> GPU power collapse period\n"
        "  --wrap32              32-bit counter truncation/wraparound\n"
        "  --wrap32-offset <n>   pre-attack register bias (wrap32)\n"
        "  --reset-at <ms>       device reset epoch (repeatable)\n"
        "  --registers <g:n>     physical registers in group g\n"
        "  --competitor <g:n:s>  profiler holding n registers of\n"
        "                        group g until it exits at s seconds\n"
        "  --fault-seed <n>      fault injector RNG seed\n"
        "defense arena (src/kgsl/defense.h, src/arena/):\n"
        "  --defense <dial>      add one defense dial (repeatable):\n"
        "                        rbac | rbac-open | rate:<reads/s> |\n"
        "                        rate-stale:<reads/s> | quant:<step> |\n"
        "                        noise:<amplitude>\n"
        "  --attacker <mode>     naive (default) or robust — the\n"
        "                        pacing/re-estimating/voting attacker\n"
        "telemetry (src/obs/):\n"
        "  --telemetry           print funnel + stage-latency tables\n"
        "  --metrics-out <json>  write the metrics snapshot\n"
        "  --chrome-trace <json> write spans as Chrome trace events\n"
        "  --audit-out <jsonl>   write the decision audit trail\n"
        "  (each output flag also accepts --flag=path and implies\n"
        "   --telemetry)\n"
        "live telemetry plane (src/obs/live/, --threads 1 only):\n"
        "  --live-metrics <sink> integer = HTTP port (0 ephemeral),\n"
        "                        else JSONL window-record path\n"
        "  --slo <rules>         SLO watchdog rules file\n",
        argv0);
}

void
listRegistries()
{
    std::printf("phones   :");
    for (const auto &id : android::phoneIds())
        std::printf(" %s", id.c_str());
    std::printf("\nkeyboards:");
    for (const auto &name : android::keyboardNames())
        std::printf(" %s", name.c_str());
    std::printf("\napps     :");
    for (const auto &name : android::nativeAppNames())
        std::printf(" %s", name.c_str());
    for (const auto &name : android::webAppNames())
        std::printf(" %s", name.c_str());
    std::printf(" pnc\n");
}

/** Fold one --defense dial spec into the stack. */
void
parseDefenseDial(kgsl::DefenseConfig &defense, const std::string &spec)
{
    const std::size_t colon = spec.find(':');
    const std::string dial = spec.substr(0, colon);
    const double arg = colon == std::string::npos
                           ? 0.0
                           : std::atof(spec.c_str() + colon + 1);
    if (dial == "rbac") {
        defense.rbac = true;
    } else if (dial == "rbac-open") {
        defense.rbac = true;
        defense.restrictOpen = true;
    } else if (dial == "rate" || dial == "rate-stale") {
        if (arg <= 0.0)
            fatal("--defense %s wants :<reads/s>", dial.c_str());
        defense.readsPerSecond = arg;
        defense.overBudget =
            dial == "rate-stale"
                ? kgsl::DefenseConfig::OverBudget::Stale
                : kgsl::DefenseConfig::OverBudget::Eagain;
    } else if (dial == "quant") {
        if (arg < 2.0)
            fatal("--defense quant wants :<step >= 2>");
        defense.quantStep = std::uint64_t(arg);
    } else if (dial == "noise") {
        if (arg <= 0.0)
            fatal("--defense noise wants :<amplitude>");
        defense.noiseAmplitude = std::uint64_t(arg);
    } else {
        fatal("unknown defense dial '%s'", spec.c_str());
    }
}

bool
isInteger(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (c < '0' || c > '9')
            return false;
    return true;
}

std::string
readTextFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        fatal("cannot open '%s'", path.c_str());
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

} // namespace

int
main(int argc, char **argv)
{
    eval::ExperimentConfig cfg;
    int trials = 100;
    std::size_t minLen = 8, maxLen = 16;
    std::size_t threads = 1;
    bool telemetryOn = false;
    std::string metricsOut, chromeTrace, auditOut;
    std::string liveMetrics, sloPath;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        // The telemetry output flags also accept --flag=path.
        auto pathFlag = [&](const char *name,
                            std::string &out) -> bool {
            const std::string prefix = std::string(name) + "=";
            if (arg == name)
                out = value();
            else if (arg.rfind(prefix, 0) == 0)
                out = arg.substr(prefix.size());
            else
                return false;
            if (out.empty())
                fatal("empty path for %s", name);
            return true;
        };
        if (pathFlag("--metrics-out", metricsOut) ||
            pathFlag("--chrome-trace", chromeTrace) ||
            pathFlag("--audit-out", auditOut) ||
            pathFlag("--live-metrics", liveMetrics) ||
            pathFlag("--slo", sloPath))
            continue;
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--list") {
            listRegistries();
            return 0;
        } else if (arg == "--phone") {
            cfg.device.phone = value();
        } else if (arg == "--keyboard") {
            cfg.device.keyboard = value();
        } else if (arg == "--app") {
            cfg.device.app = value();
        } else if (arg == "--refresh") {
            cfg.device.refreshHz = std::atoi(value());
        } else if (arg == "--resolution") {
            cfg.device.resolution = value();
        } else if (arg == "--os") {
            cfg.device.osVersion = std::atoi(value());
        } else if (arg == "--speed") {
            const std::string band = value();
            if (band == "slow")
                cfg.speed = workload::TypingSpeed::Slow;
            else if (band == "medium")
                cfg.speed = workload::TypingSpeed::Medium;
            else if (band == "fast")
                cfg.speed = workload::TypingSpeed::Fast;
            else if (band == "mixed")
                cfg.speed = workload::TypingSpeed::Mixed;
            else
                fatal("unknown speed band '%s'", band.c_str());
        } else if (arg == "--cpu-load") {
            cfg.cpuLoad = std::atof(value());
        } else if (arg == "--gpu-load") {
            cfg.gpuLoad = std::atof(value());
        } else if (arg == "--interval") {
            cfg.attackParams.samplingInterval =
                SimTime::fromMs(std::atoi(value()));
        } else if (arg == "--trials") {
            trials = std::atoi(value());
        } else if (arg == "--min-len") {
            minLen = std::size_t(std::atoi(value()));
        } else if (arg == "--max-len") {
            maxLen = std::size_t(std::atoi(value()));
        } else if (arg == "--typo-prob") {
            cfg.typoProb = std::atof(value());
        } else if (arg == "--seed") {
            cfg.seed = std::uint64_t(std::atoll(value()));
        } else if (arg == "--batch") {
            const int n = std::atoi(value());
            if (n < 1)
                fatal("--batch wants a positive count");
            cfg.attackParams.readingBatch = std::size_t(n);
        } else if (arg == "--threads") {
            const int n = std::atoi(value());
            if (n < 1)
                fatal("--threads wants a positive count");
            threads = std::size_t(n);
        } else if (arg == "--transient-prob") {
            cfg.faultPlan.transientErrorProb = std::atof(value());
        } else if (arg == "--collapse-every") {
            cfg.faultPlan.powerCollapseInterval =
                SimTime::fromMs(std::atoi(value()));
        } else if (arg == "--wrap32") {
            cfg.faultPlan.wrap32 = true;
        } else if (arg == "--wrap32-offset") {
            cfg.faultPlan.wrap32 = true;
            cfg.faultPlan.wrap32Offset =
                std::uint64_t(std::atoll(value()));
        } else if (arg == "--reset-at") {
            cfg.faultPlan.deviceResets.push_back(
                SimTime::fromMs(std::atoi(value())));
        } else if (arg == "--registers") {
            unsigned group = 0, regs = 0;
            if (std::sscanf(value(), "%u:%u", &group, &regs) != 2)
                fatal("--registers wants GROUP:COUNT");
            cfg.faultPlan.groupRegisters[group] = regs;
        } else if (arg == "--competitor") {
            unsigned group = 0, regs = 0;
            double exitS = 0.0;
            if (std::sscanf(value(), "%u:%u:%lf", &group, &regs,
                            &exitS) != 3)
                fatal("--competitor wants GROUP:COUNT:EXIT_SECONDS");
            cfg.faultPlan.competitors.push_back(
                {group, regs, SimTime::fromSeconds(exitS)});
        } else if (arg == "--fault-seed") {
            cfg.faultPlan.seed = std::uint64_t(std::atoll(value()));
        } else if (arg == "--defense") {
            parseDefenseDial(cfg.defense, value());
        } else if (arg == "--attacker") {
            const std::string mode = value();
            if (mode != "naive" && mode != "robust")
                fatal("--attacker wants naive or robust");
            arena::applyAttacker(cfg, {mode, mode == "robust"});
        } else if (arg == "--telemetry") {
            telemetryOn = true;
        } else {
            usage(argv[0]);
            fatal("unknown option '%s'", arg.c_str());
        }
    }

    obs::Telemetry telemetry;
    if (telemetryOn || !metricsOut.empty() || !chromeTrace.empty() ||
        !auditOut.empty() || !liveMetrics.empty() || !sloPath.empty())
        cfg.telemetry = &telemetry;

    // Live telemetry plane over the campaign context, ticked from the
    // per-trial listener with trial-end sim time. Listener campaigns
    // are inline-only (see ParallelRunner::setTrialListener), so the
    // plane observes one shared registry that grows trial by trial.
    std::unique_ptr<obs::live::LivePlane> plane;
    SimTime lastTrialEnd;
    if (!liveMetrics.empty() || !sloPath.empty()) {
        if (threads != 1)
            fatal("--live-metrics/--slo require --threads 1 (the "
                  "live plane ticks from the trial listener, which "
                  "is inline-only)");
        obs::live::LiveConfig lc;
        // A trial spans seconds of sim time; stretch the window
        // geometry so a campaign yields a readable series instead of
        // hundreds of empty 100 ms windows.
        lc.series.fineWidth = SimTime::fromSeconds(2.0);
        lc.series.coarsePerFine = 10;
        if (!liveMetrics.empty()) {
            if (isInteger(liveMetrics))
                lc.httpPort = std::atoi(liveMetrics.c_str());
            else
                lc.jsonlPath = liveMetrics;
        }
        if (!sloPath.empty()) {
            obs::live::SloParseError perr;
            lc.rules = obs::live::SloEngine::parseRules(
                readTextFile(sloPath), &perr);
            if (!perr.message.empty())
                fatal("--slo %s:%zu: %s", sloPath.c_str(), perr.line,
                      perr.message.c_str());
        }
        plane = std::make_unique<obs::live::LivePlane>(std::move(lc),
                                                       &telemetry);
        if (const obs::live::HttpEndpoint *ep = plane->endpoint())
            inform("live endpoint: http://127.0.0.1:%u/metrics",
                   unsigned(ep->port()));
    }

    std::vector<eval::TrialResult> results;
    eval::AccuracyStats stats;
    attack::HealthStats health{};
    kgsl::FaultInjector::Stats faultStats{};
    kgsl::DefenseOverhead defenseOverhead{};
    bool haveFaultStats = false;

    auto printModel = [](const attack::SignatureModel &m) {
        inform("model: %s (%zu signatures, C_th %.4f)",
               m.modelKey().c_str(), m.signatures().size(),
               m.threshold());
    };

    // Every thread count goes through the ParallelRunner (inline at
    // 1), so the campaign depends only on --seed, never on --threads.
    {
        exec::ParallelRunner runner(cfg, attack::ModelStore::global(),
                                    threads);
        printModel(runner.model());
        if (threads > 1)
            inform("parallel campaign: %zu threads, shard size %zu",
                   runner.threads(), runner.plan().shardSize);
        if (plane)
            runner.setTrialListener(
                [&](const eval::TrialResult &, SimTime now) {
                    lastTrialEnd = now;
                    plane->maybeTick(now);
                });
        exec::ParallelResult res =
            runner.runTrials(trials, minLen, maxLen);
        stats = res.stats;
        results = std::move(res.trials);
        health = res.health;
        faultStats = res.faults;
        defenseOverhead = res.defense;
        haveFaultStats = cfg.faultPlan.any();
    }

    if (plane) {
        plane->finish(lastTrialEnd);
        inform("live plane: %llu windows closed, alerts %s",
               (unsigned long long)plane->series().windowsClosed(),
               plane->slo().toJson().c_str());
    }

    if (cfg.defense.any()) {
        const kgsl::DefenseOverhead &d = defenseOverhead;
        Table dt({"defense metric", "value"});
        dt.addRow({"active stack", cfg.defense.label()});
        dt.addRow(
            {"access checks", std::to_string(d.accessChecks)});
        dt.addRow({"reads seen", std::to_string(d.readsSeen)});
        dt.addRow(
            {"reads throttled", std::to_string(d.readsThrottled)});
        dt.addRow({"stale serves", std::to_string(d.staleServes)});
        dt.addRow(
            {"values quantized", std::to_string(d.valuesQuantized)});
        dt.addRow({"values noised", std::to_string(d.valuesNoised)});
        dt.addRow({"defender cpu (modeled)",
                   Table::num(double(d.cpuNs) * 1e-3, 1) + " us"});
        dt.addRow({"attacker throttled reads",
                   std::to_string(health.throttledReads)});
        dt.addRow({"attacker pace backoffs",
                   std::to_string(health.paceBackoffs)});
        dt.addRow({"attacker effective interval",
                   Table::num(double(health.effectiveIntervalNs) *
                                  1e-6,
                              1) +
                       " ms"});
        dt.print("defense overhead & attacker degradation");
    }

    Table table({"metric", "value"});
    table.addRow({"trials", std::to_string(stats.trials())});
    table.addRow({"text accuracy", Table::pct(stats.textAccuracy())});
    table.addRow(
        {"key-press accuracy", Table::pct(stats.charAccuracy())});
    table.addRow(
        {"avg wrong keys/text", Table::num(stats.avgErrorsPerText())});
    for (auto g :
         {workload::CharGroup::Lower, workload::CharGroup::Upper,
          workload::CharGroup::Number, workload::CharGroup::Symbol}) {
        table.addRow({workload::charGroupName(g) + " accuracy",
                      Table::pct(stats.groupAccuracy(g))});
    }
    table.print("results");

    if (cfg.faultPlan.any() && haveFaultStats) {
        const kgsl::FaultInjector::Stats &fs = faultStats;
        const attack::HealthStats &h = health;
        Table healthTable({"health metric", "value"});
        healthTable.addRow({"faults: transient errors",
                            std::to_string(fs.transientErrors)});
        healthTable.addRow(
            {"faults: busy denials", std::to_string(fs.busyDenials)});
        healthTable.addRow({"faults: power collapses",
                            std::to_string(fs.powerCollapses)});
        healthTable.addRow(
            {"faults: device resets", std::to_string(fs.deviceResets)});
        healthTable.addRow({"sampler: transient retries",
                            std::to_string(h.transientRetries)});
        healthTable.addRow(
            {"sampler: busy retries", std::to_string(h.busyRetries)});
        healthTable.addRow(
            {"sampler: reopens", std::to_string(h.reopens)});
        healthTable.addRow({"sampler: resets survived",
                            std::to_string(h.resetsSurvived)});
        healthTable.addRow({"sampler: watchdog recoveries",
                            std::to_string(h.watchdogRecoveries)});
        healthTable.addRow(
            {"sampler: missed reads", std::to_string(h.missedReads)});
        healthTable.addRow(
            {"stream: re-baselines", std::to_string(h.streamResets)});
        healthTable.addRow({"stream: wraps repaired",
                            std::to_string(h.wrapsRepaired)});
        // countersHeld sums over the per-shard devices, so held/total
        // against one device's register file would mislead here.
        healthTable.addRow({"counters held (all shards)",
                            std::to_string(h.countersHeld)});
        healthTable.print("pipeline health");
    }

    int shown = 0;
    for (const auto &r : results) {
        if (r.truth != r.inferred && shown++ < 5)
            std::printf("  miss: truth='%s' inferred='%s'\n",
                        r.truth.c_str(), r.inferred.c_str());
    }

    if (cfg.telemetry) {
        const obs::AuditTrail &audit = telemetry.audit;
        auto ctr = [&](const char *name) {
            return std::to_string(
                telemetry.metrics.counter(name).value());
        };
        auto dec = [&](obs::Decision d) {
            return std::to_string(audit.count(d));
        };
        Table funnel({"funnel stage", "count"});
        funnel.addRow({"readings in", ctr("pipeline.readings_in")});
        funnel.addRow({"changes in", ctr("infer.changes_in")});
        funnel.addRow(
            {"  accepted as key",
             dec(obs::Decision::AcceptedKey)});
        funnel.addRow(
            {"  split repaired", dec(obs::Decision::SplitRepaired)});
        funnel.addRow({"  duplication dropped",
                       dec(obs::Decision::DuplicationDrop)});
        funnel.addRow(
            {"  noise rejected", dec(obs::Decision::NoiseRejected)});
        funnel.addRow({"  app-switch suppressed",
                       dec(obs::Decision::SuppressedAppSwitch)});
        funnel.addRow({"discontinuity re-baselines",
                       dec(obs::Decision::DiscontinuityDropped)});
        funnel.addRow({"sampler suspensions",
                       dec(obs::Decision::SamplerSuspended)});
        funnel.addRow({"sampler recoveries",
                       dec(obs::Decision::SamplerRecovered)});
        funnel.print("decision funnel");

        Table lat({"stage", "count", "p50 us", "p90 us", "p99 us",
                   "max us"});
        auto latRow = [&](const std::string &name,
                          const obs::LogHistogram &h) {
            const double us = 1e-3;
            lat.addRow({name, std::to_string(h.count()),
                        Table::num(double(h.p50()) * us, 3),
                        Table::num(double(h.p90()) * us, 3),
                        Table::num(double(h.p99()) * us, 3),
                        Table::num(double(h.max()) * us, 3)});
        };
        for (const auto &[name, h] :
             telemetry.metrics.histograms())
            if (name.rfind("latency.", 0) == 0)
                latRow(name.substr(8), *h);
        latRow("all stages", telemetry.metrics.mergedLatency());
        lat.print("stage latency (host time)");

        // Effective per-classification cost through the batched SIMD
        // path — the number bench/pipeline_throughput gates on, here
        // measured in situ over this campaign's classify lane.
        const auto &hists = telemetry.metrics.histograms();
        if (const auto it = hists.find("latency.attack.classify");
            it != hists.end() && it->second->count() > 0)
            inform("effective classify: %.1f ns/op over %llu "
                   "classifications",
                   it->second->mean(),
                   (unsigned long long)it->second->count());

        if (!metricsOut.empty() &&
            obs::Telemetry::writeFile(metricsOut,
                                      telemetry.metricsJson()))
            inform("telemetry: metrics -> %s", metricsOut.c_str());
        if (!chromeTrace.empty() &&
            obs::Telemetry::writeFile(
                chromeTrace, telemetry.tracer.chromeTraceJson()))
            inform("telemetry: chrome trace -> %s",
                   chromeTrace.c_str());
        if (!auditOut.empty() &&
            obs::Telemetry::writeFile(auditOut, audit.toJsonl()))
            inform("telemetry: audit trail -> %s", auditOut.c_str());
    }
    return 0;
}
