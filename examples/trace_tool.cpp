/**
 * @file
 * Trace capture & replay tool — the src/trace/ subsystem as a CLI.
 *
 *   trace_tool record <out.gpct> [--trials N] [--phone P]
 *              [--keyboard K] [--app A] [--seed N]
 *       Run a live experiment and record it to a trace file.
 *
 *   trace_tool info <trace.gpct | dir>
 *       Print header + record statistics (directories are scanned
 *       as a corpus).
 *
 *   trace_tool verify <trace.gpct>
 *       Validate every frame; exit status 1 on any corruption.
 *
 *   trace_tool replay <trace.gpct>
 *       Re-run the recorded counter stream through the inference
 *       pipeline (training the model for the recorded configuration
 *       if needed) and score it against the recorded ground truth.
 *
 *   trace_tool stats <trace.gpct>
 *       Stream the file once and print per-record-kind counts plus
 *       the inter-reading-interval distribution (works on v1 and v2
 *       files; v2 adds the Fault kind).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <sys/stat.h>

#include "attack/model_store.h"
#include "eval/experiment.h"
#include "obs/log_histogram.h"
#include "trace/trace_corpus.h"
#include "trace/trace_reader.h"
#include "trace/trace_replayer.h"
#include "util/logging.h"
#include "util/table.h"

using namespace gpusc;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s <command> [args]\n"
        "  record <out.gpct> [--trials N] [--phone P]\n"
        "         [--keyboard K] [--app A] [--seed N]\n"
        "                       capture a live session to a trace\n"
        "  info   <file|dir>    print trace/corpus statistics\n"
        "  verify <file>        validate every frame (exit 1 if bad)\n"
        "  replay <file>        replay through the inference pipeline\n"
        "  stats  <file>        per-kind record counts + the\n"
        "                       inter-reading-interval histogram\n",
        argv0);
}

bool
isDirectory(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::string
fmtDuration(SimTime t)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f s", t.ns() / 1e9);
    return buf;
}

void
printStats(const trace::TraceStats &s)
{
    Table table({"metric", "value"});
    table.addRow({"records", std::to_string(s.records)});
    table.addRow({"readings", std::to_string(s.readings)});
    table.addRow({"key presses", std::to_string(s.keyPresses)});
    table.addRow({"backspaces", std::to_string(s.backspaces)});
    table.addRow({"popup shows", std::to_string(s.popupShows)});
    table.addRow({"page switches", std::to_string(s.pageSwitches)});
    table.addRow({"app switches", std::to_string(s.appSwitches)});
    table.addRow({"trials", std::to_string(s.trials)});
    table.addRow({"fault events", std::to_string(s.faults)});
    table.addRow({"duration", fmtDuration(s.duration)});
    table.print("trace stats");
}

int
cmdRecord(int argc, char **argv)
{
    if (argc < 1) {
        std::fprintf(stderr, "record: missing output path\n");
        return 2;
    }
    const std::string out = argv[0];
    eval::ExperimentConfig cfg;
    cfg.recordTracePath = out;
    int trials = 5;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--trials")
            trials = std::atoi(value());
        else if (arg == "--phone")
            cfg.device.phone = value();
        else if (arg == "--keyboard")
            cfg.device.keyboard = value();
        else if (arg == "--app")
            cfg.device.app = value();
        else if (arg == "--seed")
            cfg.seed = std::uint64_t(std::atoll(value()));
        else
            fatal("record: unknown option '%s'", arg.c_str());
    }

    eval::ExperimentRunner runner(cfg, attack::ModelStore::global());
    if (!runner.recorder()) {
        std::fprintf(stderr, "record: cannot open '%s' for writing\n",
                     out.c_str());
        return 1;
    }
    const eval::AccuracyStats stats = runner.runTrials(trials, 8, 16);
    const trace::TraceError err = runner.finishRecording();
    if (err != trace::TraceError::None) {
        std::fprintf(stderr, "recording failed: %s\n",
                     trace::traceErrorString(err));
        return 1;
    }
    std::printf("recorded %d trials to %s (live text accuracy %.0f%%)\n",
                trials, out.c_str(), 100.0 * stats.textAccuracy());
    return 0;
}

int
cmdInfo(const std::string &path)
{
    if (isDirectory(path)) {
        trace::TraceCorpus corpus;
        if (corpus.scanDirectory(path) != trace::TraceError::None)
            return 1;
        std::printf("corpus: %zu traces, %zu rejected\n",
                    corpus.traces().size(), corpus.rejected().size());
        for (const auto &[p, e] : corpus.rejected())
            std::printf("  rejected %s: %s\n", p.c_str(),
                        trace::traceErrorString(e));
        for (const std::string &key : corpus.deviceKeys())
            std::printf("  device %s: %zu traces\n", key.c_str(),
                        corpus.forDevice(key).size());
        printStats(corpus.aggregate());
        return 0;
    }

    trace::TraceCorpus corpus;
    if (corpus.addFile(path) != trace::TraceError::None) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     trace::traceErrorString(
                         corpus.rejected().back().second));
        return 1;
    }
    const trace::TraceInfo &info = corpus.traces().front();
    std::printf("trace   : %s\n", path.c_str());
    std::printf("device  : %s\n", info.header.deviceKey.c_str());
    std::printf("interval: %lld ms\n",
                (long long)info.header.samplingInterval.ns() /
                    1000000ll);
    std::printf("seed    : %llu\n",
                (unsigned long long)info.header.seed);
    printStats(info.stats);
    return 0;
}

int
cmdVerify(const std::string &path)
{
    std::uint64_t records = 0;
    trace::TraceHeader header;
    std::vector<trace::TraceRecord> faults;
    const trace::TraceError err = trace::TraceReader::verifyFile(
        path, &records, &header, &faults);
    if (err != trace::TraceError::None) {
        std::printf("%s: CORRUPT after %llu records: %s\n",
                    path.c_str(), (unsigned long long)records,
                    trace::traceErrorString(err));
        return 1;
    }
    std::printf("%s: OK (v%u, %llu records, device %s)\n",
                path.c_str(), unsigned(header.version),
                (unsigned long long)records,
                header.deviceKey.c_str());
    if (!faults.empty()) {
        std::printf("fault events: %zu\n", faults.size());
        for (const trace::TraceRecord &f : faults)
            std::printf("  %10.3f ms  %-14s detail=%llu\n",
                        f.time.millis(),
                        kgsl::faultKindString(f.fault),
                        (unsigned long long)f.faultDetail);
    }
    return 0;
}

int
cmdReplay(const std::string &path)
{
    // Resolve the model for the recorded configuration: the trace
    // header carries the full DeviceConfig, so an untrained store
    // can train the matching model on the spot.
    trace::TraceHeader header;
    const trace::TraceError verr =
        trace::TraceReader::verifyFile(path, nullptr, &header);
    if (verr != trace::TraceError::None) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     trace::traceErrorString(verr));
        return 1;
    }
    attack::ModelStore &store = attack::ModelStore::global();
    store.getOrTrain(header.device, attack::OfflineTrainer{});

    trace::TraceReplayer replayer(store);
    const trace::TraceError err = replayer.replayFile(path);
    if (err != trace::TraceError::None) {
        std::fprintf(stderr, "replay failed: %s\n",
                     trace::traceErrorString(err));
        return 1;
    }

    std::printf("replayed %llu readings, %zu trials\n",
                (unsigned long long)replayer.readingsReplayed(),
                replayer.trials().size());
    int exact = 0;
    for (const trace::TraceReplayer::Trial &t : replayer.trials()) {
        const bool hit = t.truth == t.inferred;
        exact += hit;
        std::printf("  %s truth='%s' inferred='%s'\n",
                    hit ? " ok " : "MISS", t.truth.c_str(),
                    t.inferred.c_str());
    }
    if (!replayer.trials().empty())
        std::printf("text accuracy: %d/%zu\n", exact,
                    replayer.trials().size());
    return 0;
}

int
cmdStats(const std::string &path)
{
    trace::TraceReader reader;
    const trace::TraceError oerr = reader.open(path);
    if (oerr != trace::TraceError::None) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     trace::traceErrorString(oerr));
        return 1;
    }

    // Per-kind counts, indexed by the on-disk kind tag (1-based,
    // append-only across versions).
    static constexpr const char *kKindNames[] = {
        "reading",     "key press",   "backspace",
        "page switch", "app switch",  "popup show",
        "trial begin", "trial end",   "fault",
    };
    constexpr std::size_t kNumKinds =
        sizeof(kKindNames) / sizeof(kKindNames[0]);
    std::uint64_t counts[kNumKinds] = {};

    // Inter-reading intervals, in microseconds: for a clean capture
    // this is a spike at the sampling interval; wakeup jitter, CPU
    // contention and sampler suspensions show up as spread.
    obs::LogHistogram intervals;
    bool haveLast = false;
    SimTime lastReading;

    trace::TraceRecord rec;
    bool eof = false;
    for (;;) {
        const trace::TraceError err = reader.next(rec, eof);
        if (err != trace::TraceError::None) {
            std::fprintf(stderr,
                         "%s: CORRUPT after %llu records: %s\n",
                         path.c_str(),
                         (unsigned long long)reader.recordCount(),
                         trace::traceErrorString(err));
            return 1;
        }
        if (eof)
            break;
        const std::size_t idx = std::size_t(rec.kind) - 1;
        if (idx < kNumKinds)
            ++counts[idx];
        if (rec.kind == trace::RecordKind::Reading) {
            if (haveLast) {
                const SimTime gap = rec.time - lastReading;
                intervals.add(std::uint64_t(
                    gap.ns() < 0 ? 0 : gap.ns() / 1000));
            }
            haveLast = true;
            lastReading = rec.time;
        }
    }

    std::printf("trace  : %s (v%u, device %s)\n", path.c_str(),
                unsigned(reader.header().version),
                reader.header().deviceKey.c_str());
    Table table({"record kind", "count"});
    for (std::size_t i = 0; i < kNumKinds; ++i)
        table.addRow({kKindNames[i], std::to_string(counts[i])});
    table.addRow({"total", std::to_string(reader.recordCount())});
    table.print("record counts");

    if (!intervals.empty()) {
        Table gaps({"metric", "value"});
        gaps.addRow({"intervals", std::to_string(intervals.count())});
        gaps.addRow({"mean us", Table::num(intervals.mean())});
        gaps.addRow({"min us",
                     std::to_string(intervals.min())});
        gaps.addRow({"p50 us", std::to_string(intervals.p50())});
        gaps.addRow({"p90 us", std::to_string(intervals.p90())});
        gaps.addRow({"p99 us", std::to_string(intervals.p99())});
        gaps.addRow({"max us",
                     std::to_string(intervals.max())});
        gaps.print("inter-reading intervals");
        std::printf("%s", intervals.render().c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(argv[0]);
        return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h") {
        usage(argv[0]);
        return 0;
    }
    if (cmd == "record")
        return cmdRecord(argc - 2, argv + 2);
    if (argc < 3) {
        usage(argv[0]);
        return 2;
    }
    if (cmd == "info")
        return cmdInfo(argv[2]);
    if (cmd == "verify")
        return cmdVerify(argv[2]);
    if (cmd == "replay")
        return cmdReplay(argv[2]);
    if (cmd == "stats")
        return cmdStats(argv[2]);
    usage(argv[0]);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 2;
}
