/**
 * @file
 * Quickstart: steal one password.
 *
 * Builds a simulated OnePlus 8 Pro running Gboard with the Chase login
 * screen in the foreground, trains the offline signature model, starts
 * the unprivileged eavesdropper (which only talks to /dev/kgsl-3d0 via
 * ioctl), types a password with human timing, and prints what the
 * attacker recovered.
 */

#include <cstdio>

#include "android/device.h"
#include "attack/eavesdropper.h"
#include "attack/trainer.h"
#include "util/logging.h"
#include "workload/typist.h"

using namespace gpusc;
using namespace gpusc::sim_literals;

int
main()
{
    // --- Offline Phase: the attacker trains per-key signatures on a
    // device of the same model/configuration they control.
    android::DeviceConfig cfg;
    cfg.phone = "oneplus8pro";
    cfg.keyboard = "gboard";
    cfg.app = "chase";

    inform("offline phase: training signature model...");
    const attack::OfflineTrainer trainer;
    const attack::SignatureModel model = trainer.train(cfg);
    inform("model %s: %zu signatures, %zu bytes, threshold %.4f",
           model.modelKey().c_str(), model.signatures().size(),
           model.byteSize(), model.threshold());

    // --- Online Phase: the victim device.
    android::Device victim(cfg);
    attack::Eavesdropper spy(victim, model);
    victim.boot();
    if (!spy.start())
        fatal("eavesdropper failed to start (errno %d)",
              spy.lastErrno());

    victim.launchTargetApp();
    victim.runFor(1_s);

    // The victim types their password.
    const std::string password = "Hunter2!";
    workload::Typist user(
        victim, workload::TypingModel::forVolunteer(0, 7), 99);
    const SimTime start = victim.eq().now();
    bool done = false;
    user.type(password, 200_ms, [&] { done = true; });
    while (!done)
        victim.runFor(100_ms);
    victim.runFor(1_s);

    const std::string stolen =
        spy.inferredTextBetween(start, victim.eq().now());
    std::printf("\nvictim typed : %s\n", password.c_str());
    std::printf("attacker saw : %s\n", stolen.c_str());
    std::printf("sampler reads: %llu ioctl round trips\n",
                (unsigned long long)spy.sampler().readCount());
    std::printf("inference    : p50=%.3fus p95=%.3fus (per change)\n",
                spy.inferenceLatenciesUs().quantile(0.5),
                spy.inferenceLatenciesUs().quantile(0.95));
    return stolen == password ? 0 : 1;
}
