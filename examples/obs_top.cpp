/**
 * @file
 * obs_top — a top-style console over the live telemetry plane.
 *
 * Two data sources, matching the plane's two sinks:
 *
 *   obs_top --url 127.0.0.1:9464            # scrape a HttpEndpoint
 *   obs_top --file windows.jsonl            # tail the file sink
 *
 * Each refresh re-reads the source and redraws: cumulative counters,
 * latest gauge levels, alert states and (URL mode) per-session
 * health. `--iterations N --interval-ms M` bounds the loop so CI can
 * run one deterministic frame; the default is a single frame.
 *
 * The console is a pure consumer of the exposition formats — it
 * never links against the pipeline, so it can watch a stream_cli or
 * experiment_cli run from a second terminal exactly like a scraper
 * would.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "util/logging.h"
#include "util/table.h"

using namespace gpusc;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s (--url HOST:PORT | --file WINDOWS.jsonl)\n"
        "          [--iterations N] [--interval-ms MS] [--plain]\n"
        "\n"
        "  --url HOST:PORT   scrape a live-plane HTTP endpoint\n"
        "  --file PATH       read a live-plane JSONL window log\n"
        "  --iterations N    frames to draw (default 1; 0 = forever)\n"
        "  --interval-ms MS  delay between frames (default 1000)\n"
        "  --plain           no ANSI clear between frames\n",
        argv0);
}

struct Options
{
    std::string url;
    std::string file;
    long iterations = 1;
    long intervalMs = 1000;
    bool plain = false;
};

/** Minimal HTTP/1.0 GET against a dotted-quad (or localhost) host.
 *  Returns the body, or empty on any failure (reported via warn). */
std::string
httpGet(const std::string &hostPort, const std::string &path)
{
    const std::size_t colon = hostPort.rfind(':');
    if (colon == std::string::npos) {
        warn("obs_top: --url wants HOST:PORT, got '%s'",
             hostPort.c_str());
        return "";
    }
    std::string host = hostPort.substr(0, colon);
    if (host == "localhost")
        host = "127.0.0.1";
    const int port = std::atoi(hostPort.c_str() + colon + 1);

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(std::uint16_t(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        warn("obs_top: cannot parse host '%s'", host.c_str());
        ::close(fd);
        return "";
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        warn("obs_top: cannot connect to %s", hostPort.c_str());
        ::close(fd);
        return "";
    }
    const std::string req = "GET " + path +
                            " HTTP/1.0\r\nHost: " + host +
                            "\r\nConnection: close\r\n\r\n";
    std::size_t sent = 0;
    while (sent < req.size()) {
        const ssize_t n =
            ::send(fd, req.data() + sent, req.size() - sent, 0);
        if (n <= 0)
            break;
        sent += std::size_t(n);
    }
    std::string resp;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        resp.append(buf, std::size_t(n));
    ::close(fd);
    const std::size_t split = resp.find("\r\n\r\n");
    return split == std::string::npos ? std::string()
                                      : resp.substr(split + 4);
}

/** `"key": <number>` lookup inside a JSON blob (flat enough here). */
double
jsonNumber(const std::string &s, const std::string &key,
           double fallback)
{
    const std::string needle = "\"" + key + "\": ";
    const std::size_t at = s.find(needle);
    if (at == std::string::npos)
        return fallback;
    return std::strtod(s.c_str() + at + needle.size(), nullptr);
}

/**
 * Parse one `"name": value, ...` JSON object body (numbers only, no
 * nesting) into @p into, accumulating values per name.
 */
void
accumulateObject(const std::string &line, const std::string &section,
                 std::map<std::string, double> &into)
{
    const std::string open = "\"" + section + "\": {";
    std::size_t at = line.find(open);
    if (at == std::string::npos)
        return;
    at += open.size();
    const std::size_t end = line.find('}', at);
    while (at < end) {
        const std::size_t q0 = line.find('"', at);
        if (q0 == std::string::npos || q0 >= end)
            break;
        const std::size_t q1 = line.find('"', q0 + 1);
        if (q1 == std::string::npos || q1 >= end)
            break;
        const std::string name = line.substr(q0 + 1, q1 - q0 - 1);
        const std::size_t colon = line.find(':', q1);
        if (colon == std::string::npos || colon >= end)
            break;
        into[name] +=
            std::strtod(line.c_str() + colon + 1, nullptr);
        at = line.find(',', colon);
        if (at == std::string::npos || at > end)
            break;
        ++at;
    }
}

std::string
readWholeFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f) {
        warn("obs_top: cannot open '%s'", path.c_str());
        return "";
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

void
printKeyValueTable(const std::map<std::string, double> &values,
                   const char *title, bool integral)
{
    if (values.empty())
        return;
    Table t({"metric", "value"});
    for (const auto &[name, value] : values)
        t.addRow({name, integral
                            ? std::to_string((long long)value)
                            : Table::num(value, 4)});
    t.print(title);
}

/** One frame from the JSONL file sink. */
void
frameFromFile(const Options &opt)
{
    const std::string text = readWholeFile(opt.file);
    std::map<std::string, double> counters, gauges;
    struct Row
    {
        double tMs, wMs, changes, accepted, alerts;
        std::string level;
    };
    std::vector<Row> recent;
    std::uint64_t windows = 0;

    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        ++windows;
        accumulateObject(line, "counters", counters);
        // Gauges are levels, not deltas: keep the latest only.
        std::map<std::string, double> g;
        accumulateObject(line, "gauges", g);
        for (const auto &[name, value] : g)
            gauges[name] = value;

        Row r;
        r.tMs = jsonNumber(line, "t_ms", 0.0);
        r.wMs = jsonNumber(line, "w_ms", 0.0);
        r.changes = jsonNumber(line, "funnel.changes_in", 0.0);
        r.accepted = jsonNumber(line, "funnel.accepted-key", 0.0);
        r.alerts = jsonNumber(line, "alerts_active", 0.0);
        const std::size_t lv = line.find("\"level\": \"");
        r.level = lv == std::string::npos
                      ? "?"
                      : line.substr(lv + 10,
                                    line.find('"', lv + 10) -
                                        (lv + 10));
        recent.push_back(r);
        if (recent.size() > 12)
            recent.erase(recent.begin());
    }

    std::printf("== obs_top: %s (%llu window records) ==\n",
                opt.file.c_str(), (unsigned long long)windows);
    Table wt({"t (ms)", "width", "level", "changes", "accepted",
              "alerts"});
    for (const Row &r : recent)
        wt.addRow({Table::num(r.tMs, 0), Table::num(r.wMs, 0),
                   r.level, Table::num(r.changes, 0),
                   Table::num(r.accepted, 0),
                   Table::num(r.alerts, 0)});
    wt.print("recent windows");
    printKeyValueTable(counters, "cumulative counters (all windows)",
                       true);
    printKeyValueTable(gauges, "latest gauges", false);
}

/** One frame scraped from a live endpoint. */
void
frameFromUrl(const Options &opt)
{
    const std::string prom = httpGet(opt.url, "/metrics");
    const std::string alerts = httpGet(opt.url, "/alerts");
    const std::string sessions = httpGet(opt.url, "/sessions");
    if (prom.empty()) {
        std::printf("== obs_top: %s unreachable or empty ==\n",
                    opt.url.c_str());
        return;
    }

    std::map<std::string, double> counters, gauges;
    std::size_t pos = 0;
    while (pos < prom.size()) {
        std::size_t eol = prom.find('\n', pos);
        if (eol == std::string::npos)
            eol = prom.size();
        const std::string line = prom.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t sp = line.find(' ');
        if (sp == std::string::npos)
            continue;
        const std::string name = line.substr(0, sp);
        const double value =
            std::strtod(line.c_str() + sp + 1, nullptr);
        if (name.size() > 6 &&
            name.compare(name.size() - 6, 6, "_total") == 0)
            counters[name] = value;
        else
            gauges[name] = value;
    }

    std::printf("== obs_top: scraping http://%s ==\n",
                opt.url.c_str());
    printKeyValueTable(counters, "counters", true);
    printKeyValueTable(gauges, "gauges", false);

    if (!alerts.empty()) {
        std::size_t firing = 0, at = 0;
        while ((at = alerts.find("\"firing\": true", at)) !=
               std::string::npos) {
            ++firing;
            at += 14;
        }
        std::printf("alerts firing: %zu\n%s\n", firing,
                    alerts.c_str());
    }
    if (!sessions.empty())
        std::printf("sessions: %s\n", sessions.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--url") {
            opt.url = value();
        } else if (arg == "--file") {
            opt.file = value();
        } else if (arg == "--iterations") {
            opt.iterations = std::atol(value());
        } else if (arg == "--interval-ms") {
            opt.intervalMs = std::atol(value());
        } else if (arg == "--plain") {
            opt.plain = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fatal("unknown option '%s'", arg.c_str());
        }
    }
    if (opt.url.empty() == opt.file.empty()) {
        usage(argv[0]);
        fatal("exactly one of --url / --file is required");
    }

    for (long frame = 0;
         opt.iterations == 0 || frame < opt.iterations; ++frame) {
        if (frame > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opt.intervalMs));
            if (!opt.plain)
                std::printf("\x1b[2J\x1b[H");
        }
        if (!opt.file.empty())
            frameFromFile(opt);
        else
            frameFromUrl(opt);
        std::fflush(stdout);
    }
    return 0;
}
