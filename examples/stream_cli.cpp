/**
 * @file
 * Streaming ingest service CLI — the src/stream/ subsystem end to
 * end.
 *
 *   stream_cli replay <trace.gpct> [--sessions N] [--threads N]
 *              [--policy block|shed-oldest|shed-newest] [--ring N]
 *              [--adapt on|off] [--metrics-out FILE]
 *       Trace-replay ingest: stream the recorded counter readings
 *       through the service. Session 0 is scored against the trace's
 *       ground-truth trials; with --sessions N the same stream is
 *       fanned out to N concurrent sessions and pumped across a
 *       thread pool. Exits 1 if the aggregated audit funnel does not
 *       partition (changes_in == accepted + split + dup + noise +
 *       suppressed) or the shed audit disagrees with the shed
 *       counters, so CI can use this binary as a smoke check.
 *
 *   stream_cli live [--trials N] [--seed N] [--policy ...]
 *              [--ring N] [--sessions N] [--adapt on|off]
 *              [--metrics-out FILE]
 *       Live-sim ingest: run a simulated victim device, tap the live
 *       sampler's reading stream into the service, and compare the
 *       streamed session's inferred text with the live pipeline's
 *       (bit-identical under the lossless Block policy with
 *       adaptation off).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "attack/model_store.h"
#include "eval/experiment.h"
#include "exec/thread_pool.h"
#include "obs/live/live_plane.h"
#include "stream/ingest_service.h"
#include "trace/trace_reader.h"
#include "util/logging.h"

using namespace gpusc;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s <mode> [options]\n"
        "  replay <trace.gpct>   stream a recorded trace through the\n"
        "                        ingest service (session 0 is scored)\n"
        "  live                  tap a simulated device's sampler\n"
        "                        stream into the ingest service\n"
        "options:\n"
        "  --sessions N          concurrent sessions fed the stream\n"
        "  --threads N           pump worker threads (replay fan-out)\n"
        "  --policy P            block | shed-oldest | shed-newest\n"
        "  --ring N              per-session ingest queue depth\n"
        "  --batch N             readings per drain batch (>=1)\n"
        "  --adapt on|off        online template adaptation\n"
        "  --trials N            credential trials (live mode)\n"
        "  --seed N              simulation seed (live mode)\n"
        "  --metrics-out FILE    write aggregated metrics JSON\n"
        "  --live-metrics SINK   live telemetry plane: an integer is\n"
        "                        an HTTP port (0 = ephemeral), else a\n"
        "                        JSONL window-record path (plus a\n"
        "                        final SINK.prom Prometheus text)\n"
        "  --slo FILE            SLO watchdog rules (one per line,\n"
        "                        key=value fields; see DESIGN.md)\n"
        "  --serve-ms N          keep the endpoint alive N ms after\n"
        "                        the run so scrapers can connect\n",
        argv0);
}

struct Options
{
    std::string tracePath;
    std::size_t sessions = 1;
    std::size_t threads = 1;
    stream::IngestService::Backpressure policy =
        stream::IngestService::Backpressure::Block;
    std::size_t ringCapacity = 256;
    std::size_t batch = stream::SessionConfig{}.drainBatch;
    bool adapt = false;
    int trials = 3;
    std::uint64_t seed = 1;
    std::string metricsOut;
    std::string liveMetrics;
    std::string sloPath;
    long serveMs = 0;
};

Options
parseOptions(int argc, char **argv)
{
    Options opt;
    int i = 0;
    const auto value = [&]() -> const char * {
        if (i + 1 >= argc)
            fatal("missing value for %s", argv[i]);
        return argv[++i];
    };
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--sessions")
            opt.sessions = std::size_t(std::atoll(value()));
        else if (arg == "--threads")
            opt.threads = std::size_t(std::atoll(value()));
        else if (arg == "--ring")
            opt.ringCapacity = std::size_t(std::atoll(value()));
        else if (arg == "--batch")
            opt.batch = std::size_t(std::atoll(value()));
        else if (arg == "--trials")
            opt.trials = std::atoi(value());
        else if (arg == "--seed")
            opt.seed = std::uint64_t(std::atoll(value()));
        else if (arg == "--metrics-out")
            opt.metricsOut = value();
        else if (arg == "--live-metrics")
            opt.liveMetrics = value();
        else if (arg == "--slo")
            opt.sloPath = value();
        else if (arg == "--serve-ms")
            opt.serveMs = std::atol(value());
        else if (arg == "--adapt") {
            const std::string v = value();
            opt.adapt = v == "on" || v == "1" || v == "true";
        } else if (arg == "--policy") {
            const std::string v = value();
            if (v == "block")
                opt.policy =
                    stream::IngestService::Backpressure::Block;
            else if (v == "shed-oldest")
                opt.policy =
                    stream::IngestService::Backpressure::ShedOldest;
            else if (v == "shed-newest")
                opt.policy =
                    stream::IngestService::Backpressure::ShedNewest;
            else
                fatal("unknown backpressure policy '%s'", v.c_str());
        } else
            fatal("unknown option '%s'", arg.c_str());
    }
    if (opt.sessions < 1)
        opt.sessions = 1;
    return opt;
}

stream::IngestService::Params
serviceParams(const Options &opt)
{
    stream::IngestService::Params p;
    p.backpressure = opt.policy;
    p.sessions.session.ringCapacity = opt.ringCapacity;
    p.sessions.session.drainBatch = opt.batch > 0 ? opt.batch : 1;
    p.sessions.session.adaptation = opt.adapt;
    return p;
}

bool
isInteger(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (c < '0' || c > '9')
            return false;
    return true;
}

std::string
readTextFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        fatal("cannot open '%s'", path.c_str());
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

/** Wire --live-metrics / --slo into the service's telemetry plane. */
void
maybeEnableLivePlane(stream::IngestService &svc, const Options &opt)
{
    if (opt.liveMetrics.empty() && opt.sloPath.empty())
        return;
    obs::live::LiveConfig cfg;
    if (isInteger(opt.liveMetrics))
        cfg.httpPort = std::atoi(opt.liveMetrics.c_str());
    else
        cfg.jsonlPath = opt.liveMetrics;
    if (!opt.sloPath.empty()) {
        obs::live::SloParseError perr;
        cfg.rules = obs::live::SloEngine::parseRules(
            readTextFile(opt.sloPath), &perr);
        if (!perr.message.empty())
            fatal("--slo %s:%zu: %s", opt.sloPath.c_str(), perr.line,
                  perr.message.c_str());
    }
    obs::live::LivePlane &plane = svc.enableLivePlane(std::move(cfg));
    if (const obs::live::HttpEndpoint *ep = plane.endpoint())
        std::printf("live endpoint: http://127.0.0.1:%u/metrics\n",
                    unsigned(ep->port()));
}

/**
 * Windows-vs-snapshot reconciliation: the sum of every retained
 * window's counter deltas must equal the end-of-run cumulative value
 * for each service counter, and the synthetic funnel.* counters must
 * equal the aggregated audit counts — no delta lost to roll-up or
 * window boundaries. @return true iff every counter reconciles.
 */
bool
reconcileLivePlane(const stream::IngestService &svc,
                   const obs::AuditTrail &audit)
{
    const obs::live::LivePlane *plane = svc.livePlane();
    if (plane == nullptr)
        return true;
    const std::map<std::string, std::uint64_t> totals =
        plane->series().totalCounterDeltas();
    const auto windowSum = [&](const std::string &name) {
        const auto it = totals.find(name);
        return it == totals.end() ? std::uint64_t(0) : it->second;
    };
    bool ok = true;
    const auto &counters = svc.serviceTelemetry().metrics.counters();
    for (const auto &[name, c] : counters) {
        if (windowSum(name) != c->value()) {
            ok = false;
            std::printf("  window sum for %s: %llu != snapshot "
                        "%llu\n",
                        name.c_str(),
                        (unsigned long long)windowSum(name),
                        (unsigned long long)c->value());
        }
    }
    for (std::size_t d = 0; d < obs::kNumDecisions; ++d) {
        const obs::Decision dec = obs::Decision(d);
        // Alert transitions recorded while the *final* window closed
        // land after the last observe by construction; they are
        // audited but have no window to reconcile against.
        if (dec == obs::Decision::AlertFired ||
            dec == obs::Decision::AlertResolved)
            continue;
        const std::string name =
            std::string("funnel.") + obs::decisionName(dec);
        if (windowSum(name) != audit.count(dec)) {
            ok = false;
            std::printf("  window sum for %s: %llu != audited "
                        "%llu\n",
                        name.c_str(),
                        (unsigned long long)windowSum(name),
                        (unsigned long long)audit.count(dec));
        }
    }
    if (windowSum("funnel.changes_in") != audit.changesAudited()) {
        ok = false;
        std::printf("  window sum for funnel.changes_in: %llu != "
                    "audited %llu\n",
                    (unsigned long long)windowSum("funnel.changes_in"),
                    (unsigned long long)audit.changesAudited());
    }
    std::printf("window reconciliation: %s (%llu windows closed, "
                "%llu fine->coarse, %llu coarse->archive)\n",
                ok ? "OK" : "VIOLATED",
                (unsigned long long)plane->series().windowsClosed(),
                (unsigned long long)plane->series().rollupsFine(),
                (unsigned long long)plane->series().rollupsCoarse());
    return ok;
}

/** Hold the endpoint open post-run so external scrapers (CI curl)
 *  can connect; sim results are already final by this point. */
void
maybeServe(const stream::IngestService &svc, const Options &opt)
{
    const obs::live::LivePlane *plane = svc.livePlane();
    if (opt.serveMs <= 0 || plane == nullptr ||
        plane->endpoint() == nullptr)
        return;
    std::printf("serving http://127.0.0.1:%u for %ld ms...\n",
                unsigned(plane->endpoint()->port()), opt.serveMs);
    std::fflush(stdout);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opt.serveMs));
}

const char *
policyName(stream::IngestService::Backpressure p)
{
    switch (p) {
      case stream::IngestService::Backpressure::Block:
        return "block";
      case stream::IngestService::Backpressure::ShedOldest:
        return "shed-oldest";
      case stream::IngestService::Backpressure::ShedNewest:
        return "shed-newest";
    }
    return "?";
}

/**
 * Print service stats, validate the aggregated change funnel and the
 * shed audit, and optionally export the merged metrics JSON.
 * @return true iff both identities hold.
 */
bool
reportAndCheck(stream::IngestService &svc, const Options &opt)
{
    std::printf("sessions   : %zu held, %llu evicted\n",
                svc.sessions().size(),
                (unsigned long long)svc.sessions().sessionsEvicted());
    std::printf("memory     : %zu bytes of %zu budget\n",
                svc.sessions().memoryUseBytes(),
                svc.sessions().params().memoryBudgetBytes);
    std::printf("readings   : %llu offered, %llu shed-oldest, "
                "%llu shed-newest, %llu block-drains\n",
                (unsigned long long)svc.readingsOffered(),
                (unsigned long long)svc.readingsShedOldest(),
                (unsigned long long)svc.readingsShedNewest(),
                (unsigned long long)svc.blockDrains());

    // Close the live plane's open window before aggregating, so the
    // windowed totals and the snapshot describe the same final state.
    svc.finishLivePlane();

    obs::Telemetry agg;
    svc.aggregateTelemetry(agg);
    std::printf("funnel     : %s\n", agg.audit.funnelJson().c_str());

    // Effective classify cost across every session's batched path
    // (batching changes this number, never the inference results).
    const auto &hists = agg.metrics.histograms();
    if (const auto it = hists.find("latency.attack.classify");
        it != hists.end() && it->second->count() > 0)
        std::printf("classify   : %.1f ns/op effective over %llu "
                    "ops (drain batch %zu)\n",
                    it->second->mean(),
                    (unsigned long long)it->second->count(),
                    opt.batch > 0 ? opt.batch : 1);

    const obs::AuditTrail &audit = agg.audit;
    const std::uint64_t parts =
        audit.count(obs::Decision::AcceptedKey) +
        audit.count(obs::Decision::SplitRepaired) +
        audit.count(obs::Decision::DuplicationDrop) +
        audit.count(obs::Decision::NoiseRejected) +
        audit.count(obs::Decision::SuppressedAppSwitch);
    const bool funnelOk = audit.changesAudited() == parts;
    std::printf("funnel identity: %s (changes_in=%llu, parts=%llu)\n",
                funnelOk ? "OK" : "VIOLATED",
                (unsigned long long)audit.changesAudited(),
                (unsigned long long)parts);

    const std::uint64_t shedAudited =
        audit.count(obs::Decision::ShedOldestDrop) +
        audit.count(obs::Decision::ShedNewestDrop);
    const std::uint64_t shedCounted =
        svc.readingsShedOldest() + svc.readingsShedNewest();
    const bool shedsOk = shedAudited == shedCounted;
    if (!shedsOk)
        std::printf("shed audit MISMATCH: audited %llu, counted "
                    "%llu\n",
                    (unsigned long long)shedAudited,
                    (unsigned long long)shedCounted);

    const bool reconOk = reconcileLivePlane(svc, audit);
    if (const obs::live::LivePlane *plane = svc.livePlane())
        std::printf("alerts     : %s\n", plane->slo().toJson().c_str());

    if (!opt.metricsOut.empty())
        obs::Telemetry::writeFile(opt.metricsOut, agg.metricsJson());
    return funnelOk && shedsOk && reconOk;
}

int
cmdReplay(const Options &opt)
{
    // The trace header carries the full device configuration, so an
    // untrained store can train the matching model on the spot.
    trace::TraceHeader header;
    const trace::TraceError verr =
        trace::TraceReader::verifyFile(opt.tracePath, nullptr,
                                       &header);
    if (verr != trace::TraceError::None) {
        std::fprintf(stderr, "%s: %s\n", opt.tracePath.c_str(),
                     trace::traceErrorString(verr));
        return 1;
    }
    attack::ModelStore &store = attack::ModelStore::global();
    const attack::SignatureModel &model =
        store.getOrTrain(header.device, attack::OfflineTrainer{});

    stream::IngestService svc(model, serviceParams(opt));
    maybeEnableLivePlane(svc, opt);
    std::printf("ingesting %s (policy %s, ring %zu, batch %zu, "
                "adapt %s)\n",
                opt.tracePath.c_str(), policyName(opt.policy),
                opt.ringCapacity, opt.batch > 0 ? opt.batch : 1,
                opt.adapt ? "on" : "off");

    // Session 0 takes the trace through the scored path.
    std::vector<stream::IngestService::Trial> trials;
    const trace::TraceError err =
        svc.ingestTraceFile(opt.tracePath, 0, &trials);
    if (err != trace::TraceError::None) {
        std::fprintf(stderr, "ingest failed: %s\n",
                     trace::traceErrorString(err));
        return 1;
    }
    int exact = 0;
    for (const stream::IngestService::Trial &t : trials) {
        const bool hit = t.truth == t.inferred;
        exact += hit;
        std::printf("  %s truth='%s' inferred='%s'\n",
                    hit ? " ok " : "MISS", t.truth.c_str(),
                    t.inferred.c_str());
    }
    if (!trials.empty())
        std::printf("text accuracy: %d/%zu\n", exact, trials.size());

    // Fan the same stream out to more sessions and pump across the
    // pool — the multiplexing path.
    if (opt.sessions > 1) {
        std::vector<attack::Reading> readings;
        {
            trace::TraceReader reader;
            if (reader.open(opt.tracePath) !=
                trace::TraceError::None) {
                std::fprintf(stderr, "reopen failed\n");
                return 1;
            }
            trace::TraceRecord rec;
            bool eof = false;
            while (reader.next(rec, eof) ==
                       trace::TraceError::None &&
                   !eof)
                if (rec.kind == trace::RecordKind::Reading)
                    readings.push_back(rec.reading);
        }
        exec::ThreadPool pool(opt.threads);
        std::size_t fed = 0;
        for (const attack::Reading &r : readings) {
            for (stream::SessionId sid = 1; sid < opt.sessions;
                 ++sid)
                svc.offer(sid, r);
            if (++fed % 64 == 0)
                svc.pump(pool);
        }
        svc.pump(pool);
        std::printf("fanned out to %zu sessions over %zu threads\n",
                    opt.sessions, pool.size());
    }

    const bool ok = reportAndCheck(svc, opt);
    maybeServe(svc, opt);
    return ok ? 0 : 1;
}

int
cmdLive(const Options &opt)
{
    eval::ExperimentConfig cfg;
    cfg.seed = opt.seed;
    attack::ModelStore store;
    eval::ExperimentRunner runner(cfg, store);

    stream::IngestService svc(runner.model(), serviceParams(opt));
    maybeEnableLivePlane(svc, opt);
    // The sampler tap sees exactly the reading stream the live
    // pipeline consumes; the service ingests the same stream into
    // its own detached sessions.
    runner.eavesdropper().setReadingTap(
        [&](const attack::Reading &r) {
            for (stream::SessionId sid = 0; sid < opt.sessions;
                 ++sid)
                svc.offer(sid, r);
        });

    std::printf("live-sim ingest: %d trials, %zu sessions, policy "
                "%s, adapt %s\n",
                opt.trials, opt.sessions, policyName(opt.policy),
                opt.adapt ? "on" : "off");
    const eval::AccuracyStats live =
        runner.runTrials(opt.trials, 8, 12);
    svc.pump();

    const stream::Session *streamed = svc.sessions().find(0);
    if (!streamed) {
        std::fprintf(stderr, "no streamed session materialised\n");
        return 1;
    }
    const std::string streamedText =
        streamed->eavesdropper().inferredText();
    const std::string liveText =
        runner.eavesdropper().inferredText();
    const bool match = streamedText == liveText;
    std::printf("live text accuracy : %.0f%% over %zu trials\n",
                100.0 * live.textAccuracy(), live.trials());
    std::printf("streamed == live   : %s\n",
                match ? "yes (bit-identical)" : "NO");
    const bool lossless =
        opt.policy == stream::IngestService::Backpressure::Block &&
        !opt.adapt;
    if (!lossless)
        std::printf("  (divergence is expected with adaptation or "
                    "lossy backpressure)\n");

    const bool checksOk = reportAndCheck(svc, opt);
    maybeServe(svc, opt);
    return checksOk && (match || !lossless) ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(argv[0]);
        return 2;
    }
    const std::string mode = argv[1];
    if (mode == "--help" || mode == "-h") {
        usage(argv[0]);
        return 0;
    }
    if (mode == "replay") {
        if (argc < 3 || argv[2][0] == '-') {
            usage(argv[0]);
            return 2;
        }
        Options opt = parseOptions(argc - 3, argv + 3);
        opt.tracePath = argv[2];
        return cmdReplay(opt);
    }
    if (mode == "live")
        return cmdLive(parseOptions(argc - 2, argv + 2));
    usage(argv[0]);
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 2;
}
