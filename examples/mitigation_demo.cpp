/**
 * @file
 * Mitigations in action (paper §9): the same attack is pointed at
 * three defended devices — one with key-press popups disabled, one
 * with SELinux RBAC on the perf-counter ioctls, and one running an
 * animated login screen — and at an undefended control.
 */

#include <cstdio>

#include "attack/eavesdropper.h"
#include "attack/model_store.h"
#include "attack/trainer.h"
#include "kgsl/policy.h"
#include "util/logging.h"
#include "workload/typist.h"

using namespace gpusc;
using namespace gpusc::sim_literals;

namespace {

/** Type @p secret on @p dev while @p spy listens; return the loot. */
std::string
runVictim(android::Device &dev, attack::Eavesdropper &spy,
          const std::string &secret)
{
    dev.boot();
    const bool started = spy.start();
    dev.launchTargetApp();
    if (!started)
        return "<no counter access (EPERM)>";
    dev.runFor(1_s);
    workload::Typist user(dev,
                          workload::TypingModel::forVolunteer(1, 3), 9);
    const SimTime t0 = dev.eq().now();
    bool done = false;
    user.type(secret, 200_ms, [&] { done = true; });
    while (!done)
        dev.runFor(100_ms);
    dev.runFor(1_s);
    std::string loot = spy.inferredTextBetween(t0, dev.eq().now());
    return loot.empty() ? "<nothing>" : loot;
}

} // namespace

int
main()
{
    setVerbose(false);
    const std::string secret = "Tr0ub4dor&3";
    const attack::OfflineTrainer trainer;

    std::printf("victim's password everywhere: %s\n\n", secret.c_str());

    // Control: stock device.
    {
        android::DeviceConfig cfg;
        const auto &model =
            attack::ModelStore::global().getOrTrain(cfg, trainer);
        android::Device dev(cfg);
        attack::Eavesdropper spy(dev, model);
        std::printf("stock Android           : %s\n",
                    runVictim(dev, spy, secret).c_str());
    }

    // §9.1 popups disabled by the user.
    {
        android::DeviceConfig cfg;
        cfg.popupsDisabled = true;
        android::DeviceConfig trainCfg; // attacker trained with popups
        const auto &model =
            attack::ModelStore::global().getOrTrain(trainCfg, trainer);
        android::Device dev(cfg);
        attack::Eavesdropper spy(dev, model);
        std::printf("popups disabled (9.1)   : %s\n",
                    runVictim(dev, spy, secret).c_str());
    }

    // §9.2 SELinux RBAC on the perf-counter ioctls.
    {
        android::DeviceConfig cfg;
        const auto &model =
            attack::ModelStore::global().getOrTrain(cfg, trainer);
        android::Device dev(cfg);
        static const kgsl::RbacPolicy rbac;
        dev.setSecurityPolicy(rbac);
        attack::Eavesdropper spy(dev, model);
        std::printf("SELinux RBAC (9.2)      : %s\n",
                    runVictim(dev, spy, secret).c_str());
    }

    // §9.3 animated login screen (PNC).
    {
        android::DeviceConfig cfg;
        cfg.app = "pnc";
        const auto &model =
            attack::ModelStore::global().getOrTrain(cfg, trainer);
        android::Device dev(cfg);
        attack::Eavesdropper spy(dev, model);
        std::printf("animated login (9.3)    : %s\n",
                    runVictim(dev, spy, secret).c_str());
    }

    std::printf("\nOnly access control stops the attack outright; "
                "popup disabling still leaks the input length, and "
                "obfuscation degrades rather than prevents.\n");
    return 0;
}
