/**
 * @file
 * Regression tests pinning the optimised classifier hot paths
 * (bounded-heap KNN with norm pruning, early-exit NearestCentroid,
 * flattened RandomForest, early-exit SignatureModel::classify) to
 * straightforward reference implementations of the code they
 * replaced. The optimisations only skip work that provably cannot
 * change the answer, so every prediction — including tie-breaks on
 * exactly equal distances — must match bit for bit.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "attack/signature.h"
#include "ml/knn.h"
#include "ml/naive_bayes.h"
#include "ml/nearest_centroid.h"
#include "ml/random_forest.h"
#include "simd/kernels.h"
#include "util/rng.h"

namespace gpusc::ml {
namespace {

/** The old Knn::predict: materialise every distance, partial-sort,
 *  vote over an ordered map with strict-> tie-break. */
int
refKnnPredict(const Dataset &train, std::size_t k,
              std::span<const double> q)
{
    std::vector<std::pair<double, int>> dists;
    dists.reserve(train.size());
    for (std::size_t i = 0; i < train.size(); ++i) {
        double s = 0.0;
        for (std::size_t d = 0; d < q.size(); ++d) {
            const double diff = q[d] - train.x[i][d];
            s += diff * diff;
        }
        dists.emplace_back(std::sqrt(s), train.y[i]);
    }
    const std::size_t kk = std::min(k, dists.size());
    std::partial_sort(dists.begin(),
                      dists.begin() + std::ptrdiff_t(kk),
                      dists.end());
    std::map<int, std::size_t> votes;
    for (std::size_t i = 0; i < kk; ++i)
        ++votes[dists[i].second];
    int best = dists[0].second;
    std::size_t bestVotes = 0;
    for (std::size_t i = 0; i < kk; ++i) {
        const int label = dists[i].second;
        if (votes[label] > bestVotes) {
            bestVotes = votes[label];
            best = label;
        }
    }
    return best;
}

/** The old NearestCentroid::match: full sqrt distance per centroid,
 *  strict-< winner. */
NearestCentroid::Match
refCentroidMatch(const FeatureMatrix &centroids,
                 const std::vector<int> &labels,
                 std::span<const double> q)
{
    NearestCentroid::Match best;
    best.distance = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < centroids.rows(); ++c) {
        double s = 0.0;
        for (std::size_t d = 0; d < q.size(); ++d) {
            const double diff = q[d] - centroids[c][d];
            s += diff * diff;
        }
        const double dist = std::sqrt(s);
        if (dist < best.distance) {
            best.distance = dist;
            best.label = labels[c];
        }
    }
    return best;
}

/** Vote over per-tree predictions the way the old ordered-map loop
 *  did (smallest label wins ties). */
int
refForestVote(const RandomForest &forest, const FeatureVec &q)
{
    std::map<int, std::size_t> votes;
    for (const auto &tree : forest.trees())
        ++votes[tree->predict(q)];
    int best = 0;
    std::size_t bestVotes = 0;
    for (const auto &[label, n] : votes) {
        if (n > bestVotes) {
            bestVotes = n;
            best = label;
        }
    }
    return best;
}

/** Continuous-feature dataset (generic position). */
Dataset
randomDataset(Rng &rng, std::size_t n, std::size_t dims, int classes)
{
    Dataset data;
    for (std::size_t i = 0; i < n; ++i) {
        FeatureVec v(dims);
        const int label = int(rng.uniformInt(0, classes - 1));
        for (double &x : v)
            x = rng.uniform(-4.0, 4.0) + label;
        data.add(std::move(v), label);
    }
    return data;
}

/** Small-integer features: duplicate points and exactly equal
 *  distances are common, stressing the tie-break paths. */
Dataset
integerDataset(Rng &rng, std::size_t n, std::size_t dims, int classes)
{
    Dataset data;
    for (std::size_t i = 0; i < n; ++i) {
        FeatureVec v(dims);
        for (double &x : v)
            x = double(rng.uniformInt(0, 2));
        data.add(std::move(v), int(rng.uniformInt(0, classes - 1)));
    }
    return data;
}

FeatureVec
randomQuery(Rng &rng, std::size_t dims, bool integer)
{
    FeatureVec q(dims);
    for (double &x : q)
        x = integer ? double(rng.uniformInt(0, 2))
                    : rng.uniform(-5.0, 5.0);
    return q;
}

TEST(KnnRegressionTest, MatchesFullSortReference)
{
    Rng rng(90210);
    for (const bool integer : {false, true}) {
        const Dataset data =
            integer ? integerDataset(rng, 60, 4, 4)
                    : randomDataset(rng, 60, 6, 5);
        for (const std::size_t k : {1u, 3u, 5u, 100u}) {
            Knn knn(k);
            knn.fit(data);
            for (int t = 0; t < 80; ++t) {
                const FeatureVec q =
                    randomQuery(rng, data.dims(), integer);
                EXPECT_EQ(knn.predict(q),
                          refKnnPredict(data, k, q))
                    << "k=" << k << " integer=" << integer
                    << " query " << t;
            }
        }
    }
}

TEST(KnnRegressionTest, HandlesTrainingPointsAsQueries)
{
    // Zero distances exercise the earliest possible early-exit.
    Rng rng(90211);
    const Dataset data = integerDataset(rng, 40, 3, 3);
    Knn knn(3);
    knn.fit(data);
    for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_EQ(knn.predict(data.x[i]),
                  refKnnPredict(data, 3, data.x[i]))
            << "training point " << i;
}

TEST(NearestCentroidRegressionTest, MatchesNaiveReference)
{
    Rng rng(90212);
    for (const bool integer : {false, true}) {
        const Dataset data =
            integer ? integerDataset(rng, 50, 4, 6)
                    : randomDataset(rng, 50, 6, 6);
        NearestCentroid nc;
        nc.fit(data);
        for (int t = 0; t < 100; ++t) {
            const FeatureVec q =
                randomQuery(rng, data.dims(), integer);
            const NearestCentroid::Match got = nc.match(q);
            const NearestCentroid::Match want =
                refCentroidMatch(nc.centroids(), nc.labels(), q);
            EXPECT_EQ(got.label, want.label) << "query " << t;
            EXPECT_EQ(got.distance, want.distance) << "query " << t;
        }
    }
}

TEST(NearestCentroidRegressionTest, LoadRebuildsThePrunedPath)
{
    Rng rng(90213);
    const Dataset data = randomDataset(rng, 30, 5, 4);
    NearestCentroid fitted;
    fitted.fit(data);

    NearestCentroid loaded;
    loaded.load(fitted.centroids(), fitted.labels());
    for (int t = 0; t < 50; ++t) {
        const FeatureVec q = randomQuery(rng, data.dims(), false);
        EXPECT_EQ(loaded.match(q).label, fitted.match(q).label);
        EXPECT_EQ(loaded.match(q).distance, fitted.match(q).distance);
    }
}

TEST(RandomForestRegressionTest, FlatWalkMatchesPerTreeVote)
{
    Rng rng(90214);
    const Dataset data = randomDataset(rng, 80, 5, 4);
    RandomForest forest;
    forest.fit(data);
    ASSERT_FALSE(forest.trees().empty());
    for (int t = 0; t < 100; ++t) {
        const FeatureVec q = randomQuery(rng, data.dims(), false);
        EXPECT_EQ(forest.predict(q), refForestVote(forest, q))
            << "query " << t;
    }
}

TEST(SignatureRegressionTest, ClassifyMatchesNaiveScan)
{
    using attack::LabelSignature;
    using attack::SignatureModel;

    Rng rng(90215);
    SignatureModel model;
    std::array<double, gpu::kNumSelectedCounters> scale{};
    for (double &s : scale)
        s = rng.uniform(0.001, 0.01);
    model.setScale(scale);
    for (int i = 0; i < 40; ++i) {
        LabelSignature sig;
        sig.label = std::string(1, char('a' + i % 26));
        for (std::int64_t &v : sig.centroid)
            v = rng.uniformInt(0, 400);
        model.addSignature(sig);
    }

    for (int t = 0; t < 200; ++t) {
        gpu::CounterVec delta{};
        for (std::int64_t &v : delta)
            v = rng.uniformInt(0, 400);

        // Naive scan: full scaled distance per signature, strict <.
        const LabelSignature *wantSig = nullptr;
        double wantDist = std::numeric_limits<double>::infinity();
        for (const LabelSignature &sig : model.signatures()) {
            double s = 0.0;
            for (std::size_t d = 0; d < delta.size(); ++d) {
                const double diff =
                    double(delta[d] - sig.centroid[d]) * scale[d];
                s += diff * diff;
            }
            if (std::sqrt(s) < wantDist) {
                wantDist = std::sqrt(s);
                wantSig = &sig;
            }
        }

        const SignatureModel::Match got = model.classify(delta);
        EXPECT_EQ(got.sig, wantSig) << "query " << t;
        EXPECT_EQ(got.distance, wantDist) << "query " << t;
    }
}

/** Pin one SIMD backend for a scope; restores the previous on exit. */
class BackendGuard
{
  public:
    explicit BackendGuard(simd::Backend b)
        : prev_(simd::activeBackend()), ok_(simd::forceBackend(b))
    {
    }
    ~BackendGuard() { simd::forceBackend(prev_); }
    BackendGuard(const BackendGuard &) = delete;
    BackendGuard &operator=(const BackendGuard &) = delete;
    bool ok() const { return ok_; }

  private:
    simd::Backend prev_;
    bool ok_;
};

std::vector<simd::Backend>
availableBackends()
{
    std::vector<simd::Backend> v;
    for (const simd::Backend b :
         {simd::Backend::Scalar, simd::Backend::Avx2,
          simd::Backend::Neon})
        if (simd::backendAvailable(b))
            v.push_back(b);
    return v;
}

/** A seeded SignatureModel with blink variants (robust path live). */
attack::SignatureModel
randomSignatureModel(Rng &rng, int classes)
{
    attack::SignatureModel model;
    std::array<double, gpu::kNumSelectedCounters> scale{};
    for (double &s : scale)
        s = rng.uniform(0.001, 0.01);
    model.setScale(scale);
    model.setThreshold(1.5);
    for (int i = 0; i < classes; ++i) {
        attack::LabelSignature sig;
        sig.label = std::string(1, char('a' + i % 26));
        for (std::int64_t &v : sig.centroid)
            v = rng.uniformInt(0, 400);
        model.addSignature(sig);
    }
    std::vector<gpu::CounterVec> blinks(2);
    for (gpu::CounterVec &b : blinks)
        for (std::int64_t &v : b)
            v = rng.uniformInt(0, 40);
    model.setBlinkVariants(std::move(blinks));
    return model;
}

TEST(BatchConformanceTest, PredictBatchMatchesLoopedPredict)
{
    Rng rng(90216);
    const Dataset data = randomDataset(rng, 80, 5, 4);
    FeatureMatrix queries;
    for (int t = 0; t < 64; ++t)
        queries.addRow(randomQuery(rng, data.dims(), false));

    std::vector<std::unique_ptr<Classifier>> classifiers;
    classifiers.push_back(std::make_unique<Knn>(3));
    classifiers.push_back(std::make_unique<NearestCentroid>());
    classifiers.push_back(std::make_unique<RandomForest>());
    classifiers.push_back(std::make_unique<GaussianNaiveBayes>());
    for (const auto &c : classifiers) {
        c->fit(data);
        std::vector<int> batch(queries.rows());
        c->predictBatch(queries, batch);
        for (std::size_t i = 0; i < queries.rows(); ++i)
            EXPECT_EQ(batch[i], c->predict(queries[i]))
                << c->name() << " query " << i;

        // Degenerate batches: empty and single-row.
        const FeatureMatrix none;
        std::vector<int> noOut;
        c->predictBatch(none, noOut);
        EXPECT_TRUE(noOut.empty()) << c->name();

        FeatureMatrix one;
        one.addRow(queries[0]);
        std::vector<int> oneOut(1, -2);
        c->predictBatch(one, oneOut);
        EXPECT_EQ(oneOut[0], c->predict(queries[0])) << c->name();
    }
}

TEST(BatchConformanceTest, SignatureClassifyBatchMatchesSingle)
{
    Rng rng(90217);
    const attack::SignatureModel model = randomSignatureModel(rng, 40);

    std::vector<gpu::CounterVec> deltas(96);
    for (gpu::CounterVec &d : deltas)
        for (std::int64_t &v : d)
            v = rng.uniformInt(0, 400);

    std::vector<attack::SignatureModel::Match> batch(deltas.size());
    model.classifyBatch(deltas, batch);
    for (std::size_t i = 0; i < deltas.size(); ++i) {
        const attack::SignatureModel::Match one =
            model.classify(deltas[i]);
        EXPECT_EQ(batch[i].sig, one.sig) << "query " << i;
        EXPECT_EQ(batch[i].distance, one.distance) << "query " << i;
    }

    model.classifyRobustBatch(deltas, batch);
    for (std::size_t i = 0; i < deltas.size(); ++i) {
        const attack::SignatureModel::Match one =
            model.classifyRobust(deltas[i]);
        EXPECT_EQ(batch[i].sig, one.sig) << "robust query " << i;
        EXPECT_EQ(batch[i].distance, one.distance)
            << "robust query " << i;
    }

    // Empty batch is a no-op.
    model.classifyBatch({}, {});
    model.classifyRobustBatch({}, {});
}

TEST(BackendConformanceTest, CentroidMatchesIdenticalAcrossBackends)
{
    Rng rng(90218);
    // Odd dims and dims below the vector width stress the padded
    // panel lanes and the block-exit tails.
    for (const std::size_t dims : {1u, 2u, 3u, 5u, 7u, 11u, 16u}) {
        const Dataset data =
            randomDataset(rng, 30, dims, int(dims) + 2);
        NearestCentroid nc;
        nc.fit(data);
        std::vector<FeatureVec> queries;
        for (int t = 0; t < 40; ++t)
            queries.push_back(randomQuery(rng, dims, false));

        // Scalar is the pinned bit-exactness anchor.
        std::vector<NearestCentroid::Match> want;
        {
            const BackendGuard guard(simd::Backend::Scalar);
            ASSERT_TRUE(guard.ok());
            for (const FeatureVec &q : queries)
                want.push_back(nc.match(q));
        }
        for (const simd::Backend b : availableBackends()) {
            const BackendGuard guard(b);
            ASSERT_TRUE(guard.ok());
            for (std::size_t i = 0; i < queries.size(); ++i) {
                const NearestCentroid::Match got =
                    nc.match(queries[i]);
                EXPECT_EQ(got.label, want[i].label)
                    << simd::backendName(b) << " dims=" << dims
                    << " query " << i;
                EXPECT_EQ(got.distance, want[i].distance)
                    << simd::backendName(b) << " dims=" << dims
                    << " query " << i;
            }
        }
    }
}

TEST(BackendConformanceTest, SignatureClassifyIdenticalAcrossBackends)
{
    Rng rng(90219);
    // Sweep class counts around the lane width so partially filled
    // panels (rows % lanes != 0) and single-row panels are covered.
    for (const int classes : {1, 3, 4, 5, 26, 40}) {
        const attack::SignatureModel model =
            randomSignatureModel(rng, classes);
        std::vector<gpu::CounterVec> deltas(64);
        for (gpu::CounterVec &d : deltas)
            for (std::int64_t &v : d)
                v = rng.uniformInt(0, 400);

        std::vector<attack::SignatureModel::Match> want(deltas.size());
        {
            const BackendGuard guard(simd::Backend::Scalar);
            ASSERT_TRUE(guard.ok());
            model.classifyBatch(deltas, want);
        }
        for (const simd::Backend b : availableBackends()) {
            const BackendGuard guard(b);
            ASSERT_TRUE(guard.ok());
            std::vector<attack::SignatureModel::Match> got(
                deltas.size());
            model.classifyBatch(deltas, got);
            for (std::size_t i = 0; i < deltas.size(); ++i) {
                EXPECT_EQ(got[i].sig, want[i].sig)
                    << simd::backendName(b) << " classes=" << classes
                    << " query " << i;
                EXPECT_EQ(got[i].distance, want[i].distance)
                    << simd::backendName(b) << " classes=" << classes
                    << " query " << i;
            }
        }
    }
}

} // namespace
} // namespace gpusc::ml
