/**
 * @file
 * Regression tests pinning the optimised classifier hot paths
 * (bounded-heap KNN with norm pruning, early-exit NearestCentroid,
 * flattened RandomForest, early-exit SignatureModel::classify) to
 * straightforward reference implementations of the code they
 * replaced. The optimisations only skip work that provably cannot
 * change the answer, so every prediction — including tie-breaks on
 * exactly equal distances — must match bit for bit.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "attack/signature.h"
#include "ml/knn.h"
#include "ml/nearest_centroid.h"
#include "ml/random_forest.h"
#include "util/rng.h"

namespace gpusc::ml {
namespace {

/** The old Knn::predict: materialise every distance, partial-sort,
 *  vote over an ordered map with strict-> tie-break. */
int
refKnnPredict(const Dataset &train, std::size_t k,
              const FeatureVec &q)
{
    std::vector<std::pair<double, int>> dists;
    dists.reserve(train.size());
    for (std::size_t i = 0; i < train.size(); ++i) {
        double s = 0.0;
        for (std::size_t d = 0; d < q.size(); ++d) {
            const double diff = q[d] - train.x[i][d];
            s += diff * diff;
        }
        dists.emplace_back(std::sqrt(s), train.y[i]);
    }
    const std::size_t kk = std::min(k, dists.size());
    std::partial_sort(dists.begin(),
                      dists.begin() + std::ptrdiff_t(kk),
                      dists.end());
    std::map<int, std::size_t> votes;
    for (std::size_t i = 0; i < kk; ++i)
        ++votes[dists[i].second];
    int best = dists[0].second;
    std::size_t bestVotes = 0;
    for (std::size_t i = 0; i < kk; ++i) {
        const int label = dists[i].second;
        if (votes[label] > bestVotes) {
            bestVotes = votes[label];
            best = label;
        }
    }
    return best;
}

/** The old NearestCentroid::match: full sqrt distance per centroid,
 *  strict-< winner. */
NearestCentroid::Match
refCentroidMatch(const std::vector<FeatureVec> &centroids,
                 const std::vector<int> &labels, const FeatureVec &q)
{
    NearestCentroid::Match best;
    best.distance = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < centroids.size(); ++c) {
        double s = 0.0;
        for (std::size_t d = 0; d < q.size(); ++d) {
            const double diff = q[d] - centroids[c][d];
            s += diff * diff;
        }
        const double dist = std::sqrt(s);
        if (dist < best.distance) {
            best.distance = dist;
            best.label = labels[c];
        }
    }
    return best;
}

/** Vote over per-tree predictions the way the old ordered-map loop
 *  did (smallest label wins ties). */
int
refForestVote(const RandomForest &forest, const FeatureVec &q)
{
    std::map<int, std::size_t> votes;
    for (const auto &tree : forest.trees())
        ++votes[tree->predict(q)];
    int best = 0;
    std::size_t bestVotes = 0;
    for (const auto &[label, n] : votes) {
        if (n > bestVotes) {
            bestVotes = n;
            best = label;
        }
    }
    return best;
}

/** Continuous-feature dataset (generic position). */
Dataset
randomDataset(Rng &rng, std::size_t n, std::size_t dims, int classes)
{
    Dataset data;
    for (std::size_t i = 0; i < n; ++i) {
        FeatureVec v(dims);
        const int label = int(rng.uniformInt(0, classes - 1));
        for (double &x : v)
            x = rng.uniform(-4.0, 4.0) + label;
        data.add(std::move(v), label);
    }
    return data;
}

/** Small-integer features: duplicate points and exactly equal
 *  distances are common, stressing the tie-break paths. */
Dataset
integerDataset(Rng &rng, std::size_t n, std::size_t dims, int classes)
{
    Dataset data;
    for (std::size_t i = 0; i < n; ++i) {
        FeatureVec v(dims);
        for (double &x : v)
            x = double(rng.uniformInt(0, 2));
        data.add(std::move(v), int(rng.uniformInt(0, classes - 1)));
    }
    return data;
}

FeatureVec
randomQuery(Rng &rng, std::size_t dims, bool integer)
{
    FeatureVec q(dims);
    for (double &x : q)
        x = integer ? double(rng.uniformInt(0, 2))
                    : rng.uniform(-5.0, 5.0);
    return q;
}

TEST(KnnRegressionTest, MatchesFullSortReference)
{
    Rng rng(90210);
    for (const bool integer : {false, true}) {
        const Dataset data =
            integer ? integerDataset(rng, 60, 4, 4)
                    : randomDataset(rng, 60, 6, 5);
        for (const std::size_t k : {1u, 3u, 5u, 100u}) {
            Knn knn(k);
            knn.fit(data);
            for (int t = 0; t < 80; ++t) {
                const FeatureVec q =
                    randomQuery(rng, data.dims(), integer);
                EXPECT_EQ(knn.predict(q),
                          refKnnPredict(data, k, q))
                    << "k=" << k << " integer=" << integer
                    << " query " << t;
            }
        }
    }
}

TEST(KnnRegressionTest, HandlesTrainingPointsAsQueries)
{
    // Zero distances exercise the earliest possible early-exit.
    Rng rng(90211);
    const Dataset data = integerDataset(rng, 40, 3, 3);
    Knn knn(3);
    knn.fit(data);
    for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_EQ(knn.predict(data.x[i]),
                  refKnnPredict(data, 3, data.x[i]))
            << "training point " << i;
}

TEST(NearestCentroidRegressionTest, MatchesNaiveReference)
{
    Rng rng(90212);
    for (const bool integer : {false, true}) {
        const Dataset data =
            integer ? integerDataset(rng, 50, 4, 6)
                    : randomDataset(rng, 50, 6, 6);
        NearestCentroid nc;
        nc.fit(data);
        for (int t = 0; t < 100; ++t) {
            const FeatureVec q =
                randomQuery(rng, data.dims(), integer);
            const NearestCentroid::Match got = nc.match(q);
            const NearestCentroid::Match want =
                refCentroidMatch(nc.centroids(), nc.labels(), q);
            EXPECT_EQ(got.label, want.label) << "query " << t;
            EXPECT_EQ(got.distance, want.distance) << "query " << t;
        }
    }
}

TEST(NearestCentroidRegressionTest, LoadRebuildsThePrunedPath)
{
    Rng rng(90213);
    const Dataset data = randomDataset(rng, 30, 5, 4);
    NearestCentroid fitted;
    fitted.fit(data);

    NearestCentroid loaded;
    loaded.load(fitted.centroids(), fitted.labels());
    for (int t = 0; t < 50; ++t) {
        const FeatureVec q = randomQuery(rng, data.dims(), false);
        EXPECT_EQ(loaded.match(q).label, fitted.match(q).label);
        EXPECT_EQ(loaded.match(q).distance, fitted.match(q).distance);
    }
}

TEST(RandomForestRegressionTest, FlatWalkMatchesPerTreeVote)
{
    Rng rng(90214);
    const Dataset data = randomDataset(rng, 80, 5, 4);
    RandomForest forest;
    forest.fit(data);
    ASSERT_FALSE(forest.trees().empty());
    for (int t = 0; t < 100; ++t) {
        const FeatureVec q = randomQuery(rng, data.dims(), false);
        EXPECT_EQ(forest.predict(q), refForestVote(forest, q))
            << "query " << t;
    }
}

TEST(SignatureRegressionTest, ClassifyMatchesNaiveScan)
{
    using attack::LabelSignature;
    using attack::SignatureModel;

    Rng rng(90215);
    SignatureModel model;
    std::array<double, gpu::kNumSelectedCounters> scale{};
    for (double &s : scale)
        s = rng.uniform(0.001, 0.01);
    model.setScale(scale);
    for (int i = 0; i < 40; ++i) {
        LabelSignature sig;
        sig.label = std::string(1, char('a' + i % 26));
        for (std::int64_t &v : sig.centroid)
            v = rng.uniformInt(0, 400);
        model.addSignature(sig);
    }

    for (int t = 0; t < 200; ++t) {
        gpu::CounterVec delta{};
        for (std::int64_t &v : delta)
            v = rng.uniformInt(0, 400);

        // Naive scan: full scaled distance per signature, strict <.
        const LabelSignature *wantSig = nullptr;
        double wantDist = std::numeric_limits<double>::infinity();
        for (const LabelSignature &sig : model.signatures()) {
            double s = 0.0;
            for (std::size_t d = 0; d < delta.size(); ++d) {
                const double diff =
                    double(delta[d] - sig.centroid[d]) * scale[d];
                s += diff * diff;
            }
            if (std::sqrt(s) < wantDist) {
                wantDist = std::sqrt(s);
                wantSig = &sig;
            }
        }

        const SignatureModel::Match got = model.classify(delta);
        EXPECT_EQ(got.sig, wantSig) << "query " << t;
        EXPECT_EQ(got.distance, wantDist) << "query " << t;
    }
}

} // namespace
} // namespace gpusc::ml
