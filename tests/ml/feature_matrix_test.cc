/**
 * @file
 * FeatureMatrix contract tests: contiguous SoA layout, span row
 * views, and — the part the old vector-of-vectors storage silently
 * got wrong — hard failure with a typed DimensionError whenever a
 * ragged row is added, through both the matrix itself and the legacy
 * Dataset::add adapter.
 */

#include <gtest/gtest.h>

#include <vector>

#include "ml/dataset.h"
#include "ml/feature_matrix.h"

namespace gpusc::ml {
namespace {

TEST(FeatureMatrixTest, FirstRowFixesDimensions)
{
    FeatureMatrix m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.dims(), 0u);

    m.addRow(FeatureVec{1.0, 2.0, 3.0});
    EXPECT_EQ(m.rows(), 1u);
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(m.dims(), 3u);

    m.addRow(FeatureVec{4.0, 5.0, 6.0});
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m[1][0], 4.0);
    EXPECT_EQ(m.row(1)[2], 6.0);
}

TEST(FeatureMatrixTest, StorageIsContiguousRowMajor)
{
    FeatureMatrix m;
    m.addRow(FeatureVec{1.0, 2.0});
    m.addRow(FeatureVec{3.0, 4.0});
    m.addRow(FeatureVec{5.0, 6.0});
    const double *p = m.data();
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(p[i], double(i + 1));
    // Row views alias the block directly — no per-row allocation.
    EXPECT_EQ(m[2].data(), p + 4);
}

TEST(FeatureMatrixTest, RaggedRowThrowsTypedError)
{
    FeatureMatrix m;
    m.addRow(FeatureVec{1.0, 2.0, 3.0});
    EXPECT_THROW(m.addRow(FeatureVec{1.0, 2.0}), DimensionError);
    try {
        m.addRow(FeatureVec{1.0});
        FAIL() << "expected DimensionError";
    } catch (const DimensionError &e) {
        EXPECT_EQ(e.expected(), 3u);
        EXPECT_EQ(e.got(), 1u);
        EXPECT_NE(std::string(e.what()).find("expected 3"),
                  std::string::npos);
    }
    // The failed adds changed nothing.
    EXPECT_EQ(m.rows(), 1u);
    EXPECT_EQ(m.dims(), 3u);
}

TEST(FeatureMatrixTest, FromRowsRejectsRaggedInput)
{
    const FeatureMatrix m = FeatureMatrix::fromRows(
        {{1.0, 2.0}, {3.0, 4.0}});
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.dims(), 2u);
    EXPECT_THROW(FeatureMatrix::fromRows({{1.0, 2.0}, {3.0}}),
                 DimensionError);
}

TEST(FeatureMatrixTest, EqualityAndClear)
{
    FeatureMatrix a;
    a.addRow(FeatureVec{1.0, 2.0});
    FeatureMatrix b;
    b.addRow(FeatureVec{1.0, 2.0});
    EXPECT_EQ(a, b);
    b.addRow(FeatureVec{3.0, 4.0});
    EXPECT_FALSE(a == b);
    b.clear();
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(b.dims(), 0u);
    // Cleared matrices accept a fresh dimensionality.
    b.addRow(FeatureVec{9.0});
    EXPECT_EQ(b.dims(), 1u);
}

TEST(FeatureMatrixTest, MutableRowWritesThrough)
{
    FeatureMatrix m;
    m.addRow(FeatureVec{1.0, 2.0});
    m.mutableRow(0)[1] = 7.5;
    EXPECT_EQ(m[0][1], 7.5);
}

TEST(FeatureMatrixTest, DatasetAddValidatesDimensions)
{
    Dataset d;
    d.add({1.0, 2.0, 3.0}, 0);
    d.add({4.0, 5.0, 6.0}, 1);
    EXPECT_EQ(d.size(), 2u);
    EXPECT_EQ(d.dims(), 3u);

    // The legacy per-vector adapter goes through the same check.
    EXPECT_THROW(d.add(FeatureVec{1.0, 2.0}, 2), DimensionError);
    EXPECT_EQ(d.size(), 2u);
    EXPECT_EQ(d.y.size(), 2u) << "failed add must not leave a label";
}

} // namespace
} // namespace gpusc::ml
