/** @file Unit tests for the ML kit. */

#include <gtest/gtest.h>

#include <memory>

#include "ml/knn.h"
#include "ml/naive_bayes.h"
#include "ml/nearest_centroid.h"
#include "ml/random_forest.h"
#include "util/rng.h"

namespace gpusc::ml {
namespace {

/** Three well-separated Gaussian blobs in 2D. */
Dataset
blobs(std::uint64_t seed, int perClass, double spread)
{
    Rng rng(seed);
    const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
    Dataset d;
    for (int c = 0; c < 3; ++c)
        for (int i = 0; i < perClass; ++i)
            d.add({centers[c][0] + rng.normal(0, spread),
                   centers[c][1] + rng.normal(0, spread)},
                  c);
    return d;
}

TEST(DatasetTest, Shape)
{
    const Dataset d = blobs(1, 5, 0.5);
    EXPECT_EQ(d.size(), 15u);
    EXPECT_EQ(d.dims(), 2u);
    EXPECT_EQ(d.numClasses(), 3);
}

TEST(DatasetTest, EmptyDataset)
{
    Dataset d;
    EXPECT_EQ(d.size(), 0u);
    EXPECT_EQ(d.dims(), 0u);
    EXPECT_EQ(d.numClasses(), 0);
}

TEST(NearestCentroidTest, MatchReportsDistance)
{
    NearestCentroid nc;
    nc.fit(blobs(2, 20, 0.3));
    const auto m = nc.match({10.0, 0.0});
    EXPECT_EQ(m.label, 1);
    EXPECT_LT(m.distance, 1.0);
    const auto far = nc.match({100.0, 100.0});
    EXPECT_GT(far.distance, 50.0);
}

TEST(NearestCentroidTest, CentroidsAreClassMeans)
{
    Dataset d;
    d.add({0.0, 0.0}, 0);
    d.add({2.0, 4.0}, 0);
    d.add({10.0, 10.0}, 1);
    NearestCentroid nc;
    nc.fit(d);
    ASSERT_EQ(nc.centroids().size(), 2u);
    EXPECT_DOUBLE_EQ(nc.centroids()[0][0], 1.0);
    EXPECT_DOUBLE_EQ(nc.centroids()[0][1], 2.0);
}

TEST(NearestCentroidTest, LoadBypassesTraining)
{
    NearestCentroid nc;
    nc.load({{0.0, 0.0}, {5.0, 5.0}}, {7, 9});
    EXPECT_EQ(nc.predict({0.2, -0.1}), 7);
    EXPECT_EQ(nc.predict({4.9, 5.3}), 9);
}

TEST(NearestCentroidDeathTest, LoadMismatchPanics)
{
    NearestCentroid nc;
    EXPECT_DEATH(nc.load({{0.0}}, {1, 2}), "centroids");
}

TEST(KnnTest, NeighboursVote)
{
    Dataset d;
    // Two of class 0 near origin, one of class 1 slightly farther.
    d.add({0.0}, 0);
    d.add({0.2}, 0);
    d.add({0.3}, 1);
    d.add({10.0}, 1);
    Knn knn(3);
    knn.fit(d);
    EXPECT_EQ(knn.predict({0.1}), 0); // 2-vs-1 among the 3 nearest
}

TEST(KnnTest, KOneIsNearestNeighbour)
{
    Dataset d;
    d.add({0.0}, 0);
    d.add({1.0}, 1);
    Knn knn(1);
    knn.fit(d);
    EXPECT_EQ(knn.predict({0.4}), 0);
    EXPECT_EQ(knn.predict({0.6}), 1);
}

TEST(KnnDeathTest, ZeroKPanics)
{
    EXPECT_DEATH(Knn knn(0), "positive");
}

TEST(NaiveBayesTest, UsesVariancePerClass)
{
    // Class 0 is tight around 0, class 1 is wide around 0: a point at
    // 3 is far in class-0 sigmas but near in class-1 sigmas.
    Rng rng(5);
    Dataset d;
    for (int i = 0; i < 200; ++i) {
        d.add({rng.normal(0.0, 0.5)}, 0);
        d.add({rng.normal(0.0, 5.0)}, 1);
    }
    GaussianNaiveBayes nb;
    nb.fit(d);
    EXPECT_EQ(nb.predict({0.05}), 0);
    EXPECT_EQ(nb.predict({4.0}), 1);
}

TEST(RandomForestTest, LearnsNonAxisAlignedBoundary)
{
    Rng rng(7);
    Dataset train, test;
    for (int i = 0; i < 400; ++i) {
        const double x = rng.uniform(-1, 1), y = rng.uniform(-1, 1);
        (i % 2 ? train : test).add({x, y}, x + y > 0 ? 1 : 0);
    }
    RandomForest rf;
    rf.fit(train);
    EXPECT_GT(rf.accuracy(test), 0.9);
}

TEST(DecisionTreeTest, PerfectlySeparableDataFits)
{
    const Dataset d = blobs(11, 30, 0.2);
    DecisionTree tree;
    tree.fit(d);
    EXPECT_DOUBLE_EQ(tree.accuracy(d), 1.0);
    EXPECT_GE(tree.depth(), 2u);
}

TEST(DecisionTreeTest, SingleClassIsLeaf)
{
    Dataset d;
    d.add({1.0}, 4);
    d.add({2.0}, 4);
    DecisionTree tree;
    tree.fit(d);
    EXPECT_EQ(tree.depth(), 1u);
    EXPECT_EQ(tree.predict({99.0}), 4);
}

/** All classifiers must nail cleanly separated blobs. */
class ClassifierSweep : public ::testing::TestWithParam<int>
{
  protected:
    std::unique_ptr<Classifier>
    make() const
    {
        switch (GetParam()) {
          case 0:
            return std::make_unique<NearestCentroid>();
          case 1:
            return std::make_unique<GaussianNaiveBayes>();
          case 2:
            return std::make_unique<Knn>(3);
          default:
            return std::make_unique<RandomForest>();
        }
    }
};

TEST_P(ClassifierSweep, SeparableBlobsClassifyCleanly)
{
    auto clf = make();
    clf->fit(blobs(21, 40, 0.5));
    EXPECT_GT(clf->accuracy(blobs(22, 15, 0.5)), 0.95)
        << clf->name();
}

TEST_P(ClassifierSweep, OverlappingBlobsDegrade)
{
    auto clf = make();
    clf->fit(blobs(23, 40, 8.0)); // heavy overlap
    const double acc = clf->accuracy(blobs(24, 15, 8.0));
    EXPECT_LT(acc, 0.95) << clf->name();
    EXPECT_GT(acc, 0.2) << clf->name(); // still beats random-ish
}

TEST_P(ClassifierSweep, DeterministicPredictions)
{
    auto a = make();
    auto b = make();
    a->fit(blobs(25, 30, 1.0));
    b->fit(blobs(25, 30, 1.0));
    Rng rng(26);
    for (int i = 0; i < 50; ++i) {
        const FeatureVec x{rng.uniform(-5, 15), rng.uniform(-5, 15)};
        EXPECT_EQ(a->predict(x), b->predict(x)) << a->name();
    }
}

INSTANTIATE_TEST_SUITE_P(AllClassifiers, ClassifierSweep,
                         ::testing::Values(0, 1, 2, 3));

} // namespace
} // namespace gpusc::ml
