/**
 * @file
 * Correctness and stress tests for the work-stealing ThreadPool.
 * The stress cases double as the ThreadSanitizer targets (the CI
 * thread-sanitize job builds this binary with -fsanitize=thread).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <vector>

#include "exec/thread_pool.h"

namespace gpusc::exec {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(8);
    EXPECT_EQ(pool.size(), 8u);

    const std::size_t n = 500;
    // Distinct tasks write distinct slots, so plain ints suffice —
    // TSan would flag any double execution of an index as a race.
    std::vector<int> hits(n, 0);
    pool.parallelFor(n, [&](std::size_t i) { hits[i] += 1; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPoolTest, InlineModeRunsInOrderOnCallerThread)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);

    std::vector<std::size_t> order;
    pool.parallelFor(6, [&](std::size_t i) { order.push_back(i); });
    const std::vector<std::size_t> expect{0, 1, 2, 3, 4, 5};
    EXPECT_EQ(order, expect);
}

TEST(ThreadPoolTest, ZeroAndTinyBatchesComplete)
{
    ThreadPool pool(4);
    pool.parallelFor(0, [](std::size_t) { FAIL() << "no tasks"; });

    std::atomic<std::size_t> ran{0};
    pool.parallelFor(1, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 1u);

    // Fewer tasks than workers: the idle workers must not wedge the
    // batch.
    pool.parallelFor(2, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 3u);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches)
{
    ThreadPool pool(4);
    std::atomic<std::size_t> total{0};
    std::size_t expected = 0;
    // Varying batch sizes exercise the generation fencing that keeps
    // a worker draining batch g from touching batch g+1's tasks.
    for (std::size_t batch = 0; batch < 50; ++batch) {
        const std::size_t n = (batch * 7) % 23;
        expected += n;
        pool.parallelFor(n,
                         [&](std::size_t) { total.fetch_add(1); });
    }
    EXPECT_EQ(total.load(), expected);
}

TEST(ThreadPoolTest, UnevenWorkIsStolenAndCompleted)
{
    ThreadPool pool(8);
    const std::size_t n = 64;
    std::vector<std::uint64_t> out(n, 0);
    // Work grows steeply with the index, so the workers dealt the
    // tail blocks finish last and the rest must steal to keep busy.
    pool.parallelFor(n, [&](std::size_t i) {
        std::uint64_t acc = 1;
        for (std::size_t j = 0; j < (i + 1) * 2000; ++j)
            acc = acc * 6364136223846793005ULL + i;
        out[i] = acc | 1; // never zero
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NE(out[i], 0u) << "index " << i;
}

TEST(ThreadPoolTest, StressManySmallBatches)
{
    ThreadPool pool(8);
    std::atomic<std::uint64_t> total{0};
    for (std::size_t batch = 0; batch < 300; ++batch)
        pool.parallelFor(32, [&](std::size_t i) {
            total.fetch_add(i + 1);
        });
    // 300 * (1 + 2 + ... + 32)
    EXPECT_EQ(total.load(), 300u * (32u * 33u / 2u));
}

} // namespace
} // namespace gpusc::exec
