/**
 * @file
 * Determinism suite for the parallel evaluation engine: campaign
 * results, accuracy statistics, merged telemetry (counters, decision
 * funnel, audit trail) and fault-recovery accounting must be
 * byte-identical for any worker count, including one. Also checks
 * parallel trace replay against the serial TraceReplayer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "attack/model_store.h"
#include "eval/experiment.h"
#include "exec/parallel_runner.h"
#include "kgsl/fault_injector.h"
#include "obs/telemetry.h"
#include "trace/trace_replayer.h"
#include "util/logging.h"

namespace gpusc::exec {
namespace {

attack::ModelStore &
store()
{
    static attack::ModelStore s;
    return s;
}

/** Everything a campaign produces that must be thread-count
 *  independent, in directly comparable form. */
struct CampaignOut
{
    std::vector<std::pair<std::string, std::string>> trials;
    std::size_t statTrials = 0;
    double textAcc = 0.0;
    double charAcc = 0.0;
    double avgErrors = 0.0;
    std::map<std::string, std::uint64_t> counters;
    std::string funnelJson;
    std::string auditJsonl;
    std::uint64_t healthSum = 0;
    std::uint64_t faultSum = 0;
};

CampaignOut
runCampaign(std::size_t threads, std::uint64_t seed,
            const kgsl::FaultPlan &faults = {})
{
    obs::Telemetry telemetry;
    eval::ExperimentConfig cfg;
    cfg.seed = seed;
    cfg.telemetry = &telemetry;
    cfg.faultPlan = faults;
    ShardPlan plan;
    plan.shardSize = 2;
    ParallelRunner runner(cfg, store(), threads, plan);
    const ParallelResult res = runner.runTrials(6, 8, 10);

    CampaignOut out;
    for (const eval::TrialResult &t : res.trials)
        out.trials.emplace_back(t.truth, t.inferred);
    out.statTrials = res.stats.trials();
    out.textAcc = res.stats.textAccuracy();
    out.charAcc = res.stats.charAccuracy();
    out.avgErrors = res.stats.avgErrorsPerText();
    for (const auto &[name, ctr] : telemetry.metrics.counters())
        out.counters[name] = ctr->value();
    out.funnelJson = telemetry.audit.funnelJson();
    out.auditJsonl = telemetry.audit.toJsonl();
    const attack::HealthStats &h = res.health;
    out.healthSum = h.transientRetries + h.busyRetries + h.reopens +
                    h.resetsSurvived + h.watchdogRecoveries +
                    h.missedReads + h.streamResets + h.wrapsRepaired +
                    h.countersHeld;
    out.faultSum = res.faults.transientErrors +
                   res.faults.busyDenials +
                   res.faults.powerCollapses +
                   res.faults.deviceResets;
    return out;
}

void
expectIdentical(const CampaignOut &a, const CampaignOut &b,
                const char *what)
{
    EXPECT_EQ(a.trials, b.trials) << what;
    EXPECT_EQ(a.statTrials, b.statTrials) << what;
    EXPECT_EQ(a.textAcc, b.textAcc) << what;
    EXPECT_EQ(a.charAcc, b.charAcc) << what;
    EXPECT_EQ(a.avgErrors, b.avgErrors) << what;
    EXPECT_EQ(a.counters, b.counters) << what;
    EXPECT_EQ(a.funnelJson, b.funnelJson) << what;
    EXPECT_EQ(a.auditJsonl, b.auditJsonl) << what;
    EXPECT_EQ(a.healthSum, b.healthSum) << what;
    EXPECT_EQ(a.faultSum, b.faultSum) << what;
}

TEST(ParallelRunnerTest, ResultsAreIdenticalForAnyThreadCount)
{
    setVerbose(false);
    const CampaignOut one = runCampaign(1, 7001);
    const CampaignOut two = runCampaign(2, 7001);
    const CampaignOut eight = runCampaign(8, 7001);

    ASSERT_EQ(one.trials.size(), 6u);
    expectIdentical(one, two, "threads 1 vs 2");
    expectIdentical(one, eight, "threads 1 vs 8");

    // And the campaign did real work: inference succeeded somewhere.
    EXPECT_GT(one.charAcc, 0.5);
    EXPECT_GT(one.counters.at("eval.trials"), 0u);
}

TEST(ParallelRunnerTest, FaultyCampaignAggregatesDeterministically)
{
    setVerbose(false);
    kgsl::FaultPlan plan;
    plan.transientErrorProb = 0.05;
    const CampaignOut one = runCampaign(1, 7002, plan);
    const CampaignOut four = runCampaign(4, 7002, plan);
    expectIdentical(one, four, "faulty campaign threads 1 vs 4");
    EXPECT_GT(one.faultSum, 0u) << "faults were actually injected";
    EXPECT_GT(one.healthSum, 0u) << "pipeline recovered from them";
}

TEST(ParallelRunnerTest, SeedChangesTheCampaign)
{
    setVerbose(false);
    const CampaignOut a = runCampaign(2, 7003);
    const CampaignOut b = runCampaign(2, 7004);
    EXPECT_NE(a.trials, b.trials);
}

TEST(ParallelRunnerTest, TelemetryCoversEveryTrial)
{
    setVerbose(false);
    const CampaignOut out = runCampaign(4, 7005);
    EXPECT_EQ(out.statTrials, 6u);
    EXPECT_EQ(out.counters.at("eval.trials"), 6u);
    EXPECT_GT(out.counters.at("pipeline.readings_in"), 0u);
}

TEST(ParallelRunnerTest, TraceRecordingIsDisabledInParallel)
{
    setVerbose(false);
    const std::string path =
        ::testing::TempDir() + "parallel_no_record.gpct";
    std::remove(path.c_str());

    eval::ExperimentConfig cfg;
    cfg.seed = 7006;
    cfg.recordTracePath = path;
    ParallelRunner runner(cfg, store(), 2);
    const ParallelResult res = runner.runTrials(2, 8, 8);
    EXPECT_EQ(res.trials.size(), 2u);

    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_EQ(f, nullptr) << "parallel run must not write a trace";
    if (f)
        std::fclose(f);
}

TEST(ParallelRunnerTest, ReplayFilesMatchesSerialReplayer)
{
    setVerbose(false);
    // Record two traces serially (recording is a serial concern).
    std::vector<std::string> paths;
    for (std::uint64_t seed : {7101u, 7102u}) {
        const std::string path = ::testing::TempDir() + "par_replay_" +
                                 std::to_string(seed) + ".gpct";
        eval::ExperimentConfig cfg;
        cfg.seed = seed;
        cfg.recordTracePath = path;
        eval::ExperimentRunner runner(cfg, store());
        runner.runTrials(2, 8, 8);
        ASSERT_EQ(runner.finishRecording(), trace::TraceError::None);
        paths.push_back(path);
    }

    ThreadPool pool(4);
    const std::vector<ReplayOutcome> parallel =
        replayFiles(store(), paths, pool);

    ASSERT_EQ(parallel.size(), paths.size());
    for (std::size_t i = 0; i < paths.size(); ++i) {
        trace::TraceReplayer serial(store());
        ASSERT_EQ(serial.replayFile(paths[i]),
                  trace::TraceError::None);
        EXPECT_EQ(parallel[i].path, paths[i]);
        EXPECT_EQ(parallel[i].error, trace::TraceError::None);
        EXPECT_EQ(parallel[i].readings, serial.readingsReplayed());
        ASSERT_EQ(parallel[i].trials.size(), serial.trials().size());
        for (std::size_t t = 0; t < serial.trials().size(); ++t) {
            EXPECT_EQ(parallel[i].trials[t].truth,
                      serial.trials()[t].truth);
            EXPECT_EQ(parallel[i].trials[t].inferred,
                      serial.trials()[t].inferred)
                << "file " << i << " trial " << t;
        }
    }
    for (const std::string &p : paths)
        std::remove(p.c_str());
}

} // namespace
} // namespace gpusc::exec
