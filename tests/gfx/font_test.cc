/** @file Unit tests for the 5x7 bitmap font. */

#include <gtest/gtest.h>

#include <set>

#include "gfx/font.h"

namespace gpusc::gfx {
namespace {

TEST(FontTest, CharsetCoversFig18)
{
    // Every character the paper's Fig. 18 evaluates must have a
    // dedicated glyph.
    for (char c : fontCharset())
        EXPECT_TRUE(hasGlyph(c)) << "missing glyph for " << c;
    EXPECT_GE(fontCharset().size(), 78u);
}

TEST(FontTest, SpaceIsEmpty)
{
    EXPECT_EQ(glyphPixelCount(' '), 0);
    EXPECT_TRUE(glyphRunRects(' ', Rect::ofSize(0, 0, 50, 70)).empty());
}

TEST(FontTest, UnknownFallsBackToBox)
{
    EXPECT_FALSE(hasGlyph('\x01'));
    EXPECT_GT(glyphPixelCount('\x01'), 0);
}

TEST(FontTest, PixelCountsAreRealistic)
{
    // Narrow marks are lighter than wide letters.
    EXPECT_LT(glyphPixelCount('.'), glyphPixelCount('i'));
    EXPECT_LT(glyphPixelCount('i'), glyphPixelCount('w'));
    EXPECT_LT(glyphPixelCount('\''), glyphPixelCount('@'));
}

TEST(FontTest, GlyphShapesAreDistinct)
{
    // Most pairs must differ as bitmaps (required for per-key
    // signatures to separate).
    const std::string &cs = fontCharset();
    int identicalPairs = 0;
    for (std::size_t i = 0; i < cs.size(); ++i)
        for (std::size_t j = i + 1; j < cs.size(); ++j)
            identicalPairs +=
                glyphFor(cs[i]).rows == glyphFor(cs[j]).rows;
    EXPECT_EQ(identicalPairs, 0);
}

TEST(FontTest, RunsStayInsideBox)
{
    const Rect box = Rect::ofSize(100, 200, 45, 63);
    for (char c : fontCharset()) {
        for (const Rect &run : glyphRunRects(c, box)) {
            EXPECT_TRUE(box.contains(run))
                << "run " << run.toString() << " escapes for '" << c
                << "'";
            EXPECT_FALSE(run.empty());
        }
    }
}

TEST(FontTest, RunAreaMatchesPixelCountAtExactScale)
{
    // With a box that is an integer multiple of the 5x7 cell, the
    // total run area must be pixelCount * cellArea exactly.
    const int sx = 6, sy = 9;
    const Rect box = Rect::ofSize(0, 0, kGlyphCols * sx, kGlyphRows * sy);
    for (char c : {'a', 'W', '8', ',', '@'}) {
        std::int64_t area = 0;
        for (const Rect &run : glyphRunRects(c, box))
            area += run.area();
        EXPECT_EQ(area, std::int64_t(glyphPixelCount(c)) * sx * sy)
            << "for '" << c << "'";
    }
}

TEST(FontTest, RunsDoNotOverlap)
{
    const Rect box = Rect::ofSize(0, 0, 50, 70);
    for (char c : {'m', '#', 'Q'}) {
        const auto runs = glyphRunRects(c, box);
        for (std::size_t i = 0; i < runs.size(); ++i)
            for (std::size_t j = i + 1; j < runs.size(); ++j)
                EXPECT_FALSE(runs[i].intersects(runs[j]));
    }
}

TEST(FontTest, EmptyBoxYieldsNoRuns)
{
    EXPECT_TRUE(glyphRunRects('a', Rect{}).empty());
}

TEST(FontTest, TinyBoxStillRenders)
{
    // A 5x7 box renders each lit pixel as a 1x1 run.
    const auto runs = glyphRunRects('i', Rect::ofSize(0, 0, 5, 7));
    std::int64_t area = 0;
    for (const Rect &r : runs)
        area += r.area();
    EXPECT_EQ(area, glyphPixelCount('i'));
}

/** Parameterised: run decomposition is consistent for all charset
 *  characters at several scales. */
class FontScaleSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(FontScaleSweep, RunAreaEqualsScaledPixelCount)
{
    const int s = GetParam();
    const Rect box = Rect::ofSize(7, 13, kGlyphCols * s, kGlyphRows * s);
    for (char c : fontCharset()) {
        std::int64_t area = 0;
        for (const Rect &run : glyphRunRects(c, box))
            area += run.area();
        EXPECT_EQ(area, std::int64_t(glyphPixelCount(c)) * s * s)
            << "char '" << c << "' scale " << s;
    }
}

INSTANTIATE_TEST_SUITE_P(Scales, FontScaleSweep,
                         ::testing::Values(1, 2, 3, 5, 9, 16));

} // namespace
} // namespace gpusc::gfx
