/** @file Unit tests for the frame draw-list. */

#include <gtest/gtest.h>

#include "gfx/scene.h"

namespace gpusc::gfx {
namespace {

TEST(SceneTest, AddClipsAgainstDamage)
{
    FrameScene s;
    s.damage = Rect::ofSize(0, 0, 100, 100);
    s.add(Rect::ofSize(50, 50, 100, 100), true, PrimTag::AppContent);
    ASSERT_EQ(s.prims.size(), 1u);
    EXPECT_EQ(s.prims[0].rect, (Rect{50, 50, 100, 100}));
}

TEST(SceneTest, AddDropsInvisiblePrims)
{
    FrameScene s;
    s.damage = Rect::ofSize(0, 0, 100, 100);
    s.add(Rect::ofSize(200, 200, 10, 10), true, PrimTag::AppContent);
    EXPECT_TRUE(s.prims.empty());
    EXPECT_TRUE(s.empty());
}

TEST(SceneTest, EmptyDetection)
{
    FrameScene s;
    EXPECT_TRUE(s.empty());
    s.damage = Rect::ofSize(0, 0, 10, 10);
    EXPECT_TRUE(s.empty()); // no prims yet
    s.add(s.damage, true, PrimTag::Background);
    EXPECT_FALSE(s.empty());
}

TEST(SceneTest, HashIsStable)
{
    auto build = [] {
        FrameScene s;
        s.damage = Rect::ofSize(0, 0, 64, 64);
        s.add(Rect::ofSize(1, 2, 3, 4), true, PrimTag::KeyCap);
        s.add(Rect::ofSize(5, 6, 7, 8), false, PrimTag::Popup);
        return s;
    };
    EXPECT_EQ(build().contentHash(), build().contentHash());
}

TEST(SceneTest, HashSensitivity)
{
    FrameScene base;
    base.damage = Rect::ofSize(0, 0, 64, 64);
    base.add(Rect::ofSize(1, 2, 3, 4), true, PrimTag::KeyCap);

    FrameScene moved = base;
    moved.prims[0].rect = Rect::ofSize(2, 2, 3, 4);
    EXPECT_NE(base.contentHash(), moved.contentHash());

    FrameScene translucent = base;
    translucent.prims[0].opaque = false;
    EXPECT_NE(base.contentHash(), translucent.contentHash());

    FrameScene otherDamage = base;
    otherDamage.damage = Rect::ofSize(0, 0, 32, 64);
    EXPECT_NE(base.contentHash(), otherDamage.contentHash());
}

TEST(SceneTest, HashOrderSensitive)
{
    // Back-to-front order matters for occlusion, so it must matter
    // for the cache key.
    FrameScene a, b;
    a.damage = b.damage = Rect::ofSize(0, 0, 64, 64);
    a.add(Rect::ofSize(0, 0, 10, 10), true, PrimTag::KeyCap);
    a.add(Rect::ofSize(5, 5, 10, 10), true, PrimTag::Popup);
    b.add(Rect::ofSize(5, 5, 10, 10), true, PrimTag::Popup);
    b.add(Rect::ofSize(0, 0, 10, 10), true, PrimTag::KeyCap);
    EXPECT_NE(a.contentHash(), b.contentHash());
}

} // namespace
} // namespace gpusc::gfx
