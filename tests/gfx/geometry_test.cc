/** @file Unit tests for pixel geometry. */

#include <gtest/gtest.h>

#include "gfx/geometry.h"

namespace gpusc::gfx {
namespace {

TEST(RectTest, BasicProperties)
{
    const Rect r = Rect::ofSize(10, 20, 30, 40);
    EXPECT_EQ(r.width(), 30);
    EXPECT_EQ(r.height(), 40);
    EXPECT_EQ(r.area(), 1200);
    EXPECT_FALSE(r.empty());
    EXPECT_EQ(r.center().x, 25);
    EXPECT_EQ(r.center().y, 40);
}

TEST(RectTest, EmptyRects)
{
    EXPECT_TRUE(Rect{}.empty());
    EXPECT_TRUE((Rect{5, 5, 5, 10}).empty());
    EXPECT_TRUE((Rect{5, 5, 10, 5}).empty());
    EXPECT_TRUE((Rect{10, 0, 5, 5}).empty());
    EXPECT_EQ(Rect{}.area(), 0);
}

TEST(RectTest, ContainsPoint)
{
    const Rect r = Rect::ofSize(0, 0, 10, 10);
    EXPECT_TRUE(r.contains(Point{0, 0}));
    EXPECT_TRUE(r.contains(Point{9, 9}));
    EXPECT_FALSE(r.contains(Point{10, 9})); // half-open
    EXPECT_FALSE(r.contains(Point{-1, 5}));
}

TEST(RectTest, ContainsRect)
{
    const Rect outer = Rect::ofSize(0, 0, 10, 10);
    EXPECT_TRUE(outer.contains(Rect::ofSize(2, 2, 3, 3)));
    EXPECT_TRUE(outer.contains(outer));
    EXPECT_TRUE(outer.contains(Rect{})); // empty is contained
    EXPECT_FALSE(outer.contains(Rect::ofSize(8, 8, 5, 5)));
}

TEST(RectTest, Intersect)
{
    const Rect a = Rect::ofSize(0, 0, 10, 10);
    const Rect b = Rect::ofSize(5, 5, 10, 10);
    const Rect i = a.intersect(b);
    EXPECT_EQ(i, (Rect{5, 5, 10, 10}));
    EXPECT_TRUE(a.intersects(b));
    EXPECT_TRUE(
        a.intersect(Rect::ofSize(20, 20, 5, 5)).empty());
    EXPECT_FALSE(a.intersects(Rect::ofSize(10, 0, 5, 5))); // touching
}

TEST(RectTest, Unite)
{
    const Rect a = Rect::ofSize(0, 0, 5, 5);
    const Rect b = Rect::ofSize(10, 10, 5, 5);
    EXPECT_EQ(a.unite(b), (Rect{0, 0, 15, 15}));
    EXPECT_EQ(a.unite(Rect{}), a);
    EXPECT_EQ(Rect{}.unite(b), b);
}

TEST(RectTest, TranslatedAndInset)
{
    const Rect r = Rect::ofSize(10, 10, 20, 20);
    EXPECT_EQ(r.translated(5, -5), Rect::ofSize(15, 5, 20, 20));
    EXPECT_EQ(r.inset(2), Rect::ofSize(12, 12, 16, 16));
    EXPECT_EQ(r.inset(-2), Rect::ofSize(8, 8, 24, 24));
    EXPECT_TRUE(r.inset(15).empty());
}

TEST(TilesTest, ExactlyAlignedRect)
{
    // 16x8 rect aligned at origin over 8x4 tiles: 2x2 tiles.
    EXPECT_EQ(tilesTouched(Rect::ofSize(0, 0, 16, 8), 8, 4), 4);
    EXPECT_EQ(tilesFullyCovered(Rect::ofSize(0, 0, 16, 8), 8, 4), 4);
}

TEST(TilesTest, MisalignedRectTouchesMore)
{
    // Shifted by 1px: touches 3x3 tiles but fully covers only 1x1.
    EXPECT_EQ(tilesTouched(Rect::ofSize(1, 1, 16, 8), 8, 4), 9);
    EXPECT_EQ(tilesFullyCovered(Rect::ofSize(1, 1, 16, 8), 8, 4), 1);
}

TEST(TilesTest, TinyRect)
{
    EXPECT_EQ(tilesTouched(Rect::ofSize(3, 3, 1, 1), 8, 8), 1);
    EXPECT_EQ(tilesFullyCovered(Rect::ofSize(3, 3, 1, 1), 8, 8), 0);
}

TEST(TilesTest, EmptyRect)
{
    EXPECT_EQ(tilesTouched(Rect{}, 8, 8), 0);
    EXPECT_EQ(tilesFullyCovered(Rect{}, 8, 8), 0);
}

/** Property sweep over positions/sizes: invariants of tile counting. */
struct TileCase
{
    int x, y, w, h, tw, th;
};

class TileSweep : public ::testing::TestWithParam<TileCase>
{
};

TEST_P(TileSweep, FullyCoveredNeverExceedsTouched)
{
    const TileCase c = GetParam();
    const Rect r = Rect::ofSize(c.x, c.y, c.w, c.h);
    EXPECT_LE(tilesFullyCovered(r, c.tw, c.th),
              tilesTouched(r, c.tw, c.th));
}

TEST_P(TileSweep, TouchedCoversArea)
{
    const TileCase c = GetParam();
    const Rect r = Rect::ofSize(c.x, c.y, c.w, c.h);
    // Touched tiles must at least cover the rect's area.
    EXPECT_GE(tilesTouched(r, c.tw, c.th) * std::int64_t(c.tw) * c.th,
              r.area());
}

TEST_P(TileSweep, FullyCoveredAreaFitsInside)
{
    const TileCase c = GetParam();
    const Rect r = Rect::ofSize(c.x, c.y, c.w, c.h);
    EXPECT_LE(tilesFullyCovered(r, c.tw, c.th) * std::int64_t(c.tw) *
                  c.th,
              r.area());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TileSweep,
    ::testing::Values(TileCase{0, 0, 8, 8, 8, 8},
                      TileCase{1, 0, 8, 8, 8, 8},
                      TileCase{7, 3, 9, 5, 8, 4},
                      TileCase{13, 27, 100, 53, 8, 8},
                      TileCase{0, 0, 1, 1, 32, 32},
                      TileCase{31, 31, 2, 2, 32, 32},
                      TileCase{5, 5, 64, 32, 8, 4},
                      TileCase{123, 456, 77, 33, 16, 16}));

} // namespace
} // namespace gpusc::gfx
