/** @file Unit tests for the timed GPU front-end. */

#include <gtest/gtest.h>

#include "gpu/model.h"
#include "gpu/render_engine.h"
#include "util/event_queue.h"

namespace gpusc::gpu {
namespace {

using namespace gpusc::sim_literals;

gfx::FrameScene
quadScene(int w = 256, int h = 256)
{
    gfx::FrameScene s;
    s.damage = gfx::Rect::ofSize(0, 0, w, h);
    s.add(s.damage, true, gfx::PrimTag::Background);
    return s;
}

class RenderEngineTest : public ::testing::Test
{
  protected:
    EventQueue eq_;
    RenderEngine engine_{eq_, adrenoModel(650), 1};
};

TEST_F(RenderEngineTest, StartsAtZero)
{
    for (std::size_t i = 0; i < kNumSelectedCounters; ++i)
        EXPECT_EQ(engine_.read(SelectedCounter(i)), 0u);
    EXPECT_FALSE(engine_.busyNow());
}

TEST_F(RenderEngineTest, CountersAccumulateAfterCompletion)
{
    const SimTime end = engine_.submit(quadScene());
    EXPECT_GT(end, eq_.now());
    eq_.runUntil(end + 1_ms);
    EXPECT_EQ(engine_.read(LRZ_VISIBLE_PIXEL_AFTER_LRZ),
              256u * 256u);
    EXPECT_EQ(engine_.read(VPC_PC_PRIMITIVES), 2u);
    EXPECT_EQ(engine_.framesRendered(), 1u);
}

TEST_F(RenderEngineTest, MidFrameReadSplitsButSumsExactly)
{
    const SimTime start = eq_.now();
    const SimTime end = engine_.submit(quadScene(1024, 1024));
    ASSERT_GT((end - start).ns(), 4); // long enough to bisect
    // Read halfway through the render.
    eq_.runUntil(start + (end - start) / 2);
    const CounterTotals mid = engine_.readAll();
    EXPECT_GT(mid[LRZ_VISIBLE_PIXEL_AFTER_LRZ], 0u);
    EXPECT_LT(mid[LRZ_VISIBLE_PIXEL_AFTER_LRZ], 1024u * 1024u);
    // After completion the pieces sum to the exact total.
    eq_.runUntil(end + 1_ms);
    EXPECT_EQ(engine_.read(LRZ_VISIBLE_PIXEL_AFTER_LRZ),
              1024u * 1024u);
}

TEST_F(RenderEngineTest, ReadsAreMonotonic)
{
    engine_.submit(quadScene());
    std::uint64_t prev = 0;
    for (int i = 0; i < 20; ++i) {
        eq_.runUntil(eq_.now() + SimTime::fromUs(100));
        const std::uint64_t v =
            engine_.read(RAS_SUPERTILE_ACTIVE_CYCLES);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST_F(RenderEngineTest, JobsSerializeOnTheGpu)
{
    const SimTime end1 = engine_.submit(quadScene());
    const SimTime end2 = engine_.submit(quadScene());
    EXPECT_GT(end2, end1); // second job queues behind the first
    EXPECT_TRUE(engine_.busyNow());
}

TEST_F(RenderEngineTest, EmptySceneIsIgnored)
{
    const SimTime end = engine_.submit(gfx::FrameScene{});
    EXPECT_EQ(end, eq_.now());
    EXPECT_EQ(engine_.framesRendered(), 0u);
}

TEST_F(RenderEngineTest, ComputeJobsOccupyTimeWithoutCounters)
{
    const SimTime end = engine_.submitCompute(5_ms);
    EXPECT_EQ(end, eq_.now() + 5_ms);
    EXPECT_TRUE(engine_.busyNow());
    eq_.runUntil(end + 1_ms);
    for (std::size_t i = 0; i < kNumSelectedCounters; ++i)
        EXPECT_EQ(engine_.read(SelectedCounter(i)), 0u);
    EXPECT_EQ(engine_.totalBusyTime(), 5_ms);
}

TEST_F(RenderEngineTest, BusyPercentReflectsLoad)
{
    eq_.runUntil(200_ms);
    EXPECT_NEAR(engine_.busyPercent(), 0.0, 1e-9);
    engine_.submitCompute(50_ms); // half of the 100ms window
    eq_.runUntil(eq_.now() + 100_ms);
    EXPECT_NEAR(engine_.busyPercent(), 50.0, 5.0);
}

TEST_F(RenderEngineTest, IdenticalScenesHitTheCache)
{
    // Same content twice: both render (counters double) even though
    // the pipeline work is memoised.
    const auto s = quadScene();
    const SimTime e1 = engine_.submit(s);
    eq_.runUntil(e1 + 1_ms);
    const SimTime e2 = engine_.submit(s);
    eq_.runUntil(e2 + 1_ms);
    EXPECT_EQ(engine_.read(LRZ_VISIBLE_PIXEL_AFTER_LRZ),
              2u * 256u * 256u);
}

TEST_F(RenderEngineTest, NoisePerturbsOnlyActiveCounters)
{
    engine_.setNoiseSigma(3.0);
    const SimTime end = engine_.submit(quadScene());
    eq_.runUntil(end + 1_ms);
    // Counters that were zero in the scene stay exactly zero.
    EXPECT_EQ(engine_.read(LRZ_FULL_8X8_TILES), 0u);
    // Active counters stay in a tight band around the true value.
    const auto pix = engine_.read(LRZ_VISIBLE_PIXEL_AFTER_LRZ);
    EXPECT_NEAR(double(pix), 256.0 * 256.0, 30.0);
}

TEST_F(RenderEngineTest, NoiseIsSeedDeterministic)
{
    EventQueue eqA, eqB;
    RenderEngine a(eqA, adrenoModel(650), 99);
    RenderEngine b(eqB, adrenoModel(650), 99);
    a.setNoiseSigma(2.0);
    b.setNoiseSigma(2.0);
    const SimTime ea = a.submit(quadScene());
    const SimTime eb = b.submit(quadScene());
    eqA.runUntil(ea + 1_ms);
    eqB.runUntil(eb + 1_ms);
    EXPECT_EQ(a.readAll(), b.readAll());
}

TEST_F(RenderEngineTest, LargerScenesTakeLonger)
{
    EventQueue eq2;
    RenderEngine e2(eq2, adrenoModel(650), 1);
    const SimTime small = e2.submit(quadScene(64, 64)) - eq2.now();
    eq2.runUntil(eq2.now() + 1_s);
    const SimTime big =
        e2.submit(quadScene(1024, 1024)) - eq2.now();
    EXPECT_GT(big, small);
}

} // namespace
} // namespace gpusc::gpu
