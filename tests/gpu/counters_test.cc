/** @file Unit tests for the counter definitions and vector helpers. */

#include <gtest/gtest.h>

#include "gpu/counters.h"

namespace gpusc::gpu {
namespace {

TEST(CountersTest, Table1Mapping)
{
    // The exact (group, countable) pairs of the paper's Table 1.
    EXPECT_EQ(counterId(LRZ_VISIBLE_PRIM_AFTER_LRZ).group, 0x19u);
    EXPECT_EQ(counterId(LRZ_VISIBLE_PRIM_AFTER_LRZ).countable, 13u);
    EXPECT_EQ(counterId(LRZ_FULL_8X8_TILES).countable, 14u);
    EXPECT_EQ(counterId(LRZ_PARTIAL_8X8_TILES).countable, 15u);
    EXPECT_EQ(counterId(LRZ_VISIBLE_PIXEL_AFTER_LRZ).countable, 18u);
    EXPECT_EQ(counterId(RAS_SUPERTILE_ACTIVE_CYCLES).group, 0x7u);
    EXPECT_EQ(counterId(RAS_SUPERTILE_ACTIVE_CYCLES).countable, 1u);
    EXPECT_EQ(counterId(RAS_SUPER_TILES).countable, 4u);
    EXPECT_EQ(counterId(RAS_8X4_TILES).countable, 5u);
    EXPECT_EQ(counterId(RAS_FULLY_COVERED_8X4_TILES).countable, 8u);
    EXPECT_EQ(counterId(VPC_PC_PRIMITIVES).group, 0x5u);
    EXPECT_EQ(counterId(VPC_PC_PRIMITIVES).countable, 9u);
    EXPECT_EQ(counterId(VPC_SP_COMPONENTS).countable, 10u);
    EXPECT_EQ(counterId(VPC_LRZ_ASSIGN_PRIMITIVES).countable, 12u);
}

TEST(CountersTest, VendorStringIdentifiers)
{
    EXPECT_EQ(counterName(LRZ_VISIBLE_PRIM_AFTER_LRZ),
              "PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ");
    EXPECT_EQ(counterName(RAS_FULLY_COVERED_8X4_TILES),
              "PERF_RAS_FULLY_COVERED_8X4_TILES");
    EXPECT_EQ(counterName(VPC_SP_COMPONENTS),
              "PERF_VPC_SP_COMPONENTS");
}

TEST(CountersTest, ReverseLookupRoundTrips)
{
    for (std::size_t i = 0; i < kNumSelectedCounters; ++i) {
        const auto sel = SelectedCounter(i);
        const auto back = selectedFromId(counterId(sel));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, sel);
    }
}

TEST(CountersTest, ReverseLookupRejectsUnknown)
{
    EXPECT_FALSE(selectedFromId({0x19, 99}).has_value());
    EXPECT_FALSE(selectedFromId({0x42, 13}).has_value());
}

TEST(CountersTest, GroupLabels)
{
    EXPECT_EQ(groupLabel(CounterGroup::LRZ), "LRZ");
    EXPECT_EQ(groupLabel(CounterGroup::RAS), "RAS");
    EXPECT_EQ(groupLabel(CounterGroup::VPC), "VPC");
}

TEST(CountersTest, VectorArithmetic)
{
    CounterVec a{}, b{};
    a[0] = 5;
    a[3] = -2;
    b[0] = 1;
    b[3] = 7;
    const CounterVec sum = a + b;
    EXPECT_EQ(sum[0], 6);
    EXPECT_EQ(sum[3], 5);
    const CounterVec diff = a - b;
    EXPECT_EQ(diff[0], 4);
    EXPECT_EQ(diff[3], -9);
}

TEST(CountersTest, Norms)
{
    CounterVec v{};
    v[0] = 3;
    v[1] = -4;
    EXPECT_EQ(l1Norm(v), 7);
    CounterVec z{};
    EXPECT_TRUE(isZero(z));
    EXPECT_FALSE(isZero(v));
    EXPECT_DOUBLE_EQ(l2Distance(v, z), 5.0);
}

} // namespace
} // namespace gpusc::gpu
