/** @file Unit tests for the tile-based pipeline counter model. */

#include <gtest/gtest.h>

#include "gpu/model.h"
#include "gpu/pipeline.h"

namespace gpusc::gpu {
namespace {

gfx::FrameScene
sceneWith(std::initializer_list<gfx::Prim> prims,
          gfx::Rect damage = gfx::Rect::ofSize(0, 0, 128, 128))
{
    gfx::FrameScene s;
    s.damage = damage;
    for (const gfx::Prim &p : prims)
        s.add(p.rect, p.opaque, p.tag);
    return s;
}

class PipelineTest : public ::testing::Test
{
  protected:
    Pipeline pipe_{adrenoModel(650)};
};

TEST_F(PipelineTest, EmptySceneIsFree)
{
    const FrameResult r = pipe_.render(gfx::FrameScene{});
    EXPECT_TRUE(isZero(r.deltas));
    EXPECT_EQ(r.rasterizedPixels, 0);
}

TEST_F(PipelineTest, SingleOpaqueQuadCounts)
{
    // A 64x32 quad aligned at the origin.
    const FrameResult r = pipe_.render(sceneWith(
        {{gfx::Rect::ofSize(0, 0, 64, 32), true,
          gfx::PrimTag::AppContent}}));
    const auto &d = r.deltas;
    const GpuModel &m = adrenoModel(650);

    EXPECT_EQ(d[VPC_PC_PRIMITIVES], 2); // one quad = two triangles
    EXPECT_EQ(d[VPC_LRZ_ASSIGN_PRIMITIVES], 2);
    EXPECT_EQ(d[VPC_SP_COMPONENTS], 4 * m.spComponentsPerVertex);

    EXPECT_EQ(d[RAS_8X4_TILES], (64 / 8) * (32 / 4));
    EXPECT_EQ(d[RAS_FULLY_COVERED_8X4_TILES], (64 / 8) * (32 / 4));
    EXPECT_EQ(d[RAS_SUPER_TILES],
              gfx::tilesTouched(gfx::Rect::ofSize(0, 0, 64, 32),
                                m.superTileW, m.superTileH));
    EXPECT_EQ(d[RAS_SUPERTILE_ACTIVE_CYCLES],
              64 * 32 * m.rasCyclesPerKiloPixel / 1000);

    // Nothing occludes it: fully visible, no LRZ-killed tiles.
    EXPECT_EQ(d[LRZ_VISIBLE_PRIM_AFTER_LRZ], 2);
    EXPECT_EQ(d[LRZ_VISIBLE_PIXEL_AFTER_LRZ], 64 * 32);
    EXPECT_EQ(d[LRZ_FULL_8X8_TILES], 0);
    EXPECT_EQ(d[LRZ_PARTIAL_8X8_TILES], 0);
    EXPECT_EQ(r.rasterizedPixels, 64 * 32);
}

TEST_F(PipelineTest, FullyOccludedPrimIsCulled)
{
    // Bottom quad completely under an opaque top quad.
    const FrameResult r = pipe_.render(sceneWith(
        {{gfx::Rect::ofSize(0, 0, 32, 32), true,
          gfx::PrimTag::Background},
         {gfx::Rect::ofSize(0, 0, 32, 32), true,
          gfx::PrimTag::Popup}}));
    const auto &d = r.deltas;
    // Both rasterise...
    EXPECT_EQ(d[VPC_PC_PRIMITIVES], 4);
    EXPECT_EQ(r.rasterizedPixels, 2 * 32 * 32);
    // ...but only the top one survives LRZ.
    EXPECT_EQ(d[LRZ_VISIBLE_PRIM_AFTER_LRZ], 2);
    EXPECT_EQ(d[LRZ_VISIBLE_PIXEL_AFTER_LRZ], 32 * 32);
    // The occluded prim's 16 8x8 blocks were fully killed.
    EXPECT_EQ(d[LRZ_FULL_8X8_TILES], 16);
    EXPECT_EQ(d[LRZ_PARTIAL_8X8_TILES], 0);
}

TEST_F(PipelineTest, PartialOcclusionCountsPartialTiles)
{
    // Top quad covers the left half of the bottom quad.
    const FrameResult r = pipe_.render(sceneWith(
        {{gfx::Rect::ofSize(0, 0, 64, 8), true,
          gfx::PrimTag::Background},
         {gfx::Rect::ofSize(0, 0, 28, 8), true,
          gfx::PrimTag::Popup}}));
    const auto &d = r.deltas;
    // Bottom quad spans 8 8x8 blocks; blocks 0-2 fully occluded,
    // block 3 partially (28 = 3.5 tiles), blocks 4-7 visible.
    EXPECT_EQ(d[LRZ_FULL_8X8_TILES], 3);
    EXPECT_EQ(d[LRZ_PARTIAL_8X8_TILES], 1);
    EXPECT_EQ(d[LRZ_VISIBLE_PRIM_AFTER_LRZ], 4); // both visible
    EXPECT_EQ(d[LRZ_VISIBLE_PIXEL_AFTER_LRZ],
              28 * 8 + (64 - 28) * 8);
}

TEST_F(PipelineTest, TranslucentPrimsDoNotOccludeButAreVisible)
{
    const FrameResult r = pipe_.render(sceneWith(
        {{gfx::Rect::ofSize(0, 0, 32, 32), true,
          gfx::PrimTag::Background},
         {gfx::Rect::ofSize(0, 0, 32, 32), false,
          gfx::PrimTag::Popup}})); // translucent shadow on top
    const auto &d = r.deltas;
    // Both prims visible: the shadow does not kill the background.
    EXPECT_EQ(d[LRZ_VISIBLE_PRIM_AFTER_LRZ], 4);
    EXPECT_EQ(d[LRZ_VISIBLE_PIXEL_AFTER_LRZ], 2 * 32 * 32);
    EXPECT_EQ(d[LRZ_FULL_8X8_TILES], 0);
}

TEST_F(PipelineTest, BackToFrontOrderMatters)
{
    // Same two quads, swapped order: the occluded one changes.
    const auto first = pipe_.render(sceneWith(
        {{gfx::Rect::ofSize(0, 0, 16, 16), true, gfx::PrimTag::KeyCap},
         {gfx::Rect::ofSize(8, 0, 16, 16), true,
          gfx::PrimTag::Popup}}));
    const auto second = pipe_.render(sceneWith(
        {{gfx::Rect::ofSize(8, 0, 16, 16), true, gfx::PrimTag::Popup},
         {gfx::Rect::ofSize(0, 0, 16, 16), true,
          gfx::PrimTag::KeyCap}}));
    // Total visible pixels equal (same union)...
    EXPECT_EQ(first.deltas[LRZ_VISIBLE_PIXEL_AFTER_LRZ],
              second.deltas[LRZ_VISIBLE_PIXEL_AFTER_LRZ]);
    // ...but the per-prim visibility assignment differs, which the
    // partial-tile counts expose.
    EXPECT_EQ(first.deltas[LRZ_VISIBLE_PIXEL_AFTER_LRZ], 24 * 16);
}

TEST_F(PipelineTest, DamageClipsEverything)
{
    const FrameResult r = pipe_.render(sceneWith(
        {{gfx::Rect::ofSize(0, 0, 200, 200), true,
          gfx::PrimTag::Background}},
        gfx::Rect::ofSize(0, 0, 64, 64)));
    EXPECT_EQ(r.deltas[LRZ_VISIBLE_PIXEL_AFTER_LRZ], 64 * 64);
    EXPECT_EQ(r.rasterizedPixels, 64 * 64);
}

TEST_F(PipelineTest, TileAlignmentChangesSignature)
{
    // The same content at x and x+3: RAS tile counts differ because
    // grid alignment differs — position leaks into the counters.
    const auto at0 = pipe_.render(sceneWith(
        {{gfx::Rect::ofSize(0, 0, 30, 12), true,
          gfx::PrimTag::Popup}}));
    const auto at3 = pipe_.render(sceneWith(
        {{gfx::Rect::ofSize(3, 0, 30, 12), true,
          gfx::PrimTag::Popup}}));
    EXPECT_EQ(at0.deltas[LRZ_VISIBLE_PIXEL_AFTER_LRZ],
              at3.deltas[LRZ_VISIBLE_PIXEL_AFTER_LRZ]);
    EXPECT_NE(at0.deltas[RAS_8X4_TILES], at3.deltas[RAS_8X4_TILES]);
}

TEST_F(PipelineTest, DeterministicAcrossCalls)
{
    const auto scene = sceneWith(
        {{gfx::Rect::ofSize(5, 7, 50, 40), true,
          gfx::PrimTag::KeyCap},
         {gfx::Rect::ofSize(20, 10, 30, 30), true,
          gfx::PrimTag::Popup}});
    const auto a = pipe_.render(scene);
    const auto b = pipe_.render(scene);
    EXPECT_EQ(a.deltas, b.deltas);
}

TEST_F(PipelineTest, ModelTileSizesShapeCounts)
{
    // Different Adreno generations count supertiles differently.
    Pipeline p540{adrenoModel(540)};
    Pipeline p650{adrenoModel(650)};
    const auto scene = sceneWith(
        {{gfx::Rect::ofSize(0, 0, 128, 128), true,
          gfx::PrimTag::Background}});
    const auto a = p540.render(scene);
    const auto b = p650.render(scene);
    EXPECT_GT(a.deltas[RAS_SUPER_TILES], b.deltas[RAS_SUPER_TILES]);
    EXPECT_NE(a.deltas[RAS_SUPERTILE_ACTIVE_CYCLES],
              b.deltas[RAS_SUPERTILE_ACTIVE_CYCLES]);
}

} // namespace
} // namespace gpusc::gpu
