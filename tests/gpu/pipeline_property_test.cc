/**
 * @file
 * Property sweeps over randomly generated scenes: invariants the
 * pipeline must hold for *any* draw list, independent of content.
 */

#include <gtest/gtest.h>

#include "gpu/model.h"
#include "gpu/pipeline.h"
#include "util/rng.h"

namespace gpusc::gpu {
namespace {

gfx::FrameScene
randomScene(Rng &rng, int maxPrims)
{
    gfx::FrameScene s;
    const int w = 64 + int(rng.uniformInt(0, 400));
    const int h = 64 + int(rng.uniformInt(0, 400));
    s.damage = gfx::Rect::ofSize(int(rng.uniformInt(0, 50)),
                                 int(rng.uniformInt(0, 50)), w, h);
    const int prims = 1 + int(rng.uniformInt(0, maxPrims - 1));
    for (int i = 0; i < prims; ++i) {
        const int pw = 1 + int(rng.uniformInt(0, w));
        const int ph = 1 + int(rng.uniformInt(0, h));
        const int px =
            s.damage.x0 + int(rng.uniformInt(-20, std::int64_t(w)));
        const int py =
            s.damage.y0 + int(rng.uniformInt(-20, std::int64_t(h)));
        s.add(gfx::Rect::ofSize(px, py, pw, ph), rng.bernoulli(0.8),
              gfx::PrimTag::AppContent);
    }
    return s;
}

class ScenePropertySweep : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    Pipeline pipe_{adrenoModel(650)};
};

TEST_P(ScenePropertySweep, VisibleNeverExceedsRasterized)
{
    Rng rng(GetParam());
    for (int round = 0; round < 20; ++round) {
        const auto scene = randomScene(rng, 40);
        const FrameResult r = pipe_.render(scene);
        EXPECT_LE(r.deltas[LRZ_VISIBLE_PIXEL_AFTER_LRZ],
                  r.rasterizedPixels);
        EXPECT_LE(r.deltas[LRZ_VISIBLE_PRIM_AFTER_LRZ],
                  r.deltas[VPC_PC_PRIMITIVES]);
    }
}

TEST_P(ScenePropertySweep, OpaqueVisiblePixelsBoundedByDamage)
{
    // For fully opaque scenes every pixel is won by exactly one prim,
    // so visible pixels cannot exceed the damage area. (Translucent
    // prims do not occlude, so stacks of them legitimately count the
    // same pixel several times — no such bound exists in general.)
    Rng rng(GetParam() ^ 0x1111);
    for (int round = 0; round < 20; ++round) {
        auto scene = randomScene(rng, 40);
        for (auto &p : scene.prims)
            p.opaque = true;
        const FrameResult r = pipe_.render(scene);
        EXPECT_LE(r.deltas[LRZ_VISIBLE_PIXEL_AFTER_LRZ],
                  scene.damage.area());
    }
}

TEST_P(ScenePropertySweep, FrontEndCountsAreExact)
{
    Rng rng(GetParam() ^ 0x2222);
    for (int round = 0; round < 20; ++round) {
        const auto scene = randomScene(rng, 40);
        const FrameResult r = pipe_.render(scene);
        EXPECT_EQ(r.deltas[VPC_PC_PRIMITIVES],
                  std::int64_t(scene.prims.size()) * 2);
        EXPECT_EQ(r.deltas[VPC_LRZ_ASSIGN_PRIMITIVES],
                  r.deltas[VPC_PC_PRIMITIVES]);
        EXPECT_EQ(r.deltas[VPC_SP_COMPONENTS],
                  std::int64_t(scene.prims.size()) * 4 *
                      adrenoModel(650).spComponentsPerVertex);
    }
}

TEST_P(ScenePropertySweep, LrzKilledTilesBoundedByRasTiles)
{
    Rng rng(GetParam() ^ 0x3333);
    for (int round = 0; round < 20; ++round) {
        const auto scene = randomScene(rng, 40);
        const FrameResult r = pipe_.render(scene);
        // Each prim's 8x8 blocks: full+partial killed blocks can never
        // exceed the total blocks the prims span. Two 8x4 RAS tiles
        // fit in one 8x8 block, so 2x the 8x8 budget bounds RAS too.
        std::int64_t totalBlocks = 0;
        for (const auto &p : scene.prims)
            totalBlocks += gfx::tilesTouched(
                p.rect.intersect(scene.damage), 8, 8);
        EXPECT_LE(r.deltas[LRZ_FULL_8X8_TILES] +
                      r.deltas[LRZ_PARTIAL_8X8_TILES],
                  totalBlocks);
        EXPECT_LE(r.deltas[RAS_FULLY_COVERED_8X4_TILES],
                  r.deltas[RAS_8X4_TILES]);
    }
}

TEST_P(ScenePropertySweep, AllCountersAreNonNegative)
{
    Rng rng(GetParam() ^ 0x4444);
    for (int round = 0; round < 20; ++round) {
        const FrameResult r = pipe_.render(randomScene(rng, 40));
        for (std::int64_t v : r.deltas)
            EXPECT_GE(v, 0);
    }
}

TEST_P(ScenePropertySweep, FullyOpaqueCoverMakesLaterPrimsInvisible)
{
    // Prepend an opaque full-damage quad at the FRONT (end of the
    // list): everything behind it must be fully culled.
    Rng rng(GetParam() ^ 0x5555);
    for (int round = 0; round < 10; ++round) {
        auto scene = randomScene(rng, 20);
        scene.add(scene.damage, true, gfx::PrimTag::Popup);
        const FrameResult r = pipe_.render(scene);
        EXPECT_EQ(r.deltas[LRZ_VISIBLE_PRIM_AFTER_LRZ], 2);
        EXPECT_EQ(r.deltas[LRZ_VISIBLE_PIXEL_AFTER_LRZ],
                  scene.damage.area());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenePropertySweep,
                         ::testing::Values(11, 22, 33, 44, 55));

} // namespace
} // namespace gpusc::gpu
