/** @file Unit tests for GPU model descriptors. */

#include <gtest/gtest.h>

#include "gpu/model.h"

namespace gpusc::gpu {
namespace {

TEST(GpuModelTest, SupportedGenerations)
{
    for (int gen : supportedAdrenoGenerations()) {
        const GpuModel &m = adrenoModel(gen);
        EXPECT_EQ(m.generation, gen);
        EXPECT_EQ(m.name, "Adreno " + std::to_string(gen));
        EXPECT_GT(m.clockMhz, 0.0);
    }
}

TEST(GpuModelTest, GenerationsDiffer)
{
    const GpuModel &a540 = adrenoModel(540);
    const GpuModel &a660 = adrenoModel(660);
    // Parameters must differ so per-model signatures differ.
    EXPECT_NE(a540.superTileW, a660.superTileW);
    EXPECT_NE(a540.rasCyclesPerKiloPixel, a660.rasCyclesPerKiloPixel);
}

TEST(GpuModelTest, LrzAndRasTilesMatchCounterNames)
{
    // The counter names encode 8x8 (LRZ) and 8x4 (RAS) tiles.
    for (int gen : supportedAdrenoGenerations()) {
        const GpuModel &m = adrenoModel(gen);
        EXPECT_EQ(m.lrzTileW, 8);
        EXPECT_EQ(m.lrzTileH, 8);
        EXPECT_EQ(m.rasTileW, 8);
        EXPECT_EQ(m.rasTileH, 4);
    }
}

TEST(GpuModelTest, RenderCostGrowsWithPixels)
{
    const GpuModel &m = adrenoModel(650);
    EXPECT_GT(m.renderCostUs(1000000), m.renderCostUs(1000));
    EXPECT_GT(m.renderCostUs(0), 0.0); // base cost
}

TEST(GpuModelDeathTest, UnknownGenerationIsFatal)
{
    EXPECT_DEATH((void)adrenoModel(123), "unsupported");
}

} // namespace
} // namespace gpusc::gpu
