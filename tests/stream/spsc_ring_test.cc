/**
 * @file
 * SpscRing: FIFO order, capacity bounds, wraparound, shed-oldest,
 * and a true two-thread producer/consumer run (the case the CI
 * thread-sanitize job watches).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "stream/spsc_ring.h"

namespace gpusc::stream {
namespace {

TEST(SpscRingTest, PushPopFifoOrder)
{
    SpscRing<int> ring(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(ring.tryPush(i));
    int v = -1;
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(ring.tryPop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(ring.tryPop(v));
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, RejectsPushWhenFull)
{
    SpscRing<int> ring(3);
    EXPECT_EQ(ring.capacity(), 3u);
    EXPECT_TRUE(ring.tryPush(1));
    EXPECT_TRUE(ring.tryPush(2));
    EXPECT_TRUE(ring.tryPush(3));
    EXPECT_FALSE(ring.tryPush(4));
    EXPECT_EQ(ring.size(), 3u);
}

TEST(SpscRingTest, WrapsAroundManyTimes)
{
    SpscRing<int> ring(4);
    int v = -1;
    for (int round = 0; round < 100; ++round) {
        EXPECT_TRUE(ring.tryPush(round));
        EXPECT_TRUE(ring.tryPush(round + 1000));
        ASSERT_TRUE(ring.tryPop(v));
        EXPECT_EQ(v, round);
        ASSERT_TRUE(ring.tryPop(v));
        EXPECT_EQ(v, round + 1000);
    }
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, ShedOldestMakesRoomForNewest)
{
    SpscRing<int> ring(3);
    EXPECT_TRUE(ring.tryPush(1));
    EXPECT_TRUE(ring.tryPush(2));
    EXPECT_TRUE(ring.tryPush(3));
    int dropped = -1;
    ASSERT_TRUE(ring.shedOldest(dropped));
    EXPECT_EQ(dropped, 1);
    EXPECT_TRUE(ring.tryPush(4));
    int v = -1;
    ASSERT_TRUE(ring.tryPop(v));
    EXPECT_EQ(v, 2);
    ASSERT_TRUE(ring.tryPop(v));
    EXPECT_EQ(v, 3);
    ASSERT_TRUE(ring.tryPop(v));
    EXPECT_EQ(v, 4);
}

TEST(SpscRingTest, ShedOldestOnEmptyIsFalse)
{
    SpscRing<int> ring(3);
    int v = -1;
    EXPECT_FALSE(ring.shedOldest(v));
}

TEST(SpscRingTest, SlotBytesAccountsTheBackingArray)
{
    SpscRing<std::uint64_t> ring(7);
    // capacity + 1 slots (one empty slot disambiguates full/empty).
    EXPECT_EQ(ring.slotBytes(), 8 * sizeof(std::uint64_t));
}

TEST(SpscRingTest, ConcurrentProducerConsumerDeliversEverythingInOrder)
{
    constexpr std::uint64_t kCount = 20000;
    SpscRing<std::uint64_t> ring(128);
    std::vector<std::uint64_t> received;
    received.reserve(kCount);

    std::thread consumer([&] {
        std::uint64_t v = 0;
        while (received.size() < kCount)
            if (ring.tryPop(v))
                received.push_back(v);
    });
    for (std::uint64_t i = 0; i < kCount;) {
        if (ring.tryPush(i))
            ++i;
    }
    consumer.join();

    ASSERT_EQ(received.size(), kCount);
    for (std::uint64_t i = 0; i < kCount; ++i)
        ASSERT_EQ(received[i], i) << "out of order at " << i;
}

} // namespace
} // namespace gpusc::stream
