/**
 * @file
 * Integration tests for the live telemetry plane over the streaming
 * service: enabling the plane never changes inferred output (serial
 * and pooled pumps), the windowed series reconciles exactly with the
 * cumulative snapshot (and the funnel identity holds per-window), an
 * SLO watchdog fires AND resolves under a shed burst, and the JSONL
 * sink emits one well-formed record per closed window plus the .prom
 * trailer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "stream/ingest_service.h"
#include "util/logging.h"

namespace gpusc::stream {
namespace {

/** Minimal synthetic model: 4 distinguishable key signatures. */
attack::SignatureModel
testModel()
{
    attack::SignatureModel m;
    m.setModelKey("test/live-plane");
    std::array<double, gpu::kNumSelectedCounters> scale{};
    scale.fill(1.0 / 1000.0);
    m.setScale(scale);
    for (char ch : {'a', 'b', 'c', 'd'}) {
        attack::LabelSignature sig;
        sig.label = attack::Label(1, ch);
        for (std::size_t d = 0; d < sig.centroid.size(); ++d)
            sig.centroid[d] = 8000 + 600 * (ch - 'a') + 37 * long(d);
        m.addSignature(sig);
    }
    m.setThreshold(3.0);
    return m;
}

/** @p n readings at 8 ms cadence; every 16th carries a keypress. */
std::vector<attack::Reading>
synthesizeReadings(std::size_t n)
{
    std::vector<attack::Reading> out;
    out.reserve(n);
    attack::Reading r;
    gpu::CounterTotals totals{};
    for (std::size_t i = 0; i < n; ++i) {
        r.time = SimTime::fromMs(std::int64_t(8 * i));
        if (i % 16 == 15) {
            const int key = int(i / 16) % 4;
            for (std::size_t d = 0; d < totals.size(); ++d)
                totals[d] +=
                    std::uint64_t(8000 + 600 * key + 37 * int(d));
        }
        r.totals = totals;
        out.push_back(r);
    }
    return out;
}

IngestService::Params
baseParams()
{
    IngestService::Params p;
    p.backpressure = IngestService::Backpressure::Block;
    p.sessions.session.adaptation = false;
    return p;
}

obs::live::LiveConfig
smallWindowConfig()
{
    obs::live::LiveConfig cfg;
    cfg.series.fineWidth = SimTime::fromMs(100);
    cfg.series.fineCapacity = 8;
    cfg.series.coarsePerFine = 4;
    cfg.series.coarseCapacity = 4;
    return cfg;
}

/** Ingest @p readings into @p fleet sessions; pooled when workers>1. */
std::vector<std::string>
runService(IngestService &svc,
           const std::vector<attack::Reading> &readings,
           SessionId fleet, int workers)
{
    std::unique_ptr<exec::ThreadPool> pool;
    if (workers > 1)
        pool = std::make_unique<exec::ThreadPool>(workers);
    std::size_t sincePump = 0;
    for (const attack::Reading &r : readings) {
        for (SessionId id = 0; id < fleet; ++id)
            svc.offer(id, r);
        if (++sincePump == 32) {
            if (pool)
                svc.pump(*pool);
            else
                svc.pump();
            sincePump = 0;
        }
    }
    if (pool)
        svc.pump(*pool);
    else
        svc.pump();
    svc.finishLivePlane();
    std::vector<std::string> inferred;
    for (SessionId id = 0; id < fleet; ++id) {
        const Session *s = svc.sessions().find(id);
        EXPECT_NE(s, nullptr) << "session " << id;
        inferred.push_back(
            s != nullptr ? s->eavesdropper().inferredText() : "");
    }
    return inferred;
}

TEST(LivePlaneStreamTest, PlaneNeverChangesInferredOutputAnyWorkers)
{
    setVerbose(false);
    const attack::SignatureModel model = testModel();
    const std::vector<attack::Reading> readings =
        synthesizeReadings(640);
    const SessionId fleet = 5;

    std::map<std::string, std::vector<std::string>> results;
    for (const bool plane : {false, true})
        for (const int workers : {1, 4}) {
            IngestService svc(model, baseParams());
            if (plane)
                svc.enableLivePlane(smallWindowConfig());
            const std::string key = (plane ? "on" : "off") +
                                    std::string("/w") +
                                    std::to_string(workers);
            results[key] = runService(svc, readings, fleet, workers);
        }

    const std::vector<std::string> &golden = results["off/w1"];
    ASSERT_EQ(golden.size(), std::size_t(fleet));
    EXPECT_FALSE(golden[0].empty()) << "pipeline inferred nothing — "
                                       "the comparison is vacuous";
    for (const auto &[key, inferred] : results)
        for (SessionId id = 0; id < fleet; ++id)
            EXPECT_EQ(inferred[id], golden[id])
                << "config " << key << ", session " << id;
}

TEST(LivePlaneStreamTest, WindowsReconcileExactlyWithTheSnapshot)
{
    setVerbose(false);
    const attack::SignatureModel model = testModel();
    IngestService svc(model, baseParams());
    svc.enableLivePlane(smallWindowConfig());
    runService(svc, synthesizeReadings(1280), 3, 1);

    const obs::live::LivePlane *plane = svc.livePlane();
    ASSERT_NE(plane, nullptr);
    const obs::live::TimeSeries &ts = plane->series();
    // Enough windows to exercise fine->coarse->archive roll-up.
    EXPECT_GT(ts.windowsClosed(), 40u);
    EXPECT_GT(ts.rollupsFine(), 0u);
    EXPECT_GT(ts.rollupsCoarse(), 0u);

    // The reconciliation identity: windowed deltas sum exactly to
    // the cumulative snapshot for every tracked counter. (Counters
    // that never moved have a cumulative baseline of 0 but no window
    // entries, so the comparison is value-wise, not map-wise.)
    const std::map<std::string, std::uint64_t> totals =
        ts.totalCounterDeltas();
    const auto total = [&](const std::string &name) {
        const auto it = totals.find(name);
        return it == totals.end() ? std::uint64_t(0) : it->second;
    };
    const std::map<std::string, std::uint64_t> &cum = ts.cumulative();
    for (const auto &[name, value] : cum)
        EXPECT_EQ(total(name), value) << "counter " << name;
    for (const auto &entry : totals)
        EXPECT_EQ(cum.count(entry.first), 1u)
            << "windowed counter " << entry.first
            << " missing from the snapshot";

    // The service's own counters were tracked and are non-trivial.
    ASSERT_EQ(cum.count("ingest.readings_offered"), 1u);
    EXPECT_EQ(cum.at("ingest.readings_offered"),
              svc.readingsOffered());

    // Funnel identity over the windowed synthetic counters.
    const std::uint64_t changesIn = total("funnel.changes_in");
    EXPECT_GT(changesIn, 0u);
    EXPECT_EQ(changesIn, total("funnel.accepted-key") +
                             total("funnel.split-repaired") +
                             total("funnel.duplication-drop") +
                             total("funnel.noise-rejected") +
                             total("funnel.suppressed-app-switch"));
}

TEST(LivePlaneStreamTest, ShedBurstFiresAndResolvesTheWatchdog)
{
    setVerbose(false);
    IngestService::Params params = baseParams();
    params.backpressure = IngestService::Backpressure::ShedOldest;
    params.sessions.session.ringCapacity = 8;
    const attack::SignatureModel model = testModel();
    IngestService svc(model, params);

    obs::live::LiveConfig cfg = smallWindowConfig();
    obs::live::SloRule rule;
    rule.name = "shed-burst";
    rule.kind = obs::live::SloRule::Kind::CounterRate;
    rule.cmp = obs::live::SloRule::Cmp::Gt;
    rule.counters = {"ingest.shed_oldest"};
    rule.threshold = 0.0; // any shedding in a window breaches
    rule.fireAfter = 1;
    rule.resolveAfter = 2;
    cfg.rules.push_back(rule);
    svc.enableLivePlane(std::move(cfg));

    const std::vector<attack::Reading> readings =
        synthesizeReadings(1600);
    // Burst phase: a full window of offers between pumps overflows
    // the 8-deep ring and sheds; quiet phase: pump every reading, so
    // the ring never fills and windows close shed-free.
    std::size_t at = 0;
    for (; at < 800; ++at) {
        svc.offer(0, readings[at]);
        if (at % 64 == 63)
            svc.pump();
    }
    svc.pump(); // drain the burst remnants before the quiet phase
    const std::uint64_t shedsAfterBurst = svc.readingsShedOldest();
    EXPECT_GT(shedsAfterBurst, 0u);
    for (; at < readings.size(); ++at) {
        svc.offer(0, readings[at]);
        svc.pump();
    }
    svc.finishLivePlane();
    EXPECT_EQ(svc.readingsShedOldest(), shedsAfterBurst)
        << "quiet phase unexpectedly shed — the resolve leg is "
           "untested";

    const obs::live::SloEngine &slo = svc.livePlane()->slo();
    ASSERT_EQ(slo.alerts().size(), 1u);
    const obs::live::AlertState &state = slo.alerts()[0];
    EXPECT_GE(state.timesFired, 1u);
    EXPECT_GE(state.timesResolved, 1u);
    EXPECT_FALSE(state.firing);

    // Transitions were audited under LiveObs, outside the funnel.
    const obs::AuditTrail &audit = svc.serviceTelemetry().audit;
    EXPECT_GE(audit.count(obs::Decision::AlertFired), 1u);
    EXPECT_GE(audit.count(obs::Decision::AlertResolved), 1u);

    // The plane published the service gauges at tick time.
    const obs::MetricRegistry &m = svc.serviceTelemetry().metrics;
    ASSERT_EQ(m.gauges().count("stream.sessions_active"), 1u);
    EXPECT_DOUBLE_EQ(m.gauges().at("stream.sessions_active")->value(),
                     1.0);
    EXPECT_GT(m.gauges().at("stream.memory_used_bytes")->value(), 0.0);
}

TEST(LivePlaneStreamTest, JsonlSinkWritesWindowsAndPromTrailer)
{
    setVerbose(false);
    const std::string path =
        ::testing::TempDir() + "live_plane_windows.jsonl";
    const attack::SignatureModel model = testModel();
    IngestService svc(model, baseParams());
    obs::live::LiveConfig cfg = smallWindowConfig();
    cfg.jsonlPath = path;
    svc.enableLivePlane(std::move(cfg));
    runService(svc, synthesizeReadings(640), 2, 1);

    const std::uint64_t emitted = svc.livePlane()->windowsEmitted();
    EXPECT_GT(emitted, 0u);
    EXPECT_EQ(emitted, svc.livePlane()->series().windowsClosed());

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::uint64_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"t_ms\": "), std::string::npos);
        EXPECT_NE(line.find("\"alerts_active\": "), std::string::npos);
    }
    EXPECT_EQ(lines, emitted);

    // finish() leaves the final Prometheus text next to the JSONL.
    std::ifstream prom(path + ".prom");
    ASSERT_TRUE(prom.good());
    std::stringstream buf;
    buf << prom.rdbuf();
    EXPECT_NE(buf.str().find("gpusc_ingest_readings_offered_total"),
              std::string::npos);
    std::remove(path.c_str());
    std::remove((path + ".prom").c_str());
}

} // namespace
} // namespace gpusc::stream
