/**
 * @file
 * IngestService: the determinism pins (single-session trace ingest
 * bit-identical to batch replay; parallel pump aggregate-equivalent
 * to serial), backpressure policy semantics + audit, session LRU
 * eviction under both budgets, and funnel identity with sheds.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "attack/model_store.h"
#include "eval/experiment.h"
#include "exec/thread_pool.h"
#include "stream/ingest_service.h"
#include "trace/trace_replayer.h"
#include "util/logging.h"

namespace gpusc::stream {
namespace {

attack::ModelStore &
store()
{
    static attack::ModelStore s;
    return s;
}

struct RecordedRun
{
    std::string path;
    attack::SignatureModel model;
    std::vector<eval::TrialResult> live;
};

void
recordRun(RecordedRun &run, const std::string &name,
          std::uint64_t seed,
          const std::vector<std::string> &credentials)
{
    run.path = ::testing::TempDir() + name;
    eval::ExperimentConfig cfg;
    cfg.seed = seed;
    cfg.recordTracePath = run.path;
    eval::ExperimentRunner runner(cfg, store());
    for (const std::string &cred : credentials)
        run.live.push_back(runner.runTrial(cred));
    run.model = runner.model();
    EXPECT_EQ(runner.finishRecording(), trace::TraceError::None);
}

/** Params for the deterministic baseline: lossless, no adaptation. */
IngestService::Params
losslessParams()
{
    IngestService::Params p;
    p.backpressure = IngestService::Backpressure::Block;
    p.sessions.session.adaptation = false;
    return p;
}

attack::Reading
readingAt(std::int64_t ms, std::int64_t level = 0)
{
    attack::Reading r;
    r.time = SimTime::fromMs(ms);
    r.totals.fill(std::uint64_t(level));
    return r;
}

TEST(IngestServiceTest, SingleSessionIngestMatchesBatchReplayExactly)
{
    setVerbose(false);
    RecordedRun run;
    recordRun(run, "ingest_golden.gpct", 401,
              {"letmein", "hunter2"});
    if (::testing::Test::HasFatalFailure())
        return;

    trace::TraceReplayer replayer(run.model);
    ASSERT_EQ(replayer.replayFile(run.path), trace::TraceError::None);

    IngestService svc(run.model, losslessParams());
    std::vector<IngestService::Trial> trials;
    ASSERT_EQ(svc.ingestTraceFile(run.path, 7, &trials),
              trace::TraceError::None);

    // Trial scoring matches the batch replayer (and the live run).
    ASSERT_EQ(trials.size(), replayer.trials().size());
    for (std::size_t i = 0; i < trials.size(); ++i) {
        EXPECT_EQ(trials[i].truth, replayer.trials()[i].truth);
        EXPECT_EQ(trials[i].inferred, replayer.trials()[i].inferred)
            << "streaming ingest diverged from batch replay, trial "
            << i;
        EXPECT_EQ(trials[i].inferred, run.live[i].inferred);
    }

    // The full stolen-event stream is bit-identical, not just the
    // per-trial text.
    const Session *s = svc.sessions().find(7);
    ASSERT_NE(s, nullptr);
    const auto &streamed = s->eavesdropper().events();
    const auto &batch = replayer.eavesdropper().events();
    ASSERT_EQ(streamed.size(), batch.size());
    for (std::size_t i = 0; i < streamed.size(); ++i) {
        EXPECT_EQ(int(streamed[i].kind), int(batch[i].kind));
        EXPECT_EQ(streamed[i].ch, batch[i].ch);
        EXPECT_EQ(streamed[i].time.ns(), batch[i].time.ns());
    }

    // Lossless policy: nothing shed, everything drained.
    EXPECT_EQ(svc.readingsShedOldest(), 0u);
    EXPECT_EQ(svc.readingsShedNewest(), 0u);
    EXPECT_EQ(s->readingsDrained(), svc.readingsOffered());
    std::remove(run.path.c_str());
}

TEST(IngestServiceTest, ParallelPumpIsAggregateEquivalentToSerial)
{
    setVerbose(false);
    RecordedRun run;
    recordRun(run, "ingest_par.gpct", 402, {"pa55word"});
    if (::testing::Test::HasFatalFailure())
        return;

    // Load the readings once; fan the identical stream out to many
    // sessions, pumping serially in one service and across a pool in
    // the other.
    std::vector<attack::Reading> readings;
    {
        trace::TraceReader reader;
        ASSERT_EQ(reader.open(run.path), trace::TraceError::None);
        trace::TraceRecord rec;
        bool eof = false;
        while (reader.next(rec, eof) == trace::TraceError::None &&
               !eof)
            if (rec.kind == trace::RecordKind::Reading)
                readings.push_back(rec.reading);
    }
    ASSERT_FALSE(readings.empty());

    constexpr SessionId kSessions = 8;
    IngestService serial(run.model, losslessParams());
    IngestService parallel(run.model, losslessParams());
    exec::ThreadPool pool(4);

    std::size_t fed = 0;
    for (const attack::Reading &r : readings) {
        for (SessionId sid = 0; sid < kSessions; ++sid) {
            serial.offer(sid, r);
            parallel.offer(sid, r);
        }
        if (++fed % 64 == 0) {
            serial.pump();
            parallel.pump(pool);
        }
    }
    serial.pump();
    parallel.pump(pool);

    // Per-session outputs are identical...
    for (SessionId sid = 0; sid < kSessions; ++sid) {
        const Session *a = serial.sessions().find(sid);
        const Session *b = parallel.sessions().find(sid);
        ASSERT_NE(a, nullptr);
        ASSERT_NE(b, nullptr);
        EXPECT_EQ(a->eavesdropper().inferredText(),
                  b->eavesdropper().inferredText())
            << "session " << sid
            << " diverged between serial and parallel pump";
    }

    // ...and so is the aggregated decision funnel.
    obs::Telemetry aggSerial, aggParallel;
    serial.aggregateTelemetry(aggSerial);
    parallel.aggregateTelemetry(aggParallel);
    EXPECT_EQ(aggSerial.audit.funnelJson(),
              aggParallel.audit.funnelJson());
    EXPECT_EQ(aggSerial.audit.recorded(), aggParallel.audit.recorded());
    std::remove(run.path.c_str());
}

TEST(IngestServiceTest, ShedOldestDropsQueueHeadAndAudits)
{
    IngestService::Params p;
    p.backpressure = IngestService::Backpressure::ShedOldest;
    p.sessions.session.ringCapacity = 4;
    p.sessions.session.adaptation = false;
    attack::SignatureModel model;
    IngestService svc(model, p);

    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(svc.offer(1, readingAt(i)));
    EXPECT_EQ(svc.readingsShedOldest(), 6u);
    EXPECT_EQ(svc.readingsShedNewest(), 0u);
    EXPECT_EQ(
        svc.serviceTelemetry().audit.count(
            obs::Decision::ShedOldestDrop),
        6u);
    // The newest 4 survive.
    EXPECT_EQ(svc.pump(), 4u);
}

TEST(IngestServiceTest, ShedNewestDropsIncomingAndKeepsQueue)
{
    IngestService::Params p;
    p.backpressure = IngestService::Backpressure::ShedNewest;
    p.sessions.session.ringCapacity = 4;
    p.sessions.session.adaptation = false;
    attack::SignatureModel model;
    IngestService svc(model, p);

    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(svc.offer(1, readingAt(i)));
    for (int i = 4; i < 10; ++i)
        EXPECT_FALSE(svc.offer(1, readingAt(i)))
            << "offer should report the shed";
    EXPECT_EQ(svc.readingsShedNewest(), 6u);
    EXPECT_EQ(
        svc.serviceTelemetry().audit.count(
            obs::Decision::ShedNewestDrop),
        6u);
    EXPECT_EQ(svc.pump(), 4u);
}

TEST(IngestServiceTest, BlockPolicyLosesNothingOnOverflow)
{
    IngestService::Params p;
    p.backpressure = IngestService::Backpressure::Block;
    p.sessions.session.ringCapacity = 4;
    p.sessions.session.adaptation = false;
    attack::SignatureModel model;
    IngestService svc(model, p);

    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(svc.offer(1, readingAt(i)));
    EXPECT_GT(svc.blockDrains(), 0u);
    EXPECT_EQ(svc.readingsShedOldest(), 0u);
    EXPECT_EQ(svc.readingsShedNewest(), 0u);
    svc.pump();
    const Session *s = svc.sessions().find(1);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->readingsDrained(), 100u);
}

TEST(IngestServiceTest, LruEvictionHonoursMaxSessionsAndTouchOrder)
{
    IngestService::Params p;
    p.sessions.maxSessions = 2;
    p.sessions.session.adaptation = false;
    attack::SignatureModel model;
    IngestService svc(model, p);

    svc.offer(1, readingAt(0));
    svc.offer(2, readingAt(1));
    svc.offer(3, readingAt(2)); // evicts 1 (least recently touched)
    EXPECT_EQ(svc.sessions().find(1), nullptr);
    EXPECT_NE(svc.sessions().find(2), nullptr);
    EXPECT_NE(svc.sessions().find(3), nullptr);

    svc.offer(2, readingAt(3)); // 2 becomes most recent
    svc.offer(4, readingAt(4)); // evicts 3
    EXPECT_EQ(svc.sessions().find(3), nullptr);
    EXPECT_NE(svc.sessions().find(2), nullptr);
    EXPECT_NE(svc.sessions().find(4), nullptr);

    EXPECT_EQ(svc.sessions().sessionsEvicted(), 2u);
    EXPECT_EQ(
        svc.serviceTelemetry().audit.count(
            obs::Decision::SessionEvicted),
        2u);
}

TEST(IngestServiceTest, MemoryBudgetEvictsButNeverTheActiveSession)
{
    IngestService::Params p;
    p.sessions.session.adaptation = false;
    p.sessions.session.ringCapacity = 16;
    attack::SignatureModel model;
    // Budget that fits roughly one session: every new session evicts
    // the previous one, but the active offer always lands.
    {
        IngestService probe(model, p);
        probe.offer(1, readingAt(0));
        p.sessions.memoryBudgetBytes =
            probe.sessions().memoryUseBytes() + 64;
    }
    IngestService svc(model, p);
    for (SessionId sid = 1; sid <= 5; ++sid)
        EXPECT_TRUE(svc.offer(sid, readingAt(std::int64_t(sid))));
    EXPECT_NE(svc.sessions().find(5), nullptr);
    EXPECT_GE(svc.sessions().sessionsEvicted(), 3u);
    EXPECT_LE(svc.sessions().memoryUseBytes(),
              p.sessions.memoryBudgetBytes);
}

TEST(IngestServiceTest, EvictedSessionsRetireTheirTelemetry)
{
    IngestService::Params p;
    p.sessions.maxSessions = 1;
    p.sessions.session.adaptation = false;
    attack::SignatureModel model;
    IngestService svc(model, p);

    for (int i = 0; i < 50; ++i)
        svc.offer(1, readingAt(i, 1000 * i));
    svc.pump();
    svc.offer(2, readingAt(50)); // evicts session 1

    obs::Telemetry agg;
    svc.aggregateTelemetry(agg);
    // Session 1's per-reading counters survived its eviction.
    EXPECT_GE(agg.metrics.counter("pipeline.readings_in").value(),
              50u);
}

TEST(IngestServiceTest, FunnelIdentityHoldsAcrossShedsAndEvictions)
{
    setVerbose(false);
    RecordedRun run;
    recordRun(run, "ingest_funnel.gpct", 403, {"qwerty12"});
    if (::testing::Test::HasFatalFailure())
        return;

    IngestService::Params p;
    p.backpressure = IngestService::Backpressure::ShedOldest;
    p.sessions.session.ringCapacity = 8;
    p.sessions.session.adaptation = false;
    // Large pump batch so the tiny rings actually shed.
    p.tracePumpBatch = 256;
    IngestService svc(run.model, p);
    ASSERT_EQ(svc.ingestTraceFile(run.path, 1, nullptr),
              trace::TraceError::None);
    EXPECT_GT(svc.readingsShedOldest(), 0u)
        << "scenario never exercised backpressure";

    obs::Telemetry agg;
    svc.aggregateTelemetry(agg);
    const obs::AuditTrail &audit = agg.audit;
    // Sheds drop readings *before* change detection, so the change
    // funnel still partitions exactly.
    const std::uint64_t funnel =
        audit.count(obs::Decision::AcceptedKey) +
        audit.count(obs::Decision::SplitRepaired) +
        audit.count(obs::Decision::DuplicationDrop) +
        audit.count(obs::Decision::NoiseRejected) +
        audit.count(obs::Decision::SuppressedAppSwitch);
    EXPECT_EQ(audit.changesAudited(), funnel);
    EXPECT_EQ(audit.count(obs::Decision::ShedOldestDrop),
              svc.readingsShedOldest());
    std::remove(run.path.c_str());
}

TEST(IngestServiceTest, AdaptationAppliesUpdatesOnRealTraffic)
{
    setVerbose(false);
    RecordedRun run;
    recordRun(run, "ingest_adapt.gpct", 404, {"abcdefgh"});
    if (::testing::Test::HasFatalFailure())
        return;

    IngestService::Params p;
    p.sessions.session.adaptation = true;
    p.sessions.session.adaptationParams.confidenceMargin = 0.9;
    IngestService svc(run.model, p);
    ASSERT_EQ(svc.ingestTraceFile(run.path, 1, nullptr),
              trace::TraceError::None);
    const Session *s = svc.sessions().find(1);
    ASSERT_NE(s, nullptr);
    ASSERT_NE(s->updater(), nullptr);
    EXPECT_GT(s->updater()->updatesApplied(), 0u);

    obs::Telemetry agg;
    svc.aggregateTelemetry(agg);
    EXPECT_EQ(agg.audit.count(obs::Decision::TemplateUpdated),
              s->updater()->updatesApplied());
    std::remove(run.path.c_str());
}

} // namespace
} // namespace gpusc::stream
