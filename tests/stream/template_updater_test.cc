/**
 * @file
 * TemplateUpdater: the exponential blend's exact arithmetic, the
 * confidence gate that prevents template poisoning, page-label
 * policy, serialisability of adapted models, and audit wiring.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "attack/signature.h"
#include "stream/template_updater.h"

namespace gpusc::stream {
namespace {

using attack::InferredKey;
using attack::LabelSignature;
using attack::SignatureModel;

SignatureModel
makeModel()
{
    SignatureModel m;
    m.setModelKey("test-model");
    m.setThreshold(10.0);
    std::array<double, gpu::kNumSelectedCounters> scale{};
    scale.fill(1.0);
    m.setScale(scale);
    LabelSignature a;
    a.label = "a";
    a.centroid.fill(1000);
    m.addSignature(a);
    LabelSignature page;
    page.label = attack::pageLabel(0);
    page.centroid.fill(5000);
    m.addSignature(page);
    return m;
}

InferredKey
keyAt(const std::string &label, double distance, std::int64_t delta)
{
    InferredKey k;
    k.label = label;
    k.time = SimTime::fromMs(10);
    k.distance = distance;
    k.delta.fill(delta);
    return k;
}

TEST(TemplateUpdaterTest, BlendsExactlyPerDimension)
{
    SignatureModel m = makeModel();
    TemplateUpdater::Params p;
    p.blend = 0.25;
    p.confidenceMargin = 0.6;
    TemplateUpdater tu(m, p);

    // centroid 1000, observation 2000, blend 1/4:
    // 0.75*1000 + 0.25*2000 = 1250 exactly.
    EXPECT_TRUE(tu.onAccepted(keyAt("a", 1.0, 2000)));
    EXPECT_EQ(m.signatures()[0].centroid[0], 1250);
    EXPECT_EQ(tu.updatesApplied(), 1u);

    // Second update from the new centroid: 0.75*1250 + 0.25*2000 =
    // 1437.5, llround -> 1438 (deterministic half-away-from-zero).
    EXPECT_TRUE(tu.onAccepted(keyAt("a", 1.0, 2000)));
    EXPECT_EQ(m.signatures()[0].centroid[0], 1438);
}

TEST(TemplateUpdaterTest, LowConfidenceMatchesAreNeverApplied)
{
    SignatureModel m = makeModel();
    TemplateUpdater::Params p;
    p.confidenceMargin = 0.6; // gate at distance 6.0 of C_th 10.0
    TemplateUpdater tu(m, p);

    EXPECT_FALSE(tu.onAccepted(keyAt("a", 6.5, 9999)));
    EXPECT_EQ(m.signatures()[0].centroid[0], 1000);
    EXPECT_EQ(tu.lowConfidenceSkips(), 1u);
    EXPECT_EQ(tu.updatesApplied(), 0u);

    // Exactly at the gate is allowed (<=).
    EXPECT_TRUE(tu.onAccepted(keyAt("a", 6.0, 1000)));
    EXPECT_EQ(tu.updatesApplied(), 1u);
}

TEST(TemplateUpdaterTest, PageLabelsSkippedUnlessOptedIn)
{
    SignatureModel m = makeModel();
    TemplateUpdater::Params p;
    TemplateUpdater tu(m, p);
    EXPECT_FALSE(tu.onAccepted(keyAt(attack::pageLabel(0), 1.0, 0)));
    EXPECT_EQ(tu.pageLabelSkips(), 1u);
    EXPECT_EQ(m.signatures()[1].centroid[0], 5000);

    TemplateUpdater::Params pOn;
    pOn.updatePageLabels = true;
    TemplateUpdater tuOn(m, pOn);
    EXPECT_TRUE(tuOn.onAccepted(keyAt(attack::pageLabel(0), 1.0, 0)));
    EXPECT_NE(m.signatures()[1].centroid[0], 5000);
}

TEST(TemplateUpdaterTest, UnknownLabelChangesNothing)
{
    SignatureModel m = makeModel();
    TemplateUpdater tu(m, TemplateUpdater::Params{});
    EXPECT_FALSE(tu.onAccepted(keyAt("z", 1.0, 2000)));
    EXPECT_EQ(tu.updatesApplied(), 0u);
}

TEST(TemplateUpdaterTest, AdaptedModelSurvivesSerialisationRoundTrip)
{
    SignatureModel m = makeModel();
    TemplateUpdater tu(m, TemplateUpdater::Params{});
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(tu.onAccepted(keyAt("a", 1.0, 1500 + i)));

    const std::vector<std::uint8_t> blob = m.serialize();
    const SignatureModel back =
        SignatureModel::deserialize(blob.data(), blob.size());
    EXPECT_TRUE(back == m);
    EXPECT_EQ(back.signatures()[0].centroid,
              m.signatures()[0].centroid);
}

TEST(TemplateUpdaterTest, BlendClampsToSerialisableRange)
{
    SignatureModel m = makeModel();
    // blend=1 jumps the centroid to the observation; an extreme
    // observation must clamp at the i32 bound serialize() stores.
    gpu::CounterVec huge{};
    huge.fill(std::int64_t(1) << 40);
    EXPECT_TRUE(m.updateSignature("a", huge, 1.0));
    EXPECT_EQ(m.signatures()[0].centroid[0], INT32_MAX);
    const std::vector<std::uint8_t> blob = m.serialize();
    const SignatureModel back =
        SignatureModel::deserialize(blob.data(), blob.size());
    EXPECT_TRUE(back == m);
}

TEST(TemplateUpdaterTest, RejectsBadBlendValues)
{
    SignatureModel m = makeModel();
    gpu::CounterVec d{};
    d.fill(2000);
    EXPECT_FALSE(m.updateSignature("a", d, 0.0));
    EXPECT_FALSE(m.updateSignature("a", d, -0.5));
    EXPECT_FALSE(m.updateSignature("a", d, 1.5));
    EXPECT_EQ(m.signatures()[0].centroid[0], 1000);
}

TEST(TemplateUpdaterTest, AppliedUpdatesAreCountedAndAudited)
{
    SignatureModel m = makeModel();
    obs::Telemetry tel;
    TemplateUpdater tu(m, TemplateUpdater::Params{});
    tu.setTelemetry(&tel);
    EXPECT_TRUE(tu.onAccepted(keyAt("a", 1.0, 2000)));
    EXPECT_FALSE(tu.onAccepted(keyAt("a", 9.9, 2000))); // low conf
    EXPECT_EQ(tel.metrics.counter("ingest.template_updates").value(),
              1u);
    EXPECT_EQ(tel.audit.count(obs::Decision::TemplateUpdated), 1u);
    const std::vector<obs::AuditRecord> records =
        tel.audit.snapshot();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].stage, obs::Stage::Ingest);
    EXPECT_EQ(records[0].label, "a");
}

} // namespace
} // namespace gpusc::stream
