/** @file Unit tests for the Table-2 baseline and mitigations. */

#include <gtest/gtest.h>

#include "baseline/desktop_baseline.h"
#include "mitigation/obfuscation.h"
#include "ml/knn.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"

namespace gpusc {
namespace {

using namespace gpusc::sim_literals;

TEST(DesktopBaselineTest, DatasetShape)
{
    baseline::DesktopGpuBaseline gen(1);
    const ml::Dataset d =
        gen.collect(baseline::desktopApps()[0], 5);
    EXPECT_EQ(d.size(), 26u * 5u);
    EXPECT_EQ(d.dims(), 3u);
    EXPECT_EQ(d.numClasses(), 26);
    for (const auto &x : d.x)
        for (double v : x)
            EXPECT_GT(v, 0.0);
}

TEST(DesktopBaselineTest, CoarseCountersStayNearChance)
{
    // The whole point of Table 2: workload-level counters cannot see
    // single keystrokes, so accuracy lands far below the GPU-PC
    // attack's 98%.
    for (const auto &app : baseline::desktopApps()) {
        baseline::DesktopGpuBaseline gen(7);
        const ml::Dataset train = gen.collect(app, 30);
        const ml::Dataset test = gen.collect(app, 8);
        ml::GaussianNaiveBayes nb;
        nb.fit(train);
        EXPECT_LT(nb.accuracy(test), 0.25) << app.name;
        ml::Knn knn(3);
        knn.fit(train);
        EXPECT_LT(knn.accuracy(test), 0.25) << app.name;
    }
}

TEST(DesktopBaselineTest, SignalIsWeakButNonzero)
{
    // With enough data, the glyph signal nudges accuracy above pure
    // chance (1/26 = 3.8%) — as in the paper's 8-14% band.
    baseline::DesktopGpuBaseline gen(11);
    const auto &app = baseline::desktopApps()[0];
    ml::RandomForest rf;
    rf.fit(gen.collect(app, 40));
    EXPECT_GT(rf.accuracy(gen.collect(app, 10)), 1.0 / 26.0);
}

TEST(ObfuscatorTest, ConsumesGpuTimeWhileRunning)
{
    android::DeviceConfig cfg;
    cfg.notificationMeanInterval = SimTime();
    android::Device dev(cfg);
    dev.boot();
    mitigation::PcObfuscator::Params params;
    params.meanPeriod = 30_ms;
    params.meanAreaFrac = 0.1;
    mitigation::PcObfuscator obf(dev, params);
    obf.start();
    dev.runFor(2_s);
    EXPECT_GT(obf.gpuTimeConsumed().ns(), 0);
    EXPECT_GT(dev.kgsl().gpuBusyPercentage(), 0.5);

    const SimTime consumed = obf.gpuTimeConsumed();
    obf.stop();
    dev.runFor(2_s);
    EXPECT_EQ(obf.gpuTimeConsumed(), consumed);
}

TEST(ObfuscatorTest, PollutesTheCounterStream)
{
    android::DeviceConfig cfg;
    cfg.notificationMeanInterval = SimTime();
    android::Device dev(cfg);
    dev.boot();
    const auto before = dev.engine().readAll();
    mitigation::PcObfuscator obf(
        dev, mitigation::PcObfuscator::Params{});
    obf.start();
    dev.runFor(1_s);
    // Unlike compute-style background load, obfuscation *renders*,
    // so the selected counters move — that is its entire purpose.
    EXPECT_NE(dev.engine().readAll(), before);
}

} // namespace
} // namespace gpusc
