/** @file Unit tests for the IME key-press state machine. */

#include <gtest/gtest.h>

#include "android/app.h"
#include "android/ime.h"
#include "util/event_queue.h"

namespace gpusc::android {
namespace {

using namespace gpusc::sim_literals;

class ImeTest : public ::testing::Test
{
  protected:
    ImeTest()
        : app_(eq_, appSpec("chase"), displayFhdPlus(), 100),
          ime_(eq_, KeyboardLayout(keyboardSpec("gboard"),
                                   displayFhdPlus()),
               Rng(1), 102)
    {
        ime_.setTargetField(&app_);
    }

    void
    pressChar(char c, SimTime duration = 100_ms)
    {
        for (const Key *k : ime_.keysFor(c))
            press(*k, duration);
    }

    void
    press(const Key &k, SimTime duration = 100_ms)
    {
        ime_.pressKey(k, duration);
        eq_.runUntil(eq_.now() + duration + 200_ms);
    }

    EventQueue eq_;
    AppSurface app_;
    Ime ime_;
};

TEST_F(ImeTest, KeysForLowercaseIsDirect)
{
    const auto seq = ime_.keysFor('q');
    ASSERT_EQ(seq.size(), 1u);
    EXPECT_EQ(seq[0]->ch, 'q');
}

TEST_F(ImeTest, KeysForUppercaseNeedsShift)
{
    const auto seq = ime_.keysFor('Q');
    ASSERT_EQ(seq.size(), 2u);
    EXPECT_EQ(seq[0]->code, KeyCode::Shift);
    EXPECT_EQ(seq[1]->ch, 'Q');
}

TEST_F(ImeTest, KeysForDigitNeedsSymbolsPage)
{
    const auto seq = ime_.keysFor('7');
    ASSERT_EQ(seq.size(), 2u);
    EXPECT_EQ(seq[0]->code, KeyCode::Sym);
    EXPECT_EQ(seq[1]->ch, '7');
}

TEST_F(ImeTest, CommaIsDirectOnEveryPage)
{
    EXPECT_EQ(ime_.keysFor(',').size(), 1u);
    pressChar('7'); // now on Symbols
    EXPECT_EQ(ime_.page(), KbPage::Symbols);
    EXPECT_EQ(ime_.keysFor(',').size(), 1u);
}

TEST_F(ImeTest, SpaceUsesSpaceKey)
{
    const auto seq = ime_.keysFor(' ');
    ASSERT_EQ(seq.size(), 1u);
    EXPECT_EQ(seq[0]->code, KeyCode::Space);
}

TEST_F(ImeTest, CharCommitsOnRelease)
{
    const Key *q = ime_.layout().findChar(KbPage::Lower, 'q');
    ime_.pressKey(*q, 100_ms);
    EXPECT_TRUE(ime_.popupActive());
    EXPECT_EQ(app_.textLength(), 0u); // not yet released
    eq_.runUntil(eq_.now() + 110_ms);
    EXPECT_EQ(app_.textLength(), 1u); // committed at release
    eq_.runUntil(eq_.now() + 100_ms);
    EXPECT_FALSE(ime_.popupActive()); // dismissed after teardown
}

TEST_F(ImeTest, PopupShowInvalidatesTheSurface)
{
    ime_.takeDamage();
    const Key *q = ime_.layout().findChar(KbPage::Lower, 'q');
    ime_.pressKey(*q, 100_ms);
    EXPECT_TRUE(ime_.hasDamage());
}

TEST_F(ImeTest, ShiftTogglesAndAutoUnshifts)
{
    pressChar('Q');
    EXPECT_EQ(app_.textLength(), 1u);
    // One-shot shift: after the shifted character the keyboard is
    // back on the lowercase page.
    EXPECT_EQ(ime_.page(), KbPage::Lower);
}

TEST_F(ImeTest, SymbolsPageIsSticky)
{
    pressChar('7');
    EXPECT_EQ(ime_.page(), KbPage::Symbols);
    EXPECT_EQ(ime_.keysFor('8').size(), 1u); // no page switch needed
}

TEST_F(ImeTest, ReturnFromSymbolsViaAbc)
{
    pressChar('7');
    const auto seq = ime_.keysFor('a');
    ASSERT_EQ(seq.size(), 2u);
    EXPECT_EQ(seq[0]->code, KeyCode::Abc);
    EXPECT_EQ(seq[1]->ch, 'a');
}

TEST_F(ImeTest, SymbolsToUppercaseIsTwoSwitches)
{
    pressChar('7');
    const auto seq = ime_.keysFor('Z');
    ASSERT_EQ(seq.size(), 3u);
    EXPECT_EQ(seq[0]->code, KeyCode::Abc);
    EXPECT_EQ(seq[1]->code, KeyCode::Shift);
    EXPECT_EQ(seq[2]->ch, 'Z');
}

TEST_F(ImeTest, BackspaceDeletesWithoutPopup)
{
    pressChar('a');
    pressChar('b');
    ASSERT_EQ(app_.textLength(), 2u);
    ime_.takeDamage();
    press(*ime_.backspaceKey());
    EXPECT_EQ(app_.textLength(), 1u);
    // No popup: the keyboard surface did not redraw at all.
    EXPECT_FALSE(ime_.popupActive());
}

TEST_F(ImeTest, PopupsDisabledStillCommits)
{
    ime_.setPopupsEnabled(false);
    ime_.takeDamage();
    const Key *q = ime_.layout().findChar(KbPage::Lower, 'q');
    ime_.pressKey(*q, 100_ms);
    EXPECT_FALSE(ime_.popupActive());
    EXPECT_FALSE(ime_.hasDamage()); // mitigation: no keyboard redraw
    eq_.runUntil(eq_.now() + 150_ms);
    EXPECT_EQ(app_.textLength(), 1u); // text still commits
}

TEST_F(ImeTest, KeyPressCounterCountsCharKeysOnly)
{
    pressChar('a');
    pressChar('Q'); // shift + Q
    EXPECT_EQ(ime_.keyPressCount(), 2u);
}

TEST_F(ImeTest, SceneContainsPopupWhileActive)
{
    const Key *w = ime_.layout().findChar(KbPage::Lower, 'w');
    ime_.pressKey(*w, 100_ms);
    gfx::FrameScene scene;
    scene.damage = ime_.bounds();
    ime_.buildScene(scene);
    int popupPrims = 0;
    for (const auto &p : scene.prims)
        popupPrims += p.tag == gfx::PrimTag::Popup ||
                      p.tag == gfx::PrimTag::PopupGlyph;
    EXPECT_GT(popupPrims, 2);
}

} // namespace
} // namespace gpusc::android
