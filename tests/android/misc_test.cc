/** @file Unit tests for status bar, GLES shim, power model, display. */

#include <gtest/gtest.h>

#include "android/display.h"
#include "android/gles.h"
#include "android/other_app.h"
#include "android/power.h"
#include "android/status_bar.h"
#include "gpu/counters.h"

namespace gpusc::android {
namespace {

using namespace gpusc::sim_literals;

TEST(DisplayTest, Presets)
{
    const DisplayConfig fhd = displayFhdPlus();
    EXPECT_EQ(fhd.width, 1080);
    EXPECT_EQ(fhd.height, 2376);
    const DisplayConfig qhd = displayQhdPlus(120);
    EXPECT_EQ(qhd.width, 1440);
    EXPECT_EQ(qhd.refreshHz, 120);
    EXPECT_EQ(qhd.vsyncPeriod().ns(), 1000000000LL / 120);
}

TEST(DisplayTest, DpScalesWithWidth)
{
    EXPECT_EQ(displayFhdPlus().dp(10), 30);  // 1080/360 = 3x
    EXPECT_EQ(displayQhdPlus().dp(10), 40);  // 1440/360 = 4x
}

TEST(StatusBarTest, NotificationInvalidatesBar)
{
    EventQueue eq;
    StatusBar bar(eq, displayFhdPlus(), Rng(1));
    bar.takeDamage();
    bar.postNotification();
    EXPECT_TRUE(bar.hasDamage());
    EXPECT_EQ(bar.notificationCount(), 1);
}

TEST(StatusBarTest, PoissonArrivals)
{
    EventQueue eq;
    StatusBar bar(eq, displayFhdPlus(), Rng(2));
    bar.startNotifications(2_s);
    eq.runUntil(20_s);
    EXPECT_GT(bar.notificationCount(), 3);
    EXPECT_LT(bar.notificationCount(), 30);
    const int before = bar.notificationCount();
    bar.stopNotifications();
    eq.runUntil(40_s);
    EXPECT_EQ(bar.notificationCount(), before);
}

TEST(StatusBarTest, SceneIsSmallButNonEmpty)
{
    EventQueue eq;
    StatusBar bar(eq, displayFhdPlus(), Rng(3));
    gfx::FrameScene scene;
    scene.damage = bar.bounds();
    bar.buildScene(scene);
    EXPECT_GT(scene.prims.size(), 5u);
    for (const auto &p : scene.prims)
        EXPECT_TRUE(bar.bounds().contains(p.rect));
}

TEST(GlesShimTest, EnumeratesTable1Groups)
{
    bool sawLrz = false, sawRas = false, sawVpc = false;
    for (const auto &g : gles::getPerfMonitorGroupsAMD()) {
        sawLrz |= g.name == "LRZ";
        sawRas |= g.name == "RAS";
        sawVpc |= g.name == "VPC";
        EXPECT_FALSE(g.counters.empty());
    }
    EXPECT_TRUE(sawLrz && sawRas && sawVpc);
}

TEST(GlesShimTest, StringIdentifiersMatchTable1)
{
    EXPECT_EQ(gles::getPerfMonitorCounterStringAMD(0x19, 13),
              "PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ");
    EXPECT_EQ(gles::getPerfMonitorCounterStringAMD(0x7, 8),
              "PERF_RAS_FULLY_COVERED_8X4_TILES");
    EXPECT_EQ(gles::getPerfMonitorCounterStringAMD(0x5, 10),
              "PERF_VPC_SP_COMPONENTS");
    // Unselected countables get synthetic names.
    EXPECT_EQ(gles::getPerfMonitorCounterStringAMD(0x19, 2),
              "PERF_LRZ_COUNTABLE_2");
}

TEST(GlesShimTest, DiscoveryFindsAllSelectedCounters)
{
    // The §3.3 discovery flow: iterating groups/counters and matching
    // string identifiers must find all 11 Table 1 counters.
    int found = 0;
    for (const auto &g : gles::getPerfMonitorGroupsAMD())
        for (std::uint32_t c : g.counters)
            if (gpu::selectedFromId({g.id, c}))
                ++found;
    EXPECT_EQ(found, int(gpu::kNumSelectedCounters));
}

TEST(PowerModelTest, LinearInWork)
{
    PowerModel pm(phoneSpec("oneplus8pro"));
    EXPECT_EQ(pm.extraMah(), 0.0);
    pm.addSamplerWakeups(1000);
    const double one = pm.extraMah();
    pm.addSamplerWakeups(1000);
    EXPECT_NEAR(pm.extraMah(), 2.0 * one, 1e-12);
}

TEST(PowerModelTest, SmallBatteriesDrainFaster)
{
    PowerModel big(phoneSpec("oneplus8pro")); // 4510 mAh
    PowerModel small(phoneSpec("pixel2"));    // 2700 mAh
    big.addSamplerWakeups(450000);
    small.addSamplerWakeups(450000);
    EXPECT_GT(small.extraBatteryPercent(), big.extraBatteryPercent());
}

TEST(PowerModelTest, TwoHourDrainIsInPaperBand)
{
    PowerModel pm(phoneSpec("oneplus8pro"));
    // 8ms sampling for 2 hours.
    pm.addSamplerWakeups(2 * 3600 * 125);
    pm.addInferences(3300);
    EXPECT_GT(pm.extraBatteryPercent(), 0.3);
    EXPECT_LT(pm.extraBatteryPercent(), 4.5);
}

TEST(OtherAppTest, InteractionsProduceDamageBursts)
{
    EventQueue eq;
    OtherAppSurface other(eq, displayFhdPlus(), Rng(5), 101);
    other.setVisible(true);
    other.takeDamage();
    other.interact();
    int damagedTicks = 0;
    for (int i = 0; i < 40; ++i) {
        eq.runUntil(eq.now() + 8_ms);
        if (other.hasDamage()) {
            ++damagedTicks;
            other.takeDamage();
        }
    }
    EXPECT_GE(damagedTicks, 1);
}

TEST(OtherAppTest, HiddenInteractionIsNoop)
{
    EventQueue eq;
    OtherAppSurface other(eq, displayFhdPlus(), Rng(6), 101);
    other.setVisible(false);
    other.interact();
    eq.runUntil(eq.now() + 500_ms);
    EXPECT_FALSE(other.hasDamage());
}

} // namespace
} // namespace gpusc::android
