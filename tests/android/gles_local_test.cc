/**
 * @file
 * Tests for per-process counter attribution and the local
 * GL_AMD_performance_monitor semantics — the paper's §3.3 argument
 * for bypassing the GLES API.
 */

#include <gtest/gtest.h>

#include "android/device.h"
#include "android/gles.h"
#include "workload/typist.h"

namespace gpusc::android {
namespace {

using namespace gpusc::sim_literals;

TEST(ReadLocalTest, AttributesWorkToTheOwningPid)
{
    EventQueue eq;
    gpu::RenderEngine engine(eq, gpu::adrenoModel(650), 1);
    gfx::FrameScene scene;
    scene.damage = gfx::Rect::ofSize(0, 0, 64, 64);
    scene.add(scene.damage, true, gfx::PrimTag::AppContent);
    const SimTime end = engine.submit(scene, /*ownerPid=*/42);
    eq.runUntil(end + 1_ms);
    EXPECT_EQ(engine.readLocal(42)[gpu::LRZ_VISIBLE_PIXEL_AFTER_LRZ],
              64u * 64u);
    EXPECT_EQ(engine.readLocal(7)[gpu::LRZ_VISIBLE_PIXEL_AFTER_LRZ],
              0u);
    // The global registers see everything.
    EXPECT_EQ(engine.read(gpu::LRZ_VISIBLE_PIXEL_AFTER_LRZ),
              64u * 64u);
}

TEST(PerfMonitorAmdTest, LocalMonitorSeesOnlyOwnWork)
{
    DeviceConfig cfg;
    cfg.notificationMeanInterval = SimTime();
    Device dev(cfg);
    dev.launchTargetApp();

    // The attacker (pid 200) renders nothing; the victim types.
    gles::PerfMonitorAMD monitor(dev.engine(),
                                 dev.attackerContext().pid);
    monitor.begin();
    workload::Typist user(
        dev, workload::TypingModel::forVolunteer(0, 1), 2);
    bool done = false;
    user.type("secret", 100_ms, [&] { done = true; });
    while (!done)
        dev.runFor(100_ms);
    dev.runFor(500_ms);
    monitor.end();

    // §3.3: the GLES extension exposes nothing about other apps...
    for (std::size_t i = 0; i < gpu::kNumSelectedCounters; ++i)
        EXPECT_EQ(monitor.counterData(gpu::SelectedCounter(i)), 0u)
            << gpu::counterName(gpu::SelectedCounter(i));

    // ...while the device file happily leaks the global values.
    EXPECT_GT(dev.engine().read(gpu::LRZ_VISIBLE_PIXEL_AFTER_LRZ),
              0u);
}

TEST(PerfMonitorAmdTest, MonitorsTheCallersOwnRendering)
{
    EventQueue eq;
    gpu::RenderEngine engine(eq, gpu::adrenoModel(650), 1);
    gles::PerfMonitorAMD monitor(engine, 55);
    monitor.begin();
    gfx::FrameScene scene;
    scene.damage = gfx::Rect::ofSize(0, 0, 32, 32);
    scene.add(scene.damage, true, gfx::PrimTag::AppContent);
    const SimTime end = engine.submit(scene, 55);
    eq.runUntil(end + 1_ms);
    monitor.end();
    EXPECT_EQ(monitor.counterData(gpu::LRZ_VISIBLE_PIXEL_AFTER_LRZ),
              32u * 32u);
    EXPECT_EQ(monitor.counterData(gpu::VPC_PC_PRIMITIVES), 2u);
}

TEST(PerfMonitorAmdTest, IntervalsAreDeltas)
{
    EventQueue eq;
    gpu::RenderEngine engine(eq, gpu::adrenoModel(650), 1);
    gfx::FrameScene scene;
    scene.damage = gfx::Rect::ofSize(0, 0, 16, 16);
    scene.add(scene.damage, true, gfx::PrimTag::AppContent);

    // Work before begin() must not be counted.
    eq.runUntil(engine.submit(scene, 9) + 1_ms);
    gles::PerfMonitorAMD monitor(engine, 9);
    monitor.begin();
    eq.runUntil(engine.submit(scene, 9) + 1_ms);
    monitor.end();
    EXPECT_EQ(monitor.counterData(gpu::LRZ_VISIBLE_PIXEL_AFTER_LRZ),
              16u * 16u);
}

} // namespace
} // namespace gpusc::android
