/** @file Unit tests for the vsync compositor. */

#include <gtest/gtest.h>

#include "android/window_manager.h"
#include "gpu/model.h"

namespace gpusc::android {
namespace {

using namespace gpusc::sim_literals;

class SolidSurface : public Surface
{
  public:
    SolidSurface(gfx::Rect bounds)
        : Surface("solid", bounds, 7)
    {
    }
    void
    buildScene(gfx::FrameScene &scene) const override
    {
        scene.add(bounds(), true, gfx::PrimTag::AppContent);
    }
};

class WindowManagerTest : public ::testing::Test
{
  protected:
    EventQueue eq_;
    gpu::RenderEngine engine_{eq_, gpu::adrenoModel(650), 1};
    WindowManager wm_{eq_, engine_, displayFhdPlus()};
};

TEST_F(WindowManagerTest, NoDamageNoFrames)
{
    SolidSurface s(gfx::Rect::ofSize(0, 0, 100, 100));
    wm_.addSurface(&s);
    wm_.start();
    eq_.runUntil(500_ms);
    EXPECT_EQ(wm_.framesComposited(), 0u);
    EXPECT_EQ(engine_.framesRendered(), 0u);
}

TEST_F(WindowManagerTest, DamagedSurfaceRendersOncePerInvalidation)
{
    SolidSurface s(gfx::Rect::ofSize(0, 0, 100, 100));
    wm_.addSurface(&s);
    wm_.start();
    s.invalidate();
    eq_.runUntil(200_ms);
    EXPECT_EQ(wm_.framesComposited(), 1u);
    s.invalidate();
    eq_.runUntil(400_ms);
    EXPECT_EQ(wm_.framesComposited(), 2u);
}

TEST_F(WindowManagerTest, RenderWaitsForVsync)
{
    SolidSurface s(gfx::Rect::ofSize(0, 0, 64, 64));
    wm_.addSurface(&s);
    wm_.start();
    eq_.runUntil(20_ms); // just after the first vsync (16.7ms)
    s.invalidate();
    eq_.runUntil(25_ms); // before the next vsync at 33.3ms
    EXPECT_EQ(engine_.framesRendered(), 0u);
    eq_.runUntil(40_ms);
    EXPECT_EQ(engine_.framesRendered(), 1u);
}

TEST_F(WindowManagerTest, HiddenSurfacesAreSkipped)
{
    SolidSurface s(gfx::Rect::ofSize(0, 0, 64, 64));
    wm_.addSurface(&s);
    wm_.start();
    s.invalidate();
    s.setVisible(false);
    eq_.runUntil(200_ms);
    EXPECT_EQ(wm_.framesComposited(), 0u);
}

TEST_F(WindowManagerTest, RemovedSurfacesAreSkipped)
{
    SolidSurface s(gfx::Rect::ofSize(0, 0, 64, 64));
    wm_.addSurface(&s);
    wm_.start();
    s.invalidate();
    wm_.removeSurface(&s);
    eq_.runUntil(200_ms);
    EXPECT_EQ(wm_.framesComposited(), 0u);
}

TEST_F(WindowManagerTest, TransitionRendersRequestedFrames)
{
    wm_.start();
    wm_.playTransition(5);
    EXPECT_TRUE(wm_.transitionActive());
    eq_.runUntil(300_ms);
    EXPECT_FALSE(wm_.transitionActive());
    EXPECT_EQ(engine_.framesRendered(), 5u);
}

TEST_F(WindowManagerTest, TransitionFramesDiffer)
{
    wm_.start();
    wm_.playTransition(2);
    eq_.runUntil(100_ms);
    // Consecutive animation frames must produce different counter
    // deltas (the app-switch burst signature of Fig. 13).
    EXPECT_EQ(engine_.framesRendered(), 2u);
    // Non-trivial work happened.
    EXPECT_GT(engine_.read(gpu::LRZ_VISIBLE_PIXEL_AFTER_LRZ), 0u);
}

} // namespace
} // namespace gpusc::android
