/** @file Unit tests for target-app login surfaces. */

#include <gtest/gtest.h>

#include "android/app.h"
#include "util/event_queue.h"

namespace gpusc::android {
namespace {

using namespace gpusc::sim_literals;

TEST(AppSpecTest, RegistryCoversPaperTargets)
{
    EXPECT_EQ(nativeAppNames().size(), 6u);
    EXPECT_EQ(webAppNames().size(), 3u);
    for (const auto &name : nativeAppNames())
        EXPECT_FALSE(appSpec(name).web);
    for (const auto &name : webAppNames())
        EXPECT_TRUE(appSpec(name).web);
    EXPECT_TRUE(appSpec("pnc").loginAnimation);
    EXPECT_FALSE(appSpec("chase").loginAnimation);
}

TEST(AppSpecDeathTest, UnknownAppIsFatal)
{
    EXPECT_DEATH((void)appSpec("netscape"), "unknown target app");
}

class AppSurfaceTest : public ::testing::Test
{
  protected:
    int
    countTag(gfx::PrimTag tag)
    {
        gfx::FrameScene scene;
        scene.damage = app_.bounds();
        app_.buildScene(scene);
        int n = 0;
        for (const auto &p : scene.prims)
            n += p.tag == tag;
        return n;
    }

    EventQueue eq_;
    AppSurface app_{eq_, appSpec("chase"), displayFhdPlus(), 100};
};

TEST_F(AppSurfaceTest, FieldStartsEmpty)
{
    EXPECT_EQ(app_.textLength(), 0u);
    EXPECT_EQ(countTag(gfx::PrimTag::TextEcho), 0);
}

TEST_F(AppSurfaceTest, OneDotPerCommittedChar)
{
    app_.appendChar();
    app_.appendChar();
    app_.appendChar();
    EXPECT_EQ(app_.textLength(), 3u);
    EXPECT_EQ(countTag(gfx::PrimTag::TextEcho), 3);
    app_.deleteChar();
    EXPECT_EQ(countTag(gfx::PrimTag::TextEcho), 2);
}

TEST_F(AppSurfaceTest, DeleteOnEmptyIsSafe)
{
    app_.deleteChar();
    EXPECT_EQ(app_.textLength(), 0u);
    EXPECT_FALSE(app_.hasDamage()); // no redraw for a no-op
}

TEST_F(AppSurfaceTest, ClearResets)
{
    for (int i = 0; i < 5; ++i)
        app_.appendChar();
    app_.clearText();
    EXPECT_EQ(app_.textLength(), 0u);
}

TEST_F(AppSurfaceTest, EditsInvalidateOnlyTheFieldRegion)
{
    app_.takeDamage();
    app_.appendChar();
    const gfx::Rect d = app_.takeDamage();
    EXPECT_TRUE(app_.fieldRect().inset(-20).contains(d));
    EXPECT_LT(d.area(), app_.bounds().area() / 4);
}

TEST_F(AppSurfaceTest, CursorRendersOnlyWhenFocused)
{
    EXPECT_EQ(countTag(gfx::PrimTag::Cursor), 0);
    app_.focusField();
    EXPECT_EQ(countTag(gfx::PrimTag::Cursor), 1);
    app_.unfocusField();
    EXPECT_EQ(countTag(gfx::PrimTag::Cursor), 0);
}

TEST_F(AppSurfaceTest, CursorBlinkTogglesAndDamagesCursorRect)
{
    app_.focusField();
    app_.takeDamage();
    // No input: the blink fires after the idle delay (700ms+jitter).
    eq_.runUntil(eq_.now() + 900_ms);
    EXPECT_EQ(countTag(gfx::PrimTag::Cursor), 0); // toggled off
    const gfx::Rect d = app_.takeDamage();
    EXPECT_FALSE(d.empty());
    EXPECT_LE(d.area(), app_.cursorRect().area());
}

TEST_F(AppSurfaceTest, TypingSuppressesBlink)
{
    app_.focusField();
    // Keep committing faster than the idle timeout: the cursor must
    // stay solid (no off-toggle between inputs).
    for (int i = 0; i < 6; ++i) {
        app_.appendChar();
        app_.takeDamage();
        eq_.runUntil(eq_.now() + 400_ms);
        EXPECT_EQ(countTag(gfx::PrimTag::Cursor), 1)
            << "blinked during active typing";
    }
}

TEST_F(AppSurfaceTest, CursorAdvancesWithText)
{
    app_.focusField();
    const gfx::Rect before = app_.cursorRect();
    app_.appendChar();
    const gfx::Rect after = app_.cursorRect();
    EXPECT_GT(after.x0, before.x0);
    EXPECT_EQ(after.width(), before.width());
}

TEST(AppSurfacePncTest, AnimationTicksInvalidate)
{
    EventQueue eq;
    AppSurface pnc(eq, appSpec("pnc"), displayFhdPlus(), 100);
    pnc.startAnimation();
    pnc.takeDamage();
    eq.runUntil(eq.now() + 1_s);
    EXPECT_TRUE(pnc.hasDamage());
    pnc.stopAnimation();
    pnc.takeDamage();
    eq.runUntil(eq.now() + 1_s);
    EXPECT_FALSE(pnc.hasDamage());
}

TEST(AppSurfacePncTest, NonAnimatedAppsIgnoreStart)
{
    EventQueue eq;
    AppSurface chase(eq, appSpec("chase"), displayFhdPlus(), 100);
    chase.startAnimation();
    chase.takeDamage();
    eq.runUntil(eq.now() + 1_s);
    EXPECT_FALSE(chase.hasDamage());
}

TEST(AppSurfaceWebTest, WebTargetsRenderChrome)
{
    EventQueue eq;
    AppSurface web(eq, appSpec("chase.com"), displayFhdPlus(), 100);
    AppSurface native(eq, appSpec("chase"), displayFhdPlus(), 100);
    auto prims = [](AppSurface &s) {
        gfx::FrameScene scene;
        scene.damage = s.bounds();
        s.buildScene(scene);
        return scene.prims.size();
    };
    EXPECT_GT(prims(web), prims(native));
}

} // namespace
} // namespace gpusc::android
