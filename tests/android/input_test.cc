/** @file Unit tests for /dev/input-style touch injection. */

#include <gtest/gtest.h>

#include "android/input.h"

namespace gpusc::android {
namespace {

using namespace gpusc::sim_literals;

class InputInjectorTest : public ::testing::Test
{
  protected:
    InputInjectorTest()
    {
        cfg_.notificationMeanInterval = SimTime();
        dev_ = std::make_unique<Device>(cfg_);
        dev_->launchTargetApp();
        injector_ = std::make_unique<InputInjector>(*dev_);
    }

    DeviceConfig cfg_;
    std::unique_ptr<Device> dev_;
    std::unique_ptr<InputInjector> injector_;
};

TEST_F(InputInjectorTest, TapOnKeyCommitsCharacter)
{
    ASSERT_TRUE(injector_->tapChar('g', 100_ms));
    dev_->runFor(300_ms);
    EXPECT_EQ(dev_->app().textLength(), 1u);
    EXPECT_EQ(injector_->injectedTouches(), 1u);
}

TEST_F(InputInjectorTest, TapAtCoordinatesHitTests)
{
    const Key *key =
        dev_->ime().layout().findChar(KbPage::Lower, 'q');
    ASSERT_NE(key, nullptr);
    EXPECT_TRUE(injector_->tap(key->rect.center(), 100_ms));
    dev_->runFor(300_ms);
    EXPECT_EQ(dev_->app().textLength(), 1u);
}

TEST_F(InputInjectorTest, TapOutsideKeyboardMisses)
{
    EXPECT_FALSE(injector_->tap(gfx::Point{10, 10}, 100_ms));
    dev_->runFor(300_ms);
    EXPECT_EQ(dev_->app().textLength(), 0u);
}

TEST_F(InputInjectorTest, TapInKeyGapMisses)
{
    // Row gaps between key rows belong to no key.
    const Key *q = dev_->ime().layout().findChar(KbPage::Lower, 'q');
    const gfx::Point gap{q->rect.center().x, q->rect.y1 + 2};
    EXPECT_FALSE(injector_->tap(gap, 100_ms));
}

TEST_F(InputInjectorTest, TapCharNeedsCurrentPage)
{
    // '7' lives on the Symbols page; on Lower the tap has no target.
    EXPECT_FALSE(injector_->tapChar('7', 100_ms));
    // Navigate by tapping the ?123 key, as the real bot does.
    const Key *sym = dev_->ime().layout().findSpecial(
        KbPage::Lower, KeyCode::Sym);
    EXPECT_TRUE(injector_->tapKey(*sym, 90_ms));
    dev_->runFor(200_ms);
    EXPECT_TRUE(injector_->tapChar('7', 100_ms));
    dev_->runFor(300_ms);
    EXPECT_EQ(dev_->app().textLength(), 1u);
}

TEST_F(InputInjectorTest, HiddenKeyboardIgnoresTaps)
{
    dev_->ime().setVisible(false);
    EXPECT_FALSE(injector_->tapChar('g', 100_ms));
}

} // namespace
} // namespace gpusc::android
