/** @file Unit tests for keyboard specs and layout geometry. */

#include <gtest/gtest.h>

#include <set>

#include "android/keyboard.h"

namespace gpusc::android {
namespace {

TEST(KeyboardSpecTest, RegistryHasAllSixKeyboards)
{
    EXPECT_EQ(keyboardNames().size(), 6u);
    for (const auto &name : keyboardNames()) {
        const KeyboardSpec &spec = keyboardSpec(name);
        EXPECT_EQ(spec.name, name);
        EXPECT_GT(spec.heightDp, 100.0);
        EXPECT_GE(spec.duplicationProb, 0.0);
        EXPECT_LE(spec.duplicationProb, 1.0);
    }
}

TEST(KeyboardSpecTest, GboardHasRichestAnimation)
{
    for (const auto &name : keyboardNames()) {
        if (name != "gboard") {
            EXPECT_GT(keyboardSpec("gboard").duplicationProb,
                      keyboardSpec(name).duplicationProb);
        }
    }
}

TEST(KeyboardSpecDeathTest, UnknownNameIsFatal)
{
    EXPECT_DEATH((void)keyboardSpec("clippy"), "unknown keyboard");
}

TEST(KeyboardLayoutTest, PageForChar)
{
    EXPECT_EQ(KeyboardLayout::pageForChar('a'), KbPage::Lower);
    EXPECT_EQ(KeyboardLayout::pageForChar('Z'), KbPage::Upper);
    EXPECT_EQ(KeyboardLayout::pageForChar('7'), KbPage::Symbols);
    EXPECT_EQ(KeyboardLayout::pageForChar('@'), KbPage::Symbols);
    EXPECT_EQ(KeyboardLayout::pageForChar(','), KbPage::Lower);
    EXPECT_EQ(KeyboardLayout::pageForChar('.'), KbPage::Lower);
}

TEST(KeyboardLayoutTest, IsTypable)
{
    EXPECT_TRUE(KeyboardLayout::isTypable('a'));
    EXPECT_TRUE(KeyboardLayout::isTypable('Q'));
    EXPECT_TRUE(KeyboardLayout::isTypable('0'));
    EXPECT_TRUE(KeyboardLayout::isTypable('$'));
    EXPECT_TRUE(KeyboardLayout::isTypable(' '));
    EXPECT_FALSE(KeyboardLayout::isTypable('\t'));
    EXPECT_FALSE(KeyboardLayout::isTypable('~'));
}

class LayoutSweep : public ::testing::TestWithParam<std::string>
{
  protected:
    KeyboardLayout
    layout() const
    {
        return KeyboardLayout(keyboardSpec(GetParam()),
                              displayFhdPlus());
    }
};

TEST_P(LayoutSweep, KeysStayInsideKeyboardBounds)
{
    const KeyboardLayout l = layout();
    for (KbPage page :
         {KbPage::Lower, KbPage::Upper, KbPage::Symbols}) {
        for (const Key &k : l.keys(page)) {
            EXPECT_TRUE(l.bounds().contains(k.rect))
                << GetParam() << " key escapes: "
                << k.rect.toString();
        }
    }
}

TEST_P(LayoutSweep, KeysDoNotOverlap)
{
    const KeyboardLayout l = layout();
    for (KbPage page :
         {KbPage::Lower, KbPage::Upper, KbPage::Symbols}) {
        const auto &keys = l.keys(page);
        for (std::size_t i = 0; i < keys.size(); ++i)
            for (std::size_t j = i + 1; j < keys.size(); ++j)
                EXPECT_FALSE(keys[i].rect.intersects(keys[j].rect))
                    << GetParam() << " page " << int(page);
    }
}

TEST_P(LayoutSweep, EveryTypableCharHasAKey)
{
    const KeyboardLayout l = layout();
    const std::string all =
        "abcdefghijklmnopqrstuvwxyz"
        "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        "1234567890,.@#$&-+()/*\"':;!?";
    for (char c : all) {
        const KbPage page = KeyboardLayout::pageForChar(c);
        EXPECT_NE(l.findChar(page, c), nullptr)
            << "'" << c << "' missing on " << GetParam();
    }
}

TEST_P(LayoutSweep, SpecialKeysPresent)
{
    const KeyboardLayout l = layout();
    EXPECT_NE(l.findSpecial(KbPage::Lower, KeyCode::Shift), nullptr);
    EXPECT_NE(l.findSpecial(KbPage::Lower, KeyCode::Sym), nullptr);
    EXPECT_NE(l.findSpecial(KbPage::Lower, KeyCode::Backspace),
              nullptr);
    EXPECT_NE(l.findSpecial(KbPage::Symbols, KeyCode::Abc), nullptr);
    EXPECT_NE(l.findSpecial(KbPage::Symbols, KeyCode::Backspace),
              nullptr);
    EXPECT_NE(l.findSpecial(KbPage::Lower, KeyCode::Space), nullptr);
}

TEST_P(LayoutSweep, PopupsStayInsideTheImeSurface)
{
    const KeyboardLayout l = layout();
    const gfx::Rect surface = l.surfaceBounds();
    for (KbPage page :
         {KbPage::Lower, KbPage::Upper, KbPage::Symbols}) {
        for (const Key &k : l.keys(page)) {
            if (k.code != KeyCode::Char)
                continue;
            EXPECT_TRUE(surface.contains(l.popupMaxRect(k)))
                << GetParam() << " popup for '" << k.ch
                << "' escapes";
        }
    }
}

TEST_P(LayoutSweep, PopupScenesAreDistinctPerKey)
{
    const KeyboardLayout l = layout();
    std::set<std::uint64_t> hashes;
    std::size_t charKeys = 0;
    for (const Key &k : l.keys(KbPage::Lower)) {
        if (k.code != KeyCode::Char)
            continue;
        gfx::FrameScene scene;
        scene.damage = l.surfaceBounds();
        l.buildBase(scene, KbPage::Lower);
        l.buildPopup(scene, k, 1.0);
        hashes.insert(scene.contentHash());
        ++charKeys;
    }
    // Every key's popup scene must be unique — the attack's premise.
    EXPECT_EQ(hashes.size(), charKeys);
}

TEST_P(LayoutSweep, BaseSceneHasKeycapAndLabelPrims)
{
    const KeyboardLayout l = layout();
    gfx::FrameScene scene;
    scene.damage = l.surfaceBounds();
    l.buildBase(scene, KbPage::Lower);
    // At least background + one cap per key + label runs.
    EXPECT_GT(scene.prims.size(),
              l.keys(KbPage::Lower).size() * 2);
}

TEST_P(LayoutSweep, PagesShareBottomRowGeometry)
{
    const KeyboardLayout l = layout();
    const Key *commaLower = l.findChar(KbPage::Lower, ',');
    const Key *commaUpper = l.findChar(KbPage::Upper, ',');
    const Key *commaSym = l.findChar(KbPage::Symbols, ',');
    ASSERT_NE(commaLower, nullptr);
    ASSERT_NE(commaUpper, nullptr);
    ASSERT_NE(commaSym, nullptr);
    EXPECT_EQ(commaLower->rect, commaUpper->rect);
    EXPECT_EQ(commaLower->rect, commaSym->rect);
}

INSTANTIATE_TEST_SUITE_P(AllKeyboards, LayoutSweep,
                         ::testing::ValuesIn(keyboardNames()));

TEST(KeyboardLayoutTest, ResolutionScalesGeometry)
{
    const KeyboardLayout fhd(keyboardSpec("gboard"), displayFhdPlus());
    const KeyboardLayout qhd(keyboardSpec("gboard"), displayQhdPlus());
    const Key *a = fhd.findChar(KbPage::Lower, 'a');
    const Key *b = qhd.findChar(KbPage::Lower, 'a');
    EXPECT_GT(b->rect.width(), a->rect.width());
    EXPECT_GT(qhd.bounds().area(), fhd.bounds().area());
}

} // namespace
} // namespace gpusc::android
