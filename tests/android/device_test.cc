/** @file Unit tests for the assembled victim device. */

#include <gtest/gtest.h>

#include "android/device.h"

namespace gpusc::android {
namespace {

using namespace gpusc::sim_literals;

TEST(PhoneSpecTest, RegistryMatchesPaperDevices)
{
    EXPECT_EQ(phoneSpec("oneplus8pro").adrenoGen, 650);
    EXPECT_EQ(phoneSpec("lgv30").adrenoGen, 540);
    EXPECT_EQ(phoneSpec("pixel2").adrenoGen, 540);
    EXPECT_EQ(phoneSpec("oneplus9").adrenoGen, 660);
    EXPECT_EQ(phoneSpec("s21").adrenoGen, 660);
    EXPECT_EQ(phoneSpec("oneplus7pro").display.name, "QHD+");
}

TEST(PhoneSpecDeathTest, UnknownPhoneIsFatal)
{
    EXPECT_DEATH((void)phoneSpec("nokia3310"), "unknown phone");
}

TEST(DeviceTest, ModelKeyEncodesConfiguration)
{
    DeviceConfig cfg;
    cfg.phone = "oneplus8pro";
    cfg.keyboard = "swift";
    cfg.app = "amex";
    Device dev(cfg);
    const std::string key = dev.modelKey();
    EXPECT_NE(key.find("oneplus8pro"), std::string::npos);
    EXPECT_NE(key.find("adreno650"), std::string::npos);
    EXPECT_NE(key.find("swift"), std::string::npos);
    EXPECT_NE(key.find("amex"), std::string::npos);
    EXPECT_NE(key.find("android11"), std::string::npos);
}

TEST(DeviceTest, ConfigOverridesApply)
{
    DeviceConfig cfg;
    cfg.phone = "oneplus8pro";
    cfg.resolution = "QHD+";
    cfg.refreshHz = 120;
    cfg.osVersion = 9;
    Device dev(cfg);
    EXPECT_EQ(dev.display().name, "QHD+");
    EXPECT_EQ(dev.display().refreshHz, 120);
    EXPECT_EQ(dev.osVersion(), 9);
    EXPECT_EQ(dev.display().vsyncPeriod().ns(), 1000000000LL / 120);
}

TEST(DeviceDeathTest, BadResolutionIsFatal)
{
    DeviceConfig cfg;
    cfg.resolution = "4K";
    EXPECT_DEATH(Device dev(cfg), "unknown resolution");
}

TEST(DeviceTest, AttackerContextIsUnprivileged)
{
    Device dev(DeviceConfig{});
    EXPECT_EQ(dev.attackerContext().seContext, "untrusted_app");
}

TEST(DeviceTest, LaunchBringsUpAppAndKeyboard)
{
    Device dev(DeviceConfig{});
    EXPECT_FALSE(dev.app().visible());
    dev.launchTargetApp();
    EXPECT_TRUE(dev.inTargetApp());
    EXPECT_TRUE(dev.app().visible());
    EXPECT_TRUE(dev.ime().visible());
    EXPECT_TRUE(dev.app().focused());
    dev.runFor(500_ms);
    // Launch redraws produced GPU work.
    EXPECT_GT(dev.engine().framesRendered(), 0u);
}

TEST(DeviceTest, AppSwitchRoundTrip)
{
    Device dev(DeviceConfig{});
    dev.launchTargetApp();
    dev.runFor(500_ms);
    dev.switchToOtherApp();
    EXPECT_FALSE(dev.inTargetApp());
    dev.runFor(1_s);
    EXPECT_FALSE(dev.app().visible());
    EXPECT_TRUE(dev.otherApp().visible());
    dev.switchBackToTargetApp();
    dev.runFor(1_s);
    EXPECT_TRUE(dev.inTargetApp());
    EXPECT_TRUE(dev.app().visible());
    EXPECT_FALSE(dev.otherApp().visible());
}

TEST(DeviceTest, TransitionRendersBurstFrames)
{
    Device dev(DeviceConfig{});
    dev.launchTargetApp();
    dev.runFor(500_ms);
    const auto before = dev.engine().framesRendered();
    dev.switchToOtherApp();
    dev.runFor(500_ms);
    // The overview animation renders ~10 full-screen frames.
    EXPECT_GE(dev.engine().framesRendered(), before + 8);
}

TEST(DeviceTest, OsVersionShiftsKeyboardGeometry)
{
    DeviceConfig a, b;
    a.osVersion = 9;
    b.osVersion = 11;
    Device devA(a), devB(b);
    const Key *kA = devA.ime().layout().findChar(KbPage::Lower, 'g');
    const Key *kB = devB.ime().layout().findChar(KbPage::Lower, 'g');
    EXPECT_NE(kA->rect, kB->rect);
}

TEST(DeviceTest, SeedsChangeNoiseNotGeometry)
{
    DeviceConfig a, b;
    a.seed = 1;
    b.seed = 2;
    Device devA(a), devB(b);
    EXPECT_EQ(devA.modelKey(), devB.modelKey());
    EXPECT_EQ(devA.ime().layout().bounds(),
              devB.ime().layout().bounds());
}

} // namespace
} // namespace gpusc::android
