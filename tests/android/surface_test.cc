/** @file Unit tests for surfaces and damage tracking. */

#include <gtest/gtest.h>

#include "android/surface.h"

namespace gpusc::android {
namespace {

class TestSurface : public Surface
{
  public:
    TestSurface()
        : Surface("test", gfx::Rect::ofSize(0, 0, 100, 100), 42)
    {
    }
    void
    buildScene(gfx::FrameScene &scene) const override
    {
        scene.add(bounds(), true, gfx::PrimTag::AppContent);
    }
};

TEST(SurfaceTest, StartsClean)
{
    TestSurface s;
    EXPECT_FALSE(s.hasDamage());
    EXPECT_TRUE(s.visible());
    EXPECT_EQ(s.ownerPid(), 42);
    EXPECT_EQ(s.name(), "test");
}

TEST(SurfaceTest, DamageAccumulatesAsUnion)
{
    TestSurface s;
    s.invalidate(gfx::Rect::ofSize(0, 0, 10, 10));
    s.invalidate(gfx::Rect::ofSize(50, 50, 10, 10));
    EXPECT_TRUE(s.hasDamage());
    EXPECT_EQ(s.takeDamage(), (gfx::Rect{0, 0, 60, 60}));
    EXPECT_FALSE(s.hasDamage());
}

TEST(SurfaceTest, DamageClipsToBounds)
{
    TestSurface s;
    s.invalidate(gfx::Rect::ofSize(90, 90, 50, 50));
    EXPECT_EQ(s.takeDamage(), (gfx::Rect{90, 90, 100, 100}));
}

TEST(SurfaceTest, FullInvalidateCoversBounds)
{
    TestSurface s;
    s.invalidate();
    EXPECT_EQ(s.takeDamage(), s.bounds());
}

TEST(SurfaceTest, HiddenSurfacesIgnoreDamage)
{
    TestSurface s;
    s.setVisible(false);
    s.invalidate();
    EXPECT_FALSE(s.hasDamage());
}

TEST(SurfaceTest, ShowingInvalidatesFully)
{
    TestSurface s;
    s.setVisible(false);
    s.setVisible(true);
    EXPECT_TRUE(s.hasDamage());
    EXPECT_EQ(s.takeDamage(), s.bounds());
}

TEST(SurfaceTest, HidingDropsPendingDamage)
{
    TestSurface s;
    s.invalidate();
    s.setVisible(false);
    EXPECT_FALSE(s.hasDamage());
}

TEST(SurfaceTest, RedundantVisibilityIsNoop)
{
    TestSurface s;
    s.setVisible(true); // already visible
    EXPECT_FALSE(s.hasDamage());
}

} // namespace
} // namespace gpusc::android
