/**
 * @file
 * Property sweeps over the alignment metrics: invariants that must
 * hold for arbitrary truth/inference pairs.
 */

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "util/rng.h"
#include "workload/credential.h"

namespace gpusc::eval {
namespace {

class MetricsPropertySweep
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MetricsPropertySweep, EditDistanceIsAMetric)
{
    Rng rng(GetParam());
    workload::CredentialGenerator gen(rng.next());
    for (int round = 0; round < 30; ++round) {
        const std::string a = gen.next(std::size_t(
            rng.uniformInt(0, 12)));
        const std::string b = gen.next(std::size_t(
            rng.uniformInt(0, 12)));
        const std::string c = gen.next(std::size_t(
            rng.uniformInt(0, 12)));
        // Identity, symmetry, triangle inequality.
        EXPECT_EQ(editDistance(a, a), 0u);
        EXPECT_EQ(editDistance(a, b), editDistance(b, a));
        EXPECT_LE(editDistance(a, c),
                  editDistance(a, b) + editDistance(b, c));
        // Length difference is a lower bound.
        EXPECT_GE(editDistance(a, b),
                  std::size_t(std::abs(std::int64_t(a.size()) -
                                       std::int64_t(b.size()))));
    }
}

TEST_P(MetricsPropertySweep, AlignmentMatchesAreConsistent)
{
    Rng rng(GetParam() ^ 0xaa);
    workload::CredentialGenerator gen(rng.next());
    for (int round = 0; round < 30; ++round) {
        const std::string truth =
            gen.next(1 + std::size_t(rng.uniformInt(0, 14)));
        const std::string inferred =
            gen.next(std::size_t(rng.uniformInt(0, 14)));
        const auto matches = alignMatches(truth, inferred);
        ASSERT_EQ(matches.size(), truth.size());
        std::size_t matched = 0;
        for (bool m : matches)
            matched += m;
        // Matches cannot exceed either string's length; and along an
        // optimal alignment, matched = |truth| - subs - dels, so the
        // edit distance bounds the unmatched truth characters.
        EXPECT_LE(matched, inferred.size());
        EXPECT_GE(std::int64_t(matched),
                  std::int64_t(truth.size()) -
                      std::int64_t(editDistance(truth, inferred)));
    }
}

TEST_P(MetricsPropertySweep, PerfectInferenceScoresPerfectly)
{
    Rng rng(GetParam() ^ 0xbb);
    workload::CredentialGenerator gen(rng.next());
    AccuracyStats stats;
    for (int round = 0; round < 10; ++round) {
        const std::string t = gen.next(10);
        stats.add(t, t);
    }
    EXPECT_DOUBLE_EQ(stats.textAccuracy(), 1.0);
    EXPECT_DOUBLE_EQ(stats.charAccuracy(), 1.0);
    EXPECT_DOUBLE_EQ(stats.avgErrorsPerText(), 0.0);
}

TEST_P(MetricsPropertySweep, GroupTotalsPartitionTheChars)
{
    Rng rng(GetParam() ^ 0xcc);
    workload::CredentialGenerator gen(rng.next());
    AccuracyStats stats;
    std::size_t totalChars = 0;
    for (int round = 0; round < 10; ++round) {
        const std::string t = gen.next(12);
        totalChars += t.size();
        stats.add(t, gen.next(12));
    }
    std::size_t groupSum = 0;
    for (auto g :
         {workload::CharGroup::Lower, workload::CharGroup::Upper,
          workload::CharGroup::Number, workload::CharGroup::Symbol})
        groupSum += stats.groupTotal(g);
    EXPECT_EQ(groupSum, totalChars);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsPropertySweep,
                         ::testing::Values(3, 7, 31, 127, 8191));

} // namespace
} // namespace gpusc::eval
