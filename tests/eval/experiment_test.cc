/** @file Integration tests for the experiment harness. */

#include <gtest/gtest.h>

#include "util/logging.h"

#include "attack/model_store.h"
#include "eval/experiment.h"

namespace gpusc::eval {
namespace {

attack::ModelStore &
store()
{
    static attack::ModelStore s;
    return s;
}

TEST(ExperimentRunnerTest, TrialsScoreInTheHeadlineBand)
{
    gpusc::setVerbose(false);
    ExperimentConfig cfg;
    cfg.seed = 101;
    ExperimentRunner runner(cfg, store());
    const AccuracyStats stats = runner.runTrials(15, 8, 12);
    EXPECT_EQ(stats.trials(), 15u);
    // The paper's headline band: >=75% text, ~98% per key. Allow
    // slack for the small sample.
    EXPECT_GT(stats.textAccuracy(), 0.6);
    EXPECT_GT(stats.charAccuracy(), 0.93);
}

TEST(ExperimentRunnerTest, SingleTrialRoundTrips)
{
    gpusc::setVerbose(false);
    ExperimentConfig cfg;
    cfg.seed = 102;
    ExperimentRunner runner(cfg, store());
    const TrialResult r = runner.runTrial("letmein");
    EXPECT_EQ(r.truth, "letmein");
    EXPECT_EQ(r.inferred, "letmein");
}

TEST(ExperimentRunnerTest, TrialsAreRecordedWhenRequested)
{
    gpusc::setVerbose(false);
    ExperimentConfig cfg;
    cfg.seed = 103;
    ExperimentRunner runner(cfg, store());
    std::vector<TrialResult> trials;
    runner.runTrials(4, 8, 8, &trials);
    ASSERT_EQ(trials.size(), 4u);
    for (const auto &t : trials)
        EXPECT_EQ(t.truth.size(), 8u);
}

TEST(ExperimentRunnerTest, ModelTransformIsApplied)
{
    gpusc::setVerbose(false);
    ExperimentConfig cfg;
    cfg.seed = 104;
    // Cripple the model: a negative threshold rejects everything
    // (distances can be exactly zero for cache-identical frames).
    cfg.modelTransform = [](const attack::SignatureModel &m) {
        attack::SignatureModel out = m;
        out.setThreshold(-1.0);
        return out;
    };
    ExperimentRunner runner(cfg, store());
    const TrialResult r = runner.runTrial("abcdef");
    EXPECT_TRUE(r.inferred.empty());
}

TEST(ExperimentRunnerTest, GpuLoadRegistersOnBusyNode)
{
    gpusc::setVerbose(false);
    ExperimentConfig cfg;
    cfg.seed = 105;
    cfg.gpuLoad = 0.5;
    ExperimentRunner runner(cfg, store());
    runner.runTrials(1, 8, 8);
    EXPECT_GT(runner.device().kgsl().gpuBusyPercentage(), 20.0);
}

TEST(ExperimentRunnerTest, SameSeedReproduces)
{
    gpusc::setVerbose(false);
    auto run = [] {
        ExperimentConfig cfg;
        cfg.seed = 106;
        ExperimentRunner runner(cfg, store());
        std::vector<TrialResult> trials;
        runner.runTrials(3, 8, 10, &trials);
        std::string all;
        for (const auto &t : trials)
            all += t.truth + "|" + t.inferred + ";";
        return all;
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace gpusc::eval
