/**
 * @file
 * End-to-end contract tests for the telemetry subsystem: observation
 * never perturbs the pipeline (bit-identical inferred output with
 * telemetry on or off, live and replayed) and the exported numbers
 * are internally consistent (the decision funnel partitions the
 * changes that entered Algorithm 1).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "attack/model_store.h"
#include "eval/experiment.h"
#include "obs/telemetry.h"
#include "trace/trace_replayer.h"
#include "util/logging.h"

namespace gpusc::eval {
namespace {

attack::ModelStore &
store()
{
    static attack::ModelStore s;
    return s;
}

std::vector<TrialResult>
runTrials(ExperimentConfig cfg, int n)
{
    ExperimentRunner runner(std::move(cfg), store());
    std::vector<TrialResult> trials;
    runner.runTrials(n, 8, 10, &trials);
    return trials;
}

TEST(TelemetryE2eTest, LiveRunIsBitIdenticalWithTelemetryOn)
{
    setVerbose(false);
    ExperimentConfig off;
    off.seed = 424242;
    const std::vector<TrialResult> plain = runTrials(off, 3);

    obs::Telemetry telemetry;
    ExperimentConfig on;
    on.seed = 424242;
    on.telemetry = &telemetry;
    const std::vector<TrialResult> observed = runTrials(on, 3);

    ASSERT_EQ(plain.size(), observed.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].truth, observed[i].truth) << "trial " << i;
        EXPECT_EQ(plain[i].inferred, observed[i].inferred)
            << "trial " << i;
    }

    // The observed run actually observed something.
    auto &m = telemetry.metrics;
    EXPECT_GT(m.counter("pipeline.readings_in").value(), 0u);
    EXPECT_GT(m.counter("infer.changes_in").value(), 0u);
    EXPECT_GT(m.counter("eval.trials").value(), 0u);
    EXPECT_GT(telemetry.tracer.recorded(), 0u);
}

TEST(TelemetryE2eTest, FunnelPartitionsTheChangesIn)
{
    setVerbose(false);
    obs::Telemetry telemetry;
    ExperimentConfig cfg;
    cfg.seed = 434343;
    cfg.telemetry = &telemetry;
    runTrials(cfg, 3);

    // Every change that entered Algorithm 1 received exactly one
    // change-level decision.
    auto &m = telemetry.metrics;
    const std::uint64_t changesIn =
        m.counter("infer.changes_in").value();
    EXPECT_GT(changesIn, 0u);
    EXPECT_EQ(changesIn, telemetry.audit.changesAudited());
    using obs::Decision;
    const auto &audit = telemetry.audit;
    EXPECT_EQ(changesIn, audit.count(Decision::AcceptedKey) +
                             audit.count(Decision::SplitRepaired) +
                             audit.count(Decision::DuplicationDrop) +
                             audit.count(Decision::NoiseRejected) +
                             audit.count(Decision::SuppressedAppSwitch));

    // Registry and audit agree on the acceptance counts: the accepted
    // class splits into direct accepts and split-repairs.
    EXPECT_EQ(m.counter("infer.accepted").value(),
              audit.count(Decision::AcceptedKey) +
                  audit.count(Decision::SplitRepaired) +
                  audit.count(Decision::SuppressedAppSwitch));
    EXPECT_EQ(m.counter("infer.split_combines").value(),
              audit.count(Decision::SplitRepaired));
    EXPECT_EQ(m.counter("infer.dup_drops").value(),
              audit.count(Decision::DuplicationDrop));
    EXPECT_EQ(m.counter("infer.noise").value(),
              audit.count(Decision::NoiseRejected));
}

TEST(TelemetryE2eTest, ReplayIsBitIdenticalWithTelemetryOn)
{
    setVerbose(false);
    const std::string path = "/tmp/gpusc_telemetry_e2e.gpct";

    ExperimentConfig cfg;
    cfg.seed = 454545;
    cfg.recordTracePath = path;
    std::vector<TrialResult> live;
    {
        ExperimentRunner runner(cfg, store());
        runner.runTrials(2, 8, 10, &live);
        ASSERT_EQ(runner.finishRecording(), trace::TraceError::None);
    }

    // The store holds the recorded device's model (trained by the
    // live run above); the replayer finds it through the trace
    // header's device key.
    trace::TraceReplayer off(store());
    ASSERT_EQ(off.replayFile(path), trace::TraceError::None);

    obs::Telemetry telemetry;
    attack::Eavesdropper::Params onParams;
    onParams.telemetry = &telemetry;
    trace::TraceReplayer on(store(), onParams);
    ASSERT_EQ(on.replayFile(path), trace::TraceError::None);

    // Off-replay matches on-replay event for event...
    EXPECT_EQ(off.eavesdropper().inferredText(),
              on.eavesdropper().inferredText());
    ASSERT_EQ(off.trials().size(), on.trials().size());
    for (std::size_t i = 0; i < off.trials().size(); ++i)
        EXPECT_EQ(off.trials()[i].inferred, on.trials()[i].inferred);
    // ...and both match what the live pipeline inferred.
    ASSERT_EQ(on.trials().size(), live.size());
    for (std::size_t i = 0; i < live.size(); ++i)
        EXPECT_EQ(on.trials()[i].inferred, live[i].inferred);

    // flushTelemetry() at replay end makes the reading tally exact.
    EXPECT_EQ(telemetry.metrics.counter("pipeline.readings_in").value(),
              on.readingsReplayed());
    std::remove(path.c_str());
}

} // namespace
} // namespace gpusc::eval
