/** @file Unit tests for the accuracy metrics. */

#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace gpusc::eval {
namespace {

TEST(EditDistanceTest, KnownCases)
{
    EXPECT_EQ(editDistance("", ""), 0u);
    EXPECT_EQ(editDistance("abc", "abc"), 0u);
    EXPECT_EQ(editDistance("abc", ""), 3u);
    EXPECT_EQ(editDistance("", "abc"), 3u);
    EXPECT_EQ(editDistance("kitten", "sitting"), 3u);
    EXPECT_EQ(editDistance("abc", "abd"), 1u);   // substitution
    EXPECT_EQ(editDistance("abc", "abxc"), 1u);  // insertion
    EXPECT_EQ(editDistance("abc", "ac"), 1u);    // deletion
}

TEST(EditDistanceTest, Symmetric)
{
    EXPECT_EQ(editDistance("password", "pasword"),
              editDistance("pasword", "password"));
}

TEST(AlignMatchesTest, ExactMatch)
{
    const auto m = alignMatches("abc", "abc");
    EXPECT_EQ(m, (std::vector<bool>{true, true, true}));
}

TEST(AlignMatchesTest, DroppedCharStillAlignsTheRest)
{
    const auto m = alignMatches("abcd", "abd");
    EXPECT_EQ(m, (std::vector<bool>{true, true, false, true}));
}

TEST(AlignMatchesTest, SubstitutionMarksOnlyThatChar)
{
    const auto m = alignMatches("abcd", "abXd");
    EXPECT_EQ(m, (std::vector<bool>{true, true, false, true}));
}

TEST(AlignMatchesTest, InsertionDoesNotBreakAlignment)
{
    const auto m = alignMatches("abc", "aZbc");
    EXPECT_EQ(m, (std::vector<bool>{true, true, true}));
}

TEST(AlignMatchesTest, EmptyInference)
{
    const auto m = alignMatches("ab", "");
    EXPECT_EQ(m, (std::vector<bool>{false, false}));
}

TEST(AccuracyStatsTest, TextAccuracyCountsExactMatches)
{
    AccuracyStats s;
    s.add("abcd", "abcd");
    s.add("abcd", "abXd");
    EXPECT_EQ(s.trials(), 2u);
    EXPECT_DOUBLE_EQ(s.textAccuracy(), 0.5);
}

TEST(AccuracyStatsTest, CharAccuracyUsesAlignment)
{
    AccuracyStats s;
    s.add("abcd", "abd"); // 3 of 4 aligned
    EXPECT_DOUBLE_EQ(s.charAccuracy(), 0.75);
    EXPECT_DOUBLE_EQ(s.avgErrorsPerText(), 1.0);
}

TEST(AccuracyStatsTest, GroupBreakdown)
{
    AccuracyStats s;
    s.add("aB3#", "aB3?"); // symbol wrong, others right
    EXPECT_DOUBLE_EQ(
        s.groupAccuracy(workload::CharGroup::Lower), 1.0);
    EXPECT_DOUBLE_EQ(
        s.groupAccuracy(workload::CharGroup::Upper), 1.0);
    EXPECT_DOUBLE_EQ(
        s.groupAccuracy(workload::CharGroup::Number), 1.0);
    EXPECT_DOUBLE_EQ(
        s.groupAccuracy(workload::CharGroup::Symbol), 0.0);
    EXPECT_EQ(s.groupTotal(workload::CharGroup::Symbol), 1u);
}

TEST(AccuracyStatsTest, PerKeyBreakdown)
{
    AccuracyStats s;
    s.add("aab", "aXb");
    const auto perKey = s.perKeyAccuracy();
    EXPECT_DOUBLE_EQ(perKey.at('a'), 0.5);
    EXPECT_DOUBLE_EQ(perKey.at('b'), 1.0);
    EXPECT_EQ(s.perKeyTotal('a'), 2u);
    EXPECT_EQ(s.perKeyTotal('z'), 0u);
}

TEST(AccuracyStatsTest, EmptyStatsAreSafe)
{
    AccuracyStats s;
    EXPECT_EQ(s.textAccuracy(), 0.0);
    EXPECT_EQ(s.charAccuracy(), 0.0);
    EXPECT_EQ(s.avgErrorsPerText(), 0.0);
    EXPECT_EQ(s.groupAccuracy(workload::CharGroup::Lower), 0.0);
}

} // namespace
} // namespace gpusc::eval
