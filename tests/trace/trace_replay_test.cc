/**
 * @file
 * Golden determinism tests: a live experiment recorded to a trace,
 * then replayed through the detached pipeline, must reproduce the
 * live inference bit for bit.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "attack/model_store.h"
#include "eval/experiment.h"
#include "trace/trace_replayer.h"
#include "util/logging.h"

namespace gpusc::trace {
namespace {

attack::ModelStore &
store()
{
    static attack::ModelStore s;
    return s;
}

struct RecordedRun
{
    std::string path;
    attack::SignatureModel model;
    std::vector<eval::TrialResult> live;
    std::uint64_t readings = 0;
};

/** Run a live recorded experiment and keep its outputs.
 *  (gtest ASSERTs need a void return, hence the out-parameter.) */
void
recordRun(RecordedRun &run, const std::string &name,
          std::uint64_t seed,
          const std::vector<std::string> &credentials)
{
    run.path = ::testing::TempDir() + name;
    eval::ExperimentConfig cfg;
    cfg.seed = seed;
    cfg.recordTracePath = run.path;
    eval::ExperimentRunner runner(cfg, store());
    for (const std::string &cred : credentials)
        run.live.push_back(runner.runTrial(cred));
    run.model = runner.model();
    ASSERT_NE(runner.recorder(), nullptr) << "record mode not active";
    run.readings = runner.recorder()->readingCount();
    EXPECT_EQ(runner.finishRecording(), TraceError::None);
}

TEST(TraceReplayTest, ReplayMatchesLiveInferenceExactly)
{
    setVerbose(false);
    RecordedRun run;
    recordRun(run, "golden.gpct", 301,
              {"letmein", "hunter2", "pa55word"});
    if (::testing::Test::HasFatalFailure())
        return;

    TraceReplayer replayer(run.model);
    ASSERT_EQ(replayer.replayFile(run.path), TraceError::None);

    ASSERT_EQ(replayer.trials().size(), run.live.size());
    for (std::size_t i = 0; i < run.live.size(); ++i) {
        EXPECT_EQ(replayer.trials()[i].truth, run.live[i].truth);
        EXPECT_EQ(replayer.trials()[i].inferred, run.live[i].inferred)
            << "replay diverged from live run on trial " << i;
    }
    EXPECT_EQ(replayer.readingsReplayed(), run.readings);
    EXPECT_EQ(replayer.header().seed, 301u);
    std::remove(run.path.c_str());
}

TEST(TraceReplayTest, ReplayResolvesModelFromStoreByDeviceKey)
{
    setVerbose(false);
    RecordedRun run;
    recordRun(run, "bykey.gpct", 302, {"opensesame"});
    if (::testing::Test::HasFatalFailure())
        return;

    // The shared store trained this configuration during recordRun,
    // so the replayer can find the model by the header's device key.
    TraceReplayer replayer(store());
    ASSERT_EQ(replayer.replayFile(run.path), TraceError::None);
    ASSERT_EQ(replayer.trials().size(), 1u);
    EXPECT_EQ(replayer.trials()[0].truth, "opensesame");
    EXPECT_EQ(replayer.trials()[0].inferred, run.live[0].inferred);
    std::remove(run.path.c_str());
}

TEST(TraceReplayTest, ReplayIsIdempotent)
{
    setVerbose(false);
    RecordedRun run;
    recordRun(run, "idem.gpct", 303, {"qwerty12"});
    if (::testing::Test::HasFatalFailure())
        return;

    TraceReplayer replayer(run.model);
    ASSERT_EQ(replayer.replayFile(run.path), TraceError::None);
    const std::string first = replayer.trials()[0].inferred;
    ASSERT_EQ(replayer.replayFile(run.path), TraceError::None);
    EXPECT_EQ(replayer.trials()[0].inferred, first);
    std::remove(run.path.c_str());
}

TEST(TraceReplayTest, OfflineInferenceRecoversKeysFromTrace)
{
    setVerbose(false);
    RecordedRun run;
    recordRun(run, "offline.gpct", 304, {"abcdef"});
    if (::testing::Test::HasFatalFailure())
        return;

    TraceReplayer replayer(run.model);
    TraceError err = TraceError::None;
    const std::vector<attack::InferredKey> keys =
        replayer.inferOffline(run.path, &err);
    EXPECT_EQ(err, TraceError::None);
    EXPECT_FALSE(keys.empty());
    std::remove(run.path.c_str());
}

TEST(TraceReplayTest, RecordedTraceCarriesGroundTruth)
{
    setVerbose(false);
    RecordedRun run;
    recordRun(run, "truth.gpct", 305, {"xyzzy"});
    if (::testing::Test::HasFatalFailure())
        return;

    TraceReader reader;
    ASSERT_EQ(reader.open(run.path), TraceError::None);
    std::uint64_t readings = 0, keyPresses = 0, popups = 0,
                  trialBegins = 0, trialEnds = 0;
    TraceRecord rec;
    bool eof = false;
    while (reader.next(rec, eof) == TraceError::None && !eof) {
        switch (rec.kind) {
          case RecordKind::Reading: ++readings; break;
          case RecordKind::KeyPress: ++keyPresses; break;
          case RecordKind::PopupShow: ++popups; break;
          case RecordKind::TrialBegin:
            ++trialBegins;
            EXPECT_EQ(rec.text, "xyzzy");
            break;
          case RecordKind::TrialEnd: ++trialEnds; break;
          default: break;
        }
    }
    EXPECT_TRUE(eof);
    EXPECT_GT(readings, 0u);
    EXPECT_GE(keyPresses, 5u); // one per credential character
    EXPECT_GE(popups, 5u);
    EXPECT_EQ(trialBegins, 1u);
    EXPECT_EQ(trialEnds, 1u);
    std::remove(run.path.c_str());
}

} // namespace
} // namespace gpusc::trace
