/** @file Trace file format tests: round trip + corruption. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "trace/trace_reader.h"
#include "trace/trace_writer.h"
#include "util/logging.h"

namespace gpusc::trace {
namespace {

TraceHeader
testHeader()
{
    TraceHeader h;
    h.deviceKey = "pixel/gboard/chrome";
    h.device.keyboard = "go";
    h.device.noiseSigma = 0.25;
    h.samplingInterval = SimTime::fromMs(8);
    h.seed = 42;
    return h;
}

attack::Reading
testReading(std::int64_t ms, std::uint64_t base)
{
    attack::Reading r;
    r.time = SimTime::fromMs(ms);
    for (std::size_t i = 0; i < r.totals.size(); ++i)
        r.totals[i] = base + i * 17;
    return r;
}

/** Write a small but fully representative trace; returns its path. */
std::string
writeSampleTrace(const std::string &name)
{
    const std::string path = ::testing::TempDir() + name;
    TraceWriter w;
    EXPECT_EQ(w.open(path, testHeader()), TraceError::None);
    EXPECT_EQ(w.writeTrialBegin(SimTime::fromMs(1), "secret"),
              TraceError::None);
    EXPECT_EQ(w.writeReading(testReading(8, 1000)), TraceError::None);
    EXPECT_EQ(w.writeKeyPress(SimTime::fromMs(10), 's'),
              TraceError::None);
    EXPECT_EQ(w.writePopupShow(SimTime::fromMs(11), 's'),
              TraceError::None);
    EXPECT_EQ(w.writeReading(testReading(16, 2000)), TraceError::None);
    EXPECT_EQ(w.writeBackspace(SimTime::fromMs(20)), TraceError::None);
    EXPECT_EQ(w.writePageSwitch(SimTime::fromMs(24), 1),
              TraceError::None);
    EXPECT_EQ(w.writeAppSwitch(SimTime::fromMs(30), false),
              TraceError::None);
    EXPECT_EQ(w.writeTrialEnd(SimTime::fromMs(40)), TraceError::None);
    EXPECT_EQ(w.close(), TraceError::None);
    return path;
}

std::vector<std::uint8_t>
slurp(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(f),
            std::istreambuf_iterator<char>()};
}

void
dump(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char *>(bytes.data()),
            long(bytes.size()));
}

TEST(TraceFormatTest, RoundTripIsBitExact)
{
    setVerbose(false);
    const std::string path = writeSampleTrace("roundtrip.gpct");

    TraceReader r;
    ASSERT_EQ(r.open(path), TraceError::None);
    const TraceHeader h = r.header();
    EXPECT_EQ(h.deviceKey, "pixel/gboard/chrome");
    EXPECT_EQ(h.device.keyboard, "go");
    EXPECT_DOUBLE_EQ(h.device.noiseSigma, 0.25);
    EXPECT_EQ(h.samplingInterval, SimTime::fromMs(8));
    EXPECT_EQ(h.seed, 42u);

    std::vector<TraceRecord> recs;
    TraceRecord rec;
    bool eof = false;
    while (r.next(rec, eof) == TraceError::None && !eof)
        recs.push_back(rec);
    EXPECT_TRUE(eof);
    ASSERT_EQ(recs.size(), 9u);

    EXPECT_EQ(recs[0].kind, RecordKind::TrialBegin);
    EXPECT_EQ(recs[0].text, "secret");
    EXPECT_EQ(recs[0].time, SimTime::fromMs(1));

    EXPECT_EQ(recs[1].kind, RecordKind::Reading);
    const attack::Reading want = testReading(8, 1000);
    EXPECT_EQ(recs[1].reading.time, want.time);
    EXPECT_EQ(recs[1].reading.totals, want.totals);

    EXPECT_EQ(recs[2].kind, RecordKind::KeyPress);
    EXPECT_EQ(recs[2].ch, 's');
    EXPECT_EQ(recs[3].kind, RecordKind::PopupShow);
    EXPECT_EQ(recs[3].ch, 's');
    EXPECT_EQ(recs[4].kind, RecordKind::Reading);
    EXPECT_EQ(recs[5].kind, RecordKind::Backspace);
    EXPECT_EQ(recs[6].kind, RecordKind::PageSwitch);
    EXPECT_EQ(recs[6].page, 1);
    EXPECT_EQ(recs[7].kind, RecordKind::AppSwitch);
    EXPECT_FALSE(recs[7].toTarget);
    EXPECT_EQ(recs[8].kind, RecordKind::TrialEnd);
    EXPECT_EQ(recs[8].time, SimTime::fromMs(40));

    std::remove(path.c_str());
}

TEST(TraceFormatTest, VerifyFileAcceptsIntactTrace)
{
    setVerbose(false);
    const std::string path = writeSampleTrace("verify.gpct");
    std::uint64_t records = 0;
    TraceHeader h;
    EXPECT_EQ(TraceReader::verifyFile(path, &records, &h),
              TraceError::None);
    EXPECT_EQ(records, 9u);
    EXPECT_EQ(h.deviceKey, "pixel/gboard/chrome");
    std::remove(path.c_str());
}

TEST(TraceFormatTest, MissingFileIsIoOpen)
{
    setVerbose(false);
    TraceReader r;
    EXPECT_EQ(r.open("/nonexistent/trace.gpct"), TraceError::IoOpen);
    EXPECT_EQ(TraceReader::verifyFile("/nonexistent/trace.gpct"),
              TraceError::IoOpen);
}

TEST(TraceFormatTest, BadMagicIsRejected)
{
    setVerbose(false);
    const std::string path = writeSampleTrace("badmagic.gpct");
    std::vector<std::uint8_t> bytes = slurp(path);
    bytes[0] ^= 0xff;
    dump(path, bytes);
    EXPECT_EQ(TraceReader::verifyFile(path), TraceError::BadMagic);
    std::remove(path.c_str());
}

TEST(TraceFormatTest, UnknownVersionIsRejected)
{
    setVerbose(false);
    const std::string path = writeSampleTrace("badversion.gpct");
    std::vector<std::uint8_t> bytes = slurp(path);
    bytes[4] = 0x7f; // version low byte, after the u32 magic
    dump(path, bytes);
    EXPECT_EQ(TraceReader::verifyFile(path), TraceError::BadVersion);
    std::remove(path.c_str());
}

TEST(TraceFormatTest, TruncationIsDetected)
{
    setVerbose(false);
    const std::string path = writeSampleTrace("trunc.gpct");
    const std::vector<std::uint8_t> bytes = slurp(path);
    // Chop off the last 3 bytes: the final record's CRC is torn.
    dump(path, {bytes.begin(), bytes.end() - 3});
    EXPECT_EQ(TraceReader::verifyFile(path),
              TraceError::TruncatedRecord);

    // Chop mid-header as well.
    dump(path, {bytes.begin(), bytes.begin() + 6});
    const TraceError e = TraceReader::verifyFile(path);
    EXPECT_TRUE(e == TraceError::TruncatedHeader ||
                e == TraceError::IoRead)
        << traceErrorString(e);
    std::remove(path.c_str());
}

TEST(TraceFormatTest, UnknownRecordKindIsRejected)
{
    setVerbose(false);
    const std::string path = writeSampleTrace("badkind.gpct");
    // Append a validly-framed record with an unassigned kind byte.
    std::vector<std::uint8_t> bytes = slurp(path);
    ByteWriter frame;
    frame.u8(0x7f);
    frame.u32(0);
    frame.u32(crc32(frame.bytes()));
    bytes.insert(bytes.end(), frame.bytes().begin(),
                 frame.bytes().end());
    dump(path, bytes);
    EXPECT_EQ(TraceReader::verifyFile(path),
              TraceError::BadRecordKind);
    std::remove(path.c_str());
}

/**
 * The acceptance criterion: corrupting ANY single byte of the file
 * must surface as a typed error (or, for the rare CRC-collision-free
 * cosmetic bytes, parse cleanly) — never crash, never hang.
 */
TEST(TraceFormatTest, EveryFlippedByteIsDetectedOrHarmless)
{
    setVerbose(false);
    const std::string path = writeSampleTrace("fuzz.gpct");
    const std::vector<std::uint8_t> clean = slurp(path);
    ASSERT_FALSE(clean.empty());
    int detected = 0;
    for (std::size_t i = 0; i < clean.size(); ++i) {
        std::vector<std::uint8_t> bad = clean;
        bad[i] ^= 0x5a;
        dump(path, bad);
        if (TraceReader::verifyFile(path) != TraceError::None)
            ++detected;
    }
    // Every byte of this file is load-bearing: magic, version,
    // lengths, payloads and CRCs are all covered by a check.
    EXPECT_EQ(detected, int(clean.size()));
    std::remove(path.c_str());
}

TEST(TraceFormatTest, FaultRecordsRoundTripAndVerifyCollectsThem)
{
    setVerbose(false);
    const std::string path = ::testing::TempDir() + "faults.gpct";
    TraceWriter w;
    ASSERT_EQ(w.open(path, testHeader()), TraceError::None);
    ASSERT_EQ(w.writeReading(testReading(8, 1000)), TraceError::None);
    ASSERT_EQ(w.writeFault(SimTime::fromMs(9),
                           kgsl::FaultKind::PowerCollapse, 3),
              TraceError::None);
    ASSERT_EQ(w.writeFault(SimTime::fromMs(12),
                           kgsl::FaultKind::DeviceReset, 1),
              TraceError::None);
    ASSERT_EQ(w.writeReading(testReading(16, 2000)), TraceError::None);
    ASSERT_EQ(w.close(), TraceError::None);

    TraceReader r;
    ASSERT_EQ(r.open(path), TraceError::None);
    EXPECT_EQ(r.header().version, kTraceVersion);
    std::vector<TraceRecord> recs;
    TraceRecord rec;
    bool eof = false;
    while (r.next(rec, eof) == TraceError::None && !eof)
        recs.push_back(rec);
    ASSERT_EQ(recs.size(), 4u);
    EXPECT_EQ(recs[1].kind, RecordKind::Fault);
    EXPECT_EQ(recs[1].time, SimTime::fromMs(9));
    EXPECT_EQ(recs[1].fault, kgsl::FaultKind::PowerCollapse);
    EXPECT_EQ(recs[1].faultDetail, 3u);
    EXPECT_EQ(recs[2].fault, kgsl::FaultKind::DeviceReset);
    EXPECT_EQ(recs[2].faultDetail, 1u);

    std::vector<TraceRecord> faults;
    EXPECT_EQ(TraceReader::verifyFile(path, nullptr, nullptr, &faults),
              TraceError::None);
    ASSERT_EQ(faults.size(), 2u);
    EXPECT_EQ(faults[0].fault, kgsl::FaultKind::PowerCollapse);
    EXPECT_EQ(faults[1].fault, kgsl::FaultKind::DeviceReset);
    std::remove(path.c_str());
}

TEST(TraceFormatTest, VersionOneFilesRemainReadable)
{
    setVerbose(false);
    // The v1 layout is the v2 layout minus the Fault kind, so a
    // faultless v2 file with the version field rewritten IS a valid
    // v1 file (the header CRC covers only the payload).
    const std::string path = writeSampleTrace("v1compat.gpct");
    std::vector<std::uint8_t> bytes = slurp(path);
    bytes[4] = 0x01; // version low byte, after the u32 magic
    dump(path, bytes);

    TraceReader r;
    ASSERT_EQ(r.open(path), TraceError::None);
    EXPECT_EQ(r.header().version, 1);
    EXPECT_EQ(r.header().deviceKey, "pixel/gboard/chrome");
    std::vector<TraceRecord> recs;
    TraceRecord rec;
    bool eof = false;
    while (r.next(rec, eof) == TraceError::None && !eof)
        recs.push_back(rec);
    EXPECT_TRUE(eof);
    EXPECT_EQ(recs.size(), 9u);

    std::uint64_t records = 0;
    TraceHeader h;
    EXPECT_EQ(TraceReader::verifyFile(path, &records, &h),
              TraceError::None);
    EXPECT_EQ(records, 9u);
    EXPECT_EQ(h.version, 1);
    std::remove(path.c_str());
}

TEST(TraceFormatTest, FaultRecordInVersionOneFileIsBadKind)
{
    setVerbose(false);
    const std::string path = ::testing::TempDir() + "v1fault.gpct";
    TraceWriter w;
    ASSERT_EQ(w.open(path, testHeader()), TraceError::None);
    ASSERT_EQ(w.writeFault(SimTime::fromMs(5),
                           kgsl::FaultKind::TransientError, 4),
              TraceError::None);
    ASSERT_EQ(w.close(), TraceError::None);

    std::vector<std::uint8_t> bytes = slurp(path);
    bytes[4] = 0x01;
    dump(path, bytes);
    // Kinds are append-only per version: a v1 file must not contain
    // the v2 Fault kind.
    EXPECT_EQ(TraceReader::verifyFile(path),
              TraceError::BadRecordKind);
    std::remove(path.c_str());
}

TEST(TraceFormatTest, OutOfRangeFaultKindByteIsBadPayload)
{
    setVerbose(false);
    const std::string path = writeSampleTrace("badfault.gpct");
    std::vector<std::uint8_t> bytes = slurp(path);
    // Append a validly-framed Fault record whose kind byte (0) names
    // no FaultKind.
    ByteWriter frame;
    frame.u8(9); // RecordKind::Fault
    frame.u32(8 + 1 + 8);
    frame.i64(SimTime::fromMs(1).ns());
    frame.u8(0);
    frame.u64(0);
    frame.u32(crc32(frame.bytes()));
    bytes.insert(bytes.end(), frame.bytes().begin(),
                 frame.bytes().end());
    dump(path, bytes);
    EXPECT_EQ(TraceReader::verifyFile(path),
              TraceError::BadRecordPayload);
    std::remove(path.c_str());
}

TEST(TraceFormatTest, ReaderErrorIsSticky)
{
    setVerbose(false);
    const std::string path = writeSampleTrace("sticky.gpct");
    std::vector<std::uint8_t> bytes = slurp(path);
    bytes.back() ^= 0xff; // corrupt the final record's CRC
    dump(path, bytes);

    TraceReader r;
    ASSERT_EQ(r.open(path), TraceError::None);
    TraceRecord rec;
    bool eof = false;
    TraceError e = TraceError::None;
    while ((e = r.next(rec, eof)) == TraceError::None && !eof)
        ;
    EXPECT_EQ(e, TraceError::RecordCrcMismatch);
    // Poisoned: the same error again, not a crash or bogus record.
    EXPECT_EQ(r.next(rec, eof), TraceError::RecordCrcMismatch);
    std::remove(path.c_str());
}

TEST(TraceFormatTest, WriterWithoutOpenReportsNotOpen)
{
    setVerbose(false);
    TraceWriter w;
    EXPECT_EQ(w.writeTrialEnd(SimTime::fromMs(1)),
              TraceError::NotOpen);
    TraceReader r;
    TraceRecord rec;
    bool eof = false;
    EXPECT_EQ(r.next(rec, eof), TraceError::NotOpen);
}

TEST(TraceFormatTest, ErrorStringsAreStable)
{
    EXPECT_STREQ(traceErrorString(TraceError::None), "None");
    EXPECT_STREQ(traceErrorString(TraceError::RecordCrcMismatch),
                 "RecordCrcMismatch");
    EXPECT_STREQ(traceErrorString(TraceError::BadMagic), "BadMagic");
}

} // namespace
} // namespace gpusc::trace
