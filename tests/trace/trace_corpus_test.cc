/** @file Trace corpus tests: scanning, aggregation, training. */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "attack/model_store.h"
#include "eval/experiment.h"
#include "trace/trace_corpus.h"
#include "util/logging.h"

namespace gpusc::trace {
namespace {

namespace fs = std::filesystem;

attack::ModelStore &
store()
{
    static attack::ModelStore s;
    return s;
}

/** Record one live session of @p n trials into @p path. */
void
recordTrace(const std::string &path, std::uint64_t seed, int n)
{
    eval::ExperimentConfig cfg;
    cfg.seed = seed;
    cfg.recordTracePath = path;
    eval::ExperimentRunner runner(cfg, store());
    runner.runTrials(n, 8, 10);
    EXPECT_EQ(runner.finishRecording(), TraceError::None);
}

/** A corpus directory with 2 intact traces + 1 corrupt + 1 noise. */
class TraceCorpusTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setVerbose(false);
        // Unique per process: ctest runs each TEST_F as its own
        // process, possibly in parallel, and a shared path would let
        // one process's teardown delete the corpus another process
        // is scanning.
        dir_ = new std::string(::testing::TempDir() + "gpusc_corpus." +
                               std::to_string(::getpid()));
        fs::remove_all(*dir_);
        fs::create_directories(*dir_);
        recordTrace(*dir_ + "/a.gpct", 401, 2);
        recordTrace(*dir_ + "/b.gpct", 402, 1);
        std::ofstream(*dir_ + "/broken.gpct")
            << "definitely not a trace";
        std::ofstream(*dir_ + "/notes.txt") << "ignored";
    }

    static void
    TearDownTestSuite()
    {
        fs::remove_all(*dir_);
        delete dir_;
        dir_ = nullptr;
    }

    static std::string *dir_;
};

std::string *TraceCorpusTest::dir_ = nullptr;

TEST_F(TraceCorpusTest, ScanFindsIntactTracesAndRejectsCorrupt)
{
    TraceCorpus corpus;
    ASSERT_EQ(corpus.scanDirectory(*dir_), TraceError::None);
    ASSERT_EQ(corpus.traces().size(), 2u);
    EXPECT_EQ(corpus.traces()[0].path, *dir_ + "/a.gpct");
    EXPECT_EQ(corpus.traces()[1].path, *dir_ + "/b.gpct");
    ASSERT_EQ(corpus.rejected().size(), 1u);
    EXPECT_EQ(corpus.rejected()[0].first, *dir_ + "/broken.gpct");
    EXPECT_EQ(corpus.rejected()[0].second, TraceError::BadMagic);
}

TEST_F(TraceCorpusTest, ScanOfMissingDirectoryIsIoOpen)
{
    TraceCorpus corpus;
    EXPECT_EQ(corpus.scanDirectory("/nonexistent/corpus"),
              TraceError::IoOpen);
}

TEST_F(TraceCorpusTest, AggregatesStatsAcrossTraces)
{
    TraceCorpus corpus;
    ASSERT_EQ(corpus.scanDirectory(*dir_), TraceError::None);
    const TraceStats all = corpus.aggregate();
    EXPECT_EQ(all.trials, 3u); // 2 + 1 recorded trials
    EXPECT_GT(all.readings, 0u);
    EXPECT_GT(all.keyPresses, 0u);
    EXPECT_GT(all.popupShows, 0u);
    EXPECT_EQ(all.records, corpus.traces()[0].stats.records +
                               corpus.traces()[1].stats.records);
    EXPECT_GT(all.duration, SimTime{});
}

TEST_F(TraceCorpusTest, FiltersByDeviceKey)
{
    TraceCorpus corpus;
    ASSERT_EQ(corpus.scanDirectory(*dir_), TraceError::None);
    const std::vector<std::string> keys = corpus.deviceKeys();
    ASSERT_EQ(keys.size(), 1u); // both traces share one config
    EXPECT_EQ(corpus.forDevice(keys[0]).size(), 2u);
    EXPECT_TRUE(corpus.forDevice("no-such-device").empty());
    EXPECT_EQ(corpus.aggregate(keys[0]).trials, 3u);
    EXPECT_EQ(corpus.aggregate("no-such-device").trials, 0u);
}

TEST_F(TraceCorpusTest, HarvestsLabelledCaptureFromGroundTruth)
{
    TraceCorpus corpus;
    ASSERT_EQ(corpus.scanDirectory(*dir_), TraceError::None);
    const std::string key = corpus.deviceKeys().at(0);
    const attack::TrainingCapture cap = corpus.capture(key);
    // Three 8-10 char credentials give plenty of labelled popups.
    EXPECT_GE(cap.samples.size(), 4u);
    std::size_t total = 0;
    for (const auto &[label, deltas] : cap.samples) {
        EXPECT_FALSE(deltas.empty()) << "empty class " << label;
        total += deltas.size();
    }
    EXPECT_GE(total, 10u);
    EXPECT_TRUE(corpus.capture("no-such-device").samples.empty());
}

TEST_F(TraceCorpusTest, TrainsAModelFromRecordings)
{
    TraceCorpus corpus;
    ASSERT_EQ(corpus.scanDirectory(*dir_), TraceError::None);
    const std::string key = corpus.deviceKeys().at(0);
    const attack::OfflineTrainer trainer;
    const std::optional<attack::SignatureModel> model =
        corpus.trainModel(key, trainer);
    ASSERT_TRUE(model.has_value());
    EXPECT_EQ(model->modelKey(), key);
    EXPECT_GE(model->signatures().size(), 4u);
    EXPECT_GT(model->threshold(), 0.0);

    EXPECT_FALSE(
        corpus.trainModel("no-such-device", trainer).has_value());
}

} // namespace
} // namespace gpusc::trace
