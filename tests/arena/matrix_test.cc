/**
 * @file
 * Tests for the attack-vs-defense arena matrix: grid shape, replay
 * and thread-count determinism, and live policy hot-swap on a
 * running device (the degrade-and-recover episode the arena's rate
 * rows measure in aggregate).
 */

#include <gtest/gtest.h>

#include "arena/matrix.h"
#include "attack/eavesdropper.h"
#include "attack/model_store.h"
#include "attack/trainer.h"
#include "kgsl/defense.h"
#include "util/logging.h"

namespace gpusc::arena {
namespace {

using namespace gpusc::sim_literals;

TEST(ApplyAttackerTest, RobustFlagDrivesBothKnobs)
{
    eval::ExperimentConfig cfg;
    applyAttacker(cfg, {"robust", true});
    EXPECT_TRUE(cfg.attackParams.recovery.rateLimitAware);
    EXPECT_TRUE(cfg.attackParams.inference.noiseRobust);
    applyAttacker(cfg, {"naive", false});
    EXPECT_FALSE(cfg.attackParams.recovery.rateLimitAware);
    EXPECT_FALSE(cfg.attackParams.inference.noiseRobust);
}

TEST(MatrixGridTest, DefaultGridLeadsWithStock)
{
    const auto grid = Matrix::defaultGrid();
    ASSERT_GE(grid.size(), 4u);
    EXPECT_EQ(grid[0].label(), "stock");
    EXPECT_FALSE(grid[0].any());
    // One row per defense family, every non-stock row active.
    bool rate = false, stale = false, quant = false, noise = false;
    bool combo = false;
    for (std::size_t i = 1; i < grid.size(); ++i) {
        EXPECT_TRUE(grid[i].any()) << "inactive row " << i;
        const std::string label = grid[i].label();
        rate = rate || label.rfind("rate", 0) == 0;
        stale = stale || label.find("-stale") != std::string::npos;
        quant = quant || label.rfind("quant", 0) == 0;
        noise = noise || label.rfind("noise", 0) == 0;
        combo = combo || label.find('+') != std::string::npos;
    }
    EXPECT_TRUE(rate);
    EXPECT_TRUE(stale);
    EXPECT_TRUE(quant);
    EXPECT_TRUE(noise);
    EXPECT_TRUE(combo);
}

TEST(MatrixGridTest, DefaultAttackersAreNaiveAndRobust)
{
    const auto attackers = Matrix::defaultAttackers();
    ASSERT_EQ(attackers.size(), 2u);
    EXPECT_EQ(attackers[0].name, "naive");
    EXPECT_FALSE(attackers[0].robust);
    EXPECT_EQ(attackers[1].name, "robust");
    EXPECT_TRUE(attackers[1].robust);
}

/** Tiny matrix over every defense family, shared by the
 *  determinism tests (ISSUE satellite: rate limit, quantize and
 *  noise must each replay bit-identically, serial and sharded). */
MatrixConfig
smallConfig()
{
    gpusc::setVerbose(false);
    MatrixConfig mc;
    mc.base.seed = 777;
    mc.trials = 2;
    mc.minLen = 6;
    mc.maxLen = 8;
    kgsl::DefenseConfig rate;
    rate.readsPerSecond = 48.0;
    kgsl::DefenseConfig quant;
    quant.quantStep = 96;
    kgsl::DefenseConfig noise;
    noise.noiseAmplitude = 24;
    mc.defenses = {kgsl::DefenseConfig{}, rate, quant, noise};
    return mc;
}

TEST(MatrixDeterminismTest, ReplayTwiceIsBitIdentical)
{
    const MatrixConfig mc = smallConfig();
    const auto a = Matrix(mc).run(attack::ModelStore::global());
    const auto b = Matrix(mc).run(attack::ModelStore::global());
    ASSERT_EQ(a.size(), 8u);
    EXPECT_EQ(Matrix::cellsJson(a), Matrix::cellsJson(b));
}

TEST(MatrixDeterminismTest, ThreadCountNeverChangesTheCells)
{
    MatrixConfig mc = smallConfig();
    mc.threads = 1;
    const auto serial = Matrix(mc).run(attack::ModelStore::global());
    mc.threads = 4;
    const auto sharded = Matrix(mc).run(attack::ModelStore::global());
    EXPECT_EQ(Matrix::cellsJson(serial), Matrix::cellsJson(sharded));
}

TEST(MatrixDeterminismTest, DefendedCellsAccountOverhead)
{
    const auto cells =
        Matrix(smallConfig()).run(attack::ModelStore::global());
    ASSERT_EQ(cells.size(), 8u);
    for (const Cell &c : cells) {
        if (c.defense == "stock") {
            EXPECT_EQ(c.overhead.cpuNs, 0u);
        } else {
            EXPECT_GT(c.overhead.readsSeen, 0u);
            EXPECT_GT(c.overhead.cpuNs, 0u);
        }
    }
}

/** Live policy hot-swap on a running device (ISSUE satellite: the
 *  per-episode view of what the arena's rate rows aggregate). */
class PolicyHotSwapTest : public ::testing::Test
{
  protected:
    static android::DeviceConfig
    deviceConfig()
    {
        android::DeviceConfig cfg;
        cfg.phone = "oneplus8pro";
        cfg.keyboard = "gboard";
        cfg.app = "chase";
        cfg.notificationMeanInterval = SimTime();
        return cfg;
    }

    static const attack::SignatureModel &
    model()
    {
        gpusc::setVerbose(false);
        return attack::ModelStore::global().getOrTrain(
            deviceConfig(), attack::OfflineTrainer());
    }
};

TEST_F(PolicyHotSwapTest, DegradeAndRecoverEpisode)
{
    android::Device dev(deviceConfig());
    attack::Eavesdropper::Params params;
    params.recovery.rateLimitAware = true;
    attack::Eavesdropper spy(dev, model(), params);
    dev.boot();
    ASSERT_TRUE(spy.start());

    // Phase 1 — stock driver: the sampler runs at full cadence.
    dev.runFor(2_s);
    const std::uint64_t reservations = dev.kgsl().totalReservations();
    const std::uint64_t fullRateReads = spy.sampler().readCount();
    EXPECT_GT(fullRateReads, 200u); // ~250 at 8 ms
    EXPECT_EQ(spy.health().throttledReads, 0u);

    // Phase 2 — hot-swap a rate limiter under the running attack.
    kgsl::DefenseConfig dc;
    dc.readsPerSecond = 32.0;
    const kgsl::DefendedPolicy limited(dc);
    dev.setSecurityPolicy(limited);
    dev.runFor(2_s);
    const attack::HealthStats degraded = spy.health();
    EXPECT_GT(degraded.throttledReads, 0u);
    EXPECT_GT(degraded.paceBackoffs, 0u);
    // The pacer stretched the cadence instead of dying.
    EXPECT_GT(spy.sampler().effectiveInterval(),
              params.samplingInterval);
    const std::uint64_t pacedReads =
        spy.sampler().readCount() - fullRateReads;
    EXPECT_GT(pacedReads, 0u);
    EXPECT_LT(pacedReads, fullRateReads / 2); // ~32/s vs ~125/s

    // Phase 3 — swap back to stock: the pacer probes back to the
    // full rate; nothing was leaked across the episode.
    const kgsl::StockPolicy stock;
    dev.setSecurityPolicy(stock);
    dev.runFor(4_s);
    const attack::HealthStats recovered = spy.health();
    EXPECT_GT(recovered.paceRecoveries, 0u);
    EXPECT_EQ(spy.sampler().effectiveInterval(),
              params.samplingInterval);
    EXPECT_EQ(recovered.effectiveIntervalNs,
              std::uint64_t(params.samplingInterval.ns()));
    // No throttles since the swap-back settled, full read rate again.
    const std::uint64_t recoveredReads =
        spy.sampler().readCount() - fullRateReads - pacedReads;
    EXPECT_GT(recoveredReads, 350u); // ~500 at 8 ms minus ramp-up
    // Reservations survived both swaps — no leak, no re-reserve.
    EXPECT_EQ(dev.kgsl().totalReservations(), reservations);
    EXPECT_EQ(spy.health().countersHeld,
              std::uint64_t(gpu::kNumSelectedCounters));

    spy.stop();
    EXPECT_EQ(dev.kgsl().totalReservations(), 0u);
}

TEST_F(PolicyHotSwapTest, SwapToStaleModeKeepsIoctlsSucceeding)
{
    android::Device dev(deviceConfig());
    attack::Eavesdropper spy(dev, model());
    dev.boot();
    ASSERT_TRUE(spy.start());
    dev.runFor(1_s);
    const std::uint64_t before = spy.sampler().readCount();

    // Stale mode never fails the ioctl: the naive attacker keeps
    // "reading" at full cadence but sees frozen values.
    kgsl::DefenseConfig dc;
    dc.readsPerSecond = 16.0;
    dc.overBudget = kgsl::DefenseConfig::OverBudget::Stale;
    const kgsl::DefendedPolicy stale(dc);
    dev.setSecurityPolicy(stale);
    dev.runFor(1_s);
    EXPECT_GT(spy.sampler().readCount(), before + 100);
    EXPECT_EQ(spy.health().throttledReads, 0u);
    EXPECT_GT(stale.overhead().staleServes, 0u);
}

} // namespace
} // namespace gpusc::arena
