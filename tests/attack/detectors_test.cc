/** @file Unit tests for change detection and app-switch suppression. */

#include <gtest/gtest.h>

#include "attack/app_switch_detector.h"
#include "attack/change_detector.h"

namespace gpusc::attack {
namespace {

using namespace gpusc::sim_literals;

Reading
reading(SimTime t, std::uint64_t value)
{
    Reading r;
    r.time = t;
    r.totals[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ] = value;
    return r;
}

TEST(ChangeDetectorTest, FirstReadingPrimesOnly)
{
    ChangeDetector det;
    EXPECT_FALSE(det.onReading(reading(1_ms, 100)).has_value());
}

TEST(ChangeDetectorTest, DeltaBetweenReadings)
{
    ChangeDetector det;
    (void)det.onReading(reading(1_ms, 100));
    const auto c = det.onReading(reading(9_ms, 150));
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->delta[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ], 50);
    EXPECT_EQ(c->time, 9_ms);
}

TEST(ChangeDetectorTest, NoChangeNoEvent)
{
    ChangeDetector det;
    (void)det.onReading(reading(1_ms, 100));
    EXPECT_FALSE(det.onReading(reading(9_ms, 100)).has_value());
    // Still primed for the next delta.
    EXPECT_TRUE(det.onReading(reading(17_ms, 130)).has_value());
}

TEST(ChangeDetectorTest, ResetReprimes)
{
    ChangeDetector det;
    (void)det.onReading(reading(1_ms, 100));
    det.reset();
    EXPECT_FALSE(det.onReading(reading(9_ms, 500)).has_value());
}

PcChange
at(SimTime t)
{
    PcChange c;
    c.time = t;
    c.delta[gpu::LRZ_VISIBLE_PRIM_AFTER_LRZ] = 100;
    return c;
}

TEST(AppSwitchDetectorTest, HumanPacedChangesDoNotSuppress)
{
    AppSwitchDetector det;
    SimTime t = 1_s;
    for (int i = 0; i < 20; ++i) {
        det.onChange(at(t));
        t += 300_ms; // typing cadence
    }
    EXPECT_FALSE(det.suppressed(t));
    EXPECT_EQ(det.burstsDetected(), 0u);
}

TEST(AppSwitchDetectorTest, ShortChainsDoNotSuppress)
{
    // Split pieces + a duplicated popup frame: up to ~4 quick changes.
    AppSwitchDetector det;
    SimTime t = 1_s;
    for (int i = 0; i < 4; ++i) {
        det.onChange(at(t));
        t += 10_ms;
    }
    EXPECT_FALSE(det.suppressed(t));
}

TEST(AppSwitchDetectorTest, TransitionBurstSuppresses)
{
    AppSwitchDetector det;
    SimTime t = 1_s;
    for (int i = 0; i < 10; ++i) { // overview animation frames
        det.onChange(at(t));
        t += 17_ms;
    }
    EXPECT_TRUE(det.suppressed(t));
    EXPECT_EQ(det.burstsDetected(), 1u);
}

TEST(AppSwitchDetectorTest, ClassifiedKeyEndsSuppression)
{
    AppSwitchDetector det;
    SimTime t = 1_s;
    for (int i = 0; i < 10; ++i) {
        det.onChange(at(t));
        t += 17_ms;
    }
    ASSERT_TRUE(det.suppressed(t));
    det.onClassified("PAGE:lower", t);
    EXPECT_FALSE(det.suppressed(t));
}

TEST(AppSwitchDetectorTest, QuietPeriodEndsSuppression)
{
    AppSwitchDetector det;
    SimTime t = 1_s;
    for (int i = 0; i < 10; ++i) {
        det.onChange(at(t));
        t += 17_ms;
    }
    ASSERT_TRUE(det.suppressed(t));
    EXPECT_FALSE(det.suppressed(t + 2_s));
    // And the next change does not revive the old burst.
    det.onChange(at(t + 2_s));
    EXPECT_FALSE(det.suppressed(t + 2_s));
}

TEST(AppSwitchDetectorTest, RearmsAfterResume)
{
    AppSwitchDetector det;
    SimTime t = 1_s;
    auto burst = [&] {
        for (int i = 0; i < 10; ++i) {
            det.onChange(at(t));
            t += 17_ms;
        }
    };
    burst();
    det.onClassified("w", t);
    EXPECT_FALSE(det.suppressed(t));
    t += 500_ms;
    burst();
    EXPECT_TRUE(det.suppressed(t));
    EXPECT_EQ(det.burstsDetected(), 2u);
}

} // namespace
} // namespace gpusc::attack
